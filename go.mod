module horus

go 1.22
