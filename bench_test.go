// Package horus_test holds the §10 performance experiments as Go
// benchmarks — one per claim in the paper's "Performance and Overhead"
// section. Run with:
//
//	go test -bench=. -benchmem .
//
// EXPERIMENTS.md records representative results next to the paper's
// numbers. Protocol-level experiments (latency under loss, stability
// convergence, view-change cost) live in cmd/horus-bench, where
// virtual time makes them deterministic.
package horus_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"horus/internal/benchkit"
	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
	"horus/internal/property"
	"horus/internal/sched"
	"horus/internal/stackreg"
)

// The shared benchmark bodies — layer crossing, FRAG costs, the
// SWITCH quiesce pause — live in internal/benchkit so cmd/horus-bench
// -json measures exactly this code; nopLayer/sinkLayer ride along as
// benchkit.NopLayer/SinkLayer.
type (
	nopLayer    = benchkit.NopLayer
	opaqueLayer = benchkit.OpaqueNopLayer
	sinkLayer   = benchkit.SinkLayer
)

// BenchmarkLayerCrossing measures the cost of pushing a cast through k
// no-op layers — the paper's claim that "the cost of a layer can be as
// low as just a few instructions at runtime".
func BenchmarkLayerCrossing(b *testing.B) {
	for _, depth := range benchkit.LayerCrossingDepths {
		b.Run(fmt.Sprintf("depth=%d", depth), benchkit.LayerCrossing(depth))
	}
}

// BenchmarkCompiledCast measures the §10 compiled send plan against
// the per-layer reference path on the same stack, with pooled message
// buffers; the fast variant must report zero allocations per cast.
func BenchmarkCompiledCast(b *testing.B) {
	b.Run("path=fast", benchkit.CompiledCast(true))
	b.Run("path=ref", benchkit.CompiledCast(false))
}

// BenchmarkFragOverhead reproduces the paper's §10 measurement: "the
// overhead of the fragmentation/reassembly layer FRAG (which only
// needs one bit of header space) adds about 50 µsecs to the one-way
// latency" on a 1994 Sparc 10. The cost is the marshal/unmarshal round
// trip every message pays; modern hardware shrinks the constant, the
// shape (a per-message copy proportional to size) remains.
func BenchmarkFragOverhead(b *testing.B) {
	for _, size := range benchkit.FragOverheadSizes {
		for _, withFrag := range []bool{false, true} {
			label := "nofrag"
			if withFrag {
				label = "frag"
			}
			b.Run(fmt.Sprintf("size=%d/%s", size, label), benchkit.FragOverhead(size, withFrag))
		}
	}
}

// BenchmarkFragRoundTrip measures the full split+reassemble path, the
// closest analogue of the paper's one-way latency number.
func BenchmarkFragRoundTrip(b *testing.B) {
	for _, size := range benchkit.FragRoundTripSizes {
		b.Run(fmt.Sprintf("size=%d", size), benchkit.FragRoundTrip(size))
	}
}

// BenchmarkSwitchQuiesce measures the delivery pause of a run-time
// stack reconfiguration — last cast delivered before the flush-quiesce
// drains the old segment to first cast after RESUME — under a
// continuous workload on a 3-member group. The pause is virtual time,
// reported as vpause-ns/op; see benchkit.SwitchQuiesce.
func BenchmarkSwitchQuiesce(b *testing.B) {
	b.Run("members=3", benchkit.SwitchQuiesce(3))
}

// BenchmarkHeaderPushPop measures the §10 item 3 costs: six layers
// pushing word-aligned headers and popping them on delivery, versus
// the proposed precomputed compact header (BenchmarkCompactHeader).
func BenchmarkHeaderPushPop(b *testing.B) {
	sizes := []int{1, 4, 8, 2, 4, 1} // header bytes of six hypothetical layers
	b.Run("aligned", func(b *testing.B) {
		hdr := make([]byte, 8)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := message.New(nil)
			for _, s := range sizes {
				m.PushAligned(hdr[:s])
			}
			for j := len(sizes) - 1; j >= 0; j-- {
				m.PopAligned(sizes[j])
			}
		}
	})
	b.Run("unaligned", func(b *testing.B) {
		hdr := make([]byte, 8)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := message.New(nil)
			for _, s := range sizes {
				m.Push(hdr[:s])
			}
			for j := len(sizes) - 1; j >= 0; j-- {
				m.Pop(sizes[j])
			}
		}
	})
}

// BenchmarkCompactHeader measures the paper's proposed fix: a single
// precomputed bit-packed header written and read once per message.
func BenchmarkCompactHeader(b *testing.B) {
	layout, err := message.NewLayout([]message.Field{
		{Layer: "FRAG", Name: "more", Bits: 1},
		{Layer: "NAK", Name: "seq", Bits: 32},
		{Layer: "NAK", Name: "kind", Bits: 3},
		{Layer: "MBRSHIP", Name: "epoch", Bits: 16},
		{Layer: "MBRSHIP", Name: "seq", Bits: 32},
		{Layer: "TOTAL", Name: "ord", Bits: 32},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := message.New(nil)
		h := message.NewCompactHeader(layout)
		h.Set(0, 1)
		h.Set(1, uint64(i))
		h.Set(3, 7)
		h.Set(5, uint64(i))
		h.AttachTo(m)
		g := message.DetachFrom(m, layout)
		if g.Get(0) != 1 {
			b.Fatal("corrupt")
		}
	}
}

// BenchmarkWireBytesAlignedVsCompact reports the space side of §10
// item 3 as custom metrics.
func BenchmarkWireBytesAlignedVsCompact(b *testing.B) {
	sizes := []int{1, 4, 8, 2, 4, 1}
	aligned := 0
	for _, s := range sizes {
		aligned += (s + 3) / 4 * 4
	}
	layout, err := message.NewLayout([]message.Field{
		{Layer: "A", Name: "f", Bits: 1},
		{Layer: "B", Name: "f", Bits: 32},
		{Layer: "C", Name: "f", Bits: 3},
		{Layer: "D", Name: "f", Bits: 16},
		{Layer: "E", Name: "f", Bits: 32},
		{Layer: "F", Name: "f", Bits: 32},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(aligned), "aligned-bytes")
	b.ReportMetric(float64(layout.Size()), "compact-bytes")
	for i := 0; i < b.N; i++ {
		_ = layout.Size()
	}
}

// BenchmarkThreadedVsEventQueue is §10 item 2: locking a shared layer
// from concurrent threads versus posting to a single-threaded event
// queue ("concurrency within a stack does not lead to significant
// gains").
func BenchmarkThreadedVsEventQueue(b *testing.B) {
	work := func(state *int) { *state++ }
	b.Run("monitor-4goroutines", func(b *testing.B) {
		var m sched.Monitor
		state := 0
		var wg sync.WaitGroup
		b.ResetTimer()
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					m.Do(func() { work(&state) })
				}
			}(b.N / 4)
		}
		wg.Wait()
	})
	b.Run("eventqueue-4goroutines", func(b *testing.B) {
		var q sched.Queue
		state := 0
		var wg sync.WaitGroup
		b.ResetTimer()
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					q.Post(func() { work(&state) })
				}
			}(b.N / 4)
		}
		wg.Wait()
	})
	b.Run("eventqueue-single", func(b *testing.B) {
		var q sched.Queue
		state := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Post(func() { work(&state) })
		}
	})
}

// BenchmarkMinimalVsFullStack is the "an application pays only for
// properties it uses" claim: the cost of a cast through COM alone
// versus the full §7 stack plus security layers, on quiet simulated
// networks.
func BenchmarkMinimalVsFullStack(b *testing.B) {
	stacks := []string{
		"COM",
		"NAK:COM",
		"FRAG:NAK:COM",
		"MBRSHIP:FRAG:NAK:COM",
		"GKEY:MBRSHIP:FRAG:NAK:COM",
		"TOTAL:MBRSHIP:FRAG:NAK:COM",
		"TOTAL:MBRSHIP:FRAG:NAK:SIGN:CHKSUM:COM",
	}
	for _, desc := range stacks {
		b.Run(desc, func(b *testing.B) {
			net := netsim.New(netsim.Config{Seed: 1})
			spec, err := stackreg.Build(desc, property.P1)
			if err != nil {
				b.Fatal(err)
			}
			ep := net.NewEndpoint("a")
			g, err := ep.Join("bench", spec, nil)
			if err != nil {
				b.Fatal(err)
			}
			needsView := true
			for _, name := range property.ParseStack(desc) {
				if name == "MBRSHIP" {
					needsView = false
				}
			}
			if needsView {
				g.InstallView(core.NewView(core.ViewID{Seq: 1, Coord: ep.ID()}, "bench",
					[]core.EndpointID{ep.ID()}))
			}
			net.RunFor(10 * time.Millisecond)
			body := make([]byte, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Cast(message.New(body))
				if i%64 == 0 {
					// Drain deliveries and timers so buffers stay flat.
					net.RunFor(time.Millisecond)
				}
			}
		})
	}
}

// BenchmarkNakThroughput drives the reliable FIFO path end to end
// between two simulated endpoints.
func BenchmarkNakThroughput(b *testing.B) {
	net := netsim.New(netsim.Config{Seed: 1})
	mk := func() core.StackSpec {
		return core.StackSpec{nak.NewWith(nak.WithSuspectAfter(0)), com.New}
	}
	epA := net.NewEndpoint("a")
	epB := net.NewEndpoint("b")
	delivered := 0
	ga, err := epA.Join("bench", mk(), nil)
	if err != nil {
		b.Fatal(err)
	}
	gb, err := epB.Join("bench", mk(), func(ev *core.Event) {
		if ev.Type == core.UCast {
			delivered++
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	view := core.NewView(core.ViewID{Seq: 1, Coord: epA.ID()}, "bench",
		[]core.EndpointID{epA.ID(), epB.ID()})
	ga.InstallView(view)
	gb.InstallView(view)
	body := make([]byte, 256)
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ga.Cast(message.New(body))
		if i%128 == 0 {
			net.RunFor(time.Millisecond)
		}
	}
	net.RunFor(time.Second)
	if delivered < b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkStabilityMatrix measures the bookkeeping behind STABLE
// upcalls.
func BenchmarkStabilityMatrix(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			members := make([]core.EndpointID, n)
			for i := range members {
				members[i] = core.EndpointID{Site: fmt.Sprintf("m%d", i), Birth: uint64(i + 1)}
			}
			m := core.NewStabilityMatrix(members)
			o := core.NewStabilityMatrix(members)
			for i, a := range members {
				for j, bb := range members {
					o.Set(a, bb, uint64(i*j))
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MergeFrom(o)
				_ = m.MinStable(members[0])
			}
		})
	}
}

// BenchmarkStackBuild measures run-time composition: instantiating and
// wiring the full §7 stack. The x-kernel configured protocol graphs at
// compile time; Horus's claim is that run-time composition is cheap
// enough to do per join (§12).
func BenchmarkStackBuild(b *testing.B) {
	net := netsim.New(netsim.Config{Seed: 1})
	spec, err := stackreg.Build("TOTAL:MBRSHIP:FRAG:NAK:COM", property.P1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep := net.NewEndpoint("x")
		g, err := ep.Join("bench", spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = g
		ep.Destroy()
	}
}

// BenchmarkSynthesize measures the §6 minimal-stack search: Dijkstra
// over property sets, the cost of "building a single protocol for the
// particular application on the fly".
func BenchmarkSynthesize(b *testing.B) {
	goals := []property.Set{
		property.P6,
		property.P7,
		property.P5 | property.P14,
		property.P6 | property.P7 | property.P16,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := property.Synthesize(property.P1, goals[i%len(goals)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDerive measures well-formedness checking of a named stack.
func BenchmarkDerive(b *testing.B) {
	stack := property.ParseStack("TOTAL:MBRSHIP:FRAG:NAK:SIGN:CHKSUM:COM")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := property.Derive(property.P1, stack); err != nil {
			b.Fatal(err)
		}
	}
}

// transparentLayer declares every event kind transparent except casts:
// with skip tables, non-cast traffic never invokes it at all.
type transparentLayer struct{ core.Base }

func (l *transparentLayer) Name() string { return "XPARENT" }
func (l *transparentLayer) Transparent(core.EventType, bool) bool {
	return true
}

// BenchmarkLayerSkipping is the §10 item 1 ablation: "we will avoid
// unnecessary invocations of a layer, skipping layers that take no
// action on the way down or up." A 32-deep stack of pass-through
// layers is traversed by a control downcall, with and without
// transparency declared.
func BenchmarkLayerSkipping(b *testing.B) {
	build := func(transparent bool) *core.Group {
		net := netsim.New(netsim.Config{Seed: 1})
		ep := net.NewEndpoint("a")
		spec := make(core.StackSpec, 0, 33)
		for i := 0; i < 32; i++ {
			if transparent {
				spec = append(spec, func() core.Layer { return &transparentLayer{} })
			} else {
				spec = append(spec, func() core.Layer { return &opaqueLayer{} })
			}
		}
		sink := &sinkLayer{}
		spec = append(spec, func() core.Layer { return sink })
		g, err := ep.Join("bench", spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	ev := &core.Event{Type: core.DAck}
	b.Run("opaque-32", func(b *testing.B) {
		g := build(false)
		b.ReportAllocs()
		g.Endpoint().Do(func() {
			for i := 0; i < b.N; i++ {
				g.Stack().Down(ev)
			}
		})
	})
	b.Run("transparent-32", func(b *testing.B) {
		g := build(true)
		b.ReportAllocs()
		g.Endpoint().Do(func() {
			for i := 0; i < b.N; i++ {
				g.Stack().Down(ev)
			}
		})
	})
}
