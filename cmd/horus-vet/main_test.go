package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"horus/internal/analysis/load"
)

// TestVetFlagsMalformedStack drives the whole pipeline — load,
// analyze, print, count — over a throwaway overlay package holding the
// canonical ill-formed literal.
func TestVetFlagsMalformedStack(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

import "horus/internal/stackreg"

var _, _ = stackreg.Build("TOTAL:COM", 1)
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := load.Config{Overlay: map[string]string{"badmod/bad": dir}}
	n, err := vet(&buf, cfg, suite, []string{"badmod/bad"})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	if n != 1 {
		t.Fatalf("vet found %d findings, want 1\n%s", n, buf.String())
	}
	for _, want := range []string{"malformed stack", "TOTAL:COM", "stackcheck"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestVetCleanPackage checks the zero-findings path over a real,
// disciplined module package.
func TestVetCleanPackage(t *testing.T) {
	var buf bytes.Buffer
	n, err := vet(&buf, load.Config{Dir: "../.."}, suite, []string{"./internal/property"})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	if n != 0 {
		t.Fatalf("vet found %d findings on internal/property, want 0\n%s", n, buf.String())
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(suite) {
		t.Fatalf("empty -run: got %d analyzers, err %v", len(all), err)
	}
	one, err := selectAnalyzers("detlint")
	if err != nil || len(one) != 1 || one[0].Name != "detlint" {
		t.Fatalf("-run detlint: got %v, err %v", one, err)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("-run nosuch: expected error")
	}
}
