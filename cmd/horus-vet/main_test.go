package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"horus/internal/analysis/load"
)

// TestVetFlagsMalformedStack drives the whole pipeline — load,
// analyze, print, count — over a throwaway overlay package holding the
// canonical ill-formed literal.
func TestVetFlagsMalformedStack(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

import "horus/internal/stackreg"

var _, _ = stackreg.Build("TOTAL:COM", 1)
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := load.Config{Overlay: map[string]string{"badmod/bad": dir}}
	findings, err := vet(&buf, cfg, suite, []string{"badmod/bad"})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("vet found %d findings, want 1\n%s", len(findings), buf.String())
	}
	for _, want := range []string{"malformed stack", "TOTAL:COM", "stackcheck"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestVetCleanPackage checks the zero-findings path over a real,
// disciplined module package.
func TestVetCleanPackage(t *testing.T) {
	var buf bytes.Buffer
	findings, err := vet(&buf, load.Config{Dir: "../.."}, suite, []string{"./internal/property"})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	if len(findings) != 0 {
		t.Fatalf("vet found %d findings on internal/property, want 0\n%s", len(findings), buf.String())
	}
}

// TestVetJSONShape pins the machine-readable stream: an impure
// compiled-cast hook must surface with file, line, analyzer, message,
// and the interprocedural chain.
func TestVetJSONShape(t *testing.T) {
	dir := t.TempDir()
	src := `package impure

import "horus/internal/core"

type gate struct{ n int }

func (g *gate) bump() { g.n++ }

func (g *gate) ready(ev *core.Event) bool { g.bump(); return true }

func (g *gate) CompileCast() (core.CompiledCast, bool) {
	return core.CompiledCast{Width: 1, Ready: g.ready}, true
}
`
	if err := os.WriteFile(filepath.Join(dir, "impure.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// The overlay path must sit under horus/internal/ for purecast's
	// scope check.
	cfg := load.Config{Dir: "../..", Overlay: map[string]string{"horus/internal/layers/impure": dir}}
	findings, err := vet(&buf, cfg, suite, []string{"horus/internal/layers/impure"})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	var hit *finding
	for i := range findings {
		if findings[i].Analyzer == "purecast" {
			hit = &findings[i]
		}
	}
	if hit == nil {
		t.Fatalf("no purecast finding in %v\n%s", findings, buf.String())
	}
	if hit.Line == 0 || !strings.HasSuffix(hit.File, "impure.go") {
		t.Errorf("finding lacks position: %+v", *hit)
	}
	if !strings.Contains(hit.Message, "mutates receiver") {
		t.Errorf("finding message = %q, want a mutates-receiver diagnostic", hit.Message)
	}
	if len(hit.Chain) == 0 || !strings.Contains(hit.Chain[0], "bump") {
		t.Errorf("finding chain = %v, want the (*gate).bump hop", hit.Chain)
	}
	data, err := json.Marshal(findings)
	if err != nil {
		t.Fatalf("findings do not marshal: %v", err)
	}
	for _, key := range []string{`"file"`, `"line"`, `"analyzer"`, `"message"`, `"chain"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON stream missing %s: %s", key, data)
		}
	}
}

// TestWriteJSONEmpty pins that a clean run writes [] rather than null.
func TestWriteJSONEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "findings.json")
	if err := writeJSON(path, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != "[]" {
		t.Errorf("empty findings serialize as %q, want []", got)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(suite) {
		t.Fatalf("empty -run: got %d analyzers, err %v", len(all), err)
	}
	for _, name := range []string{"stackcheck", "detlint", "hcpilint", "purecast", "ownlint"} {
		one, err := selectAnalyzers(name)
		if err != nil || len(one) != 1 || one[0].Name != name {
			t.Fatalf("-run %s: got %v, err %v", name, one, err)
		}
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("-run nosuch: expected error")
	}
}
