// Command horus-vet is the multichecker for the repo's own static
// analysis suite: it loads the packages matched by its arguments
// (default ./..., including test files) and applies the five
// analyzers under internal/analysis —
//
//	stackcheck  Table 3 well-formedness of constant stack literals
//	detlint     determinism contract of sim-driven packages, including
//	            wall-clock reads laundered through call chains
//	hcpilint    HCPI discipline: locks vs upcalls, header direction
//	purecast    §10 fast-path purity: Ready/Fits/WidthFn hooks must be
//	            side-effect-free through arbitrary call depth
//	ownlint     pooled message ownership: use-after-release, double
//	            release, retained escapes
//
// Diagnostics print one per line, go-vet style; the exit status is 1
// when anything was found, 2 on a load failure, 0 when clean. -json
// additionally emits the findings machine-readably (file, line,
// analyzer, message, call chain) for the CI artifact; -budget fails
// the run when analysis wall time exceeds the bound, so the
// interprocedural passes cannot silently make CI crawl. CI runs
// horus-vet as a gating step; see DESIGN.md for the annotation
// contract (//horus:wallclock, //horus:pure-ok, //horus:own-ok and
// friends).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"horus/internal/analysis"
	"horus/internal/analysis/detlint"
	"horus/internal/analysis/hcpilint"
	"horus/internal/analysis/load"
	"horus/internal/analysis/ownlint"
	"horus/internal/analysis/purecast"
	"horus/internal/analysis/stackcheck"
)

// suite is the full analyzer set, in reporting order.
var suite = []*analysis.Analyzer{
	stackcheck.Analyzer,
	detlint.Analyzer,
	hcpilint.Analyzer,
	purecast.Analyzer,
	ownlint.Analyzer,
}

// finding is one diagnostic in both the text and the -json streams.
type finding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

func main() {
	tests := flag.Bool("tests", true, "analyze test files too")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.String("json", "", `write machine-readable findings to this file ("-" = stdout)`)
	budget := flag.Duration("budget", 0, "fail when analysis wall time exceeds this bound (0 = no bound)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: horus-vet [flags] [package patterns]\n\nanalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "horus-vet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()
	findings, err := vet(os.Stdout, load.Config{Tests: *tests}, analyzers, patterns)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "horus-vet:", err)
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, findings); err != nil {
			fmt.Fprintln(os.Stderr, "horus-vet:", err)
			os.Exit(2)
		}
	}
	exit := 0
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "horus-vet: %d finding(s)\n", len(findings))
		exit = 1
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "horus-vet: analysis took %s, over the -budget bound %s — "+
			"an interprocedural pass has regressed; profile before raising the bound\n",
			elapsed.Round(time.Millisecond), *budget)
		exit = 1
	}
	os.Exit(exit)
}

// selectAnalyzers resolves a comma-separated -run list against the
// suite; empty means everything.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// vet loads the patterns, applies the analyzers to every unit, prints
// sorted diagnostics to w, and returns the deduplicated findings.
// Type-check problems in loaded code are findings too: analysis over a
// package that does not compile cannot be trusted, and `go build`
// gates CI anyway.
func vet(w io.Writer, cfg load.Config, analyzers []*analysis.Analyzer, patterns []string) ([]finding, error) {
	pkgs, err := load.Load(cfg, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			findings = append(findings, finding{
				File: pkg.PkgPath, Analyzer: "load",
				Message: fmt.Sprintf("type error: %v", terr),
			})
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer, Message: d.Message, Chain: d.Chain,
				})
			}
			if err := a.Run(pass); err != nil {
				return findings, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	// The "test" unit re-analyzes the package's non-test files, so
	// identical findings appear once per unit; deduplicate.
	seen := make(map[string]bool)
	out := findings[:0]
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d:%d\x00%s", f.File, f.Line, f.Col, f.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, f)
		fmt.Fprintf(w, "%s: %s (%s)\n", posString(f), f.Message, f.Analyzer)
	}
	return out, nil
}

// posString renders a finding's location like go vet: file:line:col,
// degrading gracefully for package-level (load) findings.
func posString(f finding) string {
	if f.Line == 0 {
		return f.File
	}
	return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col)
}

// writeJSON emits the findings array ("-" = stdout). An empty run
// writes [] rather than null so consumers can range unconditionally.
func writeJSON(path string, findings []finding) error {
	if findings == nil {
		findings = []finding{}
	}
	data, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
