// Command horus-vet is the multichecker for the repo's own static
// analysis suite: it loads the packages matched by its arguments
// (default ./..., including test files) and applies the three
// analyzers under internal/analysis —
//
//	stackcheck  Table 3 well-formedness of constant stack literals
//	detlint     determinism contract of sim-driven packages
//	hcpilint    HCPI discipline: locks vs upcalls, header direction
//
// Diagnostics print one per line, go-vet style; the exit status is 1
// when anything was found, 2 on a load failure, 0 when clean. CI runs
// `go run ./cmd/horus-vet ./...` as a gating step; see DESIGN.md for
// the annotation contract (//horus:wallclock and friends).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"horus/internal/analysis"
	"horus/internal/analysis/detlint"
	"horus/internal/analysis/hcpilint"
	"horus/internal/analysis/load"
	"horus/internal/analysis/stackcheck"
)

// suite is the full analyzer set, in reporting order.
var suite = []*analysis.Analyzer{
	stackcheck.Analyzer,
	detlint.Analyzer,
	hcpilint.Analyzer,
}

func main() {
	tests := flag.Bool("tests", true, "analyze test files too")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: horus-vet [flags] [package patterns]\n\nanalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-11s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "horus-vet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := vet(os.Stdout, load.Config{Tests: *tests}, analyzers, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "horus-vet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "horus-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// selectAnalyzers resolves a comma-separated -run list against the
// suite; empty means everything.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// vet loads the patterns, applies the analyzers to every unit, prints
// sorted diagnostics to w, and returns how many it found. Type-check
// problems in loaded code are findings too: analysis over a package
// that does not compile cannot be trusted, and `go build` gates CI
// anyway.
func vet(w io.Writer, cfg load.Config, analyzers []*analysis.Analyzer, patterns []string) (int, error) {
	pkgs, err := load.Load(cfg, patterns...)
	if err != nil {
		return 0, err
	}
	type finding struct {
		pos string
		msg string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			findings = append(findings, finding{pos: pkg.PkgPath, msg: fmt.Sprintf("type error: %v", terr)})
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, finding{
					pos: pkg.Fset.Position(d.Pos).String(),
					msg: fmt.Sprintf("%s (%s)", d.Message, d.Analyzer),
				})
			}
			if err := a.Run(pass); err != nil {
				return len(findings), fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].msg < findings[j].msg
	})
	// The "test" unit re-analyzes the package's non-test files, so
	// identical findings appear once per unit; deduplicate.
	seen := make(map[string]bool)
	n := 0
	for _, f := range findings {
		key := f.pos + "\x00" + f.msg
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Fprintf(w, "%s: %s\n", f.pos, f.msg)
		n++
	}
	return n, nil
}
