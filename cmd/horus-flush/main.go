// Command horus-flush replays the paper's Figure 2 scenario on the
// simulated network and prints the event timeline:
//
//	Four processes: A, B, C, and D. D crashes right after sending a
//	message M, and only C received a copy. After the crash is
//	detected, A starts the flush protocol by multicasting to B and C.
//	C sends a copy of M to A, which forwards it to B. After A has
//	received replies from everyone, it installs a new view by
//	multicasting.
//
// The output shows the discovery merges forming {A,B,C,D}, the cast of
// M reaching only C, the suspicion, the flush rounds, M's redelivery
// to A and B, and the installation of {A,B,C}.
package main

import (
	"fmt"
	"os"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "horus-flush:", err)
		os.Exit(1)
	}
}

func stack() core.StackSpec {
	return core.StackSpec{
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

func run() error {
	net := netsim.New(netsim.Config{Seed: 13, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	names := []string{"A", "B", "C", "D"}
	eps := make([]*core.Endpoint, 4)
	groups := make([]*core.Group, 4)
	views := make([]*core.View, 4)

	logf := func(format string, args ...interface{}) {
		fmt.Printf("t=%-8v %s\n", net.Now().Round(time.Millisecond), fmt.Sprintf(format, args...))
	}

	for i, name := range names {
		i, name := i, name
		eps[i] = net.NewEndpoint(name)
		g, err := eps[i].Join("fig2", stack(), func(ev *core.Event) {
			switch ev.Type {
			case core.UCast:
				logf("%s delivers %q from %s", name, ev.Msg.Body(), ev.Source.Site)
			case core.UFlush:
				logf("%s sees FLUSH (failed: %v)", name, ev.Failed)
			case core.UView:
				views[i] = ev.View
				logf("%s installs view %v", name, ev.View)
			}
		})
		if err != nil {
			return err
		}
		groups[i] = g
	}

	fmt.Println("== group formation (join is view merge, paper §11) ==")
	for i := 1; i < 4; i++ {
		i := i
		var tryMerge func()
		tryMerge = func() {
			if views[i] != nil && views[i].Size() >= 4 {
				return
			}
			groups[i].Merge(eps[0].ID())
			net.At(net.Now()+150*time.Millisecond, tryMerge)
		}
		net.At(net.Now()+time.Duration(i)*50*time.Millisecond, tryMerge)
	}
	net.RunFor(2 * time.Second)

	fmt.Println("\n== the Figure 2 crash ==")
	// D's copies toward A, B (and itself) are lost; only C hears M.
	for _, dst := range []int{0, 1, 3} {
		net.SetLink(eps[3].ID(), eps[dst].ID(), netsim.Link{Delay: time.Millisecond, LossRate: 1})
	}
	base := net.Now()
	net.At(base, func() {
		logf("D casts M (copies to A and B are lost in the network)")
		groups[3].Cast(message.New([]byte("M")))
	})
	net.At(base+2*time.Millisecond, func() {
		logf("D crashes")
		net.Crash(eps[3].ID())
	})
	net.RunFor(3 * time.Second)

	fmt.Println("\n== outcome ==")
	for i := 0; i < 3; i++ {
		fmt.Printf("%s final view: %v\n", names[i], views[i])
	}
	fmt.Println("\nVirtual synchrony held: every survivor delivered M exactly once,")
	fmt.Println("in the old view, before installing the new one.")
	return nil
}
