// Command horus-chaos runs the chaos soak from the command line: for
// each seed it forms a simulated cluster, generates a seeded fault
// schedule (loss ramps, asymmetric links, flapping, crash/recover,
// rolling partitions), drives a continuous cast workload through it,
// and then checks every virtual-synchrony invariant over everything
// every incarnation observed. The whole run is a pure function of the
// seed, so a failure printed here is replayed exactly with
//
//	horus-chaos -seed N -v
//
// The exit status is nonzero if any seed fails to re-converge or
// violates an invariant, which makes the command usable as a CI soak.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"horus/internal/chaos"
)

func main() {
	var (
		seed    = flag.Int64("seed", 0, "run exactly this seed (0 = run seeds 1..-seeds)")
		seeds   = flag.Int64("seeds", 20, "number of seeds to sweep when -seed is not given")
		members   = flag.Int("members", 4, "cluster size")
		horizon   = flag.Duration("duration", 5*time.Second, "fault-schedule horizon (virtual time)")
		incidents = flag.Int("incidents", 7, "incidents per fault schedule")
		verbose   = flag.Bool("v", false, "print the fault schedule and per-seed detail")
	)
	flag.Parse()

	// The library treats zero config values as "use the default", so
	// degenerate values reaching it would panic deep in the generator;
	// reject them here with a usable message instead.
	switch {
	case *members < 2:
		fatalf("-members must be at least 2 (got %d)", *members)
	case *horizon <= 0:
		fatalf("-duration must be positive (got %v)", *horizon)
	case *incidents < 1:
		fatalf("-incidents must be at least 1 (got %d)", *incidents)
	case *seed == 0 && *seeds < 1:
		fatalf("-seeds must be at least 1 (got %d)", *seeds)
	}

	first, last := int64(1), *seeds
	if *seed != 0 {
		first, last = *seed, *seed
	}

	failed := 0
	for s := first; s <= last; s++ {
		if !runSeed(s, *members, *horizon, *incidents, *verbose) {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "horus-chaos: %d/%d seeds failed\n", failed, last-first+1)
		os.Exit(1)
	}
	fmt.Printf("horus-chaos: %d seeds passed\n", last-first+1)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "horus-chaos: "+format+"\n", args...)
	os.Exit(2)
}

func runSeed(seed int64, members int, horizon time.Duration, incidents int, verbose bool) bool {
	cfg := chaos.SoakConfig{Members: members, Horizon: horizon, Incidents: incidents}
	if verbose {
		// Same (seed, config) as RunSeed uses, so this prints exactly the
		// schedule the run will execute.
		sched := chaos.Generate(seed, chaos.GenConfig{
			Members: members, Horizon: horizon, Incidents: incidents,
		})
		fmt.Printf("== seed %d: schedule ==\n%s", seed, sched)
	}
	start := time.Now()
	c, err := chaos.RunSeed(seed, cfg)
	ok := true
	if err != nil {
		fmt.Fprintf(os.Stderr, "seed %d: %v\n", seed, err)
		ok = false
	}
	if c != nil {
		if errs := c.Check(); len(errs) != 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "seed %d: invariant: %v\n", seed, e)
			}
			ok = false
		}
		if verbose {
			fmt.Printf("== seed %d: history digest ==\n%s", seed, c.Digest())
		}
	}
	status := "ok"
	if !ok {
		status = "FAIL"
	}
	fmt.Printf("seed %-4d %s  (%v wall, %d incarnations)\n",
		seed, status, time.Since(start).Round(time.Millisecond), incarnations(c))
	return ok
}

func incarnations(c *chaos.Cluster) int {
	if c == nil {
		return 0
	}
	return len(c.Histories)
}
