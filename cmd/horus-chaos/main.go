// Command horus-chaos runs the chaos soak from the command line: for
// each seed it forms a cluster, generates a seeded fault schedule
// (loss ramps, asymmetric links, flapping, crash/recover, rolling
// partitions, bandwidth and egress squeezes, reorder bursts — plus
// multi-way splits, anchor crashes, and majority loss with -harsh,
// and run-time stack reconfiguration storms with -switch),
// drives a continuous cast workload through it, and
// then checks every virtual-synchrony invariant over everything every
// incarnation observed.
//
// With the default simulated transport the whole run is a pure
// function of the seed, so a failure printed here is replayed exactly
// with
//
//	horus-chaos -seed N -v
//
// With -transport udp the same schedule executes over real loopback
// UDP sockets through the chaosnet lossy proxy at wall-clock speed;
// those runs validate the stack against kernel timing and are not
// replayable, so failures come with transport counters attached
// instead.
//
// The exit status is nonzero if any seed fails to re-converge or
// violates an invariant, which makes the command usable as a CI soak.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"horus/internal/chaos"
	"horus/internal/chaosnet"
	"horus/internal/netsim"
)

func main() {
	var (
		seed      = flag.Int64("seed", 0, "run exactly this seed (0 = run seeds 1..-seeds)")
		seeds     = flag.Int64("seeds", 20, "number of seeds to sweep when -seed is not given")
		members   = flag.Int("members", 4, "cluster size")
		horizon   = flag.Duration("duration", 5*time.Second, "fault-schedule horizon (fabric time)")
		incidents = flag.Int("incidents", 7, "incidents per fault schedule")
		transport = flag.String("transport", "sim", "transport substrate: sim (deterministic) or udp (real sockets)")
		harsh     = flag.Bool("harsh", false, "hostile schedules: multi-way partitions, anchor crashes, majority loss; runs the primary-partition stack")
		swStorm   = flag.Bool("switch", false, "switch storms: run the SWITCH reconfiguration stack and add run-time stack switches to the schedule")
		degrade   = flag.Bool("degrade", false, "run the pinned graceful-degradation pair (ADAPT arm vs control arm) instead of the membership soak")
		verbose   = flag.Bool("v", false, "print the fault schedule and per-seed detail")
	)
	flag.Parse()

	// The library treats zero config values as "use the default", so
	// degenerate values reaching it would panic deep in the generator;
	// reject them here with a usable message instead.
	switch {
	case *members < 2:
		fatalf("-members must be at least 2 (got %d)", *members)
	case *horizon <= 0:
		fatalf("-duration must be positive (got %v)", *horizon)
	case *incidents < 1:
		fatalf("-incidents must be at least 1 (got %d)", *incidents)
	case *seed == 0 && *seeds < 1:
		fatalf("-seeds must be at least 1 (got %d)", *seeds)
	case *transport != "sim" && *transport != "udp":
		fatalf("-transport must be sim or udp (got %q)", *transport)
	}

	first, last := int64(1), *seeds
	if *seed != 0 {
		first, last = *seed, *seed
	}

	failed := 0
	for s := first; s <= last; s++ {
		ok := false
		if *degrade {
			ok = runDegrade(s, *transport)
		} else {
			ok = runSeed(s, *members, *horizon, *incidents, *transport, *harsh, *swStorm, *verbose)
		}
		if !ok {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "horus-chaos: %d/%d seeds failed\n", failed, last-first+1)
		os.Exit(1)
	}
	fmt.Printf("horus-chaos: %d seeds passed\n", last-first+1)
}

// runDegrade executes the pinned graceful-degradation scenario — the
// canonical moderate/heavy load pair under the held egress squeeze and
// transient partition — on both arms. The ADAPT arm must degrade
// gracefully (no goodput inversion, bounded latency, shed/throttle
// counters proving the loop engaged); the control arm must still show
// the collapse inversion on the deterministic sim transport, and is
// reported but not judged on UDP, where the exact collapse point is
// kernel-timing dependent. Each seed line carries the arm's shed and
// throttle counters.
func runDegrade(seed int64, transport string) bool {
	bound := 4 * time.Second
	if transport == "udp" {
		bound = 6 * time.Second
	}
	newFabric := func() chaos.Fabric {
		if transport == "udp" {
			return chaosnet.New(chaosnet.Config{
				Seed:        seed,
				DefaultLink: netsim.Link{Delay: time.Millisecond},
			})
		}
		return nil // RunDegradation builds the sim fabric from Seed
	}

	run := func(arm string, adaptive bool) bool {
		start := time.Now()
		modCfg, hvyCfg := chaos.DegradePair(adaptive, seed)
		modCfg.Fabric = newFabric()
		mod := chaos.RunDegradation(modCfg)
		hvyCfg.Fabric = newFabric()
		hvy := chaos.RunDegradation(hvyCfg)

		ok := true
		if adaptive {
			for _, err := range chaos.CheckGracefulDegradation(mod, hvy, bound) {
				fmt.Fprintf(os.Stderr, "seed %d %s: %v\n", seed, arm, err)
				ok = false
			}
		} else if transport == "sim" && !chaos.GoodputInverted(mod, hvy) {
			fmt.Fprintf(os.Stderr,
				"seed %d %s: control arm did not collapse (moderate %d vs heavy %d delivered): the squeeze proves nothing\n",
				seed, arm, mod.Delivered, hvy.Delivered)
			ok = false
		}
		status := "ok"
		if !ok {
			status = "FAIL"
		}
		fmt.Printf("seed %-4d %-7s %s  moderate[%v] heavy[%v] inverted=%v  (%v wall)\n",
			seed, arm, status, mod, hvy, chaos.GoodputInverted(mod, hvy),
			time.Since(start).Round(time.Millisecond))
		return ok
	}

	adaptOK := run("adapt", true)
	controlOK := run("control", false)
	return adaptOK && controlOK
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "horus-chaos: "+format+"\n", args...)
	os.Exit(2)
}

func runSeed(seed int64, members int, horizon time.Duration, incidents int, transport string, harsh, swStorm, verbose bool) bool {
	cfg := chaos.SoakConfig{Members: members, Horizon: horizon, Incidents: incidents, Harsh: harsh, Switch: swStorm}
	var udpFab *chaosnet.Fabric
	if transport == "udp" {
		// Wall-clock deadlines: the sim's defaults (6s form, 10s settle)
		// are measured in virtual time, where a run is as long as it
		// needs to be. Over real sockets the same deadlines race the
		// kernel scheduler, CI contention, and the reorder backstop
		// timers, so give formation and re-convergence real slack —
		// harsh schedules leave more wreckage (multi-way merges,
		// re-anchoring) and get the longest settle. See DESIGN.md for
		// the retuning rationale and per-seed triage notes.
		cfg.FormBy = 20 * time.Second
		cfg.SettleBy = 30 * time.Second
		if harsh {
			cfg.SettleBy = 45 * time.Second
		}
		cfg.NewFabric = func(seed int64) chaos.Fabric {
			udpFab = chaosnet.New(chaosnet.Config{
				Seed: seed,
				DefaultLink: netsim.Link{
					Delay: time.Millisecond, Jitter: 2 * time.Millisecond, LossRate: 0.02,
				},
			})
			return udpFab
		}
	}
	if verbose {
		// Same (seed, config) as RunSeed uses, so this prints exactly the
		// schedule the run will execute.
		sched := chaos.Generate(seed, chaos.GenConfig{
			Members: members, Horizon: horizon, Incidents: incidents, Harsh: harsh, Switch: swStorm,
		})
		fmt.Printf("== seed %d: schedule ==\n%s", seed, sched)
	}
	start := time.Now()
	c, err := chaos.RunSeed(seed, cfg)
	ok := true
	if err != nil {
		fmt.Fprintf(os.Stderr, "seed %d: %v\n", seed, err)
		ok = false
	}
	if c != nil {
		if errs := c.Check(); len(errs) != 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "seed %d: invariant: %v\n", seed, e)
			}
			ok = false
		}
		if verbose {
			fmt.Printf("== seed %d: history digest ==\n%s", seed, c.Digest())
		}
	}
	status := "ok"
	if !ok {
		status = "FAIL"
	}
	fmt.Printf("seed %-4d %s  (%v wall, %d incarnations)%s%s\n",
		seed, status, time.Since(start).Round(time.Millisecond), incarnations(c),
		switchStats(c, swStorm), netStats(udpFab))
	return ok
}

// switchStats renders the per-seed SWITCH outcome counters for -switch
// runs: how many reconfigurations committed (including gossip-driven
// sync commits on members that missed the round) and how many aborted
// back to the old stack.
func switchStats(c *chaos.Cluster, swStorm bool) string {
	if c == nil || !swStorm {
		return ""
	}
	committed, aborted := 0, 0
	for _, h := range c.Histories {
		for _, s := range h.Switches {
			if s.Committed {
				committed++
			} else {
				aborted++
			}
		}
	}
	return fmt.Sprintf("  [switch commit=%d abort=%d]", committed, aborted)
}

// netStats renders the per-seed transport counters for UDP runs: the
// proxy's fault ledger plus the udpnet error counters. The fabric is
// built per seed, so every number is already a per-seed delta — a
// real-socket failure arrives with its transport evidence attached.
func netStats(f *chaosnet.Fabric) string {
	if f == nil {
		return ""
	}
	p := f.Stats()
	t := f.TransportStats()
	return fmt.Sprintf("  [udp fwd=%d drop=%d block=%d dup=%d garble=%d reorder=%d throttle=%d congest=%d collapse=%d | sendErr=%d malformed=%d oversized=%d truncated=%d]",
		p.Forwarded, p.Dropped, p.Blocked, p.Duplicated, p.Garbled, p.Reordered, p.Throttled,
		p.Congested, p.CollapseDropped,
		t.SendErrors, t.Malformed, t.Oversized, t.Truncated)
}

func incarnations(c *chaos.Cluster) int {
	if c == nil {
		return 0
	}
	return len(c.Histories)
}
