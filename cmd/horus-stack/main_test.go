package main

import "testing"

func TestRunCommands(t *testing.T) {
	good := [][]string{
		{"props"},
		{"table"},
		{"list"},
		{"check", "TOTAL:MBRSHIP:FRAG:NAK:COM"},
		{"check", "-net", "P1,P2", "NAK:COM"},
		{"synth", "P6"},
		{"synth", "-net", "P1", "P5,P7"},
	}
	for _, args := range good {
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
	bad := [][]string{
		{},
		{"nosuchcmd"},
		{"check"},
		{"check", "TOTAL:COM"},
		{"check", "NOSUCH:COM"},
		{"check", "-net", "P99", "COM"},
		{"synth"},
		{"synth", "P99"},
		{"synth", "-net", "", "P3"},
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
