// Command horus-stack is the CLI to the paper's §6 property calculus:
// it prints Tables 3 and 4, checks stack descriptions for
// well-formedness, derives the properties a stack provides over a
// given network, and synthesizes minimal stacks for required
// properties.
//
// Usage:
//
//	horus-stack props                      print Table 4 (P1..P16)
//	horus-stack table                      print Table 3 (Requires/Inherits/Provides)
//	horus-stack list                       list implemented layers
//	horus-stack check  [-net P1] STACK     check well-formedness, derive properties
//	horus-stack synth  [-net P1] PROPS     synthesize a minimal stack
//
// STACK is top-first, colon separated (TOTAL:MBRSHIP:FRAG:NAK:COM);
// PROPS is comma separated (P6,P9).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"horus/internal/property"
	"horus/internal/stackreg"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "horus-stack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: horus-stack {props|table|list|check|synth} ...")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "props":
		printProps()
		return nil
	case "table":
		printTable()
		return nil
	case "list":
		printList()
		return nil
	case "check":
		return check(rest)
	case "synth":
		return synth(rest)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func printProps() {
	fmt.Println("Table 4 — protocol properties:")
	for i := 1; i <= 16; i++ {
		p := property.Set(1) << uint(i-1)
		fmt.Printf("  P%-3d %s\n", i, property.Descriptions[p])
	}
}

func printTable() {
	fmt.Println("Table 3 — (R)equires / (I)nherits / (P)rovides per layer:")
	fmt.Printf("%-10s", "Layer")
	for i := 1; i <= 16; i++ {
		fmt.Printf("%4s", fmt.Sprintf("P%d", i))
	}
	fmt.Printf("  %s\n", "cost")
	for _, spec := range property.Table3 {
		fmt.Printf("%-10s", spec.Name)
		for i := 1; i <= 16; i++ {
			p := property.Set(1) << uint(i-1)
			cell := " ."
			switch {
			case spec.Provides.Has(p):
				cell = " P"
			case spec.Requires.Has(p) && spec.Inherits.Has(p):
				cell = "RI"
			case spec.Requires.Has(p):
				cell = " R"
			case spec.Inherits.Has(p):
				cell = " I"
			}
			fmt.Printf("%4s", cell)
		}
		fmt.Printf("  %4d\n", spec.Cost)
	}
	fmt.Println("\n(RI = required and passed through; see property/table3.go for reconstruction notes)")
}

func printList() {
	reg := stackreg.Registry()
	fmt.Println("Implemented layers:")
	for _, spec := range property.Table3 {
		impl := " "
		if _, ok := reg[spec.Name]; ok {
			impl = "*"
		}
		fmt.Printf("  %s %-10s requires %-28s provides %s\n",
			impl, spec.Name, spec.Requires, spec.Provides)
	}
}

func check(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	netFlag := fs.String("net", "P1", "properties the network provides")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: horus-stack check [-net P1] TOP:...:BOTTOM")
	}
	netProps, err := property.ParseSet(*netFlag)
	if err != nil {
		return err
	}
	stack := property.ParseStack(fs.Arg(0))
	derived, err := property.Derive(netProps, stack)
	if err != nil {
		return err
	}
	cost, err := property.StackCost(stack)
	if err != nil {
		return err
	}
	fmt.Printf("stack    %s\n", strings.Join(stack, ":"))
	fmt.Printf("network  %v\n", netProps)
	fmt.Printf("provides %v\n", derived)
	fmt.Printf("cost     %d\n", cost)
	derived.Each(func(p property.Set) {
		fmt.Printf("  P%-3d %s\n", p.Index(), property.Descriptions[p])
	})
	return nil
}

func synth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	netFlag := fs.String("net", "P1", "properties the network provides")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: horus-stack synth [-net P1] P6,P9,...")
	}
	netProps, err := property.ParseSet(*netFlag)
	if err != nil {
		return err
	}
	required, err := property.ParseSet(fs.Arg(0))
	if err != nil {
		return err
	}
	stack, err := property.Synthesize(netProps, required, nil)
	if err != nil {
		return err
	}
	derived, err := property.Derive(netProps, stack)
	if err != nil {
		return err
	}
	cost, err := property.StackCost(stack)
	if err != nil {
		return err
	}
	fmt.Printf("required  %v over %v\n", required, netProps)
	fmt.Printf("stack     %s\n", strings.Join(stack, ":"))
	fmt.Printf("provides  %v\n", derived)
	fmt.Printf("cost      %d\n", cost)
	return nil
}
