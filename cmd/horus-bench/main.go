// Command horus-bench runs the protocol-level experiments of
// EXPERIMENTS.md on the deterministic network simulator and prints the
// result tables. CPU-level costs (layer crossings, header push/pop,
// FRAG marshal overhead) are measured separately by `go test -bench`;
// this binary measures protocol behaviour in virtual time, where
// results are exactly reproducible.
//
// Usage:
//
//	horus-bench [experiment...]
//	horus-bench -json FILE
//
// with experiments: headers, stability, viewchange, loss, token, heal,
// compress.
// No arguments runs everything.
//
// -json FILE switches to the machine-readable mode: instead of the
// virtual-time tables it runs the CPU-level benchmark bodies shared
// with `go test -bench` (layer crossing, FRAG marshal latency, the
// SWITCH quiesce pause) via testing.Benchmark and writes one JSON
// document — ns/op, allocs/op, bytes/op and any custom metrics per
// benchmark — to FILE ("-" for stdout). CI uses it to commit a
// BENCH_<n>.json snapshot per PR, so the perf history is a tracked
// trajectory instead of folklore.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"horus/internal/benchkit"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/compress"
	"horus/internal/layers/frag"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/merge"
	"horus/internal/layers/nak"
	"horus/internal/layers/pinwheel"
	"horus/internal/layers/stable"
	"horus/internal/layers/total"
	"horus/internal/message"
	"horus/internal/netsim"
	"horus/internal/property"
	"horus/internal/stackreg"
)

func main() {
	jsonOut := flag.String("json", "", "write machine-readable CPU benchmark results to this file (\"-\" for stdout) instead of running the experiment tables")
	check := flag.String("check", "", "run the CPU benchmark suite and fail on regressions against this baseline snapshot (a BENCH_<n>.json)")
	tol := flag.Float64("tol", 0.35, "fractional ns/op regression tolerated by -check; allocs/op increases always fail")
	flag.Parse()
	if *jsonOut != "" {
		if err := emitJSON(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "horus-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *check != "" {
		if err := checkAgainst(*check, *tol); err != nil {
			fmt.Fprintf(os.Stderr, "horus-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	all := map[string]func(){
		"headers":    benchHeaders,
		"stability":  benchStability,
		"viewchange": benchViewChange,
		"loss":       benchLoss,
		"token":      benchToken,
		"heal":       benchHeal,
		"compress":   benchCompress,
	}
	order := []string{"headers", "stability", "viewchange", "loss", "token", "heal", "compress"}
	args := flag.Args()
	if len(args) == 0 {
		args = order
	}
	for _, name := range args {
		fn, ok := all[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "horus-bench: unknown experiment %q\n", name)
			os.Exit(1)
		}
		fn()
		fmt.Println()
	}
}

// fastTimers builds the simulation-friendly membership stack fragments.
func membershipLayers() []core.Factory {
	return []core.Factory{
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

// group builds an n-member group over spec-producing factory.
func group(net *netsim.Network, n int, mk func() core.StackSpec, handler func(i int) core.Handler) ([]*core.Endpoint, []*core.Group, []*core.View) {
	eps := make([]*core.Endpoint, n)
	groups := make([]*core.Group, n)
	views := make([]*core.View, n)
	for i := 0; i < n; i++ {
		i := i
		eps[i] = net.NewEndpoint(fmt.Sprintf("n%02d", i))
		inner := handler(i)
		g, err := eps[i].Join("bench", mk(), func(ev *core.Event) {
			if ev.Type == core.UView {
				views[i] = ev.View
			}
			if inner != nil {
				inner(ev)
			}
		})
		if err != nil {
			panic(err)
		}
		groups[i] = g
	}
	for i := 1; i < n; i++ {
		i := i
		var tryMerge func()
		tryMerge = func() {
			if views[i] != nil && views[i].Size() >= n {
				return
			}
			groups[i].Merge(eps[0].ID())
			net.At(net.Now()+150*time.Millisecond, tryMerge)
		}
		net.At(net.Now()+time.Duration(i)*50*time.Millisecond, tryMerge)
	}
	net.RunFor(time.Duration(n)*250*time.Millisecond + 2*time.Second)
	for i := 0; i < n; i++ {
		if views[i] == nil || views[i].Size() != n {
			panic(fmt.Sprintf("bench group formation failed at member %d", i))
		}
	}
	return eps, groups, views
}

// benchHeaders measures per-stack wire overhead: bytes on the wire per
// 64-byte application cast (§10 item 3 motivates compact headers by
// the cost of stacked, padded headers).
func benchHeaders() {
	fmt.Println("== header overhead: wire bytes per 64-byte cast, per stack ==")
	fmt.Printf("%-52s %14s %14s\n", "stack (top:...:bottom)", "wire bytes", "overhead")
	stacks := []string{
		"COM",
		"NAK:COM",
		"NAK:CHKSUM:COM",
		"FRAG:NAK:COM",
		"MBRSHIP:FRAG:NAK:COM",
		"TOTAL:MBRSHIP:FRAG:NAK:COM",
		"STABLE:MBRSHIP:FRAG:NAK:COM",
		"TOTAL:MBRSHIP:FRAG:NAK:SIGN:CHKSUM:COM",
	}
	for _, desc := range stacks {
		net := netsim.New(netsim.Config{Seed: 1})
		spec, err := stackreg.Build(desc, property.P1)
		if err != nil {
			panic(err)
		}
		ep := net.NewEndpoint("a")
		g, err := ep.Join("bench", spec, nil)
		if err != nil {
			panic(err)
		}
		needsView := true
		for _, name := range property.ParseStack(desc) {
			if name == "MBRSHIP" {
				needsView = false
			}
		}
		if needsView {
			g.InstallView(core.NewView(core.ViewID{Seq: 1, Coord: ep.ID()}, "bench",
				[]core.EndpointID{ep.ID()}))
		}
		net.RunFor(10 * time.Millisecond)
		before := net.Stats().Bytes
		net.At(net.Now(), func() { g.Cast(message.New(make([]byte, 64))) })
		net.RunFor(10 * time.Millisecond)
		delta := net.Stats().Bytes - before
		fmt.Printf("%-52s %14d %14d\n", desc, delta, delta-64)
	}
	fmt.Println("(self-delivery of one cast; overhead = headers + framing beyond the 64-byte body)")
}

// benchStability compares STABLE and PINWHEEL: virtual time and
// messages until a cast is known stable at every member, over group
// size (the paper: applications choose "whether STABLE or PINWHEEL
// will be optimal").
func benchStability() {
	fmt.Println("== stability: STABLE (gossip) vs PINWHEEL (rotating token) ==")
	fmt.Printf("%4s %18s %18s %16s %16s\n", "n", "STABLE latency", "PINWHEEL latency", "STABLE msgs", "PINWHEEL msgs")
	for _, n := range []int{2, 4, 8, 16} {
		sLat, sMsg := stabilityRun(n, false)
		pLat, pMsg := stabilityRun(n, true)
		fmt.Printf("%4d %18v %18v %16d %16d\n", n, sLat, pLat, sMsg, pMsg)
	}
	fmt.Println("(latency: cast until MinStable reaches it at every member;")
	fmt.Println(" msgs: stability-protocol messages — ack gossips or token passes — in that window)")

	fmt.Println()
	fmt.Println("-- steady state: stability messages/second under continuous traffic --")
	fmt.Printf("%4s %16s %16s\n", "n", "STABLE msg/s", "PINWHEEL msg/s")
	for _, n := range []int{2, 4, 8, 16} {
		s := steadyStateRun(n, false)
		p := steadyStateRun(n, true)
		fmt.Printf("%4d %16.0f %16.0f\n", n, s, p)
	}
	fmt.Println("(the pinwheel trades latency for a constant message load: one token pass per")
	fmt.Println(" hold period regardless of group size, versus one gossip per member per period)")
}

func stabilityRun(n int, usePinwheel bool) (time.Duration, int) {
	net := netsim.New(netsim.Config{Seed: 33, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	var stableAt []time.Duration
	mk := func() core.StackSpec {
		var top core.Factory
		if usePinwheel {
			top = pinwheel.NewWith(pinwheel.WithHold(20 * time.Millisecond))
		} else {
			top = stable.NewWith(stable.WithAckPeriod(20 * time.Millisecond))
		}
		return append(core.StackSpec{top}, membershipLayers()...)
	}
	var groups []*core.Group
	var origin core.EndpointID
	handler := func(i int) core.Handler {
		return func(ev *core.Event) {
			switch ev.Type {
			case core.UCast:
				if !ev.ID.Origin.IsZero() {
					groups[i].Ack(ev.ID)
				}
			case core.UStable:
				if len(stableAt) > i && stableAt[i] == 0 && ev.Stability.MinStable(origin) >= 1 {
					stableAt[i] = net.Now()
				}
			}
		}
	}
	eps, gs, _ := group(net, n, mk, handler)
	groups = gs
	origin = eps[0].ID()
	stableAt = make([]time.Duration, n)

	protoMsgs := func() int {
		total := 0
		for _, g := range gs {
			if usePinwheel {
				total += g.Focus("PINWHEEL").(*pinwheel.Pinwheel).Stats().TokenSent
			} else {
				total += g.Focus("STABLE").(*stable.Stable).Stats().GossipsSent
			}
		}
		return total
	}

	start := net.Now()
	msgsBefore := protoMsgs()
	net.At(start, func() { gs[0].Cast(message.New([]byte("probe"))) })
	// Advance in small steps and stop at convergence, so the message
	// count covers exactly the stabilization window.
	deadline := start + 5*time.Second
	converged := func() bool {
		for _, at := range stableAt {
			if at == 0 {
				return false
			}
		}
		return true
	}
	for !converged() && net.Now() < deadline {
		net.RunFor(5 * time.Millisecond)
	}
	if !converged() {
		panic(fmt.Sprintf("stability never converged (n=%d pinwheel=%v)", n, usePinwheel))
	}
	worst := time.Duration(0)
	for _, at := range stableAt {
		if at-start > worst {
			worst = at - start
		}
	}
	return worst.Round(time.Millisecond), protoMsgs() - msgsBefore
}

// steadyStateRun measures stability-protocol messages per second of
// virtual time while every member casts and acks continuously.
func steadyStateRun(n int, usePinwheel bool) float64 {
	net := netsim.New(netsim.Config{Seed: 35, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	mk := func() core.StackSpec {
		var top core.Factory
		if usePinwheel {
			top = pinwheel.NewWith(pinwheel.WithHold(20 * time.Millisecond))
		} else {
			top = stable.NewWith(stable.WithAckPeriod(20 * time.Millisecond))
		}
		return append(core.StackSpec{top}, membershipLayers()...)
	}
	var groups []*core.Group
	handler := func(i int) core.Handler {
		return func(ev *core.Event) {
			if ev.Type == core.UCast && !ev.ID.Origin.IsZero() && groups != nil {
				groups[i].Ack(ev.ID)
			}
		}
	}
	_, gs, _ := group(net, n, mk, handler)
	groups = gs
	protoMsgs := func() int {
		total := 0
		for _, g := range gs {
			if usePinwheel {
				total += g.Focus("PINWHEEL").(*pinwheel.Pinwheel).Stats().TokenSent
			} else {
				total += g.Focus("STABLE").(*stable.Stable).Stats().GossipsSent
			}
		}
		return total
	}
	// Warm up, then measure 2 seconds of continuous casting.
	const window = 2 * time.Second
	base := net.Now()
	for i := 0; ; i++ {
		at := base + time.Duration(i)*10*time.Millisecond
		if at > base+window+200*time.Millisecond {
			break
		}
		i := i
		net.At(at, func() { gs[i%n].Cast(message.New([]byte("tick"))) })
	}
	net.RunFor(100 * time.Millisecond)
	before := protoMsgs()
	start := net.Now()
	net.RunFor(window)
	return float64(protoMsgs()-before) / (float64(net.Now()-start) / float64(time.Second))
}

// benchViewChange measures crash-to-new-view latency against group
// size: the cost of the §5 flush protocol (plus the failure-detection
// window).
func benchViewChange() {
	fmt.Println("== view change: crash detection + flush latency vs group size ==")
	fmt.Printf("%4s %16s %12s\n", "n", "crash->view", "msgs")
	for _, n := range []int{2, 4, 8, 16, 24} {
		net := netsim.New(netsim.Config{Seed: 57, DefaultLink: netsim.Link{Delay: time.Millisecond}})
		installed := make([]time.Duration, n)
		var crashAt time.Duration
		mk := func() core.StackSpec { return core.StackSpec(membershipLayers()) }
		handler := func(i int) core.Handler {
			return func(ev *core.Event) {
				if ev.Type == core.UView && ev.View.Size() == n-1 && crashAt > 0 {
					installed[i] = net.Now()
				}
			}
		}
		eps, _, _ := group(net, n, mk, handler)
		crashAt = net.Now()
		msgsBefore := net.Stats().Delivered
		net.Crash(eps[n-1].ID())
		net.RunFor(5 * time.Second)
		worst := time.Duration(0)
		for i := 0; i < n-1; i++ {
			if installed[i] == 0 {
				panic("view change incomplete")
			}
			if installed[i]-crashAt > worst {
				worst = installed[i] - crashAt
			}
		}
		fmt.Printf("%4d %16v %12d\n", n, worst.Round(time.Millisecond), net.Stats().Delivered-msgsBefore)
	}
	fmt.Println("(includes the NAK silence window of 6 x 20ms before suspicion)")
}

// benchLoss sweeps network loss and reports NAK's delivered latency
// percentiles for FIFO multicast.
func benchLoss() {
	fmt.Println("== NAK recovery: delivery latency vs loss rate (200 casts, 2 members) ==")
	fmt.Printf("%8s %12s %12s %12s %14s\n", "loss", "p50", "p99", "max", "retransmits")
	for _, loss := range []float64{0, 0.05, 0.1, 0.2, 0.4} {
		net := netsim.New(netsim.Config{Seed: 91, DefaultLink: netsim.Link{
			Delay: time.Millisecond, LossRate: loss,
		}})
		var lat []time.Duration
		sentAt := map[string]time.Duration{}
		epA := net.NewEndpoint("a")
		epB := net.NewEndpoint("b")
		mk := func() core.StackSpec {
			return core.StackSpec{nak.NewWith(
				nak.WithStatusPeriod(20*time.Millisecond),
				nak.WithNakResend(15*time.Millisecond),
				nak.WithSuspectAfter(0),
			), com.New}
		}
		ga, err := epA.Join("bench", mk(), nil)
		if err != nil {
			panic(err)
		}
		gb, err := epB.Join("bench", mk(), func(ev *core.Event) {
			if ev.Type == core.UCast {
				lat = append(lat, net.Now()-sentAt[string(ev.Msg.Body())])
			}
		})
		if err != nil {
			panic(err)
		}
		view := core.NewView(core.ViewID{Seq: 1, Coord: epA.ID()}, "bench",
			[]core.EndpointID{epA.ID(), epB.ID()})
		ga.InstallView(view)
		gb.InstallView(view)
		for i := 0; i < 200; i++ {
			i := i
			net.At(time.Duration(i)*2*time.Millisecond, func() {
				body := fmt.Sprintf("m%04d", i)
				sentAt[body] = net.Now()
				ga.Cast(message.New([]byte(body)))
			})
		}
		net.RunFor(10 * time.Second)
		if len(lat) != 200 {
			panic(fmt.Sprintf("loss sweep: delivered %d of 200 at loss %.2f", len(lat), loss))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		st := ga.Focus("NAK").(*nak.Nak).Stats()
		fmt.Printf("%7.0f%% %12v %12v %12v %14d\n", loss*100,
			lat[100].Round(time.Microsecond), lat[198].Round(time.Microsecond),
			lat[199].Round(time.Microsecond), st.Retransmits)
	}
}

// benchToken measures the TOTAL oracle: token operations per ordered
// message as the number of concurrent senders grows.
func benchToken() {
	fmt.Println("== TOTAL token oracle: token passes per message vs concurrent senders ==")
	fmt.Printf("%8s %10s %12s %16s\n", "senders", "msgs", "token ops", "ops per msg")
	for _, senders := range []int{1, 2, 4, 8} {
		net := netsim.New(netsim.Config{Seed: 77, DefaultLink: netsim.Link{Delay: time.Millisecond}})
		n := 8
		mk := func() core.StackSpec {
			spec := core.StackSpec{total.NewWith(total.WithRequestRetry(50 * time.Millisecond))}
			return append(spec, membershipLayers()...)
		}
		_, groups, _ := group(net, n, mk, func(int) core.Handler { return nil })
		const msgs = 64
		base := net.Now()
		for i := 0; i < msgs; i++ {
			i := i
			net.At(base+time.Duration(i)*3*time.Millisecond, func() {
				groups[i%senders].Cast(message.New([]byte(fmt.Sprintf("m%d", i))))
			})
		}
		net.RunFor(5 * time.Second)
		ops := 0
		for _, g := range groups {
			ops += g.Focus("TOTAL").(*total.Total).Stats().TokenOps
		}
		fmt.Printf("%8d %10d %12d %16.3f\n", senders, msgs, ops, float64(ops)/float64(msgs))
	}
	fmt.Println("(a parked token orders a sole sender's messages for free; contention costs ~1 pass per batch)")
}

// benchCompress measures the COMPRESS layer's Figure 1 purpose — "to
// improve bandwidth use" — on a bandwidth-limited simulated link:
// one-way delivery time of a compressible payload with and without the
// layer.
func benchCompress() {
	fmt.Println("== COMPRESS over a 1 MB/s link: delivery time of a 32 KiB text payload ==")
	fmt.Printf("%-28s %14s %14s\n", "stack", "delivery", "wire bytes")
	for _, withCompress := range []bool{false, true} {
		net := netsim.New(netsim.Config{Seed: 17, DefaultLink: netsim.Link{
			Delay:     time.Millisecond,
			Bandwidth: 1 << 20, // 1 MiB/s
		}})
		var deliveredAt time.Duration
		var bytesAtDelivery int
		mkSpec := func() core.StackSpec {
			spec := core.StackSpec{}
			if withCompress {
				spec = append(spec, func() core.Layer { return compressFactory() })
			}
			spec = append(spec, frag.NewWithSize(1400),
				nak.NewWith(nak.WithSuspectAfter(0), nak.WithStatusPeriod(20*time.Millisecond), nak.WithNakResend(15*time.Millisecond)),
				com.New)
			return spec
		}
		epA := net.NewEndpoint("a")
		epB := net.NewEndpoint("b")
		ga, err := epA.Join("bench", mkSpec(), nil)
		if err != nil {
			panic(err)
		}
		gb, err := epB.Join("bench", mkSpec(), func(ev *core.Event) {
			if ev.Type == core.UCast && deliveredAt == 0 {
				deliveredAt = net.Now()
				bytesAtDelivery = net.Stats().Bytes
			}
		})
		if err != nil {
			panic(err)
		}
		view := core.NewView(core.ViewID{Seq: 1, Coord: epA.ID()}, "bench",
			[]core.EndpointID{epA.ID(), epB.ID()})
		ga.InstallView(view)
		gb.InstallView(view)

		// Highly compressible payload: repeated text.
		unit := []byte("the quick brown fox jumps over the lazy dog. ")
		payload := bytes.Repeat(unit, 32*1024/len(unit)+1)[:32*1024]
		start := net.Now()
		bytesBefore := net.Stats().Bytes
		net.At(start, func() { ga.Cast(message.New(payload)) })
		net.RunFor(10 * time.Second)
		if deliveredAt == 0 {
			panic("compress bench: payload never delivered")
		}
		name := "FRAG:NAK:COM"
		if withCompress {
			name = "COMPRESS:FRAG:NAK:COM"
		}
		fmt.Printf("%-28s %14v %14d\n", name,
			(deliveredAt - start).Round(time.Millisecond), bytesAtDelivery-bytesBefore)
	}
	fmt.Println("(compressible text; incompressible payloads ride through verbatim at +1 byte)")
}

// compressFactory avoids importing compress at top level twice.
func compressFactory() core.Layer { return compress.New() }

// benchHeal measures partition healing with the MERGE layer: the time
// from Heal() until every member is back in one primary view, against
// group size (§9's extended virtual synchrony plus automatic view
// merging, P16).
func benchHeal() {
	fmt.Println("== partition healing: heal -> single view, with MERGE beacons (100ms) ==")
	fmt.Printf("%4s %18s\n", "n", "heal->one view")
	for _, n := range []int{4, 8, 12} {
		net := netsim.New(netsim.Config{Seed: 313, DefaultLink: netsim.Link{Delay: time.Millisecond}})
		healed := make([]time.Duration, n)
		var healAt time.Duration
		mk := func() core.StackSpec {
			spec := core.StackSpec{merge.NewWith(merge.WithBeaconPeriod(100 * time.Millisecond))}
			return append(spec, membershipLayers()...)
		}
		handler := func(i int) core.Handler {
			return func(ev *core.Event) {
				if ev.Type == core.UView && ev.View.Size() == n && healAt > 0 && healed[i] == 0 {
					healed[i] = net.Now()
				}
			}
		}
		eps, _, _ := group(net, n, mk, handler)
		// Split in half, let both sides settle, then heal.
		var left, right []core.EndpointID
		for i, ep := range eps {
			if i < n/2 {
				left = append(left, ep.ID())
			} else {
				right = append(right, ep.ID())
			}
		}
		net.Partition(left, right)
		net.RunFor(3 * time.Second)
		net.Heal()
		healAt = net.Now()
		net.RunFor(20 * time.Second)
		worst := time.Duration(0)
		for i := 0; i < n; i++ {
			if healed[i] == 0 {
				panic(fmt.Sprintf("healing incomplete at member %d (n=%d)", i, n))
			}
			if healed[i]-healAt > worst {
				worst = healed[i] - healAt
			}
		}
		fmt.Printf("%4d %18v\n", n, worst.Round(time.Millisecond))
	}
	fmt.Println("(dominated by the beacon period plus two merge flushes)")
}

// benchRecord is one benchmark's measurements in the JSON snapshot.
type benchRecord struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchSnapshot is the whole -json document. Environment fields are
// recorded because ns/op is only comparable within a hardware class;
// the committed history is a trajectory, not a gate by itself.
type benchSnapshot struct {
	Suite      string        `json:"suite"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// runSuite runs the shared CPU benchmark bodies (internal/benchkit —
// the same code `go test -bench` runs) under testing.Benchmark and
// returns the snapshot.
func runSuite() (benchSnapshot, error) {
	type namedBench struct {
		name string
		fn   func(*testing.B)
	}
	var suite []namedBench
	for _, depth := range benchkit.LayerCrossingDepths {
		suite = append(suite, namedBench{
			fmt.Sprintf("LayerCrossing/depth=%d", depth), benchkit.LayerCrossing(depth)})
	}
	suite = append(suite,
		namedBench{"CompiledCast/path=fast", benchkit.CompiledCast(true)},
		namedBench{"CompiledCast/path=ref", benchkit.CompiledCast(false)})
	for _, size := range benchkit.FragOverheadSizes {
		for _, withFrag := range []bool{false, true} {
			label := "nofrag"
			if withFrag {
				label = "frag"
			}
			suite = append(suite, namedBench{
				fmt.Sprintf("FragOverhead/size=%d/%s", size, label),
				benchkit.FragOverhead(size, withFrag)})
		}
	}
	for _, size := range benchkit.FragRoundTripSizes {
		suite = append(suite, namedBench{
			fmt.Sprintf("FragRoundTrip/size=%d", size), benchkit.FragRoundTrip(size)})
	}
	suite = append(suite, namedBench{"SwitchQuiesce/members=3", benchkit.SwitchQuiesce(3)})

	snap := benchSnapshot{
		Suite:     "horus-bench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, nb := range suite {
		fmt.Fprintf(os.Stderr, "bench %s\n", nb.name)
		r := testing.Benchmark(nb.fn)
		if r.N == 0 {
			return snap, fmt.Errorf("benchmark %s failed (zero iterations)", nb.name)
		}
		rec := benchRecord{
			Name:        nb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.Bytes > 0 {
			rec.MBPerS = (float64(r.Bytes) * float64(r.N) / 1e6) / r.T.Seconds()
		}
		if len(r.Extra) > 0 {
			rec.Extra = map[string]float64{}
			for k, v := range r.Extra {
				rec.Extra[k] = v
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, rec)
	}
	return snap, nil
}

// emitJSON runs the suite and writes the snapshot to path.
func emitJSON(path string) error {
	snap, err := runSuite()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// nsFloor is the ns/op below which -check ignores relative time
// regressions: at single-digit nanoseconds the relative error of a
// shared CI runner exceeds any tolerance worth gating on.
const nsFloor = 20.0

// checkAgainst runs the suite fresh and compares it to the baseline
// snapshot at path. Time regressions beyond tol (fractional) fail
// unless both sides sit under nsFloor; any increase in allocs/op fails
// regardless of tolerance — the zero-allocation claim of the compiled
// cast path is exact, not statistical. Benchmarks present in the
// baseline but missing from the suite fail (a silently dropped
// measurement is itself a regression); new benchmarks pass unchecked.
// Custom metrics (vpause-ns/op) are reported but not gated: they
// measure virtual time, which the differential tests pin exactly.
func checkAgainst(path string, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchSnapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	snap, err := runSuite()
	if err != nil {
		return err
	}
	current := map[string]benchRecord{}
	for _, r := range snap.Benchmarks {
		current[r.Name] = r
	}
	var failures []string
	for _, b := range base.Benchmarks {
		r, ok := current[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline, missing from suite", b.Name))
			continue
		}
		if r.AllocsPerOp > b.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d -> %d (alloc regressions are always fatal)",
				b.Name, b.AllocsPerOp, r.AllocsPerOp))
		}
		limit := b.NsPerOp * (1 + tol)
		if r.NsPerOp > limit && !(r.NsPerOp < nsFloor && b.NsPerOp < nsFloor) {
			failures = append(failures, fmt.Sprintf("%s: ns/op %.1f -> %.1f (limit %.1f at tol %.0f%%)",
				b.Name, b.NsPerOp, r.NsPerOp, limit, tol*100))
		} else {
			fmt.Fprintf(os.Stderr, "ok %s: ns/op %.1f -> %.1f, allocs %d -> %d\n",
				b.Name, b.NsPerOp, r.NsPerOp, b.AllocsPerOp, r.AllocsPerOp)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", f)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(failures), path)
	}
	fmt.Fprintf(os.Stderr, "bench check passed: %d benchmarks within tolerance of %s\n",
		len(base.Benchmarks), path)
	return nil
}
