// Command horus-load is the cluster-scale serving harness: it drives
// hundreds of groups and thousands of endpoints through real composed
// stacks with a deterministic open-loop workload, measures per-cast
// latency histograms and windowed goodput, sweeps offered load over a
// grid, and reports the saturation knee — the last load at which
// delivered goodput tracks offered load and tail latency stays under
// bound.
//
//	# deterministic virtual-time sweep, knee snapshot to a file
//	horus-load -stack fifo -groups 100 -members 10 \
//	    -sweep 50:800:6 -budget 150000 -json knee.json
//
//	# single-load run, human summary
//	horus-load -stack adapt -rate 200
//
//	# same harness over real UDP sockets, reduced scale
//	horus-load -transport udp -groups 5 -members 3 -sweep 50:400:4
//
//	# regression gate against a committed snapshot
//	horus-load -sweep 50:800:6 -budget 150000 -check knee.json
//
// On the simulated fabric (default) every number is a pure function
// of -seed: two equal invocations produce byte-identical JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"horus/internal/chaos"
	"horus/internal/chaosnet"
	"horus/internal/loadgen"
	"horus/internal/netsim"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "deterministic seed for workload and fabric")
		stack     = flag.String("stack", "fifo", "protocol arm: fifo (NAK:COM), total (TOTAL:NAK:COM), adapt (ADAPT:NAK:COM)")
		fastpath  = flag.Bool("fastpath", false, "enable the endpoint delivery fast path")
		groups    = flag.Int("groups", 0, "process groups (default 100 sim, 5 udp)")
		members   = flag.Int("members", 0, "endpoints per group (default 10 sim, 3 udp)")
		rate      = flag.Float64("rate", 200, "offered casts/sec per group (single run)")
		sweep     = flag.String("sweep", "", "sweep grid lo:hi:n of offered loads; empty = single run at -rate")
		loads     = flag.String("loads", "", "explicit comma-separated sweep loads (overrides -sweep)")
		body      = flag.Int("body", 64, "cast payload bytes (min 16)")
		warmup    = flag.Duration("warmup", 200*time.Millisecond, "warmup before measurement")
		measure   = flag.Duration("measure", time.Second, "measurement span")
		drain     = flag.Duration("drain", 300*time.Millisecond, "drain after measurement")
		window    = flag.Duration("window", 250*time.Millisecond, "goodput accounting window")
		budget    = flag.Int("budget", 0, "per-endpoint egress budget, bytes/sec (0 = uncapped; saturation needs a cap)")
		queue     = flag.Int("queue", 0, "per-endpoint egress queue bound, bytes (0 = netsim default)")
		delay     = flag.Duration("delay", 200*time.Microsecond, "link propagation delay")
		jitter    = flag.Duration("jitter", 100*time.Microsecond, "link jitter bound")
		loss      = flag.Float64("loss", 0, "link loss rate")
		tol       = flag.Float64("tol", 0.05, "goodput tolerance: pass needs delivered/expected >= 1-tol")
		p99bound  = flag.Duration("p99bound", 100*time.Millisecond, "p99 latency bound for a passing point (0 = none)")
		transport = flag.String("transport", "sim", "fabric: sim (virtual time, deterministic) or udp (real sockets, reduced scale)")
		jsonPath  = flag.String("json", "", "write the knee snapshot JSON here (- for stdout)")
		checkPath = flag.String("check", "", "gate against a previous snapshot; exit 1 if the knee moved or goodput fell")
		checkTol  = flag.Float64("checktol", 0.15, "tolerance for -check (fraction)")
	)
	flag.Parse()

	if *groups == 0 {
		*groups = map[bool]int{true: 5, false: 100}[*transport == "udp"]
	}
	if *members == 0 {
		*members = map[bool]int{true: 3, false: 10}[*transport == "udp"]
	}

	link := netsim.Link{Delay: *delay, Jitter: *jitter, LossRate: *loss}
	var newFabric func() chaos.Fabric
	switch *transport {
	case "sim":
		newFabric = func() chaos.Fabric { return chaos.NewSimFabric(*seed, link) }
	case "udp":
		newFabric = func() chaos.Fabric { return chaosnet.New(chaosnet.Config{Seed: *seed, DefaultLink: link}) }
	default:
		fatalf("unknown -transport %q (want sim or udp)", *transport)
	}

	grid, err := parseGrid(*sweep, *loads, *rate)
	if err != nil {
		fatalf("%v", err)
	}
	sc := loadgen.SweepConfig{
		Base: loadgen.Config{
			Seed:     *seed,
			Stack:    *stack,
			FastPath: *fastpath,
			Groups:   *groups,
			Members:  *members,
			Body:     *body,
			Warmup:   *warmup,
			Measure:  *measure,
			Drain:    *drain,
			Window:   *window,
			Host:     netsim.Host{EgressBudget: *budget, EgressQueue: *queue},
		},
		Loads:    grid,
		RatioTol: *tol,
		P99Bound: *p99bound,
	}

	sr, err := loadgen.Sweep(newFabric, sc)
	if err != nil {
		fatalf("%v", err)
	}
	printSweep(sr)
	snap := sr.Snapshot()

	if *jsonPath != "" {
		b, err := snap.Encode()
		if err != nil {
			fatalf("encode: %v", err)
		}
		if *jsonPath == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			fatalf("write %s: %v", *jsonPath, err)
		} else {
			fmt.Printf("snapshot written to %s\n", *jsonPath)
		}
	}
	if *checkPath != "" {
		raw, err := os.ReadFile(*checkPath)
		if err != nil {
			fatalf("read %s: %v", *checkPath, err)
		}
		old, err := loadgen.DecodeSnapshot(raw)
		if err != nil {
			fatalf("parse %s: %v", *checkPath, err)
		}
		if err := snap.CheckAgainst(old, *checkTol); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("check against %s: ok\n", *checkPath)
	}
}

// parseGrid resolves the sweep loads: -loads wins, then -sweep, then a
// single point at -rate.
func parseGrid(sweep, loads string, rate float64) ([]float64, error) {
	if loads != "" {
		var out []float64
		for _, tok := range strings.Split(loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return nil, fmt.Errorf("bad -loads entry %q: %v", tok, err)
			}
			out = append(out, v)
		}
		return out, nil
	}
	if sweep != "" {
		parts := strings.Split(sweep, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -sweep %q: want lo:hi:n", sweep)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		n, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || n < 1 || lo <= 0 || hi < lo {
			return nil, fmt.Errorf("bad -sweep %q: want lo:hi:n with 0 < lo <= hi, n >= 1", sweep)
		}
		return loadgen.DefaultLoadGrid(n, lo, hi), nil
	}
	return []float64{rate}, nil
}

func printSweep(sr *loadgen.SweepResult) {
	fmt.Printf("horus-load: stack=%s fastpath=%v seed=%d\n", sr.Stack, sr.FastPath, sr.Seed)
	fmt.Printf("%10s %6s %9s %9s %12s %12s %12s %8s %8s\n",
		"load_cps", "pass", "ratio", "goodput", "p50", "p95", "p99", "shed", "lost")
	for _, p := range sr.Points {
		r := p.Result
		fmt.Printf("%10.2f %6v %9.4f %9.0f %12v %12v %12v %8d %8d\n",
			p.Load, p.Pass, r.Ratio, r.Goodput, r.P50, r.P95, r.P99, r.Shed, r.Lost)
	}
	if sr.Saturated {
		fmt.Printf("knee: %.2f casts/s per group (slope %.2f before knee)\n", sr.Knee, sr.Slope)
	} else {
		fmt.Printf("knee: censored at top of grid (%.2f casts/s; all points passed, slope %.2f)\n", sr.Knee, sr.Slope)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "horus-load: "+format+"\n", args...)
	os.Exit(1)
}
