// Partition: the extended-virtual-synchrony story of §9. A four-member
// group is split by a network partition; both sides keep making
// progress in their own views; when the network heals, the MERGE
// layer's beacons discover the concurrent views and collapse them back
// into one — automatically, with no application involvement.
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/merge"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

func stack() core.StackSpec {
	return core.StackSpec{
		merge.NewWith(merge.WithBeaconPeriod(100 * time.Millisecond)),
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

func main() {
	net := netsim.New(netsim.Config{Seed: 99, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	names := []string{"n1", "n2", "n3", "n4"}
	eps := make([]*core.Endpoint, len(names))
	groups := make([]*core.Group, len(names))
	views := make([]*core.View, len(names))
	for i, name := range names {
		i, name := i, name
		eps[i] = net.NewEndpoint(name)
		g, err := eps[i].Join("pd", stack(), func(ev *core.Event) {
			switch ev.Type {
			case core.UView:
				views[i] = ev.View
				fmt.Printf("t=%-6v %s view %v\n", net.Now().Round(time.Millisecond), name, ev.View)
			case core.UCast:
				fmt.Printf("t=%-6v %s got %q from %s\n", net.Now().Round(time.Millisecond),
					name, ev.Msg.Body(), ev.Source.Site)
			}
		})
		if err != nil {
			panic(err)
		}
		groups[i] = g
	}

	fmt.Println("== formation: the MERGE layer discovers everyone automatically ==")
	net.RunFor(4 * time.Second)

	fmt.Println("\n== partition: {n1,n2} | {n3,n4} ==")
	net.Partition(
		[]core.EndpointID{eps[0].ID(), eps[1].ID()},
		[]core.EndpointID{eps[2].ID(), eps[3].ID()},
	)
	net.RunFor(2 * time.Second)

	fmt.Println("\n== both sides make independent progress ==")
	net.At(net.Now(), func() { groups[0].Cast(message.New([]byte("left side says hi"))) })
	net.At(net.Now()+time.Millisecond, func() { groups[2].Cast(message.New([]byte("right side says hi"))) })
	net.RunFor(time.Second)

	fmt.Println("\n== heal: beacons find the concurrent views and merge them ==")
	net.Heal()
	net.RunFor(6 * time.Second)

	fmt.Println("\n== one group again ==")
	net.At(net.Now(), func() { groups[3].Cast(message.New([]byte("all together now"))) })
	net.RunFor(time.Second)

	for i, v := range views {
		fmt.Printf("%s final view: %v\n", names[i], v)
	}
}
