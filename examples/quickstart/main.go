// Quickstart: three processes form a group by merging, multicast with
// virtual synchrony, and survive a crash.
//
//	go run ./examples/quickstart
//
// The demo runs on the deterministic network simulator, so the output
// is reproducible; swap netsim.New for netsim.NewRealTime to run on
// wall-clock goroutines instead.
package main

import (
	"fmt"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

// stack is the smallest virtually synchronous composition:
// MBRSHIP over reliable FIFO (NAK) over the raw network (COM).
func stack() core.StackSpec {
	return core.StackSpec{
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

func main() {
	net := netsim.New(netsim.Config{Seed: 2026, DefaultLink: netsim.Link{
		Delay:    time.Millisecond,
		LossRate: 0.05, // NAK repairs this transparently
	}})

	names := []string{"alice", "bob", "carol"}
	groups := make([]*core.Group, len(names))
	views := make([]*core.View, len(names))
	for i, name := range names {
		i, name := i, name
		ep := net.NewEndpoint(name)
		g, err := ep.Join("demo", stack(), func(ev *core.Event) {
			switch ev.Type {
			case core.UCast:
				fmt.Printf("t=%-6v %-5s got %q from %s\n",
					net.Now().Round(time.Millisecond), name, ev.Msg.Body(), ev.Source.Site)
			case core.UView:
				views[i] = ev.View
				fmt.Printf("t=%-6v %-5s view is now %v\n",
					net.Now().Round(time.Millisecond), name, ev.View)
			}
		})
		if err != nil {
			panic(err)
		}
		groups[i] = g
	}

	// Joining a group is merging views (§11): bob and carol merge into
	// alice's view. Retry until the view is complete — merges are
	// granted one at a time.
	for i := 1; i < len(groups); i++ {
		i := i
		var try func()
		try = func() {
			if views[i] != nil && views[i].Size() == len(groups) {
				return
			}
			groups[i].Merge(groups[0].Endpoint().ID())
			net.At(net.Now()+150*time.Millisecond, try)
		}
		net.At(net.Now()+time.Duration(i)*50*time.Millisecond, try)
	}
	net.RunFor(2 * time.Second)

	fmt.Println("--- everyone casts ---")
	base := net.Now()
	for i, g := range groups {
		i, g := i, g
		net.At(base+time.Duration(i)*10*time.Millisecond, func() {
			g.Cast(message.New([]byte(fmt.Sprintf("hello from %s", names[i]))))
		})
	}
	net.RunFor(time.Second)

	fmt.Println("--- carol crashes; the view heals around her ---")
	net.Crash(groups[2].Endpoint().ID())
	net.RunFor(2 * time.Second)

	net.At(net.Now(), func() {
		groups[0].Cast(message.New([]byte("life goes on")))
	})
	net.RunFor(time.Second)
}
