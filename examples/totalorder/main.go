// Totalorder: a replicated key-value store over the paper's §7 stack
// TOTAL:MBRSHIP:FRAG:NAK:COM, using the replicated-state-machine tool.
//
//	go run ./examples/totalorder
//
// Five replicas accept writes concurrently; the TOTAL layer's token
// serializes them, so every replica applies the identical sequence —
// including a replica that joins late and catches up by state
// transfer, and across the crash of the token holder.
package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/frag"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/layers/total"
	"horus/internal/netsim"
	"horus/internal/tools"
)

func stack() core.StackSpec {
	return core.StackSpec{
		total.NewWith(total.WithRequestRetry(50 * time.Millisecond)),
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
		),
		frag.NewWithSize(1024),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

// replica is one kv store member.
type replica struct {
	name string
	data map[string]string
	log  []string
	rsm  *tools.RSM
	g    *core.Group
	view *core.View
}

func newReplica(net *netsim.Network, name string, creator bool) *replica {
	r := &replica{name: name, data: map[string]string{}}
	apply := func(cmd []byte) {
		r.log = append(r.log, string(cmd))
		if k, v, ok := strings.Cut(string(cmd), "="); ok {
			r.data[k] = v
		}
	}
	snapshot := func() []byte { return []byte(strings.Join(r.log, "\n")) }
	restore := func(state []byte) {
		for _, cmd := range strings.Split(string(state), "\n") {
			if cmd != "" {
				apply([]byte(cmd))
			}
		}
	}
	r.rsm = tools.NewRSM(apply, snapshot, restore)
	ep := net.NewEndpoint(name)
	inner := r.rsm.Handler()
	g, err := ep.Join("kv", stack(), func(ev *core.Event) {
		if ev.Type == core.UView {
			r.view = ev.View
		}
		inner(ev)
	})
	if err != nil {
		panic(err)
	}
	r.g = g
	r.rsm.Bind(g)
	if creator {
		r.rsm.Bootstrap()
	}
	return r
}

func main() {
	net := netsim.New(netsim.Config{Seed: 7, DefaultLink: netsim.Link{
		Delay: time.Millisecond, Jitter: 2 * time.Millisecond, LossRate: 0.05,
	}})

	replicas := []*replica{newReplica(net, "r0", true)}
	for i := 1; i < 4; i++ {
		replicas = append(replicas, newReplica(net, fmt.Sprintf("r%d", i), false))
	}
	for i := 1; i < len(replicas); i++ {
		r := replicas[i]
		var try func()
		try = func() {
			if r.view != nil && r.view.Size() == len(replicas) {
				return
			}
			r.g.Merge(replicas[0].g.Endpoint().ID())
			net.At(net.Now()+150*time.Millisecond, try)
		}
		net.At(net.Now()+time.Duration(i)*50*time.Millisecond, try)
	}
	net.RunFor(3 * time.Second)
	fmt.Printf("group formed: %v\n", replicas[0].view)

	// Concurrent writes from every replica.
	base := net.Now()
	for i := 0; i < 20; i++ {
		i := i
		net.At(base+time.Duration(i)*4*time.Millisecond, func() {
			r := replicas[i%len(replicas)]
			r.rsm.Propose([]byte(fmt.Sprintf("key%d=%s.%d", i%5, r.name, i)))
		})
	}
	net.RunFor(2 * time.Second)

	// A latecomer joins and catches up by state transfer.
	late := newReplica(net, "late", false)
	replicas = append(replicas, late)
	var join func()
	join = func() {
		if late.view != nil && late.view.Size() == len(replicas) {
			return
		}
		late.g.Merge(replicas[0].g.Endpoint().ID())
		net.At(net.Now()+150*time.Millisecond, join)
	}
	net.At(net.Now()+20*time.Millisecond, join)
	net.RunFor(3 * time.Second)

	// The token holder (oldest member) crashes mid-stream.
	holder := replicas[0]
	fmt.Printf("crashing %s (initial token holder)\n", holder.name)
	base = net.Now()
	for i := 20; i < 30; i++ {
		i := i
		net.At(base+time.Duration(i-20)*4*time.Millisecond, func() {
			r := replicas[1+(i%3)]
			r.rsm.Propose([]byte(fmt.Sprintf("key%d=%s.%d", i%5, r.name, i)))
		})
	}
	net.At(base+20*time.Millisecond, func() { net.Crash(holder.g.Endpoint().ID()) })
	net.RunFor(5 * time.Second)

	fmt.Println("\nfinal state at every surviving replica:")
	for _, r := range replicas[1:] {
		keys := make([]string, 0, len(r.data))
		for k := range r.data {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, k+"="+r.data[k])
		}
		fmt.Printf("  %-5s applied=%2d  %s\n", r.name, len(r.log), strings.Join(parts, " "))
	}

	ref := replicas[1]
	agree := true
	for _, r := range replicas[2:] {
		if strings.Join(r.log, ";") != strings.Join(ref.log, ";") {
			agree = false
		}
	}
	fmt.Printf("\nreplicated logs identical across survivors: %v\n", agree)
}
