// Sockets: the paper's §11 claim that Horus can hide a process group
// behind a standard UNIX-sockets interface — "a UNIX sendto operation
// will be mapped to a multicast, and a recvfrom will receive the next
// incoming message". This demo runs a tiny chat over the wall-clock
// transport: three members that only ever call Sendto and Recvfrom.
//
//	go run ./examples/sockets
package main

import (
	"fmt"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/netsim"
	"horus/internal/socket"
)

func stack() core.StackSpec {
	return core.StackSpec{
		mbrship.NewWith(
			mbrship.WithGossipPeriod(20*time.Millisecond),
			mbrship.WithFlushTimeout(300*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(10*time.Millisecond),
			nak.WithSuspectAfter(8),
		),
		com.New,
	}
}

func main() {
	rt := netsim.NewRealTime(1, netsim.Link{Delay: 2 * time.Millisecond})

	open := func(name string) *socket.Socket {
		s, err := socket.Open(rt.NewEndpoint(name), "chat", stack(), 64)
		if err != nil {
			panic(err)
		}
		return s
	}
	alice := open("alice")
	bob := open("bob")
	carol := open("carol")

	// Form the group: sockets merge like any other member. Merges are
	// granted one at a time, so keep nudging until everyone sees all
	// three members.
	first := alice.Group().Endpoint().ID()
	for {
		formed := true
		for _, s := range []*socket.Socket{bob, carol} {
			if v := s.View(); v == nil || v.Size() < 3 {
				formed = false
				s.Merge(first)
			}
		}
		if formed {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("chat group formed:", alice.View())

	// Receivers: plain recvfrom loops, exactly like a datagram socket.
	done := make(chan struct{})
	for _, pair := range []struct {
		name string
		s    *socket.Socket
	}{{"bob", bob}, {"carol", carol}} {
		pair := pair
		go func() {
			// Each sees alice's multicast and bob's multicast (the
			// sender's own copy loops back too); carol's direct send
			// goes to alice alone.
			for i := 0; i < 2; i++ {
				d, ok := pair.s.Recvfrom()
				if !ok {
					return
				}
				fmt.Printf("%s recvfrom: %q (from %s)\n", pair.name, d.Data, d.From.Site)
			}
			done <- struct{}{}
		}()
	}

	// Senders: sendto multicasts to the group.
	alice.Sendto([]byte("hello, group"))
	time.Sleep(20 * time.Millisecond)
	bob.Sendto([]byte("hi alice"))
	time.Sleep(20 * time.Millisecond)
	carol.SendtoMember(first, []byte("psst, alice — just you"))

	// Alice reads everything addressed to her: her own multicast,
	// bob's multicast, and carol's direct message.
	for i := 0; i < 3; i++ {
		d, ok := alice.Recvfrom()
		if !ok {
			break
		}
		fmt.Printf("alice recvfrom: %q (from %s)\n", d.Data, d.From.Site)
	}
	<-done
	<-done

	alice.Close()
	bob.Close()
	carol.Close()
	fmt.Println("sockets closed; goodbye")
}
