// Workqueue: the load-balancing tool of §1. Four workers share a queue
// of 16 tasks with zero coordination messages: each worker derives the
// identical task→owner assignment from the agreed view alone
// (consistent views, P15, do all the work). When a worker crashes, the
// view change rebalances — and only the dead worker's tasks move.
//
//	go run ./examples/workqueue
package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/netsim"
	"horus/internal/tools"
)

func stack() core.StackSpec {
	return core.StackSpec{
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

type worker struct {
	name string
	bal  *tools.Balancer
	g    *core.Group
	view *core.View
}

func main() {
	net := netsim.New(netsim.Config{Seed: 4, DefaultLink: netsim.Link{Delay: time.Millisecond}})

	tasks := make([]string, 16)
	for i := range tasks {
		tasks[i] = fmt.Sprintf("task-%02d", i)
	}

	workers := make([]*worker, 4)
	for i := range workers {
		w := &worker{name: fmt.Sprintf("w%d", i), bal: tools.NewBalancer()}
		ep := net.NewEndpoint(w.name)
		inner := w.bal.Handler()
		g, err := ep.Join("wq", stack(), func(ev *core.Event) {
			if ev.Type == core.UView {
				w.view = ev.View
			}
			inner(ev)
		})
		if err != nil {
			panic(err)
		}
		w.g = g
		w.bal.Bind(g)
		workers[i] = w
	}
	for i := 1; i < len(workers); i++ {
		w := workers[i]
		var try func()
		try = func() {
			if w.view != nil && w.view.Size() == len(workers) {
				return
			}
			w.g.Merge(workers[0].g.Endpoint().ID())
			net.At(net.Now()+150*time.Millisecond, try)
		}
		net.At(net.Now()+time.Duration(i)*50*time.Millisecond, try)
	}
	net.RunFor(2 * time.Second)

	show := func(tag string, ws []*worker) {
		fmt.Printf("== %s ==\n", tag)
		assign := map[string][]string{}
		for _, task := range tasks {
			owner, ok := ws[0].bal.Owner(task)
			if !ok {
				panic("no owner")
			}
			// Every worker agrees — check it.
			for _, w := range ws[1:] {
				if o, _ := w.bal.Owner(task); o != owner {
					panic("assignment disagreement")
				}
			}
			assign[owner.Site] = append(assign[owner.Site], task)
		}
		names := make([]string, 0, len(assign))
		for n := range assign {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-3s handles %2d: %s\n", n, len(assign[n]), strings.Join(assign[n], " "))
		}
	}

	show("four workers, no coordination messages", workers)

	fmt.Println("\nw2 crashes; the view change rebalances (only w2's tasks move)")
	before := map[string]core.EndpointID{}
	for _, task := range tasks {
		before[task], _ = workers[0].bal.Owner(task)
	}
	net.Crash(workers[2].g.Endpoint().ID())
	net.RunFor(3 * time.Second)

	survivors := []*worker{workers[0], workers[1], workers[3]}
	show("three survivors", survivors)

	moved, stayed := 0, 0
	for _, task := range tasks {
		now, _ := survivors[0].bal.Owner(task)
		if now == before[task] {
			stayed++
		} else {
			moved++
		}
	}
	fmt.Printf("\n%d tasks moved (the dead worker's), %d stayed put\n", moved, stayed)
}
