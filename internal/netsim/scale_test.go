package netsim_test

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/netsim"
)

// attachG is attach for an explicit group address, for tests that put
// many groups on one fabric.
func attachG(tb testing.TB, net *netsim.Network, site string, g core.GroupAddr) (*core.Endpoint, *rawLayer) {
	tb.Helper()
	l := &rawLayer{}
	ep := net.NewEndpoint(site)
	if _, err := ep.Join(g, core.StackSpec{func() core.Layer { return l }}, nil); err != nil {
		tb.Fatal(err)
	}
	return ep, l
}

func castG(ep *core.Endpoint, g core.GroupAddr, body []byte) {
	ep.Do(func() {
		grp := ep.Group(g)
		if grp == nil {
			return
		}
		grp.Stack().Down(&core.Event{Type: core.DCast, Msg: message.New(body)})
	})
}

// TestBroadcastScopedToGroup pins the netsim scalability fix: an
// empty-dests broadcast fans out to the endpoints registered for the
// group (core.GroupRegistrar), not to every endpoint on the fabric.
// Before the fix this cluster cost O(1000) per broadcast — the
// thousand-endpoint soak in internal/loadgen is what surfaced it.
func TestBroadcastScopedToGroup(t *testing.T) {
	const groups, members = 100, 10
	net := netsim.New(netsim.Config{Seed: 1})
	eps := make([]*core.Endpoint, 0, groups*members)
	for g := 0; g < groups; g++ {
		addr := core.GroupAddr(fmt.Sprintf("grp%d", g))
		for m := 0; m < members; m++ {
			ep, _ := attachG(t, net, fmt.Sprintf("g%d-m%d", g, m), addr)
			eps = append(eps, ep)
		}
	}
	castG(eps[0], "grp0", []byte("x")) // broadcast: rawLayer passes nil dests
	net.RunFor(time.Millisecond)
	st := net.Stats()
	if st.Sent != members {
		t.Fatalf("broadcast fan-out %d packets, want group size %d (scan not scoped to group)", st.Sent, members)
	}
	if st.Delivered != members || st.Blocked != 0 {
		t.Fatalf("delivered=%d blocked=%d, want %d/0", st.Delivered, st.Blocked, members)
	}
}

// TestBroadcastSkipsDepartedMember verifies the registrar unhooks on
// leave: a member that left the group is no longer a broadcast target.
func TestBroadcastSkipsDepartedMember(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 2})
	a, _ := attachG(t, net, "a", "grp")
	b, _ := attachG(t, net, "b", "grp")
	_, lc := attachG(t, net, "c", "grp")
	b.Do(func() { b.Group("grp").Leave() })
	net.RunFor(time.Millisecond)
	castG(a, "grp", []byte("x"))
	net.RunFor(time.Millisecond)
	st := net.Stats()
	if st.Sent != 2 || st.Blocked != 0 {
		t.Fatalf("sent=%d blocked=%d after leave, want 2/0", st.Sent, st.Blocked)
	}
	if len(lc.got) != 1 {
		t.Fatalf("c got %d packets, want 1", len(lc.got))
	}
}

// BenchmarkLoadTick is the pinned cluster-scale fabric number: one
// broadcast in every group of a 100-group x 10-member fabric (1000
// packets end to end), including delivery. This is the inner loop of
// the loadgen soak; the broadcast-scoping fix and the packet fast
// paths are gated on it.
func BenchmarkLoadTick(b *testing.B) {
	const groups, members = 100, 10
	net := netsim.New(netsim.Config{Seed: 3, DefaultLink: netsim.Link{Delay: 100 * time.Microsecond}})
	eps := make([]*core.Endpoint, 0, groups*members)
	addrs := make([]core.GroupAddr, groups)
	for g := 0; g < groups; g++ {
		addrs[g] = core.GroupAddr(fmt.Sprintf("grp%d", g))
		for m := 0; m < members; m++ {
			ep, _ := attachG(b, net, fmt.Sprintf("g%d-m%d", g, m), addrs[g])
			eps = append(eps, ep)
		}
	}
	body := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := 0; g < groups; g++ {
			castG(eps[g*members], addrs[g], body)
		}
		net.RunFor(time.Millisecond)
	}
}
