// Package netsim provides the communication substrate underneath every
// Horus stack: a best-effort (property P1) network in the spirit of
// the paper's ATM/internet bottom layers.
//
// The paper's testbed was real ATM hardware; we substitute a
// deterministic discrete-event simulation so that every protocol path
// — message loss (NAK retransmission), garbling (CHKSUM), duplication,
// reordering, partitions (MERGE), and crashes (MBRSHIP flush) — can be
// exercised reproducibly from a seed. Virtual time also makes timer-
// driven protocols testable in microseconds of wall time.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"horus/internal/core"
)

// Link describes the behaviour of the medium between two endpoints.
// The zero value is a perfect, zero-latency link.
type Link struct {
	// Delay is the base one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter); jitter
	// larger than the inter-send gap causes reordering.
	Jitter time.Duration
	// LossRate is the probability a packet is silently dropped.
	LossRate float64
	// DupRate is the probability a packet is delivered twice.
	DupRate float64
	// GarbleRate is the probability a random byte of the packet is
	// corrupted in flight.
	GarbleRate float64
	// Bandwidth, when positive, serializes packets on the directed
	// link at Bandwidth bytes per second: each packet occupies the
	// link for size/Bandwidth before propagating, and packets queue
	// behind each other. It makes wire volume observable in virtual
	// time — which is how the compression layer's "improve bandwidth
	// use" benefit is measured.
	Bandwidth int
	// ReorderRate is the probability a packet is held back and
	// released out of order: a held packet re-enters the link only
	// after ReorderDepth later packets have departed on the same
	// directed link (or after ReorderHold of link silence, whichever
	// comes first), so it arrives behind traffic sent after it. Unlike
	// Jitter — which only reorders when it exceeds the inter-send gap —
	// the explicit rule guarantees inversions at any send rate.
	ReorderRate float64
	// ReorderDepth is how many subsequent departures overtake a held
	// packet before it is released; zero means 3.
	ReorderDepth int
	// ReorderHold caps how long a held packet waits for followers on a
	// link that has gone quiet; zero means 250ms.
	ReorderHold time.Duration
}

// Reorder-rule defaults, shared by every fabric that implements the
// vocabulary (netsim here, chaosnet over real sockets).
const (
	DefaultReorderDepth = 3
	DefaultReorderHold  = 250 * time.Millisecond
)

// Config configures a simulated network.
type Config struct {
	// Seed drives all randomness; runs with equal seeds and schedules
	// are identical.
	Seed int64
	// DefaultLink applies between every pair of endpoints unless
	// overridden with SetLink.
	DefaultLink Link
}

// Stats counts network-level activity, for tests and experiments.
type Stats struct {
	Sent       int // packets handed to the network (per destination)
	Delivered  int // packets delivered to an endpoint
	Lost       int // packets dropped by loss
	Garbled    int // packets corrupted in flight
	Duplicated int // extra deliveries due to duplication
	Blocked    int // packets dropped by partition or crash
	Bytes      int // wire bytes delivered
	Reordered  int // packets held back by the reorder rule
	Throttled  int // packets that queued behind earlier traffic (bandwidth)
	// Congested counts packets that queued behind earlier traffic in
	// their host's shared egress bucket (Host.EgressBudget) — the
	// per-host analogue of Throttled.
	Congested int
	// CollapseDropped counts packets dropped because the host's
	// bounded egress queue overflowed: offered load exceeded the
	// egress budget for long enough that delay turned into loss.
	CollapseDropped int
}

// Network is a simulated broadcast medium connecting endpoints. It
// implements core.Transport. All event execution is driven by Run /
// RunFor / Step on a single goroutine; virtual time only advances
// there.
type Network struct {
	mu        sync.Mutex
	now       time.Duration
	events    eventHeap
	seq       uint64
	rng       *rand.Rand
	endpoints map[core.EndpointID]*core.Endpoint
	order     []core.EndpointID // attach order, for deterministic fan-out
	// groups tracks which endpoints have a stack composed for which
	// group address (core.GroupRegistrar), in join order. Empty-dests
	// broadcasts fan out over this set rather than every attached
	// endpoint: a receiver without the group dropped the packet anyway,
	// so scoping the scan is behaviour-preserving — but it turns the
	// per-broadcast cost from O(cluster endpoints) into O(group
	// members), which is what lets thousands of endpoints share one
	// simulated fabric (see the loadgen harness).
	groups     map[core.GroupAddr][]core.EndpointID
	links      map[pair]Link // directed overrides: pair{from, to}
	def        Link
	crashed    map[core.EndpointID]bool
	partition  map[core.EndpointID]int // partition id; absent = 0
	linkFree   map[pair]time.Duration  // directed link busy-until (bandwidth model)
	held       map[pair][]*heldPacket  // directed link reorder holds
	hosts      map[core.EndpointID]Host
	egressFree map[core.EndpointID]time.Duration // per-host egress busy-until
	// Per-host slices of the egress ledger, feeding the
	// core.CongestionReporter hook; the global Stats counters remain
	// the sum over hosts.
	egressCongested map[core.EndpointID]uint64
	egressDropped   map[core.EndpointID]uint64
	nextBirth       uint64
	stats           Stats
}

// heldPacket is one packet parked by the reorder rule, waiting for
// `remaining` later departures on its directed link (or the hold
// backstop) before it transmits.
type heldPacket struct {
	remaining  int
	released   bool
	sendLocked func() // transmit; caller holds n.mu
}

type pair struct{ a, b core.EndpointID }

// New creates a network.
func New(cfg Config) *Network {
	return &Network{
		rng:             rand.New(rand.NewSource(cfg.Seed)),
		endpoints:       make(map[core.EndpointID]*core.Endpoint),
		groups:          make(map[core.GroupAddr][]core.EndpointID),
		links:           make(map[pair]Link),
		def:             cfg.DefaultLink,
		crashed:         make(map[core.EndpointID]bool),
		partition:       make(map[core.EndpointID]int),
		linkFree:        make(map[pair]time.Duration),
		held:            make(map[pair][]*heldPacket),
		hosts:           make(map[core.EndpointID]Host),
		egressFree:      make(map[core.EndpointID]time.Duration),
		egressCongested: make(map[core.EndpointID]uint64),
		egressDropped:   make(map[core.EndpointID]uint64),
		nextBirth:       1,
	}
}

// NewEndpoint creates and attaches an endpoint at the named site. The
// endpoint's Birth stamp records attach order, giving the total "age"
// order that coordinator election relies on.
func (n *Network) NewEndpoint(site string) *core.Endpoint {
	n.mu.Lock()
	id := core.EndpointID{Site: site, Birth: n.nextBirth}
	n.nextBirth++
	n.mu.Unlock()
	ep := core.NewEndpoint(id, n)
	n.mu.Lock()
	n.endpoints[id] = ep
	n.order = append(n.order, id)
	n.mu.Unlock()
	return ep
}

// JoinGroup implements core.GroupRegistrar: it records that id has a
// stack composed for group g, making it an empty-dests broadcast
// target for that group. Registration order is join order, so fan-out
// stays deterministic.
func (n *Network) JoinGroup(id core.EndpointID, g core.GroupAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups[g] = append(n.groups[g], id)
}

// LeaveGroup implements core.GroupRegistrar: the endpoint's stack for
// g is gone (leave, destroy, or crash) and it stops being a broadcast
// target for the group.
func (n *Network) LeaveGroup(id core.EndpointID, g core.GroupAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	members := n.groups[g]
	for i, m := range members {
		if m == id {
			n.groups[g] = append(members[:i], members[i+1:]...)
			break
		}
	}
	if len(n.groups[g]) == 0 {
		delete(n.groups, g)
	}
}

// SetLink overrides the link between a and b in both directions — the
// symmetric wrapper around SetLinkDirected. Per-pair overrides take
// precedence over DefaultLink; an explicit zero-value override means
// "perfect link", not "no override" (use ClearLink to fall back to the
// default).
func (n *Network) SetLink(a, b core.EndpointID, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[pair{a, b}] = l
	n.links[pair{b, a}] = l
}

// SetLinkDirected overrides the link for packets travelling from a to
// b only; the reverse direction keeps its current behaviour. Chaos
// schedules use it to model asymmetric faults (a hears b while b is
// deaf to a). Precedence per direction: directed override, then
// DefaultLink.
func (n *Network) SetLinkDirected(a, b core.EndpointID, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[pair{a, b}] = l
}

// ClearLink removes any override between a and b (both directions);
// the pair falls back to DefaultLink.
func (n *Network) ClearLink(a, b core.EndpointID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.links, pair{a, b})
	delete(n.links, pair{b, a})
}

// SetDefaultLink replaces the default link applied to all pairs
// without an override.
func (n *Network) SetDefaultLink(l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = l
}

// SetHost overrides the per-host limits for the named endpoint. An
// explicit zero-value Host means "no limits", same as never calling
// SetHost; the distinction link overrides make (override vs default)
// does not arise because there is no default host rule.
func (n *Network) SetHost(id core.EndpointID, h Host) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[id] = h
	// A fresh budget starts with an empty bucket: the horizon of a
	// previous, possibly tighter budget must not leak into this one.
	delete(n.egressFree, id)
}

// ClearHost removes the per-host limits for the named endpoint.
func (n *Network) ClearHost(id core.EndpointID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.hosts, id)
	delete(n.egressFree, id)
}

func (n *Network) linkFor(from, to core.EndpointID) Link {
	// Fast path: no overrides configured. The pair hash costs two
	// string hashes per packet, which dominates a cluster-scale soak
	// where every link is the default.
	if len(n.links) == 0 {
		return n.def
	}
	if l, ok := n.links[pair{from, to}]; ok {
		return l
	}
	return n.def
}

// Crash fail-stops the endpoint: all of its traffic is dropped from
// now on and its protocol execution halts. Other members observe
// silence — exactly the failure model MBRSHIP converts into clean
// view changes.
func (n *Network) Crash(id core.EndpointID) {
	n.mu.Lock()
	ep := n.endpoints[id]
	n.crashed[id] = true
	n.mu.Unlock()
	if ep != nil {
		ep.Destroy()
	}
}

// Detach removes a (typically crashed) endpoint from the network
// entirely: it stops counting as a broadcast target and its fault
// bookkeeping is forgotten. Chaos schedules detach a crashed
// incarnation when the site rejoins with a fresh endpoint, so repeated
// crash/recover cycles do not grow the fan-out set without bound.
// Detaching a live endpoint crashes it first.
func (n *Network) Detach(id core.EndpointID) {
	n.Crash(id)
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, id)
	delete(n.crashed, id)
	delete(n.partition, id)
	for i, e := range n.order {
		if e == id {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
	for p := range n.links {
		if p.a == id || p.b == id {
			delete(n.links, p)
		}
	}
	for p := range n.linkFree {
		if p.a == id || p.b == id {
			delete(n.linkFree, p)
		}
	}
	for p := range n.held {
		if p.a == id || p.b == id {
			delete(n.held, p)
		}
	}
	delete(n.hosts, id)
	delete(n.egressFree, id)
	delete(n.egressCongested, id)
	delete(n.egressDropped, id)
	// Crash→Destroy already deregistered the endpoint's groups through
	// core.GroupRegistrar; sweep anyway so an endpoint the destroy path
	// never reached (e.g. attached but externally constructed) cannot
	// leave a stale broadcast target behind.
	for g, members := range n.groups {
		for i, m := range members {
			if m == id {
				n.groups[g] = append(members[:i], members[i+1:]...)
				break
			}
		}
		if len(n.groups[g]) == 0 {
			delete(n.groups, g)
		}
	}
}

// Crashed reports whether the endpoint has been crashed.
func (n *Network) Crashed(id core.EndpointID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id]
}

// Partition splits the network into component groups; traffic flows
// only within a group. Endpoints not listed join component 0 together.
func (n *Network) Partition(groups ...[]core.EndpointID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[core.EndpointID]int)
	for i, g := range groups {
		for _, id := range g {
			n.partition[id] = i + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[core.EndpointID]int)
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// EgressFeedback snapshots the egress ledger for one sending host,
// implementing core.CongestionReporter: the backlog currently queued
// behind the host's token bucket plus the cumulative congestion
// counters charged to that host. Counters survive SetHost/ClearHost
// (they are history, not configuration) and reset only on Detach.
func (n *Network) EgressFeedback(id core.EndpointID) core.EgressFeedback {
	n.mu.Lock()
	defer n.mu.Unlock()
	return core.EgressFeedback{
		BacklogBytes:    BucketBacklog(n.now, n.egressFree[id], n.hosts[id].EgressBudget),
		Congested:       n.egressCongested[id],
		CollapseDropped: n.egressDropped[id],
	}
}

// Now returns the current virtual time. Part of core.Transport.
func (n *Network) Now() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// Send transmits wire bytes best-effort. Part of core.Transport.
// Empty dests broadcasts to every endpoint with a stack composed for
// the group address (the core.GroupRegistrar scoping; endpoints
// without the group dropped the packet anyway).
func (n *Network) Send(from core.EndpointID, group core.GroupAddr, dests []core.EndpointID, wire []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.crashed) != 0 && n.crashed[from] {
		return
	}
	targets := dests
	if len(targets) == 0 {
		targets = n.groups[group]
	}
	// One defensive copy shared by the whole fan-out: the caller may
	// reuse wire after Send returns, but deliveries only read the
	// buffer (Deliver unmarshals into fresh storage), so per-
	// destination copies are needed only when a link garbles bytes in
	// flight — sendOneLocked clones on that path alone.
	shared := make([]byte, len(wire))
	copy(shared, wire)
	for _, dst := range targets {
		n.sendOneLocked(from, group, dst, shared)
	}
}

// sendOneLocked routes one copy of wire toward dst, applying link
// faults. wire is the fan-out's shared defensive copy: it must not be
// mutated, only garble clones it. Caller holds n.mu.
func (n *Network) sendOneLocked(from core.EndpointID, group core.GroupAddr, dst core.EndpointID, wire []byte) {
	n.stats.Sent++
	ep := n.endpoints[dst]
	// Emptiness guards: each of these maps is keyed by (a pair of)
	// EndpointIDs, whose Site strings make every lookup a string hash.
	// Idle fault machinery must not tax the per-packet path.
	if ep == nil ||
		(len(n.crashed) != 0 && n.crashed[dst]) ||
		(len(n.partition) != 0 && n.partition[from] != n.partition[dst]) {
		n.stats.Blocked++
		return
	}
	l := n.linkFor(from, dst)
	deliveries := 1
	if l.DupRate > 0 && n.rng.Float64() < l.DupRate {
		deliveries = 2
		n.stats.Duplicated++
	}
	for i := 0; i < deliveries; i++ {
		if l.LossRate > 0 && n.rng.Float64() < l.LossRate {
			n.stats.Lost++
			continue
		}
		buf := wire
		if l.GarbleRate > 0 && len(buf) > 0 && n.rng.Float64() < l.GarbleRate {
			buf = append([]byte(nil), wire...)
			buf[n.rng.Intn(len(buf))] ^= byte(1 + n.rng.Intn(255))
			n.stats.Garbled++
		}
		if l.ReorderRate > 0 && n.rng.Float64() < l.ReorderRate {
			n.holdLocked(from, group, dst, buf, l)
			continue
		}
		n.transmitLocked(from, group, dst, buf)
		n.departLocked(pair{a: from, b: dst})
	}
}

// transmitLocked puts one packet on the directed link: host egress
// budget, then propagation delay, jitter, and bandwidth serialization,
// then a scheduled delivery. Rules are read at transmit time, so a
// packet released from a reorder hold sees the rules in force when it
// actually departs. The host bucket is acquired before the link
// bucket: the packet clears the sender's shared NIC first
// (store-and-forward), then contends for the directed link from that
// moment. Caller holds n.mu.
func (n *Network) transmitLocked(from core.EndpointID, group core.GroupAddr, dst core.EndpointID, buf []byte) {
	ep := n.endpoints[dst]
	if ep == nil || (len(n.crashed) != 0 && n.crashed[dst]) {
		n.stats.Blocked++
		return
	}
	clear := n.now
	if len(n.hosts) != 0 {
		newFree, c, out := EgressAcquire(n.hosts[from], from, dst, n.now, n.egressFree[from], len(buf))
		clear = c
		switch out {
		case EgressDropped:
			n.stats.CollapseDropped++
			n.egressDropped[from]++
			return
		case EgressQueued:
			n.stats.Congested++
			n.egressCongested[from]++
			n.egressFree[from] = newFree
		case EgressGranted:
			n.egressFree[from] = newFree
		}
	}
	l := n.linkFor(from, dst)
	delay := l.Delay
	if l.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(l.Jitter)))
	}
	if l.Bandwidth > 0 {
		// Serialize on the directed link: the packet departs when the
		// link is free — no earlier than its NIC clear time — and
		// occupies the link for size/Bandwidth.
		dir := pair{a: from, b: dst}
		linkFree, queued := BucketAcquire(clear, n.linkFree[dir], len(buf), l.Bandwidth)
		if queued {
			n.stats.Throttled++
		}
		n.linkFree[dir] = linkFree
		delay += linkFree - n.now
	} else {
		delay += clear - n.now
	}
	dstEp, dstID := ep, dst
	n.scheduleLocked(n.now+delay, func() {
		n.mu.Lock()
		dead := len(n.crashed) != 0 && n.crashed[dstID]
		if !dead {
			n.stats.Delivered++
			n.stats.Bytes += len(buf)
		}
		n.mu.Unlock()
		if !dead {
			dstEp.Deliver(group, buf)
		}
	})
}

// holdLocked parks one packet under the reorder rule: it transmits
// after ReorderDepth later departures on the same directed link, or
// after ReorderHold if the link goes quiet first. Caller holds n.mu.
func (n *Network) holdLocked(from core.EndpointID, group core.GroupAddr, dst core.EndpointID, buf []byte, l Link) {
	depth := l.ReorderDepth
	if depth <= 0 {
		depth = DefaultReorderDepth
	}
	hold := l.ReorderHold
	if hold <= 0 {
		hold = DefaultReorderHold
	}
	n.stats.Reordered++
	dir := pair{a: from, b: dst}
	h := &heldPacket{remaining: depth}
	h.sendLocked = func() { n.transmitLocked(from, group, dst, buf) }
	n.held[dir] = append(n.held[dir], h)
	n.scheduleLocked(n.now+hold, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if h.released {
			return
		}
		h.released = true
		hs := n.held[dir]
		for i, x := range hs {
			if x == h {
				n.held[dir] = append(hs[:i], hs[i+1:]...)
				break
			}
		}
		h.sendLocked()
	})
}

// departLocked counts one departure on a directed link against its
// held packets, releasing any whose depth is exhausted. Caller holds
// n.mu.
func (n *Network) departLocked(dir pair) {
	if len(n.held) == 0 {
		return
	}
	hs := n.held[dir]
	if len(hs) == 0 {
		return
	}
	keep := hs[:0]
	var release []*heldPacket
	for _, h := range hs {
		h.remaining--
		if h.remaining <= 0 {
			h.released = true
			release = append(release, h)
		} else {
			keep = append(keep, h)
		}
	}
	n.held[dir] = keep
	for _, h := range release {
		h.sendLocked()
	}
}

// SetTimer schedules fn after d of virtual time. Part of
// core.Transport.
func (n *Network) SetTimer(d time.Duration, fn func()) (cancel func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ev := n.scheduleLocked(n.now+d, fn)
	return func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		ev.cancelled = true
	}
}

// At schedules fn at absolute virtual time t (or now, if t has
// passed). Tests script application behaviour with it.
func (n *Network) At(t time.Duration, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if t < n.now {
		t = n.now
	}
	n.scheduleLocked(t, fn)
}

func (n *Network) scheduleLocked(t time.Duration, fn func()) *event {
	ev := &event{at: t, seq: n.seq, fn: fn}
	n.seq++
	heap.Push(&n.events, ev)
	return ev
}

// Step executes the next pending event, returning false if none
// remain.
func (n *Network) Step() bool {
	n.mu.Lock()
	for n.events.Len() > 0 {
		ev := heap.Pop(&n.events).(*event)
		if ev.cancelled {
			continue
		}
		n.now = ev.at
		n.mu.Unlock()
		ev.fn()
		return true
	}
	n.mu.Unlock()
	return false
}

// RunUntil executes events until virtual time exceeds deadline or no
// events remain. Events scheduled exactly at deadline still run.
func (n *Network) RunUntil(deadline time.Duration) {
	for {
		n.mu.Lock()
		run := false
		var ev *event
		for n.events.Len() > 0 {
			peek := n.events[0]
			if peek.cancelled {
				heap.Pop(&n.events)
				continue
			}
			if peek.at > deadline {
				break
			}
			ev = heap.Pop(&n.events).(*event)
			n.now = ev.at
			run = true
			break
		}
		n.mu.Unlock()
		if !run {
			if n.Now() < deadline {
				n.mu.Lock()
				n.now = deadline
				n.mu.Unlock()
			}
			return
		}
		ev.fn()
	}
}

// RunFor advances virtual time by d, executing due events.
func (n *Network) RunFor(d time.Duration) { n.RunUntil(n.Now() + d) }

// Pending returns the number of queued events (cancelled ones
// included), for diagnostics.
func (n *Network) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.events.Len()
}

// String summarizes the network state.
func (n *Network) String() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return fmt.Sprintf("netsim{t=%v endpoints=%d pending=%d}", n.now, len(n.endpoints), n.events.Len())
}

// event is one scheduled occurrence in the simulation.
type event struct {
	at        time.Duration
	seq       uint64 // schedule order; ties in time break by seq
	fn        func()
	cancelled bool
}

// eventHeap is a min-heap over (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
