//horus:wallclock — RealTime is the wall-clock transport by definition:
// goroutines and real timers stand in for the simulator's event queue.

package netsim

import (
	"math/rand"
	"sync"
	"time"

	"horus/internal/core"
)

// RealTime is a goroutine-based in-process transport using wall-clock
// timers. It provides the same best-effort semantics as Network but
// runs in real time, for example programs that want to feel like a
// live system. Determinism is not guaranteed; tests should use Network.
type RealTime struct {
	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[core.EndpointID]*core.Endpoint
	order     []core.EndpointID
	crashed   map[core.EndpointID]bool
	link      Link
	nextBirth uint64
	start     time.Time
}

// NewRealTime creates a real-time transport with the given link
// behaviour between every pair.
func NewRealTime(seed int64, link Link) *RealTime {
	return &RealTime{
		rng:       rand.New(rand.NewSource(seed)),
		endpoints: make(map[core.EndpointID]*core.Endpoint),
		crashed:   make(map[core.EndpointID]bool),
		link:      link,
		nextBirth: 1,
		start:     time.Now(),
	}
}

// NewEndpoint creates and attaches an endpoint at the named site.
func (r *RealTime) NewEndpoint(site string) *core.Endpoint {
	r.mu.Lock()
	id := core.EndpointID{Site: site, Birth: r.nextBirth}
	r.nextBirth++
	r.mu.Unlock()
	ep := core.NewEndpoint(id, r)
	r.mu.Lock()
	r.endpoints[id] = ep
	r.order = append(r.order, id)
	r.mu.Unlock()
	return ep
}

// Crash fail-stops the endpoint.
func (r *RealTime) Crash(id core.EndpointID) {
	r.mu.Lock()
	ep := r.endpoints[id]
	r.crashed[id] = true
	r.mu.Unlock()
	if ep != nil {
		ep.Destroy()
	}
}

// Send implements core.Transport.
func (r *RealTime) Send(from core.EndpointID, group core.GroupAddr, dests []core.EndpointID, wire []byte) {
	r.mu.Lock()
	if r.crashed[from] {
		r.mu.Unlock()
		return
	}
	targets := dests
	if len(targets) == 0 {
		targets = append([]core.EndpointID(nil), r.order...)
	}
	type delivery struct {
		ep    *core.Endpoint
		delay time.Duration
	}
	var out []delivery
	for _, dst := range targets {
		ep := r.endpoints[dst]
		if ep == nil || r.crashed[dst] {
			continue
		}
		if r.link.LossRate > 0 && r.rng.Float64() < r.link.LossRate {
			continue
		}
		delay := r.link.Delay
		if r.link.Jitter > 0 {
			delay += time.Duration(r.rng.Int63n(int64(r.link.Jitter)))
		}
		out = append(out, delivery{ep, delay})
	}
	r.mu.Unlock()

	for _, d := range out {
		buf := make([]byte, len(wire))
		copy(buf, wire)
		ep := d.ep
		if d.delay <= 0 {
			// Deliver on a fresh goroutine to keep Send non-blocking;
			// the endpoint's event queue serializes execution.
			go ep.Deliver(group, buf)
			continue
		}
		time.AfterFunc(d.delay, func() { ep.Deliver(group, buf) })
	}
}

// SetTimer implements core.Transport using wall-clock timers.
func (r *RealTime) SetTimer(d time.Duration, fn func()) (cancel func()) {
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}

// Now implements core.Transport: wall time since transport creation.
func (r *RealTime) Now() time.Duration { return time.Since(r.start) }
