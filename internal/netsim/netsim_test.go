package netsim_test

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/netsim"
)

// sink joins an endpoint to a trivial stack that records raw packets.
type rawLayer struct {
	core.Base
	got []string
}

func (r *rawLayer) Name() string { return "RAW" }
func (r *rawLayer) Down(ev *core.Event) {
	if ev.Type == core.DCast {
		r.Ctx.Transmit(ev.Dests, ev.Msg)
		return
	}
	r.Ctx.Down(ev)
}
func (r *rawLayer) Up(ev *core.Event) {
	if ev.Type == core.UPacket {
		r.got = append(r.got, string(ev.Msg.Body()))
		return
	}
	r.Ctx.Up(ev)
}

func attach(t *testing.T, net *netsim.Network, site string) (*core.Endpoint, *rawLayer) {
	t.Helper()
	l := &rawLayer{}
	ep := net.NewEndpoint(site)
	if _, err := ep.Join("g", core.StackSpec{func() core.Layer { return l }}, nil); err != nil {
		t.Fatal(err)
	}
	return ep, l
}

func send(ep *core.Endpoint, body string, dests ...core.EndpointID) {
	ep.Do(func() {
		g := ep.Group("g")
		if g == nil {
			// A crashed endpoint's groups are gone; transmitting from
			// the grave is exactly what must not happen.
			return
		}
		g.Stack().Down(&core.Event{Type: core.DCast, Msg: message.New([]byte(body)), Dests: dests})
	})
}

func TestPerfectDelivery(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 1})
	a, _ := attach(t, net, "a")
	_, lb := attach(t, net, "b")
	send(a, "hello")
	net.RunFor(time.Millisecond)
	if len(lb.got) != 1 || lb.got[0] != "hello" {
		t.Fatalf("b got %v", lb.got)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() ([]string, netsim.Stats) {
		net := netsim.New(netsim.Config{Seed: 42, DefaultLink: netsim.Link{
			Delay: time.Millisecond, Jitter: 5 * time.Millisecond,
			LossRate: 0.3, DupRate: 0.1, GarbleRate: 0.1,
		}})
		a, _ := attach(t, net, "a")
		_, lb := attach(t, net, "b")
		for i := 0; i < 50; i++ {
			i := i
			net.At(time.Duration(i)*time.Millisecond, func() {
				send(a, fmt.Sprintf("m%02d", i))
			})
		}
		net.RunFor(time.Second)
		return lb.got, net.Stats()
	}
	got1, st1 := run()
	got2, st2 := run()
	if st1 != st2 {
		t.Fatalf("stats differ across identical seeded runs:\n%+v\n%+v", st1, st2)
	}
	if len(got1) != len(got2) {
		t.Fatalf("deliveries differ: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("delivery %d differs: %q vs %q", i, got1[i], got2[i])
		}
	}
}

func TestLossRateRoughlyHonored(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 3, DefaultLink: netsim.Link{LossRate: 0.5}})
	a, _ := attach(t, net, "a")
	_, lb := attach(t, net, "b")
	for i := 0; i < 500; i++ {
		i := i
		net.At(time.Duration(i)*time.Millisecond, func() { send(a, "x") })
	}
	net.RunFor(time.Second)
	// Each cast broadcasts to both endpoints; b's copies = 500.
	if n := len(lb.got); n < 180 || n > 320 {
		t.Fatalf("b received %d of 500 at 50%% loss (outside [180,320])", n)
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 5})
	a, _ := attach(t, net, "a")
	b, lb := attach(t, net, "b")
	net.Partition([]core.EndpointID{a.ID()}, []core.EndpointID{b.ID()})
	send(a, "blocked")
	net.RunFor(10 * time.Millisecond)
	if len(lb.got) != 0 {
		t.Fatal("partition leaked a packet")
	}
	net.Heal()
	send(a, "through")
	net.RunFor(10 * time.Millisecond)
	if len(lb.got) != 1 || lb.got[0] != "through" {
		t.Fatalf("after heal: %v", lb.got)
	}
}

func TestCrashSilencesEndpoint(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 6})
	a, la := attach(t, net, "a")
	b, lb := attach(t, net, "b")
	net.Crash(b.ID())
	send(a, "to the dead")
	net.RunFor(10 * time.Millisecond)
	if len(lb.got) != 0 {
		t.Fatal("crashed endpoint received a packet")
	}
	if !net.Crashed(b.ID()) {
		t.Error("Crashed() = false")
	}
	// And the dead cannot send (the self-delivery to a also vanishes).
	send(b, "from the grave")
	net.RunFor(10 * time.Millisecond)
	for _, g := range la.got {
		if g == "from the grave" {
			t.Fatal("crashed endpoint transmitted")
		}
	}
}

func TestDirectedLinkIsAsymmetric(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 11})
	a, la := attach(t, net, "a")
	b, lb := attach(t, net, "b")
	// a->b is dead; b->a stays perfect.
	net.SetLinkDirected(a.ID(), b.ID(), netsim.Link{LossRate: 1})
	send(a, "a-to-b", b.ID())
	send(b, "b-to-a", a.ID())
	net.RunFor(10 * time.Millisecond)
	if len(lb.got) != 0 {
		t.Fatalf("b heard %v through a dead directed link", lb.got)
	}
	if len(la.got) != 1 || la.got[0] != "b-to-a" {
		t.Fatalf("a got %v, want the reverse direction intact", la.got)
	}
}

func TestSetLinkIsSymmetricWrapper(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 12})
	a, la := attach(t, net, "a")
	b, lb := attach(t, net, "b")
	net.SetLink(a.ID(), b.ID(), netsim.Link{LossRate: 1})
	send(a, "x", b.ID())
	send(b, "y", a.ID())
	net.RunFor(10 * time.Millisecond)
	if len(la.got) != 0 || len(lb.got) != 0 {
		t.Fatalf("symmetric override leaked: a=%v b=%v", la.got, lb.got)
	}
	// ClearLink falls back to the (perfect) default in both directions.
	net.ClearLink(a.ID(), b.ID())
	send(a, "x2", b.ID())
	send(b, "y2", a.ID())
	net.RunFor(10 * time.Millisecond)
	if len(la.got) != 1 || len(lb.got) != 1 {
		t.Fatalf("after ClearLink: a=%v b=%v", la.got, lb.got)
	}
}

func TestDetachRemovesBroadcastTarget(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 13})
	a, _ := attach(t, net, "a")
	b, lb := attach(t, net, "b")
	net.Crash(b.ID())
	net.Detach(b.ID())
	send(a, "broadcast") // empty dests = all attached endpoints
	net.RunFor(10 * time.Millisecond)
	if len(lb.got) != 0 {
		t.Fatal("detached endpoint received traffic")
	}
	// Blocked counts nothing for the detached id on broadcast: it is no
	// longer a target at all.
	if st := net.Stats(); st.Blocked != 0 {
		t.Fatalf("broadcast to detached endpoint counted Blocked=%d", st.Blocked)
	}
	// A replacement incarnation at the same site works normally.
	_, lb2 := attach(t, net, "b")
	send(a, "again")
	net.RunFor(10 * time.Millisecond)
	if len(lb2.got) != 1 || lb2.got[0] != "again" {
		t.Fatalf("recovered incarnation got %v", lb2.got)
	}
}

func TestTimersFireInOrder(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 7})
	var order []int
	net.At(30*time.Millisecond, func() { order = append(order, 3) })
	net.At(10*time.Millisecond, func() { order = append(order, 1) })
	net.At(20*time.Millisecond, func() { order = append(order, 2) })
	net.RunFor(time.Second)
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Fatalf("order = %v", order)
	}
	if net.Now() != time.Second {
		t.Errorf("Now = %v, want 1s", net.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 8})
	fired := false
	cancel := net.SetTimer(10*time.Millisecond, func() { fired = true })
	cancel()
	net.RunFor(time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestGarbleCorruptsBytes(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 9, DefaultLink: netsim.Link{GarbleRate: 1}})
	a, _ := attach(t, net, "a")
	_, lb := attach(t, net, "b")
	send(a, "pristine-content")
	net.RunFor(10 * time.Millisecond)
	st := net.Stats()
	if st.Garbled == 0 {
		t.Fatal("nothing garbled at rate 1")
	}
	// The payload may or may not differ (the flipped byte can hit the
	// framing), but the packet must not vanish silently without being
	// counted.
	if st.Delivered+st.Lost+st.Blocked == 0 {
		t.Fatal("packet accounting lost a packet")
	}
	_ = lb
}

func TestStepGranularity(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 10})
	hits := 0
	net.At(time.Millisecond, func() { hits++ })
	net.At(2*time.Millisecond, func() { hits++ })
	if !net.Step() || hits != 1 {
		t.Fatalf("first step: hits=%d", hits)
	}
	if !net.Step() || hits != 2 {
		t.Fatalf("second step: hits=%d", hits)
	}
	if net.Step() {
		t.Fatal("step on empty queue reported work")
	}
}

func TestRealTimeCrashStopsTraffic(t *testing.T) {
	rt := netsim.NewRealTime(1, netsim.Link{})
	la := &rawLayer{}
	a := rt.NewEndpoint("a")
	if _, err := a.Join("g", core.StackSpec{func() core.Layer { return la }}, nil); err != nil {
		t.Fatal(err)
	}
	b := rt.NewEndpoint("b")
	lb := &rawLayer{}
	if _, err := b.Join("g", core.StackSpec{func() core.Layer { return lb }}, nil); err != nil {
		t.Fatal(err)
	}
	rt.Crash(b.ID())
	send(a, "into the void")
	time.Sleep(50 * time.Millisecond)
	if len(lb.got) != 0 {
		t.Fatal("crashed real-time endpoint received traffic")
	}
	if rt.Now() <= 0 {
		t.Error("real-time clock not advancing")
	}
}

// TestReorderRuleInvertsOrder: a packet held by the reorder rule is
// overtaken by exactly ReorderDepth later departures — an explicit
// inversion no amount of jitter can guarantee.
func TestReorderRuleInvertsOrder(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 8})
	a, _ := attach(t, net, "a")
	ep, lb := attach(t, net, "b")
	// Hold everything sent while the rule is armed...
	net.SetLinkDirected(a.ID(), ep.ID(), netsim.Link{ReorderRate: 1, ReorderDepth: 2})
	send(a, "first")
	// ...then disarm it, so the followers depart normally and count
	// against the held packet's depth.
	net.At(time.Millisecond, func() { net.ClearLink(a.ID(), ep.ID()) })
	net.At(2*time.Millisecond, func() { send(a, "second") })
	net.At(3*time.Millisecond, func() { send(a, "third") })
	net.RunFor(time.Second)
	want := []string{"second", "third", "first"}
	if len(lb.got) != 3 {
		t.Fatalf("delivered %v, want 3 packets", lb.got)
	}
	for i, w := range want {
		if lb.got[i] != w {
			t.Fatalf("delivery order %v, want %v", lb.got, want)
		}
	}
	if st := net.Stats(); st.Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1", st.Reordered)
	}
}

// TestReorderHoldReleasesOnQuietLink: with no follow-up traffic the
// hold backstop releases the packet, so the rule delays but never
// loses.
func TestReorderHoldReleasesOnQuietLink(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 9, DefaultLink: netsim.Link{
		ReorderRate: 1, ReorderDepth: 5, ReorderHold: 40 * time.Millisecond,
	}})
	a, _ := attach(t, net, "a")
	_, lb := attach(t, net, "b")
	send(a, "lonely")
	net.RunFor(30 * time.Millisecond)
	if len(lb.got) != 0 {
		t.Fatal("held packet delivered before the hold expired")
	}
	net.RunFor(20 * time.Millisecond)
	if len(lb.got) != 1 || lb.got[0] != "lonely" {
		t.Fatalf("after hold: got %v, want the released packet", lb.got)
	}
}

// TestBandwidthThrottledCounter: packets that queue behind earlier
// traffic on a bandwidth-capped link are counted, the first packet on
// an idle link is not.
func TestBandwidthThrottledCounter(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 10, DefaultLink: netsim.Link{Bandwidth: 1000}})
	a, _ := attach(t, net, "a")
	b, lb := attach(t, net, "b")
	for i := 0; i < 5; i++ {
		// Unicast so only the a->b link carries the burst; a broadcast
		// would also queue on the self-delivery link and double the count.
		send(a, fmt.Sprintf("pkt%d", i), b.ID())
	}
	net.RunFor(time.Second)
	if len(lb.got) != 5 {
		t.Fatalf("delivered %d, want 5", len(lb.got))
	}
	st := net.Stats()
	if st.Throttled != 4 {
		t.Fatalf("Throttled = %d, want 4 (burst of 5, first finds the link idle)", st.Throttled)
	}
}

// TestReorderDeterministic: the reorder machinery draws from the same
// seeded rng as every other fault, so runs replay exactly.
func TestReorderDeterministic(t *testing.T) {
	run := func() ([]string, netsim.Stats) {
		net := netsim.New(netsim.Config{Seed: 77, DefaultLink: netsim.Link{
			Delay: time.Millisecond, ReorderRate: 0.4, ReorderDepth: 3,
			ReorderHold: 30 * time.Millisecond,
		}})
		a, _ := attach(t, net, "a")
		_, lb := attach(t, net, "b")
		for i := 0; i < 40; i++ {
			i := i
			net.At(time.Duration(i)*2*time.Millisecond, func() { send(a, fmt.Sprintf("m%02d", i)) })
		}
		net.RunFor(time.Second)
		return lb.got, net.Stats()
	}
	got1, st1 := run()
	got2, st2 := run()
	if st1 != st2 {
		t.Fatalf("stats diverged:\n%+v\n%+v", st1, st2)
	}
	if st1.Reordered == 0 {
		t.Fatal("reorder rule never fired at rate 0.4 over 40 packets")
	}
	if fmt.Sprint(got1) != fmt.Sprint(got2) {
		t.Fatalf("delivery order diverged:\n%v\n%v", got1, got2)
	}
}

// TestXmitTime: the serialization arithmetic both rate rules share.
// Sub-nanosecond remainders truncate, zero-length packets are free.
func TestXmitTime(t *testing.T) {
	cases := []struct {
		name       string
		size, rate int
		want       time.Duration
	}{
		{"one second exactly", 1000, 1000, time.Second},
		{"zero-length packet", 0, 1000, 0},
		{"sub-nanosecond truncates", 1, 2_000_000_000, 0},
		{"just above a nanosecond", 3, 2_000_000_000, time.Nanosecond},
		{"packet bigger than a second of budget", 3000, 1000, 3 * time.Second},
		{"single byte at 1B/s", 1, 1, time.Second},
	}
	for _, c := range cases {
		if got := netsim.XmitTime(c.size, c.rate); got != c.want {
			t.Errorf("%s: XmitTime(%d, %d) = %v, want %v", c.name, c.size, c.rate, got, c.want)
		}
	}
}

// TestBucketAcquire: the busy-until horizon math — departures start at
// max(now, free), idle gaps don't accrue burst credit, and queued is
// reported exactly when the packet waited.
func TestBucketAcquire(t *testing.T) {
	cases := []struct {
		name       string
		now, free  time.Duration
		size, rate int
		wantFree   time.Duration
		wantQueued bool
	}{
		{"idle bucket", 0, 0, 500, 1000, 500 * time.Millisecond, false},
		{"queued behind backlog", 0, 200 * time.Millisecond, 500, 1000,
			700 * time.Millisecond, true},
		{"refill across a long idle gap", 10 * time.Second, time.Second, 500, 1000,
			10*time.Second + 500*time.Millisecond, false},
		{"horizon equal to now is not queued", time.Second, time.Second, 500, 1000,
			time.Second + 500*time.Millisecond, false},
		{"zero-length packet leaves horizon at depart", 0, 50 * time.Millisecond, 0, 1000,
			50 * time.Millisecond, true},
		{"budget smaller than one packet delays, never blocks", 0, 0, 4096, 1024,
			4 * time.Second, false},
	}
	for _, c := range cases {
		free, queued := netsim.BucketAcquire(c.now, c.free, c.size, c.rate)
		if free != c.wantFree || queued != c.wantQueued {
			t.Errorf("%s: BucketAcquire(%v, %v, %d, %d) = (%v, %v), want (%v, %v)",
				c.name, c.now, c.free, c.size, c.rate, free, queued, c.wantFree, c.wantQueued)
		}
	}
}

// TestBucketBacklog: backlog converts the busy-until horizon back to
// untransmitted bytes; drained and idle buckets report zero.
func TestBucketBacklog(t *testing.T) {
	cases := []struct {
		name      string
		now, free time.Duration
		rate      int
		want      int
	}{
		{"idle", time.Second, 0, 1000, 0},
		{"exactly drained", time.Second, time.Second, 1000, 0},
		{"half a second queued", 0, 500 * time.Millisecond, 1000, 500},
		{"sub-byte residue truncates", 0, time.Nanosecond, 1000, 0},
	}
	for _, c := range cases {
		if got := netsim.BucketBacklog(c.now, c.free, c.rate); got != c.want {
			t.Errorf("%s: BucketBacklog(%v, %v, %d) = %d, want %d",
				c.name, c.now, c.free, c.rate, got, c.want)
		}
	}
}

// TestEgressAcquire: the shared admission policy — pass-through for
// unbudgeted hosts and loopback, tail drop only against a nonempty
// backlog, and ledger outcomes matching what each fabric counts.
func TestEgressAcquire(t *testing.T) {
	from := core.EndpointID{Site: "a", Birth: 1}
	dst := core.EndpointID{Site: "b", Birth: 2}
	budget := netsim.Host{EgressBudget: 1000, EgressQueue: 600}
	cases := []struct {
		name      string
		h         netsim.Host
		from, dst core.EndpointID
		now, free time.Duration
		size      int
		wantFree  time.Duration
		wantClear time.Duration
		wantOut   netsim.EgressOutcome
	}{
		{"no budget passes untouched", netsim.Host{}, from, dst,
			0, 700 * time.Millisecond, 500, 700 * time.Millisecond, 0, netsim.EgressPass},
		{"loopback exempt even with backlog", budget, from, from,
			0, 700 * time.Millisecond, 500, 700 * time.Millisecond, 0, netsim.EgressPass},
		{"idle bucket grants", budget, from, dst,
			0, 0, 500, 500 * time.Millisecond, 500 * time.Millisecond, netsim.EgressGranted},
		{"backlog within queue congests", budget, from, dst,
			0, 100 * time.Millisecond, 500, 600 * time.Millisecond,
			600 * time.Millisecond, netsim.EgressQueued},
		{"backlog past queue drops", budget, from, dst,
			0, 500 * time.Millisecond, 500, 500 * time.Millisecond, 0, netsim.EgressDropped},
		{"empty backlog always admits oversized packet", netsim.Host{EgressBudget: 100, EgressQueue: 10},
			from, dst, 0, 0, 4096, 40960 * time.Millisecond,
			40960 * time.Millisecond, netsim.EgressGranted},
		{"idle gap drains the backlog", budget, from, dst,
			10 * time.Second, time.Second, 500,
			10*time.Second + 500*time.Millisecond,
			10*time.Second + 500*time.Millisecond, netsim.EgressGranted},
	}
	for _, c := range cases {
		free, clear, out := netsim.EgressAcquire(c.h, c.from, c.dst, c.now, c.free, c.size)
		if free != c.wantFree || clear != c.wantClear || out != c.wantOut {
			t.Errorf("%s: EgressAcquire = (%v, %v, %d), want (%v, %v, %d)",
				c.name, free, clear, out, c.wantFree, c.wantClear, c.wantOut)
		}
	}
}

// TestEgressBudgetSharedAcrossLinks: the host bucket is one bucket for
// all destinations — a burst fanned out to two peers queues behind
// itself even though each directed link is idle, and the Congested
// ledger counts every packet that waited.
func TestEgressBudgetSharedAcrossLinks(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 3})
	a, _ := attach(t, net, "a")
	b, lb := attach(t, net, "b")
	c, lc := attach(t, net, "c")
	net.SetHost(a.ID(), netsim.Host{EgressBudget: 1000})
	for i := 0; i < 3; i++ {
		send(a, fmt.Sprintf("to-b%d", i), b.ID())
		send(a, fmt.Sprintf("to-c%d", i), c.ID())
	}
	net.RunFor(time.Minute)
	if len(lb.got) != 3 || len(lc.got) != 3 {
		t.Fatalf("delivered b=%d c=%d, want 3 each", len(lb.got), len(lc.got))
	}
	st := net.Stats()
	if st.Congested != 5 {
		t.Fatalf("Congested = %d, want 5 (burst of 6 across two links, first finds the host idle)", st.Congested)
	}
	if st.Throttled != 0 {
		t.Fatalf("Throttled = %d, want 0 (no link has a bandwidth cap)", st.Throttled)
	}
	if st.CollapseDropped != 0 {
		t.Fatalf("CollapseDropped = %d, want 0 (default queue absorbs the burst)", st.CollapseDropped)
	}
}

// TestEgressQueueOverflowDrops: a bounded egress queue turns sustained
// overload into CollapseDropped losses — but never blackholes: the
// packet that finds the backlog empty is always admitted.
func TestEgressQueueOverflowDrops(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 4})
	a, _ := attach(t, net, "a")
	b, lb := attach(t, net, "b")
	// ~5B/packet payload; budget drains 100 B/s, queue holds ~2 packets.
	net.SetHost(a.ID(), netsim.Host{EgressBudget: 100, EgressQueue: 60})
	for i := 0; i < 10; i++ {
		send(a, fmt.Sprintf("pkt%d", i), b.ID())
	}
	net.RunFor(time.Minute)
	st := net.Stats()
	if st.CollapseDropped == 0 {
		t.Fatal("queue overflow never dropped: CollapseDropped = 0")
	}
	if len(lb.got) == 0 {
		t.Fatal("bounded queue blackholed the link: nothing delivered")
	}
	if len(lb.got)+st.CollapseDropped != 10 {
		t.Fatalf("delivered %d + dropped %d != 10 sent", len(lb.got), st.CollapseDropped)
	}
	// ClearHost lifts the budget: traffic flows freely again.
	net.ClearHost(a.ID())
	send(a, "after", b.ID())
	net.RunFor(time.Second)
	if got := lb.got[len(lb.got)-1]; got != "after" {
		t.Fatalf("after ClearHost, last delivery = %q, want %q", got, "after")
	}
	if post := net.Stats(); post.CollapseDropped != st.CollapseDropped {
		t.Fatalf("ClearHost did not lift the budget: drops grew %d -> %d",
			st.CollapseDropped, post.CollapseDropped)
	}
}

// TestEgressLoopbackExempt: a broadcast's self-copy never crosses the
// NIC, so it is delivered instantly and untouched by the egress
// budget — matching chaosnet, where members are simply not wired to
// their own proxy.
func TestEgressLoopbackExempt(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 5})
	a, la := attach(t, net, "a")
	_, lb := attach(t, net, "b")
	net.SetHost(a.ID(), netsim.Host{EgressBudget: 10, EgressQueue: 20})
	for i := 0; i < 4; i++ {
		send(a, fmt.Sprintf("m%d", i)) // broadcast: self + b
	}
	net.RunFor(10 * time.Second)
	if len(la.got) != 4 {
		t.Fatalf("self-copies delivered %d, want 4 (loopback is budget-exempt)", len(la.got))
	}
	st := net.Stats()
	if len(lb.got)+st.CollapseDropped != 4 {
		t.Fatalf("b got %d + dropped %d != 4 (budget applies to the wire copy only)",
			len(lb.got), st.CollapseDropped)
	}
}

// TestEgressDeterministic: the egress machinery keys off virtual time
// and seeded draws only, so runs replay exactly — counters included.
func TestEgressDeterministic(t *testing.T) {
	run := func() ([]string, netsim.Stats) {
		net := netsim.New(netsim.Config{Seed: 42, DefaultLink: netsim.Link{
			Delay: time.Millisecond, Jitter: 2 * time.Millisecond,
		}})
		a, _ := attach(t, net, "a")
		b, lb := attach(t, net, "b")
		net.SetHost(a.ID(), netsim.Host{EgressBudget: 200, EgressQueue: 40})
		for i := 0; i < 30; i++ {
			i := i
			net.At(time.Duration(i)*10*time.Millisecond, func() {
				send(a, fmt.Sprintf("m%02d", i), b.ID())
			})
		}
		net.RunFor(time.Minute)
		return lb.got, net.Stats()
	}
	got1, st1 := run()
	got2, st2 := run()
	if st1 != st2 {
		t.Fatalf("stats diverged:\n%+v\n%+v", st1, st2)
	}
	if st1.Congested == 0 || st1.CollapseDropped == 0 {
		t.Fatalf("squeeze never bit: Congested=%d CollapseDropped=%d", st1.Congested, st1.CollapseDropped)
	}
	if fmt.Sprint(got1) != fmt.Sprint(got2) {
		t.Fatalf("deliveries diverged:\n%v\n%v", got1, got2)
	}
}
