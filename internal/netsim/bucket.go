// Token-bucket serialization math shared by every rate rule in the
// fault vocabulary: Link.Bandwidth (per directed link) and
// Host.EgressBudget (shared across all of one host's outgoing links),
// on both fabrics (netsim against virtual time, chaosnet against wall
// time). Both rules model a draining bucket as a single busy-until
// horizon, so the arithmetic lives here exactly once and the fabrics
// cannot drift apart on rounding or queueing decisions.

package netsim

import (
	"time"

	"horus/internal/core"
)

// Host describes per-host resource limits shared across every outgoing
// link of one endpoint. The zero value imposes none — exactly like the
// zero Link, a perfect host.
type Host struct {
	// EgressBudget, when positive, caps the host's total egress at
	// EgressBudget bytes per second, shared across all outgoing links:
	// before propagating, a packet must acquire tokens from its host's
	// egress bucket first and its link's bandwidth bucket second, so a
	// host saturated by one flow delays every other flow it originates
	// — the shared NIC queue a per-link model cannot express. Loopback
	// copies (a packet a host addresses to itself) never cross the NIC
	// and are exempt on both fabrics.
	EgressBudget int
	// EgressQueue bounds, in bytes, the backlog awaiting egress
	// tokens. A packet that finds a nonempty backlog which it would
	// push past the bound is dropped and counted in the CollapseDropped
	// ledger — the tail drop that makes true congestion collapse
	// (goodput falling as offered load rises) expressible, not just
	// delay. A packet that finds the backlog empty is always admitted,
	// so a budget or queue smaller than one packet produces delay,
	// never a blackhole. Zero means DefaultEgressQueue.
	EgressQueue int
}

// DefaultEgressQueue is the egress backlog bound applied when
// Host.EgressQueue is zero: roughly a real NIC ring's worth of frames.
const DefaultEgressQueue = 64 * 1024

// queueBytes resolves the host's backlog bound.
func (h Host) queueBytes() int {
	if h.EgressQueue > 0 {
		return h.EgressQueue
	}
	return DefaultEgressQueue
}

// XmitTime is how long size bytes occupy a bucket draining at rate
// bytes per second. Sub-nanosecond remainders truncate toward zero —
// a packet small enough against a fast enough bucket serializes in 0ns
// — and a zero-length packet occupies no time at any rate.
func XmitTime(size, rate int) time.Duration {
	return time.Duration(int64(size) * int64(time.Second) / int64(rate))
}

// BucketAcquire reserves size bytes on a bucket draining at rate
// bytes per second: the transfer starts at max(now, free) — the bucket
// refills nothing across idle gaps beyond becoming immediately
// available, so there is no burst credit — occupies XmitTime(size,
// rate), and the returned newFree is the bucket's next busy-until
// horizon. queued reports whether the packet had to wait behind
// earlier traffic (free > now), which is what the Throttled and
// Congested ledgers count.
func BucketAcquire(now, free time.Duration, size, rate int) (newFree time.Duration, queued bool) {
	depart := now
	if free > depart {
		depart = free
		queued = true
	}
	return depart + XmitTime(size, rate), queued
}

// BucketBacklog is how many bytes are still untransmitted on a bucket
// with busy-until horizon free at time now — the queue depth the
// Host.EgressQueue bound is checked against. A drained or idle bucket
// reports zero.
func BucketBacklog(now, free time.Duration, rate int) int {
	if free <= now {
		return 0
	}
	return int(int64(free-now) * int64(rate) / int64(time.Second))
}

// EgressOutcome is the result of one host-bucket acquisition, shared
// by both fabrics so their ledger decisions are byte-identical.
type EgressOutcome uint8

// Egress admission outcomes.
const (
	EgressPass    EgressOutcome = iota // no budget, or loopback: bucket untouched
	EgressGranted                      // tokens acquired, bucket was idle
	EgressQueued                       // tokens acquired behind a backlog (Congested)
	EgressDropped                      // backlog bound exceeded (CollapseDropped)
)

// EgressAcquire runs the shared admission policy for one packet of
// size bytes leaving host from toward dst at time now, given the
// host's current busy-until horizon free. It returns the new horizon
// (unchanged unless tokens were acquired), the time at which the
// packet fully clears the NIC (now, when the budget does not apply;
// the bucket is store-and-forward, so a granted packet clears only
// once fully serialized), and the ledger outcome. Pure function of its
// arguments — both fabrics call it under their own lock with their own
// clock.
func EgressAcquire(h Host, from, dst core.EndpointID, now, free time.Duration, size int) (newFree, clear time.Duration, out EgressOutcome) {
	if h.EgressBudget <= 0 || from == dst {
		return free, now, EgressPass
	}
	if backlog := BucketBacklog(now, free, h.EgressBudget); backlog > 0 && backlog+size > h.queueBytes() {
		return free, now, EgressDropped
	}
	newFree, queued := BucketAcquire(now, free, size, h.EgressBudget)
	if queued {
		return newFree, newFree, EgressQueued
	}
	return newFree, newFree, EgressGranted
}
