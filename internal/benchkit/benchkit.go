// Package benchkit holds the benchmark bodies shared by the root
// `go test -bench` suite and cmd/horus-bench's -json mode: both must
// measure the same code, so the bodies live here as ordinary functions
// of *testing.B and each front end decides only how to invoke them
// (b.Run sub-benchmarks versus testing.Benchmark for machine-readable
// output). Importing testing outside a _test.go file is deliberate —
// testing.Benchmark is the supported way to run a benchmark from a
// binary.
package benchkit

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/chksum"
	"horus/internal/layers/com"
	"horus/internal/layers/frag"
	"horus/internal/layers/hbeat"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/layers/switchp"
	"horus/internal/layers/total"
	"horus/internal/message"
	"horus/internal/netsim"
	"horus/internal/property"
)

// Canonical sweep parameters, shared by the -bench suite and the
// -json emitter so the two report the same benchmark names.
var (
	LayerCrossingDepths = []int{0, 1, 2, 4, 8, 16, 32}
	FragOverheadSizes   = []int{64, 1024, 8192, 65536}
	FragRoundTripSizes  = []int{1024, 8192, 65536}
)

// NopLayer passes everything through: the cheapest possible layer,
// isolating the cost of one boundary crossing (§10 item 1: "an
// indirect procedure call each time a layer boundary is crossed").
type NopLayer struct{ core.Base }

// Name implements core.Layer.
func (n *NopLayer) Name() string { return "NOP" }

// Transparent implements core.Skipper: a no-op layer is by definition
// transparent to every event in both directions, so the stack's skip
// tables route traffic straight past it. This is what the paper's §10
// item 1 promises for layers that take no action — the boundary
// crossing disappears entirely rather than costing an indirect call.
func (n *NopLayer) Transparent(t core.EventType, down bool) bool { return true }

// OpaqueNopLayer is a pass-through layer that does NOT declare
// transparency: every event pays the full indirect-call boundary
// crossing. It is the control in the layer-skipping and layer-crossing
// ablations — what every no-op layer cost before §10 item 1.
type OpaqueNopLayer struct{ core.Base }

// Name implements core.Layer.
func (o *OpaqueNopLayer) Name() string { return "ONOP" }

// SinkLayer terminates the stack without a network, counting what
// reaches it.
type SinkLayer struct {
	core.Base
	Count int
}

// Name implements core.Layer.
func (s *SinkLayer) Name() string { return "SINK" }

// Down implements core.Layer.
func (s *SinkLayer) Down(ev *core.Event) { s.Count++ }

// loopLayer reflects downcalls back up, as if the network delivered
// them instantly.
type loopLayer struct {
	core.Base
	src core.EndpointID
}

func (l *loopLayer) Name() string { return "LOOP" }
func (l *loopLayer) Down(ev *core.Event) {
	if ev.Type != core.DCast && ev.Type != core.DSend {
		return
	}
	up := core.UCast
	if ev.Type == core.DSend {
		up = core.USend
	}
	l.Ctx.Up(&core.Event{Type: up, Msg: ev.Msg, Source: l.src})
}

// countLayer counts CAST deliveries reaching the top.
type countLayer struct {
	core.Base
	count *int
}

func (c *countLayer) Name() string { return "COUNT" }
func (c *countLayer) Up(ev *core.Event) {
	if ev.Type == core.UCast {
		*c.count++
	}
}

// LayerCrossing measures the cost of pushing a cast through depth
// no-op layers — the paper's claim that "the cost of a layer can be as
// low as just a few instructions at runtime". Since the no-op layers
// declare transparency, the skip tables collapse the traversal to a
// single jump regardless of depth; the pre-§10 per-boundary cost is
// pinned by BenchmarkLayerSkipping's opaque control.
func LayerCrossing(depth int) func(*testing.B) {
	return func(b *testing.B) {
		net := netsim.New(netsim.Config{Seed: 1})
		ep := net.NewEndpoint("a")
		spec := make(core.StackSpec, 0, depth+1)
		for i := 0; i < depth; i++ {
			spec = append(spec, func() core.Layer { return &NopLayer{} })
		}
		sink := &SinkLayer{}
		spec = append(spec, func() core.Layer { return sink })
		g, err := ep.Join("bench", spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		msg := message.New(make([]byte, 64))
		ev := core.NewCast(msg)
		b.ReportAllocs()
		b.ResetTimer()
		ep.Do(func() {
			for i := 0; i < b.N; i++ {
				g.Stack().Down(ev)
			}
		})
		if sink.Count != b.N {
			b.Fatalf("sink saw %d of %d", sink.Count, b.N)
		}
	}
}

// nullTransport swallows wire bytes: it isolates stack traversal cost
// from fabric cost (netsim allocates per delivered packet, which would
// mask the compiled path's zero-allocation claim).
type nullTransport struct{}

func (nullTransport) Send(from core.EndpointID, group core.GroupAddr, dests []core.EndpointID, wire []byte) {
}
func (nullTransport) SetTimer(d time.Duration, fn func()) (cancel func()) { return func() {} }
func (nullTransport) Now() time.Duration                                  { return 0 }

// CompiledCast measures the §10 compiled send plan end to end on a
// fully compilable stack (HBEAT:CHKSUM:COM) over a null transport,
// with pooled message buffers: the fast variant must run at zero
// allocations per cast in steady state, the ref variant pins the
// per-layer push/pop path for comparison.
func CompiledCast(fast bool) func(*testing.B) {
	return func(b *testing.B) {
		ep := core.NewEndpoint(core.EndpointID{Site: "bench", Birth: 1}, nullTransport{})
		ep.SetFastPath(fast)
		spec := core.StackSpec{hbeat.New, chksum.New, com.New}
		g, err := ep.Join("bench", spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !g.Stack().HasCastPlan() {
			b.Fatal("stack did not compile a cast plan")
		}
		body := make([]byte, 64)
		ev := &core.Event{Type: core.DCast}
		b.ReportAllocs()
		b.ResetTimer()
		ep.Do(func() {
			for i := 0; i < b.N; i++ {
				ev.Msg = message.Get(body)
				g.Stack().Down(ev)
				if !fast {
					// The reference path does not consume the message;
					// recycle it by hand to keep the comparison about
					// traversal cost, not pool discipline.
					//horus:own-ok — SetFastPath(false) above means the plan never ran, so the stack cannot have released ev.Msg
					ev.Msg.Release()
				}
			}
		})
		b.StopTimer()
		stats := g.Stack().PlanStats()
		if fast && stats.Fast != uint64(b.N) {
			b.Fatalf("fast path ran %d of %d casts", stats.Fast, b.N)
		}
		if !fast && stats.Fast != 0 {
			b.Fatalf("reference run leaked %d casts onto the fast path", stats.Fast)
		}
	}
}

// FragOverhead measures the marshal cost FRAG adds to the send path
// (§10: "about 50 µsecs" on 1994 hardware); withFrag false is the
// baseline of the bare stack.
func FragOverhead(size int, withFrag bool) func(*testing.B) {
	return func(b *testing.B) {
		net := netsim.New(netsim.Config{Seed: 1})
		ep := net.NewEndpoint("a")
		sink := &SinkLayer{}
		spec := core.StackSpec{}
		if withFrag {
			spec = append(spec, frag.NewWithSize(1400))
		}
		spec = append(spec, func() core.Layer { return sink })
		g, err := ep.Join("bench", spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		body := make([]byte, size)
		b.SetBytes(int64(size))
		b.ReportAllocs()
		b.ResetTimer()
		ep.Do(func() {
			for i := 0; i < b.N; i++ {
				g.Stack().Down(core.NewCast(message.New(body)))
			}
		})
	}
}

// FragRoundTrip measures the full split+reassemble path, the closest
// analogue of the paper's one-way FRAG latency number.
func FragRoundTrip(size int) func(*testing.B) {
	return func(b *testing.B) {
		net := netsim.New(netsim.Config{Seed: 1})
		ep := net.NewEndpoint("a")
		// Loopback: what FRAG sends down is fed back up.
		delivered := 0
		loop := &loopLayer{}
		spec := core.StackSpec{
			func() core.Layer { return &countLayer{count: &delivered} },
			frag.NewWithSize(1400),
			func() core.Layer { return loop },
		}
		g, err := ep.Join("bench", spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		body := make([]byte, size)
		b.SetBytes(int64(size))
		b.ReportAllocs()
		b.ResetTimer()
		ep.Do(func() {
			for i := 0; i < b.N; i++ {
				g.Stack().Down(core.NewCast(message.New(body)))
			}
		})
		if delivered != b.N {
			b.Fatalf("delivered %d of %d", delivered, b.N)
		}
	}
}

// SwitchQuiesce measures the delivery pause a run-time stack
// reconfiguration imposes: under a continuous cast workload each
// iteration flips the SWITCH-managed segment (FIFO→TOTAL, then back)
// and records the gap in member 0's delivery stream that straddles the
// commit — from the last cast delivered before the quiesce drained the
// old segment to the first cast the reopened gate delivers after
// RESUME. The gap is virtual time, reported as "vpause-ns/op"
// (deterministic across runs); the wall-clock ns/op is just the cost
// of simulating the cycle.
func SwitchQuiesce(members int) func(*testing.B) {
	return func(b *testing.B) {
		net := netsim.New(netsim.Config{Seed: 7, DefaultLink: netsim.Link{Delay: time.Millisecond}})
		resolver := func(name string) (core.Factory, bool) {
			if name == "TOTAL" {
				return total.NewWith(total.WithRequestRetry(60 * time.Millisecond)), true
			}
			return nil, false
		}
		mk := func() core.StackSpec {
			return core.StackSpec{
				switchp.NewWith(
					switchp.WithResolver(resolver),
					switchp.WithOpaqueBase(property.SegmentBase),
				),
				mbrship.NewWith(
					mbrship.WithGossipPeriod(40*time.Millisecond),
					mbrship.WithFlushTimeout(400*time.Millisecond),
				),
				nak.NewWith(
					nak.WithStatusPeriod(20*time.Millisecond),
					nak.WithNakResend(15*time.Millisecond),
					nak.WithSuspectAfter(0),
				),
				com.New,
			}
		}

		eps := make([]*core.Endpoint, members)
		groups := make([]*core.Group, members)
		views := make([]*core.View, members)
		var deliveries []time.Duration // member 0's delivery instants
		var commits []time.Duration    // member 0's committed-switch instants
		for i := 0; i < members; i++ {
			i := i
			eps[i] = net.NewEndpoint(fmt.Sprintf("n%02d", i))
			g, err := eps[i].Join("bench", mk(), func(ev *core.Event) {
				switch ev.Type {
				case core.UView:
					views[i] = ev.View
				case core.UCast:
					if i == 0 {
						deliveries = append(deliveries, net.Now())
					}
				case core.USwitch:
					if i == 0 && strings.HasPrefix(ev.Reason, "committed") {
						commits = append(commits, net.Now())
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			groups[i] = g
		}
		for i := 1; i < members; i++ {
			i := i
			var tryMerge func()
			tryMerge = func() {
				if views[i] != nil && views[i].Size() >= members {
					return
				}
				groups[i].Merge(eps[0].ID())
				net.At(net.Now()+150*time.Millisecond, tryMerge)
			}
			net.At(net.Now()+time.Duration(i)*50*time.Millisecond, tryMerge)
		}
		net.RunFor(time.Duration(members)*250*time.Millisecond + 2*time.Second)
		for i := 0; i < members; i++ {
			if views[i] == nil || views[i].Size() != members {
				b.Fatalf("group formation failed at member %d", i)
			}
		}

		// Continuous workload: every member casts every 2ms, forever.
		seq := 0
		var tick func()
		tick = func() {
			seq++
			body := []byte(fmt.Sprintf("m%06d", seq))
			for _, g := range groups {
				g.Cast(message.New(body))
			}
			net.At(net.Now()+2*time.Millisecond, tick)
		}
		net.At(net.Now()+2*time.Millisecond, tick)
		net.RunFor(100 * time.Millisecond)

		sw := groups[0].Focus("SWITCH").(*switchp.Switch)
		target := "TOTAL"
		var totalPause time.Duration
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			before := len(commits)
			eps[0].Do(func() {
				if err := sw.RequestSwitch(target); err != nil {
					b.Fatalf("request %q: %v", target, err)
				}
			})
			deadline := net.Now() + 5*time.Second
			for len(commits) == before && net.Now() < deadline {
				net.RunFor(5 * time.Millisecond)
			}
			if len(commits) == before {
				b.Fatalf("switch to %q never committed", target)
			}
			ct := commits[len(commits)-1]
			// Run until a delivery lands after the commit, then find the
			// gap straddling it.
			for len(deliveries) == 0 || deliveries[len(deliveries)-1] < ct {
				net.RunFor(5 * time.Millisecond)
			}
			// The commit is near the end of the stream: walk backward to
			// the boundary instead of rescanning the whole history.
			j := len(deliveries) - 1
			for j > 0 && deliveries[j-1] >= ct {
				j--
			}
			if j == 0 {
				b.Fatal("no delivery recorded before the commit")
			}
			lastBefore, firstAfter := deliveries[j-1], deliveries[j]
			totalPause += firstAfter - lastBefore
			if target == "TOTAL" {
				target = ""
			} else {
				target = "TOTAL"
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(totalPause.Nanoseconds())/float64(b.N), "vpause-ns/op")
	}
}
