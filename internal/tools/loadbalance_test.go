package tools_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"horus/internal/core"
	"horus/internal/tools"
)

func balancerWith(t *testing.T, self core.EndpointID, members ...core.EndpointID) *tools.Balancer {
	t.Helper()
	b := tools.NewBalancer()
	ep := core.NewEndpoint(self, nullTransport{})
	g, err := ep.Join("g", core.StackSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Bind(g)
	b.Handler()(&core.Event{Type: core.UView, View: view(1, members...)})
	return b
}

func TestAllMembersAgreeOnOwnership(t *testing.T) {
	a, bb, c := id("a", 1), id("b", 2), id("c", 3)
	members := []core.EndpointID{a, bb, c}
	balancers := []*tools.Balancer{
		balancerWith(t, a, members...),
		balancerWith(t, bb, members...),
		balancerWith(t, c, members...),
	}
	for i := 0; i < 50; i++ {
		item := fmt.Sprintf("item-%d", i)
		ref, ok := balancers[0].Owner(item)
		if !ok {
			t.Fatal("no owner")
		}
		for _, b := range balancers[1:] {
			got, _ := b.Owner(item)
			if got != ref {
				t.Fatalf("%s: owners disagree: %v vs %v", item, got, ref)
			}
		}
		// Exactly one member claims it.
		mine := 0
		for _, b := range balancers {
			if b.Mine(item) {
				mine++
			}
		}
		if mine != 1 {
			t.Fatalf("%s: %d claimants", item, mine)
		}
	}
}

func TestRebalanceMovesOnlyDepartedItems(t *testing.T) {
	a, bb, c := id("a", 1), id("b", 2), id("c", 3)
	bal := balancerWith(t, a, a, bb, c)
	before := map[string]core.EndpointID{}
	for i := 0; i < 200; i++ {
		item := fmt.Sprintf("item-%d", i)
		o, _ := bal.Owner(item)
		before[item] = o
	}
	// c departs.
	bal.Handler()(&core.Event{Type: core.UView, View: view(2, a, bb)})
	for item, prev := range before {
		now, _ := bal.Owner(item)
		if prev != c && now != prev {
			t.Fatalf("%s moved from %v to %v though its owner survived", item, prev, now)
		}
		if prev == c && now == c {
			t.Fatalf("%s still owned by the departed member", item)
		}
	}
}

func TestSpreadIsReasonable(t *testing.T) {
	members := make([]core.EndpointID, 4)
	for i := range members {
		members[i] = id(fmt.Sprintf("m%d", i), uint64(i+1))
	}
	bal := balancerWith(t, members[0], members...)
	counts := map[core.EndpointID]int{}
	const items = 1000
	for i := 0; i < items; i++ {
		o, _ := bal.Owner(fmt.Sprintf("item-%d", i))
		counts[o]++
	}
	for _, m := range members {
		if counts[m] < items/4/2 || counts[m] > items/4*2 {
			t.Fatalf("member %v owns %d of %d (bad spread: %v)", m, counts[m], items, counts)
		}
	}
}

func TestNoOwnerBeforeView(t *testing.T) {
	b := tools.NewBalancer()
	if _, ok := b.Owner("x"); ok {
		t.Fatal("owner before any view")
	}
}

// Property: ownership is a pure function of (item, view) — stable
// across repeated queries and across instances.
func TestQuickOwnershipDeterministic(t *testing.T) {
	a, bb := id("a", 1), id("b", 2)
	b1 := balancerWith(t, a, a, bb)
	b2 := balancerWith(t, bb, a, bb)
	f := func(item string) bool {
		o1, ok1 := b1.Owner(item)
		o2, ok2 := b2.Owner(item)
		o3, ok3 := b1.Owner(item)
		return ok1 && ok2 && ok3 && o1 == o2 && o1 == o3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
