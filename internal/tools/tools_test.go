package tools_test

import (
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/tools"
)

// These unit tests drive the tools' handlers directly; end-to-end
// behaviour over real stacks is covered in internal/integration.

func view(seq uint64, members ...core.EndpointID) *core.View {
	return core.NewView(core.ViewID{Seq: seq, Coord: members[0]}, "g", members)
}

func id(site string, birth uint64) core.EndpointID {
	return core.EndpointID{Site: site, Birth: birth}
}

func TestRSMBuffersUntilSnapshot(t *testing.T) {
	var applied []string
	r := tools.NewRSM(func(cmd []byte) { applied = append(applied, string(cmd)) },
		func() []byte { return []byte("snap") },
		func(state []byte) { applied = append(applied, "restored:"+string(state)) })
	h := r.Handler()

	// Commands before the snapshot are buffered, not applied.
	h(&core.Event{Type: core.UCast, Msg: msg("early1"), Source: id("p", 2)})
	h(&core.Event{Type: core.UCast, Msg: msg("early2"), Source: id("p", 2)})
	if len(applied) != 0 {
		t.Fatalf("applied before sync: %v", applied)
	}
	if r.Synced() {
		t.Fatal("synced without snapshot")
	}

	// Snapshot arrives: restore, then the buffered commands in order.
	h(&core.Event{Type: core.USend, Msg: msg("\x01the-state"), Source: id("p", 2)})
	want := []string{"restored:the-state", "early1", "early2"}
	if len(applied) != 3 {
		t.Fatalf("applied = %v, want %v", applied, want)
	}
	for i := range want {
		if applied[i] != want[i] {
			t.Fatalf("applied = %v, want %v", applied, want)
		}
	}
	if !r.Synced() || r.Applied() != 2 {
		t.Errorf("Synced=%v Applied=%d", r.Synced(), r.Applied())
	}

	// Later commands apply immediately.
	h(&core.Event{Type: core.UCast, Msg: msg("live"), Source: id("p", 2)})
	if applied[len(applied)-1] != "live" {
		t.Errorf("live command not applied: %v", applied)
	}
}

func TestRSMBootstrapAppliesBuffered(t *testing.T) {
	var applied []string
	r := tools.NewRSM(func(cmd []byte) { applied = append(applied, string(cmd)) },
		func() []byte { return nil }, func([]byte) {})
	h := r.Handler()
	h(&core.Event{Type: core.UCast, Msg: msg("pre"), Source: id("p", 2)})
	r.Bootstrap()
	if len(applied) != 1 || applied[0] != "pre" {
		t.Fatalf("applied = %v", applied)
	}
	if !r.Synced() {
		t.Fatal("not synced after bootstrap")
	}
}

func TestRSMSnapshotlessIsAlwaysSynced(t *testing.T) {
	r := tools.NewRSM(func([]byte) {}, nil, nil)
	if !r.Synced() {
		t.Fatal("snapshotless RSM must start synced")
	}
}

func TestLockManagerQueueSemantics(t *testing.T) {
	a, b, c := id("a", 1), id("b", 2), id("c", 3)
	lm := tools.NewLockManager()
	var acquired []string
	lm.OnAcquire = func(name string) { acquired = append(acquired, name) }
	// Bind via a throwaway endpoint so self is "a".
	ep := core.NewEndpoint(a, nullTransport{})
	g, err := ep.Join("g", core.StackSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lm.Bind(g)
	h := lm.Handler()

	// The total order says: b requests, then a, then c.
	h(&core.Event{Type: core.UCast, Msg: msg("\x01L"), Source: b})
	h(&core.Event{Type: core.UCast, Msg: msg("\x01L"), Source: a})
	h(&core.Event{Type: core.UCast, Msg: msg("\x01L"), Source: c})
	if holder, ok := lm.Holder("L"); !ok || holder != b {
		t.Fatalf("holder = %v %v, want b", holder, ok)
	}
	if lm.HeldByMe("L") {
		t.Fatal("a thinks it holds the lock while b does")
	}
	// Duplicate request from b is ignored.
	h(&core.Event{Type: core.UCast, Msg: msg("\x01L"), Source: b})
	// b releases: a (next in queue) acquires; the callback fires.
	h(&core.Event{Type: core.UCast, Msg: msg("\x02L"), Source: b})
	if holder, _ := lm.Holder("L"); holder != a {
		t.Fatalf("holder after release = %v, want a", holder)
	}
	if len(acquired) != 1 || acquired[0] != "L" {
		t.Fatalf("OnAcquire calls = %v", acquired)
	}
	// A release from a non-holder is ignored.
	h(&core.Event{Type: core.UCast, Msg: msg("\x02L"), Source: c})
	if holder, _ := lm.Holder("L"); holder != a {
		t.Fatal("non-holder release changed the holder")
	}
}

func TestLockManagerFailover(t *testing.T) {
	a, b := id("a", 1), id("b", 2)
	lm := tools.NewLockManager()
	var acquired []string
	lm.OnAcquire = func(name string) { acquired = append(acquired, name) }
	ep := core.NewEndpoint(a, nullTransport{})
	g, err := ep.Join("g", core.StackSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lm.Bind(g)
	h := lm.Handler()
	h(&core.Event{Type: core.UCast, Msg: msg("\x01L"), Source: b})
	h(&core.Event{Type: core.UCast, Msg: msg("\x01L"), Source: a})
	// b crashes: the view change hands the lock to a.
	h(&core.Event{Type: core.UView, View: view(2, a)})
	if !lm.HeldByMe("L") {
		t.Fatal("lock did not fail over")
	}
	if len(acquired) != 1 {
		t.Fatalf("OnAcquire calls = %v", acquired)
	}
	// The dead waiter is gone entirely: release empties the queue.
	h(&core.Event{Type: core.UCast, Msg: msg("\x02L"), Source: a})
	if _, ok := lm.Holder("L"); ok {
		t.Fatal("queue not empty after failover release")
	}
}

func TestPrimaryBackupRoles(t *testing.T) {
	a, b := id("a", 1), id("b", 2)
	var updates []string
	pb := tools.NewPrimaryBackup(func(u []byte) { updates = append(updates, string(u)) })
	ep := core.NewEndpoint(a, nullTransport{})
	g, err := ep.Join("g", core.StackSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pb.Bind(g)
	h := pb.Handler()
	if pb.IsPrimary() {
		t.Fatal("primary before any view")
	}
	h(&core.Event{Type: core.UView, View: view(1, a, b)})
	if !pb.IsPrimary() {
		t.Fatal("rank 0 not primary")
	}
	// Updates apply in order.
	h(&core.Event{Type: core.UCast, Msg: msg("\x02u1"), Source: a})
	h(&core.Event{Type: core.UCast, Msg: msg("\x02u2"), Source: a})
	if len(updates) != 2 || updates[0] != "u1" {
		t.Fatalf("updates = %v", updates)
	}
	if pb.Applied() != 2 {
		t.Errorf("Applied = %d", pb.Applied())
	}
	// Losing rank 0 demotes us.
	h(&core.Event{Type: core.UView, View: view(2, id("older", 0), a)})
	if pb.IsPrimary() {
		t.Fatal("still primary after losing rank 0")
	}
}

// nullTransport satisfies core.Transport with no-ops.
type nullTransport struct{}

func (nullTransport) Send(core.EndpointID, core.GroupAddr, []core.EndpointID, []byte) {}
func (nullTransport) SetTimer(time.Duration, func()) func()                           { return func() {} }
func (nullTransport) Now() time.Duration                                              { return 0 }

func msg(s string) *message.Message { return message.New([]byte(s)) }
