// Package tools builds the Isis-style toolkit the paper's introduction
// motivates on top of Horus process groups: "these primitive functions
// were used to support tools for locking and replicating data,
// load-balancing, guaranteed execution, primary-backup fault-tolerance
// ..." (§1). Each tool owns one group and expects a stack providing
// the properties it names; the property package can synthesize one.
package tools

import (
	"sync"

	"horus/internal/core"
	"horus/internal/message"
)

// RSM is a replicated state machine: commands proposed by any member
// are applied by every member in the same order. It requires a totally
// ordered, virtually synchronous stack (P6 + P9, e.g.
// TOTAL:MBRSHIP:FRAG:NAK:COM).
//
// Joiners are brought up to date by state transfer: when a view adds
// members, the oldest member carried over from the previous view sends
// them a snapshot; commands delivered before the snapshot arrives are
// buffered and applied after Restore. Usage:
//
//	r := tools.NewRSM(apply, snapshot, restore)
//	g, err := ep.Join(addr, spec, r.Handler())
//	r.Bind(g)
//	r.Propose([]byte("cmd"))
type RSM struct {
	mu       sync.Mutex
	group    *core.Group
	apply    func(cmd []byte)
	snapshot func() []byte
	restore  func(state []byte)

	synced     bool
	buffered   [][]byte
	prev       *core.View
	wasPrimary bool
	applied    int
}

// Message kinds at the RSM level: casts are commands; subset sends
// carry snapshots.
const rsmSnapshot = 1

// NewRSM creates a state machine. apply is required; snapshot and
// restore may be nil when joiners never need catching up (snapshotless
// groups treat every member as synced).
//
// With snapshots enabled, a member that *creates* the group must call
// Bootstrap to declare its (empty) state authoritative; members that
// join by merging wait for a state transfer instead. The two cases
// cannot be told apart from below — every member begins in a singleton
// view (§11: join is view merge).
func NewRSM(apply func(cmd []byte), snapshot func() []byte, restore func(state []byte)) *RSM {
	return &RSM{
		apply:    apply,
		snapshot: snapshot,
		restore:  restore,
		synced:   snapshot == nil,
	}
}

// Bootstrap declares this member's current state authoritative: the
// group creator calls it once instead of waiting for a state transfer.
func (r *RSM) Bootstrap() {
	r.mu.Lock()
	r.synced = true
	buffered := r.buffered
	r.buffered = nil
	r.applied += len(buffered)
	apply := r.apply
	r.mu.Unlock()
	for _, cmd := range buffered {
		apply(cmd)
	}
}

// Bind attaches the group handle after Join (the handler must exist
// before the group does).
func (r *RSM) Bind(g *core.Group) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.group = g
}

// Propose submits a command for replicated application.
func (r *RSM) Propose(cmd []byte) {
	r.mu.Lock()
	g := r.group
	r.mu.Unlock()
	if g != nil {
		g.Cast(message.New(append([]byte(nil), cmd...)))
	}
}

// Applied reports how many commands this member has applied.
func (r *RSM) Applied() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Synced reports whether this member has caught up with the group
// state.
func (r *RSM) Synced() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.synced
}

// Handler returns the upcall handler to pass to Join.
func (r *RSM) Handler() core.Handler {
	return func(ev *core.Event) {
		switch ev.Type {
		case core.UCast:
			r.onCommand(ev.Msg.Body())
		case core.USend:
			r.onSnapshot(ev.Msg.Body())
		case core.UView:
			r.onView(ev.View, ev.Primary)
		}
	}
}

func (r *RSM) onCommand(cmd []byte) {
	r.mu.Lock()
	if !r.synced {
		r.buffered = append(r.buffered, append([]byte(nil), cmd...))
		r.mu.Unlock()
		return
	}
	r.applied++
	apply := r.apply
	r.mu.Unlock()
	apply(cmd)
}

func (r *RSM) onSnapshot(data []byte) {
	if len(data) == 0 || data[0] != rsmSnapshot {
		return
	}
	r.mu.Lock()
	if r.synced {
		r.mu.Unlock()
		return
	}
	restore := r.restore
	buffered := r.buffered
	r.buffered = nil
	r.synced = true
	r.applied += len(buffered)
	apply := r.apply
	r.mu.Unlock()

	if restore != nil {
		restore(data[1:])
	}
	for _, cmd := range buffered {
		apply(cmd)
	}
}

// onView runs state transfer: the oldest surviving member of the
// previous view snapshots for every newcomer.
//
// Under the primary-partition restriction (mbrship.WithPrimaryPartition)
// a member sitting in a minority view marks itself stale: the primary
// side may commit commands it cannot see, so when the partition heals
// it must be treated like a newcomer and restored by state transfer.
// Its own proposals were deferred by the membership layer while
// non-primary and replay as fresh commands after the heal, so nothing
// is lost and nothing diverges.
func (r *RSM) onView(v *core.View, primary bool) {
	r.mu.Lock()
	// Leaving a primary view for a minority one means the primary side
	// may commit history we cannot see: our state is stale until a
	// transfer. (A member that has never been in a primary view risks
	// nothing — minorities cannot commit — so joining through early
	// non-primary views keeps whatever sync status it has.)
	if r.wasPrimary && !primary && r.snapshot != nil {
		r.synced = false
	}
	r.wasPrimary = primary
	prev := r.prev
	r.prev = v
	g := r.group
	synced := r.synced
	snapshot := r.snapshot
	self := core.EndpointID{}
	if g != nil {
		self = g.Endpoint().ID()
	}
	r.mu.Unlock()

	if g == nil || snapshot == nil || !synced || prev == nil {
		return
	}
	// Who transfers: the oldest member present in both views.
	var sender core.EndpointID
	for _, m := range v.Members {
		if prev.Contains(m) && (sender.IsZero() || m.Older(sender)) {
			sender = m
		}
	}
	if sender != self {
		return
	}
	var newcomers []core.EndpointID
	for _, m := range v.Members {
		if !prev.Contains(m) {
			newcomers = append(newcomers, m)
		}
	}
	if len(newcomers) == 0 {
		return
	}
	state := snapshot()
	msg := message.New(append([]byte{rsmSnapshot}, state...))
	g.Send(newcomers, msg)
}
