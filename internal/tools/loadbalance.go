package tools

import (
	"hash/fnv"
	"sync"

	"horus/internal/core"
)

// Balancer is the load-balancing tool of §1: it deterministically
// assigns work items to group members using only the agreed view, so
// every member computes the identical assignment with no coordination
// messages at all — consistent views (P15) do the whole job. When the
// view changes, ownership rebalances automatically; virtual synchrony
// guarantees all survivors switch assignments at the same logical
// moment.
//
// Items are assigned by rendezvous (highest-random-weight) hashing,
// which moves only the items owned by departed members.
type Balancer struct {
	mu   sync.Mutex
	self core.EndpointID
	view *core.View

	// OnViewChange, if set, fires after each rebalancing view with the
	// new view (without internal locks held).
	OnViewChange func(v *core.View)
}

// NewBalancer creates the tool.
func NewBalancer() *Balancer { return &Balancer{} }

// Bind attaches the group handle after Join.
func (b *Balancer) Bind(g *core.Group) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.self = g.Endpoint().ID()
}

// Handler returns the upcall handler to pass to Join. Compose it with
// the application's handler if the group carries other traffic.
func (b *Balancer) Handler() core.Handler {
	return func(ev *core.Event) {
		if ev.Type != core.UView {
			return
		}
		b.mu.Lock()
		b.view = ev.View
		cb := b.OnViewChange
		b.mu.Unlock()
		if cb != nil {
			cb(ev.View)
		}
	}
}

// Owner returns the member responsible for the item, and false before
// the first view.
func (b *Balancer) Owner(item string) (core.EndpointID, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.view == nil || b.view.Size() == 0 {
		return core.EndpointID{}, false
	}
	var best core.EndpointID
	var bestScore uint64
	for _, m := range b.view.Members {
		s := score(item, m)
		if s > bestScore || (s == bestScore && best.Older(m)) {
			best, bestScore = m, s
		}
	}
	return best, true
}

// Mine reports whether this member owns the item.
func (b *Balancer) Mine(item string) bool {
	owner, ok := b.Owner(item)
	b.mu.Lock()
	self := b.self
	b.mu.Unlock()
	return ok && owner == self
}

// score computes the rendezvous weight of (item, member).
func score(item string, m core.EndpointID) uint64 {
	h := fnv.New64a()
	h.Write([]byte(item))
	h.Write([]byte{0})
	h.Write([]byte(m.Site))
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(m.Birth >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}
