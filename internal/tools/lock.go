package tools

import (
	"sync"

	"horus/internal/core"
	"horus/internal/message"
)

// LockManager is a distributed mutual-exclusion tool (the "locking"
// tool of §1). Lock and unlock requests are multicast over a totally
// ordered, virtually synchronous stack; every member therefore sees
// the identical request sequence and computes the identical waiter
// queue per lock, with no lock server. When a holder crashes, the view
// change releases its locks deterministically.
//
// Usage mirrors RSM: create, Join with Handler(), Bind, then
// Request/Release. The OnAcquire callback fires on the member that
// obtained the lock.
type LockManager struct {
	mu    sync.Mutex
	group *core.Group
	self  core.EndpointID

	queues map[string][]core.EndpointID // lock name -> waiters, head = holder

	// OnAcquire, if set, is called (without internal locks held) when
	// this member becomes the holder of a lock.
	OnAcquire func(name string)
}

// Lock wire kinds.
const (
	lockReq = 1
	lockRel = 2
)

// NewLockManager creates a lock manager.
func NewLockManager() *LockManager {
	return &LockManager{queues: make(map[string][]core.EndpointID)}
}

// Bind attaches the group handle after Join.
func (l *LockManager) Bind(g *core.Group) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.group = g
	l.self = g.Endpoint().ID()
}

// Request multicasts a lock request; the total order arbitrates.
func (l *LockManager) Request(name string) {
	l.cast(lockReq, name)
}

// Release multicasts an unlock.
func (l *LockManager) Release(name string) {
	l.cast(lockRel, name)
}

func (l *LockManager) cast(kind byte, name string) {
	l.mu.Lock()
	g := l.group
	l.mu.Unlock()
	if g == nil {
		return
	}
	g.Cast(message.New(append([]byte{kind}, name...)))
}

// Holder returns the current holder of the lock and whether it is
// held.
func (l *LockManager) Holder(name string) (core.EndpointID, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	q := l.queues[name]
	if len(q) == 0 {
		return core.EndpointID{}, false
	}
	return q[0], true
}

// HeldByMe reports whether this member holds the lock.
func (l *LockManager) HeldByMe(name string) bool {
	h, ok := l.Holder(name)
	l.mu.Lock()
	self := l.self
	l.mu.Unlock()
	return ok && h == self
}

// Handler returns the upcall handler to pass to Join.
func (l *LockManager) Handler() core.Handler {
	return func(ev *core.Event) {
		switch ev.Type {
		case core.UCast:
			l.onCast(ev.Source, ev.Msg.Body())
		case core.UView:
			l.onView(ev.View)
		}
	}
}

func (l *LockManager) onCast(from core.EndpointID, body []byte) {
	if len(body) < 1 {
		return
	}
	kind, name := body[0], string(body[1:])
	var acquired bool
	l.mu.Lock()
	q := l.queues[name]
	switch kind {
	case lockReq:
		already := false
		for _, w := range q {
			if w == from {
				already = true
				break
			}
		}
		if !already {
			q = append(q, from)
			if len(q) == 1 && from == l.self {
				acquired = true
			}
		}
	case lockRel:
		if len(q) > 0 && q[0] == from {
			q = q[1:]
			if len(q) > 0 && q[0] == l.self {
				acquired = true
			}
		}
	}
	if len(q) == 0 {
		delete(l.queues, name)
	} else {
		l.queues[name] = q
	}
	cb := l.OnAcquire
	l.mu.Unlock()
	if acquired && cb != nil {
		cb(name)
	}
}

// onView drops departed members from every queue; a crashed holder's
// lock passes to the next waiter. Every survivor computes the same
// result from the same view.
func (l *LockManager) onView(v *core.View) {
	var acquired []string
	l.mu.Lock()
	for name, q := range l.queues {
		keep := q[:0]
		hadHolder := len(q) > 0 && q[0] == l.self
		for _, w := range q {
			if v.Contains(w) {
				keep = append(keep, w)
			}
		}
		if len(keep) == 0 {
			delete(l.queues, name)
			continue
		}
		l.queues[name] = keep
		if !hadHolder && keep[0] == l.self {
			acquired = append(acquired, name)
		}
	}
	cb := l.OnAcquire
	l.mu.Unlock()
	if cb != nil {
		for _, name := range acquired {
			cb(name)
		}
	}
}
