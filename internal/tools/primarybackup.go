package tools

import (
	"sync"

	"horus/internal/core"
	"horus/internal/message"
)

// PrimaryBackup is the primary-backup fault-tolerance tool of §1. The
// lowest-ranked view member is the primary; requests submitted at any
// member are forwarded to it, the primary serializes them into
// multicast updates, and every member applies the identical update
// stream. When the primary fails, the view change promotes the next
// member — with a virtually synchronous stack there is no window in
// which survivors disagree about the update prefix.
//
// The stack needs P9 (virtual synchrony). P6 is unnecessary: only the
// primary multicasts, so sender-FIFO order is already a total order.
type PrimaryBackup struct {
	mu    sync.Mutex
	group *core.Group
	self  core.EndpointID
	view  *core.View
	apply func(update []byte)

	pending [][]byte // requests submitted before any view installed
	applied int
}

// Primary-backup wire kinds.
const (
	pbRequest = 1 // client request forwarded to the primary
	pbUpdate  = 2 // serialized update multicast by the primary
)

// NewPrimaryBackup creates the tool; apply receives each committed
// update, in order, at every member.
func NewPrimaryBackup(apply func(update []byte)) *PrimaryBackup {
	return &PrimaryBackup{apply: apply}
}

// Bind attaches the group handle after Join.
func (p *PrimaryBackup) Bind(g *core.Group) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.group = g
	p.self = g.Endpoint().ID()
}

// IsPrimary reports whether this member currently leads.
func (p *PrimaryBackup) IsPrimary() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.isPrimaryLocked()
}

func (p *PrimaryBackup) isPrimaryLocked() bool {
	return p.view != nil && p.view.Size() > 0 && p.view.Members[0] == p.self
}

// Applied reports how many updates this member has applied.
func (p *PrimaryBackup) Applied() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applied
}

// Submit hands a request to the replicated service from this member.
func (p *PrimaryBackup) Submit(req []byte) {
	p.mu.Lock()
	g, view := p.group, p.view
	primary := p.isPrimaryLocked()
	if g == nil || view == nil {
		p.pending = append(p.pending, append([]byte(nil), req...))
		p.mu.Unlock()
		return
	}
	head := view.Members[0]
	p.mu.Unlock()

	if primary {
		g.Cast(message.New(append([]byte{pbUpdate}, req...)))
		return
	}
	g.Send([]core.EndpointID{head}, message.New(append([]byte{pbRequest}, req...)))
}

// Handler returns the upcall handler to pass to Join.
func (p *PrimaryBackup) Handler() core.Handler {
	return func(ev *core.Event) {
		switch ev.Type {
		case core.UCast:
			p.onCast(ev.Msg.Body())
		case core.USend:
			p.onSend(ev.Msg.Body())
		case core.UView:
			p.onView(ev.View)
		}
	}
}

func (p *PrimaryBackup) onCast(body []byte) {
	if len(body) < 1 || body[0] != pbUpdate {
		return
	}
	p.mu.Lock()
	p.applied++
	apply := p.apply
	p.mu.Unlock()
	apply(body[1:])
}

// onSend is the primary receiving a forwarded request.
func (p *PrimaryBackup) onSend(body []byte) {
	if len(body) < 1 || body[0] != pbRequest {
		return
	}
	p.mu.Lock()
	g := p.group
	primary := p.isPrimaryLocked()
	p.mu.Unlock()
	if !primary || g == nil {
		// Raced with a view change; the client's retry policy covers
		// this (requests are at-most-once at this level).
		return
	}
	g.Cast(message.New(append([]byte{pbUpdate}, body[1:]...)))
}

func (p *PrimaryBackup) onView(v *core.View) {
	p.mu.Lock()
	p.view = v
	pending := p.pending
	p.pending = nil
	p.mu.Unlock()
	for _, req := range pending {
		p.Submit(req)
	}
}
