package tools_test

import (
	"fmt"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/frag"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/layers/total"
	"horus/internal/netsim"
	"horus/internal/tools"
)

// A two-replica counter as a replicated state machine over the §7
// stack: both replicas propose, the TOTAL token serializes, both apply
// identically.
func ExampleRSM() {
	net := netsim.New(netsim.Config{Seed: 1, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	stack := func() core.StackSpec {
		return core.StackSpec{
			total.NewWith(total.WithRequestRetry(50 * time.Millisecond)),
			mbrship.NewWith(
				mbrship.WithGossipPeriod(40*time.Millisecond),
				mbrship.WithFlushTimeout(500*time.Millisecond),
			),
			frag.New,
			nak.NewWith(nak.WithStatusPeriod(20*time.Millisecond), nak.WithSuspectAfter(6)),
			com.New,
		}
	}

	mk := func(name string, creator bool) (*tools.RSM, *core.Group, *int) {
		count := new(int)
		r := tools.NewRSM(func(cmd []byte) { *count += int(cmd[0]) }, nil, nil)
		ep := net.NewEndpoint(name)
		g, err := ep.Join("counter", stack(), r.Handler())
		if err != nil {
			panic(err)
		}
		r.Bind(g)
		if creator {
			r.Bootstrap()
		}
		return r, g, count
	}
	r1, g1, c1 := mk("alice", true)
	r2, g2, c2 := mk("bob", false)

	net.At(10*time.Millisecond, func() { g2.Merge(g1.Endpoint().ID()) })
	net.At(200*time.Millisecond, func() {
		r1.Propose([]byte{5})
		r2.Propose([]byte{7})
	})
	net.RunFor(2 * time.Second)

	fmt.Println("alice:", *c1, "bob:", *c2)
	// Output: alice: 12 bob: 12
}
