package layertest_test

import (
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layertest"
	"horus/internal/message"
)

// echoLayer reflects casts upward with a marker, to verify harness
// plumbing in both directions.
type echoLayer struct{ core.Base }

func (e *echoLayer) Name() string { return "ECHO" }
func (e *echoLayer) Down(ev *core.Event) {
	if ev.Type == core.DCast {
		e.Ctx.Up(&core.Event{Type: core.UCast, Msg: ev.Msg, Source: e.Ctx.Self()})
		return
	}
	e.Ctx.Down(ev)
}

func TestHarnessCapturesBothDirections(t *testing.T) {
	h := layertest.New(t, func() core.Layer { return &echoLayer{} })
	h.InjectDown(core.NewCast(message.New([]byte("ping"))))
	if got := h.UpOfType(core.UCast); len(got) != 1 || string(got[0].Msg.Body()) != "ping" {
		t.Fatalf("up capture = %v", got)
	}
	if got := h.DownOfType(core.DCast); len(got) != 0 {
		t.Fatal("echoed cast leaked downward")
	}
	h.InjectDown(&core.Event{Type: core.DLeave})
	if got := h.DownOfType(core.DLeave); len(got) != 1 {
		t.Fatal("pass-through downcall not captured at bottom")
	}
	// Handled events reach the fake application.
	if len(h.Handled) == 0 {
		t.Fatal("handler saw nothing")
	}
	h.Reset()
	if len(h.Handled) != 0 || h.LastUp() != nil || h.LastDown() != nil {
		t.Fatal("Reset left residue")
	}
}

// timerLayer emits an upcall when its timer fires, validating that
// harness time control reaches layer timers.
type timerLayer struct{ core.Base }

func (l *timerLayer) Name() string { return "TIMER" }
func (l *timerLayer) Init(c *core.Context) error {
	if err := l.Base.Init(c); err != nil {
		return err
	}
	c.SetTimer(30*time.Millisecond, func() {
		c.Up(&core.Event{Type: core.UProblem, Source: c.Self()})
	})
	return nil
}

func TestHarnessDrivesTimers(t *testing.T) {
	h := layertest.New(t, func() core.Layer { return &timerLayer{} })
	h.Run(10 * time.Millisecond)
	if got := h.UpOfType(core.UProblem); len(got) != 0 {
		t.Fatal("timer fired early")
	}
	h.Run(50 * time.Millisecond)
	if got := h.UpOfType(core.UProblem); len(got) != 1 {
		t.Fatalf("timer upcalls = %d, want 1", len(got))
	}
}

func TestInstallViewReachesBothSides(t *testing.T) {
	h := layertest.New(t, func() core.Layer { return &echoLayer{} })
	v := h.InstallView(h.Self(), layertest.ID("p", 2))
	if v.Size() != 2 {
		t.Fatal("view built wrong")
	}
	if got := h.DownOfType(core.DView); len(got) != 1 {
		t.Fatal("view downcall missing below")
	}
	if got := h.UpOfType(core.UView); len(got) != 1 {
		t.Fatal("view upcall missing above")
	}
}
