// Package layertest provides a harness for unit-testing one protocol
// layer in isolation: the layer under test is sandwiched between two
// capture layers on a real endpoint over the simulated network, so
// timers, the event queue, and context plumbing behave exactly as in
// production, while every event the layer emits in either direction is
// recorded and events can be injected above or below it.
package layertest

import (
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/netsim"
)

// Capture is a transparent recording layer.
type Capture struct {
	core.Base
	name   string
	absorb bool // bottom capture: do not pass downcalls further

	// DownEvents and UpEvents record what crossed this layer.
	DownEvents []*core.Event
	UpEvents   []*core.Event
}

// Name implements core.Layer.
func (c *Capture) Name() string { return c.name }

// Down implements core.Layer.
func (c *Capture) Down(ev *core.Event) {
	c.DownEvents = append(c.DownEvents, ev)
	if !c.absorb {
		c.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (c *Capture) Up(ev *core.Event) {
	c.UpEvents = append(c.UpEvents, ev)
	c.Ctx.Up(ev)
}

// Harness hosts one layer between captures.
type Harness struct {
	t   *testing.T
	Net *netsim.Network
	EP  *core.Endpoint
	G   *core.Group
	Top *Capture // records Up events emerging from the layer
	Bot *Capture // records Down events emerging from the layer

	// Handled records events that reached the application handler.
	Handled []*core.Event
}

// New builds a harness around the layer produced by factory. The
// endpoint is named "self" and attached to a fresh deterministic
// network (seed 1).
func New(t *testing.T, factory core.Factory) *Harness {
	t.Helper()
	h := &Harness{
		t:   t,
		Net: netsim.New(netsim.Config{Seed: 1}),
		Top: &Capture{name: "TOP"},
		Bot: &Capture{name: "BOT", absorb: true},
	}
	h.EP = h.Net.NewEndpoint("self")
	g, err := h.EP.Join("test", core.StackSpec{
		func() core.Layer { return h.Top },
		factory,
		func() core.Layer { return h.Bot },
	}, func(ev *core.Event) { h.Handled = append(h.Handled, ev) })
	if err != nil {
		t.Fatal(err)
	}
	h.G = g
	return h
}

// Self returns the harness endpoint's identifier.
func (h *Harness) Self() core.EndpointID { return h.EP.ID() }

// ID makes a peer endpoint identifier for test scripts.
func ID(site string, birth uint64) core.EndpointID {
	return core.EndpointID{Site: site, Birth: birth}
}

// InjectDown delivers ev to the layer's top interface, as if the
// application (or a layer above) issued it.
func (h *Harness) InjectDown(ev *core.Event) {
	h.EP.Do(func() { h.Top.Ctx.Down(ev) })
}

// InjectUp delivers ev to the layer's bottom interface, as if it
// arrived from the network.
func (h *Harness) InjectUp(ev *core.Event) {
	h.EP.Do(func() { h.Bot.Ctx.Up(ev) })
}

// Run advances virtual time, firing the layer's timers.
func (h *Harness) Run(d time.Duration) { h.Net.RunFor(d) }

// LastDown returns the most recent event the layer passed down, or
// nil.
func (h *Harness) LastDown() *core.Event {
	if len(h.Bot.DownEvents) == 0 {
		return nil
	}
	return h.Bot.DownEvents[len(h.Bot.DownEvents)-1]
}

// LastUp returns the most recent event the layer passed up, or nil.
func (h *Harness) LastUp() *core.Event {
	if len(h.Top.UpEvents) == 0 {
		return nil
	}
	return h.Top.UpEvents[len(h.Top.UpEvents)-1]
}

// DownOfType filters recorded downward events by type.
func (h *Harness) DownOfType(t core.EventType) []*core.Event {
	var out []*core.Event
	for _, ev := range h.Bot.DownEvents {
		if ev.Type == t {
			out = append(out, ev)
		}
	}
	return out
}

// UpOfType filters recorded upward events by type.
func (h *Harness) UpOfType(t core.EventType) []*core.Event {
	var out []*core.Event
	for _, ev := range h.Top.UpEvents {
		if ev.Type == t {
			out = append(out, ev)
		}
	}
	return out
}

// Reset clears the recorded events.
func (h *Harness) Reset() {
	h.Top.UpEvents = nil
	h.Bot.DownEvents = nil
	h.Handled = nil
}

// InstallView pushes a view downcall through the stack top, the way
// static-membership stacks configure their destination sets, and also
// reflects it upward so layers above see the installation.
func (h *Harness) InstallView(members ...core.EndpointID) *core.View {
	v := core.NewView(core.ViewID{Seq: 1, Coord: members[0]}, "test", members)
	h.InjectDown(&core.Event{Type: core.DView, View: v})
	h.InjectUp(&core.Event{Type: core.UView, View: v, Primary: true})
	// Layers may finish view handling on a same-instant timer (e.g.
	// SWITCH's deferred gate release); fire those without moving time.
	h.Net.RunFor(0)
	return v
}
