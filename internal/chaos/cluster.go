package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"horus/internal/core"
	"horus/internal/layers/adapt"
	"horus/internal/layers/com"
	"horus/internal/layers/compress"
	"horus/internal/layers/hbeat"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/layers/switchp"
	"horus/internal/layers/total"
	"horus/internal/message"
	"horus/internal/netsim"
	"horus/internal/property"
)

// Config parameterizes a chaos cluster.
type Config struct {
	Seed    int64
	Members int

	// Link is the default (healthy) link; zero means a perfect network,
	// which hides nothing, so callers usually want some delay + loss.
	Link netsim.Link

	// Fabric is the transport substrate. Nil means the deterministic
	// simulated fabric built from Seed and Link; pass a
	// chaosnet.Fabric to run the same cluster over real UDP sockets
	// at wall-clock speed.
	Fabric Fabric

	// CastEvery is the workload period: every live member casts one
	// payload per period. Zero means 70ms.
	CastEvery time.Duration

	// ReconcileEvery is how often stragglers are re-merged toward the
	// anchor. Zero means 250ms.
	ReconcileEvery time.Duration

	// Stack overrides the default MBRSHIP:HBEAT:NAK:COM stack. Each
	// call must return a fresh spec.
	Stack func() core.StackSpec

	// Trace, when set, receives layer diagnostics from every member,
	// prefixed with the fabric time and the member's slot.incarnation.
	// Replaying a failing seed with a trace sink is the fastest way to
	// see the exact protocol exchange behind a violation.
	Trace func(format string, args ...interface{})
}

// DefaultStack is the chaos stack: membership over the heartbeat
// failure detector over reliable FIFO. NAK's own silence-based
// suspicion is disabled (WithSuspectAfter(0)) so every failure the
// cluster survives was detected by HBEAT — no manual PROBLEM
// injection, no second detector to hide behind.
func DefaultStack() core.StackSpec {
	return core.StackSpec{
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(400*time.Millisecond),
		),
		hbeat.NewWith(
			hbeat.WithPeriod(30*time.Millisecond),
			hbeat.WithMinTimeout(90*time.Millisecond),
			hbeat.WithMaxTimeout(250*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(0),
		),
		com.New,
	}
}

// PrimaryStack is DefaultStack with mbrship primary-partition
// arithmetic enabled for a full group of `members`: minority views are
// marked non-primary and their casts defer until quorum returns. The
// harsh soak runs it so majority loss and multi-way partitions
// exercise the primary flag, not just view plumbing.
func PrimaryStack(members int) func() core.StackSpec {
	return func() core.StackSpec {
		spec := DefaultStack()
		spec[0] = mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(400*time.Millisecond),
			mbrship.WithPrimaryPartition(members),
		)
		return spec
	}
}

// SwitchStack is DefaultStack with a SWITCH reconfiguration layer on
// top: the segment starts empty (plain FIFO personality) and KindSwitch
// actions upgrade, downgrade, or reshape it at run time. The resolver
// offers the same chaos-tuned layer recipes a static stack would use,
// so a reconfigured TOTAL retries its sequencer requests fast enough
// to make progress between faults. Deadlines are sized to the sim
// fabric's default link; on real UDP they still hold because quiesce
// normally completes in a round trip or two.
func SwitchStack() core.StackSpec {
	return switchOver(DefaultStack())
}

// PrimarySwitchStack is SWITCH over PrimaryStack: the harsh soak's
// primary-partition base with run-time reconfiguration on top. Without
// the primary flag a harsh multi-way split lets both sides keep
// delivering independently, which no layer above membership can
// repair; switch storms on harsh schedules must therefore ride the
// primary base.
func PrimarySwitchStack(members int) func() core.StackSpec {
	return func() core.StackSpec {
		return switchOver(PrimaryStack(members)())
	}
}

// switchOver prepends the chaos-tuned SWITCH layer to a base stack.
func switchOver(spec core.StackSpec) core.StackSpec {
	resolver := func(name string) (core.Factory, bool) {
		switch name {
		case "TOTAL":
			return total.NewWith(total.WithRequestRetry(60 * time.Millisecond)), true
		case "COMPRESS":
			return compress.New, true
		case "ADAPT":
			return adapt.New, true
		}
		return nil, false
	}
	return append(core.StackSpec{
		// The chaos base is hand-tuned off the Table 3 grid (no FRAG),
		// so SWITCH validates targets against the declared base
		// properties instead of re-deriving the below layers.
		switchp.NewWith(
			switchp.WithResolver(resolver),
			switchp.WithOpaqueBase(property.SegmentBase),
			switchp.WithQuiesceDeadline(500*time.Millisecond),
			switchp.WithReadyDeadline(500*time.Millisecond),
		),
	}, spec...)
}

// member is one slot's current incarnation.
type member struct {
	slot int
	inc  int
	ep   *core.Endpoint
	g    *core.Group
	hist *History
	seq  int  // workload sequence, per incarnation
	down bool // crashed, awaiting recover
}

// Cluster drives a group of members over a fabric, applies fault
// schedules, runs a cast workload, and keeps trying to re-merge
// whatever the faults split apart.
//
// On the simulated fabric everything runs on one goroutine; on a
// wall-clock fabric the workload, reconciler, and fault timers fire
// concurrently, so the slot table is mutex-guarded and all protocol
// interaction goes through each endpoint's run-to-completion executor.
type Cluster struct {
	fab Fabric
	cfg Config

	mu        sync.Mutex
	members   []*member  // by slot; current incarnation
	Histories []*History // every incarnation that ever lived, in boot order
}

// NewCluster builds the fabric (if none was supplied) and boots one
// endpoint per slot. Call Form to merge them into a single view.
func NewCluster(cfg Config) *Cluster {
	if cfg.Members < 2 {
		panic("chaos: need at least 2 members")
	}
	if cfg.CastEvery == 0 {
		cfg.CastEvery = 70 * time.Millisecond
	}
	if cfg.ReconcileEvery == 0 {
		cfg.ReconcileEvery = 250 * time.Millisecond
	}
	if cfg.Stack == nil {
		cfg.Stack = DefaultStack
	}
	if cfg.Fabric == nil {
		cfg.Fabric = NewSimFabric(cfg.Seed, cfg.Link)
	}
	c := &Cluster{fab: cfg.Fabric, cfg: cfg}
	c.members = make([]*member, cfg.Members)
	c.mu.Lock()
	for slot := 0; slot < cfg.Members; slot++ {
		c.boot(slot, 0)
	}
	c.mu.Unlock()
	return c
}

// Fabric returns the transport substrate the cluster runs over.
func (c *Cluster) Fabric() Fabric { return c.fab }

// Close releases the fabric (sockets, goroutines). Call it before
// Check on a wall-clock fabric so histories are quiescent.
func (c *Cluster) Close() { c.fab.Close() }

// boot creates incarnation inc of the given slot and joins the group.
// Callers hold c.mu.
func (c *Cluster) boot(slot, inc int) {
	site := fmt.Sprintf("s%d", slot)
	ep := c.fab.NewEndpoint(site)
	if c.cfg.Trace != nil {
		trace, slot, inc := c.cfg.Trace, slot, inc
		ep.SetTrace(func(format string, args ...interface{}) {
			prefix := fmt.Sprintf("%8v s%d.%d | ", c.fab.Now(), slot, inc)
			trace(prefix+format, args...)
		})
	}
	h := &History{Slot: slot, Inc: inc, ID: ep.ID()}
	m := &member{slot: slot, inc: inc, ep: ep, hist: h}
	g, err := ep.Join("chaos", c.cfg.Stack(), h.handler())
	if err != nil {
		panic(fmt.Sprintf("chaos: boot s%d.%d: %v", slot, inc, err))
	}
	m.g = g
	c.members[slot] = m
	c.Histories = append(c.Histories, h)
}

// id returns the current incarnation's endpoint ID for a slot.
// Callers hold c.mu.
func (c *Cluster) id(slot int) core.EndpointID { return c.members[slot].ep.ID() }

// Form merges all members into one full view and returns an error if
// they fail to converge within the deadline. It also starts the
// workload and the reconciler, which run until the fabric stops.
func (c *Cluster) Form(deadline time.Duration) error {
	c.startReconciler()
	c.startWorkload()
	stop := c.fab.Now() + deadline
	for c.fab.Now() < stop {
		c.fab.RunFor(100 * time.Millisecond)
		if c.converged() {
			return nil
		}
	}
	return fmt.Errorf("chaos: cluster did not form a full view within %v", deadline)
}

// startWorkload arms the recurring cast loop: each tick, every live
// member casts one tagged payload "s<slot>.<inc>-<seq>". The payloads
// are chosen under the cluster lock; the casts themselves run on each
// member's executor so a wall-clock fabric stays race-free.
func (c *Cluster) startWorkload() {
	var tick func()
	tick = func() {
		type cast struct {
			m       *member
			payload string
		}
		c.mu.Lock()
		casts := make([]cast, 0, len(c.members))
		for _, m := range c.members {
			if m.down {
				continue
			}
			m.seq++
			casts = append(casts, cast{m, fmt.Sprintf("s%d.%d-%d", m.slot, m.inc, m.seq)})
		}
		c.mu.Unlock()
		for _, cs := range casts {
			m, payload := cs.m, cs.payload
			m.ep.Do(func() { m.g.Cast(message.New([]byte(payload))) })
		}
		c.fab.At(c.fab.Now()+c.cfg.CastEvery, tick)
	}
	c.fab.At(c.fab.Now()+c.cfg.CastEvery, tick)
}

// startReconciler arms the recurring merge loop. Faults tear views
// apart; the reconciler points every live member that has lost sight
// of the anchor (the oldest live endpoint) back at it. Merges denied or
// lost are simply retried next round.
func (c *Cluster) startReconciler() {
	var tick func()
	tick = func() {
		c.mu.Lock()
		var merges []*member
		var aid core.EndpointID
		if anchor := c.anchor(); anchor != nil {
			aid = anchor.ep.ID()
			for _, m := range c.members {
				if m.down || m == anchor {
					continue
				}
				v := m.hist.Last()
				if v == nil || !v.Contains(aid) {
					merges = append(merges, m)
				}
			}
		}
		c.mu.Unlock()
		for _, m := range merges {
			m := m
			m.ep.Do(func() { m.g.Merge(aid) })
		}
		c.fab.At(c.fab.Now()+c.cfg.ReconcileEvery, tick)
	}
	c.fab.At(c.fab.Now()+c.cfg.ReconcileEvery, tick)
}

// anchor returns the live member with the oldest endpoint, or nil.
// Oldest — not lowest slot — because MBRSHIP only accepts merge
// requests at its view's coordinator, the oldest surviving endpoint.
// A recovered low slot is a young endpoint: pointing merges at it
// wedges every stray member on "not coordinator" denials, while the
// oldest live endpoint coordinates whatever view it is in. This is
// the MERGE layer's age rule, applied by the harness.
// Callers hold c.mu.
func (c *Cluster) anchor() *member {
	var a *member
	for _, m := range c.members {
		if m.down {
			continue
		}
		if a == nil || m.ep.ID().Older(a.ep.ID()) {
			a = m
		}
	}
	return a
}

// converged reports whether every live member's current view contains
// exactly the live incarnations. Views are read from the recorded
// histories, which are the transport-agnostic ground truth.
func (c *Cluster) converged() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	want := map[core.EndpointID]bool{}
	live := 0
	for _, m := range c.members {
		if !m.down {
			want[m.ep.ID()] = true
			live++
		}
	}
	for _, m := range c.members {
		if m.down {
			continue
		}
		v := m.hist.Last()
		if v == nil || v.Size() != live {
			return false
		}
		for _, id := range v.Members {
			if !want[id] {
				return false
			}
		}
	}
	return live > 0
}

// Apply schedules every action of s, offset from the current fabric
// time. Slots are resolved to incarnations at fire time.
func (c *Cluster) Apply(s Schedule) {
	base := c.fab.Now()
	for _, a := range s.Sorted() {
		a := a
		c.fab.At(base+a.At, func() { c.apply(a) })
	}
}

func (c *Cluster) apply(a Action) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch a.Kind {
	case KindSetLink:
		c.fab.SetLink(c.id(a.A), c.id(a.B), a.Link)
	case KindSetLinkDirected:
		c.fab.SetLinkDirected(c.id(a.A), c.id(a.B), a.Link)
	case KindClearLink:
		c.fab.ClearLink(c.id(a.A), c.id(a.B))
	case KindSetHost:
		c.fab.SetHost(c.id(a.A), a.Host)
	case KindClearHost:
		c.fab.ClearHost(c.id(a.A))
	case KindCrash:
		m := c.members[a.A]
		if m.down {
			return
		}
		m.down = true
		m.hist.Crashed = true
		c.fab.Crash(m.ep.ID())
	case KindRecover:
		m := c.members[a.A]
		if !m.down {
			return
		}
		// A recovered process is a new incarnation: the old endpoint is
		// detached (its links and fan-out entries die with it) and a
		// fresh one boots at the same site. The reconciler merges it
		// back into the group.
		c.fab.Detach(m.ep.ID())
		c.boot(a.A, m.inc+1)
	case KindPartition:
		groups := make([][]core.EndpointID, len(a.Sides))
		for i, slots := range a.Sides {
			for _, s := range slots {
				groups[i] = append(groups[i], c.id(s))
			}
		}
		c.fab.Partition(groups...)
	case KindHeal:
		c.fab.Heal()
	case KindSwitch:
		m := c.members[a.A]
		if m.down {
			return
		}
		sw, ok := m.g.Focus("SWITCH").(*switchp.Switch)
		if !ok {
			return // stack has no SWITCH layer; the action is a no-op
		}
		target := a.Target
		// Refusals (no view yet, switch already pending, bad target)
		// are part of the storm: the next action tries again elsewhere.
		m.ep.Do(func() { _ = sw.RequestSwitch(target) })
	}
}

// Run advances the fabric.
func (c *Cluster) Run(d time.Duration) { c.fab.RunFor(d) }

// Settle runs until the cluster has converged on a full live view, in
// slices of `step`, failing after `deadline`.
func (c *Cluster) Settle(deadline time.Duration) error {
	stop := c.fab.Now() + deadline
	for c.fab.Now() < stop {
		c.fab.RunFor(100 * time.Millisecond)
		if c.converged() {
			return nil
		}
	}
	c.mu.Lock()
	var views []string
	for _, m := range c.members {
		views = append(views, fmt.Sprintf("s%d.%d:%v", m.slot, m.inc, m.hist.Last()))
	}
	c.mu.Unlock()
	return fmt.Errorf("chaos: cluster did not re-converge within %v:\n  %s",
		deadline, strings.Join(views, "\n  "))
}

// Check runs every invariant checker over the full history set. On a
// wall-clock fabric, Close first so the histories are quiescent.
func (c *Cluster) Check() []error {
	c.mu.Lock()
	hs := append([]*History(nil), c.Histories...)
	c.mu.Unlock()
	return CheckAll(hs)
}

// Digest returns a stable fingerprint of everything every incarnation
// observed — view chains and delivery streams — for determinism
// assertions: two runs of the same seed must produce equal digests.
func (c *Cluster) Digest() string {
	c.mu.Lock()
	hs := append([]*History(nil), c.Histories...)
	c.mu.Unlock()
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Slot != hs[j].Slot {
			return hs[i].Slot < hs[j].Slot
		}
		return hs[i].Inc < hs[j].Inc
	})
	var b strings.Builder
	for _, h := range hs {
		fmt.Fprintf(&b, "s%d.%d views=[", h.Slot, h.Inc)
		for _, v := range h.Views {
			fmt.Fprintf(&b, " %d@%s/%d", v.ID.Seq, v.ID.Coord.Site, v.Size())
		}
		b.WriteString(" ] casts=[")
		for _, d := range h.Deliveries {
			if d.Lost {
				fmt.Fprintf(&b, " %d:lost!", d.View.Seq)
				continue
			}
			fmt.Fprintf(&b, " %d:%s", d.View.Seq, d.Payload)
			// Epoch tags appear only past the first commit, so digests of
			// runs without SWITCH activity are unchanged.
			if d.Epoch > 0 {
				fmt.Fprintf(&b, "@e%d", d.Epoch)
			}
		}
		b.WriteString(" ]")
		if len(h.Switches) > 0 {
			b.WriteString(" switches=[")
			for _, s := range h.Switches {
				if s.Committed {
					fmt.Fprintf(&b, " %d:commit:e%d:%q", s.View.Seq, s.Epoch, s.Detail)
				} else {
					fmt.Fprintf(&b, " %d:abort:e%d", s.View.Seq, s.Epoch)
				}
			}
			b.WriteString(" ]")
		}
		b.WriteString("\n")
	}
	return b.String()
}
