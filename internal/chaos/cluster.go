package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/hbeat"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

// Config parameterizes a chaos cluster.
type Config struct {
	Seed    int64
	Members int

	// Link is the default (healthy) link; zero means a perfect network,
	// which hides nothing, so callers usually want some delay + loss.
	Link netsim.Link

	// CastEvery is the workload period: every live member casts one
	// payload per period. Zero means 70ms.
	CastEvery time.Duration

	// ReconcileEvery is how often stragglers are re-merged toward the
	// anchor. Zero means 250ms.
	ReconcileEvery time.Duration

	// Stack overrides the default MBRSHIP:HBEAT:NAK:COM stack. Each
	// call must return a fresh spec.
	Stack func() core.StackSpec
}

// DefaultStack is the chaos stack: membership over the heartbeat
// failure detector over reliable FIFO. NAK's own silence-based
// suspicion is disabled (WithSuspectAfter(0)) so every failure the
// cluster survives was detected by HBEAT — no manual PROBLEM
// injection, no second detector to hide behind.
func DefaultStack() core.StackSpec {
	return core.StackSpec{
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(400*time.Millisecond),
		),
		hbeat.NewWith(
			hbeat.WithPeriod(30*time.Millisecond),
			hbeat.WithMinTimeout(90*time.Millisecond),
			hbeat.WithMaxTimeout(250*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(0),
		),
		com.New,
	}
}

// member is one slot's current incarnation.
type member struct {
	slot int
	inc  int
	ep   *core.Endpoint
	g    *core.Group
	hist *History
	seq  int  // workload sequence, per incarnation
	down bool // crashed, awaiting recover
}

// Cluster drives a group of members over a seeded simulation, applies
// fault schedules, runs a cast workload, and keeps trying to re-merge
// whatever the faults split apart.
type Cluster struct {
	Net *netsim.Network
	cfg Config

	members   []*member  // by slot; current incarnation
	Histories []*History // every incarnation that ever lived, in boot order
}

// NewCluster builds the simulation and boots one endpoint per slot.
// Call Form to merge them into a single view.
func NewCluster(cfg Config) *Cluster {
	if cfg.Members < 2 {
		panic("chaos: need at least 2 members")
	}
	if cfg.CastEvery == 0 {
		cfg.CastEvery = 70 * time.Millisecond
	}
	if cfg.ReconcileEvery == 0 {
		cfg.ReconcileEvery = 250 * time.Millisecond
	}
	if cfg.Stack == nil {
		cfg.Stack = DefaultStack
	}
	c := &Cluster{
		Net: netsim.New(netsim.Config{Seed: cfg.Seed, DefaultLink: cfg.Link}),
		cfg: cfg,
	}
	c.members = make([]*member, cfg.Members)
	for slot := 0; slot < cfg.Members; slot++ {
		c.boot(slot, 0)
	}
	return c
}

// boot creates incarnation inc of the given slot and joins the group.
func (c *Cluster) boot(slot, inc int) {
	site := fmt.Sprintf("s%d", slot)
	ep := c.Net.NewEndpoint(site)
	h := &History{Slot: slot, Inc: inc, ID: ep.ID()}
	m := &member{slot: slot, inc: inc, ep: ep, hist: h}
	g, err := ep.Join("chaos", c.cfg.Stack(), h.handler())
	if err != nil {
		panic(fmt.Sprintf("chaos: boot s%d.%d: %v", slot, inc, err))
	}
	m.g = g
	c.members[slot] = m
	c.Histories = append(c.Histories, h)
}

// id returns the current incarnation's endpoint ID for a slot.
func (c *Cluster) id(slot int) core.EndpointID { return c.members[slot].ep.ID() }

// Form merges all members into one full view and returns an error if
// they fail to converge within the deadline. It also starts the
// workload and the reconciler, which run until the simulation stops.
func (c *Cluster) Form(deadline time.Duration) error {
	c.startReconciler()
	c.startWorkload()
	stop := c.Net.Now() + deadline
	for c.Net.Now() < stop {
		c.Net.RunFor(100 * time.Millisecond)
		if c.converged() {
			return nil
		}
	}
	return fmt.Errorf("chaos: cluster did not form a full view within %v", deadline)
}

// startWorkload arms the recurring cast loop: each tick, every live
// member casts one tagged payload "s<slot>.<inc>-<seq>".
func (c *Cluster) startWorkload() {
	var tick func()
	tick = func() {
		for _, m := range c.members {
			if m.down {
				continue
			}
			m.seq++
			payload := fmt.Sprintf("s%d.%d-%d", m.slot, m.inc, m.seq)
			m.g.Cast(message.New([]byte(payload)))
		}
		c.Net.At(c.Net.Now()+c.cfg.CastEvery, tick)
	}
	c.Net.At(c.Net.Now()+c.cfg.CastEvery, tick)
}

// startReconciler arms the recurring merge loop. Faults tear views
// apart; the reconciler points every live member that has lost sight
// of the anchor (the lowest live slot) back at it. Merges denied or
// lost are simply retried next round.
func (c *Cluster) startReconciler() {
	var tick func()
	tick = func() {
		anchor := c.anchor()
		if anchor != nil {
			for _, m := range c.members {
				if m.down || m == anchor {
					continue
				}
				v := m.g.View()
				if v == nil || !v.Contains(anchor.ep.ID()) {
					m.g.Merge(anchor.ep.ID())
				}
			}
		}
		c.Net.At(c.Net.Now()+c.cfg.ReconcileEvery, tick)
	}
	c.Net.At(c.Net.Now()+c.cfg.ReconcileEvery, tick)
}

// anchor returns the live member with the lowest slot, or nil.
func (c *Cluster) anchor() *member {
	for _, m := range c.members {
		if !m.down {
			return m
		}
	}
	return nil
}

// converged reports whether every live member's current view contains
// exactly the live incarnations.
func (c *Cluster) converged() bool {
	want := map[core.EndpointID]bool{}
	live := 0
	for _, m := range c.members {
		if !m.down {
			want[m.ep.ID()] = true
			live++
		}
	}
	for _, m := range c.members {
		if m.down {
			continue
		}
		v := m.g.View()
		if v == nil || v.Size() != live {
			return false
		}
		for _, id := range v.Members {
			if !want[id] {
				return false
			}
		}
	}
	return live > 0
}

// Apply schedules every action of s, offset from the current virtual
// time. Slots are resolved to incarnations at fire time.
func (c *Cluster) Apply(s Schedule) {
	base := c.Net.Now()
	for _, a := range s.Sorted() {
		a := a
		c.Net.At(base+a.At, func() { c.apply(a) })
	}
}

func (c *Cluster) apply(a Action) {
	switch a.Kind {
	case KindSetLink:
		c.Net.SetLink(c.id(a.A), c.id(a.B), a.Link)
	case KindSetLinkDirected:
		c.Net.SetLinkDirected(c.id(a.A), c.id(a.B), a.Link)
	case KindClearLink:
		c.Net.ClearLink(c.id(a.A), c.id(a.B))
	case KindCrash:
		m := c.members[a.A]
		if m.down {
			return
		}
		m.down = true
		m.hist.Crashed = true
		c.Net.Crash(m.ep.ID())
	case KindRecover:
		m := c.members[a.A]
		if !m.down {
			return
		}
		// A recovered process is a new incarnation: the old endpoint is
		// detached (its links and fan-out entries die with it) and a
		// fresh one boots at the same site. The reconciler merges it
		// back into the group.
		c.Net.Detach(m.ep.ID())
		c.boot(a.A, m.inc+1)
	case KindPartition:
		var sides [2][]core.EndpointID
		for i, slots := range a.Sides {
			for _, s := range slots {
				sides[i] = append(sides[i], c.id(s))
			}
		}
		c.Net.Partition(sides[0], sides[1])
	case KindHeal:
		c.Net.Heal()
	}
}

// Run advances the simulation.
func (c *Cluster) Run(d time.Duration) { c.Net.RunFor(d) }

// Settle runs until the cluster has converged on a full live view, in
// slices of `step`, failing after `deadline`.
func (c *Cluster) Settle(deadline time.Duration) error {
	stop := c.Net.Now() + deadline
	for c.Net.Now() < stop {
		c.Net.RunFor(100 * time.Millisecond)
		if c.converged() {
			return nil
		}
	}
	var views []string
	for _, m := range c.members {
		views = append(views, fmt.Sprintf("s%d.%d:%v", m.slot, m.inc, m.g.View()))
	}
	return fmt.Errorf("chaos: cluster did not re-converge within %v:\n  %s",
		deadline, strings.Join(views, "\n  "))
}

// Check runs every invariant checker over the full history set.
func (c *Cluster) Check() []error { return CheckAll(c.Histories) }

// Digest returns a stable fingerprint of everything every incarnation
// observed — view chains and delivery streams — for determinism
// assertions: two runs of the same seed must produce equal digests.
func (c *Cluster) Digest() string {
	hs := append([]*History(nil), c.Histories...)
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Slot != hs[j].Slot {
			return hs[i].Slot < hs[j].Slot
		}
		return hs[i].Inc < hs[j].Inc
	})
	var b strings.Builder
	for _, h := range hs {
		fmt.Fprintf(&b, "s%d.%d views=[", h.Slot, h.Inc)
		for _, v := range h.Views {
			fmt.Fprintf(&b, " %d@%s/%d", v.ID.Seq, v.ID.Coord.Site, v.Size())
		}
		b.WriteString(" ] casts=[")
		for _, d := range h.Deliveries {
			fmt.Fprintf(&b, " %d:%s", d.View.Seq, d.Payload)
		}
		b.WriteString(" ]\n")
	}
	return b.String()
}
