package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"horus/internal/core"
)

// History is everything one incarnation of a member observed: its view
// chain and its delivery stream, each delivery tagged with the full
// ViewID it arrived in. Concurrent partitioned views can share a
// sequence number, so views are always keyed by the full ID
// (Seq, Coord), never Seq alone.
//
// The recording handler locks, so a history may be appended to from a
// wall-clock fabric's socket goroutines while the driver polls Last;
// the checkers read Views and Deliveries directly and require the run
// to be quiescent (simulation stopped, or the UDP fabric closed).
type History struct {
	Slot, Inc int
	ID        core.EndpointID

	mu         sync.Mutex
	Views      []*core.View
	Deliveries []Delivery
	Switches   []SwitchRecord
	Crashed    bool // this incarnation was crashed by the schedule
}

// Delivery is one event the application observed: a cast payload, or —
// when Lost is set — a LOST_MESSAGE report (NAK answered a
// retransmission request with a place holder because the sender's
// buffer no longer held the range). Lost entries carry no payload; From
// names the peer whose stream had the hole. They matter to the FIFO
// checker: a within-view sequence gap is legal exactly when the
// application was told about it.
type Delivery struct {
	View    core.ViewID
	Payload string
	Lost    bool
	From    core.EndpointID

	// Epoch is the reconfiguration epoch the payload was cast in, as
	// stamped by a SWITCH layer. Zero for stacks without SWITCH and for
	// casts in the initial configuration.
	Epoch uint64
}

// SwitchRecord is one SWITCH outcome upcall: a committed
// reconfiguration to a new segment (Detail is the segment description,
// possibly empty) or an aborted attempt rolled back to the old stack
// (Detail is the abort reason).
type SwitchRecord struct {
	View      core.ViewID
	Epoch     uint64
	Committed bool
	Detail    string
}

func (h *History) name() string { return fmt.Sprintf("s%d.%d", h.Slot, h.Inc) }

// handler returns the group handler that records this history.
func (h *History) handler() core.Handler {
	var cur core.ViewID
	return func(ev *core.Event) {
		h.mu.Lock()
		defer h.mu.Unlock()
		switch ev.Type {
		case core.UView:
			h.Views = append(h.Views, ev.View)
			cur = ev.View.ID
		case core.UCast:
			h.Deliveries = append(h.Deliveries, Delivery{
				View: cur, Payload: string(ev.Msg.Body()), Epoch: ev.Epoch})
		case core.ULostMessage:
			h.Deliveries = append(h.Deliveries, Delivery{View: cur, Lost: true, From: ev.Source})
		case core.USwitch:
			rec := SwitchRecord{View: cur, Epoch: ev.Epoch}
			if strings.HasPrefix(ev.Reason, "committed") {
				rec.Committed = true
				rec.Detail = strings.TrimSpace(strings.TrimPrefix(ev.Reason, "committed"))
			} else {
				rec.Detail = strings.TrimSpace(strings.TrimPrefix(ev.Reason, "aborted:"))
			}
			h.Switches = append(h.Switches, rec)
		}
	}
}

// Last returns the most recently installed view, or nil. It is the
// driver's race-free window into a member's progress: on a wall-clock
// fabric the group's own View accessor belongs to the stack goroutine,
// while the recorded history is always safe to poll.
func (h *History) Last() *core.View {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.Views) == 0 {
		return nil
	}
	return h.Views[len(h.Views)-1]
}

// next returns the view installed immediately after v in this history,
// or nil if v is the last (open) view.
func (h *History) next(v core.ViewID) *core.View {
	for i, w := range h.Views {
		if w.ID == v && i+1 < len(h.Views) {
			return h.Views[i+1]
		}
	}
	return nil
}

// inView reports whether this history installed the view.
func (h *History) inView(v core.ViewID) bool {
	for _, w := range h.Views {
		if w.ID == v {
			return true
		}
	}
	return false
}

// CheckAll runs every invariant checker and concatenates the
// violations.
func CheckAll(hs []*History) []error {
	var errs []error
	errs = append(errs, CheckSelfInclusion(hs)...)
	errs = append(errs, CheckMonotoneViews(hs)...)
	errs = append(errs, CheckViewConsistency(hs)...)
	errs = append(errs, CheckNoDuplicates(hs)...)
	errs = append(errs, CheckFIFO(hs)...)
	errs = append(errs, CheckViewAgreement(hs)...)
	errs = append(errs, CheckSwitchEpochs(hs)...)
	errs = append(errs, CheckSwitchAgreement(hs)...)
	errs = append(errs, CheckSwitchTotalOrder(hs)...)
	return errs
}

// CheckSelfInclusion: every view a member installs contains that
// member (paper §6 — a member learns of its own removal only by the
// view *before* its exclusion; it never installs a view it is not in).
func CheckSelfInclusion(hs []*History) []error {
	var errs []error
	for _, h := range hs {
		for _, v := range h.Views {
			if !v.Contains(h.ID) {
				errs = append(errs, fmt.Errorf(
					"self-inclusion: %s installed view %v that excludes it", h.name(), v))
			}
		}
	}
	return errs
}

// CheckMonotoneViews: a member's views strictly advance in the
// protocol's own installation order (ViewID.Older: sequence number,
// coordinator-identity tiebreak for concurrent partitioned views) — no
// view is installed twice, none regress.
func CheckMonotoneViews(hs []*History) []error {
	var errs []error
	for _, h := range hs {
		for i := 1; i < len(h.Views); i++ {
			if !h.Views[i-1].ID.Older(h.Views[i].ID) {
				errs = append(errs, fmt.Errorf(
					"monotone-views: %s installed %v after %v",
					h.name(), h.Views[i].ID, h.Views[i-1].ID))
			}
		}
	}
	return errs
}

// CheckViewConsistency: any two members that install the same ViewID
// agree on its membership list, order included.
func CheckViewConsistency(hs []*History) []error {
	var errs []error
	seen := map[core.ViewID]struct {
		members string
		who     string
	}{}
	for _, h := range hs {
		for _, v := range h.Views {
			key := fmt.Sprint(v.Members)
			if prev, ok := seen[v.ID]; ok {
				if prev.members != key {
					errs = append(errs, fmt.Errorf(
						"view-consistency: view %v is %s at %s but %s at %s",
						v.ID, prev.members, prev.who, key, h.name()))
				}
				continue
			}
			seen[v.ID] = struct{ members, who string }{key, h.name()}
		}
	}
	return errs
}

// CheckNoDuplicates: no payload is delivered twice to the same
// incarnation — not within a view, not across views (workload payloads
// are globally unique, so one delivery each is the most there can be).
func CheckNoDuplicates(hs []*History) []error {
	var errs []error
	for _, h := range hs {
		seen := map[string]core.ViewID{}
		for _, d := range h.Deliveries {
			if d.Lost {
				continue
			}
			if first, dup := seen[d.Payload]; dup {
				errs = append(errs, fmt.Errorf(
					"no-duplicates: %s delivered %q twice (views %v and %v)",
					h.name(), d.Payload, first, d.View))
				continue
			}
			seen[d.Payload] = d.View
		}
	}
	return errs
}

// CheckFIFO: per receiving incarnation and per origin tag, delivered
// workload sequence numbers strictly increase overall and are
// contiguous within a single view. Gaps are legal across a view
// boundary — a partition can hide a stretch of an origin's casts in
// views the receiver was never part of — and within a view only when
// the hole was explicitly reported: NAK answers a request for a
// trimmed range with a place holder that surfaces as LOST_MESSAGE
// (paper §7), which happens under chaos when a receiver is excluded
// from the view and the sender's buffer is trimmed to the surviving
// members' acks. A recorded loss report from the origin (or from a
// peer no history accounts for, e.g. a flush forwarder) between the
// two deliveries forgives the gap; a silent hole is still a violation.
func CheckFIFO(hs []*History) []error {
	names := map[core.EndpointID]string{}
	for _, h := range hs {
		names[h.ID] = h.name()
	}
	var errs []error
	for _, h := range hs {
		type last struct {
			seq  int
			view core.ViewID
		}
		prev := map[string]last{}
		lossSince := map[string]bool{} // origin -> loss reported since its last delivery
		var lossAnyView *core.ViewID   // view holding a loss from a peer outside the histories
		for _, d := range h.Deliveries {
			if d.Lost {
				if name, ok := names[d.From]; ok {
					lossSince[name] = true
				} else {
					v := d.View
					lossAnyView = &v
				}
				continue
			}
			origin, seq, ok := parsePayload(d.Payload)
			if !ok {
				errs = append(errs, fmt.Errorf("fifo: %s delivered unparseable payload %q", h.name(), d.Payload))
				continue
			}
			if p, seen := prev[origin]; seen {
				if seq <= p.seq {
					errs = append(errs, fmt.Errorf(
						"fifo: %s delivered %s-%d after %s-%d", h.name(), origin, seq, origin, p.seq))
				} else if seq != p.seq+1 && d.View == p.view && !lossSince[origin] &&
					(lossAnyView == nil || *lossAnyView != d.View) {
					errs = append(errs, fmt.Errorf(
						"fifo: %s has a gap within view %v: %s-%d follows %s-%d",
						h.name(), d.View, origin, seq, origin, p.seq))
				}
			}
			prev[origin] = last{seq, d.View}
			delete(lossSince, origin)
		}
	}
	return errs
}

// CheckViewAgreement is the virtual-synchrony core: members that move
// from view v to the same successor view w agree exactly on the set of
// messages delivered while in v. (Members that leave v toward
// *different* successors — a partition — are allowed to disagree, and
// an incarnation's final open view is not checked: the simulation
// stopping is not a flush.)
func CheckViewAgreement(hs []*History) []error {
	type edge struct{ from, to core.ViewID }
	groups := map[edge][]*History{}
	for _, h := range hs {
		for i := 0; i+1 < len(h.Views); i++ {
			e := edge{h.Views[i].ID, h.Views[i+1].ID}
			groups[e] = append(groups[e], h)
		}
	}
	// Deterministic error order for reproducible reports.
	edges := make([]edge, 0, len(groups))
	for e := range groups {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from.Seq != edges[j].from.Seq {
			return edges[i].from.Seq < edges[j].from.Seq
		}
		return edges[i].to.Seq < edges[j].to.Seq
	})
	var errs []error
	for _, e := range edges {
		members := groups[e]
		if len(members) < 2 {
			continue
		}
		ref := deliverySet(members[0], e.from)
		for _, h := range members[1:] {
			set := deliverySet(h, e.from)
			if diff := setDiff(ref, set); diff != "" {
				errs = append(errs, fmt.Errorf(
					"view-agreement: %s and %s both moved %v->%v but disagree on deliveries in %v: %s",
					members[0].name(), h.name(), e.from, e.to, e.from, diff))
			}
		}
	}
	return errs
}

func deliverySet(h *History, v core.ViewID) map[string]bool {
	set := map[string]bool{}
	for _, d := range h.Deliveries {
		if d.View == v && !d.Lost {
			set[d.Payload] = true
		}
	}
	return set
}

func setDiff(a, b map[string]bool) string {
	var onlyA, onlyB []string
	for p := range a {
		if !b[p] {
			onlyA = append(onlyA, p)
		}
	}
	for p := range b {
		if !a[p] {
			onlyB = append(onlyB, p)
		}
	}
	if len(onlyA) == 0 && len(onlyB) == 0 {
		return ""
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return fmt.Sprintf("only-first=%v only-second=%v", onlyA, onlyB)
}

// CheckSwitchEpochs: within one incarnation, committed reconfiguration
// epochs strictly increase. An epoch installed twice means a retired
// segment came back from the dead; a regression means the epoch fence
// failed. Vacuous for stacks without SWITCH.
func CheckSwitchEpochs(hs []*History) []error {
	var errs []error
	for _, h := range hs {
		last := uint64(0)
		have := false
		for _, s := range h.Switches {
			if !s.Committed {
				continue
			}
			if have && s.Epoch <= last {
				errs = append(errs, fmt.Errorf(
					"switch-epochs: %s committed epoch %d after epoch %d",
					h.name(), s.Epoch, last))
			}
			last, have = s.Epoch, true
		}
	}
	return errs
}

// CheckSwitchAgreement: any two incarnations that commit the same
// reconfiguration epoch agree on the segment it installed. The SWITCH
// commit rides the virtual-synchrony base, so a disagreement means two
// members accepted different PROPOSEs for one epoch — the atomicity
// the protocol exists to provide.
func CheckSwitchAgreement(hs []*History) []error {
	var errs []error
	seen := map[uint64]struct {
		desc string
		who  string
	}{}
	for _, h := range hs {
		for _, s := range h.Switches {
			if !s.Committed {
				continue
			}
			if prev, ok := seen[s.Epoch]; ok {
				if prev.desc != s.Detail {
					errs = append(errs, fmt.Errorf(
						"switch-agreement: epoch %d is %q at %s but %q at %s",
						s.Epoch, prev.desc, prev.who, s.Detail, h.name()))
				}
				continue
			}
			seen[s.Epoch] = struct{ desc, who string }{s.Detail, h.name()}
		}
	}
	return errs
}

// CheckSwitchTotalOrder: in any epoch whose committed segment carries
// a TOTAL layer, two members sharing a view deliver their common
// payloads in the same relative order. This is the post-switch payoff
// check: a FIFO→TOTAL upgrade is only real if ordering actually
// tightens after RESUME. Scoped per (epoch, view) because TOTAL's
// guarantee is within-view and concurrent partitioned views may
// legitimately order disjoint suffixes differently.
func CheckSwitchTotalOrder(hs []*History) []error {
	// Epochs with a TOTAL segment, learned from any commit record.
	totalEpoch := map[uint64]bool{}
	for _, h := range hs {
		for _, s := range h.Switches {
			if s.Committed && strings.Contains(s.Detail, "TOTAL") {
				totalEpoch[s.Epoch] = true
			}
		}
	}
	if len(totalEpoch) == 0 {
		return nil
	}
	type scope struct {
		epoch uint64
		view  core.ViewID
	}
	seqs := map[scope]map[string][]string{} // scope -> member name -> payload order
	for _, h := range hs {
		for _, d := range h.Deliveries {
			if d.Lost || !totalEpoch[d.Epoch] {
				continue
			}
			sc := scope{d.Epoch, d.View}
			if seqs[sc] == nil {
				seqs[sc] = map[string][]string{}
			}
			seqs[sc][h.name()] = append(seqs[sc][h.name()], d.Payload)
		}
	}
	scopes := make([]scope, 0, len(seqs))
	for sc := range seqs {
		scopes = append(scopes, sc)
	}
	sort.Slice(scopes, func(i, j int) bool {
		if scopes[i].epoch != scopes[j].epoch {
			return scopes[i].epoch < scopes[j].epoch
		}
		return scopes[i].view.Older(scopes[j].view)
	})
	var errs []error
	for _, sc := range scopes {
		byMember := seqs[sc]
		names := make([]string, 0, len(byMember))
		for n := range byMember {
			names = append(names, n)
		}
		sort.Strings(names)
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				a, b := byMember[names[i]], byMember[names[j]]
				ca, cb := commonOrder(a, b)
				for k := range ca {
					if ca[k] != cb[k] {
						errs = append(errs, fmt.Errorf(
							"switch-total-order: epoch %d view %v: %s delivered %q before %q but %s ordered them the other way",
							sc.epoch, sc.view, names[i], ca[k], cb[k], names[j]))
						break
					}
				}
			}
		}
	}
	return errs
}

// commonOrder filters each payload sequence down to the payloads
// present in both, preserving order.
func commonOrder(a, b []string) ([]string, []string) {
	inA := map[string]bool{}
	for _, p := range a {
		inA[p] = true
	}
	inB := map[string]bool{}
	for _, p := range b {
		inB[p] = true
	}
	var fa, fb []string
	for _, p := range a {
		if inB[p] {
			fa = append(fa, p)
		}
	}
	for _, p := range b {
		if inA[p] {
			fb = append(fb, p)
		}
	}
	return fa, fb
}

// parsePayload splits a workload payload "s<slot>.<inc>-<seq>" into
// its origin tag and sequence number.
func parsePayload(p string) (origin string, seq int, ok bool) {
	i := strings.LastIndexByte(p, '-')
	if i < 0 {
		return "", 0, false
	}
	if _, err := fmt.Sscanf(p[i+1:], "%d", &seq); err != nil {
		return "", 0, false
	}
	return p[:i], seq, true
}
