package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"horus/internal/core"
)

// History is everything one incarnation of a member observed: its view
// chain and its delivery stream, each delivery tagged with the full
// ViewID it arrived in. Concurrent partitioned views can share a
// sequence number, so views are always keyed by the full ID
// (Seq, Coord), never Seq alone.
//
// The recording handler locks, so a history may be appended to from a
// wall-clock fabric's socket goroutines while the driver polls Last;
// the checkers read Views and Deliveries directly and require the run
// to be quiescent (simulation stopped, or the UDP fabric closed).
type History struct {
	Slot, Inc int
	ID        core.EndpointID

	mu         sync.Mutex
	Views      []*core.View
	Deliveries []Delivery
	Crashed    bool // this incarnation was crashed by the schedule
}

// Delivery is one event the application observed: a cast payload, or —
// when Lost is set — a LOST_MESSAGE report (NAK answered a
// retransmission request with a place holder because the sender's
// buffer no longer held the range). Lost entries carry no payload; From
// names the peer whose stream had the hole. They matter to the FIFO
// checker: a within-view sequence gap is legal exactly when the
// application was told about it.
type Delivery struct {
	View    core.ViewID
	Payload string
	Lost    bool
	From    core.EndpointID
}

func (h *History) name() string { return fmt.Sprintf("s%d.%d", h.Slot, h.Inc) }

// handler returns the group handler that records this history.
func (h *History) handler() core.Handler {
	var cur core.ViewID
	return func(ev *core.Event) {
		h.mu.Lock()
		defer h.mu.Unlock()
		switch ev.Type {
		case core.UView:
			h.Views = append(h.Views, ev.View)
			cur = ev.View.ID
		case core.UCast:
			h.Deliveries = append(h.Deliveries, Delivery{View: cur, Payload: string(ev.Msg.Body())})
		case core.ULostMessage:
			h.Deliveries = append(h.Deliveries, Delivery{View: cur, Lost: true, From: ev.Source})
		}
	}
}

// Last returns the most recently installed view, or nil. It is the
// driver's race-free window into a member's progress: on a wall-clock
// fabric the group's own View accessor belongs to the stack goroutine,
// while the recorded history is always safe to poll.
func (h *History) Last() *core.View {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.Views) == 0 {
		return nil
	}
	return h.Views[len(h.Views)-1]
}

// next returns the view installed immediately after v in this history,
// or nil if v is the last (open) view.
func (h *History) next(v core.ViewID) *core.View {
	for i, w := range h.Views {
		if w.ID == v && i+1 < len(h.Views) {
			return h.Views[i+1]
		}
	}
	return nil
}

// inView reports whether this history installed the view.
func (h *History) inView(v core.ViewID) bool {
	for _, w := range h.Views {
		if w.ID == v {
			return true
		}
	}
	return false
}

// CheckAll runs every invariant checker and concatenates the
// violations.
func CheckAll(hs []*History) []error {
	var errs []error
	errs = append(errs, CheckSelfInclusion(hs)...)
	errs = append(errs, CheckMonotoneViews(hs)...)
	errs = append(errs, CheckViewConsistency(hs)...)
	errs = append(errs, CheckNoDuplicates(hs)...)
	errs = append(errs, CheckFIFO(hs)...)
	errs = append(errs, CheckViewAgreement(hs)...)
	return errs
}

// CheckSelfInclusion: every view a member installs contains that
// member (paper §6 — a member learns of its own removal only by the
// view *before* its exclusion; it never installs a view it is not in).
func CheckSelfInclusion(hs []*History) []error {
	var errs []error
	for _, h := range hs {
		for _, v := range h.Views {
			if !v.Contains(h.ID) {
				errs = append(errs, fmt.Errorf(
					"self-inclusion: %s installed view %v that excludes it", h.name(), v))
			}
		}
	}
	return errs
}

// CheckMonotoneViews: a member's views strictly advance in the
// protocol's own installation order (ViewID.Older: sequence number,
// coordinator-identity tiebreak for concurrent partitioned views) — no
// view is installed twice, none regress.
func CheckMonotoneViews(hs []*History) []error {
	var errs []error
	for _, h := range hs {
		for i := 1; i < len(h.Views); i++ {
			if !h.Views[i-1].ID.Older(h.Views[i].ID) {
				errs = append(errs, fmt.Errorf(
					"monotone-views: %s installed %v after %v",
					h.name(), h.Views[i].ID, h.Views[i-1].ID))
			}
		}
	}
	return errs
}

// CheckViewConsistency: any two members that install the same ViewID
// agree on its membership list, order included.
func CheckViewConsistency(hs []*History) []error {
	var errs []error
	seen := map[core.ViewID]struct {
		members string
		who     string
	}{}
	for _, h := range hs {
		for _, v := range h.Views {
			key := fmt.Sprint(v.Members)
			if prev, ok := seen[v.ID]; ok {
				if prev.members != key {
					errs = append(errs, fmt.Errorf(
						"view-consistency: view %v is %s at %s but %s at %s",
						v.ID, prev.members, prev.who, key, h.name()))
				}
				continue
			}
			seen[v.ID] = struct{ members, who string }{key, h.name()}
		}
	}
	return errs
}

// CheckNoDuplicates: no payload is delivered twice to the same
// incarnation — not within a view, not across views (workload payloads
// are globally unique, so one delivery each is the most there can be).
func CheckNoDuplicates(hs []*History) []error {
	var errs []error
	for _, h := range hs {
		seen := map[string]core.ViewID{}
		for _, d := range h.Deliveries {
			if d.Lost {
				continue
			}
			if first, dup := seen[d.Payload]; dup {
				errs = append(errs, fmt.Errorf(
					"no-duplicates: %s delivered %q twice (views %v and %v)",
					h.name(), d.Payload, first, d.View))
				continue
			}
			seen[d.Payload] = d.View
		}
	}
	return errs
}

// CheckFIFO: per receiving incarnation and per origin tag, delivered
// workload sequence numbers strictly increase overall and are
// contiguous within a single view. Gaps are legal across a view
// boundary — a partition can hide a stretch of an origin's casts in
// views the receiver was never part of — and within a view only when
// the hole was explicitly reported: NAK answers a request for a
// trimmed range with a place holder that surfaces as LOST_MESSAGE
// (paper §7), which happens under chaos when a receiver is excluded
// from the view and the sender's buffer is trimmed to the surviving
// members' acks. A recorded loss report from the origin (or from a
// peer no history accounts for, e.g. a flush forwarder) between the
// two deliveries forgives the gap; a silent hole is still a violation.
func CheckFIFO(hs []*History) []error {
	names := map[core.EndpointID]string{}
	for _, h := range hs {
		names[h.ID] = h.name()
	}
	var errs []error
	for _, h := range hs {
		type last struct {
			seq  int
			view core.ViewID
		}
		prev := map[string]last{}
		lossSince := map[string]bool{} // origin -> loss reported since its last delivery
		var lossAnyView *core.ViewID   // view holding a loss from a peer outside the histories
		for _, d := range h.Deliveries {
			if d.Lost {
				if name, ok := names[d.From]; ok {
					lossSince[name] = true
				} else {
					v := d.View
					lossAnyView = &v
				}
				continue
			}
			origin, seq, ok := parsePayload(d.Payload)
			if !ok {
				errs = append(errs, fmt.Errorf("fifo: %s delivered unparseable payload %q", h.name(), d.Payload))
				continue
			}
			if p, seen := prev[origin]; seen {
				if seq <= p.seq {
					errs = append(errs, fmt.Errorf(
						"fifo: %s delivered %s-%d after %s-%d", h.name(), origin, seq, origin, p.seq))
				} else if seq != p.seq+1 && d.View == p.view && !lossSince[origin] &&
					(lossAnyView == nil || *lossAnyView != d.View) {
					errs = append(errs, fmt.Errorf(
						"fifo: %s has a gap within view %v: %s-%d follows %s-%d",
						h.name(), d.View, origin, seq, origin, p.seq))
				}
			}
			prev[origin] = last{seq, d.View}
			delete(lossSince, origin)
		}
	}
	return errs
}

// CheckViewAgreement is the virtual-synchrony core: members that move
// from view v to the same successor view w agree exactly on the set of
// messages delivered while in v. (Members that leave v toward
// *different* successors — a partition — are allowed to disagree, and
// an incarnation's final open view is not checked: the simulation
// stopping is not a flush.)
func CheckViewAgreement(hs []*History) []error {
	type edge struct{ from, to core.ViewID }
	groups := map[edge][]*History{}
	for _, h := range hs {
		for i := 0; i+1 < len(h.Views); i++ {
			e := edge{h.Views[i].ID, h.Views[i+1].ID}
			groups[e] = append(groups[e], h)
		}
	}
	// Deterministic error order for reproducible reports.
	edges := make([]edge, 0, len(groups))
	for e := range groups {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from.Seq != edges[j].from.Seq {
			return edges[i].from.Seq < edges[j].from.Seq
		}
		return edges[i].to.Seq < edges[j].to.Seq
	})
	var errs []error
	for _, e := range edges {
		members := groups[e]
		if len(members) < 2 {
			continue
		}
		ref := deliverySet(members[0], e.from)
		for _, h := range members[1:] {
			set := deliverySet(h, e.from)
			if diff := setDiff(ref, set); diff != "" {
				errs = append(errs, fmt.Errorf(
					"view-agreement: %s and %s both moved %v->%v but disagree on deliveries in %v: %s",
					members[0].name(), h.name(), e.from, e.to, e.from, diff))
			}
		}
	}
	return errs
}

func deliverySet(h *History, v core.ViewID) map[string]bool {
	set := map[string]bool{}
	for _, d := range h.Deliveries {
		if d.View == v && !d.Lost {
			set[d.Payload] = true
		}
	}
	return set
}

func setDiff(a, b map[string]bool) string {
	var onlyA, onlyB []string
	for p := range a {
		if !b[p] {
			onlyA = append(onlyA, p)
		}
	}
	for p := range b {
		if !a[p] {
			onlyB = append(onlyB, p)
		}
	}
	if len(onlyA) == 0 && len(onlyB) == 0 {
		return ""
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return fmt.Sprintf("only-first=%v only-second=%v", onlyA, onlyB)
}

// parsePayload splits a workload payload "s<slot>.<inc>-<seq>" into
// its origin tag and sequence number.
func parsePayload(p string) (origin string, seq int, ok bool) {
	i := strings.LastIndexByte(p, '-')
	if i < 0 {
		return "", 0, false
	}
	if _, err := fmt.Sscanf(p[i+1:], "%d", &seq); err != nil {
		return "", 0, false
	}
	return p[:i], seq, true
}
