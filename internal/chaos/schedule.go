// Package chaos is a deterministic fault-injection harness over the
// simulated network: a Schedule is a timeline of typed fault actions
// (link degradation, asymmetric loss, flaps, crash and recover,
// rolling partitions, heal) applied to a Cluster of group members,
// while a library of invariant checkers asserts that the stack keeps
// its virtual-synchrony promises under fire.
//
// Everything is seeded: the network simulation, the random schedule
// generator, and the cluster workload share no wall-clock or map-order
// nondeterminism, so a failing seed replays exactly.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"horus/internal/netsim"
)

// Kind discriminates fault actions.
type Kind uint8

// Fault-action kinds.
const (
	KindSetLink         Kind = iota // symmetric link override between slots A,B
	KindSetLinkDirected             // directed override A -> B only
	KindClearLink                   // drop overrides between A,B (both directions)
	KindCrash                       // crash slot A's current incarnation
	KindRecover                     // boot a fresh incarnation at slot A's site
	KindPartition                   // split the network into the Sides components
	KindHeal                        // remove the partition
	KindSetHost                     // per-host limits (egress budget) on slot A
	KindClearHost                   // drop slot A's per-host limits
	KindSwitch                      // slot A requests a stack reconfiguration to Target
)

var kindNames = [...]string{
	"set-link", "set-link-directed", "clear-link",
	"crash", "recover", "partition", "heal",
	"set-host", "clear-host", "switch",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Action is one timed fault. Slots (A, B, Sides) name cluster members
// by position, not endpoint identity: the driver resolves a slot to
// its *current* incarnation when the action fires, so a crash/recover
// cycle in between changes which endpoint a later action hits —
// exactly as a real operator script keyed by hostname would behave.
// Link overrides die with the incarnation they were applied to
// (recovery detaches the old endpoint and its links).
type Action struct {
	At    time.Duration // offset from schedule start
	Kind  Kind
	A, B  int         // member slots (A only, for crash/recover/host kinds)
	Link  netsim.Link // for set-link kinds
	Host  netsim.Host // for set-host
	Sides [][]int     // partition components; two-way or multi-way
	Note  string      // provenance, e.g. "ramp 2/5"

	// Target is the segment description a KindSwitch action asks slot
	// A to reconfigure to ("" empties the segment back to the plain
	// FIFO personality). Ignored by every other kind.
	Target string
}

func (a Action) String() string {
	switch a.Kind {
	case KindSetLink, KindSetLinkDirected:
		extra := ""
		if a.Link.Bandwidth > 0 {
			extra = fmt.Sprintf(" bw=%dB/s", a.Link.Bandwidth)
		}
		if a.Link.ReorderRate > 0 {
			extra += fmt.Sprintf(" reorder=%.2f/k%d", a.Link.ReorderRate, a.Link.ReorderDepth)
		}
		return fmt.Sprintf("%8v %s s%d-s%d loss=%.2f delay=%v%s %s",
			a.At, a.Kind, a.A, a.B, a.Link.LossRate, a.Link.Delay, extra, a.Note)
	case KindClearLink:
		return fmt.Sprintf("%8v %s s%d-s%d %s", a.At, a.Kind, a.A, a.B, a.Note)
	case KindCrash, KindRecover, KindClearHost:
		return fmt.Sprintf("%8v %s s%d %s", a.At, a.Kind, a.A, a.Note)
	case KindSetHost:
		return fmt.Sprintf("%8v %s s%d egress=%dB/s q=%dB %s",
			a.At, a.Kind, a.A, a.Host.EgressBudget, a.Host.EgressQueue, a.Note)
	case KindSwitch:
		return fmt.Sprintf("%8v %s s%d -> %q %s", a.At, a.Kind, a.A, a.Target, a.Note)
	case KindPartition:
		parts := make([]string, len(a.Sides))
		for i, side := range a.Sides {
			parts[i] = fmt.Sprint(side)
		}
		return fmt.Sprintf("%8v %s %s %s", a.At, a.Kind, strings.Join(parts, "|"), a.Note)
	default:
		return fmt.Sprintf("%8v %s %s", a.At, a.Kind, a.Note)
	}
}

// Schedule is a fault timeline. Actions need not be appended in time
// order; Sorted returns the canonical ordering.
type Schedule []Action

// Sorted returns the schedule ordered by time, ties broken by append
// order (the sort is stable), which keeps replay deterministic.
func (s Schedule) Sorted() Schedule {
	out := append(Schedule(nil), s...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// End returns the time of the last action, or zero for an empty
// schedule.
func (s Schedule) End() time.Duration {
	var end time.Duration
	for _, a := range s {
		if a.At > end {
			end = a.At
		}
	}
	return end
}

// String renders the timeline one action per line.
func (s Schedule) String() string {
	var b strings.Builder
	for _, a := range s.Sorted() {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RampLoss builds a link-degradation ramp: the symmetric a-b link
// loses packets at linearly increasing rates over `steps` steps of
// `step` duration, reaching `peak`, then clears. The base link (delay,
// jitter) is taken from l; its LossRate is overwritten per step.
func RampLoss(start, step time.Duration, a, b int, l netsim.Link, peak float64, steps int) Schedule {
	var s Schedule
	for i := 1; i <= steps; i++ {
		li := l
		li.LossRate = peak * float64(i) / float64(steps)
		s = append(s, Action{
			At: start + time.Duration(i-1)*step, Kind: KindSetLink,
			A: a, B: b, Link: li, Note: fmt.Sprintf("ramp %d/%d", i, steps),
		})
	}
	s = append(s, Action{
		At: start + time.Duration(steps)*step, Kind: KindClearLink,
		A: a, B: b, Note: "ramp end",
	})
	return s
}

// Flap builds a flapping link: a-b goes fully dead for `down`, comes
// back for `up`, `cycles` times, ending cleared.
func Flap(start, down, up time.Duration, a, b int, cycles int) Schedule {
	var s Schedule
	at := start
	for i := 1; i <= cycles; i++ {
		s = append(s, Action{
			At: at, Kind: KindSetLink, A: a, B: b,
			Link: netsim.Link{LossRate: 1}, Note: fmt.Sprintf("flap down %d/%d", i, cycles),
		})
		at += down
		s = append(s, Action{
			At: at, Kind: KindClearLink, A: a, B: b,
			Note: fmt.Sprintf("flap up %d/%d", i, cycles),
		})
		at += up
	}
	return s
}

// RollingPartition builds a sequence of partitions, each held for
// `dwell` and healed before the next, walking a cut across the
// member slots: {0}|{rest}, {0,1}|{rest}, and so on.
func RollingPartition(start, dwell time.Duration, members int) Schedule {
	var s Schedule
	at := start
	for cut := 1; cut < members; cut++ {
		sides := make([][]int, 2)
		for i := 0; i < members; i++ {
			if i < cut {
				sides[0] = append(sides[0], i)
			} else {
				sides[1] = append(sides[1], i)
			}
		}
		s = append(s, Action{At: at, Kind: KindPartition, Sides: sides,
			Note: fmt.Sprintf("rolling cut %d", cut)})
		at += dwell
		s = append(s, Action{At: at, Kind: KindHeal, Note: fmt.Sprintf("rolling heal %d", cut)})
		at += dwell / 2
	}
	return s
}

// CrashRecover builds a crash of slot a held for `dwell`, then a fresh
// incarnation booted at the same site.
func CrashRecover(start, dwell time.Duration, a int) Schedule {
	return Schedule{
		{At: start, Kind: KindCrash, A: a},
		{At: start + dwell, Kind: KindRecover, A: a},
	}
}

// BandwidthSqueeze caps the symmetric a-b link at `bps` bytes per
// second for `dwell`, then clears. The base link (delay, jitter) is
// taken from l; while the cap holds, bursts queue behind each other
// and the fabric's Throttled ledger counts every frame that waited.
func BandwidthSqueeze(start, dwell time.Duration, a, b int, l netsim.Link, bps int) Schedule {
	li := l
	li.Bandwidth = bps
	return Schedule{
		{At: start, Kind: KindSetLink, A: a, B: b, Link: li, Note: "bw squeeze"},
		{At: start + dwell, Kind: KindClearLink, A: a, B: b, Note: "bw squeeze end"},
	}
}

// EgressSqueeze caps slot a's total egress at `bps` bytes per second
// for `dwell`, then clears. The budget is shared across every outgoing
// link of the member — the shared NIC queue the per-link bandwidth cap
// cannot model — so one saturated flow delays every flow the member
// originates. `queue` bounds the backlog in bytes (zero means the
// fabric default): while the squeeze holds, packets past the budget
// queue into the Congested ledger and packets past the queue bound
// drop into CollapseDropped, which is how schedules express congestion
// collapse rather than mere delay.
func EgressSqueeze(start, dwell time.Duration, a int, bps, queue int) Schedule {
	return Schedule{
		{At: start, Kind: KindSetHost, A: a,
			Host: netsim.Host{EgressBudget: bps, EgressQueue: queue}, Note: "egress squeeze"},
		{At: start + dwell, Kind: KindClearHost, A: a, Note: "egress squeeze end"},
	}
}

// SwitchStorm builds a barrage of run-time reconfiguration requests:
// `count` switches, one every `every` from `start`, issued from
// rotating initiator slots (mod `members`) and cycling through the
// `targets` segment descriptions. Interleaved with partitions,
// crashes or egress squeezes it produces exactly the hostile overlap
// the SWITCH protocol's abort/rollback edges exist for; on a calm
// fabric it proves repeated upgrades and downgrades converge.
func SwitchStorm(start, every time.Duration, count, members int, targets []string) Schedule {
	var s Schedule
	at := start
	for i := 0; i < count; i++ {
		tgt := targets[i%len(targets)]
		s = append(s, Action{
			At: at, Kind: KindSwitch, A: i % members, Target: tgt,
			Note: fmt.Sprintf("switch storm %d/%d", i+1, count),
		})
		at += every
	}
	return s
}

// ReorderBurst arms the explicit reorder rule on the symmetric a-b
// link for `dwell`, then clears: each frame is held with probability
// `rate` until `depth` later frames overtake it. The base link comes
// from l; reordering beyond jitter is exactly the hazard that breaks
// naive layer composition over non-FIFO channels, so schedules use
// this to prove NAK's FIFO restoration under real inversions.
func ReorderBurst(start, dwell time.Duration, a, b int, l netsim.Link, rate float64, depth int) Schedule {
	li := l
	li.ReorderRate = rate
	li.ReorderDepth = depth
	return Schedule{
		{At: start, Kind: KindSetLink, A: a, B: b, Link: li, Note: "reorder burst"},
		{At: start + dwell, Kind: KindClearLink, A: a, B: b, Note: "reorder burst end"},
	}
}
