package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"horus/internal/netsim"
)

// GenConfig bounds the random schedule generator.
type GenConfig struct {
	Members   int           // cluster size (slots 0..Members-1)
	Horizon   time.Duration // all incidents start and finish inside [0, Horizon)
	Incidents int           // how many incidents to attempt to place
	Harsh     bool          // enable the hostile incident classes (see Generate)

	// Switch adds the run-time reconfiguration incident class: random
	// members request SWITCH upgrades/downgrades mid-chaos. Requires a
	// stack with a SWITCH layer (see SwitchStack); on any other stack
	// the actions are no-ops. Off by default so the schedules of all
	// pre-existing (seed, cfg) pairs are unchanged.
	Switch bool
}

// Generate builds a random fault schedule from a seed. The same
// (seed, cfg) always yields the same schedule, so a failing soak seed
// reproduces exactly.
//
// Incidents are self-cleaning — every ramp ends cleared, every crash
// is recovered, every partition healed — and the default generator
// keeps the chaos survivable: slot 0 is never crashed (it anchors
// re-merges), at most one member is down at a time, and at most one
// partition is in force at a time (partitions are global, so
// overlapping ones would heal each other early).
//
// The default repertoire also exercises the fabric-level flow faults:
// bandwidth squeezes (a link capped to a few KB/s, so bursts queue and
// arrive late), reorder bursts (the explicit hold-and-release rule,
// so frames are overtaken regardless of send spacing), and egress
// squeezes (one member's total outgoing budget capped across all of
// its links, with a bounded queue whose overflow drops — congestion
// collapse, not just delay). All self-clean like every other incident.
//
// Harsh mode drops the survivability politeness and adds four
// incident classes: multi-way partitions (three components, forcing
// multi-way merges on heal), anchor crashes (slot 0 goes down, so the
// reconciler must re-anchor mid-chaos), majority loss (half the
// cluster fail-stops at once, which a primary-partition stack must
// ride out without minority progress), and composite degradation (one
// member's egress budget squeezed into collapse while a bystander is
// partitioned away mid-squeeze — the failure-detection-under-congestion
// shape the ADAPT layer exists for). Harsh partitions also ignore
// the one-at-a-time spacing: a new split may land while one is held,
// replacing it — the overlap a real cascading failure produces.
func Generate(seed int64, cfg GenConfig) Schedule {
	rng := rand.New(rand.NewSource(seed))
	var s Schedule

	// dur picks a duration uniformly in [lo, hi).
	dur := func(lo, hi time.Duration) time.Duration {
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}
	pair := func() (int, int) {
		a := rng.Intn(cfg.Members)
		b := rng.Intn(cfg.Members - 1)
		if b >= a {
			b++
		}
		return a, b
	}

	kinds := 8
	if cfg.Harsh {
		kinds = 12
	}
	// The switch class is appended after every other kind and peeled off
	// before the switch statement below, so enabling it never renumbers
	// the existing cases: a (seed, cfg) pair without Switch generates
	// the exact schedule it always did.
	switchTargets := []string{"TOTAL", "", "COMPRESS:TOTAL", "ADAPT"}
	if cfg.Switch {
		kinds++
	}
	var crashBusyUntil, partBusyUntil time.Duration
	for i := 0; i < cfg.Incidents; i++ {
		start := time.Duration(rng.Int63n(int64(cfg.Horizon * 3 / 4)))
		idx := rng.Intn(kinds)
		if cfg.Switch && idx == kinds-1 {
			// Reconfiguration request: a random member asks for a random
			// target segment. No busy-spacing — switches are supposed to
			// collide with partitions, squeezes, and each other; the
			// protocol's refusal/abort edges absorb the overlap.
			a := rng.Intn(cfg.Members)
			tgt := switchTargets[rng.Intn(len(switchTargets))]
			s = append(s, Action{At: start, Kind: KindSwitch, A: a, Target: tgt,
				Note: "switch storm"})
			continue
		}
		switch idx {
		case 0: // loss ramp on a symmetric link
			a, b := pair()
			steps := 3 + rng.Intn(3)
			step := dur(80*time.Millisecond, 200*time.Millisecond)
			peak := 0.4 + rng.Float64()*0.5
			base := netsim.Link{Delay: time.Millisecond, Jitter: 2 * time.Millisecond}
			s = append(s, RampLoss(start, step, a, b, base, peak, steps)...)
		case 1: // asymmetric loss one way
			a, b := pair()
			l := netsim.Link{Delay: time.Millisecond, LossRate: 0.6 + rng.Float64()*0.4}
			hold := dur(200*time.Millisecond, 700*time.Millisecond)
			s = append(s,
				Action{At: start, Kind: KindSetLinkDirected, A: a, B: b, Link: l,
					Note: "asym"},
				Action{At: start + hold, Kind: KindClearLink, A: a, B: b,
					Note: "asym end"})
		case 2: // flapping link
			a, b := pair()
			cycles := 2 + rng.Intn(3)
			s = append(s, Flap(start,
				dur(60*time.Millisecond, 180*time.Millisecond),
				dur(60*time.Millisecond, 180*time.Millisecond),
				a, b, cycles)...)
		case 3: // crash + recover (never slot 0; one at a time)
			if start < crashBusyUntil {
				continue
			}
			a := 1 + rng.Intn(cfg.Members-1)
			hold := dur(500*time.Millisecond, 1200*time.Millisecond)
			s = append(s, CrashRecover(start, hold, a)...)
			crashBusyUntil = start + hold + 300*time.Millisecond
		case 4: // partition + heal (one at a time unless harsh)
			if start < partBusyUntil && !cfg.Harsh {
				continue
			}
			sides := make([][]int, 2)
			for m := 0; m < cfg.Members; m++ {
				side := rng.Intn(2)
				sides[side] = append(sides[side], m)
			}
			if len(sides[0]) == 0 || len(sides[1]) == 0 {
				continue // degenerate split; skip the incident
			}
			hold := dur(500*time.Millisecond, 1100*time.Millisecond)
			s = append(s,
				Action{At: start, Kind: KindPartition, Sides: sides,
					Note: fmt.Sprintf("rand split %v|%v", sides[0], sides[1])},
				Action{At: start + hold, Kind: KindHeal, Note: "rand heal"})
			partBusyUntil = start + hold + 300*time.Millisecond
		case 5: // bandwidth squeeze on a symmetric link
			a, b := pair()
			bps := 8192 * (1 + rng.Intn(3)) // 8, 16, or 24 KB/s
			base := netsim.Link{Delay: time.Millisecond, Jitter: 2 * time.Millisecond}
			hold := dur(300*time.Millisecond, 800*time.Millisecond)
			s = append(s, BandwidthSqueeze(start, hold, a, b, base, bps)...)
		case 6: // reorder burst on a symmetric link
			a, b := pair()
			rate := 0.25 + rng.Float64()*0.35
			depth := 2 + rng.Intn(4)
			base := netsim.Link{Delay: time.Millisecond, Jitter: 2 * time.Millisecond}
			hold := dur(300*time.Millisecond, 900*time.Millisecond)
			s = append(s, ReorderBurst(start, hold, a, b, base, rate, depth)...)
		case 7: // egress squeeze: one member's shared outgoing budget capped
			a := rng.Intn(cfg.Members)
			bps := 8192 * (1 + rng.Intn(3)) // 8, 16, or 24 KB/s across ALL links
			// Bound the backlog at ~a quarter second of budget, so the
			// squeeze converts sustained overload into CollapseDropped
			// losses instead of unboundedly stale deliveries.
			queue := bps / 4
			hold := dur(300*time.Millisecond, 800*time.Millisecond)
			s = append(s, EgressSqueeze(start, hold, a, bps, queue)...)
		case 8: // harsh: three-way partition, overlap allowed
			sides := make([][]int, 0, 3)
			buckets := make([][]int, 3)
			for m := 0; m < cfg.Members; m++ {
				b := rng.Intn(3)
				buckets[b] = append(buckets[b], m)
			}
			for _, b := range buckets {
				if len(b) > 0 {
					sides = append(sides, b)
				}
			}
			if len(sides) < 2 {
				continue // degenerate; skip
			}
			hold := dur(500*time.Millisecond, 1100*time.Millisecond)
			s = append(s,
				Action{At: start, Kind: KindPartition, Sides: sides,
					Note: fmt.Sprintf("%d-way split", len(sides))},
				Action{At: start + hold, Kind: KindHeal, Note: "multi heal"})
			partBusyUntil = start + hold + 300*time.Millisecond
		case 9: // harsh: anchor crash — slot 0 goes down, re-anchor required
			if start < crashBusyUntil {
				continue
			}
			hold := dur(500*time.Millisecond, 1200*time.Millisecond)
			s = append(s, CrashRecover(start, hold, 0)...)
			s[len(s)-2].Note = "anchor crash"
			s[len(s)-1].Note = "anchor recover"
			crashBusyUntil = start + hold + 300*time.Millisecond
		case 10: // harsh: majority loss — half the cluster fail-stops at once
			if start < crashBusyUntil {
				continue
			}
			k := cfg.Members / 2
			if k < 1 {
				continue
			}
			hold := dur(600*time.Millisecond, 1200*time.Millisecond)
			last := start + hold
			for j := 0; j < k; j++ {
				slot := cfg.Members - 1 - j // highest slots; slot 0 stays the anchor
				rec := start + hold + time.Duration(j)*150*time.Millisecond
				s = append(s,
					Action{At: start, Kind: KindCrash, A: slot,
						Note: fmt.Sprintf("majority loss %d/%d", j+1, k)},
					Action{At: rec, Kind: KindRecover, A: slot,
						Note: fmt.Sprintf("majority recover %d/%d", j+1, k)})
				if rec > last {
					last = rec
				}
			}
			crashBusyUntil = last + 300*time.Millisecond
		case 11: // harsh: composite degradation — collapse squeeze while a bystander drops out
			a := rng.Intn(cfg.Members)
			bps := 4096 * (1 + rng.Intn(2)) // 4 or 8 KB/s across ALL links
			// An eighth of a second of backlog: sustained overload turns
			// into CollapseDropped fast, while φ toward the isolated
			// member climbs through the suspect bands.
			queue := bps / 8
			hold := dur(700*time.Millisecond, 1400*time.Millisecond)
			v := rng.Intn(cfg.Members - 1) // isolate someone other than the squeezed member
			if v >= a {
				v++
			}
			rest := make([]int, 0, cfg.Members-1)
			for m := 0; m < cfg.Members; m++ {
				if m != v {
					rest = append(rest, m)
				}
			}
			pStart, pHold := start+hold/4, hold/2
			s = append(s,
				Action{At: start, Kind: KindSetHost, A: a,
					Host: netsim.Host{EgressBudget: bps, EgressQueue: queue},
					Note: "degrade squeeze"},
				Action{At: start + hold, Kind: KindClearHost, A: a,
					Note: "degrade squeeze end"},
				Action{At: pStart, Kind: KindPartition, Sides: [][]int{rest, {v}},
					Note: "degrade isolate"},
				Action{At: pStart + pHold, Kind: KindHeal, Note: "degrade heal"})
			partBusyUntil = pStart + pHold + 300*time.Millisecond
		}
	}

	// Safety tail: whatever state the incidents left behind, end with a
	// global heal and cleared links so the cluster can converge.
	end := s.End() + 50*time.Millisecond
	if end < cfg.Horizon {
		end = cfg.Horizon
	}
	s = append(s, Action{At: end, Kind: KindHeal, Note: "tail heal"})
	for a := 0; a < cfg.Members; a++ {
		s = append(s, Action{At: end, Kind: KindClearHost, A: a, Note: "tail clear"})
	}
	for a := 0; a < cfg.Members; a++ {
		for b := a + 1; b < cfg.Members; b++ {
			s = append(s, Action{At: end, Kind: KindClearLink, A: a, B: b, Note: "tail clear"})
		}
	}
	return s.Sorted()
}
