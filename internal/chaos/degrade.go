package chaos

// Graceful-degradation harness: a pinned composite incident — an
// egress squeeze on the sender held for the whole measurement window,
// plus a transient partition isolating a bystander so the failure
// detector's φ rises and feeds the ADAPT layer — run against a static
// [ADAPT:]FC:HBEAT:NAK:COM trio. The harness measures goodput (casts
// delivered at the healthy receiver inside the window) and per-cast
// delivery latency at two offered loads, and the checker asserts the
// congestion-collapse inversion is gone: offering more must never
// deliver less, and nothing delivered may be arbitrarily stale. The
// same runner with Adapt=false is the control arm, which must still
// collapse — that contrast is what proves the ADAPT loop, not luck,
// produced the degradation curve.

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"horus/internal/core"
	"horus/internal/layers/adapt"
	"horus/internal/layers/com"
	"horus/internal/layers/fc"
	"horus/internal/layers/hbeat"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

// DegradeConfig parameterizes one load run of the pinned degradation
// scenario. The zero value of the optional fields gives the canonical
// recipe the integration tests and cmd/horus-chaos pin down.
type DegradeConfig struct {
	Adapt bool          // run the ADAPT arm; false is the control arm
	Casts int           // offered casts from the sender (slot 0)
	Gap   time.Duration // inter-cast gap of the offered load

	Budget int           // sender egress budget (B/s); zero → 6000
	Queue  int           // sender egress queue bound (B); zero → 600
	Window time.Duration // measurement window; zero → 8s
	Link   netsim.Link   // healthy link; zero → 1ms delay
	Seed   int64         // sim-fabric seed when Fabric is nil

	// Fabric supplies the transport substrate; nil means the
	// deterministic simulated fabric built from Seed and Link. The
	// runner owns the fabric and closes it.
	Fabric Fabric
}

func (c *DegradeConfig) fill() {
	if c.Budget == 0 {
		c.Budget = 7500
	}
	if c.Queue == 0 {
		c.Queue = 750
	}
	if c.Window == 0 {
		c.Window = 8500 * time.Millisecond
	}
	if c.Link == (netsim.Link{}) {
		c.Link = netsim.Link{Delay: time.Millisecond}
	}
}

// Canonical offered loads: the moderate load undershoots the squeezed
// budget (casts plus the stack's own control traffic fit inside it,
// modulo the transient the partition injects), the heavy load swamps
// it for six seconds straight so the bounded egress queue keeps
// dropping and NAK recovery keeps competing with fresh casts for the
// same bytes. Pinned so the sim arm of the degradation pair is one
// exact, replayable curve.
const (
	ModerateCasts = 130
	HeavyCasts    = 600
)

const (
	ModerateGap = 55 * time.Millisecond
	HeavyGap    = 10 * time.Millisecond
)

// DegradePair returns the canonical moderate and heavy load configs
// for one arm. Callers that want the UDP fabric set .Fabric on each
// before running (a fabric is single-use: the runner closes it).
func DegradePair(adaptive bool, seed int64) (moderate, heavy DegradeConfig) {
	moderate = DegradeConfig{Adapt: adaptive, Casts: ModerateCasts, Gap: ModerateGap, Seed: seed}
	heavy = DegradeConfig{Adapt: adaptive, Casts: HeavyCasts, Gap: HeavyGap, Seed: seed}
	return moderate, heavy
}

// DegradeResult is what one load run observed.
type DegradeResult struct {
	Offered    int           // casts the workload offered
	Delivered  int           // casts the healthy receiver delivered in the window
	MaxLatency time.Duration // worst offer-to-delivery latency among those

	// ADAPT counters from the sender's stack; zero on the control arm.
	Shed      int // casts sacrificed under overload
	Throttled int // casts that had to queue behind the pacer
	Decreases int // multiplicative backoffs the control loop took
}

func (r DegradeResult) String() string {
	return fmt.Sprintf("offered=%d delivered=%d maxlat=%v shed=%d throttled=%d decreases=%d",
		r.Offered, r.Delivered, r.MaxLatency, r.Shed, r.Throttled, r.Decreases)
}

// DegradeStack is the degradation stack: ADAPT (on the adaptive arm)
// over flow control over the φ-accrual heartbeat detector — with
// SUSPECT upcalls enabled, which is what closes the detector→ADAPT
// loop — over reliable FIFO. The FC window is wide enough that credit
// never gates the offered load: the scenario isolates egress-budget
// collapse, and FC's own wedge behaviour is pinned by its unit tests.
func DegradeStack(adaptive bool) core.StackSpec {
	spec := core.StackSpec{}
	if adaptive {
		// Burst 2 keeps the pacer's floor drain rate (minLevel x burst
		// per tick = 10 casts/s) safely inside the squeezed budget, so
		// once the loop backs off all the way, the drops actually stop
		// and additive increase can begin. A floor that still overruns
		// the budget would latch the level at minLevel forever.
		spec = append(spec, adapt.NewWith(adapt.WithBurst(2)))
	}
	return append(spec,
		fc.NewWithWindow(1024),
		hbeat.NewWith(
			hbeat.WithPeriod(200*time.Millisecond),
			hbeat.WithMinTimeout(400*time.Millisecond),
			hbeat.WithMaxTimeout(1200*time.Millisecond),
			hbeat.WithSuspectUpcalls(),
		),
		nak.NewWith(
			nak.WithStatusPeriod(200*time.Millisecond),
			nak.WithNakResend(20*time.Millisecond),
			nak.WithSuspectAfter(0),
		),
		com.New,
	)
}

// DegradationSchedule is the pinned composite incident, offsets
// relative to the start of the offered load: the sender's egress is
// squeezed from 500ms to the end of the window (the collapse pressure
// never lets up inside the measurement), and the bystander (slot 2) is
// partitioned away from 1s to 2.5s so the sender's failure detector
// climbs through its φ bands and retracts after the heal.
func DegradationSchedule(window time.Duration, budget, queue int) Schedule {
	s := Schedule{
		{At: 500 * time.Millisecond, Kind: KindSetHost, A: 0,
			Host: netsim.Host{EgressBudget: budget, EgressQueue: queue},
			Note: "degrade squeeze"},
		{At: window, Kind: KindClearHost, A: 0, Note: "degrade squeeze end"},
		{At: time.Second, Kind: KindPartition, Sides: [][]int{{0, 1}, {2}},
			Note: "degrade isolate"},
		{At: 2500 * time.Millisecond, Kind: KindHeal, Note: "degrade heal"},
	}
	return s.Sorted()
}

// applyStatic fires one schedule action against a static trio, slots
// resolved by position in eps. Crash/recover kinds are not part of the
// degradation vocabulary and are ignored.
func applyStatic(fab Fabric, eps []*core.Endpoint, a Action) {
	id := func(slot int) core.EndpointID { return eps[slot].ID() }
	switch a.Kind {
	case KindSetLink:
		fab.SetLink(id(a.A), id(a.B), a.Link)
	case KindSetLinkDirected:
		fab.SetLinkDirected(id(a.A), id(a.B), a.Link)
	case KindClearLink:
		fab.ClearLink(id(a.A), id(a.B))
	case KindSetHost:
		fab.SetHost(id(a.A), a.Host)
	case KindClearHost:
		fab.ClearHost(id(a.A))
	case KindPartition:
		groups := make([][]core.EndpointID, len(a.Sides))
		for i, slots := range a.Sides {
			for _, s := range slots {
				groups[i] = append(groups[i], id(s))
			}
		}
		fab.Partition(groups...)
	case KindHeal:
		fab.Heal()
	}
}

// degradePayload is a 120-byte tagged cast body, sized like the
// congestion-collapse regression's so a handful saturates the budget.
func degradePayload(i int) string {
	head := fmt.Sprintf("d%04d|", i)
	return head + strings.Repeat("x", 120-len(head))
}

// parseDegradePayload recovers the cast index.
func parseDegradePayload(p string) (int, bool) {
	cut := strings.IndexByte(p, '|')
	if cut < 0 {
		return 0, false
	}
	var i int
	if _, err := fmt.Sscanf(p[:cut], "d%d", &i); err != nil {
		return 0, false
	}
	return i, true
}

// RunDegradation executes one load run of the pinned scenario: boot
// the static trio, warm the failure detector for 500ms, offer
// cfg.Casts casts at one per cfg.Gap from slot 0 while the
// DegradationSchedule squeezes and partitions, and report what the
// healthy receiver (slot 1) saw. Everything is driven by the fabric
// clock, so the sim arm is bit-deterministic per seed.
func RunDegradation(cfg DegradeConfig) DegradeResult {
	cfg.fill()
	fab := cfg.Fabric
	if fab == nil {
		fab = NewSimFabric(cfg.Seed, cfg.Link)
	}
	defer fab.Close()

	res := DegradeResult{Offered: cfg.Casts}
	var mu sync.Mutex
	sendAt := make(map[int]time.Duration, cfg.Casts)

	const members = 3
	eps := make([]*core.Endpoint, members)
	groups := make([]*core.Group, members)
	for slot := 0; slot < members; slot++ {
		ep := fab.NewEndpoint(fmt.Sprintf("d%d", slot))
		h := func(*core.Event) {}
		if slot == 1 {
			h = func(ev *core.Event) {
				if ev.Type != core.UCast {
					return
				}
				i, ok := parseDegradePayload(string(ev.Msg.Body()))
				if !ok {
					return
				}
				mu.Lock()
				defer mu.Unlock()
				at, offered := sendAt[i]
				if !offered {
					return
				}
				res.Delivered++
				if lat := fab.Now() - at; lat > res.MaxLatency {
					res.MaxLatency = lat
				}
			}
		}
		g, err := ep.Join("degrade", DegradeStack(cfg.Adapt), h)
		if err != nil {
			panic(fmt.Sprintf("chaos: degrade boot d%d: %v", slot, err))
		}
		eps[slot], groups[slot] = ep, g
	}
	view := core.NewView(core.ViewID{Seq: 1, Coord: eps[0].ID()}, "degrade",
		[]core.EndpointID{eps[0].ID(), eps[1].ID(), eps[2].ID()})
	for slot, g := range groups {
		g := g
		eps[slot].Do(func() { g.InstallView(view) })
	}

	load := fab.Now() + time.Second // detector warm-up
	for _, a := range DegradationSchedule(cfg.Window, cfg.Budget, cfg.Queue) {
		a := a
		fab.At(load+a.At, func() { applyStatic(fab, eps, a) })
	}
	sender, sg := eps[0], groups[0]
	for i := 0; i < cfg.Casts; i++ {
		i := i
		fab.At(load+time.Duration(i)*cfg.Gap, func() {
			sender.Do(func() {
				mu.Lock()
				sendAt[i] = fab.Now()
				mu.Unlock()
				sg.Cast(message.New([]byte(degradePayload(i))))
			})
		})
	}
	fab.RunFor(load - fab.Now() + cfg.Window)

	if cfg.Adapt {
		stats := make(chan adapt.Stats, 1)
		sender.Do(func() { stats <- sg.Focus("ADAPT").(*adapt.Adapt).Stats() })
		s := <-stats
		mu.Lock()
		res.Shed, res.Throttled, res.Decreases = s.Shed, s.Throttled, s.Decreases
		mu.Unlock()
	}
	mu.Lock()
	defer mu.Unlock()
	return res
}

// GoodputInverted reports the congestion-collapse signature: offering
// more delivered less.
func GoodputInverted(moderate, heavy DegradeResult) bool {
	return heavy.Delivered < moderate.Delivered
}

// CheckGracefulDegradation is the invariant the ADAPT arm must hold
// under the pinned scenario, as a checker in the style of the
// virtual-synchrony invariants: no goodput inversion between the two
// offered loads, per-cast latency of everything delivered bounded by
// latencyBound, and evidence that the control loop actually engaged
// under the heavy load (backoffs taken, casts paced) — a pass on a
// loop that never fired would prove nothing.
func CheckGracefulDegradation(moderate, heavy DegradeResult, latencyBound time.Duration) []error {
	var errs []error
	if GoodputInverted(moderate, heavy) {
		errs = append(errs, fmt.Errorf(
			"graceful-degradation: goodput inverted: heavy load delivered %d < moderate %d",
			heavy.Delivered, moderate.Delivered))
	}
	for _, r := range []struct {
		name string
		res  DegradeResult
	}{{"moderate", moderate}, {"heavy", heavy}} {
		if r.res.MaxLatency > latencyBound {
			errs = append(errs, fmt.Errorf(
				"graceful-degradation: %s load delivered a cast %v after it was offered (bound %v)",
				r.name, r.res.MaxLatency, latencyBound))
		}
		if r.res.Delivered == 0 {
			errs = append(errs, fmt.Errorf(
				"graceful-degradation: %s load delivered nothing", r.name))
		}
	}
	if heavy.Decreases == 0 {
		errs = append(errs, fmt.Errorf(
			"graceful-degradation: heavy load never triggered a multiplicative decrease"))
	}
	if heavy.Throttled == 0 {
		errs = append(errs, fmt.Errorf(
			"graceful-degradation: heavy load was never paced"))
	}
	return errs
}
