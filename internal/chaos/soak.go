package chaos

import (
	"time"

	"horus/internal/netsim"
)

// SoakConfig parameterizes one seeded soak run. The zero value gives
// the canonical recipe used by the integration soak and cmd/horus-chaos
// — change a field only when exploring; the defaults are what the
// 20-seed regression suite pins down.
type SoakConfig struct {
	Members   int           // cluster size; default 4
	Horizon   time.Duration // fault-schedule horizon; default 5s
	Incidents int           // incidents generated per schedule; default 7
	Link      netsim.Link   // healthy link; zero → 1ms delay, 2ms jitter, 2% loss
	FormBy    time.Duration // deadline for initial view formation; default 6s
	SettleBy  time.Duration // deadline for post-schedule re-convergence; default 10s

	// Harsh turns on the hostile schedule generator (multi-way
	// partitions, anchor crashes, majority loss) and runs the stack
	// with primary-partition arithmetic, so minority components defer
	// casts instead of making independent progress.
	Harsh bool

	// Switch runs the cluster on SwitchStack (a SWITCH reconfiguration
	// layer over the default stack) and adds the switch incident class
	// to the generated schedule, so stacks get upgraded, downgraded,
	// and reshaped while everything else is on fire.
	Switch bool

	// NewFabric, when set, supplies the transport substrate for each
	// seed (e.g. a chaosnet UDP fabric). Nil means the deterministic
	// simulated fabric. The cluster owns the fabric and closes it.
	NewFabric func(seed int64) Fabric
}

func (c *SoakConfig) fill() {
	if c.Members == 0 {
		c.Members = 4
	}
	if c.Horizon == 0 {
		c.Horizon = 5 * time.Second
	}
	if c.Incidents == 0 {
		c.Incidents = 7
	}
	if c.Link == (netsim.Link{}) {
		c.Link = netsim.Link{Delay: time.Millisecond, Jitter: 2 * time.Millisecond, LossRate: 0.02}
	}
	if c.FormBy == 0 {
		c.FormBy = 6 * time.Second
	}
	if c.SettleBy == 0 {
		c.SettleBy = 10 * time.Second
	}
}

// RunSeed executes the canonical chaos recipe for one seed: boot and
// form a cluster, generate and apply a seeded fault schedule under a
// continuous cast workload, run past the schedule's end, then require
// re-convergence to one full view. The returned cluster is non-nil
// whenever the run got past formation, so callers can inspect
// Histories, Check, and Digest even when Settle failed. Invariant
// checking is left to the caller (Cluster.Check / CheckAll): a run can
// settle and still have violated virtual synchrony along the way.
func RunSeed(seed int64, cfg SoakConfig) (*Cluster, error) {
	cfg.fill()
	ccfg := Config{Seed: seed, Members: cfg.Members, Link: cfg.Link}
	if cfg.NewFabric != nil {
		ccfg.Fabric = cfg.NewFabric(seed)
	}
	if cfg.Harsh {
		ccfg.Stack = PrimaryStack(cfg.Members)
	}
	if cfg.Switch {
		ccfg.Stack = SwitchStack
		if cfg.Harsh {
			ccfg.Stack = PrimarySwitchStack(cfg.Members)
		}
	}
	c := NewCluster(ccfg)
	if err := c.Form(cfg.FormBy); err != nil {
		c.Close()
		return nil, err
	}
	sched := Generate(seed, GenConfig{
		Members: cfg.Members, Horizon: cfg.Horizon, Incidents: cfg.Incidents,
		Harsh: cfg.Harsh, Switch: cfg.Switch,
	})
	c.Apply(sched)
	c.Run(sched.End() + 500*time.Millisecond)
	if err := c.Settle(cfg.SettleBy); err != nil {
		c.Close()
		return c, err
	}
	c.Close()
	return c, nil
}
