package chaos

import (
	"strings"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/netsim"
)

func id(site string, birth uint64) core.EndpointID {
	return core.EndpointID{Site: site, Birth: birth}
}

func view(seq uint64, coord core.EndpointID, members ...core.EndpointID) *core.View {
	return core.NewView(core.ViewID{Seq: seq, Coord: coord}, "chaos", members)
}

func TestRampLossEndsCleared(t *testing.T) {
	s := RampLoss(0, 100*time.Millisecond, 0, 1, netsim.Link{}, 0.8, 4)
	if len(s) != 5 {
		t.Fatalf("ramp has %d actions, want 4 steps + clear", len(s))
	}
	last := s.Sorted()[len(s)-1]
	if last.Kind != KindClearLink {
		t.Fatalf("ramp ends with %v, want clear-link", last.Kind)
	}
	// Loss increases monotonically to the peak.
	var prev float64
	for _, a := range s.Sorted()[:4] {
		if a.Link.LossRate <= prev {
			t.Fatalf("ramp not monotone: %v after %v", a.Link.LossRate, prev)
		}
		prev = a.Link.LossRate
	}
	if prev != 0.8 {
		t.Fatalf("ramp peak %v, want 0.8", prev)
	}
}

func TestFlapAlternates(t *testing.T) {
	s := Flap(0, 50*time.Millisecond, 50*time.Millisecond, 0, 2, 3).Sorted()
	if len(s) != 6 {
		t.Fatalf("flap has %d actions, want 6", len(s))
	}
	for i, a := range s {
		want := KindSetLink
		if i%2 == 1 {
			want = KindClearLink
		}
		if a.Kind != want {
			t.Fatalf("action %d is %v, want %v", i, a.Kind, want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Members: 4, Horizon: 5 * time.Second, Incidents: 8}
	a, b := Generate(99, cfg), Generate(99, cfg)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a, b)
	}
	if c := Generate(100, cfg); c.String() == a.String() {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestGenerateSelfCleaning: every crash is recovered, partitions are
// balanced by heals, slot 0 never crashes, and the schedule ends with
// the safety tail.
func TestGenerateSelfCleaning(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		s := Generate(seed, GenConfig{Members: 5, Horizon: 6 * time.Second, Incidents: 10})
		down := map[int]bool{}
		partitions, heals := 0, 0
		for _, a := range s.Sorted() {
			switch a.Kind {
			case KindCrash:
				if a.A == 0 {
					t.Fatalf("seed %d: generator crashed slot 0", seed)
				}
				if down[a.A] {
					t.Fatalf("seed %d: slot %d crashed while down", seed, a.A)
				}
				down[a.A] = true
			case KindRecover:
				if !down[a.A] {
					t.Fatalf("seed %d: slot %d recovered while up", seed, a.A)
				}
				delete(down, a.A)
			case KindPartition:
				partitions++
				if len(a.Sides) < 2 {
					t.Fatalf("seed %d: degenerate partition %v", seed, a.Sides)
				}
				for _, side := range a.Sides {
					if len(side) == 0 {
						t.Fatalf("seed %d: empty partition side %v", seed, a.Sides)
					}
				}
			case KindHeal:
				heals++
			}
		}
		if len(down) != 0 {
			t.Fatalf("seed %d: schedule leaves slots %v crashed", seed, down)
		}
		if heals <= partitions-1 {
			t.Fatalf("seed %d: %d partitions but only %d heals", seed, partitions, heals)
		}
		last := s.Sorted()[len(s)-1]
		if last.Kind != KindClearLink && last.Kind != KindHeal {
			t.Fatalf("seed %d: schedule ends with %v, want the safety tail", seed, last.Kind)
		}
	}
}

func TestCheckSelfInclusionCatchesExclusion(t *testing.T) {
	me, other := id("a", 1), id("b", 1)
	h := &History{Slot: 0, ID: me, Views: []*core.View{view(2, other, other)}}
	if errs := CheckSelfInclusion([]*History{h}); len(errs) != 1 {
		t.Fatalf("got %v, want 1 violation", errs)
	}
}

func TestCheckMonotoneCatchesRegression(t *testing.T) {
	me := id("a", 1)
	h := &History{ID: me, Views: []*core.View{view(3, me, me), view(2, me, me)}}
	if errs := CheckMonotoneViews([]*History{h}); len(errs) != 1 {
		t.Fatalf("got %v, want 1 violation", errs)
	}
}

func TestCheckViewConsistencyCatchesSplitBrainViews(t *testing.T) {
	a, b := id("a", 1), id("b", 1)
	v := core.ViewID{Seq: 2, Coord: a}
	ha := &History{Slot: 0, ID: a, Views: []*core.View{core.NewView(v, "g", []core.EndpointID{a, b})}}
	hb := &History{Slot: 1, ID: b, Views: []*core.View{core.NewView(v, "g", []core.EndpointID{b})}}
	if errs := CheckViewConsistency([]*History{ha, hb}); len(errs) != 1 {
		t.Fatalf("got %v, want 1 violation", errs)
	}
}

func TestCheckNoDuplicatesCatchesRedelivery(t *testing.T) {
	v := core.ViewID{Seq: 1, Coord: id("a", 1)}
	h := &History{ID: id("a", 1), Deliveries: []Delivery{
		{View: v, Payload: "s1.0-1"}, {View: v, Payload: "s1.0-1"},
	}}
	if errs := CheckNoDuplicates([]*History{h}); len(errs) != 1 {
		t.Fatalf("got %v, want 1 violation", errs)
	}
}

func TestCheckFIFO(t *testing.T) {
	v1 := core.ViewID{Seq: 1, Coord: id("a", 1)}
	v2 := core.ViewID{Seq: 2, Coord: id("a", 1)}
	// Reorder within a view: violation. Gap within a view: violation.
	// Gap across a view boundary: legal.
	bad := &History{ID: id("a", 1), Deliveries: []Delivery{
		{View: v1, Payload: "s1.0-2"}, {View: v1, Payload: "s1.0-1"},
	}}
	if errs := CheckFIFO([]*History{bad}); len(errs) != 1 {
		t.Fatalf("reorder: got %v, want 1 violation", errs)
	}
	gap := &History{ID: id("a", 1), Deliveries: []Delivery{
		{View: v1, Payload: "s1.0-1"}, {View: v1, Payload: "s1.0-3"},
	}}
	if errs := CheckFIFO([]*History{gap}); len(errs) != 1 {
		t.Fatalf("in-view gap: got %v, want 1 violation", errs)
	}
	ok := &History{ID: id("a", 1), Deliveries: []Delivery{
		{View: v1, Payload: "s1.0-1"}, {View: v2, Payload: "s1.0-3"},
	}}
	if errs := CheckFIFO([]*History{ok}); len(errs) != 0 {
		t.Fatalf("cross-view gap flagged: %v", errs)
	}
}

// TestCheckFIFOForgivesReportedLoss: a within-view gap is legal exactly
// when a LOST_MESSAGE report landed between the two deliveries — NAK
// answered with a place holder for a trimmed range — and the report is
// attributable to the gapped origin. A loss from an unrelated origin
// forgives nothing.
func TestCheckFIFOForgivesReportedLoss(t *testing.T) {
	a, b, c := id("a", 1), id("b", 1), id("c", 1)
	v1 := core.ViewID{Seq: 1, Coord: a}
	origin := &History{Slot: 1, Inc: 0, ID: b} // named s1.0
	other := &History{Slot: 2, Inc: 0, ID: c}  // named s2.0
	reported := &History{Slot: 0, Inc: 0, ID: a, Deliveries: []Delivery{
		{View: v1, Payload: "s1.0-1"},
		{View: v1, Lost: true, From: b},
		{View: v1, Payload: "s1.0-3"},
	}}
	if errs := CheckFIFO([]*History{reported, origin, other}); len(errs) != 0 {
		t.Fatalf("reported gap flagged: %v", errs)
	}
	wrongOrigin := &History{Slot: 0, Inc: 0, ID: a, Deliveries: []Delivery{
		{View: v1, Payload: "s1.0-1"},
		{View: v1, Lost: true, From: c},
		{View: v1, Payload: "s1.0-3"},
	}}
	if errs := CheckFIFO([]*History{wrongOrigin, origin, other}); len(errs) != 1 {
		t.Fatalf("wrong-origin loss: got %v, want 1 violation", errs)
	}
	// A loss report is consumed by the next delivery from its origin:
	// it does not forgive a second, later gap.
	stale := &History{Slot: 0, Inc: 0, ID: a, Deliveries: []Delivery{
		{View: v1, Payload: "s1.0-1"},
		{View: v1, Lost: true, From: b},
		{View: v1, Payload: "s1.0-3"},
		{View: v1, Payload: "s1.0-5"},
	}}
	if errs := CheckFIFO([]*History{stale, origin, other}); len(errs) != 1 {
		t.Fatalf("stale loss reused: got %v, want 1 violation", errs)
	}
	// A loss from a peer no history accounts for (e.g. a flush
	// forwarder) forgives gaps in the view it was reported in.
	unattributed := &History{Slot: 0, Inc: 0, ID: a, Deliveries: []Delivery{
		{View: v1, Payload: "s1.0-1"},
		{View: v1, Lost: true, From: id("ghost", 1)},
		{View: v1, Payload: "s1.0-3"},
	}}
	if errs := CheckFIFO([]*History{unattributed, origin, other}); len(errs) != 0 {
		t.Fatalf("unattributed loss not forgiven: %v", errs)
	}
}

func TestCheckViewAgreement(t *testing.T) {
	a, b := id("a", 1), id("b", 1)
	v1 := view(1, a, a, b)
	v2 := view(2, a, a, b)
	mk := func(deliv string) *History {
		h := &History{ID: a, Views: []*core.View{v1, v2}}
		if deliv != "" {
			h.Deliveries = append(h.Deliveries, Delivery{View: v1.ID, Payload: deliv})
		}
		return h
	}
	agree := []*History{mk("s0.0-1"), mk("s0.0-1")}
	if errs := CheckViewAgreement(agree); len(errs) != 0 {
		t.Fatalf("agreeing histories flagged: %v", errs)
	}
	disagree := []*History{mk("s0.0-1"), mk("")}
	if errs := CheckViewAgreement(disagree); len(errs) != 1 {
		t.Fatalf("got %v, want 1 violation", errs)
	}
	// Open (final) views are never checked: drop v2 so v1 is open.
	open := []*History{
		{ID: a, Views: []*core.View{v1}, Deliveries: []Delivery{{View: v1.ID, Payload: "x-1"}}},
		{ID: b, Views: []*core.View{v1}},
	}
	if errs := CheckViewAgreement(open); len(errs) != 0 {
		t.Fatalf("open view checked: %v", errs)
	}
}

// TestClusterCrashRecoverSmoke is the end-to-end smoke: form a
// cluster, crash a member, recover it, and demand re-convergence with
// all invariants intact. The full multi-seed soak lives in
// internal/integration.
func TestClusterCrashRecoverSmoke(t *testing.T) {
	c := NewCluster(Config{Seed: 7, Members: 3,
		Link: netsim.Link{Delay: time.Millisecond, Jitter: time.Millisecond}})
	if err := c.Form(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Apply(Schedule{
		{At: 100 * time.Millisecond, Kind: KindCrash, A: 2},
		{At: 900 * time.Millisecond, Kind: KindRecover, A: 2},
	})
	c.Run(1200 * time.Millisecond)
	if err := c.Settle(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	if errs := c.Check(); len(errs) != 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
	if len(c.Histories) != 4 {
		t.Fatalf("expected 4 incarnations (3 boots + 1 recover), got %d", len(c.Histories))
	}
}

// TestGenerateHarshDeterministic: harsh schedules are equally pure
// functions of the seed — byte-identical across calls, including the
// harsh-only incident kinds — and across 50 seeds the hostile
// repertoire (multi-way splits, anchor crashes, majority loss)
// actually appears.
func TestGenerateHarshDeterministic(t *testing.T) {
	cfg := GenConfig{Members: 5, Horizon: 6 * time.Second, Incidents: 10, Harsh: true}
	repertoire := map[string]bool{}
	for seed := int64(1); seed <= 50; seed++ {
		a, b := Generate(seed, cfg), Generate(seed, cfg)
		if a.String() != b.String() {
			t.Fatalf("seed %d: harsh schedule diverged:\n%s\nvs\n%s", seed, a, b)
		}
		for _, act := range a {
			for _, note := range []string{"way split", "anchor crash", "majority loss"} {
				if strings.Contains(act.Note, note) {
					repertoire[note] = true
				}
			}
		}
	}
	for _, note := range []string{"way split", "anchor crash", "majority loss"} {
		if !repertoire[note] {
			t.Errorf("50 harsh seeds never produced a %q incident", note)
		}
	}
}

// TestGenerateHarshSelfCleaning: harsh schedules stay self-cleaning —
// every crash (including the anchor's and the majority's) recovers,
// partitions stay non-degenerate, and the safety tail closes the
// schedule. Unlike the mild generator, harsh may crash slot 0 and may
// overlap partitions; what it must never do is leave wreckage behind.
func TestGenerateHarshSelfCleaning(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		s := Generate(seed, GenConfig{Members: 5, Horizon: 6 * time.Second, Incidents: 10, Harsh: true})
		down := map[int]bool{}
		partitions, heals := 0, 0
		for _, a := range s.Sorted() {
			switch a.Kind {
			case KindCrash:
				if down[a.A] {
					t.Fatalf("seed %d: slot %d crashed while down", seed, a.A)
				}
				down[a.A] = true
			case KindRecover:
				if !down[a.A] {
					t.Fatalf("seed %d: slot %d recovered while up", seed, a.A)
				}
				delete(down, a.A)
			case KindPartition:
				partitions++
				if len(a.Sides) < 2 {
					t.Fatalf("seed %d: degenerate partition %v", seed, a.Sides)
				}
				for _, side := range a.Sides {
					if len(side) == 0 {
						t.Fatalf("seed %d: empty partition side %v", seed, a.Sides)
					}
				}
			case KindHeal:
				heals++
			}
		}
		if len(down) != 0 {
			t.Fatalf("seed %d: schedule leaves slots %v crashed", seed, down)
		}
		if heals < partitions {
			t.Fatalf("seed %d: %d partitions but only %d heals", seed, partitions, heals)
		}
		last := s.Sorted()[len(s)-1]
		if last.Kind != KindClearLink && last.Kind != KindHeal {
			t.Fatalf("seed %d: schedule ends with %v, want the safety tail", seed, last.Kind)
		}
	}
}

// TestHarshVocabularyCoverage: across the nightly sweep's seed range
// (seeds 1..100 at the horus-chaos defaults), the harsh generator
// draws every fault kind in the vocabulary at least once — every
// polite class (loss ramps, asymmetric loss, flaps, crashes,
// partitions, bandwidth squeezes, reorder bursts, egress squeezes)
// and every harsh-only class (multi-way splits, anchor crashes,
// majority loss, composite degradation), plus the run-time
// reconfiguration class (switch storms). A renumbering or probability
// change that silently starves one class out of the nightly sweep
// fails here, not months later when the untested class regresses.
func TestHarshVocabularyCoverage(t *testing.T) {
	// Mirror `horus-chaos -harsh -switch -seeds 100` (the nightly harsh
	// sweep): default members/horizon/incidents, harsh repertoire, the
	// switch incident class armed.
	cfg := GenConfig{Members: 4, Horizon: 5 * time.Second, Incidents: 7, Harsh: true, Switch: true}

	// Each class is recognized by the Note its builder stamps, except
	// the plain crash/recover pair, which carries no note and is
	// recognized by kind + the absence of a harsh crash note.
	classes := []struct {
		name string
		hit  func(a Action) bool
	}{
		{"loss ramp", func(a Action) bool { return strings.HasPrefix(a.Note, "ramp") }},
		{"asymmetric loss", func(a Action) bool { return strings.HasPrefix(a.Note, "asym") }},
		{"flap", func(a Action) bool { return strings.HasPrefix(a.Note, "flap") }},
		{"crash", func(a Action) bool { return a.Kind == KindCrash && a.Note == "" }},
		{"partition", func(a Action) bool { return strings.HasPrefix(a.Note, "rand split") }},
		{"bandwidth squeeze", func(a Action) bool { return a.Note == "bw squeeze" }},
		{"reorder burst", func(a Action) bool { return a.Note == "reorder burst" }},
		{"egress squeeze", func(a Action) bool { return a.Note == "egress squeeze" }},
		{"multi-way split", func(a Action) bool { return strings.HasSuffix(a.Note, "way split") }},
		{"anchor crash", func(a Action) bool { return a.Note == "anchor crash" }},
		{"majority loss", func(a Action) bool { return strings.HasPrefix(a.Note, "majority loss") }},
		{"composite degradation", func(a Action) bool { return a.Note == "degrade squeeze" }},
		{"switch storm", func(a Action) bool { return a.Kind == KindSwitch && a.Note == "switch storm" }},
	}

	seen := make(map[string]int64) // class -> first seed that drew it
	for seed := int64(1); seed <= 100; seed++ {
		for _, a := range Generate(seed, cfg) {
			for _, c := range classes {
				if _, ok := seen[c.name]; !ok && c.hit(a) {
					seen[c.name] = seed
				}
			}
		}
	}
	for _, c := range classes {
		if _, ok := seen[c.name]; !ok {
			t.Errorf("100 harsh seeds never drew a %s incident", c.name)
		}
	}
}
