package chaos

import (
	"time"

	"horus/internal/core"
	"horus/internal/netsim"
)

// Fabric abstracts the transport substrate a chaos cluster runs over:
// endpoint boot, the clock, deferred execution, and the fault
// vocabulary of the schedule language. The simulated fabric wraps
// netsim.Network (virtual time, fully deterministic);
// internal/chaosnet provides a wall-clock implementation over real UDP
// sockets through an in-process lossy proxy. The cluster driver and
// the invariant checkers only ever talk to this interface, so every
// typed schedule runs unchanged on either substrate.
type Fabric interface {
	// NewEndpoint boots a fresh endpoint at the named site. Birth
	// identities follow call order on every fabric, so a schedule's
	// slot-to-endpoint resolution is the same on sim and UDP.
	NewEndpoint(site string) *core.Endpoint

	// Now is the fabric clock: virtual time on sim, wall time on UDP.
	Now() time.Duration
	// At schedules fn at absolute fabric time t. fn may run on a
	// fabric-owned goroutine; anything it does to a protocol stack
	// must go through Endpoint.Do.
	At(t time.Duration, fn func())
	// RunFor advances the clock by d: the sim fabric runs its event
	// loop, the UDP fabric sleeps while the sockets run themselves.
	RunFor(d time.Duration)

	// Fault vocabulary — semantics mirror netsim.Network: directed
	// link overrides with a default fallback, per-host egress budgets
	// shared across all of a member's outgoing links, fail-stop
	// crashes, detach of dead incarnations, global component
	// partitions.
	SetLink(a, b core.EndpointID, l netsim.Link)
	SetLinkDirected(from, to core.EndpointID, l netsim.Link)
	ClearLink(a, b core.EndpointID)
	SetHost(id core.EndpointID, h netsim.Host)
	ClearHost(id core.EndpointID)
	Crash(id core.EndpointID)
	Detach(id core.EndpointID)
	Partition(groups ...[]core.EndpointID)
	Heal()

	// Close releases fabric resources (sockets, proxy goroutines,
	// pending timers). The sim fabric has none, but callers must stay
	// transport-agnostic and call it regardless.
	Close()
}

// simFabric adapts *netsim.Network to Fabric. Everything is embedded;
// only Close needs a stub — a simulation holds no OS resources.
type simFabric struct{ *netsim.Network }

func (simFabric) Close() {}

// NewSimFabric builds the deterministic simulated fabric used by
// default: seeded virtual-time event loop, one default link for every
// pair.
func NewSimFabric(seed int64, link netsim.Link) Fabric {
	return simFabric{netsim.New(netsim.Config{Seed: seed, DefaultLink: link})}
}
