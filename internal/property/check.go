package property

import (
	"container/heap"
	"fmt"
	"strings"
)

// ParseStack splits a "TOTAL:MBRSHIP:FRAG:NAK:COM" stack description
// (top first, the paper's notation) into layer names.
func ParseStack(desc string) []string {
	var out []string
	for _, name := range strings.Split(desc, ":") {
		name = strings.ToUpper(strings.TrimSpace(name))
		if name != "" {
			out = append(out, name)
		}
	}
	return out
}

// Derive computes the property set offered at the top of the stack
// (named top first) over a network providing the given properties,
// checking well-formedness on the way up. It returns an error naming
// the first layer whose requirements the stack beneath it does not
// satisfy.
func Derive(network Set, stack []string) (Set, error) {
	below := network
	for i := len(stack) - 1; i >= 0; i-- {
		spec, err := Spec(stack[i])
		if err != nil {
			return 0, err
		}
		if !below.Has(spec.Requires) {
			return 0, fmt.Errorf(
				"property: stack not well-formed: layer %s requires %v but only %v is available beneath it",
				spec.Name, spec.Requires.Minus(below), below)
		}
		below = spec.Provides | (below & spec.Inherits)
	}
	return below, nil
}

// WellFormed reports whether the stack (top first) is well-formed over
// the given network.
func WellFormed(network Set, stack []string) bool {
	_, err := Derive(network, stack)
	return err == nil
}

// Synthesize finds a minimum-cost well-formed stack over the given
// network that provides at least the required properties, searching
// over the candidate layers (Table3 by default if candidates is nil).
// The result is named top first, like the paper's stack notation.
//
// The search is Dijkstra over property sets: a state is the property
// set available at the current top of the stack; stacking a layer
// whose requirements the state satisfies moves to
// Provides | (state & Inherits) at the layer's cost. This realizes the
// paper's §6 idea: "if we can associate a cost with each of the
// properties, possibly on a per-layer basis, we can even create a
// minimal stack."
func Synthesize(network, required Set, candidates []LayerSpec) ([]string, error) {
	if candidates == nil {
		candidates = Table3
	}
	type state struct {
		props Set
		cost  int
	}
	dist := make(map[Set]int)
	prev := make(map[Set]struct {
		from  Set
		layer string
	})
	pq := &stateHeap{}
	heap.Push(pq, stateEntry{props: network, cost: 0})
	dist[network] = 0

	for pq.Len() > 0 {
		cur := heap.Pop(pq).(stateEntry)
		if d, ok := dist[cur.props]; ok && cur.cost > d {
			continue
		}
		if cur.props.Has(required) {
			// Reconstruct: walk back to the network state.
			var stack []string
			at := cur.props
			for at != network {
				p := prev[at]
				stack = append(stack, p.layer) // naturally top-first
				at = p.from
			}
			return stack, nil
		}
		for _, spec := range candidates {
			if !cur.props.Has(spec.Requires) {
				continue
			}
			next := spec.Provides | (cur.props & spec.Inherits)
			if next == cur.props {
				continue // no progress; avoids zero-cost cycles
			}
			cost := cur.cost + spec.Cost
			if d, ok := dist[next]; !ok || cost < d {
				dist[next] = cost
				prev[next] = struct {
					from  Set
					layer string
				}{from: cur.props, layer: spec.Name}
				heap.Push(pq, stateEntry{props: next, cost: cost})
			}
		}
	}
	return nil, fmt.Errorf("property: no stack over %v provides %v", network, required)
}

// StackCost sums the per-layer costs of a stack.
func StackCost(stack []string) (int, error) {
	total := 0
	for _, name := range stack {
		spec, err := Spec(name)
		if err != nil {
			return 0, err
		}
		total += spec.Cost
	}
	return total, nil
}

type stateEntry struct {
	props Set
	cost  int
}

type stateHeap []stateEntry

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(stateEntry)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
