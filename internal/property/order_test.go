package property

import "testing"

// TestStackingOrderMatters makes §8's closing question executable:
// "to help decide when the stacking order of two layers matters." The
// calculus answers it — for some pairs both orders are well-formed and
// equivalent, for others exactly one order works.
func TestStackingOrderMatters(t *testing.T) {
	cases := []struct {
		name    string
		ab, ba  string
		abOK    bool
		baOK    bool
		samePro bool // when both work: do they provide the same set?
	}{
		{
			// Ordering layers need membership below: only one order.
			name: "TOTAL vs MBRSHIP",
			ab:   "TOTAL:MBRSHIP:FRAG:NAK:COM", abOK: true,
			ba: "MBRSHIP:TOTAL:FRAG:NAK:COM", baOK: false,
		},
		{
			// FRAG needs FIFO below: NAK must be under it.
			name: "FRAG vs NAK",
			ab:   "FRAG:NAK:COM", abOK: true,
			ba: "NAK:FRAG:COM", baOK: false,
		},
		{
			// Transparent layers commute.
			name: "TRACE vs ACCOUNT",
			ab:   "TRACE:ACCOUNT:NAK:COM", abOK: true,
			ba: "ACCOUNT:TRACE:NAK:COM", baOK: true, samePro: true,
		},
		{
			// Both integrity layers sit over raw COM in either order.
			name: "SIGN vs CHKSUM",
			ab:   "NAK:SIGN:CHKSUM:COM", abOK: true,
			ba: "NAK:CHKSUM:SIGN:COM", baOK: true, samePro: true,
		},
		{
			// Stability providers and consumers do not commute.
			name: "SAFE vs STABLE",
			ab:   "SAFE:STABLE:MBRSHIP:FRAG:NAK:COM", abOK: true,
			ba: "STABLE:SAFE:MBRSHIP:FRAG:NAK:COM", baOK: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pab, errAB := Derive(P1, ParseStack(tc.ab))
			pba, errBA := Derive(P1, ParseStack(tc.ba))
			if (errAB == nil) != tc.abOK {
				t.Errorf("%s: well-formed=%v, want %v (%v)", tc.ab, errAB == nil, tc.abOK, errAB)
			}
			if (errBA == nil) != tc.baOK {
				t.Errorf("%s: well-formed=%v, want %v (%v)", tc.ba, errBA == nil, tc.baOK, errBA)
			}
			if tc.abOK && tc.baOK && tc.samePro && pab != pba {
				t.Errorf("commuting pair provides %v vs %v", pab, pba)
			}
		})
	}
}
