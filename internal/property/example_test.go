package property_test

import (
	"fmt"
	"strings"

	"horus/internal/property"
)

// The paper's §7 worked example: derive what the canonical stack
// provides over an ATM network that gives only best-effort delivery.
func ExampleDerive() {
	stack := property.ParseStack("TOTAL:MBRSHIP:FRAG:NAK:COM")
	provides, err := property.Derive(property.P1, stack)
	if err != nil {
		fmt.Println("ill-formed:", err)
		return
	}
	fmt.Println(provides)
	// Output: {P3,P4,P6,P8,P9,P10,P11,P12,P15}
}

// Ill-formed stacks are rejected with the offending layer named.
func ExampleDerive_illFormed() {
	//horus:stackcheck-ok — this example demonstrates the rejection itself
	_, err := property.Derive(property.P1, property.ParseStack("TOTAL:COM"))
	fmt.Println(err != nil)
	// Output: true
}

// Ask for totally ordered delivery and let the system "build a single
// protocol for the particular application on the fly" (§6).
func ExampleSynthesize() {
	stack, err := property.Synthesize(property.P1, property.P6, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	// The exact minimal stack depends on per-layer costs; verify it
	// rather than print it.
	provides, _ := property.Derive(property.P1, stack)
	fmt.Println(len(stack) > 0 && provides.Has(property.P6))
	fmt.Println(strings.Contains(strings.Join(stack, ":"), "TOTAL"))
	// Output:
	// true
	// true
}

func ExampleParseSet() {
	s, _ := property.ParseSet("P3, P4, P9")
	fmt.Println(s, s.Has(property.P4), s.Has(property.P6))
	// Output: {P3,P4,P9} true false
}
