package property

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTable4Complete(t *testing.T) {
	if len(Descriptions) != 16 {
		t.Fatalf("Table 4 has %d properties, want 16", len(Descriptions))
	}
	for i := 1; i <= 16; i++ {
		p := Set(1) << uint(i-1)
		if Descriptions[p] == "" {
			t.Errorf("P%d has no description", i)
		}
		if p.Index() != i {
			t.Errorf("P%d.Index() = %d", i, p.Index())
		}
	}
}

func TestSetOperations(t *testing.T) {
	s := P3 | P4 | P10
	if !s.Has(P3 | P4) {
		t.Error("Has(P3|P4) = false")
	}
	if s.Has(P5) {
		t.Error("Has(P5) = true")
	}
	if got := s.Minus(P4); got != P3|P10 {
		t.Errorf("Minus = %v", got)
	}
	if got := s.Union(P5); got != P3|P4|P5|P10 {
		t.Errorf("Union = %v", got)
	}
	if got := s.Count(); got != 3 {
		t.Errorf("Count = %d", got)
	}
	if got := s.String(); got != "{P3,P4,P10}" {
		t.Errorf("String = %q", got)
	}
}

func TestParseSetRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		s := Set(raw)
		got, err := ParseSet(s.String())
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseSetErrors(t *testing.T) {
	for _, bad := range []string{"P0", "P17", "Q3", "P"} {
		if _, err := ParseSet(bad); err == nil {
			t.Errorf("ParseSet(%q) accepted", bad)
		}
	}
}

// TestSection7Derivation is the paper's worked example: the stack
// TOTAL:MBRSHIP:FRAG:NAK:COM over an ATM network providing only P1
// "results in the properties P3, P4, P6, P8, P9, P10, P11, P12 and
// P15".
func TestSection7Derivation(t *testing.T) {
	got, err := Derive(P1, ParseStack("TOTAL:MBRSHIP:FRAG:NAK:COM"))
	if err != nil {
		t.Fatal(err)
	}
	want := P3 | P4 | P6 | P8 | P9 | P10 | P11 | P12 | P15
	if got != want {
		t.Fatalf("derived %v, want %v (paper §7)", got, want)
	}
}

// TestTable3Matrix checks structural invariants of every row.
func TestTable3Matrix(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range Table3 {
		if seen[spec.Name] {
			t.Errorf("duplicate row %s", spec.Name)
		}
		seen[spec.Name] = true
		if spec.Cost <= 0 {
			t.Errorf("%s: cost %d", spec.Name, spec.Cost)
		}
		if spec.Provides&spec.Requires != 0 {
			t.Errorf("%s: provides what it requires: %v", spec.Name,
				spec.Provides&spec.Requires)
		}
	}
	// Every property some layer requires must be providable (by the
	// network: P1; or by some layer).
	providable := P1
	for _, spec := range Table3 {
		providable |= spec.Provides
	}
	for _, spec := range Table3 {
		if !providable.Has(spec.Requires) {
			t.Errorf("%s requires unprovidable %v", spec.Name,
				spec.Requires.Minus(providable))
		}
	}
	// The key paper rows exist.
	for _, name := range []string{"COM", "NFRAG", "NAK", "NNAK", "FRAG", "MBRSHIP",
		"BMS", "VSS", "FLUSH", "STABLE", "PINWHEEL", "TOTAL", "CAUSAL", "SAFE", "MERGE"} {
		if _, err := Spec(name); err != nil {
			t.Errorf("missing Table 3 row %s", name)
		}
	}
}

func TestDeriveRejectsIllFormed(t *testing.T) {
	cases := []struct {
		stack string
		why   string
	}{
		{"TOTAL:COM", "TOTAL over unreliable COM"},
		{"MBRSHIP:NAK:COM", "MBRSHIP without FRAG (needs P12)"},
		{"NAK", "NAK with no COM below (needs P10, P11)"},
		{"FRAG:COM", "FRAG over unreliable delivery"},
		{"CAUSAL:MBRSHIP:FRAG:NAK:COM", "CAUSAL without TSTAMP (needs P13)"},
		{"SAFE:MBRSHIP:FRAG:NAK:COM", "SAFE without stability (needs P14)"},
		{"COM:NAK", "COM stacked above NAK (COM needs raw P1)"},
	}
	for _, tc := range cases {
		t.Run(tc.why, func(t *testing.T) {
			if _, err := Derive(P1, ParseStack(tc.stack)); err == nil {
				t.Errorf("stack %s accepted: %s", tc.stack, tc.why)
			}
		})
	}
}

func TestDeriveAcceptsKnownGood(t *testing.T) {
	stacks := []string{
		"COM",
		"NAK:COM",
		"FRAG:NAK:COM",
		"NAK:CHKSUM:COM",
		"MBRSHIP:FRAG:NAK:COM",
		"TOTAL:MBRSHIP:FRAG:NAK:COM",
		"MERGE:MBRSHIP:FRAG:NAK:COM",
		"STABLE:MBRSHIP:FRAG:NAK:COM",
		"SAFE:STABLE:MBRSHIP:FRAG:NAK:COM",
		"CAUSAL:TSTAMP:MBRSHIP:FRAG:NAK:COM",
		"FLUSH:STABLE:BMS:FRAG:NAK:COM",
		"VSS:STABLE:BMS:FRAG:NAK:COM",
		"TOTAL:MBRSHIP:FRAG:FC:NAK:SIGN:CRYPT:COMPRESS:CHKSUM:COM",
		"TRACE:ACCOUNT:MLOG:TOTAL:MBRSHIP:FRAG:NAK:COM",
		"NFRAG:NNAK:COM",
	}
	for _, s := range stacks {
		if _, err := Derive(P1, ParseStack(s)); err != nil {
			t.Errorf("stack %s rejected: %v", s, err)
		}
	}
}

func TestSynthesizeTotalOrderStack(t *testing.T) {
	stack, err := Synthesize(P1, P6, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the exact stack, it must be well-formed and provide P6.
	got, err := Derive(P1, stack)
	if err != nil {
		t.Fatalf("synthesized stack %v ill-formed: %v", stack, err)
	}
	if !got.Has(P6) {
		t.Fatalf("synthesized stack %v provides %v, missing P6", stack, got)
	}
	t.Logf("synthesized for P6: %s (cost %d)", strings.Join(stack, ":"), mustCost(t, stack))
}

func TestSynthesizeIsMinimal(t *testing.T) {
	// For P3|P4 over P1 the unique minimal stack is NAK:COM.
	stack, err := Synthesize(P1, P3|P4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stack) != 2 || stack[0] != "NAK" || stack[1] != "COM" {
		t.Fatalf("synthesized %v, want [NAK COM]", stack)
	}
}

func TestSynthesizeEveryProperty(t *testing.T) {
	// Every single property (except P1, which is the network's) must
	// be synthesizable from a P1 network.
	for i := 2; i <= 16; i++ {
		p := Set(1) << uint(i-1)
		stack, err := Synthesize(P1, p, nil)
		if err != nil {
			t.Errorf("P%d unsynthesizable: %v", i, err)
			continue
		}
		got, err := Derive(P1, stack)
		if err != nil || !got.Has(p) {
			t.Errorf("P%d: synthesized stack %v broken: %v %v", i, stack, got, err)
		}
	}
}

func TestSynthesizeImpossible(t *testing.T) {
	// Nothing can be built over an empty network.
	if _, err := Synthesize(0, P3, nil); err == nil {
		t.Error("synthesized a stack over a property-free network")
	}
}

// Property: every synthesized stack is well-formed and sufficient, for
// random goal sets restricted to synthesizable properties.
func TestQuickSynthesizeSound(t *testing.T) {
	synthesizable := P2 | P3 | P4 | P5 | P6 | P7 | P8 | P9 | P10 | P11 | P12 | P13 | P14 | P15 | P16
	f := func(raw uint16) bool {
		goal := Set(raw) & synthesizable
		stack, err := Synthesize(P1, goal, nil)
		if err != nil {
			return false
		}
		got, err := Derive(P1, stack)
		return err == nil && got.Has(goal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: derivation is monotone in the network: a richer network
// never breaks a stack that was well-formed on a poorer one.
func TestQuickDeriveMonotone(t *testing.T) {
	stacks := [][]string{
		ParseStack("NAK:COM"),
		ParseStack("FRAG:NAK:COM"),
		ParseStack("TOTAL:MBRSHIP:FRAG:NAK:COM"),
	}
	f := func(raw uint16, pick uint8) bool {
		net := P1 | Set(raw)
		stack := stacks[int(pick)%len(stacks)]
		base, err1 := Derive(P1, stack)
		rich, err2 := Derive(net, stack)
		if err1 != nil || err2 != nil {
			return false
		}
		return rich.Has(base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func mustCost(t *testing.T, stack []string) int {
	t.Helper()
	c, err := StackCost(stack)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
