package property

import (
	"strings"
	"testing"
)

// The error-path contract matters beyond these unit tests: the
// stackcheck analyzer re-runs Derive at analysis time and embeds its
// messages in diagnostics, so the wording (which layer, which missing
// properties) is load-bearing.

func TestDeriveUnknownLayer(t *testing.T) {
	//horus:stackcheck-ok — negative test: the rejection is the point
	_, err := Derive(P1, []string{"NOSUCH", "COM"})
	if err == nil {
		t.Fatal("unknown layer accepted")
	}
	if !strings.Contains(err.Error(), `unknown layer "NOSUCH"`) {
		t.Errorf("error %q does not name the unknown layer", err)
	}
}

func TestDeriveNamesUnmetRequirement(t *testing.T) {
	// TOTAL over bare COM: TOTAL requires membership (P8), virtual
	// synchrony (P9), stability (P15), and FIFO (P3); COM over P1
	// yields {P1,P10,P11}, so all four are missing. The error must
	// name the failing layer and the missing properties, not just
	// reject.
	//horus:stackcheck-ok — negative test: the rejection is the point
	_, err := Derive(P1, ParseStack("TOTAL:COM"))
	if err == nil {
		t.Fatal("TOTAL:COM accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "layer TOTAL requires") {
		t.Errorf("error %q does not name the failing layer", msg)
	}
	for _, p := range []string{"P3", "P8", "P9", "P15"} {
		if !strings.Contains(msg, p) {
			t.Errorf("error %q does not name missing %s", msg, p)
		}
	}
	if !strings.Contains(msg, "P10") || !strings.Contains(msg, "P11") {
		t.Errorf("error %q does not report what IS available", msg)
	}
}

func TestDeriveEmptyStack(t *testing.T) {
	// An empty stack is trivially well-formed: the top of the stack is
	// the network itself. Derive must hand the network's properties
	// through unchanged, not error.
	got, err := Derive(P1|P2, nil)
	if err != nil {
		t.Fatalf("empty stack rejected: %v", err)
	}
	if got != P1|P2 {
		t.Errorf("empty stack derived %v, want %v", got, P1|P2)
	}
}

func TestSynthesizeNoSolutionError(t *testing.T) {
	// Over a property-free network no layer's requirements are met;
	// the error must state both the network and the unreachable goal.
	_, err := Synthesize(0, P3, nil)
	if err == nil {
		t.Fatal("synthesized a stack over a property-free network")
	}
	msg := err.Error()
	if !strings.Contains(msg, "no stack") || !strings.Contains(msg, "P3") {
		t.Errorf("error %q does not state the unreachable goal", msg)
	}
}

func TestSynthesizeAlreadySatisfied(t *testing.T) {
	// A goal the network already provides needs no layers at all.
	stack, err := Synthesize(P1, P1, nil)
	if err != nil {
		t.Fatalf("trivial synthesis failed: %v", err)
	}
	if len(stack) != 0 {
		t.Errorf("trivial synthesis produced %v, want empty stack", stack)
	}
}

func TestSynthesizeRestrictedCandidates(t *testing.T) {
	// With the candidate pool cut down to COM alone, goals past COM's
	// offering must fail even though Table 3 could reach them.
	com, err := Spec("COM")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(P1, P3, []LayerSpec{com}); err == nil {
		t.Error("synthesized FIFO from COM alone")
	}
}

func TestStackCostUnknownLayer(t *testing.T) {
	//horus:stackcheck-ok — negative test: the rejection is the point
	if _, err := StackCost([]string{"COM", "BOGUS"}); err == nil {
		t.Error("StackCost accepted an unknown layer")
	} else if !strings.Contains(err.Error(), `"BOGUS"`) {
		t.Errorf("error %q does not name the unknown layer", err)
	}
}
