package property

import "fmt"

// LayerSpec is one row of Table 3: what a layer requires from the
// communication underneath it, what it provides, which properties it
// passes through (inherits), and a rough cost used by minimal-stack
// synthesis (per-message header bytes plus bookkeeping, normalized).
type LayerSpec struct {
	Name     string
	Requires Set
	Provides Set
	Inherits Set
	Cost     int

	// FastCast records whether the layer's implementation compiles into
	// the §10 cast fast path (core.CastCompiler). It is not a property
	// in the Table 3 calculus — compiled and reference paths are
	// observably identical — but it rides the table so tooling can
	// predict, from a constant stack expression alone, whether the
	// compiled plan will engage (see FastCastable).
	FastCast bool
}

// Reconstruction notes (see DESIGN.md §4): the scanned Table 3 is OCR
// noisy, so this matrix is rebuilt from each layer's prose description
// and fixed so the §7 worked example derives exactly
// {P3,P4,P6,P8,P9,P10,P11,P12,P15} from a P1 network. Deviations:
//
//   - P1 is *not* inherited by reliability layers (NAK and above):
//     this is what removes "best effort" from the §7 result, which the
//     paper's own list confirms (no P1 in it). P2 (prioritized effort)
//     survives reliability — NAK over NNAK keeps priorities.
//   - TSTAMP is added as the provider of P13, which Table 3 requires
//     (ORDER(causal)) but never provides.
//   - MERGE's OCR row shows a requirement on P1, unsatisfiable above
//     NAK under the inheritance rule above; it is dropped.
//   - CHKSUM/SIGN/CRYPT/COMPRESS/FC/TRACE/ACCOUNT/MLOG are §2 and
//     Figure 1 protocol types implemented in this library; they get
//     rows so stacks using them can be checked, though the paper's
//     table omits them.

// reliable is the inheritance mask of layers that replace best-effort
// delivery with reliable delivery.
const reliable = All &^ P1

// Table3 is the reconstructed layer matrix, bottom-most layers first.
var Table3 = []LayerSpec{
	{Name: "COM", Requires: P1, Provides: P10 | P11, Inherits: All, Cost: 1, FastCast: true},
	{Name: "NFRAG", Requires: P1 | P10 | P11, Provides: P12, Inherits: All, Cost: 2},
	{Name: "NAK", Requires: P1 | P10 | P11, Provides: P3 | P4, Inherits: reliable, Cost: 3, FastCast: true},
	{Name: "NNAK", Requires: P1 | P10 | P11, Provides: P2, Inherits: All, Cost: 2},
	{Name: "FRAG", Requires: P3 | P4 | P10 | P11, Provides: P12, Inherits: reliable, Cost: 2, FastCast: true},
	{Name: "MBRSHIP", Requires: P3 | P4 | P10 | P11 | P12, Provides: P8 | P9 | P15, Inherits: reliable, Cost: 5, FastCast: true},
	{Name: "BMS", Requires: P3 | P4 | P10 | P11 | P12, Provides: P8 | P15, Inherits: reliable, Cost: 3},
	{Name: "VSS", Requires: P3 | P8 | P10 | P11 | P12 | P14 | P15, Provides: P9, Inherits: reliable, Cost: 2},
	{Name: "FLUSH", Requires: P3 | P4 | P8 | P10 | P11 | P12 | P14 | P15, Provides: P9, Inherits: reliable, Cost: 3},
	{Name: "STABLE", Requires: P3 | P4 | P8 | P10 | P11 | P12, Provides: P14, Inherits: reliable, Cost: 2},
	{Name: "PINWHEEL", Requires: P3 | P8 | P9 | P10 | P15, Provides: P14, Inherits: reliable, Cost: 1},
	{Name: "TOTAL", Requires: P3 | P8 | P9 | P15, Provides: P6, Inherits: reliable, Cost: 3},
	{Name: "TSTAMP", Requires: P3 | P4 | P9 | P15, Provides: P13, Inherits: reliable, Cost: 2},
	{Name: "CAUSAL", Requires: P3 | P8 | P9 | P13 | P15, Provides: P5, Inherits: reliable, Cost: 2},
	{Name: "SAFE", Requires: P3 | P8 | P9 | P14 | P15, Provides: P7, Inherits: reliable, Cost: 2},
	{Name: "MERGE", Requires: P3 | P4 | P8 | P9 | P10 | P11 | P12 | P15, Provides: P16, Inherits: reliable, Cost: 1},
	// HBEAT is placement-agnostic: it runs over raw best effort (P1) or
	// over reliable FIFO (P3,P4) equally well — its heartbeats are
	// periodic and loss-tolerant by construction. The calculus cannot
	// express "P1 or better", so it requires nothing; it transforms no
	// traffic and inherits everything.
	{Name: "HBEAT", Requires: 0, Provides: 0, Inherits: All, Cost: 1, FastCast: true},
	{Name: "CHKSUM", Requires: P1, Provides: 0, Inherits: All, Cost: 1, FastCast: true},
	{Name: "SIGN", Requires: P1, Provides: 0, Inherits: All, Cost: 2},
	{Name: "CRYPT", Requires: P1, Provides: 0, Inherits: All, Cost: 3},
	{Name: "COMPRESS", Requires: P1, Provides: 0, Inherits: All, Cost: 2},
	{Name: "FC", Requires: P3 | P4 | P11, Provides: 0, Inherits: reliable, Cost: 1},
	// ADAPT regulates application traffic on graded suspicion and the
	// fabric's egress ledger (see package adapt). Like FC it needs
	// reliable FIFO multicast beneath it — pacing and shedding are only
	// meaningful when what it admits is actually delivered — and adds
	// no property of its own: a shed cast is announced as a
	// LOST_MESSAGE, so the delivery contract of the stack beneath is
	// preserved for everything admitted.
	{Name: "ADAPT", Requires: P3 | P4 | P11, Provides: 0, Inherits: reliable, Cost: 1},
	{Name: "GKEY", Requires: P9 | P15, Provides: 0, Inherits: reliable, Cost: 3},
	// SWITCH is the run-time reconfiguration fence (package switchp).
	// It needs virtually synchronous reliable multicast beneath it: its
	// PROPOSE/QUIESCED/READY/COMMIT/ABORT control rounds are ordinary
	// casts whose all-or-nothing delivery within a view (P9) is what
	// makes the commit decision uniform, and FIFO (P3) is what makes a
	// QUIESCED marker a communication-closed cut (it cannot overtake the
	// data it fences). It adds no property of its own — the properties
	// of the managed segment above it are derived per epoch, against
	// SegmentBase.
	{Name: "SWITCH", Requires: P3 | P4 | P8 | P9 | P15, Provides: 0, Inherits: reliable, Cost: 2},
	{Name: "TRACE", Requires: 0, Provides: 0, Inherits: All, Cost: 1},
	{Name: "ACCOUNT", Requires: 0, Provides: 0, Inherits: All, Cost: 1},
	{Name: "MLOG", Requires: 0, Provides: 0, Inherits: All, Cost: 1},
}

// SegmentBase is the property set a SWITCH-managed segment may assume
// from the stack beneath the reconfiguration fence: exactly what the
// canonical base MBRSHIP:HBEAT:NAK:COM yields from a P1 network. Static
// checking (horus-vet's stackcheck) derives constant segment targets
// against this set, so "TOTAL:COM" — a segment smuggling a raw-network
// layer above the fence — is rejected at analysis time. The run-time
// engine re-derives against the *actual* layers below the fence before
// any switch moves, so a stack with a richer or poorer base is still
// checked exactly.
const SegmentBase = P3 | P4 | P8 | P9 | P10 | P11 | P12 | P15

// Spec returns the named layer's row, or an error.
func Spec(name string) (LayerSpec, error) {
	for _, s := range Table3 {
		if s.Name == name {
			return s, nil
		}
	}
	return LayerSpec{}, fmt.Errorf("property: unknown layer %q", name)
}

// FastCastable reports whether a stack made of the named layers (top
// first, as in stackreg expressions) compiles into the §10 cast fast
// path: every layer must carry the FastCast flag, and the bottom layer
// must be COM, the only transmitting row. An unknown name is
// conservatively not fast-castable. This mirrors core.compileCastPlan's
// structural checks without touching layer instances, so static
// tooling (stackcheck) can flag constant stacks that silently lose the
// compiled plan.
func FastCastable(names []string) bool {
	if len(names) == 0 || names[len(names)-1] != "COM" {
		return false
	}
	for _, n := range names {
		s, err := Spec(n)
		if err != nil || !s.FastCast {
			return false
		}
	}
	return true
}

// Names returns the names of all rows in table order.
func Names() []string {
	out := make([]string, len(Table3))
	for i, s := range Table3 {
		out[i] = s.Name
	}
	return out
}
