// Package property implements the paper's §6 protocol-property
// algebra: the P1–P16 property list of Table 4, the
// Requires/Inherits/Provides matrix of Table 3, well-formedness
// checking of stacks, property derivation ("what does this stack
// give me over this network?"), and minimal-stack synthesis ("given a
// set of required properties, construct an appropriate stack").
//
// A stack is well-formed if, for each layer, all its required
// properties are guaranteed by the stack underneath it — provided by
// the layer immediately below or inherited from an even lower layer.
// Given a cost per layer, a minimal well-formed stack can be found;
// "rather than looking at this as stacking protocols on top of each
// other, a different interpretation is that Horus actually builds a
// single protocol for the particular application on the fly."
package property

import (
	"fmt"
	"strings"
)

// Set is a bitmask over the properties P1..P16 of Table 4.
type Set uint32

// The protocol properties of Table 4.
const (
	P1  Set = 1 << iota // best effort delivery
	P2                  // prioritized effort delivery
	P3                  // FIFO unicast delivery
	P4                  // FIFO multicast delivery
	P5                  // causal delivery
	P6                  // totally ordered delivery
	P7                  // safe delivery
	P8                  // virtually semi-synchronous delivery
	P9                  // virtually synchronous delivery
	P10                 // byte re-ordering detection
	P11                 // source address
	P12                 // large messages
	P13                 // causal timestamps
	P14                 // stability information
	P15                 // consistent views
	P16                 // automatic view merging
)

// All is the union of every property.
const All Set = 1<<16 - 1

// ExternalViews is the property contribution of an external membership
// service driving every member through the view downcall (Table 1
// view / Group.InstallView; paper §5's "membership can be provided by
// an external service"): views arrive consistent (P15), virtually
// (semi-)synchronously agreed (P8, P9) — decided outside the stack
// rather than by an MBRSHIP layer inside it. Stacks over a substrate
// of P1|ExternalViews may therefore place view-consuming layers
// (TOTAL, SAFE, PINWHEEL, ...) without MBRSHIP below, which is how
// the cluster-scale load harness mass-constructs hundreds of groups
// without paying a merge/flush dance per group. The caller takes on
// the service's obligation: install the same view at every member
// before traffic flows.
const ExternalViews Set = P8 | P9 | P15

// Descriptions holds Table 4: the name of each property.
var Descriptions = map[Set]string{
	P1:  "best effort delivery",
	P2:  "prioritized effort delivery",
	P3:  "FIFO unicast delivery",
	P4:  "FIFO multicast delivery",
	P5:  "causal delivery",
	P6:  "totally ordered delivery",
	P7:  "safe delivery",
	P8:  "virtually semi-synchronous delivery",
	P9:  "virtually synchronous delivery",
	P10: "byte re-ordering detection",
	P11: "source address",
	P12: "large messages",
	P13: "causal timestamps",
	P14: "stability information",
	P15: "consistent views",
	P16: "automatic view merging",
}

// Has reports whether s contains every property in p.
func (s Set) Has(p Set) bool { return s&p == p }

// Union returns s ∪ p.
func (s Set) Union(p Set) Set { return s | p }

// Minus returns s \ p.
func (s Set) Minus(p Set) Set { return s &^ p }

// Each calls fn for each individual property in ascending order.
func (s Set) Each(fn func(Set)) {
	for i := 0; i < 16; i++ {
		p := Set(1) << uint(i)
		if s&p != 0 {
			fn(p)
		}
	}
}

// Count returns the number of properties in the set.
func (s Set) Count() int {
	n := 0
	s.Each(func(Set) { n++ })
	return n
}

// Index returns i for the property Pi, or 0 for a non-singleton set.
func (s Set) Index() int {
	for i := 1; i <= 16; i++ {
		if s == Set(1)<<uint(i-1) {
			return i
		}
	}
	return 0
}

// String renders "{P3,P4,P10}".
func (s Set) String() string {
	var names []string
	s.Each(func(p Set) { names = append(names, fmt.Sprintf("P%d", p.Index())) })
	return "{" + strings.Join(names, ",") + "}"
}

// ParseSet parses "P3,P4" or "{P3, P4}" into a Set.
func ParseSet(text string) (Set, error) {
	text = strings.Trim(strings.TrimSpace(text), "{}")
	if text == "" {
		return 0, nil
	}
	var s Set
	for _, tok := range strings.Split(text, ",") {
		tok = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(tok), "P"))
		var i int
		if _, err := fmt.Sscanf(tok, "%d", &i); err != nil || i < 1 || i > 16 {
			return 0, fmt.Errorf("property: bad property %q", tok)
		}
		s |= Set(1) << uint(i-1)
	}
	return s, nil
}
