// Package analysistest runs an analyzer over fixture packages under a
// testdata directory and checks its diagnostics against expectations
// written in the fixtures themselves, mirroring the x/tools harness
// of the same name.
//
// Fixtures live in testdata/src/<importpath>/*.go. A fixture line
// that should be flagged carries a trailing comment of the form
//
//	code() // want "regexp"
//
// with one quoted regular expression per expected diagnostic on that
// line. Every reported diagnostic must match a want, and every want
// must be matched, or the test fails. Fixture packages may import
// each other, real module packages, and the standard library.
package analysistest

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"horus/internal/analysis"
	"horus/internal/analysis/load"
)

// expectation is one // want regexp at one file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE captures the quoted patterns of a want comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the fixture packages named by pkgpaths from
// testdata/src/, applies the analyzer to each, and reports any
// mismatch between diagnostics and // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	overlay, err := discoverOverlay(srcRoot)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, path := range pkgpaths {
		if _, ok := overlay[path]; !ok {
			t.Fatalf("analysistest: no fixture package %q under %s", path, srcRoot)
		}
	}
	pkgs, err := load.Load(load.Config{Dir: ".", Overlay: overlay}, pkgpaths...)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("analysistest: fixture %s: type error: %v", pkg.PkgPath, terr)
		}
		wants := collectWants(t, pkg.Fset, pkg.Files)
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Errorf("analysistest: %s on %s: %v", a.Name, pkg.PkgPath, err)
			continue
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !matchWant(wants, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
			}
		}
	}
}

// discoverOverlay maps every directory under srcRoot containing .go
// files to its import path relative to srcRoot.
func discoverOverlay(srcRoot string) (map[string]string, error) {
	overlay := make(map[string]string)
	err := filepath.WalkDir(srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(srcRoot, dir)
		if err != nil {
			return err
		}
		overlay[filepath.ToSlash(rel)] = dir
		return nil
	})
	if err != nil {
		return nil, err
	}
	return overlay, nil
}

// collectWants parses the // want comments of all fixture files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, raw, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: pat,
					})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the quoted strings of a want comment tail —
// double-quoted with backslash escapes, or backquoted raw strings
// (the friendlier form for regexps) — returning them still quoted.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexAny(s, "\"`")
		if i < 0 {
			return out
		}
		quote := s[i]
		j := i + 1
		for j < len(s) {
			if quote == '"' && s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == quote {
				break
			}
			j++
		}
		if j >= len(s) {
			return out
		}
		out = append(out, s[i:j+1])
		s = s[j+1:]
	}
}

// matchWant marks and reports the first unmatched expectation at
// file:line whose regexp matches msg.
func matchWant(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.matched || w.line != line || w.file != file {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
