// Package annot parses the //horus: annotation comments the horus-vet
// analyzers honor. Two forms exist:
//
//   - File-level markers ("//horus:wallclock — <reason>") opt a whole
//     file out of an analyzer. They must appear in the file's header —
//     at or above the package clause — so a reader sees the exemption
//     before any code, and a marker buried mid-file cannot silently
//     exempt new escapes.
//   - Line-level markers ("//horus:stackcheck-ok — <reason>") suppress
//     one finding, on the same line as the flagged expression or on
//     the line directly above it. Negative tests that feed the
//     property algebra deliberately malformed stacks use these.
//
// Every marker should carry a reason after the tag; the parsers only
// match the tag, but the reason is the contract with the reviewer.
package annot

import (
	"go/ast"
	"go/token"
	"strings"
)

// prefix is the shared namespace of all marker comments.
const prefix = "//horus:"

// hasTag reports whether a single comment carries the given marker
// tag, e.g. tag "wallclock" matches "//horus:wallclock" optionally
// followed by whitespace and a reason.
func hasTag(c *ast.Comment, tag string) bool {
	text := c.Text
	if !strings.HasPrefix(text, prefix) {
		return false
	}
	rest := strings.TrimPrefix(text, prefix)
	if !strings.HasPrefix(rest, tag) {
		return false
	}
	rest = rest[len(tag):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// FileMarker reports whether file carries the marker tag in its
// header: in the package doc comment or in any comment group that
// ends before the package name.
func FileMarker(file *ast.File, tag string) bool {
	if file.Doc != nil {
		for _, c := range file.Doc.List {
			if hasTag(c, tag) {
				return true
			}
		}
	}
	for _, group := range file.Comments {
		if group.End() > file.Name.Pos() {
			break
		}
		for _, c := range group.List {
			if hasTag(c, tag) {
				return true
			}
		}
	}
	return false
}

// LineMarker reports whether the line holding pos, or the line
// directly above it, carries the marker tag as a comment in file.
func LineMarker(fset *token.FileSet, file *ast.File, pos token.Pos, tag string) bool {
	line := fset.Position(pos).Line
	for _, group := range file.Comments {
		for _, c := range group.List {
			cl := fset.Position(c.Pos()).Line
			if (cl == line || cl == line-1) && hasTag(c, tag) {
				return true
			}
		}
	}
	return false
}
