// Package analysis is a self-contained reimplementation of the core
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass,
// Diagnostic — built on the standard library only, so the repo's
// static checks need no module dependencies. The API is deliberately
// a subset of the upstream one: an analyzer written against this
// package ports to x/tools by changing one import path.
//
// Five analyzers live beneath this package and together form the
// horus-vet suite (run by cmd/horus-vet, gating in CI):
//
//   - stackcheck re-runs the §6 property algebra (Table 3
//     well-formedness) over every constant stack literal handed to
//     stackreg.Build, property.Derive and friends, so a malformed
//     stack in cmd/, examples/ or a test fails `go vet`-style instead
//     of at run time.
//   - detlint enforces the determinism contract of the sim-driven
//     packages: no wall-clock reads, no global math/rand, no bare
//     goroutines outside files annotated //horus:wallclock — including
//     reads laundered through method values, defers, and func-typed
//     struct fields, traced via the summary engine.
//   - hcpilint flags HCPI-discipline violations in handlers: invoking
//     an upcall or callback while a mutex is held (the
//     callback-while-locked deadlock shape), and header push/pop
//     traffic flowing against the direction the event is forwarded.
//   - purecast proves the §10 fast-path purity contract: every
//     Ready/Fits/WidthFn hook of a compiled cast must be free of side
//     effects through arbitrary call depth (summary-engine fixpoint),
//     with the offending statement and call chain in the diagnostic.
//   - ownlint tracks pooled message ownership path-sensitively:
//     use-after-Release, double-Release (including branch-divergent
//     releases), and escapes of a pooled message into retained
//     storage or a goroutine.
//
// The shared interprocedural backbone is internal/analysis/summary: a
// bottom-up effect-summary engine over the type-resolved call graph of
// one package unit.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Unlike the x/tools original it
// carries no Requires graph or Facts — the horus-vet analyzers are
// independent per-package passes.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test output.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run applies the analyzer to one package unit. It reports
	// problems via pass.Report / pass.Reportf and returns an error
	// only for internal failures (not for findings).
	Run func(pass *Pass) error
}

// Pass is one application of an analyzer to one type-checked package
// unit (a package, its internal test variant, or an external _test
// package).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver and the test
	// harness install their own sinks.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one position. Chain, when set, is the
// call path (outermost call first, rendered one hop per element) by
// which an interprocedural analyzer reached the effect; the -json
// driver output carries it verbatim.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	Chain    []string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Callee resolves the called function or method of a call expression,
// or nil when the callee is not a named function (e.g. a func-typed
// variable or a type conversion).
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// IsTestFile reports whether pos lies in a *_test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
