// Package stackuse is the stackcheck fixture: constant stack
// literals, well-formed and malformed, fed to every entry point the
// analyzer watches.
package stackuse

import (
	"horus/internal/layers/switchp"
	"horus/internal/property"
	"horus/internal/stackreg"
)

// sevenStack is the paper's §7 worked example — well-formed over a
// best-effort network, and a named constant so the fixture also pins
// cross-constant resolution.
const sevenStack = "TOTAL:MBRSHIP:FRAG:NAK:COM"

func accepted() {
	_, _ = stackreg.Build(sevenStack, property.P1)
	_ = stackreg.MustBuild("MBRSHIP:FRAG:NAK:COM", property.P1)
	_, _ = property.Derive(property.P1, property.ParseStack(sevenStack))
	_, _ = property.Derive(property.P1, []string{"NAK", "COM"})
	_ = property.WellFormed(property.P1, property.ParseStack("FRAG:NAK:COM"))
	_, _ = property.StackCost([]string{"TOTAL", "COM"}) // cost needs no well-formedness
	_, _ = stackreg.Build(nonConstant(), property.P1)   // not resolvable: left to run time
}

func flagged() {
	_, _ = stackreg.Build("TOTAL:COM", property.P1)                    // want `malformed stack "TOTAL:COM" over network \{P1\}.*layer TOTAL requires`
	_ = stackreg.MustBuild("TOTAL:MBRSHIP:FRAG:NAK:XCOM", property.P1) // want `unknown layer "XCOM"`
	_, _ = stackreg.Build("", property.P1)                             // want `empty stack description`
	_, _ = property.Derive(property.P1, []string{"TOTAL", "COM"})      // want `malformed stack "TOTAL:COM".*layer TOTAL requires`
	_, _ = property.Derive(property.P1, []string{"total", "com"})      // want `unknown layer "total"`
	_ = property.WellFormed(0, property.ParseStack("COM"))             // want `layer COM requires \{P1\}`
	_, _ = property.StackCost([]string{"COM", "BOGUS"})                // want `unknown layer "BOGUS"`
}

// switchTargets feeds constant segment descriptions to the SWITCH
// reconfiguration API: targets are derived over property.SegmentBase
// with the SWITCH row beneath, so a segment smuggling a raw-network
// layer above the fence is an analysis-time finding, not a runtime
// abort.
func switchTargets(sw *switchp.Switch) {
	_ = sw.RequestSwitch("TOTAL")       // FIFO→TOTAL upgrade: well-formed over the base
	_ = sw.RequestSwitch("ADAPT")       // load shedding over the base: also fine
	_ = sw.RequestSwitch("")            // empties the segment: documented, legal
	_ = sw.RequestSwitch(nonConstant()) // not resolvable: left to run time
	_ = switchp.WithInitialSegment("ADAPT")

	_ = sw.RequestSwitch("TOTAL:COM")          // want `ill-formed switch target "TOTAL:COM".*layer COM requires \{P1\}`
	_ = sw.RequestSwitch("COMPRESS:TOTAL")     // want `ill-formed switch target "COMPRESS:TOTAL".*layer COMPRESS requires \{P1\}`
	_ = sw.RequestSwitch("TOTAL:XCOM")         // want `unknown layer "XCOM"`
	_ = switchp.WithInitialSegment("VSS")      // want `ill-formed switch target "VSS".*layer VSS requires \{P14\}`
	_ = switchp.WithInitialSegment(sevenStack) // want `ill-formed switch target .*layer COM requires \{P1\}`
}

// fastPath pins the §10 interaction: the compiled cast plan rides the
// FastCast column of Table 3 but never enters the derivation, so a
// fast-castable constant stack is accepted or rejected by exactly the
// same algebra — and a rejected one gets the ordering spelled out.
func fastPath() {
	// Well-formed and fully fast-castable: the plan will compile at
	// build time, and the analyzer has nothing to add.
	_ = stackreg.MustBuild("HBEAT:CHKSUM:COM", property.P1)
	_ = stackreg.MustBuild("MBRSHIP:FRAG:NAK:CHKSUM:COM", property.P1)
	// Fast-castable but ill-formed over the bare network: still a
	// finding, with the note that the plan never engages.
	_, _ = property.Derive(0, []string{"NAK", "COM"}) // want `malformed stack "NAK:COM".*layer COM requires.*never engages for an ill-formed stack`
	// Ill-formed and not fast-castable (TOTAL has no compiled form):
	// the plain finding, no fast-path note.
	_ = property.WellFormed(0, []string{"TOTAL", "MBRSHIP", "FRAG", "NAK", "COM"}) // want `malformed stack "TOTAL:MBRSHIP:FRAG:NAK:COM" over network \{\}:.*layer COM requires \{P1\}.*beneath it$`
}

func suppressed() {
	// Negative example kept on purpose; the marker documents why.
	_, _ = stackreg.Build("TOTAL:COM", property.P1) //horus:stackcheck-ok — fixture: demonstrates the line-level opt-out
}

func nonConstant() string { return "COM" }
