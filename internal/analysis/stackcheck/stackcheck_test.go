package stackcheck_test

import (
	"testing"

	"horus/internal/analysis/analysistest"
	"horus/internal/analysis/stackcheck"
)

func TestStackCheck(t *testing.T) {
	analysistest.Run(t, stackcheck.Analyzer, "stackuse")
}
