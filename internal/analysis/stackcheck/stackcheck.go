// Package stackcheck verifies, at analysis time, every stack literal
// the type checker can resolve to a constant. The §6 property algebra
// exists so that stack correctness is decidable before anything runs;
// this analyzer closes the gap between that promise and
// property.Derive only firing inside stackreg.Build at run time. It
// finds call sites of the stack-consuming entry points
// (stackreg.Build/MustBuild, property.Derive/WellFormed/ParseStack/
// StackCost), recovers the stack description when it is a compile-time
// constant — a literal, a named constant from any package, or a
// []string of constants — and re-runs the Table 3 well-formedness
// derivation, reporting the offending literal and the first unmet
// requirement.
//
// The §10 compiled cast plan does not enter the derivation: FastCast
// is an implementation column of Table 3, not a property, so a stack
// that compiles a plan satisfies exactly the same algebra as one that
// does not. The analyzer makes that ordering explicit — when an
// ill-formed constant stack happens to be fast-castable, the finding
// notes that the plan is derived only after Table 3 passes, so the
// fast path can never legitimize a malformed composition.
//
// Negative tests that exercise the algebra's error paths mark their
// deliberately malformed literals with a trailing
// "//horus:stackcheck-ok — <reason>" comment.
package stackcheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"horus/internal/analysis"
	"horus/internal/analysis/annot"
	"horus/internal/property"
)

// Analyzer is the stackcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "stackcheck",
	Doc: "re-run the Table 3 well-formedness derivation over every " +
		"constant stack literal passed to stackreg.Build, property.Derive " +
		"and friends",
	Run: run,
}

// suppressTag is the line-level opt-out for intentional negative cases.
const suppressTag = "stackcheck-ok"

// callSpec describes how one stack-consuming function lays out its
// arguments: which one is the stack (string description or []string)
// and which one, if any, is the network property set.
type callSpec struct {
	stackArg  int  // index of the stack argument
	stackList bool // stack is []string rather than a string description
	netArg    int  // index of the network Set argument, -1 if none

	// segment marks SWITCH reconfiguration targets: the description
	// names the segment above the fence, "" legally empties it, and
	// well-formedness is derived over property.SegmentBase with the
	// SWITCH row beneath — the static mirror of the run-time
	// validation in switchp, so an ill-formed constant target is a
	// finding here instead of a runtime abort. (The engine still
	// re-derives over the *actual* below-fence layers, which may be
	// richer or poorer than the canonical base.)
	segment bool
}

// targets maps "importpath.Func" to its argument layout. Methods are
// keyed the same way — the selector's *types.Func carries the
// defining package.
var targets = map[string]callSpec{
	"horus/internal/stackreg.Build":     {stackArg: 0, netArg: 1},
	"horus/internal/stackreg.MustBuild": {stackArg: 0, netArg: 1},
	"horus/internal/property.Derive":    {stackArg: 1, stackList: true, netArg: 0},
	"horus/internal/property.WellFormed": {
		stackArg: 1, stackList: true, netArg: 0,
	},
	"horus/internal/property.ParseStack": {stackArg: 0, netArg: -1},
	"horus/internal/property.StackCost":  {stackArg: 0, stackList: true, netArg: -1},
	"horus/internal/layers/switchp.RequestSwitch": {
		stackArg: 0, netArg: -1, segment: true,
	},
	"horus/internal/layers/switchp.WithInitialSegment": {
		stackArg: 0, netArg: -1, segment: true,
	},
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, file, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, file *ast.File, call *ast.CallExpr) {
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	spec, ok := targets[fn.Pkg().Path()+"."+fn.Name()]
	if !ok || len(call.Args) <= spec.stackArg {
		return
	}
	if annot.LineMarker(pass.Fset, file, call.Pos(), suppressTag) {
		return
	}

	stackExpr := call.Args[spec.stackArg]
	var names []string
	var display string
	if spec.stackList {
		names, display, ok = constStackList(pass, stackExpr)
	} else {
		var desc string
		desc, ok = constString(pass, stackExpr)
		if ok {
			names = property.ParseStack(desc)
			display = fmt.Sprintf("%q", desc)
		}
	}
	if !ok {
		return // not a compile-time constant; run-time checking applies
	}

	pos := stackExpr.Pos()
	if len(names) == 0 {
		// An empty switch target is the documented way to strip the
		// segment back to the base personality, not a mistake.
		if !spec.segment {
			pass.Reportf(pos, "empty stack description %s passed to %s", display, fn.Name())
		}
		return
	}
	for _, name := range names {
		if _, err := property.Spec(name); err != nil {
			pass.Reportf(pos, "stack %s names unknown layer %q (no Table 3 row)", display, name)
			return
		}
	}

	if spec.segment {
		full := append(append([]string(nil), names...), "SWITCH")
		if _, err := property.Derive(property.SegmentBase, full); err != nil {
			pass.Reportf(pos, "ill-formed switch target %s over the segment base %v: %s",
				display, property.SegmentBase, strings.TrimPrefix(err.Error(), "property: "))
		}
		return
	}

	if spec.netArg < 0 || len(call.Args) <= spec.netArg {
		return
	}
	net, ok := constSet(pass, call.Args[spec.netArg])
	if !ok {
		return // network set unknown at analysis time
	}
	if _, err := property.Derive(net, names); err != nil {
		note := ""
		if property.FastCastable(names) {
			// Every layer advertises a compiled cast form, but plan
			// derivation runs strictly after the Table 3 gate in
			// stackreg.Build — name the ordering so nobody reads the
			// fast path as a second way in.
			note = " (stack is fast-castable, but the §10 compiled plan is derived only after Table 3 passes — it never engages for an ill-formed stack)"
		}
		pass.Reportf(pos, "malformed stack %s over network %v: %s%s",
			display, net, strings.TrimPrefix(err.Error(), "property: "), note)
	}
}

// constString resolves expr to a compile-time string constant.
func constString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// constSet resolves expr to a property.Set constant (an untyped or
// typed integer constant expression, e.g. property.P1|property.P10).
func constSet(pass *analysis.Pass, expr ast.Expr) (property.Set, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, ok := constant.Uint64Val(tv.Value)
	if !ok {
		return 0, false
	}
	return property.Set(v), true
}

// constStackList resolves expr to a list of layer names: either a
// []string composite literal of string constants or a nested
// property.ParseStack call on a constant description.
func constStackList(pass *analysis.Pass, expr ast.Expr) ([]string, string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		if _, ok := pass.TypesInfo.TypeOf(e).(*types.Slice); !ok {
			return nil, "", false
		}
		// Element names are kept verbatim: Derive does not normalize
		// case, so []string{"total"} really is an unknown layer.
		var names []string
		for _, elt := range e.Elts {
			s, ok := constString(pass, elt)
			if !ok {
				return nil, "", false
			}
			names = append(names, s)
		}
		return names, fmt.Sprintf("%q", strings.Join(names, ":")), true
	case *ast.CallExpr:
		fn := pass.Callee(e)
		if fn == nil || fn.Pkg() == nil ||
			fn.Pkg().Path() != "horus/internal/property" || fn.Name() != "ParseStack" ||
			len(e.Args) != 1 {
			return nil, "", false
		}
		desc, ok := constString(pass, e.Args[0])
		if !ok {
			return nil, "", false
		}
		return property.ParseStack(desc), fmt.Sprintf("%q", desc), true
	}
	return nil, "", false
}
