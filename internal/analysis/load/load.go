// Package load type-checks Go packages for the horus-vet analyzers
// without golang.org/x/tools. It shells out to `go list -export
// -deps -json` for package metadata and compiler export data (the
// build cache pays for itself: dependencies are imported from export
// data, never re-type-checked), parses the target packages' sources
// with go/parser, and type-checks them with go/types against a gc
// importer fed from the export files.
//
// The loader also supports an overlay — a map of import path to
// source directory — so the analysistest harness can type-check
// fixture packages under testdata/src/ that import each other, real
// module packages, and the standard library, all through the same
// resolver.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked unit handed to analyzers: a package's
// non-test sources, the package recompiled with its in-package test
// files, or an external _test package.
type Package struct {
	// PkgPath is the import path ("horus/internal/layers/com").
	PkgPath string
	// Unit distinguishes the three variants of one import path:
	// "" (the package proper), "test" (with in-package _test.go
	// files), "xtest" (the external foo_test package).
	Unit string
	Fset *token.FileSet
	// Files are the parsed sources of this unit, with comments.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-check errors; analyzers still
	// run over partially checked packages so one broken file does
	// not hide findings elsewhere.
	TypeErrors []error
}

// Config parameterizes Load.
type Config struct {
	// Dir is the directory go list runs in; it must lie inside the
	// module. Empty means the current directory.
	Dir string
	// Tests includes the "test" and "xtest" units of each matched
	// package.
	Tests bool
	// Overlay maps import paths to directories whose *.go files
	// form the package, bypassing go list. Fixture packages for
	// analysistest live here.
	Overlay map[string]string
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	DepOnly      bool
	Incomplete   bool
	Error        *struct{ Err string }
}

// resolver owns the fileset, the export-data index, and the overlay
// cache, and implements types.Importer for every type-check the
// loader performs.
type resolver struct {
	dir     string
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	gc      types.Importer
	overlay map[string]string // import path -> source dir
	cache   map[string]*types.Package
	pending map[string]bool // overlay cycle guard
}

func newResolver(dir string) *resolver {
	r := &resolver{
		dir:     dir,
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
		cache:   make(map[string]*types.Package),
		pending: make(map[string]bool),
	}
	r.gc = importer.ForCompiler(r.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := r.exports[path]
		if !ok {
			// Last-resort single lookup; pre-scans batch the
			// common cases into one go list run.
			if _, err := r.list(false, path); err != nil {
				return nil, err
			}
			if file, ok = r.exports[path]; !ok {
				return nil, fmt.Errorf("load: no export data for %q", path)
			}
		}
		return os.Open(file)
	})
	return r
}

// list runs go list -export over patterns and records export files.
// With deps it also walks the dependency closure. It returns the
// matched root packages in command order.
func (r *resolver) list(deps bool, patterns ...string) ([]*listedPackage, error) {
	args := []string{"list", "-e", "-export", "-json"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = r.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var roots []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Export != "" {
			r.exports[p.ImportPath] = p.Export
		}
		if !deps || !p.DepOnly {
			roots = append(roots, p)
		}
	}
	return roots, nil
}

// Import implements types.Importer: overlay packages are type-checked
// from source on first use, everything else comes from export data.
func (r *resolver) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := r.cache[path]; ok {
		return pkg, nil
	}
	if dir, ok := r.overlay[path]; ok {
		if r.pending[path] {
			return nil, fmt.Errorf("load: import cycle through overlay package %q", path)
		}
		r.pending[path] = true
		defer delete(r.pending, path)
		files, err := r.parseDir(dir, false)
		if err != nil {
			return nil, err
		}
		pkg, _, errs := r.check(path, files)
		if len(errs) > 0 {
			return pkg, fmt.Errorf("load: overlay package %q: %v", path, errs[0])
		}
		r.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := r.gc.Import(path)
	if err != nil {
		return nil, err
	}
	r.cache[path] = pkg
	return pkg, nil
}

// check type-checks one unit, collecting soft errors.
func (r *resolver) check(pkgpath string, files []*ast.File) (*types.Package, *types.Info, []error) {
	var soft []error
	conf := types.Config{
		Importer: r,
		Error:    func(err error) { soft = append(soft, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, _ := conf.Check(pkgpath, r.fset, files, info)
	return pkg, info, soft
}

// parseFiles parses named files from dir.
func (r *resolver) parseFiles(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(r.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// parseDir parses every .go file in dir, with or without _test.go
// files, in name order for determinism.
func (r *resolver) parseDir(dir string, tests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %v", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	return r.parseFiles(dir, names)
}

// prefetchImports batches export-data resolution for every import of
// the given files not already known, so per-import go list runs stay
// the exception.
func (r *resolver) prefetchImports(files []*ast.File) {
	seen := make(map[string]bool)
	var missing []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path == "unsafe" || path == "C" || seen[path] {
				continue
			}
			seen[path] = true
			if _, ok := r.exports[path]; ok {
				continue
			}
			if _, ok := r.overlay[path]; ok {
				continue
			}
			missing = append(missing, path)
		}
	}
	if len(missing) > 0 {
		// Errors surface later as "no export data" type errors on
		// the specific import.
		_, _ = r.list(true, missing...)
	}
}

// Load type-checks the packages matched by patterns (and, with
// cfg.Tests, their test variants). Patterns naming overlay packages
// load from the overlay; everything else goes through go list.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	r := newResolver(cfg.Dir)
	r.overlay = cfg.Overlay

	var overlayRoots, listPatterns []string
	for _, p := range patterns {
		if _, ok := cfg.Overlay[p]; ok {
			overlayRoots = append(overlayRoots, p)
		} else {
			listPatterns = append(listPatterns, p)
		}
	}

	var listed []*listedPackage
	if len(listPatterns) > 0 {
		var err error
		listed, err = r.list(true, listPatterns...)
		if err != nil {
			return nil, err
		}
	}

	var out []*Package
	addUnit := func(pkgpath, unit string, files []*ast.File) {
		r.prefetchImports(files)
		pkg, info, errs := r.check(pkgpath, files)
		// Only overlay packages enter the importer cache: listed
		// packages must keep importing each other through export
		// data, or two objects for one path (source-checked here,
		// export-imported elsewhere) would fail to unify and report
		// phantom type errors. Tests of a package P never create the
		// mismatch for P itself — a dependency of P's test files
		// importing P would be an import cycle.
		if _, isOverlay := r.overlay[pkgpath]; isOverlay && unit == "" {
			r.cache[pkgpath] = pkg
		}
		out = append(out, &Package{
			PkgPath: pkgpath, Unit: unit, Fset: r.fset,
			Files: files, Types: pkg, Info: info, TypeErrors: errs,
		})
	}

	for _, path := range overlayRoots {
		files, err := r.parseDir(cfg.Overlay[path], false)
		if err != nil {
			return nil, err
		}
		addUnit(path, "", files)
	}

	for _, lp := range listed {
		if lp.Error != nil && len(lp.GoFiles) == 0 {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			// Raw cgo sources don't type-check without the
			// generated glue; none exist in this module.
			continue
		}
		files, err := r.parseFiles(lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		addUnit(lp.ImportPath, "", files)

		if !cfg.Tests {
			continue
		}
		if len(lp.TestGoFiles) > 0 {
			testFiles, err := r.parseFiles(lp.Dir, lp.TestGoFiles)
			if err != nil {
				return nil, err
			}
			// The in-package test unit re-checks the package with
			// its test files; the cached export-data version keeps
			// serving other importers.
			addUnit(lp.ImportPath, "test", append(append([]*ast.File(nil), files...), testFiles...))
		}
		if len(lp.XTestGoFiles) > 0 {
			xFiles, err := r.parseFiles(lp.Dir, lp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			addUnit(lp.ImportPath+"_test", "xtest", xFiles)
		}
	}
	return out, nil
}
