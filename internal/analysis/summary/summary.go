// Package summary is the interprocedural backbone of the horus-vet
// suite: a bottom-up effect-summary engine over one type-checked
// package unit. For every function, method, and function literal it
// computes a conservative summary of the side effects the function may
// perform — writes through its receiver, its parameters, captured
// variables, globals, or values of unknown provenance; retention
// (escape) of its receiver or parameters; goroutine spawns; channel
// traffic; wall-clock and global-rand reads; and calls whose effects
// cannot be resolved at all. Summaries propagate through a
// type-resolved call graph by fixpoint over its strongly connected
// components, so an effect three helper-calls deep surfaces on the
// entry point with the full call chain attached.
//
// The engine is deliberately conservative where resolution runs out:
//
//   - Interface dispatch is never devirtualized; a call through an
//     interface method is CallUnknown.
//   - Calls through func-typed values (locals, struct fields, method
//     values) resolve against every value the package ever binds to
//     that variable or field; if any binding is unresolvable the call
//     is CallUnknown.
//   - Cross-package calls resolve against a small table of audited
//     stdlib behaviour (pure, mutates-argument, wall-clock,
//     global-rand) plus the caller-supplied Options.KnownPure set;
//     everything else is CallUnknown.
//   - defer runs the deferred call's effects in the same activation;
//     go adds SpawnGoroutine on top of the callee's effects.
//
// Aliasing is tracked with a per-function provenance lattice: a local
// variable assigned from a parameter field keeps the parameter root,
// so a write through it is a parameter mutation, while a write through
// a freshly allocated value stays local. Whatever the lattice cannot
// prove local is reported as MutateAlias — the engine never silently
// assumes purity.
//
// Consumers: purecast proves the §10 pass-1 hooks (Ready/Fits/WidthFn)
// side-effect-free through arbitrary call depth; ownlint follows
// pooled messages into callees via EscapeArg; detlint closes the
// laundering gap where wall-clock reads hide behind method values,
// defers, and function-typed struct fields.
package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"horus/internal/analysis"
)

// Kind classifies one effect a function may perform.
type Kind int

const (
	// MutateReceiver: a write through the function's receiver.
	MutateReceiver Kind = iota
	// MutateParam: a write through parameter Fact.Param.
	MutateParam
	// MutateCaptured: a write through a variable captured from an
	// enclosing function (closures mutating layer state).
	MutateCaptured
	// MutateGlobal: a write to package-level state.
	MutateGlobal
	// MutateAlias: a write through a value whose provenance the
	// engine cannot prove local — conservatively an external write.
	MutateAlias
	// EscapeArg: parameter Fact.Param (or the receiver, Param == -1)
	// is retained beyond the call: stored into external storage, sent
	// on a channel, or returned.
	EscapeArg
	// CallUnknown: a call whose effects cannot be resolved (interface
	// dispatch, unlisted cross-package function, opaque func value).
	CallUnknown
	// SpawnGoroutine: a go statement.
	SpawnGoroutine
	// ChanOp: a channel send, receive, or close.
	ChanOp
	// Wallclock: a banned time-package read (time.Now, time.Sleep, ...).
	Wallclock
	// GlobalRand: a draw from the process-global math/rand source.
	GlobalRand
)

var kindNames = [...]string{
	"mutates receiver", "mutates parameter", "mutates captured state",
	"mutates global state", "mutates aliased state", "retains argument",
	"calls unknown code", "spawns goroutine", "channel operation",
	"wall-clock read", "global rand draw",
}

func (k Kind) String() string { return kindNames[k] }

// Step is one call-chain hop: the call site and the callee's printable
// name.
type Step struct {
	Pos    token.Pos
	Callee string
}

// Fact is one effect in a function's summary. Pos is the originating
// statement or expression; Chain, outermost call first, is how the
// summarized function reaches it (empty for a local effect).
type Fact struct {
	Kind   Kind
	Param  int // parameter index for MutateParam/EscapeArg; -1 = receiver
	Pos    token.Pos
	Detail string
	Chain  []Step
	// target is the mutated object for MutateCaptured, so the effect
	// can be re-classified when lifted into the capturing function.
	target types.Object
}

// factKey dedups facts during the fixpoint: one fact per effect kind,
// parameter slot, and origin.
type factKey struct {
	kind  Kind
	param int
	pos   token.Pos
}

// FuncNode is one function, method, or function literal of the
// analyzed package.
type FuncNode struct {
	// Obj is the declared function object; nil for function literals.
	Obj *types.Func
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Name is printable: "(*Mbrship).Primary", "castDown", or
	// "func literal at <pos>".
	Name string
	// File is the file holding the function's body.
	File *ast.File

	body   *ast.BlockStmt
	pos    token.Pos
	end    token.Pos
	recv   *types.Var
	params []*types.Var

	facts map[factKey]*Fact
	calls []*callsite
	prov  map[*types.Var]rootSet

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
	scc            int
}

// Facts returns the function's summary, origin order unspecified.
func (n *FuncNode) Facts() []*Fact {
	out := make([]*Fact, 0, len(n.facts))
	for _, f := range n.facts {
		out = append(out, f)
	}
	return out
}

// Pos returns the function's declaration position.
func (n *FuncNode) Pos() token.Pos { return n.pos }

// rootSet is the provenance lattice element: which roots a value may
// point at (write) and which it may hold references to (hold ⊇ write).
type rootSet struct {
	write roots
	hold  roots
}

type roots struct {
	local, recv, captured, global, unknown bool
	params                                 []int
}

func (r *roots) addParam(i int) {
	for _, p := range r.params {
		if p == i {
			return
		}
	}
	r.params = append(r.params, i)
}

func (r *roots) union(o roots) bool {
	changed := false
	set := func(dst *bool, v bool) {
		if v && !*dst {
			*dst = true
			changed = true
		}
	}
	set(&r.local, o.local)
	set(&r.recv, o.recv)
	set(&r.captured, o.captured)
	set(&r.global, o.global)
	set(&r.unknown, o.unknown)
	for _, p := range o.params {
		n := len(r.params)
		r.addParam(p)
		if len(r.params) != n {
			changed = true
		}
	}
	return changed
}

func (r roots) external() bool {
	return r.recv || r.captured || r.global || r.unknown || len(r.params) > 0
}

func localRoots() roots { return roots{local: true} }

// callsite is one resolved-enough call inside a function body.
type callsite struct {
	pos  token.Pos
	desc string // printable callee for chains

	// Exactly one of callee / calleeLit is set for a direct
	// intra-package edge; bindingKey names a func-typed variable or
	// field whose bound values are resolved after collection.
	callee     *types.Func
	calleeLit  *ast.FuncLit
	bindingKey types.Object

	// recvCls / argCls are the provenance classes of the receiver
	// operand and arguments, frozen at collection time for lifting.
	recvCls rootSet
	argCls  []rootSet

	// viaValue marks a call through a func value (method value or
	// func-typed variable); receiver mapping degrades to MutateAlias.
	viaValue bool
}

// binding is one value assigned to a func-typed variable or field.
type binding struct {
	fn  *types.Func  // named function or method value target
	lit *ast.FuncLit // literal bound directly
	pos token.Pos
}

// Options tunes the engine.
type Options struct {
	// KnownPure marks cross-package functions and methods the caller
	// has audited as effect-free, keyed by types.Func.FullName, e.g.
	// "(*horus/internal/core.View).Size".
	KnownPure map[string]bool
}

// Engine holds the summaries of one package unit.
type Engine struct {
	pass *analysis.Pass
	opts Options

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	all   []*FuncNode

	// bindings maps func-typed variables and struct fields to every
	// value the package binds to them; opaque marks keys that also
	// received an unresolvable value.
	bindings map[types.Object][]binding
	opaque   map[types.Object]bool
}

// Build indexes the pass's functions, collects local effects and call
// sites, and runs the SCC fixpoint. The pass is not mutated.
func Build(pass *analysis.Pass, opts Options) *Engine {
	e := &Engine{
		pass:     pass,
		opts:     opts,
		byObj:    make(map[*types.Func]*FuncNode),
		byLit:    make(map[*ast.FuncLit]*FuncNode),
		bindings: make(map[types.Object][]binding),
		opaque:   make(map[types.Object]bool),
	}
	e.index()
	for _, n := range e.all {
		e.provenance(n)
	}
	for _, n := range e.all {
		e.collect(n)
	}
	e.fixpoint()
	return e
}

// FuncNode returns the node of a declared function or method, or nil.
func (e *Engine) FuncNode(obj *types.Func) *FuncNode { return e.byObj[obj] }

// LitNode returns the node of a function literal, or nil.
func (e *Engine) LitNode(lit *ast.FuncLit) *FuncNode { return e.byLit[lit] }

// Nodes returns every indexed function in file order.
func (e *Engine) Nodes() []*FuncNode { return e.all }

// ResolveValue resolves a function-valued expression to the nodes it
// may invoke: a literal, a named function or method (also as a method
// value), or a variable/field via the package's bindings. ok is false
// when the expression may hold values the engine cannot see.
func (e *Engine) ResolveValue(expr ast.Expr) (nodes []*FuncNode, ok bool) {
	expr = ast.Unparen(expr)
	if lit, isLit := expr.(*ast.FuncLit); isLit {
		if n := e.byLit[lit]; n != nil {
			return []*FuncNode{n}, true
		}
		return nil, false
	}
	if obj := usedObject(e.pass.TypesInfo, expr); obj != nil {
		switch o := obj.(type) {
		case *types.Func:
			if n := e.byObj[o]; n != nil {
				return []*FuncNode{n}, true
			}
			return nil, false
		case *types.Var:
			if e.opaque[o] {
				return nil, false
			}
			bs := e.bindings[o]
			if len(bs) == 0 {
				return nil, false
			}
			for _, b := range bs {
				switch {
				case b.lit != nil:
					if n := e.byLit[b.lit]; n != nil {
						nodes = append(nodes, n)
					} else {
						return nil, false
					}
				case b.fn != nil:
					if n := e.byObj[b.fn]; n != nil {
						nodes = append(nodes, n)
					} else {
						return nil, false
					}
				}
			}
			return nodes, true
		}
	}
	return nil, false
}

// FormatChain renders a fact's call chain as "name (file:line) → ..."
// hops, empty string for local facts.
func (e *Engine) FormatChain(f *Fact) string {
	if len(f.Chain) == 0 {
		return ""
	}
	var b strings.Builder
	for i, s := range f.Chain {
		if i > 0 {
			b.WriteString(" → ")
		}
		fmt.Fprintf(&b, "%s (%s)", s.Callee, e.shortPos(s.Pos))
	}
	return b.String()
}

// ChainStrings renders the chain one hop per element, for the JSON
// diagnostic stream.
func (e *Engine) ChainStrings(f *Fact) []string {
	out := make([]string, 0, len(f.Chain))
	for _, s := range f.Chain {
		out = append(out, fmt.Sprintf("%s (%s)", s.Callee, e.shortPos(s.Pos)))
	}
	return out
}

// shortPos renders pos as base-filename:line.
func (e *Engine) shortPos(pos token.Pos) string {
	p := e.pass.Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// FileOf returns the parsed file containing pos, or nil.
func (e *Engine) FileOf(pos token.Pos) *ast.File {
	for _, f := range e.pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Indexing

func (e *Engine) index() {
	for _, file := range e.pass.Files {
		f := file
		ast.Inspect(file, func(node ast.Node) bool {
			switch d := node.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					return false
				}
				obj, _ := e.pass.TypesInfo.Defs[d.Name].(*types.Func)
				n := &FuncNode{
					Obj:  obj,
					Name: declName(d, obj),
					File: f,
					body: d.Body,
					pos:  d.Pos(),
					end:  d.End(),
				}
				if d.Recv != nil && len(d.Recv.List) == 1 && len(d.Recv.List[0].Names) == 1 {
					n.recv, _ = e.pass.TypesInfo.Defs[d.Recv.List[0].Names[0]].(*types.Var)
				}
				n.params = e.paramVars(d.Type)
				if obj != nil {
					e.byObj[obj] = n
				}
				e.all = append(e.all, n)
			case *ast.FuncLit:
				n := &FuncNode{
					Lit:    d,
					Name:   "func literal",
					File:   f,
					body:   d.Body,
					pos:    d.Pos(),
					end:    d.End(),
					params: e.paramVars(d.Type),
				}
				e.byLit[d] = n
				e.all = append(e.all, n)
			}
			return true
		})
	}
	for _, n := range e.all {
		if n.Lit != nil {
			n.Name = "func literal at " + e.shortPos(n.pos)
		}
		n.facts = make(map[factKey]*Fact)
		n.prov = make(map[*types.Var]rootSet)
	}
}

func (e *Engine) paramVars(ft *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			v, _ := e.pass.TypesInfo.Defs[name].(*types.Var)
			out = append(out, v)
		}
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed parameter keeps the index
		}
	}
	return out
}

func declName(d *ast.FuncDecl, obj *types.Func) string {
	if d.Recv == nil || obj == nil {
		return d.Name.Name
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			star = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("(%s%s).%s", star, named.Obj().Name(), d.Name.Name)
		}
	}
	return d.Name.Name
}

// ---------------------------------------------------------------------------
// Variable classification and provenance

// classifyVar classifies v relative to n, ignoring local provenance.
func (e *Engine) classifyVar(n *FuncNode, v *types.Var) roots {
	if v == nil {
		return roots{unknown: true}
	}
	if v == n.recv {
		return roots{recv: true}
	}
	for i, p := range n.params {
		if p != nil && p == v {
			r := roots{}
			r.addParam(i)
			return r
		}
	}
	if v.Parent() == e.pass.Pkg.Scope() {
		return roots{global: true}
	}
	if n.pos <= v.Pos() && v.Pos() <= n.end {
		return localRoots()
	}
	return roots{captured: true}
}

// provenance computes, flow-insensitively, which roots each local
// variable of n may alias, by joining the classes of every value ever
// assigned to it. Iterates to a fixpoint because locals feed locals.
func (e *Engine) provenance(n *FuncNode) {
	type asg struct {
		v   *types.Var
		rhs ast.Expr
	}
	var asgs []asg
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || rhs == nil {
			return
		}
		v := identVar(e.pass.TypesInfo, id)
		if v == nil || !e.classifyVar(n, v).local {
			return
		}
		asgs = append(asgs, asg{v, rhs})
	}
	inspectOwn(n, func(node ast.Node) {
		switch s := node.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if len(s.Rhs) == len(s.Lhs) {
					record(lhs, s.Rhs[i])
				} else if len(s.Rhs) == 1 {
					record(lhs, s.Rhs[0]) // multi-value: join the call class
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if len(s.Values) == len(s.Names) {
					record(name, s.Values[i])
				} else if len(s.Values) == 1 {
					record(name, s.Values[0])
				}
			}
		case *ast.RangeStmt:
			// Range vars over an external container alias it (map
			// values don't, but slices of pointers do — join, stay
			// conservative).
			cls := e.exprClass(n, s.X)
			for _, lhs := range []ast.Expr{s.Key, s.Value} {
				if lhs == nil {
					continue
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v := identVar(e.pass.TypesInfo, id); v != nil && e.classifyVar(n, v).local {
						rs := n.prov[v]
						rs.write.union(cls.hold)
						rs.hold.union(cls.hold)
						n.prov[v] = rs
					}
				}
			}
		}
	})
	for iter := 0; iter < len(asgs)+2; iter++ {
		changed := false
		for _, a := range asgs {
			cls := e.exprClass(n, a.rhs)
			rs := n.prov[a.v]
			if rs.write.union(cls.write) {
				changed = true
			}
			if rs.hold.union(cls.hold) {
				changed = true
			}
			n.prov[a.v] = rs
		}
		if !changed {
			break
		}
	}
}

// exprClass computes the provenance classes of one value expression.
func (e *Engine) exprClass(n *FuncNode, expr ast.Expr) rootSet {
	expr = ast.Unparen(expr)
	switch x := expr.(type) {
	case *ast.Ident:
		v := identVar(e.pass.TypesInfo, x)
		if v == nil {
			// A named function, constant, or nil: fresh.
			return rootSet{write: localRoots(), hold: localRoots()}
		}
		base := e.classifyVar(n, v)
		if base.local {
			rs := n.prov[v]
			rs.write.union(localRoots())
			rs.hold.union(localRoots())
			return rs
		}
		return rootSet{write: base, hold: base}
	case *ast.SelectorExpr:
		// Package-qualified name?
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := e.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				if _, isFn := e.pass.TypesInfo.Uses[x.Sel].(*types.Func); isFn {
					return rootSet{write: localRoots(), hold: localRoots()}
				}
				g := roots{global: true}
				return rootSet{write: g, hold: g}
			}
		}
		if _, isFn := e.pass.TypesInfo.Uses[x.Sel].(*types.Func); isFn {
			// Method value: holds its receiver.
			inner := e.exprClass(n, x.X)
			inner.write = localRoots()
			return inner
		}
		return e.exprClass(n, x.X)
	case *ast.StarExpr:
		return e.exprClass(n, x.X)
	case *ast.IndexExpr:
		return e.exprClass(n, x.X)
	case *ast.SliceExpr:
		return e.exprClass(n, x.X)
	case *ast.TypeAssertExpr:
		return e.exprClass(n, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return e.exprClass(n, x.X)
		}
		if x.Op == token.ARROW {
			u := roots{unknown: true}
			return rootSet{write: u, hold: u}
		}
		return rootSet{write: localRoots(), hold: localRoots()}
	case *ast.CompositeLit:
		// Fresh memory that may hold references to its elements.
		rs := rootSet{write: localRoots(), hold: localRoots()}
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			rs.hold.union(e.exprClass(n, el).hold)
		}
		return rs
	case *ast.CallExpr:
		// Conversions keep the operand's class; make/new are fresh;
		// other call results are of unknown provenance.
		if len(x.Args) == 1 {
			if _, isType := e.pass.TypesInfo.Types[x.Fun]; isType && e.pass.TypesInfo.Types[x.Fun].IsType() {
				return e.exprClass(n, x.Args[0])
			}
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, isB := e.pass.TypesInfo.Uses[id].(*types.Builtin); isB {
				switch b.Name() {
				case "make", "new", "len", "cap", "min", "max":
					return rootSet{write: localRoots(), hold: localRoots()}
				case "append":
					// The result aliases the first argument's backing
					// and holds the appended elements.
					rs := rootSet{write: localRoots(), hold: localRoots()}
					for _, a := range x.Args {
						rs.write.union(e.exprClass(n, a).write)
						rs.hold.union(e.exprClass(n, a).hold)
					}
					return rs
				}
			}
		}
		u := roots{unknown: true}
		return rootSet{write: u, hold: u}
	case *ast.FuncLit:
		// A closure value holds whatever it captures; calling it is
		// handled through the call graph.
		return rootSet{write: localRoots(), hold: localRoots()}
	case *ast.BasicLit:
		return rootSet{write: localRoots(), hold: localRoots()}
	case *ast.BinaryExpr:
		return rootSet{write: localRoots(), hold: localRoots()}
	}
	u := roots{unknown: true}
	return rootSet{write: u, hold: u}
}

// writeRoots classifies an assignable expression: which roots a write
// through it mutates. Value-typed access descends (writing a field of
// a local struct writes the local); reference crossings consult
// provenance.
func (e *Engine) writeRoots(n *FuncNode, expr ast.Expr) roots {
	expr = ast.Unparen(expr)
	switch x := expr.(type) {
	case *ast.Ident:
		v := identVar(e.pass.TypesInfo, x)
		if v == nil {
			return roots{unknown: true}
		}
		// Rebinding a variable mutates the variable itself.
		return e.classifyVar(n, v)
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := e.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				return roots{global: true}
			}
		}
		t := e.pass.TypesInfo.TypeOf(x.X)
		if t != nil {
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				return e.exprClass(n, x.X).write
			}
		}
		return e.writeRoots(n, x.X)
	case *ast.StarExpr:
		return e.exprClass(n, x.X).write
	case *ast.IndexExpr:
		t := e.pass.TypesInfo.TypeOf(x.X)
		if t != nil {
			switch t.Underlying().(type) {
			case *types.Array:
				return e.writeRoots(n, x.X)
			}
		}
		return e.exprClass(n, x.X).write
	}
	return roots{unknown: true}
}

// ---------------------------------------------------------------------------
// Local-effect and call-site collection

// inspectOwn walks n's body without descending into nested function
// literals (each literal is its own node).
func inspectOwn(n *FuncNode, visit func(ast.Node)) {
	ast.Inspect(n.body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit.Body != n.body {
			return false
		}
		if node != nil {
			visit(node)
		}
		return true
	})
}

func (e *Engine) collect(n *FuncNode) {
	inspectOwn(n, func(node ast.Node) {
		switch s := node.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				e.recordWrite(n, lhs)
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				}
				if rhs != nil {
					e.recordBinding(lhs, rhs)
					e.recordEscapeStore(n, lhs, rhs)
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					e.recordBinding(name, s.Values[i])
					e.recordEscapeStore(n, name, s.Values[i])
				}
			}
		case *ast.IncDecStmt:
			e.recordWrite(n, s.X)
		case *ast.SendStmt:
			e.addFact(n, &Fact{Kind: ChanOp, Pos: s.Arrow, Detail: "send on " + render(s.Chan)})
			e.escapeHeld(n, s.Value, s.Arrow, "sent on channel "+render(s.Chan))
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				e.addFact(n, &Fact{Kind: ChanOp, Pos: s.Pos(), Detail: "receive from " + render(s.X)})
			}
		case *ast.GoStmt:
			e.addFact(n, &Fact{Kind: SpawnGoroutine, Pos: s.Pos(), Detail: "go statement"})
			e.recordCall(n, s.Call, "go ")
		case *ast.DeferStmt:
			e.recordCall(n, s.Call, "defer ")
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				e.escapeHeld(n, res, s.Pos(), "returned to caller")
			}
		case *ast.CompositeLit:
			e.recordCompositeBindings(s)
		case *ast.CallExpr:
			e.recordCall(n, s, "")
		case *ast.RangeStmt:
			if t := e.pass.TypesInfo.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					e.addFact(n, &Fact{Kind: ChanOp, Pos: s.Pos(), Detail: "range over channel " + render(s.X)})
				}
			}
		}
	})
}

// recordWrite classifies one assignment target and emits mutation
// facts for its external roots.
func (e *Engine) recordWrite(n *FuncNode, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	r := e.writeRoots(n, lhs)
	e.emitMutation(n, r, lhs.Pos(), "assignment to "+render(lhs), lhs)
}

// emitMutation maps a root set to mutation facts at pos.
func (e *Engine) emitMutation(n *FuncNode, r roots, pos token.Pos, detail string, lhs ast.Expr) {
	if r.recv {
		e.addFact(n, &Fact{Kind: MutateReceiver, Param: -1, Pos: pos, Detail: detail})
	}
	for _, p := range r.params {
		e.addFact(n, &Fact{Kind: MutateParam, Param: p, Pos: pos, Detail: detail})
	}
	if r.captured {
		f := &Fact{Kind: MutateCaptured, Pos: pos, Detail: detail}
		if lhs != nil {
			f.target = capturedTarget(e, n, lhs)
		}
		e.addFact(n, f)
	}
	if r.global {
		e.addFact(n, &Fact{Kind: MutateGlobal, Pos: pos, Detail: detail})
	}
	if r.unknown {
		e.addFact(n, &Fact{Kind: MutateAlias, Pos: pos, Detail: detail})
	}
}

// capturedTarget digs out the base variable of a captured write so the
// fact can be re-classified in the capturing function.
func capturedTarget(e *Engine, n *FuncNode, expr ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if v := identVar(e.pass.TypesInfo, x); v != nil {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		default:
			return nil
		}
	}
}

// escapeHeld emits EscapeArg facts when expr may hold the receiver or
// a parameter.
func (e *Engine) escapeHeld(n *FuncNode, expr ast.Expr, pos token.Pos, how string) {
	cls := e.exprClass(n, expr)
	if cls.hold.recv {
		e.addFact(n, &Fact{Kind: EscapeArg, Param: -1, Pos: pos, Detail: "receiver " + how})
	}
	for _, p := range cls.hold.params {
		name := "parameter"
		if p < len(n.params) && n.params[p] != nil {
			name = n.params[p].Name()
		}
		e.addFact(n, &Fact{Kind: EscapeArg, Param: p, Pos: pos, Detail: name + " " + how})
	}
}

// recordEscapeStore emits EscapeArg facts when rhs (holding a param or
// the receiver) is stored through an external target.
func (e *Engine) recordEscapeStore(n *FuncNode, lhs, rhs ast.Expr) {
	if !e.writeRoots(n, lhs).external() {
		return
	}
	e.escapeHeld(n, rhs, rhs.Pos(), "stored into "+render(lhs))
}

// recordBinding registers func-valued assignments for later call
// resolution through variables and struct fields.
func (e *Engine) recordBinding(lhs, rhs ast.Expr) {
	obj := e.bindTarget(lhs)
	if obj == nil {
		return
	}
	if t := obj.Type(); t == nil {
		return
	} else if _, isSig := t.Underlying().(*types.Signature); !isSig {
		return
	}
	e.addBinding(obj, rhs)
}

func (e *Engine) addBinding(obj types.Object, rhs ast.Expr) {
	rhs = ast.Unparen(rhs)
	switch v := rhs.(type) {
	case *ast.FuncLit:
		e.bindings[obj] = append(e.bindings[obj], binding{lit: v, pos: rhs.Pos()})
		return
	case *ast.Ident:
		if fn, ok := e.pass.TypesInfo.Uses[v].(*types.Func); ok {
			e.bindings[obj] = append(e.bindings[obj], binding{fn: fn, pos: rhs.Pos()})
			return
		}
		if v.Name == "nil" {
			return // nil binding never invoked without a crash
		}
	case *ast.SelectorExpr:
		if fn, ok := e.pass.TypesInfo.Uses[v.Sel].(*types.Func); ok {
			e.bindings[obj] = append(e.bindings[obj], binding{fn: fn, pos: rhs.Pos()})
			return
		}
	}
	e.opaque[obj] = true
}

// bindTarget resolves the variable or struct-field object a binding
// assignment targets. The explicit nil checks avoid wrapping a nil
// *types.Var into a non-nil types.Object.
func (e *Engine) bindTarget(lhs ast.Expr) types.Object {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v := identVar(e.pass.TypesInfo, x); v != nil {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := e.pass.TypesInfo.Selections[x]; ok && sel.Obj() != nil {
			return sel.Obj()
		}
		if v := identVar(e.pass.TypesInfo, x.Sel); v != nil {
			return v
		}
	}
	return nil
}

// recordCompositeBindings registers func-typed fields bound in struct
// literals, keyed and positional.
func (e *Engine) recordCompositeBindings(lit *ast.CompositeLit) {
	t := e.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range lit.Elts {
		var field *types.Var
		var value ast.Expr
		if kv, isKV := el.(*ast.KeyValueExpr); isKV {
			if id, isID := kv.Key.(*ast.Ident); isID {
				field, _ = e.pass.TypesInfo.Uses[id].(*types.Var)
			}
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i)
			value = el
		}
		if field == nil || value == nil {
			continue
		}
		if _, isSig := field.Type().Underlying().(*types.Signature); !isSig {
			continue
		}
		e.addBinding(field, value)
	}
}

// ---------------------------------------------------------------------------
// Call resolution

func (e *Engine) recordCall(n *FuncNode, call *ast.CallExpr, prefix string) {
	fun := ast.Unparen(call.Fun)

	// Type conversion, not a call.
	if tv, ok := e.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, isB := e.pass.TypesInfo.Uses[id].(*types.Builtin); isB {
			e.recordBuiltin(n, b.Name(), call)
			return
		}
	}

	cs := &callsite{pos: call.Pos(), desc: prefix + render(call.Fun)}
	for _, a := range call.Args {
		cs.argCls = append(cs.argCls, e.exprClass(n, a))
	}

	// Direct function literal call: func(){...}().
	if lit, ok := fun.(*ast.FuncLit); ok {
		cs.calleeLit = lit
		n.calls = append(n.calls, cs)
		return
	}

	obj := usedObject(e.pass.TypesInfo, fun)
	switch o := obj.(type) {
	case *types.Func:
		sig, _ := o.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) {
				e.addFact(n, &Fact{Kind: CallUnknown, Pos: call.Pos(),
					Detail: "interface dispatch " + render(call.Fun) + " — conservatively impure"})
				return
			}
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				cs.recvCls = e.exprClass(n, sel.X)
			} else {
				cs.recvCls = rootSet{write: roots{unknown: true}, hold: roots{unknown: true}}
			}
		}
		if o.Pkg() == e.pass.Pkg {
			cs.callee = o
			n.calls = append(n.calls, cs)
			return
		}
		e.recordExternal(n, o, call, cs)
		return
	case *types.Var:
		// Call through a func-typed value.
		if e.classifyVar(n, o).external() && e.bindings[o] == nil {
			// A func parameter or captured callback with no visible
			// binding: unknown code.
			e.addFact(n, &Fact{Kind: CallUnknown, Pos: call.Pos(),
				Detail: "call through function value " + render(call.Fun) + " with no visible binding"})
			return
		}
		if e.opaque[o] || len(e.bindings[o]) == 0 {
			e.addFact(n, &Fact{Kind: CallUnknown, Pos: call.Pos(),
				Detail: "call through function value " + render(call.Fun) + " bound to unresolvable code"})
			return
		}
		cs.bindingKey = o
		cs.viaValue = true
		n.calls = append(n.calls, cs)
		return
	}
	e.addFact(n, &Fact{Kind: CallUnknown, Pos: call.Pos(),
		Detail: "unresolvable call " + render(call.Fun)})
}

func (e *Engine) recordBuiltin(n *FuncNode, name string, call *ast.CallExpr) {
	switch name {
	case "append", "copy":
		if len(call.Args) > 0 {
			r := e.exprClass(n, call.Args[0]).write
			r.local = false
			e.emitMutation(n, r, call.Pos(), name+" may write through "+render(call.Args[0]), call.Args[0])
		}
	case "delete", "clear":
		if len(call.Args) > 0 {
			r := e.exprClass(n, call.Args[0]).write
			r.local = false
			e.emitMutation(n, r, call.Pos(), name+" on "+render(call.Args[0]), call.Args[0])
		}
	case "close":
		e.addFact(n, &Fact{Kind: ChanOp, Pos: call.Pos(), Detail: "close of " + render(call.Args[0])})
	case "print", "println":
		e.addFact(n, &Fact{Kind: CallUnknown, Pos: call.Pos(), Detail: name + " builtin writes to stderr"})
	}
	// len, cap, make, new, min, max, real, imag, complex, panic,
	// recover: no tracked effect. A panicking pure hook fails loudly
	// without corrupting a cast, which the §10 contract permits.
}

// bannedTime lists the time-package functions that read or schedule
// against the wall clock — shared with detlint so the two passes
// cannot drift.
var bannedTime = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

// allowedRand lists the math/rand constructors that build seeded,
// reproducible generators.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// BannedTime reports whether time.name is a wall-clock read.
func BannedTime(name string) bool { return bannedTime[name] }

// AllowedRand reports whether rand.name is a seeded constructor.
func AllowedRand(name string) bool { return allowedRand[name] }

// purePkgs are stdlib packages whose package-level functions neither
// mutate their arguments nor touch ambient state.
var purePkgs = map[string]bool{
	"strings": true, "strconv": true, "math": true, "math/bits": true,
	"unicode": true, "unicode/utf8": true, "bytes": true, "errors": true,
	"hash/crc32": true, "hash/crc64": true, "hash/fnv": true,
	"encoding/hex": true, "encoding/base64": true,
}

// pureFuncs are individually audited cross-package functions.
var pureFuncs = map[string]bool{
	"fmt.Sprintf": true, "fmt.Sprint": true, "fmt.Sprintln": true,
	"fmt.Errorf": true, "sort.SearchInts": true, "sort.SearchStrings": true,
}

// recordExternal classifies a call into another package.
func (e *Engine) recordExternal(n *FuncNode, fn *types.Func, call *ast.CallExpr, cs *callsite) {
	pkg := fn.Pkg()
	if pkg == nil {
		return // error.Error and friends from the universe scope: pure
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil

	if e.opts.KnownPure[fn.FullName()] {
		return
	}

	switch pkg.Path() {
	case "time":
		if !isMethod {
			if bannedTime[fn.Name()] {
				e.addFact(n, &Fact{Kind: Wallclock, Pos: call.Pos(), Detail: "time." + fn.Name()})
			}
			return // Duration/Time constructors and arithmetic: pure
		}
		recv := sig.Recv().Type()
		if _, isPtr := recv.(*types.Pointer); !isPtr {
			return // time.Time / time.Duration value methods: pure
		}
		// (*Timer).Reset and friends re-arm wall-clock timers.
		e.addFact(n, &Fact{Kind: Wallclock, Pos: call.Pos(), Detail: "(*time." + recvTypeName(recv) + ")." + fn.Name()})
		return
	case "math/rand", "math/rand/v2":
		if !isMethod {
			if !allowedRand[fn.Name()] {
				e.addFact(n, &Fact{Kind: GlobalRand, Pos: call.Pos(), Detail: "rand." + fn.Name()})
			}
			return
		}
		// Methods on a seeded *rand.Rand are deterministic, but they
		// advance generator state the caller shares.
		e.addFact(n, &Fact{Kind: MutateAlias, Pos: call.Pos(),
			Detail: "advances shared *rand.Rand state via " + render(call.Fun)})
		return
	case "encoding/binary":
		name := fn.Name()
		if strings.HasPrefix(name, "Put") || strings.HasPrefix(name, "Append") ||
			name == "Encode" || name == "Read" || name == "Decode" || name == "Write" {
			if len(call.Args) > 0 {
				r := e.exprClass(n, call.Args[0]).write
				r.local = false
				e.emitMutation(n, r, call.Pos(), "binary."+name+" writes into "+render(call.Args[0]), call.Args[0])
			}
			return
		}
		return // Uint16/32/64, Size, byte-order readers: pure
	case "sync", "sync/atomic":
		e.addFact(n, &Fact{Kind: MutateAlias, Pos: call.Pos(),
			Detail: render(call.Fun) + " mutates synchronization state"})
		return
	}
	if !isMethod && (purePkgs[pkg.Path()] || pureFuncs[pkg.Path()+"."+fn.Name()]) {
		return
	}
	e.addFact(n, &Fact{Kind: CallUnknown, Pos: call.Pos(),
		Detail: "call into " + pkg.Path() + " (" + render(call.Fun) + ") not known to be pure"})
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Fixpoint

// fixpoint resolves binding edges, finds SCCs, and propagates callee
// facts into callers until stable.
func (e *Engine) fixpoint() {
	edges := make(map[*FuncNode][]*FuncNode)
	for _, n := range e.all {
		for _, cs := range n.calls {
			for _, t := range e.calleeNodes(cs) {
				edges[n] = append(edges[n], t)
			}
		}
	}
	order := tarjan(e.all, edges)
	// tarjan yields SCCs in reverse topological order (callees before
	// callers), so one pass per SCC plus an inner fixpoint suffices.
	for _, comp := range order {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				if e.lift(n) {
					changed = true
				}
			}
			if len(comp) == 1 {
				break // no self-recursion possible without a self-edge revisit
			}
		}
	}
}

// calleeNodes resolves a call site's target nodes.
func (e *Engine) calleeNodes(cs *callsite) []*FuncNode {
	switch {
	case cs.callee != nil:
		if n := e.byObj[cs.callee]; n != nil {
			return []*FuncNode{n}
		}
	case cs.calleeLit != nil:
		if n := e.byLit[cs.calleeLit]; n != nil {
			return []*FuncNode{n}
		}
	case cs.bindingKey != nil:
		var out []*FuncNode
		for _, b := range e.bindings[cs.bindingKey] {
			switch {
			case b.lit != nil:
				if n := e.byLit[b.lit]; n != nil {
					out = append(out, n)
				}
			case b.fn != nil:
				if n := e.byObj[b.fn]; n != nil {
					out = append(out, n)
				} else if b.fn.Pkg() != e.pass.Pkg {
					// Bound to a cross-package function: classify it
					// as if called directly at the binding site.
					outNode := &FuncNode{facts: map[factKey]*Fact{}}
					e.recordExternal(outNode, b.fn, &ast.CallExpr{Fun: &ast.Ident{Name: b.fn.Name(), NamePos: b.pos}}, nil)
					out = append(out, outNode)
				}
			}
		}
		return out
	}
	return nil
}

// lift pulls each callee's facts into n, mapping parameter-relative
// effects through the frozen argument classes. Reports whether n's
// fact set grew.
func (e *Engine) lift(n *FuncNode) bool {
	changed := false
	for _, cs := range n.calls {
		for _, callee := range e.calleeNodes(cs) {
			for _, f := range callee.facts {
				for _, lifted := range e.liftFact(n, cs, callee, f) {
					if e.addFact(n, lifted) {
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// liftFact maps one callee fact through one call site.
func (e *Engine) liftFact(n *FuncNode, cs *callsite, callee *FuncNode, f *Fact) []*Fact {
	step := Step{Pos: cs.pos, Callee: callee.Name}
	if callee.Name == "" {
		step.Callee = cs.desc
	}
	chain := append([]Step{step}, f.Chain...)
	mk := func(kind Kind, param int, detail string) *Fact {
		return &Fact{Kind: kind, Param: param, Pos: f.Pos, Detail: detail, Chain: chain}
	}
	var out []*Fact
	switch f.Kind {
	case MutateReceiver:
		if cs.viaValue {
			out = append(out, mk(MutateAlias, 0, f.Detail+" (through bound receiver)"))
			break
		}
		out = append(out, e.mapRoots(cs.recvCls.write, f, chain)...)
	case MutateParam:
		if f.Param >= 0 && f.Param < len(cs.argCls) {
			out = append(out, e.mapRoots(cs.argCls[f.Param].write, f, chain)...)
		} else if len(cs.argCls) > 0 {
			// Variadic or mismatched shape: conservative.
			out = append(out, mk(MutateAlias, 0, f.Detail))
		}
	case MutateCaptured:
		// If the callee is a literal nested in n, the captured target
		// may be n's own local — re-classify.
		if f.target != nil {
			if v, ok := f.target.(*types.Var); ok {
				r := e.classifyVar(n, v)
				if r.local {
					rs := n.prov[v]
					if !rs.write.external() {
						break // mutation confined to n's locals
					}
				}
				out = append(out, e.mapRoots(r, f, chain)...)
				break
			}
		}
		out = append(out, mk(MutateCaptured, 0, f.Detail))
	case EscapeArg:
		var cls rootSet
		switch {
		case f.Param == -1:
			cls = cs.recvCls
		case f.Param >= 0 && f.Param < len(cs.argCls):
			cls = cs.argCls[f.Param]
		}
		if cls.hold.recv {
			out = append(out, mk(EscapeArg, -1, f.Detail))
		}
		for _, p := range cls.hold.params {
			out = append(out, mk(EscapeArg, p, f.Detail))
		}
	default:
		// MutateGlobal, MutateAlias, CallUnknown, SpawnGoroutine,
		// ChanOp, Wallclock, GlobalRand lift verbatim.
		out = append(out, mk(f.Kind, f.Param, f.Detail))
	}
	return out
}

// mapRoots converts a callee-relative root set into caller facts.
func (e *Engine) mapRoots(r roots, f *Fact, chain []Step) []*Fact {
	var out []*Fact
	mk := func(kind Kind, param int) *Fact {
		return &Fact{Kind: kind, Param: param, Pos: f.Pos, Detail: f.Detail, Chain: chain}
	}
	if r.recv {
		out = append(out, mk(MutateReceiver, -1))
	}
	for _, p := range r.params {
		out = append(out, mk(MutateParam, p))
	}
	if r.captured {
		out = append(out, mk(MutateCaptured, 0))
	}
	if r.global {
		out = append(out, mk(MutateGlobal, 0))
	}
	if r.unknown {
		out = append(out, mk(MutateAlias, 0))
	}
	return out
}

// addFact inserts f unless an equivalent fact exists. Reports growth.
func (e *Engine) addFact(n *FuncNode, f *Fact) bool {
	key := factKey{kind: f.Kind, param: f.Param, pos: f.Pos}
	if _, ok := n.facts[key]; ok {
		return false
	}
	if len(f.Chain) > 12 {
		f.Chain = f.Chain[:12] // depth cap; display stays bounded
	}
	n.facts[key] = f
	return true
}

// ---------------------------------------------------------------------------
// Tarjan SCC (iterative result order: callees before callers)

func tarjan(nodes []*FuncNode, edges map[*FuncNode][]*FuncNode) [][]*FuncNode {
	var (
		idx   = 1
		stack []*FuncNode
		out   [][]*FuncNode
	)
	var strongconnect func(n *FuncNode)
	strongconnect = func(n *FuncNode) {
		n.index, n.lowlink = idx, idx
		idx++
		stack = append(stack, n)
		n.onStack = true
		for _, m := range edges[n] {
			if m.index == 0 {
				if m.facts == nil {
					continue // synthetic external node
				}
				strongconnect(m)
				if m.lowlink < n.lowlink {
					n.lowlink = m.lowlink
				}
			} else if m.onStack && m.index < n.lowlink {
				n.lowlink = m.index
			}
		}
		if n.lowlink == n.index {
			var comp []*FuncNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, n := range nodes {
		if n.index == 0 {
			strongconnect(n)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Small helpers

func identVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

func usedObject(info *types.Info, expr ast.Expr) types.Object {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

func render(expr ast.Expr) string { return types.ExprString(expr) }
