// Package sumfix exercises the effect-summary engine: each function is
// a named shape the engine test asserts exact facts for. No want
// comments here — the test interrogates summaries directly.
package sumfix

import (
	"strings"
	"time"
)

// Counter is the mutable receiver used throughout.
type Counter struct {
	n     int
	tags  []string
	stash *Counter
	hook  func() int
}

var global int

// PureAdd has no effects at all.
func PureAdd(a, b int) int {
	c := a + b
	return c * 2
}

// PureString calls only audited-pure stdlib.
func PureString(s string) string {
	return strings.ToUpper(strings.TrimSpace(s))
}

// BumpDirect writes the receiver directly.
func (c *Counter) BumpDirect() { c.n++ }

// bumpInner is the level-2 helper.
func (c *Counter) bumpInner() { c.n = c.n + 1 }

// bumpMiddle is the level-1 helper.
func (c *Counter) bumpMiddle() { c.bumpInner() }

// BumpDeep mutates the receiver two calls down.
func (c *Counter) BumpDeep() int {
	c.bumpMiddle()
	return c.n
}

// poke writes through its parameter.
func poke(t *Counter) { t.n = 7 }

// PokeParam forwards its parameter into a mutating helper.
func PokeParam(t *Counter) { poke(t) }

// PokeLocal allocates locally, so the helper's write stays internal.
func PokeLocal() int {
	t := &Counter{}
	poke(t)
	return t.n
}

// WriteGlobal writes package state.
func WriteGlobal() { global = 1 }

// WriteGlobalDeep reaches the global write through a helper.
func WriteGlobalDeep() { WriteGlobal() }

// CaptureMutate mutates a local through a closure called in place:
// the effect is confined and the summary must be clean.
func CaptureMutate() int {
	total := 0
	add := func(v int) { total += v }
	add(3)
	add(4)
	return total
}

// CaptureReceiver mutates the receiver from inside a closure.
func (c *Counter) CaptureReceiver() {
	f := func() { c.n++ }
	f()
}

// Iface dispatches through an interface: conservatively unknown.
type Iface interface{ Do() }

func CallIface(i Iface) { i.Do() }

// Clock launders time.Now through a method value stored in a local.
func Clock() int64 {
	now := time.Now
	return now().UnixNano()
}

// ClockField launders time.Now through a func-typed struct field.
type ticker struct{ src func() time.Time }

func ClockField() int64 {
	t := ticker{src: time.Now}
	return t.src().UnixNano()
}

// ClockDefer reads the clock from a deferred call.
func ClockDefer() {
	defer func() { _ = time.Now() }()
}

// StashParam retains its parameter in a receiver field.
func (c *Counter) StashParam(other *Counter) { c.stash = other }

// StashDeep retains the parameter one call down.
func (c *Counter) StashDeep(other *Counter) { c.StashParam(other) }

// SpawnWorker leaks its parameter into a goroutine and mutates it there.
func SpawnWorker(t *Counter) {
	go func() { t.n++ }()
}

// HookCall calls through a func field bound package-wide to pureHook:
// resolvable, so the summary stays clean.
func pureHook() int { return 42 }

func NewCounter() *Counter { return &Counter{hook: pureHook} }

func (c *Counter) CallHook() int { return c.hook() }

// Recurse is mutually recursive with recurseB; both mutate the
// receiver, and the SCC fixpoint must terminate with the fact present.
func (c *Counter) Recurse(depth int) {
	if depth <= 0 {
		c.n++
		return
	}
	c.recurseB(depth - 1)
}

func (c *Counter) recurseB(depth int) { c.Recurse(depth) }

// AppendTag mutates the receiver through the append builtin.
func (c *Counter) AppendTag(tag string) { c.tags = append(c.tags, tag) }
