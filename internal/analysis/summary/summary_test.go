package summary_test

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"horus/internal/analysis"
	"horus/internal/analysis/load"
	"horus/internal/analysis/summary"
)

// buildFixture loads testdata/src/sumfix through the real loader and
// runs the engine over it.
func buildFixture(t *testing.T, opts summary.Options) (*summary.Engine, *analysis.Pass) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "sumfix"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Load(load.Config{Dir: ".", Overlay: map[string]string{"sumfix": dir}}, "sumfix")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("fixture type error: %v", terr)
	}
	pass := &analysis.Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	return summary.Build(pass, opts), pass
}

// nodeFor finds the engine node of a (possibly method) name like
// "Counter.BumpDeep" or "PureAdd".
func nodeFor(t *testing.T, e *summary.Engine, pass *analysis.Pass, name string) *summary.FuncNode {
	t.Helper()
	recv, method, isMethod := strings.Cut(name, ".")
	scope := pass.Pkg.Scope()
	var fn *types.Func
	if isMethod {
		obj := scope.Lookup(recv)
		if obj == nil {
			t.Fatalf("no type %s", recv)
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			t.Fatalf("%s is not a named type", recv)
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == method {
				fn = named.Method(i)
				break
			}
		}
	} else {
		fn, _ = scope.Lookup(name).(*types.Func)
	}
	if fn == nil {
		t.Fatalf("no function %s in fixture", name)
	}
	n := e.FuncNode(fn)
	if n == nil {
		t.Fatalf("engine has no node for %s", name)
	}
	return n
}

// kinds collects the distinct fact kinds of a node.
func kinds(n *summary.FuncNode) map[summary.Kind]bool {
	out := make(map[summary.Kind]bool)
	for _, f := range n.Facts() {
		out[f.Kind] = true
	}
	return out
}

func TestPureFunctionsAreClean(t *testing.T) {
	e, pass := buildFixture(t, summary.Options{})
	for _, name := range []string{"PureAdd", "PureString", "PokeLocal", "CaptureMutate", "NewCounter", "Counter.CallHook"} {
		n := nodeFor(t, e, pass, name)
		if facts := n.Facts(); len(facts) != 0 {
			for _, f := range facts {
				t.Errorf("%s: unexpected fact %v: %s (chain %q)", name, f.Kind, f.Detail, e.FormatChain(f))
			}
		}
	}
}

func TestDirectAndDeepReceiverMutation(t *testing.T) {
	e, pass := buildFixture(t, summary.Options{})
	for _, name := range []string{"Counter.BumpDirect", "Counter.BumpDeep", "Counter.CaptureReceiver", "Counter.Recurse", "Counter.AppendTag"} {
		n := nodeFor(t, e, pass, name)
		if !kinds(n)[summary.MutateReceiver] {
			t.Errorf("%s: expected MutateReceiver, got %v", name, n.Facts())
		}
	}
	// The deep mutation's chain must name both hops.
	deep := nodeFor(t, e, pass, "Counter.BumpDeep")
	found := false
	for _, f := range deep.Facts() {
		if f.Kind != summary.MutateReceiver {
			continue
		}
		chain := e.FormatChain(f)
		if strings.Contains(chain, "bumpMiddle") && strings.Contains(chain, "bumpInner") {
			found = true
		}
	}
	if !found {
		t.Errorf("BumpDeep: no MutateReceiver fact with bumpMiddle→bumpInner chain")
	}
}

func TestParamMutationLifting(t *testing.T) {
	e, pass := buildFixture(t, summary.Options{})
	n := nodeFor(t, e, pass, "PokeParam")
	var hit bool
	for _, f := range n.Facts() {
		if f.Kind == summary.MutateParam && f.Param == 0 {
			hit = true
			if len(f.Chain) == 0 || !strings.Contains(e.FormatChain(f), "poke") {
				t.Errorf("PokeParam: chain missing poke hop: %q", e.FormatChain(f))
			}
		}
	}
	if !hit {
		t.Errorf("PokeParam: expected MutateParam(0), got %v", n.Facts())
	}
}

func TestGlobalMutation(t *testing.T) {
	e, pass := buildFixture(t, summary.Options{})
	if !kinds(nodeFor(t, e, pass, "WriteGlobal"))[summary.MutateGlobal] {
		t.Error("WriteGlobal: expected MutateGlobal")
	}
	if !kinds(nodeFor(t, e, pass, "WriteGlobalDeep"))[summary.MutateGlobal] {
		t.Error("WriteGlobalDeep: expected lifted MutateGlobal")
	}
}

func TestInterfaceDispatchIsUnknown(t *testing.T) {
	e, pass := buildFixture(t, summary.Options{})
	if !kinds(nodeFor(t, e, pass, "CallIface"))[summary.CallUnknown] {
		t.Error("CallIface: expected CallUnknown for interface dispatch")
	}
}

func TestWallclockLaundering(t *testing.T) {
	e, pass := buildFixture(t, summary.Options{})
	for _, name := range []string{"Clock", "ClockField", "ClockDefer"} {
		if !kinds(nodeFor(t, e, pass, name))[summary.Wallclock] {
			t.Errorf("%s: expected Wallclock fact (laundered time.Now)", name)
		}
	}
}

func TestEscapeFacts(t *testing.T) {
	e, pass := buildFixture(t, summary.Options{})
	for _, name := range []string{"Counter.StashParam", "Counter.StashDeep"} {
		n := nodeFor(t, e, pass, name)
		var hit bool
		for _, f := range n.Facts() {
			if f.Kind == summary.EscapeArg && f.Param == 0 {
				hit = true
			}
		}
		if !hit {
			t.Errorf("%s: expected EscapeArg(0), got %v", name, n.Facts())
		}
	}
	spawn := kinds(nodeFor(t, e, pass, "SpawnWorker"))
	if !spawn[summary.SpawnGoroutine] {
		t.Error("SpawnWorker: expected SpawnGoroutine")
	}
	if !spawn[summary.MutateParam] {
		t.Error("SpawnWorker: expected MutateParam lifted out of the goroutine body")
	}
}

func TestKnownPureSuppressesUnknownCall(t *testing.T) {
	// Without the whitelist strings.ToUpper is already in the pure
	// table; prove the KnownPure hook works by un-whitelisting nothing
	// and instead checking a time constructor stays clean.
	e, pass := buildFixture(t, summary.Options{KnownPure: map[string]bool{}})
	if got := kinds(nodeFor(t, e, pass, "PureString")); len(got) != 0 {
		t.Errorf("PureString: expected clean summary, got %v", got)
	}
}
