package ownlint_test

import (
	"testing"

	"horus/internal/analysis/analysistest"
	"horus/internal/analysis/ownlint"
)

func TestOwnlint(t *testing.T) {
	analysistest.Run(t, ownlint.Analyzer, "horus/internal/layers/ownfix")
}
