// Package ownlint tracks the ownership of pooled messages statically.
// The pool contract (internal/message/pool.go) says: a message from
// message.Get is owned by the caller until it is handed to a cast
// downcall; from then on the stack owns it, and the compiled fast path
// releases it automatically once the wire image has left. Compiled
// layers never retain the original. Runtime panics catch violations
// the tests happen to execute; this analyzer catches them on every
// path the code has.
//
// Tracked per function, path-sensitively (hcpilint's branch-join
// discipline: clone at forks, intersect at joins):
//
//   - use after Release — any method call on, or argument use of, a
//     message that was released on every path reaching here, or on
//     some branch (reported with the branch position);
//   - double Release — including the branch-divergent shape where one
//     arm released and the fall-through releases again;
//   - release or use after the message was handed to a cast downcall
//     (Down/Cast/Transmit/Send) — the fast path may already have
//     released it;
//   - escape into retained storage: a pooled message stored into a
//     receiver field or package variable, sent on a channel, captured
//     by a goroutine, or passed to a same-package helper whose
//     effect summary says the parameter escapes (the interprocedural
//     case, reported with the call chain).
//
// Releasing on only some branches is legal by itself — "Release is an
// optimization, never an obligation" on the reference path — so the
// divergence is flagged only when the message is used or released
// again afterwards. Aliases created by plain assignment, ev.Msg
// stores, and Event composite literals share one ownership cell.
// Deliberate exceptions carry "//horus:own-ok — <reason>" on the
// flagged line.
package ownlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"horus/internal/analysis"
	"horus/internal/analysis/annot"
	"horus/internal/analysis/summary"
)

// Analyzer is the ownlint pass.
var Analyzer = &analysis.Analyzer{
	Name: "ownlint",
	Doc: "track pooled message ownership: use-after-release, double " +
		"release, release after hand-off, and escapes into retained storage",
	Run: run,
}

// suppressTag is the line-level opt-out marker.
const suppressTag = "own-ok"

// scopePrefix limits the analyzer to the module's internal tree.
const scopePrefix = "horus/internal/"

// messagePkg is the pool's home package.
const messagePkg = "horus/internal/message"

// handoffNames are the method names that transfer a message (or the
// event carrying it) to the stack.
var handoffNames = map[string]bool{
	"Down": true, "Cast": true, "Transmit": true, "Send": true, "Up": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), scopePrefix) {
		return nil
	}
	var eng *summary.Engine
	engine := func() *summary.Engine {
		if eng == nil {
			eng = summary.Build(pass, summary.Options{})
		}
		return eng
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		w := &walker{pass: pass, file: file, engine: engine}
		ast.Inspect(file, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && fn.Body != nil {
				w.enterFunc(fn)
				w.walkStmts(fn.Body.List, newState())
				return false
			}
			return true
		})
	}
	return nil
}

// status is one ownership cell's abstract state.
type status int

const (
	owned status = iota
	released
	maybeReleased // released on some branch only
	handed
	maybeHanded // handed on some branch only
	escaped     // already reported; silence follow-ups
)

// cell is the shared ownership record of one pooled message and all
// its aliases.
type cell struct {
	name  string    // the rendered expression of the Get assignment
	get   token.Pos // where message.Get ran
	event token.Pos // where the release / hand-off / branch happened
}

type cellState struct {
	c  *cell
	st status
}

// state maps rendered expressions ("m", "ev.Msg") to ownership cells.
// Aliases share a *cell and a *cellState.
type state struct {
	cells map[string]*cellState
}

func newState() *state { return &state{cells: map[string]*cellState{}} }

func (s *state) clone() *state {
	trans := map[*cellState]*cellState{}
	c := newState()
	for k, v := range s.cells {
		nv, ok := trans[v]
		if !ok {
			cp := *v
			nv = &cp
			trans[v] = nv
		}
		c.cells[k] = nv
	}
	return c
}

// intersect merges a branch join: keys missing in either side are
// dropped; status disagreement over "was it consumed" degrades to the
// maybe form carrying the consuming branch's position.
func (s *state) intersect(o *state) {
	for k, v := range s.cells {
		ov, ok := o.cells[k]
		if !ok {
			delete(s.cells, k)
			continue
		}
		v.st, v.c.event = mergeStatus(v.st, v.c.event, ov.st, ov.c.event)
	}
}

func mergeStatus(a status, apos token.Pos, b status, bpos token.Pos) (status, token.Pos) {
	if a == b {
		return a, apos
	}
	rank := func(st status) int {
		switch st {
		case escaped:
			return 3
		case released, maybeReleased:
			return 2
		case handed, maybeHanded:
			return 1
		default:
			return 0
		}
	}
	hi, hipos := a, apos
	if rank(b) > rank(a) {
		hi, hipos = b, bpos
	}
	switch hi {
	case escaped:
		return escaped, hipos
	case released, maybeReleased:
		return maybeReleased, hipos
	default:
		return maybeHanded, hipos
	}
}

type walker struct {
	pass   *analysis.Pass
	file   *ast.File
	engine func() *summary.Engine

	recv   map[types.Object]bool
	params map[types.Object]bool
}

// enterFunc records the receiver and parameter objects of the
// function whose body is being walked, for retained-storage checks.
func (w *walker) enterFunc(fn *ast.FuncDecl) {
	w.recv = map[types.Object]bool{}
	w.params = map[types.Object]bool{}
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			for _, name := range f.Names {
				if obj := w.pass.TypesInfo.Defs[name]; obj != nil {
					w.recv[obj] = true
				}
			}
		}
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			for _, name := range f.Names {
				if obj := w.pass.TypesInfo.Defs[name]; obj != nil {
					w.params[obj] = true
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Statement walk (hcpilint's control-flow discipline)

func (w *walker) walkStmts(stmts []ast.Stmt, st *state) bool {
	for _, stmt := range stmts {
		if w.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (w *walker) walkStmt(stmt ast.Stmt, st *state) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			// Returning a tracked message transfers ownership to the
			// caller — legal, stop tracking. A released one is a use.
			if cs, ok := st.cells[render(res)]; ok {
				w.checkUse(st, res.Pos(), cs, "returned")
			}
		}
		w.scanExprs(st, s.Results...)
		return true
	case *ast.ExprStmt:
		w.scanExprs(st, s.X)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(w.pass, call) {
			return true
		}
	case *ast.AssignStmt:
		w.scanExprs(st, s.Rhs...)
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			}
			w.handleAssign(st, lhs, rhs)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.scanExprs(st, vs.Values...)
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							w.handleAssign(st, name, vs.Values[i])
						}
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.scanExprs(st, s.X)
	case *ast.SendStmt:
		w.scanExprs(st, s.Chan, s.Value)
		if cs, ok := st.cells[render(s.Value)]; ok && cs.st != escaped {
			w.report(s.Arrow, "pooled message %s sent on channel %s — the receiver may outlive the pool hand-back; pass a copy (FromParts) instead", cs.c.name, render(s.Chan))
			cs.st = escaped
		}
	case *ast.DeferStmt:
		// A deferred Release runs at return, on every path: treat it
		// as consuming the message for the rest of the body is wrong
		// (it runs last) — and a deferred release is the cleanest
		// pattern there is. Just check its target is tracked; no
		// state change.
		w.scanExprs(st, s.Call.Fun)
	case *ast.GoStmt:
		w.checkGoroutineEscape(st, s)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExprs(st, s.Cond)
		thenSt := st.clone()
		thenTerm := w.walkStmts(s.Body.List, thenSt)
		if s.Else == nil {
			if !thenTerm {
				st.intersect(thenSt)
			}
			return false
		}
		elseSt := st.clone()
		elseTerm := w.walkStmt(s.Else, elseSt)
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *thenSt
			st.intersect(elseSt)
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.walkBranches(stmt, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanExprs(st, s.Cond)
		}
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		if s.Post != nil {
			w.walkStmt(s.Post, bodySt)
		}
		st.intersect(bodySt)
	case *ast.RangeStmt:
		w.scanExprs(st, s.X)
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		st.intersect(bodySt)
	}
	return false
}

func (w *walker) walkBranches(stmt ast.Stmt, st *state) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanExprs(st, s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	var after []*state
	for _, clause := range clauses {
		var body []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			w.scanExprs(st, c.List...)
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.walkStmt(c.Comm, st)
			}
			body = c.Body
		}
		cs := st.clone()
		if !w.walkStmts(body, cs) {
			after = append(after, cs)
		}
	}
	if !hasDefault {
		after = append(after, st.clone())
	}
	if len(after) == 0 {
		return
	}
	*st = *after[0]
	for _, o := range after[1:] {
		st.intersect(o)
	}
}

// scanExprs processes calls inside expressions in evaluation order and
// walks nested function literals as separate contexts.
func (w *walker) scanExprs(st *state, exprs ...ast.Expr) {
	for _, expr := range exprs {
		if expr == nil {
			continue
		}
		ast.Inspect(expr, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				w.walkStmts(n.Body.List, newState())
				return false
			case *ast.CallExpr:
				for _, arg := range n.Args {
					w.scanExprs(st, arg)
				}
				w.scanExprs(st, n.Fun)
				w.handleCall(st, n)
				return false
			}
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// Transfer functions

// handleAssign tracks Get results, aliases, strong updates, and
// retained-storage escapes.
func (w *walker) handleAssign(st *state, lhs, rhs ast.Expr) {
	lhsKey := render(lhs)
	if lhsKey == "_" {
		return
	}

	// m := message.Get(body)
	if rhs != nil && w.isGetCall(rhs) {
		cs := &cellState{c: &cell{name: lhsKey, get: rhs.Pos()}, st: owned}
		st.cells[lhsKey] = cs
		return
	}

	// Alias: lhs gets a tracked value (m2 := m, ev.Msg = m).
	if rhs != nil {
		if cs, ok := st.cells[render(rhs)]; ok {
			w.checkRetainedStore(st, lhs, cs)
			st.cells[lhsKey] = cs
			return
		}
		// ev := &core.Event{Msg: m} — alias through the literal; a
		// literal field may also hold the Get call itself.
		if comp := compositeOf(rhs); comp != nil {
			for _, el := range comp.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				fieldKey := lhsKey + "." + key.Name
				if cs, ok := st.cells[render(kv.Value)]; ok {
					st.cells[fieldKey] = cs
				} else if w.isGetCall(kv.Value) {
					st.cells[fieldKey] = &cellState{c: &cell{name: fieldKey, get: kv.Value.Pos()}, st: owned}
				}
			}
		}
	}

	// Strong update: lhs now holds something else.
	delete(st.cells, lhsKey)
}

// checkRetainedStore reports a pooled message stored where it outlives
// the call: a receiver field or package-level variable.
func (w *walker) checkRetainedStore(st *state, lhs ast.Expr, cs *cellState) {
	if cs.st == escaped {
		return
	}
	base := baseIdent(lhs)
	if base == nil {
		return
	}
	obj := w.pass.TypesInfo.Uses[base]
	if obj == nil {
		return
	}
	switch {
	case w.recv[obj]:
		w.report(lhs.Pos(), "pooled message %s stored into receiver field %s — compiled layers must never retain the original; keep an independent copy (FromParts) instead", cs.c.name, render(lhs))
		cs.st = escaped
	case obj.Parent() == w.pass.Pkg.Scope():
		w.report(lhs.Pos(), "pooled message %s stored into package variable %s — it outlives the pool hand-back; keep an independent copy (FromParts) instead", cs.c.name, render(lhs))
		cs.st = escaped
	}
}

// handleCall classifies Release, message-method uses, hand-offs, and
// helper calls over tracked arguments.
func (w *walker) handleCall(st *state, call *ast.CallExpr) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)

	// Method calls on a tracked expression.
	if isSel {
		recvKey := render(sel.X)
		if cs, ok := st.cells[recvKey]; ok && isMessageType(w.pass.TypesInfo.TypeOf(sel.X)) {
			switch sel.Sel.Name {
			case "Release":
				w.handleRelease(st, call.Pos(), cs)
			case "Pooled":
				// Legal in every state: it answers exactly this question.
			default:
				w.checkUse(st, call.Pos(), cs, "method "+sel.Sel.Name+" called")
			}
			return
		}
		// Hand-off: stack.Down(ev) / ctx.Cast(ev) — the event (or the
		// message itself) moves to the stack.
		if handoffNames[sel.Sel.Name] {
			for _, arg := range call.Args {
				argKey := render(arg)
				for _, k := range []string{argKey, argKey + ".Msg"} {
					if cs, ok := st.cells[k]; ok {
						w.checkUse(st, call.Pos(), cs, "handed to "+sel.Sel.Name)
						if cs.st == owned {
							cs.st = handed
							cs.c.event = call.Pos()
						}
					}
				}
			}
			return
		}
	}

	// Helper calls with tracked arguments: use check plus the
	// interprocedural escape check via the summary engine.
	callee := w.pass.Callee(call)
	for i, arg := range call.Args {
		cs, ok := st.cells[render(arg)]
		if !ok {
			continue
		}
		w.checkUse(st, call.Pos(), cs, "passed to "+render(call.Fun))
		if callee == nil || callee.Pkg() != w.pass.Pkg || cs.st == escaped {
			continue
		}
		node := w.engine().FuncNode(callee)
		if node == nil {
			continue
		}
		for _, f := range node.Facts() {
			if f.Kind != summary.EscapeArg || f.Param != i {
				continue
			}
			msg := fmt.Sprintf("pooled message %s is retained by %s (%s at %s)",
				cs.c.name, node.Name, f.Detail, w.shortPos(f.Pos))
			if chain := w.engine().FormatChain(f); chain != "" {
				msg += " via " + chain
			}
			msg += " — compiled layers must never retain the original"
			w.reportChained(call.Pos(), msg, w.engine().ChainStrings(f))
			cs.st = escaped
			break
		}
	}
}

// handleRelease applies the Release transition to one cell.
func (w *walker) handleRelease(st *state, pos token.Pos, cs *cellState) {
	switch cs.st {
	case owned:
		cs.st = released
		cs.c.event = pos
	case released:
		w.report(pos, "double release of pooled message %s (already released at %s) — the second Put would hand one buffer to two casts", cs.c.name, w.shortPos(cs.c.event))
	case maybeReleased:
		w.report(pos, "double release of pooled message %s when the branch at %s is taken (released there, released again here)", cs.c.name, w.shortPos(cs.c.event))
		cs.st = released
		cs.c.event = pos
	case handed:
		w.report(pos, "release of pooled message %s after it was handed to the stack at %s — the compiled fast path releases it; this double-puts when the plan runs", cs.c.name, w.shortPos(cs.c.event))
	case maybeHanded:
		w.report(pos, "release of pooled message %s after it may have been handed to the stack at %s — the compiled fast path releases it; this double-puts when the plan runs", cs.c.name, w.shortPos(cs.c.event))
	}
}

// checkUse reports uses of consumed messages.
func (w *walker) checkUse(st *state, pos token.Pos, cs *cellState, how string) {
	switch cs.st {
	case released:
		w.report(pos, "use of pooled message %s after release (%s; released at %s)", cs.c.name, how, w.shortPos(cs.c.event))
	case maybeReleased:
		w.report(pos, "use of pooled message %s after release when the branch at %s is taken (%s)", cs.c.name, w.shortPos(cs.c.event), how)
	case handed:
		w.report(pos, "use of pooled message %s after hand-off to the stack at %s (%s) — the fast path may already have released it", cs.c.name, w.shortPos(cs.c.event), how)
	case maybeHanded:
		w.report(pos, "use of pooled message %s after possible hand-off at %s (%s) — the fast path may already have released it", cs.c.name, w.shortPos(cs.c.event), how)
	}
}

// checkGoroutineEscape flags tracked messages referenced by a go
// statement's call or closure body.
func (w *walker) checkGoroutineEscape(st *state, g *ast.GoStmt) {
	reported := map[*cellState]bool{}
	ast.Inspect(g.Call, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if cs, found := st.cells[render(expr)]; found && !reported[cs] && cs.st != escaped {
			w.report(expr.Pos(), "pooled message %s escapes into a goroutine — it may outlive the pool hand-back; pass a copy (FromParts) instead", cs.c.name)
			reported[cs] = true
			cs.st = escaped
		}
		return true
	})
	// The goroutine body still gets its own walk for internal misuse.
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		w.walkStmts(lit.Body.List, newState())
	}
}

// ---------------------------------------------------------------------------
// Reporting and small helpers

func (w *walker) report(pos token.Pos, format string, args ...interface{}) {
	if annot.LineMarker(w.pass.Fset, w.file, pos, suppressTag) {
		return
	}
	w.pass.Reportf(pos, format, args...)
}

func (w *walker) reportChained(pos token.Pos, msg string, chain []string) {
	if annot.LineMarker(w.pass.Fset, w.file, pos, suppressTag) {
		return
	}
	w.pass.Report(analysis.Diagnostic{
		Pos: pos, Message: msg, Analyzer: w.pass.Analyzer.Name, Chain: chain,
	})
}

func (w *walker) shortPos(pos token.Pos) string {
	p := w.pass.Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// isGetCall matches message.Get(...).
func (w *walker) isGetCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := w.pass.Callee(call)
	return fn != nil && fn.Name() == "Get" && fn.Pkg() != nil && fn.Pkg().Path() == messagePkg
}

// isMessageType matches *message.Message (possibly behind a pointer).
func isMessageType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Message" && obj.Pkg() != nil && obj.Pkg().Path() == messagePkg
}

// compositeOf unwraps &T{...} and T{...} to the literal.
func compositeOf(expr ast.Expr) *ast.CompositeLit {
	expr = ast.Unparen(expr)
	if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
		expr = u.X
	}
	comp, _ := expr.(*ast.CompositeLit)
	return comp
}

// baseIdent returns the leftmost identifier of a selector/index path.
func baseIdent(expr ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		default:
			return nil
		}
	}
}

func isPanicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func render(expr ast.Expr) string { return types.ExprString(expr) }
