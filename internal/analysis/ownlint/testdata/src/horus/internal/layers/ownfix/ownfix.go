// Package ownfix seeds ownlint violations: double release (straight
// and branch-divergent), use after release, release and use after
// hand-off, and escapes of pooled messages into retained storage,
// package variables, goroutines, channels, and same-package helpers
// (the interprocedural case, with the call chain in the diagnostic).
// The clean patterns at the bottom must stay silent.
package ownfix

import (
	"horus/internal/core"
	"horus/internal/message"
)

// Double releases twice on a straight-line path.
func Double(body []byte) {
	m := message.Get(body)
	m.Release()
	m.Release() // want `double release of pooled message m \(already released at ownfix\.go:\d+\)`
}

// BranchDouble is the ISSUE 9 acceptance shape: one arm releases, the
// fall-through releases again.
func BranchDouble(body []byte, cond bool) {
	m := message.Get(body)
	if cond {
		m.Release()
	}
	m.Release() // want `double release of pooled message m when the branch at ownfix\.go:\d+ is taken \(released there, released again here\)`
}

// UseAfter reads a released message.
func UseAfter(body []byte) []byte {
	m := message.Get(body)
	m.Release()
	return m.Body() // want `use of pooled message m after release \(method Body called; released at ownfix\.go:\d+\)`
}

// UseAfterBranch reads a message only one branch released.
func UseAfterBranch(body []byte, cond bool) int {
	m := message.Get(body)
	if cond {
		m.Release()
	}
	return m.Len() // want `use of pooled message m after release when the branch at ownfix\.go:\d+ is taken \(method Len called\)`
}

// keeper retains pooled messages — the invariant compiled layers must
// never break.
type keeper struct{ last *message.Message }

// stash is the retaining helper; keep adds a level of indirection so
// the diagnostic must carry the chain.
func (k *keeper) stash(m *message.Message) { k.last = m }
func (k *keeper) keep(m *message.Message)  { k.stash(m) }

// Direct stores the message straight into a receiver field.
func (k *keeper) Direct(body []byte) {
	m := message.Get(body)
	k.last = m // want `pooled message m stored into receiver field k\.last`
}

// Deep retains through the helper chain: ownlint must follow the
// summary engine's escape fact and name both hops.
func (k *keeper) Deep(body []byte) {
	m := message.Get(body)
	k.keep(m) // want `pooled message m is retained by \(\*keeper\)\.keep \(m stored into k\.last at ownfix\.go:\d+\) via \(\*keeper\)\.stash \(ownfix\.go:\d+\)`
}

// lastGlobal retains at package scope.
var lastGlobal *message.Message

func StoreGlobal(body []byte) {
	m := message.Get(body)
	lastGlobal = m // want `pooled message m stored into package variable lastGlobal`
}

// Spawn leaks the message into a goroutine.
func Spawn(body []byte) {
	m := message.Get(body)
	go func() { _ = m.Body() }() // want `pooled message m escapes into a goroutine`
}

// SendChan leaks the message through a channel.
func SendChan(body []byte, ch chan *message.Message) {
	m := message.Get(body)
	ch <- m // want `pooled message m sent on channel ch`
}

// stackT stands in for the stack's downcall entry.
type stackT struct{}

func (stackT) Down(ev *core.Event) {}

// HandOffRelease releases after the stack took ownership.
func HandOffRelease(body []byte, stk stackT) {
	ev := &core.Event{}
	ev.Msg = message.Get(body)
	stk.Down(ev)
	ev.Msg.Release() // want `release of pooled message ev\.Msg after it was handed to the stack at ownfix\.go:\d+`
}

// HandOffUse touches the message after the stack took ownership.
func HandOffUse(body []byte, stk stackT) int {
	ev := &core.Event{Msg: message.Get(body)}
	stk.Down(ev)
	return ev.Msg.Len() // want `use of pooled message ev\.Msg after hand-off to the stack at ownfix\.go:\d+`
}

// Waived is the benchkit shape: a deliberate reference-path release
// after hand-off, suppressed with the escape hatch.
func Waived(body []byte, stk stackT, fast bool) {
	ev := &core.Event{Msg: message.Get(body)}
	stk.Down(ev)
	if !fast {
		//horus:own-ok — fixture: reference path never consumes the message
		ev.Msg.Release()
	}
}

// ---------------------------------------------------------------------------
// Clean patterns: no diagnostics below this line.

// CleanOnce releases exactly once.
func CleanOnce(body []byte) {
	m := message.Get(body)
	m.Push([]byte{1, 2})
	m.Release()
}

// CleanBranchOnly releases on one branch and never touches the
// message again — legal: Release is an optimization, not an
// obligation.
func CleanBranchOnly(body []byte, cond bool) {
	m := message.Get(body)
	if cond {
		m.Release()
	}
}

// CleanHandOff hands the message to the stack and walks away.
func CleanHandOff(body []byte, stk stackT) {
	ev := &core.Event{Msg: message.Get(body)}
	stk.Down(ev)
}

// CleanReturn transfers ownership to the caller.
func CleanReturn(body []byte) *message.Message {
	return message.Get(body)
}

// CleanDefer releases at return via defer, after all uses.
func CleanDefer(body []byte) int {
	m := message.Get(body)
	defer m.Release()
	return m.Len()
}

// CleanAlias releases through an alias exactly once.
func CleanAlias(body []byte) {
	m := message.Get(body)
	m2 := m
	m2.Release()
}

// reader is a non-retaining helper: passing a tracked message to it
// is fine.
func reader(m *message.Message) int { return m.Len() }

func CleanHelper(body []byte) int {
	m := message.Get(body)
	n := reader(m)
	m.Release()
	return n
}
