// Package purefix seeds purecast violations: compiled-cast hooks that
// mutate state (directly, two helpers deep, through a closure), read
// the wall clock, or bind values the analyzer cannot resolve — plus
// pure implementations and a //horus:pure-ok suppression that must
// stay silent.
package purefix

import (
	"time"

	"horus/internal/core"
)

// Gate is the CastCompiler whose Ready mutates state two helper-calls
// deep — the ISSUE 9 acceptance fixture.
type Gate struct {
	epoch int
	open  bool
}

// step2 is the level-2 helper holding the actual mutation.
func (g *Gate) step2() { g.epoch++ }

// step1 is the level-1 helper.
func (g *Gate) step1() { g.step2() }

// ready reaches the mutation through both helpers.
func (g *Gate) ready(ev *core.Event) bool {
	g.step1()
	return g.open
}

func (g *Gate) CompileCast() (core.CompiledCast, bool) {
	return core.CompiledCast{
		Width: 4,
		Ready: g.ready, // want `compiled cast Ready hook must be pure: mutates receiver \(assignment to g\.epoch\) at purefix\.go:\d+ via \(\*Gate\)\.step1 \(purefix\.go:\d+\) → \(\*Gate\)\.step2 \(purefix\.go:\d+\)`
	}, true
}

// Closer binds an impure closure inline: the capture of the receiver
// makes the mutation a captured-state write.
type Closer struct{ hits int }

func (c *Closer) CompileCast() (core.CompiledCast, bool) {
	return core.CompiledCast{
		Width: 2,
		Ready: func(ev *core.Event) bool { c.hits++; return true }, // want `compiled cast Ready hook must be pure: mutates captured state \(assignment to c\.hits\)`
	}, true
}

// Clocked reads the wall clock from its WidthFn.
type Clocked struct{}

func clockWidth(ev *core.Event) int { return int(time.Now().Unix()&7) + 1 }

func (Clocked) CompileCast() (core.CompiledCast, bool) {
	return core.CompiledCast{
		WidthFn: clockWidth, // want `compiled cast WidthFn hook must be pure: wall-clock read \(time\.Now\) at purefix\.go:\d+`
	}, true
}

// Dyn binds a hook through a package-level func variable the analyzer
// cannot resolve to code.
type Dyn struct{}

var dynamicReady func(ev *core.Event) bool

func (Dyn) CompileCast() (core.CompiledCast, bool) {
	return core.CompiledCast{
		Width: 1,
		Ready: dynamicReady, // want `compiled cast Ready hook must be pure: bound to a value the analyzer cannot resolve`
	}, true
}

// Assigned binds an impure hook through a field assignment after the
// literal, the second binding shape purecast must see.
type Assigned struct{}

var totalCasts int

func countingReady(ev *core.Event) bool { totalCasts++; return true }

func (Assigned) CompileCast() (core.CompiledCast, bool) {
	cc := core.CompiledCast{Width: 3}
	cc.Ready = countingReady // want `compiled cast Ready hook must be pure: mutates global state \(assignment to totalCasts\) at purefix\.go:\d+`
	return cc, true
}

// Clean is fully pure: nothing here may be flagged.
type Clean struct{ max int }

func (cl *Clean) fits(hdrLen, bodyLen int) bool { return hdrLen+bodyLen <= cl.max }

func (cl *Clean) CompileCast() (core.CompiledCast, bool) {
	return core.CompiledCast{
		Width: 8,
		Ready: func(ev *core.Event) bool { return cl.max > 0 },
		Fits:  cl.fits,
		WidthFn: func(ev *core.Event) int {
			if cl.max > 16 {
				return 16
			}
			return 8
		},
	}, true
}

// Waived is impure but carries the line-level escape hatch; it must
// stay silent.
type Waived struct{ polls int }

func (w *Waived) pollingReady(ev *core.Event) bool { w.polls++; return true }

func (w *Waived) CompileCast() (core.CompiledCast, bool) {
	return core.CompiledCast{
		Width: 2,
		//horus:pure-ok — fixture: counter is test-only instrumentation, audited harmless
		Ready: w.pollingReady,
	}, true
}
