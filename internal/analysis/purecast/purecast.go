// Package purecast statically enforces the §10 fast-path purity
// contract. A compiled cast's pass-1 hooks — Ready, Fits, WidthFn —
// run during the eligibility pass, before any side effect, so the plan
// can decline a cast and fall back to the reference path with nothing
// to undo (internal/core/plan.go). The contract was previously
// enforced only by comments; this analyzer proves it: every function
// bound to one of those fields in a core.CompiledCast literal (or by a
// later field assignment) must be free of side effects through
// arbitrary call depth, as established by the effect-summary engine's
// SCC fixpoint over the package's call graph.
//
// "Pure" here means: no writes through the receiver, parameters,
// captured variables, globals, or aliased state; no retention of the
// event; no goroutine spawns or channel traffic; no wall-clock or
// global-rand reads; and no calls the engine cannot resolve (interface
// dispatch and unaudited cross-package functions are conservatively
// impure). Cross-package helpers audited by hand are whitelisted in
// KnownPure; a finding can be suppressed line-level with
// "//horus:pure-ok — <reason>" on the hook binding or on the
// offending statement.
//
// Diagnostics name the violating statement and the call chain that
// reaches it, so a mutation two helpers deep reads as
//
//	Ready hook must be pure: mutates receiver (assignment to m.epoch)
//	at mbrship.go:412 via (*Mbrship).gate (mbrship.go:398) →
//	(*Mbrship).bump (mbrship.go:405)
package purecast

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"horus/internal/analysis"
	"horus/internal/analysis/annot"
	"horus/internal/analysis/summary"
)

// scopePrefix limits the analyzer to the repo's own packages; fixture
// and real layers both live under it.
const scopePrefix = "horus/internal/"

// okTag is the line-level suppression marker.
const okTag = "pure-ok"

// hookFields are the CompiledCast fields bound to the pure pass-1
// hooks.
var hookFields = map[string]bool{"Ready": true, "Fits": true, "WidthFn": true}

// KnownPure whitelists cross-package functions audited as effect-free
// that the engine's stdlib tables cannot see, keyed by
// types.Func.FullName. (*View).Size reads len(v.Members) and nothing
// else — see internal/core/id.go.
var KnownPure = map[string]bool{
	"(*horus/internal/core.View).Size": true,
}

// Analyzer is the purecast pass.
var Analyzer = &analysis.Analyzer{
	Name: "purecast",
	Doc:  "verify that compiled-cast Ready/Fits/WidthFn hooks are pure through arbitrary call depth",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), scopePrefix) {
		return nil
	}
	var eng *summary.Engine // built lazily: most packages bind no hooks
	engine := func() *summary.Engine {
		if eng == nil {
			eng = summary.Build(pass, summary.Options{KnownPure: KnownPure})
		}
		return eng
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		f := file
		ast.Inspect(file, func(node ast.Node) bool {
			switch x := node.(type) {
			case *ast.CompositeLit:
				if !isCompiledCast(pass.TypesInfo.TypeOf(x)) {
					return true
				}
				for _, el := range x.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !hookFields[key.Name] {
						continue
					}
					checkHook(pass, engine(), f, key.Name, kv.Value)
				}
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok || !hookFields[sel.Sel.Name] {
						continue
					}
					if !isCompiledCast(pass.TypesInfo.TypeOf(sel.X)) {
						continue
					}
					if i < len(x.Rhs) {
						checkHook(pass, engine(), f, sel.Sel.Name, x.Rhs[i])
					}
				}
			}
			return true
		})
	}
	return nil
}

// isCompiledCast matches core.CompiledCast and *core.CompiledCast.
func isCompiledCast(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "CompiledCast" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/core")
}

// severity orders fact kinds for reporting: the most actionable
// violation wins when a hook has several.
func severity(k summary.Kind) int {
	switch k {
	case summary.MutateReceiver, summary.MutateParam, summary.MutateCaptured,
		summary.MutateGlobal, summary.MutateAlias:
		return 0
	case summary.Wallclock, summary.GlobalRand:
		return 1
	case summary.SpawnGoroutine, summary.ChanOp:
		return 2
	case summary.EscapeArg:
		return 3
	default: // CallUnknown
		return 4
	}
}

// checkHook resolves one hook binding and reports its worst impurity.
func checkHook(pass *analysis.Pass, eng *summary.Engine, file *ast.File, hook string, value ast.Expr) {
	if isNilExpr(value) {
		return
	}
	if annot.LineMarker(pass.Fset, file, value.Pos(), okTag) {
		return
	}
	nodes, ok := eng.ResolveValue(value)
	if !ok {
		pass.Reportf(value.Pos(),
			"compiled cast %s hook must be pure: bound to a value the analyzer cannot resolve — bind a func literal or named function, or annotate //horus:pure-ok with a reason", hook)
		return
	}
	for _, n := range nodes {
		var worst *summary.Fact
		for _, fact := range n.Facts() {
			if worst == nil || severity(fact.Kind) < severity(worst.Kind) {
				worst = fact
			}
		}
		if worst == nil {
			continue
		}
		// Origin-line suppression: a hand-audited statement inside the
		// hook's reach.
		if of := eng.FileOf(worst.Pos); of != nil && annot.LineMarker(pass.Fset, of, worst.Pos, okTag) {
			continue
		}
		msg := fmt.Sprintf("compiled cast %s hook must be pure: %s (%s) at %s",
			hook, worst.Kind, worst.Detail, posString(pass, worst.Pos))
		if chain := eng.FormatChain(worst); chain != "" {
			msg += " via " + chain
		}
		pass.Report(analysis.Diagnostic{
			Pos:      value.Pos(),
			Message:  msg,
			Analyzer: pass.Analyzer.Name,
			Chain:    eng.ChainStrings(worst),
		})
	}
}

func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func posString(pass *analysis.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
