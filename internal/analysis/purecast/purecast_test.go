package purecast_test

import (
	"testing"

	"horus/internal/analysis/analysistest"
	"horus/internal/analysis/purecast"
)

func TestPurecast(t *testing.T) {
	analysistest.Run(t, purecast.Analyzer, "horus/internal/layers/purefix")
}
