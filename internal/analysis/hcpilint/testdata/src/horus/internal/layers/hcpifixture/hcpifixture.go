// Package hcpifixture is the hcpilint fixture: a pretend layer with a
// local Context stand-in and the real message type, exercising the
// callback-while-locked and header-direction rules in both their
// flagged and disciplined forms.
package hcpifixture

import (
	"sync"

	"horus/internal/message"
)

// Event mirrors the shape of core.Event: a message riding an upcall
// or downcall.
type Event struct {
	Msg *message.Message
}

// Context stands in for core.Context; hcpilint matches Up/Down/
// Transmit methods on any type of this name.
type Context struct{}

func (c *Context) Up(ev *Event)                             {}
func (c *Context) Down(ev *Event)                           {}
func (c *Context) Transmit(dests []int, m *message.Message) {}

// Layer is a handler object with the classic hazard ingredients: a
// mutex, an upcall context, and a registered callback.
type Layer struct {
	mu        sync.Mutex
	ctx       *Context
	onProblem func(string)
	subs      []func(string)
}

func lockedCallback(l *Layer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onProblem("down") // want `callback l\.onProblem invoked while l\.mu is held`
}

func lockedUpcall(l *Layer, ev *Event) {
	l.mu.Lock()
	l.ctx.Up(ev) // want `upcall Context\.Up invoked while l\.mu is held`
	l.mu.Unlock()
}

func lockedRangeCallback(l *Layer) {
	l.mu.Lock()
	for _, fn := range l.subs {
		fn("verdict") // want `callback fn invoked while l\.mu is held`
	}
	l.mu.Unlock()
}

// earlyUnlockReturn pins the branch logic: the early branch releases
// and returns, so the fall-through still holds the lock.
func earlyUnlockReturn(l *Layer, quiet bool) {
	l.mu.Lock()
	if quiet {
		l.mu.Unlock()
		return
	}
	l.onProblem("still locked") // want `callback l\.onProblem invoked while l\.mu is held`
	l.mu.Unlock()
}

// copyThenCall is the disciplined shape the repo uses everywhere:
// copy under the lock, call after releasing it.
func copyThenCall(l *Layer) {
	l.mu.Lock()
	subs := make([]func(string), len(l.subs))
	copy(subs, l.subs)
	l.mu.Unlock()
	for _, fn := range subs {
		fn("verdict")
	}
}

func pushThenUp(l *Layer, ev *Event) {
	ev.Msg.PushUint8(1)
	l.ctx.Up(ev) // want `header pushed onto ev\.Msg on this path is forwarded up`
}

func popThenDown(l *Layer, ev *Event) {
	_ = ev.Msg.PopUint8()
	l.ctx.Down(ev) // want `header popped from ev\.Msg on this path is forwarded down`
}

func popThenTransmit(l *Layer, ev *Event) {
	_ = ev.Msg.PopUint8()
	l.ctx.Transmit(nil, ev.Msg) // want `header popped from ev\.Msg on this path is forwarded down`
}

// downPathPush and upPathPop are the disciplined directions.
func downPathPush(l *Layer, ev *Event) {
	ev.Msg.PushUint8(1)
	ev.Msg.PushUint32(42)
	l.ctx.Down(ev)
}

func upPathPop(l *Layer, ev *Event) {
	_ = ev.Msg.PopUint32()
	_ = ev.Msg.PopUint8()
	l.ctx.Up(ev)
}

// pushPopBalanced peeks at its own header and restores it before
// forwarding up — balanced, so accepted.
func pushPopBalanced(l *Layer, ev *Event) {
	kind := ev.Msg.PopUint8()
	ev.Msg.PushUint8(kind)
	l.ctx.Up(ev)
}

// lockedContinuation follows the *Locked suffix convention: a
// func-typed value so named is an internal continuation whose
// contract is "caller holds the lock" — accepted, not a callback.
func lockedContinuation(l *Layer, fireLocked func()) {
	l.mu.Lock()
	fireLocked()
	l.mu.Unlock()
}

// suppressed documents an intentional exception.
func suppressed(l *Layer) {
	l.mu.Lock()
	l.onProblem("monitor") //horus:hcpi-ok — fixture: demonstrates the line-level opt-out
	l.mu.Unlock()
}
