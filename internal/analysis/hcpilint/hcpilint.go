// Package hcpilint flags violations of the Horus Common Protocol
// Interface discipline in layer and service code — the two shapes
// behind the historical merge-path deadlocks and header corruption:
//
//   - Callback while locked: invoking an upcall (a method on a layer
//     Context) or any func-typed value (subscriber, handler field,
//     registered source) while a sync.Mutex/RWMutex is held. The
//     callee may re-enter the locking object — the classic
//     callback-while-locked deadlock. The repo-wide contract is copy
//     under lock, call after unlock (see failure.Service.Report).
//   - Header traffic against the forwarding direction: on a single
//     path, pushing a header onto a message and then forwarding the
//     event up (the pushed header escapes to the layer above or the
//     application), or popping headers and then forwarding the event
//     down or transmitting it (a header the peer expects has been
//     consumed). Down paths push, up paths pop; a path that does both
//     is unbalanced.
//
// The analysis is flow-sensitive but deliberately conservative: locks
// and push/pop balances are tracked per textual expression ("s.mu",
// "ev.Msg"); across branches only facts true on every path survive,
// and branches that end in return or panic are treated as leaving the
// fall-through path untouched. That keeps false positives near zero
// at the cost of missing aliased or cross-function shapes. Func-typed
// values named with the repo's *Locked suffix (caller must hold the
// lock) are internal continuations, not callbacks, and are exempt. A
// finding that is genuinely intentional can carry a line-level
// "//horus:hcpi-ok — <reason>" marker.
package hcpilint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"horus/internal/analysis"
	"horus/internal/analysis/annot"
)

// Analyzer is the hcpilint pass.
var Analyzer = &analysis.Analyzer{
	Name: "hcpilint",
	Doc: "flag HCPI-discipline violations: upcalls/callbacks invoked " +
		"while a mutex is held, and header push/pop flowing against the " +
		"event's forwarding direction",
	Run: run,
}

// suppressTag is the line-level opt-out marker.
const suppressTag = "hcpi-ok"

// scopePrefix limits the analyzer to the module's internal tree.
const scopePrefix = "horus/internal/"

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), scopePrefix) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		w := &walker{pass: pass, file: file}
		ast.Inspect(file, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && fn.Body != nil {
				w.walkFunc(fn.Body)
				return false // walkFunc handles nested FuncLits itself
			}
			return true
		})
	}
	return nil
}

// state is the per-path abstract state.
type state struct {
	held map[string]token.Pos // lock expr -> position of the Lock call
	net  map[string]int       // message expr -> pushes minus pops
}

func newState() *state {
	return &state{held: map[string]token.Pos{}, net: map[string]int{}}
}

func (s *state) clone() *state {
	c := newState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.net {
		c.net[k] = v
	}
	return c
}

// intersect keeps only facts present (and, for balances, equal) in
// both states — the merge rule that makes branch joins conservative.
func (s *state) intersect(o *state) {
	for k := range s.held {
		if _, ok := o.held[k]; !ok {
			delete(s.held, k)
		}
	}
	for k, v := range s.net {
		if ov, ok := o.net[k]; !ok || ov != v {
			delete(s.net, k)
		}
	}
}

type walker struct {
	pass *analysis.Pass
	file *ast.File
}

// walkFunc analyzes one function body with a fresh state (a FuncLit
// body is its own execution context — it runs later, not inline).
func (w *walker) walkFunc(body *ast.BlockStmt) {
	w.walkStmts(body.List, newState())
}

// walkStmts walks a statement list, updating st, and reports whether
// the list definitely terminates (returns or panics).
func (w *walker) walkStmts(stmts []ast.Stmt, st *state) bool {
	for _, stmt := range stmts {
		if w.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (w *walker) walkStmt(stmt ast.Stmt, st *state) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		w.scanExprs(st, s.Results...)
		return true
	case *ast.ExprStmt:
		w.scanExprs(st, s.X)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanic(w.pass, call) {
			return true
		}
	case *ast.AssignStmt:
		w.scanExprs(st, s.Rhs...)
		w.scanExprs(st, s.Lhs...)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.scanExprs(st, vs.Values...)
				}
			}
		}
	case *ast.IncDecStmt:
		w.scanExprs(st, s.X)
	case *ast.SendStmt:
		w.scanExprs(st, s.Chan, s.Value)
	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock held for the rest of the
		// body — that is exactly the point of tracking it. Deferred
		// closures run at return, outside this path; skip them.
		if fn, recv, ok := w.lockMethod(s.Call); ok && (fn == "Unlock" || fn == "RUnlock") {
			_ = recv // the lock stays in st.held
		}
	case *ast.GoStmt:
		// The goroutine body runs elsewhere; detlint owns bare-go
		// findings. Scan nested FuncLits as separate contexts.
		w.scanExprs(st, s.Call.Fun)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExprs(st, s.Cond)
		thenSt := st.clone()
		thenTerm := w.walkStmts(s.Body.List, thenSt)
		if s.Else == nil {
			if !thenTerm {
				st.intersect(thenSt)
			}
			return false
		}
		elseSt := st.clone()
		elseTerm := w.walkStmt(s.Else, elseSt)
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *thenSt
			st.intersect(elseSt)
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.walkBranches(stmt, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanExprs(st, s.Cond)
		}
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		if s.Post != nil {
			w.walkStmt(s.Post, bodySt)
		}
		st.intersect(bodySt) // the body may run zero times
	case *ast.RangeStmt:
		w.scanExprs(st, s.X)
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		st.intersect(bodySt)
	}
	return false
}

// walkBranches handles switch/type-switch/select: each clause starts
// from the pre-state; the post-state is the intersection of every
// non-terminating clause plus, without a default, the pre-state.
func (w *walker) walkBranches(stmt ast.Stmt, st *state) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanExprs(st, s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	var after []*state
	for _, clause := range clauses {
		var body []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			w.scanExprs(st, c.List...)
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.walkStmt(c.Comm, st)
			}
			body = c.Body
		}
		cs := st.clone()
		if !w.walkStmts(body, cs) {
			after = append(after, cs)
		}
	}
	if !hasDefault {
		after = append(after, st.clone())
	}
	if len(after) == 0 {
		return // every path terminated; fall-through is unreachable
	}
	*st = *after[0]
	for _, o := range after[1:] {
		st.intersect(o)
	}
}

// scanExprs processes the calls inside expressions in evaluation
// order, updating lock and header state and reporting violations.
func (w *walker) scanExprs(st *state, exprs ...ast.Expr) {
	for _, expr := range exprs {
		if expr == nil {
			continue
		}
		ast.Inspect(expr, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				w.walkFunc(n.Body) // separate execution context
				return false
			case *ast.CallExpr:
				// Arguments evaluate before the call itself.
				for _, arg := range n.Args {
					w.scanExprs(st, arg)
				}
				w.scanExprs(st, n.Fun)
				w.handleCall(st, n)
				return false
			}
			return true
		})
	}
}

// handleCall classifies one call against the tracked state.
func (w *walker) handleCall(st *state, call *ast.CallExpr) {
	if name, recv, ok := w.lockMethod(call); ok {
		switch name {
		case "Lock", "RLock":
			st.held[recv] = call.Pos()
		case "Unlock", "RUnlock":
			delete(st.held, recv)
		}
		return
	}
	if target, delta, ok := w.headerOp(call); ok {
		st.net[target] += delta
		return
	}
	if name, arg, ok := w.contextForward(call); ok {
		w.checkLocked(st, call, "upcall Context."+name)
		msg := arg + ".Msg"
		if name == "Transmit" {
			msg = arg // Transmit takes the message itself
		}
		switch {
		case name == "Up" && st.net[msg] > 0:
			w.report(call.Pos(), "header pushed onto %s on this path is forwarded up by Context.Up — "+
				"pushes belong to the down path; the layer above will read your header as its own", msg)
		case (name == "Down" || name == "Transmit") && st.net[msg] < 0:
			w.report(call.Pos(), "header popped from %s on this path is forwarded down by Context.%s — "+
				"pops belong to the up path; the peer will miss the consumed header", msg, name)
		}
		delete(st.net, msg) // the event has been handed off
		return
	}
	// A call through a func-typed value (field, parameter, local,
	// subscriber slice element) is an arbitrary callback — unless its
	// name ends in "Locked", the repo-wide marker for "caller must
	// hold the lock" (transmitLocked, departLocked, ...): such a value
	// is an internal continuation, not an escape to foreign code.
	if w.isFuncValueCall(call) && !isLockedName(call) {
		w.checkLocked(st, call, "callback "+types.ExprString(call.Fun))
	}
}

// checkLocked reports if any lock is held at the call site.
func (w *walker) checkLocked(st *state, call *ast.CallExpr, what string) {
	for lock, pos := range st.held {
		w.report(call.Pos(),
			"%s invoked while %s is held (locked at %s) — release the lock first: "+
				"the callee may re-enter it (callback-while-locked deadlock)",
			what, lock, w.pass.Fset.Position(pos))
		return // one report per call is enough
	}
}

func (w *walker) report(pos token.Pos, format string, args ...interface{}) {
	if annot.LineMarker(w.pass.Fset, w.file, pos, suppressTag) {
		return
	}
	w.pass.Reportf(pos, format, args...)
}

// lockMethod matches x.Lock/Unlock/RLock/RUnlock on sync.Mutex or
// sync.RWMutex and returns the method name and the rendered lock
// expression.
func (w *walker) lockMethod(call *ast.CallExpr) (name, recv string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if !isNamed(w.pass.TypesInfo.TypeOf(sel.X), "sync", "Mutex", "RWMutex") {
		return "", "", false
	}
	return sel.Sel.Name, types.ExprString(sel.X), true
}

// headerOp matches header pushes/pops: Push*/Pop* methods on
// *message.Message and Push*/Pop* functions (e.g. wire.PushEndpointID)
// whose first argument is a *message.Message. Returns the rendered
// message expression and +1 for push, -1 for pop.
func (w *walker) headerOp(call *ast.CallExpr) (target string, delta int, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", 0, false
	}
	name := sel.Sel.Name
	switch {
	case strings.HasPrefix(name, "Push"):
		delta = 1
	case strings.HasPrefix(name, "Pop"):
		delta = -1
	default:
		return "", 0, false
	}
	if isNamed(w.pass.TypesInfo.TypeOf(sel.X), "horus/internal/message", "Message") {
		return types.ExprString(sel.X), delta, true
	}
	if len(call.Args) > 0 &&
		isNamed(w.pass.TypesInfo.TypeOf(call.Args[0]), "horus/internal/message", "Message") {
		return types.ExprString(call.Args[0]), delta, true
	}
	return "", 0, false
}

// contextForward matches Up/Down/Transmit method calls on a type
// named Context (core.Context in real code, a stand-in in fixtures)
// and returns the method name and the rendered first argument.
func (w *walker) contextForward(call *ast.CallExpr) (name, arg string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Up", "Down":
		if len(call.Args) != 1 {
			return "", "", false
		}
	case "Transmit":
		if len(call.Args) != 2 {
			return "", "", false
		}
	default:
		return "", "", false
	}
	recv := w.pass.TypesInfo.TypeOf(sel.X)
	named, okNamed := derefNamed(recv)
	if !okNamed || named.Obj().Name() != "Context" {
		return "", "", false
	}
	argExpr := call.Args[0]
	if sel.Sel.Name == "Transmit" {
		argExpr = call.Args[1]
	}
	return sel.Sel.Name, types.ExprString(argExpr), true
}

// isFuncValueCall reports whether the call goes through a func-typed
// value rather than a declared function or method.
func (w *walker) isFuncValueCall(call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false // index expressions (subs[i](...)), etc.: skip
	}
	obj, ok := w.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	_, isSig := obj.Type().Underlying().(*types.Signature)
	return isSig
}

// isLockedName reports whether the called value's name carries the
// *Locked suffix convention.
func isLockedName(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.HasSuffix(fun.Name, "Locked")
	case *ast.SelectorExpr:
		return strings.HasSuffix(fun.Sel.Name, "Locked")
	}
	return false
}

// isPanic matches the builtin panic.
func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// derefNamed strips pointers and reports the named type, if any.
func derefNamed(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// isNamed reports whether t (possibly behind one pointer) is one of
// the named types pkg.name.
func isNamed(t types.Type, pkg string, names ...string) bool {
	named, ok := derefNamed(t)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != pkg {
		return false
	}
	for _, n := range names {
		if named.Obj().Name() == n {
			return true
		}
	}
	return false
}
