package hcpilint_test

import (
	"testing"

	"horus/internal/analysis/analysistest"
	"horus/internal/analysis/hcpilint"
)

func TestHCPILint(t *testing.T) {
	analysistest.Run(t, hcpilint.Analyzer, "horus/internal/layers/hcpifixture")
}
