// Package outsider sits outside horus/internal/, so detlint leaves it
// alone: command-line drivers and examples are wall-clock programs by
// nature.
package outsider

import "time"

func Clock() time.Time { return time.Now() }
