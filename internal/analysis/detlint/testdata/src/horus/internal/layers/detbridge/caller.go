// caller.go is NOT exempt: every banned effect it reaches lives in
// bridge.go (exempt), so only the interprocedural sweep can see these.
package detbridge

import "time"

// UseHelper is the plain helper-call shape.
func UseHelper(b *Bridge) time.Time {
	return b.WallNow() // want `wall clock escape: time\.Now reached via \(\*Bridge\)\.WallNow \(caller\.go:\d+\)`
}

// UseDeep reaches the read two calls down; the chain names both hops.
func UseDeep(b *Bridge) time.Time {
	return b.wallDeep() // want `wall clock escape: time\.Now reached via \(\*Bridge\)\.wallDeep \(caller\.go:\d+\) → \(\*Bridge\)\.WallNow \(bridge\.go:\d+\)`
}

// UseMethodValue is the method-value shape: the banned read hides
// behind a func-typed local.
func UseMethodValue(b *Bridge) time.Time {
	f := b.WallNow
	return f() // want `wall clock escape: time\.Now reached via \(\*Bridge\)\.WallNow \(caller\.go:\d+\)`
}

// UseDefer is the defer shape.
func UseDefer(b *Bridge) {
	defer b.WallNow() // want `wall clock escape: time\.Now reached via \(\*Bridge\)\.WallNow \(caller\.go:\d+\)`
}

// UseField is the func-typed struct field shape: Src was bound to
// time.Now in the exempt file.
func UseField() time.Time {
	c := NewClock()
	return c.Src() // want `wall clock escape: time\.Now reached via c\.Src \(caller\.go:\d+\)`
}

// UseRand launders the global rand draw.
func UseRand(b *Bridge) int {
	return b.Draw() // want `nondeterminism escape: rand\.Intn reached via \(\*Bridge\)\.Draw \(caller\.go:\d+\)`
}

// UseElapsed launders time.Since behind the bridge.
func UseElapsed(b *Bridge, t0 time.Time) time.Duration {
	return b.Elapsed(t0) // want `wall clock escape: time\.Since reached via \(\*Bridge\)\.Elapsed \(caller\.go:\d+\)`
}

// CleanDuration uses time plumbing only — no diagnostic.
func CleanDuration(d time.Duration) time.Duration { return d * 2 }
