//horus:pool — fixture: stands in for the §10 message buffer pool, whose
// reuse is behaviour-transparent (content never depends on provenance)
package detpool

import "sync"

// recycled is legal here: the file-level //horus:pool marker above the
// package clause declares the pool behaviour-transparent, the way
// message/pool.go does for the compiled cast path's buffers. The
// marker exempts only the sync.Pool rule — the wall-clock and bare-
// goroutine rules still apply to this file.
var recycled = sync.Pool{New: func() interface{} { return new([64]byte) }}

// Borrow hands out a pooled buffer.
func Borrow() *[64]byte { return recycled.Get().(*[64]byte) }

// Return recycles it.
func Return(b *[64]byte) { recycled.Put(b) }
