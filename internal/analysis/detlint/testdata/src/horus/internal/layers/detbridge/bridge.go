// Package detbridge seeds the laundering shapes the interprocedural
// detlint sweep must catch: this file is the exempt bridge whose
// banned reads flow into caller.go.
//
//horus:wallclock — fixture: deliberate bridge file; every escape here
// is exercised from the non-exempt caller.go next door.
package detbridge

import (
	"math/rand"
	"time"
)

// Bridge wraps wall-clock access the way udpnet/realtime bridges do.
type Bridge struct{}

// WallNow is the helper-call shape: a banned read one level down.
func (b *Bridge) WallNow() time.Time { return time.Now() }

// wallDeep adds a second level for the deep-chain variant.
func (b *Bridge) wallDeep() time.Time { return b.WallNow() }

// Elapsed launders time.Since.
func (b *Bridge) Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }

// Draw launders the global rand source.
func (b *Bridge) Draw() int { return rand.Intn(10) }

// Clock is the func-typed struct field shape: Src is bound to
// time.Now here, in the exempt file, and invoked from caller.go.
type Clock struct {
	Src func() time.Time
}

// NewClock builds the laundered clock.
func NewClock() *Clock { return &Clock{Src: time.Now} }
