//horus:wallclock — fixture: stands in for a package that really talks to the kernel
package detwallclock

import "time"

// Bridge is exempt: the file-level marker above the package clause
// opts the whole file out, the way udpnet and the chaosnet proxy do.
func Bridge() time.Time { return time.Now() }
