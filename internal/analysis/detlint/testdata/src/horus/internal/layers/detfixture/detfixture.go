// Package detfixture is the detlint fixture: a pretend sim-driven
// layer package (its import path puts it under horus/internal/) with
// every class of determinism escape plus the legal alternatives.
package detfixture

import (
	"math/rand"
	"time"
)

func flagged() {
	_ = time.Now()                 // want `wall clock escape: time\.Now`
	time.Sleep(time.Millisecond)   // want `wall clock escape: time\.Sleep`
	<-time.After(time.Millisecond) // want `wall clock escape: time\.After`
	_ = time.NewTimer(time.Second) // want `wall clock escape: time\.NewTimer`
	clock := time.Now              // want `wall clock escape: time\.Now`
	_ = clock
	_ = rand.Intn(4)      // want `global rand\.Intn`
	rand.Shuffle(1, swap) // want `global rand\.Shuffle`
	go flagged()          // want `bare goroutine`
}

func accepted() {
	// Seeded generators are the deterministic path.
	rng := rand.New(rand.NewSource(7))
	_ = rng.Intn(4)
	// Duration arithmetic and time.Time plumbing carry no wall-clock
	// read; only the banned sources are flagged.
	const step = 5 * time.Millisecond
	var t time.Time
	_ = t.Add(step)
}

func swap(i, j int) {}
