// Package detfixture is the detlint fixture: a pretend sim-driven
// layer package (its import path puts it under horus/internal/) with
// every class of determinism escape plus the legal alternatives.
package detfixture

import (
	"math/rand"
	"sync"
	"time"
)

// buffers is an undeclared pool in sim-driven code: reuse order depends
// on GC timing, and no //horus:pool marker vouches for transparency.
var buffers sync.Pool // want `sync\.Pool reuse order depends on GC timing`

func flagged() {
	_ = time.Now()                 // want `wall clock escape: time\.Now`
	time.Sleep(time.Millisecond)   // want `wall clock escape: time\.Sleep`
	<-time.After(time.Millisecond) // want `wall clock escape: time\.After`
	_ = time.NewTimer(time.Second) // want `wall clock escape: time\.NewTimer`
	clock := time.Now              // want `wall clock escape: time\.Now`
	_ = clock
	_ = rand.Intn(4)      // want `global rand\.Intn`
	rand.Shuffle(1, swap) // want `global rand\.Shuffle`
	go flagged()          // want `bare goroutine`
	_ = buffers.Get()
	local := sync.Pool{New: func() interface{} { return nil }} // want `sync\.Pool reuse order depends on GC timing`
	_ = local
}

func accepted() {
	// Seeded generators are the deterministic path.
	rng := rand.New(rand.NewSource(7))
	_ = rng.Intn(4)
	// Duration arithmetic and time.Time plumbing carry no wall-clock
	// read; only the banned sources are flagged.
	const step = 5 * time.Millisecond
	var t time.Time
	_ = t.Add(step)
}

func swap(i, j int) {}
