// Package detlint enforces the determinism contract that makes the
// chaos and differential suites trustworthy: sim-driven code must take
// time from the sched/transport virtual clock and randomness from a
// seeded *rand.Rand, and must run on the endpoint event queue rather
// than ad-hoc goroutines. Concretely, inside horus/internal/...
// non-test files it forbids
//
//   - wall-clock reads and timers: time.Now, time.Sleep, time.After,
//     time.AfterFunc, time.Tick, time.NewTimer, time.NewTicker,
//     time.Since, time.Until;
//   - the process-global math/rand generator (rand.Intn, rand.Seed,
//     ...); constructing a seeded generator via rand.New/NewSource
//     stays legal, and methods on a *rand.Rand are untouched;
//   - bare go statements, which escape the run-to-completion
//     event-queue model of paper §3/§10;
//   - sync.Pool, whose reuse order depends on GC timing and scheduler
//     interleaving — pooled storage in sim-driven code is only sound
//     when buffer provenance is behaviour-transparent, which the §10
//     message pool is and arbitrary pools are not.
//
// The packages that genuinely bridge to the real world — udpnet, the
// chaosnet proxy, netsim's real-time transport, sched's wall-clock
// waits — opt out per file with a "//horus:wallclock — <reason>"
// marker in the file header. Deliberately transparent pools (the §10
// message buffer pool) declare it with "//horus:pool — <reason>" the
// same way. Markers must sit at the top of the file (package clause
// or above), so an exemption is visible before any code and a new
// escape cannot hide behind an old annotation elsewhere in the
// package.
//
// The selector check alone has a laundering blind spot: a banned read
// whose selector sits in an exempt file can flow into non-exempt code
// through a helper call, a method value, a defer, or a func-typed
// struct field bound in the exempt file. A second, interprocedural
// sweep closes it with the effect-summary engine: any function
// declared in a non-exempt file whose summary carries a wall-clock or
// global-rand fact originating in an exempt (or test) file is flagged
// at the call that imports the effect, with the full chain in the
// diagnostic. Origins in non-exempt files are skipped — the selector
// check already flags those at the source, and flagging every caller
// would cascade one escape into dozens of findings.
package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"horus/internal/analysis"
	"horus/internal/analysis/annot"
	"horus/internal/analysis/summary"
)

// Analyzer is the detlint pass.
var Analyzer = &analysis.Analyzer{
	Name: "detlint",
	Doc: "forbid wall-clock time, global math/rand, bare goroutines and " +
		"undeclared sync.Pool use in sim-driven packages (file opt-outs: " +
		"//horus:wallclock, //horus:pool)",
	Run: run,
}

// wallclockTag is the file-level opt-out marker for real-world bridge
// code; poolTag is the narrower declaration that a file's sync.Pool
// use is behaviour-transparent (buffer provenance never observable).
const (
	wallclockTag = "wallclock"
	poolTag      = "pool"
)

// scopePrefix limits the analyzer to the module's internal tree; cmd/
// and examples/ are wall-clock programs by nature.
const scopePrefix = "horus/internal/"

// bannedTime lists the time package functions that read or schedule
// against the wall clock. time.Duration arithmetic and time.Time
// plumbing stay legal — the contract is about where time comes from.
var bannedTime = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

// allowedRand lists the math/rand constructors that build seeded,
// reproducible generators; everything else at package level draws
// from the global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), scopePrefix) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue // tests drive wall-clock soaks legitimately
		}
		if annot.FileMarker(file, wallclockTag) {
			continue
		}
		poolDeclared := annot.FileMarker(file, poolTag)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"bare goroutine escapes the event-queue discipline; "+
						"post to the endpoint executor or a sched primitive instead "+
						"(//horus:wallclock opts the file out)")
			case *ast.SelectorExpr:
				checkSelector(pass, n, poolDeclared)
			}
			return true
		})
	}
	checkLaundering(pass)
	return nil
}

// checkLaundering is the interprocedural sweep: it flags banned
// effects that reach non-exempt code only through a call chain rooted
// in an exempt or test file — helper calls, method values, defers,
// and func-typed struct fields bound in bridge code.
func checkLaundering(pass *analysis.Pass) {
	eng := summary.Build(pass, summary.Options{})
	exemptPos := func(pos token.Pos) bool {
		if pass.IsTestFile(pos) {
			return true
		}
		f := eng.FileOf(pos)
		return f != nil && annot.FileMarker(f, wallclockTag)
	}
	type reportKey struct {
		pos    token.Pos
		detail string
	}
	seen := map[reportKey]bool{}
	for _, n := range eng.Nodes() {
		if n.File == nil || annot.FileMarker(n.File, wallclockTag) || pass.IsTestFile(n.Pos()) {
			continue
		}
		for _, f := range n.Facts() {
			if f.Kind != summary.Wallclock && f.Kind != summary.GlobalRand {
				continue
			}
			if len(f.Chain) == 0 || !exemptPos(f.Pos) {
				continue // direct escapes are the selector check's job
			}
			pos := f.Chain[0].Pos
			key := reportKey{pos: pos, detail: f.Detail}
			if seen[key] {
				continue
			}
			seen[key] = true
			what := "wall clock escape"
			if f.Kind == summary.GlobalRand {
				what = "nondeterminism escape"
			}
			pass.Report(analysis.Diagnostic{
				Pos: pos,
				Message: what + ": " + f.Detail + " reached via " + eng.FormatChain(f) +
					" — the call chain launders a banned read out of an exempt file into " +
					"sim-driven code; take time from the sched/transport virtual clock " +
					"or mark this file //horus:wallclock",
				Analyzer: pass.Analyzer.Name,
				Chain:    eng.ChainStrings(f),
			})
		}
	}
}

// checkSelector flags uses of banned package-level functions and
// undeclared sync.Pool storage. Working on selector uses (not just
// calls) also catches escapes passed as function values, e.g.
// `clock := time.Now`.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr, poolDeclared bool) {
	if tn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName); ok {
		if !poolDeclared && tn.Pkg() != nil && tn.Pkg().Path() == "sync" && tn.Name() == "Pool" {
			pass.Reportf(sel.Pos(),
				"sync.Pool reuse order depends on GC timing; pooled storage in "+
					"sim-driven code must be behaviour-transparent — declare it with "+
					"a //horus:pool file marker or keep buffers unpooled")
		}
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTime[fn.Name()] {
			pass.Reportf(sel.Pos(),
				"wall clock escape: time.%s bypasses the sched/transport virtual clock; "+
					"use the layer Context timer or annotate the file //horus:wallclock",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[fn.Name()] {
			pass.Reportf(sel.Pos(),
				"nondeterminism escape: global rand.%s is not seed-reproducible; "+
					"draw from a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
				fn.Name())
		}
	}
}
