package detlint_test

import (
	"testing"

	"horus/internal/analysis/analysistest"
	"horus/internal/analysis/detlint"
)

func TestDetLint(t *testing.T) {
	analysistest.Run(t, detlint.Analyzer,
		"horus/internal/layers/detfixture",
		"horus/internal/layers/detwallclock",
		"horus/internal/layers/detpool",
		"horus/internal/layers/detbridge",
		"outsider",
	)
}
