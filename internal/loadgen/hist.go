// Package loadgen is the cluster-scale serving harness: a
// deterministic open-loop workload generator that drives hundreds of
// groups and thousands of endpoints through real composed stacks over
// a fabric (netsim virtual time by default, chaosnet UDP at reduced
// scale), records per-cast latency histograms and per-window goodput,
// and sweeps offered load to locate the saturation knee — the last
// load level at which delivered goodput still tracks offered load and
// tail latency stays bounded. Every number it produces is a pure
// function of the seed on the simulated fabric, so knee locations are
// replayable bit-for-bit and CI-gatable.
package loadgen

import (
	"math/bits"
	"time"
)

// Histogram geometry: a log-linear (HDR-style) fixed-bucket layout
// over non-negative int64 nanoseconds. Values below subCount are exact
// (one bucket per nanosecond); above that, each power-of-two range is
// split into subCount/2 linear sub-buckets, bounding the relative
// quantile error by 2/subCount (< 1.6%). The layout is a compile-time
// constant, so every histogram is mergeable with every other by
// element-wise addition — per-group histograms merge into cluster
// aggregates without resampling.
const (
	subBits  = 7
	subCount = 1 << subBits // 128 exact low buckets
	subHalf  = subCount / 2
	// numBuckets covers every non-negative int64: exponents run from
	// bits.Len64 = subBits+1 up to 63, each contributing subHalf
	// buckets beyond the exact range.
	numBuckets = subCount + (63-subBits)*subHalf
)

// Hist is a fixed-bucket latency histogram. The zero value is NOT
// ready; use NewHist. All methods are single-goroutine; the harness
// serializes access behind its own lock on wall-clock fabrics.
type Hist struct {
	counts [numBuckets]uint64
	total  uint64
	sum    int64
	min    int64
	max    int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{min: int64(^uint64(0) >> 1)} }

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	e := bits.Len64(u) - subBits // ≥ 1
	return subCount + (e-1)*subHalf + int(u>>uint(e)) - subHalf
}

// bucketUpper is the largest value mapping to bucket idx — the value
// Quantile reports, making every quantile a deterministic conservative
// upper estimate within the layout's relative error.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	b := idx - subCount
	e := uint(b/subHalf + 1)
	sub := int64(b%subHalf + subHalf)
	return (sub+1)<<e - 1
}

// Record adds one observation. Negative durations (a clock running
// backwards on a wall-clock fabric) clamp to zero rather than
// corrupting the layout.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total }

// Min returns the exact smallest recorded value, or 0 when empty.
func (h *Hist) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the exact largest recorded value, or 0 when empty.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the exact arithmetic mean, or 0 when empty.
func (h *Hist) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.total))
}

// Quantile returns an upper estimate of the q-quantile: the highest
// value equivalent to the bucket holding the observation of rank
// ceil(q·count). q ≤ 0 reports the exact minimum, q ≥ 1 the exact
// maximum; an empty histogram reports 0 everywhere. The estimate is
// exact for values below 128ns and within 1/64 relative error above.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	rank := uint64(q * float64(h.total))
	if uint64(q*float64(h.total)) != rank || q*float64(h.total) > float64(rank) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for i := 0; i < numBuckets; i++ {
		seen += h.counts[i]
		if seen >= rank {
			u := bucketUpper(i)
			if u > h.max {
				// The top bucket's nominal bound can exceed the true
				// maximum; never report beyond an observed value.
				u = h.max
			}
			return time.Duration(u)
		}
	}
	return time.Duration(h.max)
}

// Merge adds every observation of o into h. Histograms share one
// compile-time layout, so merging is element-wise and associative: the
// cluster aggregate is identical whatever order per-group histograms
// arrive in.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.total += o.total
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Bucket is one non-empty histogram bucket, for snapshots and tests.
type Bucket struct {
	// Lower and Upper bound the values the bucket holds (inclusive).
	Lower, Upper time.Duration
	Count        uint64
}

// Buckets returns the non-empty buckets in ascending value order — the
// sparse encoding snapshots serialize.
func (h *Hist) Buckets() []Bucket {
	var out []Bucket
	lower := int64(0)
	for i := 0; i < numBuckets; i++ {
		upper := bucketUpper(i)
		if c := h.counts[i]; c != 0 {
			out = append(out, Bucket{Lower: time.Duration(lower), Upper: time.Duration(upper), Count: c})
		}
		lower = upper + 1
	}
	return out
}
