package loadgen

import (
	"testing"
	"time"
)

// drain collects every arrival from a generator.
func drain(g *arrivalGen) []time.Duration {
	var out []time.Duration
	for {
		t, ok := g.next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// TestArrivalRates: over a long horizon each shape's arrival count
// matches its configured mean rate within CI-safe bounds (a Poisson
// count's relative sd at n=10000 is 1%; ±10% is > 9 sigma).
func TestArrivalRates(t *testing.T) {
	const rate, horizon = 1000.0, 10 * time.Second
	want := rate * horizon.Seconds()
	for _, spec := range []CohortSpec{
		{Name: "steady", Shape: ShapeSteady},
		{Name: "diurnal", Shape: ShapeDiurnal, Period: time.Second, Duty: 0.5},
		{Name: "burst", Shape: ShapeBurst, Period: 500 * time.Millisecond, Duty: 0.2},
	} {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			got := float64(len(drain(newArrivalGen(123, spec, rate, horizon))))
			if got < 0.9*want || got > 1.1*want {
				t.Fatalf("%s: %v arrivals over %v at rate %v, want %v +/-10%%", spec.Name, got, horizon, rate, want)
			}
		})
	}
}

// TestArrivalWindow: cohorts activate at Start and deactivate at Stop.
func TestArrivalWindow(t *testing.T) {
	spec := CohortSpec{Shape: ShapeSteady, Start: time.Second, Stop: 2 * time.Second}
	times := drain(newArrivalGen(5, spec, 500, 10*time.Second))
	if len(times) == 0 {
		t.Fatal("no arrivals in the active window")
	}
	for _, at := range times {
		if at < spec.Start || at >= spec.Stop {
			t.Fatalf("arrival at %v outside [%v, %v)", at, spec.Start, spec.Stop)
		}
	}
	// The run horizon truncates a cohort whose own Stop is later.
	spec = CohortSpec{Shape: ShapeSteady, Stop: time.Hour}
	for _, at := range drain(newArrivalGen(6, spec, 500, time.Second)) {
		if at >= time.Second {
			t.Fatalf("arrival at %v past the run horizon", at)
		}
	}
}

// TestBurstConcentration: a burst cohort fires only inside the duty
// window of each period and at the elevated in-burst rate.
func TestBurstConcentration(t *testing.T) {
	spec := CohortSpec{Shape: ShapeBurst, Period: time.Second, Duty: 0.2}
	times := drain(newArrivalGen(7, spec, 200, 10*time.Second))
	if len(times) == 0 {
		t.Fatal("no burst arrivals")
	}
	for _, at := range times {
		if phase := at % spec.Period; float64(phase) >= spec.Duty*float64(spec.Period) {
			t.Fatalf("arrival at %v is outside the burst window (phase %v)", at, phase)
		}
	}
}

// TestDiurnalModulation: a diurnal cohort's first half-period (rate
// above mean) draws measurably more arrivals than its second half.
func TestDiurnalModulation(t *testing.T) {
	spec := CohortSpec{Shape: ShapeDiurnal, Period: 2 * time.Second, Duty: 0.8}
	times := drain(newArrivalGen(8, spec, 500, 10*time.Second))
	var up, down int
	for _, at := range times {
		if at%spec.Period < spec.Period/2 {
			up++
		} else {
			down++
		}
	}
	// With Duty 0.8 the expected split is (1+2·0.8/π) : (1−2·0.8/π) ≈
	// 1.51 : 0.49; requiring up > 1.2×down leaves a wide margin.
	if up == 0 || down == 0 || float64(up) < 1.2*float64(down) {
		t.Fatalf("diurnal halves %d/%d show no modulation", up, down)
	}
}

// TestArrivalDeterminism: equal seeds replay the identical stream;
// different seeds do not.
func TestArrivalDeterminism(t *testing.T) {
	spec := CohortSpec{Shape: ShapeDiurnal, Period: time.Second, Duty: 0.5}
	a := drain(newArrivalGen(42, spec, 300, 5*time.Second))
	b := drain(newArrivalGen(42, spec, 300, 5*time.Second))
	if len(a) != len(b) {
		t.Fatalf("same-seed lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed streams diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := drain(newArrivalGen(43, spec, 300, 5*time.Second))
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced the identical stream")
		}
	}
}

// TestMixSeedIndependence: per-(group, cohort) seeds are distinct, so
// adding a group never perturbs another group's arrivals.
func TestMixSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for gi := 0; gi < 200; gi++ {
		for ci := 0; ci < 4; ci++ {
			s := mixSeed(99, gi, ci)
			if seen[s] {
				t.Fatalf("seed collision at group %d cohort %d", gi, ci)
			}
			seen[s] = true
		}
	}
}

// TestWorkloadShapeVocabularyCoverage: the default mix exercises every
// shape the generator vocabulary defines — a new Shape must be added
// to the standard serving mix (or this list) before it ships.
func TestWorkloadShapeVocabularyCoverage(t *testing.T) {
	covered := map[Shape]bool{}
	for _, c := range DefaultCohorts() {
		covered[c.Shape] = true
		if c.Fraction <= 0 {
			t.Fatalf("cohort %q has non-positive fraction", c.Name)
		}
	}
	for _, s := range Shapes {
		if !covered[s] {
			t.Errorf("shape %v not drawn by DefaultCohorts", s)
		}
	}
	var total float64
	for _, c := range DefaultCohorts() {
		total += c.Fraction
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("default cohort fractions sum to %v, want 1", total)
	}
	// And every shape stringifies (snapshot labels depend on it).
	for _, s := range Shapes {
		if s.String() == "" {
			t.Errorf("shape %d has empty name", int(s))
		}
	}
}

// TestZeroRateCohortIsSilent: a zero-rate stream produces nothing
// rather than dividing by zero.
func TestZeroRateCohortIsSilent(t *testing.T) {
	if got := drain(newArrivalGen(1, CohortSpec{Shape: ShapeSteady}, 0, time.Second)); len(got) != 0 {
		t.Fatalf("zero-rate cohort produced %d arrivals", len(got))
	}
}
