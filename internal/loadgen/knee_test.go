package loadgen

import (
	"testing"
	"time"

	"horus/internal/chaos"
	"horus/internal/netsim"
)

// kneeSweepConfig is the pinned saturation scenario: 32 endpoints
// behind 60 KB/s egress budgets, swept over a geometric load grid. At
// this budget the p99 criterion fails between 264 and 459 casts/s per
// group, so the knee sits strictly inside the grid.
func kneeSweepConfig() SweepConfig {
	return SweepConfig{
		Base: Config{
			Seed:    11,
			Stack:   "fifo",
			Groups:  8,
			Members: 4,
			Body:    48,
			Warmup:  100 * time.Millisecond,
			Measure: 500 * time.Millisecond,
			Drain:   200 * time.Millisecond,
			Window:  125 * time.Millisecond,
			Host:    netsim.Host{EgressBudget: 60_000},
		},
		Loads:    DefaultLoadGrid(6, 50, 800),
		RatioTol: 0.05,
		P99Bound: 50 * time.Millisecond,
	}
}

func runKneeSweep(t *testing.T, sc SweepConfig) *SweepResult {
	t.Helper()
	sr, err := Sweep(func() chaos.Fabric { return chaos.NewSimFabric(sc.Base.Seed, testLink) }, sc)
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestKneePinnedLocation is the pinned-seed knee regression: the
// scenario above located its knee at 263.90 casts/s per group when
// first measured. The simulation is deterministic, so the knee must
// stay at that grid point; the tolerance of one grid step documents
// how much drift a deliberate protocol change may justify before this
// pin has to be re-derived (with the EXPERIMENTS.md curves).
func TestKneePinnedLocation(t *testing.T) {
	sr := runKneeSweep(t, kneeSweepConfig())
	if !sr.Saturated {
		t.Fatalf("sweep never saturated: knee censored at %.4g", sr.Knee)
	}
	const pinned = 263.90
	lo, hi := 151.57, 459.48 // one grid step either side of the pin
	if sr.Knee < lo || sr.Knee > hi {
		t.Fatalf("knee at %.4g casts/s, pinned %.4g (allowed drift [%.4g, %.4g])", sr.Knee, pinned, lo, hi)
	}
	if sr.Knee != pinned {
		// Inside tolerance but off the pin: make the drift loud so the
		// pin gets re-derived deliberately, not silently.
		t.Logf("knee drifted off the pin: %.4g (pinned %.4g)", sr.Knee, pinned)
	}
	// While the system tracks offered load, goodput rises ~Members per
	// offered cast.
	if sr.Slope < 0.95*float64(sr.Points[0].Result.Members) {
		t.Fatalf("pre-knee slope %.3f, want ~%d", sr.Slope, sr.Points[0].Result.Members)
	}
	// The knee criteria must actually bind: every pre-knee point
	// passes, and the first post-knee point fails.
	var failed bool
	for _, p := range sr.Points {
		if !p.Pass {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("no failing point despite Saturated")
	}
}

// TestSweepDeterministic: the bit-identical replay guarantee at sweep
// granularity — two same-seed sweeps render byte-identical snapshots.
func TestSweepDeterministic(t *testing.T) {
	sc := kneeSweepConfig()
	sc.Loads = DefaultLoadGrid(3, 100, 400) // smaller grid, same machinery
	a := runKneeSweep(t, sc)
	b := runKneeSweep(t, sc)
	ab, err := a.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Fatalf("same-seed sweep snapshots differ:\n%s\n--\n%s", ab, bb)
	}
}

func TestDefaultLoadGrid(t *testing.T) {
	g := DefaultLoadGrid(6, 50, 800)
	if len(g) != 6 || g[0] != 50 || g[5] != 800 {
		t.Fatalf("grid %v: want 6 points from 50 to 800", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not ascending: %v", g)
		}
	}
	if got := DefaultLoadGrid(1, 100, 200); len(got) != 1 || got[0] != 100 {
		t.Fatalf("degenerate grid %v", got)
	}
}

func TestSnapshotCheckAgainst(t *testing.T) {
	sc := kneeSweepConfig()
	sc.Loads = []float64{100, 300}
	sr := runKneeSweep(t, sc)
	snap := sr.Snapshot()

	if err := snap.CheckAgainst(snap, 0.15); err != nil {
		t.Fatalf("snapshot fails against itself: %v", err)
	}

	// A knee that moved beyond tolerance must fail the gate.
	moved := sr.Snapshot()
	for i, r := range moved.Benchmarks {
		if _, ok := r.Extra["knee_cps"]; ok {
			moved.Benchmarks[i].Extra = map[string]float64{"knee_cps": r.Extra["knee_cps"] * 2, "saturated": r.Extra["saturated"], "slope": r.Extra["slope"]}
		}
	}
	if err := moved.CheckAgainst(snap, 0.15); err == nil {
		t.Fatal("doubled knee passed the check")
	}

	// A collapsed goodput ratio must fail the gate.
	worse := sr.Snapshot()
	for i, r := range worse.Benchmarks {
		if _, ok := r.Extra["ratio"]; ok {
			worse.Benchmarks[i].Extra["ratio"] = r.Extra["ratio"] - 0.5
		}
	}
	if err := worse.CheckAgainst(snap, 0.15); err == nil {
		t.Fatal("collapsed ratio passed the check")
	}

	// Records only one side knows are ignored (grids may grow).
	grown := sr.Snapshot()
	grown.Benchmarks = append(grown.Benchmarks, Record{Name: "Load/new/load=999", Extra: map[string]float64{"ratio": 0.1}})
	if err := grown.CheckAgainst(snap, 0.15); err != nil {
		t.Fatalf("grown grid failed the check: %v", err)
	}
}

// TestLoadClusterScaleKnee is the acceptance soak: 100 groups x 10
// members = 1000 endpoints on one simulated fabric, swept to a
// measured saturation knee, twice, with bit-identical snapshots.
// Skipped under -short; CI runs it in the scheduled soak lane and the
// horus-load smoke covers the reduced-scale path on every push.
func TestLoadClusterScaleKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster-scale soak: skipped under -short")
	}
	sc := SweepConfig{
		Base: Config{
			Seed:    42,
			Stack:   "fifo",
			Groups:  100,
			Members: 10,
			Body:    64,
			Warmup:  100 * time.Millisecond,
			Measure: 250 * time.Millisecond,
			Drain:   150 * time.Millisecond,
			Window:  125 * time.Millisecond,
			Host:    netsim.Host{EgressBudget: 150_000},
		},
		Loads:    []float64{100, 400},
		RatioTol: 0.05,
		P99Bound: 100 * time.Millisecond,
	}
	run := func() (*SweepResult, []byte) {
		sr := runKneeSweep(t, sc)
		b, err := sr.Snapshot().Encode()
		if err != nil {
			t.Fatal(err)
		}
		return sr, b
	}
	sr, a := run()
	if n := sr.Points[0].Result.Groups * sr.Points[0].Result.Members; n < 1000 {
		t.Fatalf("acceptance scale is %d endpoints, need >= 1000", n)
	}
	if !sr.Saturated {
		t.Fatalf("1000-endpoint sweep did not saturate (knee censored at %.4g)", sr.Knee)
	}
	if sr.Knee <= 0 {
		t.Fatal("even the lowest load failed: no measurable knee")
	}
	_, b := run()
	if string(a) != string(b) {
		t.Fatal("cluster-scale sweep replay is not bit-identical")
	}
	t.Logf("1000-endpoint knee at %.4g casts/s per group", sr.Knee)
}
