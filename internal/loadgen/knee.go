package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"horus/internal/chaos"
)

// SweepConfig drives a saturation sweep: the same cluster and workload
// mix run once per offered load level, each on a fresh fabric.
type SweepConfig struct {
	// Base is the run configuration; its Rate field is overridden by
	// each sweep point.
	Base Config
	// Loads are the offered per-group cast rates to sweep, ascending.
	Loads []float64
	// RatioTol is the goodput tolerance: a point passes only if
	// delivered/expected ≥ 1−RatioTol. Zero means 0.05.
	RatioTol float64
	// P99Bound fails a point whose p99 latency exceeds it; zero
	// disables the latency criterion.
	P99Bound time.Duration
}

// Point is one sweep measurement with its pass/fail verdict.
type Point struct {
	Load   float64 `json:"load_cps"`
	Pass   bool    `json:"pass"`
	Result *Result `json:"result"`
}

// SweepResult is a full sweep with its knee analysis.
type SweepResult struct {
	Seed     int64   `json:"seed"`
	Stack    string  `json:"stack"`
	FastPath bool    `json:"fast_path"`
	RatioTol float64 `json:"ratio_tol"`
	P99Bound int64   `json:"p99_bound_ns"`
	Points   []Point `json:"points"`

	// Knee is the saturation knee: the last load of the passing
	// prefix — the highest offered load at which goodput still tracks
	// offered load within tolerance and p99 stays under the bound.
	// Zero when even the first point fails.
	Knee float64 `json:"knee_cps"`
	// Saturated reports whether the sweep actually crossed the knee
	// (some point failed); a false value means the knee is censored at
	// the top of the grid.
	Saturated bool `json:"saturated"`
	// Slope is the least-squares slope of delivered goodput versus
	// measured offered rate over the passing prefix — ≈ group size
	// while the system tracks offered load.
	Slope float64 `json:"slope"`
}

// DefaultLoadGrid returns n geometrically spaced loads from lo to hi —
// geometric because saturation phenomena are multiplicative.
func DefaultLoadGrid(n int, lo, hi float64) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = math.Round(v*100) / 100
		v *= ratio
	}
	out[n-1] = hi
	return out
}

// pass applies the knee criteria to one run.
func (sc SweepConfig) pass(r *Result) bool {
	tol := sc.RatioTol
	if tol <= 0 {
		tol = 0.05
	}
	if r.Ratio < 1-tol {
		return false
	}
	if sc.P99Bound > 0 && r.P99 > sc.P99Bound {
		return false
	}
	return true
}

// Sweep measures every load level and locates the knee. newFabric must
// return a fresh fabric per call (sweep points must not share state);
// Sweep closes each one.
func Sweep(newFabric func() chaos.Fabric, sc SweepConfig) (*SweepResult, error) {
	if len(sc.Loads) == 0 {
		return nil, fmt.Errorf("loadgen: sweep needs at least one load level")
	}
	loads := append([]float64(nil), sc.Loads...)
	sort.Float64s(loads)
	base := sc.Base.fill()
	sr := &SweepResult{
		Seed:     base.Seed,
		Stack:    base.Stack,
		FastPath: base.FastPath,
		RatioTol: sc.RatioTol,
		P99Bound: int64(sc.P99Bound),
	}
	if sr.RatioTol <= 0 {
		sr.RatioTol = 0.05
	}
	for _, load := range loads {
		cfg := base
		cfg.Rate = load
		f := newFabric()
		r, err := Run(f, cfg)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loadgen: sweep at %.4g casts/s: %w", load, err)
		}
		sr.Points = append(sr.Points, Point{Load: load, Pass: sc.pass(r), Result: r})
	}

	// Knee: the passing prefix ends at the first failure; later
	// recoveries (noise past saturation) don't count.
	var sx2, sxy float64
	for _, p := range sr.Points {
		if !p.Pass {
			sr.Saturated = true
			break
		}
		sr.Knee = p.Load
		sx2 += p.Result.OfferedRate * p.Result.OfferedRate
		sxy += p.Result.OfferedRate * p.Result.Goodput
	}
	if sx2 > 0 {
		sr.Slope = sxy / sx2
	}
	return sr, nil
}

// Snapshot is the machine-readable sweep document, schema-compatible
// with horus-bench -json so the same tooling can diff either: one
// record per sweep point (ns_per_op carries p99) plus one knee record.
type Snapshot struct {
	Suite      string   `json:"suite"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Benchmarks []Record `json:"benchmarks"`
}

// Record mirrors horus-bench's per-benchmark JSON record.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Snapshot renders the sweep. Environment fields describe the host;
// every metric field is a pure function of the seed on the simulated
// fabric, so two same-seed snapshots are byte-identical on one host.
func (sr *SweepResult) Snapshot() Snapshot {
	snap := Snapshot{
		Suite:     "horus-load",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	arm := fmt.Sprintf("%s/fast=%v", sr.Stack, sr.FastPath)
	for _, p := range sr.Points {
		r := p.Result
		pass := 0.0
		if p.Pass {
			pass = 1
		}
		snap.Benchmarks = append(snap.Benchmarks, Record{
			Name:       fmt.Sprintf("Load/%s/load=%g", arm, p.Load),
			Iterations: int(r.OfferedCasts),
			NsPerOp:    float64(r.P99),
			Extra: map[string]float64{
				"offered_cps": r.OfferedRate,
				"goodput_dps": r.Goodput,
				"ratio":       r.Ratio,
				"delivered":   float64(r.Delivered),
				"expected":    float64(r.Expected),
				"mean_ns":     float64(r.Mean),
				"p50_ns":      float64(r.P50),
				"p95_ns":      float64(r.P95),
				"p99_ns":      float64(r.P99),
				"max_ns":      float64(r.Max),
				"shed":        float64(r.Shed),
				"lost":        float64(r.Lost),
				"pass":        pass,
			},
		})
	}
	sat := 0.0
	if sr.Saturated {
		sat = 1
	}
	snap.Benchmarks = append(snap.Benchmarks, Record{
		Name: fmt.Sprintf("Knee/%s", arm),
		Extra: map[string]float64{
			"knee_cps":  sr.Knee,
			"saturated": sat,
			"slope":     sr.Slope,
		},
	})
	return snap
}

// MarshalJSON-stable rendering for files and stdout.
func (s Snapshot) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeSnapshot parses a snapshot previously rendered by Encode.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}

// CheckAgainst gates a new snapshot on an old one: knee locations must
// agree within tol (a fraction, e.g. 0.15), and per-point goodput
// ratios must not fall by more than tol. Records present on only one
// side are ignored — grids may grow.
func (s Snapshot) CheckAgainst(old Snapshot, tol float64) error {
	if tol <= 0 {
		tol = 0.15
	}
	prev := make(map[string]Record, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		prev[r.Name] = r
	}
	var errs []string
	for _, r := range s.Benchmarks {
		o, ok := prev[r.Name]
		if !ok {
			continue
		}
		if knee, kneeOK := r.Extra["knee_cps"]; kneeOK {
			oldKnee := o.Extra["knee_cps"]
			if oldKnee > 0 && math.Abs(knee-oldKnee) > tol*oldKnee {
				errs = append(errs, fmt.Sprintf("%s: knee moved %.4g -> %.4g (> ±%.0f%%)", r.Name, oldKnee, knee, tol*100))
			}
			continue
		}
		if oldRatio, ok := o.Extra["ratio"]; ok {
			if r.Extra["ratio"] < oldRatio-tol {
				errs = append(errs, fmt.Sprintf("%s: goodput ratio fell %.4f -> %.4f (> %.2f)", r.Name, oldRatio, r.Extra["ratio"], tol))
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("loadgen: snapshot check failed:\n  %s", joinLines(errs))
	}
	return nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}
