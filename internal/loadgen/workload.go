package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Shape selects the time profile of a cohort's offered load. All
// shapes have the same long-run mean rate; they differ in how the
// casts bunch, which is what separates a harness that finds real knees
// from one that only measures steady state.
type Shape int

const (
	// ShapeSteady is a homogeneous Poisson process at the cohort rate.
	ShapeSteady Shape = iota
	// ShapeDiurnal modulates the rate sinusoidally over Period:
	// λ(t) = r·(1 + Duty·sin(2πt/Period)), Duty in [0,1].
	ShapeDiurnal
	// ShapeBurst concentrates the whole cohort rate into the first
	// Duty fraction of each Period and goes silent for the rest:
	// bursts at r/Duty, mean still r.
	ShapeBurst
)

// Shapes lists every workload shape, in declaration order — the
// vocabulary the coverage test asserts the default mix draws from.
var Shapes = []Shape{ShapeSteady, ShapeDiurnal, ShapeBurst}

func (s Shape) String() string {
	switch s {
	case ShapeSteady:
		return "steady"
	case ShapeDiurnal:
		return "diurnal"
	case ShapeBurst:
		return "burst"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// CohortSpec describes one client cohort inside every group: a share
// of the group's offered rate with a time profile and an activity
// window. Cohorts are the multi-period part of the workload — a run
// mixes steady background, slow diurnal swell, and short bursts.
type CohortSpec struct {
	Name  string
	Shape Shape
	// Fraction is this cohort's share of the group's offered rate.
	// The fractions of a mix should sum to 1.
	Fraction float64
	// Start and Stop bound the activity window relative to run start;
	// Stop == 0 means active until arrivals close.
	Start, Stop time.Duration
	// Period is the modulation period for diurnal and burst shapes.
	Period time.Duration
	// Duty is the diurnal amplitude (0..1) or the burst duty cycle
	// (0 < Duty ≤ 1).
	Duty float64
	// Body overrides the run's payload size for this cohort when > 0.
	Body int
}

// DefaultCohorts is the standard serving mix: a steady majority, a
// diurnal swell, and a bursty tail. Every Shape in Shapes appears.
func DefaultCohorts() []CohortSpec {
	return []CohortSpec{
		{Name: "steady", Shape: ShapeSteady, Fraction: 0.60},
		{Name: "diurnal", Shape: ShapeDiurnal, Fraction: 0.25, Period: time.Second, Duty: 0.5},
		{Name: "burst", Shape: ShapeBurst, Fraction: 0.15, Period: 500 * time.Millisecond, Duty: 0.2},
	}
}

// splitmix64 is the standard 64-bit mixer; it turns (seed, group,
// cohort) coordinates into independent-looking streams so adding a
// group or cohort never perturbs another's arrivals.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mixSeed derives the rng seed for cohort ci of group gi.
func mixSeed(seed int64, gi, ci int) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)^uint64(gi)<<20) ^ uint64(ci)<<8))
}

// arrivalGen generates one cohort's cast times by thinning (Ogata's
// method): exponential candidate gaps at the shape's peak rate λmax,
// each accepted with probability λ(t)/λmax. Thinning keeps the
// open-loop property exactly — arrivals never wait on the system — and
// is deterministic per seed because the only randomness is the
// generator's own stream.
type arrivalGen struct {
	rng    *rand.Rand
	spec   CohortSpec
	rate   float64 // cohort mean rate, casts/sec
	lamMax float64 // peak instantaneous rate
	t      time.Duration
	done   bool
}

// newArrivalGen builds the generator for one (group, cohort) stream.
// rate is the cohort's mean casts/sec (group rate × Fraction); stop
// closes arrivals at the end of the measured portion of the run.
func newArrivalGen(seed int64, spec CohortSpec, rate float64, stop time.Duration) *arrivalGen {
	if spec.Stop > 0 && spec.Stop < stop {
		stop = spec.Stop
	}
	g := &arrivalGen{
		rng:  rand.New(rand.NewSource(seed)),
		spec: spec,
		rate: rate,
		t:    spec.Start,
	}
	g.spec.Stop = stop
	switch spec.Shape {
	case ShapeDiurnal:
		g.lamMax = rate * (1 + clamp01(spec.Duty))
	case ShapeBurst:
		d := spec.Duty
		if d <= 0 || d > 1 {
			d = 0.2
		}
		g.spec.Duty = d
		g.lamMax = rate / d
	default:
		g.lamMax = rate
	}
	if g.lamMax <= 0 || rate <= 0 {
		g.done = true
	}
	return g
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// lambda is the instantaneous rate at time t.
func (g *arrivalGen) lambda(t time.Duration) float64 {
	switch g.spec.Shape {
	case ShapeDiurnal:
		period := g.spec.Period
		if period <= 0 {
			return g.rate
		}
		phase := 2 * math.Pi * float64(t) / float64(period)
		return g.rate * (1 + clamp01(g.spec.Duty)*math.Sin(phase))
	case ShapeBurst:
		period := g.spec.Period
		if period <= 0 {
			return g.rate
		}
		// Phase relative to cohort start, so a late-starting burst
		// cohort begins with a burst.
		phase := (t - g.spec.Start) % period
		if float64(phase) < g.spec.Duty*float64(period) {
			return g.rate / g.spec.Duty
		}
		return 0
	default:
		return g.rate
	}
}

// next returns the next arrival time, or ok=false when the stream is
// exhausted. Successive calls are strictly increasing.
func (g *arrivalGen) next() (time.Duration, bool) {
	if g.done {
		return 0, false
	}
	for {
		gap := g.rng.ExpFloat64() / g.lamMax
		g.t += time.Duration(gap * float64(time.Second))
		if g.t >= g.spec.Stop {
			g.done = true
			return 0, false
		}
		if g.rng.Float64()*g.lamMax <= g.lambda(g.t) {
			return g.t, true
		}
	}
}
