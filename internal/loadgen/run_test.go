package loadgen

import (
	"encoding/json"
	"testing"
	"time"

	"horus/internal/chaos"
	"horus/internal/netsim"
)

// testLink is the default sim link the loadgen tests run over: enough
// delay to make latency non-trivial, a little jitter to spread the
// histogram, no loss — loss alone shouldn't decide pass/fail.
var testLink = netsim.Link{Delay: 200 * time.Microsecond, Jitter: 100 * time.Microsecond}

func smokeConfig(stack string) Config {
	return Config{
		Seed:    7,
		Stack:   stack,
		Groups:  4,
		Members: 3,
		Rate:    80,
		Body:    48,
		Warmup:  100 * time.Millisecond,
		Measure: 500 * time.Millisecond,
		Drain:   200 * time.Millisecond,
		Window:  125 * time.Millisecond,
	}
}

func TestRunSmokeFIFO(t *testing.T) {
	f := chaos.NewSimFabric(1, testLink)
	defer f.Close()
	r, err := Run(f, smokeConfig("fifo"))
	if err != nil {
		t.Fatal(err)
	}
	if r.OfferedCasts == 0 {
		t.Fatal("no casts offered in measure window")
	}
	if r.Ratio < 0.99 {
		t.Fatalf("uncongested run should deliver ~everything: ratio=%.4f (%d/%d)", r.Ratio, r.Delivered, r.Expected)
	}
	if r.P99 <= 0 || r.P50 <= 0 || r.P99 < r.P50 {
		t.Fatalf("implausible quantiles: p50=%v p99=%v", r.P50, r.P99)
	}
	if got := r.Hist.Count(); got != r.Delivered {
		t.Fatalf("histogram holds %d samples, delivered %d", got, r.Delivered)
	}
	var offered, delivered uint64
	for _, w := range r.Windows {
		offered += w.Offered
		delivered += w.Delivered
		if w.Expected != w.Offered*uint64(r.Members) {
			t.Fatalf("window expected %d != offered %d x members %d", w.Expected, w.Offered, r.Members)
		}
	}
	if offered != r.OfferedCasts || delivered != r.Delivered {
		t.Fatalf("window sums (%d, %d) disagree with totals (%d, %d)", offered, delivered, r.OfferedCasts, r.Delivered)
	}
	if r.Ledger == nil || r.Ledger.Delivered == 0 {
		t.Fatal("sim fabric should expose a packet ledger")
	}
}

func TestRunArms(t *testing.T) {
	for _, arm := range []string{"total", "adapt"} {
		arm := arm
		t.Run(arm, func(t *testing.T) {
			f := chaos.NewSimFabric(2, testLink)
			defer f.Close()
			r, err := Run(f, smokeConfig(arm))
			if err != nil {
				t.Fatal(err)
			}
			if r.Ratio < 0.99 {
				t.Fatalf("%s: uncongested ratio=%.4f", arm, r.Ratio)
			}
		})
	}
}

func TestRunFastPath(t *testing.T) {
	cfg := smokeConfig("fifo")
	cfg.FastPath = true
	f := chaos.NewSimFabric(3, testLink)
	defer f.Close()
	r, err := Run(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio < 0.99 {
		t.Fatalf("fast path ratio=%.4f", r.Ratio)
	}
}

func TestRunRejectsUnknownArm(t *testing.T) {
	f := chaos.NewSimFabric(4, testLink)
	defer f.Close()
	if _, err := Run(f, Config{Stack: "mbrship"}); err == nil {
		t.Fatal("unknown arm accepted")
	}
}

// TestRunDeterministic is the core replay guarantee: two same-seed
// runs on the simulated fabric produce bit-identical results.
func TestRunDeterministic(t *testing.T) {
	run := func() []byte {
		f := chaos.NewSimFabric(5, testLink)
		defer f.Close()
		r, err := Run(f, smokeConfig("fifo"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same-seed runs diverged:\n%s\n--\n%s", a, b)
	}
}
