package loadgen

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not all-zero: count=%d min=%v max=%v mean=%v", h.Count(), h.Min(), h.Max(), h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Buckets() != nil {
		t.Fatal("empty histogram has buckets")
	}
}

func TestHistSingleSample(t *testing.T) {
	for _, v := range []time.Duration{0, 1, 127, 128, 129, 5 * time.Millisecond} {
		h := NewHist()
		h.Record(v)
		if h.Count() != 1 || h.Min() != v || h.Max() != v || h.Mean() != v {
			t.Fatalf("single sample %v: count=%d min=%v max=%v mean=%v", v, h.Count(), h.Min(), h.Max(), h.Mean())
		}
		for _, q := range []float64{0, 0.001, 0.5, 0.999, 1} {
			if got := h.Quantile(q); got != v {
				t.Fatalf("single sample %v: Quantile(%v) = %v", v, q, got)
			}
		}
	}
}

func TestHistNegativeClamps(t *testing.T) {
	h := NewHist()
	h.Record(-time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample: min=%v max=%v count=%d", h.Min(), h.Max(), h.Count())
	}
}

// TestHistExactLowRange: values under 128ns occupy one bucket each, so
// every quantile of a known distribution is exact.
func TestHistExactLowRange(t *testing.T) {
	h := NewHist()
	for v := 1; v <= 100; v++ {
		h.Record(time.Duration(v))
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 1}, {0.01, 1}, {0.25, 25}, {0.5, 50}, {0.75, 75}, {0.9, 90}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if h.Mean() != time.Duration(50) { // floor(5050/100) = 50
		t.Errorf("Mean = %v, want 50ns", h.Mean())
	}
}

// TestHistBucketBoundaries pins the index/upper-bound arithmetic at
// every power-of-two edge: each value maps into a bucket whose range
// contains it, upper bounds are tight (bucketIndex(upper) == idx, and
// upper+1 falls in the next bucket), and indices are monotone.
func TestHistBucketBoundaries(t *testing.T) {
	vals := []int64{0, 1, 126, 127, 128, 129, 255, 256, 257, 511, 512, 513,
		1023, 1024, 1025, 1<<20 - 1, 1 << 20, 1<<20 + 1, 1<<40 - 1, 1 << 40, 1<<62 - 1, 1 << 62}
	for _, v := range vals {
		idx := bucketIndex(v)
		upper := bucketUpper(idx)
		if v > upper {
			t.Fatalf("value %d above its bucket upper %d (idx %d)", v, upper, idx)
		}
		if bucketIndex(upper) != idx {
			t.Fatalf("upper %d of bucket %d maps to bucket %d", upper, idx, bucketIndex(upper))
		}
		if upper < int64(1<<62) { // avoid overflow probing past the top
			if next := bucketIndex(upper + 1); next != idx+1 {
				t.Fatalf("upper+1 (%d) maps to bucket %d, want %d", upper+1, next, idx+1)
			}
		}
		if idx > 0 && bucketUpper(idx-1) >= v && v >= subCount {
			t.Fatalf("value %d also fits bucket %d", v, idx-1)
		}
	}
	// Monotone index over a dense low range.
	last := -1
	for v := int64(0); v < 4096; v++ {
		idx := bucketIndex(v)
		if idx < last {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, last)
		}
		last = idx
	}
	if maxIdx := bucketIndex(int64(^uint64(0) >> 1)); maxIdx >= numBuckets {
		t.Fatalf("max int64 maps to bucket %d, layout has %d", maxIdx, numBuckets)
	}
}

// TestHistQuantileRelativeError: above the exact range, quantiles are
// upper estimates within the layout's 1/64 relative error.
func TestHistQuantileRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := NewHist()
	var vals []int64
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, the shape of real latency data.
		v := int64(float64(time.Microsecond) * pow(10, rng.Float64()*6) / 1e3)
		vals = append(vals, v)
		h.Record(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(q*float64(len(vals))+0.9999999) - 1
		exact := vals[rank]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Errorf("Quantile(%v) = %d below exact %d", q, got, exact)
		}
		if float64(got-exact) > float64(exact)/64+1 {
			t.Errorf("Quantile(%v) = %d, exact %d: error beyond 1/64", q, got, exact)
		}
	}
}

func pow(base, exp float64) float64 {
	r := 1.0
	for exp >= 1 {
		r *= base
		exp--
	}
	if exp > 0 {
		// linear interpolation is fine for test data generation
		r *= 1 + exp*(base-1)
	}
	return r
}

// TestHistMergeAssociative: merging is element-wise addition, so any
// merge order yields the identical histogram.
func TestHistMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	parts := make([]*Hist, 3)
	for i := range parts {
		parts[i] = NewHist()
		for j := 0; j < 1000; j++ {
			parts[i].Record(time.Duration(rng.Int63n(int64(time.Second))))
		}
	}
	ab := NewHist()
	ab.Merge(parts[0])
	ab.Merge(parts[1])
	ab.Merge(parts[2])
	cb := NewHist()
	cb.Merge(parts[2])
	cb.Merge(parts[1])
	cb.Merge(parts[0])
	if ab.Count() != cb.Count() || ab.Min() != cb.Min() || ab.Max() != cb.Max() || ab.Mean() != cb.Mean() {
		t.Fatal("merge order changed summary statistics")
	}
	ba, bb := ab.Buckets(), cb.Buckets()
	if len(ba) != len(bb) {
		t.Fatalf("merge order changed bucket count: %d vs %d", len(ba), len(bb))
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, ba[i], bb[i])
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if ab.Quantile(q) != cb.Quantile(q) {
			t.Fatalf("merge order changed Quantile(%v)", q)
		}
	}
	// Merging an empty or nil histogram is the identity.
	before := ab.Count()
	ab.Merge(NewHist())
	ab.Merge(nil)
	if ab.Count() != before {
		t.Fatal("empty/nil merge changed count")
	}
}

// TestHistMergeEqualsUnion: a merged histogram equals one built from
// the union of the samples.
func TestHistMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b, union := NewHist(), NewHist(), NewHist()
	for i := 0; i < 5000; i++ {
		v := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		union.Record(v)
	}
	a.Merge(b)
	if a.Count() != union.Count() || a.Mean() != union.Mean() || a.Min() != union.Min() || a.Max() != union.Max() {
		t.Fatal("merged summary differs from union")
	}
	for q := 0.01; q < 1; q += 0.07 {
		if a.Quantile(q) != union.Quantile(q) {
			t.Fatalf("merged Quantile(%v) differs from union", q)
		}
	}
}
