package loadgen

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"horus/internal/chaos"
	"horus/internal/core"
	"horus/internal/layers/adapt"
	"horus/internal/layers/com"
	"horus/internal/layers/nak"
	"horus/internal/layers/total"
	"horus/internal/message"
	"horus/internal/netsim"
	"horus/internal/property"
)

// Config parameterizes one load run: cluster shape, stack arm,
// offered load, and the phase timeline. The zero value is unusable;
// call fill (done by Run) or start from a literal.
type Config struct {
	// Seed drives the arrival processes and sender choices. On the
	// simulated fabric it fully determines every number in the Result.
	Seed int64
	// Stack selects the protocol arm: "fifo" (NAK:COM), "total"
	// (TOTAL:NAK:COM), or "adapt" (ADAPT:NAK:COM).
	Stack string
	// FastPath enables the endpoint delivery fast path.
	FastPath bool
	// Groups and Members set the cluster shape: Groups independent
	// process groups of Members endpoints each.
	Groups, Members int
	// Rate is the offered cast rate per group in casts/sec, split
	// across the cohorts by their fractions.
	Rate float64
	// Body is the cast payload size in bytes (minimum 16: an 8-byte
	// send timestamp plus an 8-byte sequence tag).
	Body int
	// Warmup, Measure, Drain partition the run: arrivals flow during
	// Warmup+Measure, metrics credit only casts sent inside Measure,
	// and Drain lets in-flight deliveries land before accounting.
	Warmup, Measure, Drain time.Duration
	// Window is the goodput accounting window width inside Measure.
	Window time.Duration
	// Cohorts is the workload mix; nil means DefaultCohorts.
	Cohorts []CohortSpec
	// Host, when non-zero, installs a per-endpoint egress budget —
	// the finite capacity that makes saturation reachable.
	Host netsim.Host
}

// fill applies defaults in place and returns the config.
func (c Config) fill() Config {
	if c.Stack == "" {
		c.Stack = "fifo"
	}
	if c.Groups <= 0 {
		c.Groups = 100
	}
	if c.Members <= 0 {
		c.Members = 10
	}
	if c.Rate <= 0 {
		c.Rate = 200
	}
	if c.Body < 16 {
		c.Body = 64
	}
	if c.Warmup <= 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Measure <= 0 {
		c.Measure = time.Second
	}
	if c.Drain <= 0 {
		c.Drain = 300 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 250 * time.Millisecond
	}
	if len(c.Cohorts) == 0 {
		c.Cohorts = DefaultCohorts()
	}
	return c
}

// StackSpecFor returns the composed spec and layer names for a load
// arm, verifying well-formedness over a substrate providing
// P1|ExternalViews — the harness substitutes an external membership
// service (mass InstallView) for an in-stack MBRSHIP layer.
func StackSpecFor(arm string) (core.StackSpec, []string, error) {
	// Timer tuning: status/NAK periods well under the measurement
	// window so loss recovery shows up as latency, not as truncation;
	// suspicion off — membership is external and static.
	nakF := nak.NewWith(
		nak.WithStatusPeriod(20*time.Millisecond),
		nak.WithNakResend(15*time.Millisecond),
		nak.WithSuspectAfter(0),
	)
	var (
		spec  core.StackSpec
		names []string
	)
	switch strings.ToLower(arm) {
	case "fifo":
		names = []string{"NAK", "COM"}
		spec = core.StackSpec{nakF, com.New}
	case "total":
		names = []string{"TOTAL", "NAK", "COM"}
		spec = core.StackSpec{total.NewWith(total.WithRequestRetry(50 * time.Millisecond)), nakF, com.New}
	case "adapt":
		names = []string{"ADAPT", "NAK", "COM"}
		spec = core.StackSpec{adapt.New, nakF, com.New}
	default:
		return nil, nil, fmt.Errorf("loadgen: unknown stack arm %q (want fifo, total, or adapt)", arm)
	}
	if _, err := property.Derive(property.P1|property.ExternalViews, names); err != nil {
		return nil, nil, fmt.Errorf("loadgen: arm %q not well-formed: %w", arm, err)
	}
	return spec, names, nil
}

// WindowStats is the goodput ledger for one accounting window.
// Deliveries are credited to the window their cast was sent in, so
// Offered and Delivered are directly comparable.
type WindowStats struct {
	Start     time.Duration `json:"start_ns"`
	Offered   uint64        `json:"offered"`
	Expected  uint64        `json:"expected"`
	Delivered uint64        `json:"delivered"`
	// Ledger is the fabric packet-ledger delta over the window's wall
	// span, when the fabric exposes one (netsim does; UDP does not).
	Ledger *netsim.Stats `json:"ledger,omitempty"`
}

// Result is everything one run measured.
type Result struct {
	Seed     int64   `json:"seed"`
	Stack    string  `json:"stack"`
	FastPath bool    `json:"fast_path"`
	Groups   int     `json:"groups"`
	Members  int     `json:"members"`
	Rate     float64 `json:"rate_cps"` // configured casts/sec per group

	// OfferedCasts counts casts sent inside the measure window,
	// cluster-wide; Expected = OfferedCasts × Members (every member
	// delivers, sender included).
	OfferedCasts uint64  `json:"offered_casts"`
	Expected     uint64  `json:"expected"`
	Delivered    uint64  `json:"delivered"`
	Ratio        float64 `json:"ratio"`       // Delivered / Expected
	OfferedRate  float64 `json:"offered_cps"` // measured, cluster-wide
	Goodput      float64 `json:"goodput_dps"` // deliveries/sec, cluster-wide

	Mean time.Duration `json:"mean_ns"`
	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	Max  time.Duration `json:"max_ns"`

	Windows []WindowStats `json:"windows"`
	Lost    uint64        `json:"lost"` // LOST_MESSAGE upcalls
	Shed    int           `json:"shed"` // ADAPT casts dropped, summed

	// Ledger is the fabric packet-ledger delta over the whole run,
	// when available.
	Ledger *netsim.Stats `json:"ledger,omitempty"`

	// Hist is the merged cluster latency histogram (measured casts
	// only). Excluded from snapshots; quantiles above summarize it.
	Hist *Hist `json:"-"`
}

// collector accumulates metrics. A single mutex serializes handler
// deliveries: uncontended on the simulated fabric (one event-loop
// goroutine), required on UDP where socket readers deliver
// concurrently.
type collector struct {
	mu       sync.Mutex
	warm     time.Duration
	measEnd  time.Duration
	window   time.Duration
	members  int
	offered  []uint64
	deliv    []uint64
	perGroup []*Hist
	lost     uint64
}

func newCollector(cfg Config) *collector {
	nwin := int((cfg.Measure + cfg.Window - 1) / cfg.Window)
	c := &collector{
		warm:     cfg.Warmup,
		measEnd:  cfg.Warmup + cfg.Measure,
		window:   cfg.Window,
		members:  cfg.Members,
		offered:  make([]uint64, nwin),
		deliv:    make([]uint64, nwin),
		perGroup: make([]*Hist, cfg.Groups),
	}
	for i := range c.perGroup {
		c.perGroup[i] = NewHist()
	}
	return c
}

// win maps a send time to its accounting window, or -1 outside the
// measure span.
func (c *collector) win(sentAt time.Duration) int {
	if sentAt < c.warm || sentAt >= c.measEnd {
		return -1
	}
	w := int((sentAt - c.warm) / c.window)
	if w >= len(c.offered) {
		w = len(c.offered) - 1
	}
	return w
}

func (c *collector) offeredCast(sentAt time.Duration) {
	w := c.win(sentAt)
	if w < 0 {
		return
	}
	c.mu.Lock()
	c.offered[w]++
	c.mu.Unlock()
}

func (c *collector) deliveredCast(gi int, sentAt, now time.Duration) {
	w := c.win(sentAt)
	if w < 0 {
		return
	}
	c.mu.Lock()
	c.deliv[w]++
	c.perGroup[gi].Record(now - sentAt)
	c.mu.Unlock()
}

func (c *collector) lostMessage() {
	c.mu.Lock()
	c.lost++
	c.mu.Unlock()
}

// ledgerFabric is the optional fabric capability the windowed packet
// ledger is sampled through.
type ledgerFabric interface {
	Stats() netsim.Stats
}

// statsDelta returns b - a field-wise.
func statsDelta(a, b netsim.Stats) netsim.Stats {
	return netsim.Stats{
		Sent:            b.Sent - a.Sent,
		Delivered:       b.Delivered - a.Delivered,
		Lost:            b.Lost - a.Lost,
		Garbled:         b.Garbled - a.Garbled,
		Duplicated:      b.Duplicated - a.Duplicated,
		Blocked:         b.Blocked - a.Blocked,
		Bytes:           b.Bytes - a.Bytes,
		Reordered:       b.Reordered - a.Reordered,
		Throttled:       b.Throttled - a.Throttled,
		Congested:       b.Congested - a.Congested,
		CollapseDropped: b.CollapseDropped - a.CollapseDropped,
	}
}

// Run executes one load run over the fabric and returns its metrics.
// The fabric must be fresh (no prior endpoints); the caller owns its
// lifecycle and Close.
func Run(f chaos.Fabric, cfg Config) (*Result, error) {
	cfg = cfg.fill()
	spec, _, err := StackSpecFor(cfg.Stack)
	if err != nil {
		return nil, err
	}

	coll := newCollector(cfg)
	span := cfg.Warmup + cfg.Measure + cfg.Drain

	// Boot the cluster: Groups×Members endpoints, one group each.
	// Identity order is fabric call order, so the whole topology is a
	// pure function of the config.
	eps := make([][]*core.Endpoint, cfg.Groups)
	groups := make([][]*core.Group, cfg.Groups)
	for gi := 0; gi < cfg.Groups; gi++ {
		eps[gi] = make([]*core.Endpoint, cfg.Members)
		groups[gi] = make([]*core.Group, cfg.Members)
		for mi := 0; mi < cfg.Members; mi++ {
			ep := f.NewEndpoint(fmt.Sprintf("g%d-m%d", gi, mi))
			ep.SetFastPath(cfg.FastPath)
			if cfg.Host != (netsim.Host{}) {
				f.SetHost(ep.ID(), cfg.Host)
			}
			eps[gi][mi] = ep
		}
		addr := core.GroupAddr(fmt.Sprintf("load/g%d", gi))
		ids := make([]core.EndpointID, cfg.Members)
		for mi, ep := range eps[gi] {
			ids[mi] = ep.ID()
		}
		for mi, ep := range eps[gi] {
			gi := gi
			g, err := ep.Join(addr, spec, func(ev *core.Event) {
				switch ev.Type {
				case core.UCast:
					body := ev.Msg.Body()
					if len(body) >= 8 {
						sentAt := time.Duration(binary.BigEndian.Uint64(body))
						coll.deliveredCast(gi, sentAt, f.Now())
					}
				case core.ULostMessage:
					coll.lostMessage()
				}
			})
			if err != nil {
				return nil, fmt.Errorf("loadgen: join g%d-m%d: %w", gi, mi, err)
			}
			groups[gi][mi] = g
		}
		// External membership service: install the same static view at
		// every member before traffic (see property.ExternalViews).
		v := core.NewView(core.ViewID{Seq: 1, Coord: ids[0]}, addr, ids)
		for _, g := range groups[gi] {
			g.InstallView(v)
		}
	}

	// Arm the open-loop arrival streams. Each (group, cohort) stream
	// re-arms itself from inside its own firing, so generator access
	// is serial even on a wall-clock fabric's timer goroutines.
	for gi := 0; gi < cfg.Groups; gi++ {
		gi := gi
		for ci, cs := range cfg.Cohorts {
			gen := newArrivalGen(mixSeed(cfg.Seed, gi, ci), cs, cfg.Rate*cs.Fraction, cfg.Warmup+cfg.Measure)
			pick := rand.New(rand.NewSource(mixSeed(cfg.Seed, gi, ci) ^ 0x5bd1e995))
			body := cfg.Body
			if cs.Body > 0 {
				body = cs.Body
			}
			if body < 16 {
				body = 16
			}
			var seq uint64
			var arm func(t time.Duration)
			fire := func(t time.Duration) {
				coll.offeredCast(t)
				payload := make([]byte, body)
				binary.BigEndian.PutUint64(payload, uint64(f.Now()))
				seq++
				binary.BigEndian.PutUint64(payload[8:], seq)
				groups[gi][pick.Intn(cfg.Members)].Cast(message.New(payload))
			}
			arm = func(t time.Duration) {
				fire(t)
				if nt, ok := gen.next(); ok {
					f.At(nt, func() { arm(nt) })
				}
			}
			if t, ok := gen.next(); ok {
				f.At(t, func() { arm(t) })
			}
		}
	}

	// Windowed fabric-ledger sampling at window boundaries.
	var (
		ls, hasLedger = f.(ledgerFabric)
		boundarySnaps []netsim.Stats
		preRun        netsim.Stats
	)
	if hasLedger {
		preRun = ls.Stats()
		nwin := len(coll.offered)
		boundarySnaps = make([]netsim.Stats, nwin+1)
		for i := 0; i <= nwin; i++ {
			i := i
			at := cfg.Warmup + time.Duration(i)*cfg.Window
			if at > cfg.Warmup+cfg.Measure {
				at = cfg.Warmup + cfg.Measure
			}
			f.At(at, func() {
				s := ls.Stats()
				coll.mu.Lock()
				boundarySnaps[i] = s
				coll.mu.Unlock()
			})
		}
	}

	f.RunFor(span)

	// Assemble the result. Focus/Stats reads go through Endpoint.Do so
	// they serialize with any still-armed layer timers on UDP.
	res := &Result{
		Seed:     cfg.Seed,
		Stack:    strings.ToLower(cfg.Stack),
		FastPath: cfg.FastPath,
		Groups:   cfg.Groups,
		Members:  cfg.Members,
		Rate:     cfg.Rate,
		Hist:     NewHist(),
	}
	coll.mu.Lock()
	for w := range coll.offered {
		ws := WindowStats{
			Start:     cfg.Warmup + time.Duration(w)*cfg.Window,
			Offered:   coll.offered[w],
			Expected:  coll.offered[w] * uint64(cfg.Members),
			Delivered: coll.deliv[w],
		}
		if hasLedger {
			d := statsDelta(boundarySnaps[w], boundarySnaps[w+1])
			ws.Ledger = &d
		}
		res.Windows = append(res.Windows, ws)
		res.OfferedCasts += ws.Offered
		res.Delivered += ws.Delivered
	}
	for _, h := range coll.perGroup {
		res.Hist.Merge(h)
	}
	res.Lost = coll.lost
	coll.mu.Unlock()

	res.Expected = res.OfferedCasts * uint64(cfg.Members)
	if res.Expected > 0 {
		res.Ratio = float64(res.Delivered) / float64(res.Expected)
	}
	secs := cfg.Measure.Seconds()
	res.OfferedRate = float64(res.OfferedCasts) / secs
	res.Goodput = float64(res.Delivered) / secs
	res.Mean = res.Hist.Mean()
	res.P50 = res.Hist.Quantile(0.50)
	res.P95 = res.Hist.Quantile(0.95)
	res.P99 = res.Hist.Quantile(0.99)
	res.Max = res.Hist.Max()
	if hasLedger {
		d := statsDelta(preRun, ls.Stats())
		res.Ledger = &d
	}
	for gi := range groups {
		for _, g := range groups[gi] {
			if l := g.Focus("ADAPT"); l != nil {
				g.Endpoint().Do(func() {
					if a, ok := l.(*adapt.Adapt); ok {
						res.Shed += a.Stats().Shed
					}
				})
			}
		}
	}
	return res, nil
}
