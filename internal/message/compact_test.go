package message

import (
	"testing"
	"testing/quick"
)

func fragTotalLayout(t *testing.T) *Layout {
	t.Helper()
	l, err := NewLayout([]Field{
		{Layer: "FRAG", Name: "more", Bits: 1},
		{Layer: "NAK", Name: "seq", Bits: 32},
		{Layer: "TOTAL", Name: "order", Bits: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutPacksWithoutPadding(t *testing.T) {
	l := fragTotalLayout(t)
	// 1 + 32 + 24 = 57 bits -> 8 bytes, versus 3 word-aligned pushed
	// headers (4 + 4 + 4 = 12 bytes).
	if got := l.Size(); got != 8 {
		t.Fatalf("Size = %d, want 8", got)
	}
}

func TestLayoutRejectsBadWidth(t *testing.T) {
	if _, err := NewLayout([]Field{{Layer: "X", Name: "f", Bits: 0}}); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewLayout([]Field{{Layer: "X", Name: "f", Bits: 65}}); err == nil {
		t.Error("width 65 accepted")
	}
}

func TestLayoutRejectsDuplicateField(t *testing.T) {
	_, err := NewLayout([]Field{
		{Layer: "X", Name: "f", Bits: 4},
		{Layer: "X", Name: "f", Bits: 4},
	})
	if err == nil {
		t.Error("duplicate field accepted")
	}
}

func TestFieldIndex(t *testing.T) {
	l := fragTotalLayout(t)
	if got := l.FieldIndex("NAK", "seq"); got != 1 {
		t.Errorf("FieldIndex(NAK.seq) = %d, want 1", got)
	}
	if got := l.FieldIndex("NAK", "missing"); got != -1 {
		t.Errorf("FieldIndex(missing) = %d, want -1", got)
	}
}

func TestCompactSetGet(t *testing.T) {
	l := fragTotalLayout(t)
	h := NewCompactHeader(l)
	h.Set(0, 1)
	h.Set(1, 0xDEADBEEF)
	h.Set(2, 0x123456)
	if got := h.Get(0); got != 1 {
		t.Errorf("more = %d", got)
	}
	if got := h.Get(1); got != 0xDEADBEEF {
		t.Errorf("seq = %#x", got)
	}
	if got := h.Get(2); got != 0x123456 {
		t.Errorf("order = %#x", got)
	}
}

func TestCompactFieldTruncation(t *testing.T) {
	l, err := NewLayout([]Field{{Layer: "X", Name: "tiny", Bits: 3}})
	if err != nil {
		t.Fatal(err)
	}
	h := NewCompactHeader(l)
	h.Set(0, 0xFF) // only 3 bits retained
	if got := h.Get(0); got != 7 {
		t.Errorf("truncated field = %d, want 7", got)
	}
}

func TestCompactAttachDetach(t *testing.T) {
	l := fragTotalLayout(t)
	h := NewCompactHeader(l)
	h.Set(1, 99)
	m := New([]byte("body"))
	h.AttachTo(m)
	if got := m.HeaderLen(); got != l.Size() {
		t.Fatalf("attached header length = %d, want %d", got, l.Size())
	}
	got := DetachFrom(m, l)
	if got.Get(1) != 99 {
		t.Errorf("detached seq = %d, want 99", got.Get(1))
	}
	if m.HeaderLen() != 0 {
		t.Errorf("residual header after detach: %d bytes", m.HeaderLen())
	}
}

// Property: any values written to a random multi-field layout read back
// masked to field width.
func TestQuickCompactRoundTrip(t *testing.T) {
	f := func(widths []uint8, values []uint64) bool {
		var fields []Field
		for i, w := range widths {
			bits := int(w)%64 + 1
			fields = append(fields, Field{Layer: "L", Name: string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i%10)), Bits: bits})
		}
		// Deduplicate names by index suffix is imperfect; rebuild with
		// guaranteed-unique names instead.
		for i := range fields {
			fields[i].Name = fieldName(i)
		}
		l, err := NewLayout(fields)
		if err != nil {
			return false
		}
		h := NewCompactHeader(l)
		for i := range fields {
			var v uint64
			if i < len(values) {
				v = values[i]
			}
			h.Set(i, v)
		}
		for i, fl := range fields {
			var v uint64
			if i < len(values) {
				v = values[i]
			}
			mask := ^uint64(0)
			if fl.Bits < 64 {
				mask = (1 << uint(fl.Bits)) - 1
			}
			if h.Get(i) != v&mask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func fieldName(i int) string {
	name := ""
	for {
		name = string(rune('a'+i%26)) + name
		i /= 26
		if i == 0 {
			return name
		}
	}
}
