// Pooled message buffers (paper §10).
//
// The paper's overhead analysis proposes that the cast hot path should
// allocate nothing: message objects are drawn from a pool and returned
// to it once the send path is done with them. This file implements the
// pool with an explicit ownership hand-off: a message obtained from Get
// is owned by the caller until it is passed to a cast downcall, after
// which the fast path (core's compiled cast plan) releases it back to
// the pool once the wire image has left the stack. Compiled layers
// never retain the original message — retransmission and delivery
// logs keep independent copies (FromParts) — which is what makes the
// automatic release sound.
//
// Misuse is a programming error and panics loudly: releasing a message
// twice, or pushing/popping/marshalling after release, would silently
// corrupt whatever cast the pool handed the buffer to next.
//
//horus:pool — the pool is behaviour-transparent: a message's observable
// content never depends on whether its buffer came from the pool or
// from make, so simulation determinism is preserved.

package message

import "sync"

// pool recycles Message objects together with their headroom buffers.
// Buffers grown by deep stacks stay grown across reuse, so the steady
// state of a cast loop touches the allocator not at all.
var pool = sync.Pool{
	New: func() interface{} {
		return &Message{buf: make([]byte, defaultHeadroom)}
	},
}

// Get returns a pooled message whose payload references body without
// copying, like New. The caller owns the message until it hands it to
// a cast downcall; from then on the stack owns it and will Release it
// automatically when the compiled fast path consumed it. On the
// reference (per-layer) path the message is left to the garbage
// collector instead — Release is an optimization, never an obligation.
func Get(body []byte) *Message {
	m := pool.Get().(*Message)
	m.off = len(m.buf)
	m.body = body
	m.pooled = true
	m.dead = false
	return m
}

// Pooled reports whether m came from Get and has not been released.
func (m *Message) Pooled() bool { return m.pooled && !m.dead }

// Release returns a pooled message to the pool. Releasing a message
// that did not come from Get is a no-op; releasing one twice panics
// (double-put would hand the same buffer to two concurrent casts).
func (m *Message) Release() {
	if !m.pooled {
		return
	}
	if m.dead {
		panic("message: double release of pooled message")
	}
	m.dead = true
	m.body = nil
	pool.Put(m)
}

// live panics if the message was released back to the pool. It is
// called on every mutating or reading entry point: a use-after-release
// must fail at the offending call site, not corrupt a later cast.
func (m *Message) live() {
	if m.dead {
		panic("message: use of message after release")
	}
}
