package message

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the wire parser: arbitrary bytes must never
// panic, and anything that parses must re-marshal to an equivalent
// message.
func FuzzUnmarshal(f *testing.F) {
	m := New([]byte("body"))
	m.PushUint32(7)
	f.Add(m.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, wire []byte) {
		got, err := Unmarshal(wire)
		if err != nil {
			return
		}
		// Round trip: marshal of the parse equals a canonical reparse.
		again, err := Unmarshal(got.Marshal())
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if !Equal(got, again) {
			t.Fatal("marshal/unmarshal not idempotent")
		}
	})
}

// FuzzPushPop drives the header stack with arbitrary operations.
func FuzzPushPop(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4, 5})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		m := New(b)
		m.PushBytes(a)
		m.PushAligned(a)
		if got := m.PopAligned(len(a)); !bytes.Equal(got, a) {
			t.Fatal("aligned round trip")
		}
		if got := m.PopBytes(); !bytes.Equal(got, a) {
			t.Fatal("bytes round trip")
		}
		if m.HeaderLen() != 0 {
			t.Fatal("residual header")
		}
	})
}
