package message

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// FuzzUnmarshal hardens the wire parser: arbitrary bytes must never
// panic, and anything that parses must re-marshal to an equivalent
// message.
func FuzzUnmarshal(f *testing.F) {
	m := New([]byte("body"))
	m.PushUint32(7)
	f.Add(m.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, wire []byte) {
		got, err := Unmarshal(wire)
		if err != nil {
			return
		}
		// Round trip: marshal of the parse equals a canonical reparse.
		again, err := Unmarshal(got.Marshal())
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if !Equal(got, again) {
			t.Fatal("marshal/unmarshal not idempotent")
		}
	})
}

// FuzzPushPop drives the header stack with arbitrary operations.
func FuzzPushPop(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4, 5})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		m := New(b)
		m.PushBytes(a)
		m.PushAligned(a)
		if got := m.PopAligned(len(a)); !bytes.Equal(got, a) {
			t.Fatal("aligned round trip")
		}
		if got := m.PopBytes(); !bytes.Equal(got, a) {
			t.Fatal("bytes round trip")
		}
		if m.HeaderLen() != 0 {
			t.Fatal("residual header")
		}
	})
}

// FuzzCompactLayout differentially tests the §10 compacted header
// against the per-layer push/pop path it replaces: for arbitrary field
// widths and values, fields set through the bit-packed layout must read
// back exactly what a word-aligned push/pop of the same values carries,
// fields must not overlap, the attach/detach message round trip must be
// lossless, and the compact form must never be larger than the aligned
// form whose padding overhead the paper calls out.
func FuzzCompactLayout(f *testing.F) {
	f.Add([]byte{8, 1, 64, 13}, int64(1))
	f.Add([]byte{32, 32}, int64(42))
	f.Add([]byte{1}, int64(-7))
	f.Fuzz(func(t *testing.T, widths []byte, vseed int64) {
		if len(widths) == 0 {
			return
		}
		if len(widths) > 12 {
			widths = widths[:12]
		}
		fields := make([]Field, len(widths))
		for i, w := range widths {
			fields[i] = Field{Layer: "FUZZ", Name: fmt.Sprintf("f%d", i), Bits: int(w%64) + 1}
		}
		layout, err := NewLayout(fields)
		if err != nil {
			t.Fatalf("valid widths rejected: %v", err)
		}

		rng := rand.New(rand.NewSource(vseed))
		want := make([]uint64, len(fields))
		h := NewCompactHeader(layout)
		for i := range fields {
			v := rng.Uint64()
			mask := ^uint64(0) >> uint(64-fields[i].Bits)
			want[i] = v & mask
			h.Set(i, v)
		}
		// Overwrite a random subset; fields are bit-packed with no
		// padding, so any overlap in the offsets corrupts a neighbour.
		for i := range fields {
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				want[i] = v & (^uint64(0) >> uint(64-fields[i].Bits))
				h.Set(i, v)
			}
		}
		for i := range fields {
			if got := h.Get(i); got != want[i] {
				t.Fatalf("field %d (%d bits): got %#x want %#x", i, fields[i].Bits, got, want[i])
			}
		}

		// Push/pop reference: the same values carried as word-aligned
		// per-layer headers must pop back identically, and must cost at
		// least as many bytes as the compacted block.
		ref := New(nil)
		for i := len(fields) - 1; i >= 0; i-- {
			var enc [8]byte
			binary.BigEndian.PutUint64(enc[:], want[i])
			ref.PushAligned(enc[:])
		}
		alignedLen := ref.HeaderLen()
		for i := range fields {
			got := binary.BigEndian.Uint64(ref.PopAligned(8))
			if got != want[i] {
				t.Fatalf("push/pop reference field %d: got %#x want %#x", i, got, want[i])
			}
		}
		if layout.Size() > alignedLen {
			t.Fatalf("compact header %dB larger than aligned reference %dB", layout.Size(), alignedLen)
		}

		// Message attach/detach round trip must be lossless and must
		// leave the header stack balanced.
		m := New([]byte("body"))
		m.PushUint32(0xCAFE) // pre-existing lower-layer header survives
		h.AttachTo(m)
		got := DetachFrom(m, layout)
		for i := range fields {
			if got.Get(i) != want[i] {
				t.Fatalf("detached field %d: got %#x want %#x", i, got.Get(i), want[i])
			}
		}
		if v := m.PopUint32(); v != 0xCAFE {
			t.Fatalf("attach/detach disturbed lower header: %#x", v)
		}
		if m.HeaderLen() != 0 {
			t.Fatal("residual header after detach")
		}
	})
}

// mustPanicMsg runs fn and fails the test unless it panics; pooled-
// buffer misuse (double put, use after put) must fail at the offending
// call site, never corrupt a later cast silently.
func mustPanicMsg(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// FuzzPooledLifecycle drives a pooled message and a heap-allocated
// shadow through the same arbitrary operation sequence. The pool's
// contract (//horus:pool) is that buffer provenance is behaviourally
// invisible: both messages must marshal identically — including after
// growth beyond the pooled headroom — and every misuse after release
// must panic.
func FuzzPooledLifecycle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4}, []byte("payload"))
	f.Add([]byte{3, 3, 3, 5, 5}, []byte{})
	f.Add([]byte{4, 0, 4, 0}, []byte{0xFF})
	f.Fuzz(func(t *testing.T, ops []byte, body []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		m := Get(body)
		shadow := New(body)
		if !m.Pooled() {
			t.Fatal("Get returned an unpooled message")
		}
		big := make([]byte, 96) // one push of this forces growth past defaultHeadroom
		for i, op := range ops {
			switch op % 6 {
			case 0:
				m.PushUint8(op)
				shadow.PushUint8(op)
			case 1:
				m.PushUint32(uint32(i)<<8 | uint32(op))
				shadow.PushUint32(uint32(i)<<8 | uint32(op))
			case 2:
				m.PushUint64(uint64(op) * 0x0101010101)
				shadow.PushUint64(uint64(op) * 0x0101010101)
			case 3:
				m.PushBytes(big[:int(op)%len(big)])
				shadow.PushBytes(big[:int(op)%len(big)])
			case 4:
				// Grow-while-pooled: the enlarged buffer must stay
				// coherent and follow the message back into the pool.
				m.Push(big)
				shadow.Push(big)
			case 5:
				if m.HeaderLen() >= 4 {
					a, b := m.PopUint32(), shadow.PopUint32()
					if a != b {
						t.Fatalf("op %d: pooled pop %#x, shadow pop %#x", i, a, b)
					}
				}
			}
			if m.HeaderLen() != shadow.HeaderLen() {
				t.Fatalf("op %d: header length diverged: %d vs %d", i, m.HeaderLen(), shadow.HeaderLen())
			}
		}
		if !bytes.Equal(m.Marshal(), shadow.Marshal()) {
			t.Fatal("pooled and heap-allocated messages marshalled differently")
		}
		if !Equal(m, shadow) {
			t.Fatal("pooled and heap-allocated messages diverged")
		}

		m.Release()
		if m.Pooled() {
			t.Fatal("message still reports pooled after release")
		}
		mustPanicMsg(t, "use after put (push)", func() { m.PushUint8(1) })
		mustPanicMsg(t, "use after put (marshal)", func() { _ = m.Marshal() })
		mustPanicMsg(t, "use after put (body)", func() { _ = m.Body() })
		mustPanicMsg(t, "double put", func() { m.Release() })

		// A fresh Get must hand out a clean message regardless of what
		// the released one looked like.
		n := Get(body)
		if n.HeaderLen() != 0 || !bytes.Equal(n.Body(), body) {
			t.Fatalf("recycled message not clean: hdr=%d", n.HeaderLen())
		}
		n.Release()

		// Releasing a non-pooled message is a documented no-op.
		shadow.Release()
		if shadow.HeaderLen() < 0 {
			t.Fatal("unreachable")
		}
	})
}
