package message

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPushPopRoundTrip(t *testing.T) {
	m := New([]byte("payload"))
	m.Push([]byte{1, 2, 3})
	m.Push([]byte{4, 5})
	if got := m.HeaderLen(); got != 5 {
		t.Fatalf("HeaderLen = %d, want 5", got)
	}
	if got := m.Pop(2); !bytes.Equal(got, []byte{4, 5}) {
		t.Fatalf("Pop(2) = %v, want [4 5]", got)
	}
	if got := m.Pop(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Pop(3) = %v, want [1 2 3]", got)
	}
	if got := m.HeaderLen(); got != 0 {
		t.Fatalf("HeaderLen after pops = %d, want 0", got)
	}
	if got := m.Body(); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Body = %q, want %q", got, "payload")
	}
}

func TestPopUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop beyond header region did not panic")
		}
	}()
	m := New(nil)
	m.PushUint8(7)
	m.Pop(2)
}

func TestIntegerHeaders(t *testing.T) {
	m := New(nil)
	m.PushUint8(0xAB)
	m.PushUint16(0xCDEF)
	m.PushUint32(0x12345678)
	m.PushUint64(0x1122334455667788)
	if got := m.PopUint64(); got != 0x1122334455667788 {
		t.Errorf("PopUint64 = %#x", got)
	}
	if got := m.PopUint32(); got != 0x12345678 {
		t.Errorf("PopUint32 = %#x", got)
	}
	if got := m.PopUint16(); got != 0xCDEF {
		t.Errorf("PopUint16 = %#x", got)
	}
	if got := m.PopUint8(); got != 0xAB {
		t.Errorf("PopUint8 = %#x", got)
	}
}

func TestBytesAndStringHeaders(t *testing.T) {
	m := New(nil)
	m.PushBytes([]byte("hello"))
	m.PushString("world")
	if got := m.PopString(); got != "world" {
		t.Errorf("PopString = %q", got)
	}
	if got := m.PopBytes(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("PopBytes = %q", got)
	}
}

func TestEmptyBytesHeader(t *testing.T) {
	m := New(nil)
	m.PushBytes(nil)
	if got := m.PopBytes(); len(got) != 0 {
		t.Errorf("PopBytes of empty push = %v, want empty", got)
	}
}

func TestGrowPreservesHeaders(t *testing.T) {
	m := NewWithHeadroom(2, []byte("b"))
	for i := 0; i < 100; i++ {
		m.PushUint32(uint32(i))
	}
	for i := 99; i >= 0; i-- {
		if got := m.PopUint32(); got != uint32(i) {
			t.Fatalf("PopUint32 #%d = %d, want %d", 99-i, got, i)
		}
	}
}

func TestAlignedPushPadsToWord(t *testing.T) {
	m := New(nil)
	m.PushAligned([]byte{0xFF}) // 1 byte of content -> 4 bytes on wire
	if got := m.HeaderLen(); got != 4 {
		t.Fatalf("aligned header length = %d, want 4", got)
	}
	if got := m.PopAligned(1); !bytes.Equal(got, []byte{0xFF}) {
		t.Fatalf("PopAligned = %v", got)
	}
	if m.HeaderLen() != 0 {
		t.Fatalf("residual header bytes after PopAligned: %d", m.HeaderLen())
	}
}

func TestAlignedPushExactWordNoPad(t *testing.T) {
	m := New(nil)
	m.PushAligned([]byte{1, 2, 3, 4})
	if got := m.HeaderLen(); got != 4 {
		t.Fatalf("aligned header length = %d, want 4 (no padding)", got)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	m := New([]byte("the body"))
	m.PushUint32(42)
	m.PushString("frag")
	wire := m.Marshal()
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(m, got) {
		t.Fatalf("round trip mismatch: %v vs %v", m, got)
	}
	if s := got.PopString(); s != "frag" {
		t.Errorf("header 1 = %q", s)
	}
	if v := got.PopUint32(); v != 42 {
		t.Errorf("header 2 = %d", v)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name string
		wire []byte
	}{
		{"short", []byte{0, 0}},
		{"header overruns", []byte{0, 0, 0, 10, 1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Unmarshal(tc.wire); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestCloneIndependence(t *testing.T) {
	body := []byte("abc")
	m := New(body)
	m.PushUint32(7)
	c := m.Clone()
	body[0] = 'X' // mutate original's shared body
	if c.Body()[0] != 'a' {
		t.Error("clone body shares storage with original")
	}
	m.PopUint32()
	if c.HeaderLen() != 4 {
		t.Error("clone header affected by pop on original")
	}
	if v := c.PopUint32(); v != 7 {
		t.Errorf("clone header = %d, want 7", v)
	}
}

func TestStringDiagnostic(t *testing.T) {
	m := New([]byte{1, 2})
	m.PushUint8(0)
	if got := m.String(); got != "msg{hdr=1 body=2}" {
		t.Errorf("String = %q", got)
	}
}

// Property: for any sequence of pushed byte strings, popping returns
// them in reverse order with identical contents.
func TestQuickPushPopLIFO(t *testing.T) {
	f := func(chunks [][]byte, body []byte) bool {
		m := New(body)
		for _, c := range chunks {
			m.PushBytes(c)
		}
		for i := len(chunks) - 1; i >= 0; i-- {
			got := m.PopBytes()
			if !bytes.Equal(got, chunks[i]) {
				return false
			}
		}
		return m.HeaderLen() == 0 && bytes.Equal(m.Body(), body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Marshal/Unmarshal is the identity on (headers, body).
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(hdr, body []byte) bool {
		m := New(body)
		m.Push(hdr)
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		return Equal(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: integer headers round-trip for arbitrary values.
func TestQuickIntegerRoundTrip(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d uint64) bool {
		m := New(nil)
		m.PushUint8(a)
		m.PushUint16(b)
		m.PushUint32(c)
		m.PushUint64(d)
		return m.PopUint64() == d && m.PopUint32() == c && m.PopUint16() == b && m.PopUint8() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
