// Compact precomputed headers (paper §10, item 3).
//
// The original Horus layers each push their own word-aligned header,
// wasting space on padding and paying a push/pop cost per layer. The
// paper proposes instead that each protocol specify the *fields* it
// needs, in bits, and that Horus precompute a single compacted header
// for the whole stack when the stack is built. This file implements
// that scheme; BenchmarkCompactHeader compares it against per-layer
// push/pop.

package message

import "fmt"

// Field describes one bit field a layer needs in the compacted header.
type Field struct {
	Layer string // owning layer, for diagnostics
	Name  string // field name, unique within the layer
	Bits  int    // width in bits, 1..64
}

// Layout is a precomputed compacted header layout for a whole stack.
// It is built once when the stack is composed and shared by all
// messages on that stack.
type Layout struct {
	fields []Field
	offset []int // bit offset of each field
	total  int   // total bits
}

// NewLayout precomputes bit offsets for the given fields, packing them
// contiguously with no alignment padding.
func NewLayout(fields []Field) (*Layout, error) {
	l := &Layout{fields: fields, offset: make([]int, len(fields))}
	seen := make(map[string]bool, len(fields))
	bit := 0
	for i, f := range fields {
		if f.Bits < 1 || f.Bits > 64 {
			return nil, fmt.Errorf("message: field %s.%s has invalid width %d bits", f.Layer, f.Name, f.Bits)
		}
		key := f.Layer + "." + f.Name
		if seen[key] {
			return nil, fmt.Errorf("message: duplicate field %s", key)
		}
		seen[key] = true
		l.offset[i] = bit
		bit += f.Bits
	}
	l.total = bit
	return l, nil
}

// Size returns the byte size of the compacted header.
func (l *Layout) Size() int { return (l.total + 7) / 8 }

// FieldIndex returns the index of the named field, or -1.
func (l *Layout) FieldIndex(layer, name string) int {
	for i, f := range l.fields {
		if f.Layer == layer && f.Name == name {
			return i
		}
	}
	return -1
}

// CompactHeader is one instance of a compacted header block attached to
// a message in place of per-layer pushed headers.
type CompactHeader struct {
	layout *Layout
	bits   []byte
}

// NewCompactHeader allocates a zeroed header block for the layout.
func NewCompactHeader(l *Layout) *CompactHeader {
	return &CompactHeader{layout: l, bits: make([]byte, l.Size())}
}

// Set stores v in the i'th field. Bits of v beyond the field width are
// discarded.
func (h *CompactHeader) Set(i int, v uint64) {
	f := h.layout.fields[i]
	off := h.layout.offset[i]
	for b := 0; b < f.Bits; b++ {
		bit := off + b
		if v&(1<<uint(f.Bits-1-b)) != 0 {
			h.bits[bit/8] |= 1 << uint(7-bit%8)
		} else {
			h.bits[bit/8] &^= 1 << uint(7-bit%8)
		}
	}
}

// Get loads the i'th field.
func (h *CompactHeader) Get(i int) uint64 {
	f := h.layout.fields[i]
	off := h.layout.offset[i]
	var v uint64
	for b := 0; b < f.Bits; b++ {
		bit := off + b
		v <<= 1
		if h.bits[bit/8]&(1<<uint(7-bit%8)) != 0 {
			v |= 1
		}
	}
	return v
}

// AttachTo pushes the compacted header block onto m in a single
// operation, replacing what would otherwise be one push per layer.
func (h *CompactHeader) AttachTo(m *Message) { m.Push(h.bits) }

// DetachFrom pops the compacted header block from m.
func DetachFrom(m *Message, l *Layout) *CompactHeader {
	b := m.Pop(l.Size())
	bits := make([]byte, len(b))
	copy(bits, b)
	return &CompactHeader{layout: l, bits: bits}
}
