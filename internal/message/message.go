// Package message implements the Horus message object (paper §3).
//
// A message is a local storage structure whose interface includes
// operations to push and pop protocol headers, much like a stack:
// headers are added as the message travels down the protocol stack on
// send, and removed as it travels up on delivery. The implementation
// keeps headroom in front of the payload so that pushing a header is a
// copy into pre-allocated space, not a reallocation, and the body can
// be referenced without copying (paper: "a message object can contain
// pointers to data located in the address space of the application").
package message

import (
	"encoding/binary"
	"fmt"
)

// defaultHeadroom is the initial spare space reserved in front of the
// payload for protocol headers. Typical Horus stacks push 4-40 bytes
// of headers in total, so 64 bytes avoids reallocation in practice.
const defaultHeadroom = 64

// wordSize is the alignment unit used by PushAligned, modelling the
// word-aligned headers whose padding overhead §10 of the paper calls
// out.
const wordSize = 4

// Message is a byte container supporting stack-like header push/pop at
// the front. The zero value is an empty message ready for use.
type Message struct {
	buf  []byte // header storage; live header bytes are buf[off:]
	off  int    // start of live header data within buf
	body []byte // payload, referenced without copying until Marshal

	pooled bool // obtained from the pool (see pool.go)
	dead   bool // released back to the pool; any further use panics
}

// New returns a message whose payload references body without copying.
// The caller must not mutate body while the message is in flight.
func New(body []byte) *Message {
	buf := make([]byte, defaultHeadroom)
	return &Message{buf: buf, off: len(buf), body: body}
}

// NewWithHeadroom returns an empty message with the given number of
// bytes of pre-allocated header space. Used by benchmarks to isolate
// allocation effects.
func NewWithHeadroom(headroom int, body []byte) *Message {
	buf := make([]byte, headroom)
	return &Message{buf: buf, off: len(buf), body: body}
}

// Body returns the payload. The returned slice is shared, not copied.
func (m *Message) Body() []byte { m.live(); return m.body }

// SetBody replaces the payload reference.
func (m *Message) SetBody(body []byte) { m.live(); m.body = body }

// Header returns the pushed header bytes, front first. The returned
// slice aliases the message's internal buffer and is invalidated by the
// next push or pop; callers must treat it as read-only. The compiled
// cast plan uses it to copy the application's header into the flat wire
// image in one operation.
func (m *Message) Header() []byte { m.live(); return m.buf[m.off:] }

// HeaderLen returns the number of pushed header bytes not yet popped.
func (m *Message) HeaderLen() int { return len(m.buf) - m.off }

// Len returns the total wire length: headers plus body.
func (m *Message) Len() int { return m.HeaderLen() + len(m.body) }

// grow reallocates buf so that at least n more bytes can be pushed.
func (m *Message) grow(n int) {
	m.live()
	need := n - m.off
	if need <= 0 {
		return
	}
	// Double the headroom, at minimum fitting the new header.
	extra := len(m.buf)
	if extra < need {
		extra = need
	}
	nbuf := make([]byte, extra+len(m.buf))
	copy(nbuf[extra+m.off:], m.buf[m.off:])
	m.off += extra
	m.buf = nbuf
}

// Push prepends b to the header region.
func (m *Message) Push(b []byte) {
	m.grow(len(b))
	m.off -= len(b)
	copy(m.buf[m.off:], b)
}

// Pop removes and returns the first n header bytes. The returned slice
// aliases the message's internal buffer; callers that retain it across
// further pushes must copy it. Pop panics if fewer than n header bytes
// are present — a protocol layer popping a header that was never pushed
// is a programming error, not a runtime condition.
func (m *Message) Pop(n int) []byte {
	m.live()
	if m.HeaderLen() < n {
		panic(fmt.Sprintf("message: pop %d bytes, only %d header bytes present", n, m.HeaderLen()))
	}
	b := m.buf[m.off : m.off+n]
	m.off += n
	return b
}

// PushUint8 prepends a single byte header.
func (m *Message) PushUint8(v uint8) {
	m.grow(1)
	m.off--
	m.buf[m.off] = v
}

// PopUint8 removes and returns a single byte header.
func (m *Message) PopUint8() uint8 { return m.Pop(1)[0] }

// PushUint16 prepends a big-endian 16-bit header.
func (m *Message) PushUint16(v uint16) {
	m.grow(2)
	m.off -= 2
	binary.BigEndian.PutUint16(m.buf[m.off:], v)
}

// PopUint16 removes and returns a big-endian 16-bit header.
func (m *Message) PopUint16() uint16 { return binary.BigEndian.Uint16(m.Pop(2)) }

// PushUint32 prepends a big-endian 32-bit header.
func (m *Message) PushUint32(v uint32) {
	m.grow(4)
	m.off -= 4
	binary.BigEndian.PutUint32(m.buf[m.off:], v)
}

// PopUint32 removes and returns a big-endian 32-bit header.
func (m *Message) PopUint32() uint32 { return binary.BigEndian.Uint32(m.Pop(4)) }

// PushUint64 prepends a big-endian 64-bit header.
func (m *Message) PushUint64(v uint64) {
	m.grow(8)
	m.off -= 8
	binary.BigEndian.PutUint64(m.buf[m.off:], v)
}

// PopUint64 removes and returns a big-endian 64-bit header.
func (m *Message) PopUint64() uint64 { return binary.BigEndian.Uint64(m.Pop(8)) }

// PushBytes prepends a length-prefixed byte string (32-bit length).
func (m *Message) PushBytes(b []byte) {
	m.Push(b)
	m.PushUint32(uint32(len(b)))
}

// PopBytes removes a length-prefixed byte string pushed by PushBytes.
func (m *Message) PopBytes() []byte {
	n := m.PopUint32()
	return m.Pop(int(n))
}

// PushString prepends a length-prefixed string.
func (m *Message) PushString(s string) { m.PushBytes([]byte(s)) }

// PopString removes a length-prefixed string pushed by PushString.
func (m *Message) PopString() string { return string(m.PopBytes()) }

// PushAligned prepends b padded with zero bytes so the resulting
// header occupies a multiple of the machine word size. This models the
// word-aligned headers of the original Horus implementation; §10 of
// the paper reports that the padding is "a considerable overhead of
// unused bits". PopAligned(len(b)) is the inverse.
func (m *Message) PushAligned(b []byte) {
	pad := (wordSize - len(b)%wordSize) % wordSize
	m.grow(len(b) + pad)
	m.off -= len(b) + pad
	copy(m.buf[m.off:], b)
	for i := 0; i < pad; i++ {
		m.buf[m.off+len(b)+i] = 0
	}
}

// PopAligned removes an n-byte header pushed by PushAligned, discarding
// its alignment padding, and returns the n significant bytes.
func (m *Message) PopAligned(n int) []byte {
	pad := (wordSize - n%wordSize) % wordSize
	b := m.Pop(n + pad)
	return b[:n]
}

// Clone returns a deep copy of the message: headers and body are both
// copied, so the clone is independent of the original. The network
// simulator clones messages at the sending site, modelling the fact
// that "the message object that is sent is different from the message
// object that is delivered" (§3).
func (m *Message) Clone() *Message {
	m.live()
	hdr := m.buf[m.off:]
	buf := make([]byte, defaultHeadroom+len(hdr))
	copy(buf[defaultHeadroom:], hdr)
	body := make([]byte, len(m.body))
	copy(body, m.body)
	return &Message{buf: buf, off: defaultHeadroom, body: body}
}

// Marshal renders the message to its wire format: a 32-bit header
// length, the header bytes, then the body.
func (m *Message) Marshal() []byte {
	m.live()
	hdr := m.buf[m.off:]
	out := make([]byte, 4+len(hdr)+len(m.body))
	binary.BigEndian.PutUint32(out, uint32(len(hdr)))
	copy(out[4:], hdr)
	copy(out[4+len(hdr):], m.body)
	return out
}

// FromParts builds a message from explicit header and body bytes, both
// copied. It reconstructs exactly what a receiving layer would see: a
// message whose pushed headers are hdr (front first) over payload body.
// The compiled cast plan uses it wherever a layer must retain a copy of
// the message as it received it (NAK's retransmission buffer, MBRSHIP's
// delivery log) without materializing an intermediate Message on the
// hot path.
func FromParts(hdr, body []byte) *Message {
	buf := make([]byte, defaultHeadroom+len(hdr))
	copy(buf[defaultHeadroom:], hdr)
	b := make([]byte, len(body))
	copy(b, body)
	return &Message{buf: buf, off: defaultHeadroom, body: b}
}

// Unmarshal parses a wire-format buffer produced by Marshal into a new
// message with fresh headroom.
func Unmarshal(wire []byte) (*Message, error) {
	if len(wire) < 4 {
		return nil, fmt.Errorf("message: wire buffer too short: %d bytes", len(wire))
	}
	hlen := int(binary.BigEndian.Uint32(wire))
	if hlen < 0 || 4+hlen > len(wire) {
		return nil, fmt.Errorf("message: header length %d exceeds wire buffer %d", hlen, len(wire))
	}
	hdr := wire[4 : 4+hlen]
	// One slab serves header and body: buf is the front slice, body the
	// tail. Safe because buf is only ever written within its own length
	// (grow reallocates instead of appending), so the body bytes behind
	// buf's capacity are never touched. Halves the per-packet
	// allocations on the delivery path.
	blen := len(wire) - 4 - hlen
	slab := make([]byte, defaultHeadroom+hlen+blen)
	copy(slab[defaultHeadroom:], hdr)
	body := slab[defaultHeadroom+hlen:]
	copy(body, wire[4+hlen:])
	return &Message{buf: slab[:defaultHeadroom+hlen], off: defaultHeadroom, body: body}, nil
}

// Equal reports whether two messages have identical header bytes and
// bodies.
func Equal(a, b *Message) bool {
	if a.HeaderLen() != b.HeaderLen() || len(a.body) != len(b.body) {
		return false
	}
	ah, bh := a.buf[a.off:], b.buf[b.off:]
	for i := range ah {
		if ah[i] != bh[i] {
			return false
		}
	}
	for i := range a.body {
		if a.body[i] != b.body[i] {
			return false
		}
	}
	return true
}

// String renders a short diagnostic description.
func (m *Message) String() string {
	return fmt.Sprintf("msg{hdr=%d body=%d}", m.HeaderLen(), len(m.body))
}
