package stackreg_test

import (
	"strings"
	"testing"

	"horus/internal/property"
	"horus/internal/stackreg"
)

// concreteBase is the canonical stack beneath a SWITCH fence, raw
// network upward; property.SegmentBase documents itself as exactly
// this stack's yield over a P1 network.
var concreteBase = []string{"SWITCH", "MBRSHIP", "FRAG", "NAK", "COM"}

// segmentCandidates enumerates every segment the switch engine's
// insert/remove/swap moves can reach with up to two in-tree layers:
// the empty segment (remove back to the base personality), every
// single layer, and every ordered pair. Order matters — [A B] and
// [B A] are different stacks and the matrix covers both.
func segmentCandidates() [][]string {
	names := property.Names()
	segs := [][]string{{}}
	for _, a := range names {
		segs = append(segs, []string{a})
	}
	for _, a := range names {
		for _, b := range names {
			segs = append(segs, []string{a, b})
		}
	}
	return segs
}

// TestSwitchSegmentMatrix pins the two derivations the SWITCH engine
// depends on against each other, over the full insert/remove/swap
// matrix of in-tree layers:
//
//   - the fence verdict — Derive(SegmentBase, segment+SWITCH) — is
//     what a switch proposal checks before anything quiesces;
//   - the ground truth — the same segment derived from a raw P1
//     network through the concrete SWITCH:MBRSHIP:FRAG:NAK:COM base —
//     is what a static stack build of the post-switch configuration
//     would check.
//
// The two must agree on every candidate: a disagreement means
// property.SegmentBase has drifted from the base stack's actual yield
// (say, someone edits NAK's Provides row), and the switch engine would
// start accepting segments a static build rejects or vice versa.
// Agreement is also checked against stackreg.Build for the full
// post-switch stack, which additionally proves every accepted segment
// has working factories, and that every fence rejection is a Build
// rejection too — the error paths that must refuse a switch.
func TestSwitchSegmentMatrix(t *testing.T) {
	accepted, rejected := 0, 0
	for _, seg := range segmentCandidates() {
		seg := seg
		desc := strings.Join(seg, ":")
		fenceStack := append(append([]string{}, seg...), "SWITCH")
		_, fenceErr := property.Derive(property.SegmentBase, fenceStack)

		full := append(append([]string{}, seg...), concreteBase...)
		fullDesc := strings.Join(full, ":")
		_, concreteErr := property.Derive(property.P1, full)

		if (fenceErr == nil) != (concreteErr == nil) {
			t.Errorf("segment %q: fence verdict (%v) disagrees with concrete-base verdict (%v) — SegmentBase drifted from the base stack's yield",
				desc, fenceErr, concreteErr)
			continue
		}

		_, buildErr := stackreg.Build(fullDesc, property.P1)
		if fenceErr == nil {
			accepted++
			if buildErr != nil {
				t.Errorf("segment %q: fence accepts but Build(%q) fails: %v", desc, fullDesc, buildErr)
			}
		} else {
			rejected++
			if buildErr == nil {
				t.Errorf("segment %q: fence rejects (%v) but Build(%q) succeeds", desc, fenceErr, fullDesc)
			}
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("degenerate matrix: %d accepted, %d rejected — the sweep must exercise both outcomes", accepted, rejected)
	}
	t.Logf("switch segment matrix: %d accepted, %d rejected", accepted, rejected)
}

// TestSwitchSegmentVerdicts pins golden verdicts for the upgrade,
// downgrade, and reshape paths the chaos storms and the README example
// actually take, plus the error paths that must reject a switch — with
// the offending layer named in the error.
func TestSwitchSegmentVerdicts(t *testing.T) {
	ok := []string{
		"",              // remove: back to the plain FIFO personality
		"TOTAL",         // the canonical FIFO→TOTAL upgrade
		"ADAPT",         // load shedding over the base
		"ADAPT:TOTAL",   // shedding above total order
		"STABLE",        // gossip stability over the base
		"PINWHEEL",      // token stability over the base
		"TSTAMP",        // vector timestamps
		"CAUSAL:TSTAMP", // CAUSAL needs P13; inserting TSTAMP beneath supplies it
		"SAFE:STABLE",   // SAFE needs P14; STABLE beneath supplies it
		"FC",            // flow control over reliable FIFO
		"MERGE",         // partition healing above the fence
	}
	for _, desc := range ok {
		names := append(property.ParseStack(desc), "SWITCH")
		if _, err := property.Derive(property.SegmentBase, names); err != nil {
			t.Errorf("segment %q: expected well-formed over the segment base, got %v", desc, err)
		}
	}

	bad := []struct {
		desc string
		want string // substring the rejection must carry
	}{
		{"COMPRESS", "COMPRESS requires {P1}"}, // raw-network layer above the fence
		{"NAK", "NAK requires {P1}"},           // reliability layer re-inserted above itself
		{"COM", "COM requires {P1}"},           // transport smuggled above the fence
		{"VSS", "VSS requires"},                // needs stability (P14) the base lacks
		{"SAFE", "SAFE requires"},              // same, without its STABLE prerequisite
		{"CAUSAL", "CAUSAL requires"},          // needs P13 with no TSTAMP beneath
		// The CAUSAL:TSTAMP pair swapped: CAUSAL now sits beneath its
		// P13 provider and goes unmet — order matters.
		{"TSTAMP:CAUSAL", "CAUSAL requires {P13}"},
		{"TOTAL:XCOM", `unknown layer "XCOM"`}, // no Table 3 row at all
	}
	for _, tc := range bad {
		names := append(property.ParseStack(tc.desc), "SWITCH")
		_, err := property.Derive(property.SegmentBase, names)
		if err == nil {
			t.Errorf("segment %q: expected rejection, derived fine", tc.desc)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("segment %q: rejection %q does not name the offense %q", tc.desc, err, tc.want)
		}
	}
}
