package stackreg

import (
	"testing"

	"horus/internal/property"
)

func TestRegistryCoversTable3(t *testing.T) {
	reg := Registry()
	for _, name := range property.Names() {
		if _, ok := reg[name]; !ok {
			t.Errorf("Table 3 layer %s has no registered factory", name)
		}
	}
}

func TestRegistryFactoriesProduceNamedLayers(t *testing.T) {
	for name, f := range Registry() {
		l := f()
		if got := l.Name(); got != name {
			t.Errorf("factory %q builds layer named %q", name, got)
		}
	}
}

func TestBuildWellFormedStack(t *testing.T) {
	spec, err := Build("TOTAL:MBRSHIP:FRAG:NAK:COM", property.P1)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 5 {
		t.Fatalf("built %d layers, want 5", len(spec))
	}
}

func TestBuildRejectsIllFormed(t *testing.T) {
	//horus:stackcheck-ok — negative test: the rejection is the point
	if _, err := Build("TOTAL:COM", property.P1); err == nil {
		t.Error("ill-formed stack accepted")
	}
	//horus:stackcheck-ok — negative test: the rejection is the point
	if _, err := Build("", property.P1); err == nil {
		t.Error("empty stack accepted")
	}
	//horus:stackcheck-ok — negative test: the rejection is the point
	if _, err := Build("NOSUCH:COM", property.P1); err == nil {
		t.Error("unknown layer accepted")
	}
}
