// Package stackreg maps layer names to factories so that stacks can be
// assembled at run time from textual descriptions like
// "TOTAL:MBRSHIP:FRAG:NAK:COM" — the run-time LEGO stacking of
// Figure 1. The registry pairs with package property, whose Table3
// rows carry the same names; Build checks well-formedness before
// instantiating anything.
package stackreg

import (
	"fmt"

	"horus/internal/core"
	"horus/internal/layers/account"
	"horus/internal/layers/adapt"
	"horus/internal/layers/bms"
	"horus/internal/layers/causal"
	"horus/internal/layers/chksum"
	"horus/internal/layers/com"
	"horus/internal/layers/compress"
	"horus/internal/layers/crypt"
	"horus/internal/layers/fc"
	"horus/internal/layers/flush"
	"horus/internal/layers/frag"
	"horus/internal/layers/gkey"
	"horus/internal/layers/hbeat"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/merge"
	"horus/internal/layers/mlog"
	"horus/internal/layers/nak"
	"horus/internal/layers/nfrag"
	"horus/internal/layers/nnak"
	"horus/internal/layers/pinwheel"
	"horus/internal/layers/safe"
	"horus/internal/layers/sign"
	"horus/internal/layers/stable"
	"horus/internal/layers/switchp"
	"horus/internal/layers/total"
	"horus/internal/layers/trace"
	"horus/internal/layers/tstamp"
	"horus/internal/layers/vss"
	"horus/internal/property"
)

// demoKey is the pre-shared key used by SIGN and CRYPT layers built
// from the registry. Real deployments would configure keys explicitly
// (Figure 1's "key distribution" protocol type).
var demoKey = []byte("horus-demo-key-0123456789abcdef!")[:32]

// Registry returns a fresh name→factory map. Each call returns
// independent factories; MLOG layers share one in-memory store per
// registry.
func Registry() map[string]core.Factory {
	store := mlog.NewMemStore()
	reg := map[string]core.Factory{
		"ADAPT":    adapt.New,
		"COM":      com.New,
		"NAK":      nak.New,
		"NNAK":     nnak.New,
		"FRAG":     frag.New,
		"NFRAG":    nfrag.New,
		"CHKSUM":   chksum.New,
		"SIGN":     sign.New(demoKey),
		"CRYPT":    crypt.New(demoKey),
		"COMPRESS": compress.New,
		"FC":       fc.New,
		"GKEY":     gkey.New(demoKey),
		"HBEAT":    hbeat.New,
		"MBRSHIP":  mbrship.New,
		"BMS":      bms.NewAutoConsent(),
		"FLUSH":    flush.New,
		"VSS":      vss.New,
		"STABLE":   stable.New,
		"PINWHEEL": pinwheel.New,
		"TOTAL":    total.New,
		"TSTAMP":   tstamp.New,
		"CAUSAL":   causal.New,
		"SAFE":     safe.New,
		"MERGE":    merge.New,
		"TRACE":    trace.New,
		"ACCOUNT":  account.New,
		"MLOG":     mlog.New(store),
	}
	// SWITCH resolves its segment targets through this same registry
	// (closing over reg is safe: the map is fully built before any
	// factory runs), so a reconfigured segment gets the same layer
	// implementations a static Build would.
	reg["SWITCH"] = switchp.NewWith(switchp.WithResolver(func(name string) (core.Factory, bool) {
		f, ok := reg[name]
		return f, ok
	}))
	return reg
}

// Build parses a top-first stack description, verifies it is
// well-formed over a network providing netProps, and returns the
// corresponding StackSpec.
func Build(desc string, netProps property.Set) (core.StackSpec, error) {
	names := property.ParseStack(desc)
	if len(names) == 0 {
		return nil, fmt.Errorf("stackreg: empty stack description %q", desc)
	}
	if _, err := property.Derive(netProps, names); err != nil {
		return nil, err
	}
	reg := Registry()
	// BMS consents to flushes by itself unless a FLUSH or VSS layer
	// above will do the consenting after redistributing messages.
	for _, name := range names {
		if name == "FLUSH" || name == "VSS" {
			reg["BMS"] = bms.NewWith()
			break
		}
	}
	spec := make(core.StackSpec, 0, len(names))
	for _, name := range names {
		f, ok := reg[name]
		if !ok {
			return nil, fmt.Errorf("stackreg: layer %q has a Table 3 row but no implementation", name)
		}
		spec = append(spec, f)
	}
	return spec, nil
}

// MustBuild is Build for tests and tools with known-good descriptions.
func MustBuild(desc string, netProps property.Set) core.StackSpec {
	spec, err := Build(desc, netProps)
	if err != nil {
		panic(err)
	}
	return spec
}
