//horus:wallclock — fault proxy over real UDP sockets: delays, flap
// timers, and bandwidth pacing execute at genuine wall-clock speed.

// Package chaosnet runs the chaos harness's fault vocabulary over
// real UDP sockets: an in-process lossy proxy stands between every
// pair of members, so the same typed schedules that drive the
// simulator (loss ramps, asymmetric loss, flaps, crashes as new
// incarnations, partitions) execute against genuine kernel sockets at
// wall-clock speed.
//
// Topology: each member i owns a real udpnet transport bound to A_i
// and a proxy socket P_i. Peers are wired to P_i, never to A_i, so
// every frame addressed to i arrives at the proxy first:
//
//	member j ──A_j──▶ P_i ──(drop/delay/dup/garble?)──▶ A_i ──▶ member i
//
// The proxy identifies the sender by source address (udpnet sends
// from its listen socket), looks up the directed (src, dst) link
// rule — the full netsim.Link vocabulary the simulator uses, including
// Bandwidth serialization and the explicit reorder rule — and
// forwards, delays, throttles, holds back, duplicates, garbles, or
// drops the frame. Crashes, detaches, and partitions are enforced the
// same way: a frame to or from a crashed member, or across partition
// components, is swallowed.
//
// The package implements the chaos.Fabric interface structurally (it
// does not import chaos), so `chaos.Config{Fabric: chaosnet.New(...)}`
// runs the whole cluster driver — workload, reconciler, invariant
// checkers — unchanged over UDP. Nothing here is deterministic: the
// kernel schedules delivery, so chaosnet runs validate the protocols
// against real timing, while the simulator remains the replay tool.
package chaosnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"horus/internal/core"
	"horus/internal/netsim"
	"horus/internal/udpnet"
)

// Stats counts proxy-level activity across all members — the fault
// ledger attached to every UDP seed line. Reordered and Throttled
// mirror the netsim counters of the same names, so the two fabrics
// report rule firings in the same vocabulary.
type Stats struct {
	Forwarded  int // frames relayed to a member's real socket
	Dropped    int // frames dropped by a link's loss rate
	Blocked    int // frames dropped by crash, detach, or partition
	Duplicated int // extra copies delivered by duplication
	Garbled    int // frames corrupted in flight
	Reordered  int // frames held back by the reorder rule
	Throttled  int // frames that queued behind earlier traffic (bandwidth)
	// Congested counts frames that queued behind earlier traffic in
	// their host's shared egress bucket (Host.EgressBudget).
	Congested int
	// CollapseDropped counts frames dropped by a host's bounded egress
	// queue overflowing — offered load past the budget became loss.
	CollapseDropped int
	Unknown         int // frames from an unrecognized source address
}

// Config parameterizes a UDP fabric.
type Config struct {
	// Seed drives the proxy's fault randomness (loss, jitter, dup,
	// garble draws). Scheduling is still the kernel's, so runs are not
	// replayable — the seed only decouples fault draws from time.
	Seed int64
	// DefaultLink applies to every (src, dst) pair without an
	// override, exactly as in netsim.
	DefaultLink netsim.Link
	// Addr is the listen address for member and proxy sockets;
	// empty means "127.0.0.1:0" (ephemeral loopback).
	Addr string
}

type pair struct{ a, b core.EndpointID }

// node is one member's attachment: its real transport and the proxy
// socket every peer sends to instead.
type node struct {
	id    core.EndpointID
	tr    *udpnet.Transport
	proxy *net.UDPConn
	ep    *core.Endpoint
	real  *net.UDPAddr // tr's bound address, the proxy's forward target
}

// Fabric is the UDP implementation of the chaos transport substrate.
// All methods are safe for concurrent use; protocol side effects of
// Crash/Detach run through the victim endpoint's executor.
type Fabric struct {
	addr string

	mu         sync.Mutex
	rng        *rand.Rand
	start      time.Time
	def        netsim.Link
	links      map[pair]netsim.Link
	crashed    map[core.EndpointID]bool
	part       map[core.EndpointID]int
	nodes      map[core.EndpointID]*node
	bySrc      map[string]core.EndpointID // member real addr -> member
	linkFree   map[pair]time.Duration     // directed link busy-until (bandwidth model)
	held       map[pair][]*heldFrame      // directed link reorder holds
	hosts      map[core.EndpointID]netsim.Host
	egressFree map[core.EndpointID]time.Duration // per-host egress busy-until
	// Per-host slices of the egress ledger, served to each member's
	// transport through the core.CongestionReporter hook — the same
	// split netsim keeps, so ADAPT sees one vocabulary on both fabrics.
	egressCongested map[core.EndpointID]uint64
	egressDropped   map[core.EndpointID]uint64
	nextBirth       uint64
	stats           Stats
	retired         udpnet.Stats // transport counters of detached incarnations
	timers          []*time.Timer
	closed          bool

	wg sync.WaitGroup
}

// heldFrame is one frame parked by the reorder rule, waiting for
// `remaining` later departures on its directed link (or the hold
// backstop timer) before it is dispatched.
type heldFrame struct {
	remaining  int
	released   bool
	fireLocked func() // dispatch with a fresh delay draw; caller holds f.mu
}

// New builds an empty UDP fabric; endpoints attach via NewEndpoint.
func New(cfg Config) *Fabric {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	return &Fabric{
		addr:            cfg.Addr,
		rng:             rand.New(rand.NewSource(cfg.Seed)),
		start:           time.Now(),
		def:             cfg.DefaultLink,
		links:           make(map[pair]netsim.Link),
		crashed:         make(map[core.EndpointID]bool),
		part:            make(map[core.EndpointID]int),
		nodes:           make(map[core.EndpointID]*node),
		bySrc:           make(map[string]core.EndpointID),
		linkFree:        make(map[pair]time.Duration),
		held:            make(map[pair][]*heldFrame),
		hosts:           make(map[core.EndpointID]netsim.Host),
		egressFree:      make(map[core.EndpointID]time.Duration),
		egressCongested: make(map[core.EndpointID]uint64),
		egressDropped:   make(map[core.EndpointID]uint64),
		nextBirth:       1,
	}
}

// NewEndpoint boots a member: a real udpnet transport, its proxy
// socket, and full peer wiring in both directions (existing members
// learn the newcomer's proxy; the newcomer learns theirs). Birth
// identities follow call order, matching the simulator, so schedules
// resolve slots identically on either fabric.
func (f *Fabric) NewEndpoint(site string) *core.Endpoint {
	f.mu.Lock()
	id := core.EndpointID{Site: site, Birth: f.nextBirth}
	f.nextBirth++
	f.mu.Unlock()

	tr, err := udpnet.Listen(f.addr, id)
	if err != nil {
		panic(fmt.Sprintf("chaosnet: member socket: %v", err))
	}
	proxyAddr := &net.UDPAddr{IP: tr.Addr().IP, Port: 0}
	proxy, err := net.ListenUDP("udp", proxyAddr)
	if err != nil {
		panic(fmt.Sprintf("chaosnet: proxy socket: %v", err))
	}
	n := &node{id: id, tr: tr, proxy: proxy, real: tr.Addr()}

	f.mu.Lock()
	for _, o := range f.nodes {
		o.tr.AddPeer(id, proxy.LocalAddr().(*net.UDPAddr))
		tr.AddPeer(o.id, o.proxy.LocalAddr().(*net.UDPAddr))
	}
	// The member is a peer of itself, through its own proxy: netsim
	// delivers loopback casts (subject to link faults, exempt from the
	// egress bucket), so the UDP fabric must too, or every self-
	// addressed copy of a group cast silently vanishes.
	tr.AddPeer(id, proxy.LocalAddr().(*net.UDPAddr))
	f.nodes[id] = n
	f.bySrc[tr.Addr().String()] = id
	f.mu.Unlock()

	// The member's transport serves the fabric's egress ledger to its
	// stack: layers polling Context.EgressFeedback over UDP read the
	// same per-host counters the simulator serves natively.
	tr.SetEgressFeedback(func() core.EgressFeedback { return f.EgressFeedback(id) })

	n.ep = tr.NewEndpoint()
	f.wg.Add(1)
	go f.proxyLoop(n)
	return n.ep
}

// EgressFeedback snapshots the egress ledger charged to one sending
// member: current bucket backlog plus cumulative congestion counters.
// Counters survive SetHost/ClearHost and reset only on Detach,
// matching netsim.
func (f *Fabric) EgressFeedback(id core.EndpointID) core.EgressFeedback {
	f.mu.Lock()
	defer f.mu.Unlock()
	return core.EgressFeedback{
		BacklogBytes:    netsim.BucketBacklog(time.Since(f.start), f.egressFree[id], f.hosts[id].EgressBudget),
		Congested:       f.egressCongested[id],
		CollapseDropped: f.egressDropped[id],
	}
}

// proxyLoop relays frames arriving at a member's proxy socket to the
// member's real socket, applying the directed link rule for each
// (sender, member) pair.
func (f *Fabric) proxyLoop(n *node) {
	defer f.wg.Done()
	buf := make([]byte, 64*1024+1)
	for {
		sz, src, err := n.proxy.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		pkt := make([]byte, sz)
		copy(pkt, buf[:sz])
		f.route(n, src.String(), pkt)
	}
}

// route applies the fault rules to one frame and forwards the
// survivors. Fault draws happen under the fabric lock; the actual
// socket writes happen outside it (possibly on a timer goroutine).
func (f *Fabric) route(n *node, src string, pkt []byte) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	from, ok := f.bySrc[src]
	if !ok {
		f.stats.Unknown++
		f.mu.Unlock()
		return
	}
	if f.crashed[from] || f.crashed[n.id] {
		f.stats.Blocked++
		f.mu.Unlock()
		return
	}
	if f.part[from] != f.part[n.id] {
		f.stats.Blocked++
		f.mu.Unlock()
		return
	}
	l := f.linkFor(from, n.id)
	if l.LossRate > 0 && f.rng.Float64() < l.LossRate {
		f.stats.Dropped++
		f.mu.Unlock()
		return
	}
	if l.GarbleRate > 0 && len(pkt) > 0 && f.rng.Float64() < l.GarbleRate {
		pkt[f.rng.Intn(len(pkt))] ^= byte(1 + f.rng.Intn(255))
		f.stats.Garbled++
	}
	copies := 1
	if l.DupRate > 0 && f.rng.Float64() < l.DupRate {
		copies = 2
		f.stats.Duplicated++
	}
	dir := pair{from, n.id}
	var delays []time.Duration
	for i := 0; i < copies; i++ {
		if l.ReorderRate > 0 && f.rng.Float64() < l.ReorderRate {
			f.holdLocked(dir, n, pkt, l)
			continue
		}
		if d, ok := f.xmitDelayLocked(dir, l, len(pkt)); ok {
			delays = append(delays, d)
		}
		// A collapse-dropped frame still counts as a departure for the
		// reorder rule, matching netsim: the sender attempted it.
		f.departLocked(dir)
	}
	f.mu.Unlock()

	for _, d := range delays {
		if d <= 0 {
			f.deliver(n, pkt)
		} else {
			time.AfterFunc(d, func() { f.deliver(n, pkt) })
		}
	}
}

// deliver writes one frame to the member's real socket and counts it.
func (f *Fabric) deliver(n *node, pkt []byte) {
	if _, err := n.proxy.WriteToUDP(pkt, n.real); err != nil {
		return // member socket gone; the frame is just lost
	}
	f.mu.Lock()
	f.stats.Forwarded++
	f.mu.Unlock()
}

// xmitDelayLocked computes one frame's time on the directed link:
// host egress budget, propagation delay, jitter, and — when
// Link.Bandwidth caps the pair — the wait for the link to drain plus
// the frame's own serialization time, exactly netsim's model in
// wall-clock time. Both rate rules are busy-until token buckets on the
// shared netsim math: the frame acquires tokens from its host's
// egress bucket first (store-and-forward — it clears the NIC only once
// fully serialized) and its link's bandwidth bucket second. ok is
// false when the host's bounded egress queue overflowed and the frame
// must be dropped (CollapseDropped). Callers hold f.mu.
func (f *Fabric) xmitDelayLocked(dir pair, l netsim.Link, size int) (delay time.Duration, ok bool) {
	now := time.Since(f.start)
	newFree, clear, out := netsim.EgressAcquire(f.hosts[dir.a], dir.a, dir.b, now, f.egressFree[dir.a], size)
	switch out {
	case netsim.EgressDropped:
		f.stats.CollapseDropped++
		f.egressDropped[dir.a]++
		return 0, false
	case netsim.EgressQueued:
		f.stats.Congested++
		f.egressCongested[dir.a]++
		f.egressFree[dir.a] = newFree
	case netsim.EgressGranted:
		f.egressFree[dir.a] = newFree
	}
	d := l.Delay
	if l.Jitter > 0 {
		d += time.Duration(f.rng.Int63n(int64(l.Jitter)))
	}
	if l.Bandwidth > 0 {
		linkFree, queued := netsim.BucketAcquire(clear, f.linkFree[dir], size, l.Bandwidth)
		if queued {
			f.stats.Throttled++
		}
		f.linkFree[dir] = linkFree
		d += linkFree - now
	} else {
		d += clear - now
	}
	return d, true
}

// holdLocked parks one frame under the reorder rule: it is dispatched
// after ReorderDepth later departures on the same directed link, or
// when the hold backstop expires on a link gone quiet — the same
// hold-and-release semantics as netsim. Callers hold f.mu.
func (f *Fabric) holdLocked(dir pair, n *node, pkt []byte, l netsim.Link) {
	depth := l.ReorderDepth
	if depth <= 0 {
		depth = netsim.DefaultReorderDepth
	}
	hold := l.ReorderHold
	if hold <= 0 {
		hold = netsim.DefaultReorderHold
	}
	f.stats.Reordered++
	h := &heldFrame{remaining: depth}
	h.fireLocked = func() {
		// The rule table may have changed while the frame was held;
		// draw its delay from the link (and host budget) in force at
		// release time, as netsim does.
		d, ok := f.xmitDelayLocked(dir, f.linkFor(dir.a, dir.b), len(pkt))
		if !ok {
			return // the host's egress queue collapsed under the hold
		}
		if d < 0 {
			d = 0
		}
		time.AfterFunc(d, func() { f.deliver(n, pkt) })
	}
	f.held[dir] = append(f.held[dir], h)
	f.timers = append(f.timers, time.AfterFunc(hold, func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.closed || h.released {
			return
		}
		h.released = true
		hs := f.held[dir]
		for i, x := range hs {
			if x == h {
				f.held[dir] = append(hs[:i], hs[i+1:]...)
				break
			}
		}
		h.fireLocked()
	}))
}

// departLocked counts one departure on a directed link against its
// held frames, releasing any whose depth is exhausted. Callers hold
// f.mu.
func (f *Fabric) departLocked(dir pair) {
	hs := f.held[dir]
	if len(hs) == 0 {
		return
	}
	keep := hs[:0]
	var release []*heldFrame
	for _, h := range hs {
		h.remaining--
		if h.remaining <= 0 {
			h.released = true
			release = append(release, h)
		} else {
			keep = append(keep, h)
		}
	}
	f.held[dir] = keep
	for _, h := range release {
		h.fireLocked()
	}
}

// linkFor mirrors netsim precedence: directed override, then default.
// Callers hold f.mu.
func (f *Fabric) linkFor(from, to core.EndpointID) netsim.Link {
	if l, ok := f.links[pair{from, to}]; ok {
		return l
	}
	return f.def
}

// Now is wall time since the fabric was built.
func (f *Fabric) Now() time.Duration { return time.Since(f.start) }

// At schedules fn at absolute fabric time t on a timer goroutine.
// After Close, pending timers are stopped and new ones are not armed —
// that is what ends the cluster's self-re-arming workload ticks.
func (f *Fabric) At(t time.Duration, fn func()) {
	d := t - f.Now()
	if d < 0 {
		d = 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.timers = append(f.timers, time.AfterFunc(d, fn))
}

// RunFor sleeps: on a wall-clock fabric the sockets run themselves.
func (f *Fabric) RunFor(d time.Duration) { time.Sleep(d) }

// SetLink overrides the link in both directions, as in netsim.
func (f *Fabric) SetLink(a, b core.EndpointID, l netsim.Link) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.links[pair{a, b}] = l
	f.links[pair{b, a}] = l
}

// SetLinkDirected overrides the link for frames from a to b only.
func (f *Fabric) SetLinkDirected(a, b core.EndpointID, l netsim.Link) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.links[pair{a, b}] = l
}

// ClearLink removes overrides between a and b (both directions).
func (f *Fabric) ClearLink(a, b core.EndpointID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.links, pair{a, b})
	delete(f.links, pair{b, a})
}

// SetHost overrides the per-host limits for one member, as in netsim:
// an egress budget applies to every frame the member originates, across
// all destinations, before the per-link rules. Installing a budget
// resets the bucket, so a previous horizon never leaks into it.
func (f *Fabric) SetHost(id core.EndpointID, h netsim.Host) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hosts[id] = h
	delete(f.egressFree, id)
}

// ClearHost removes the per-host limits for one member.
func (f *Fabric) ClearHost(id core.EndpointID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.hosts, id)
	delete(f.egressFree, id)
}

// Crash fail-stops a member: its stacks are destroyed (timers die,
// protocol execution halts) and the proxy swallows everything to or
// from it. Peers observe silence, the failure model the stack turns
// into clean view changes.
func (f *Fabric) Crash(id core.EndpointID) {
	f.mu.Lock()
	n := f.nodes[id]
	f.crashed[id] = true
	f.mu.Unlock()
	if n != nil {
		n.ep.Destroy()
	}
}

// Detach removes a (typically crashed) incarnation entirely: its
// sockets close, its proxy loop exits, and its fault bookkeeping is
// forgotten. Peers still hold a wiring entry for the dead proxy, but
// frames sent there vanish into a closed socket — exactly the
// best-effort semantics of sending to a dead host.
func (f *Fabric) Detach(id core.EndpointID) {
	f.Crash(id)
	f.mu.Lock()
	n := f.nodes[id]
	if n != nil {
		f.retired.SendErrors += n.tr.Stats().SendErrors
		f.retired.Oversized += n.tr.Stats().Oversized
		f.retired.Malformed += n.tr.Stats().Malformed
		f.retired.Truncated += n.tr.Stats().Truncated
		delete(f.bySrc, n.real.String())
	}
	delete(f.nodes, id)
	delete(f.crashed, id)
	delete(f.part, id)
	for p := range f.links {
		if p.a == id || p.b == id {
			delete(f.links, p)
		}
	}
	for p := range f.linkFree {
		if p.a == id || p.b == id {
			delete(f.linkFree, p)
		}
	}
	for p := range f.held {
		if p.a == id || p.b == id {
			delete(f.held, p)
		}
	}
	delete(f.hosts, id)
	delete(f.egressFree, id)
	delete(f.egressCongested, id)
	delete(f.egressDropped, id)
	f.mu.Unlock()
	if n != nil {
		n.tr.Close()
		n.proxy.Close()
	}
}

// Partition splits the members into components; frames flow only
// within a component. Members not listed join component 0 together —
// the same convention as netsim.
func (f *Fabric) Partition(groups ...[]core.EndpointID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.part = make(map[core.EndpointID]int)
	for i, g := range groups {
		for _, id := range g {
			f.part[id] = i + 1
		}
	}
}

// Heal removes all partitions.
func (f *Fabric) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.part = make(map[core.EndpointID]int)
}

// Stats snapshots the proxy counters.
func (f *Fabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// TransportStats sums the udpnet counters over every incarnation that
// ever attached, including detached ones: transport-level trouble
// (send failures, malformed datagrams) survives the member it
// happened to.
func (f *Fabric) TransportStats() udpnet.Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := f.retired
	for _, n := range f.nodes {
		s := n.tr.Stats()
		total.SendErrors += s.SendErrors
		total.Oversized += s.Oversized
		total.Malformed += s.Malformed
		total.Truncated += s.Truncated
	}
	return total
}

// Close quiesces the fabric: stops schedule timers, destroys every
// member stack (cancelling protocol timers), closes all sockets, and
// waits for the proxy goroutines to exit. After Close, recorded
// histories are stable and safe to check.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	timers := f.timers
	f.timers = nil
	nodes := make([]*node, 0, len(f.nodes))
	for _, n := range f.nodes {
		nodes = append(nodes, n)
	}
	f.mu.Unlock()

	for _, t := range timers {
		t.Stop()
	}
	for _, n := range nodes {
		n.ep.Destroy()
	}
	for _, n := range nodes {
		n.tr.Close()
		n.proxy.Close()
	}
	f.wg.Wait()
}
