package chaosnet

import (
	"net"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/netsim"
)

// waitFor polls cond for up to 2s — wall-clock tests cannot assert on
// exact timing, only eventual counters.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}

func TestProxyCountsUnknownSources(t *testing.T) {
	f := New(Config{Seed: 1})
	defer f.Close()
	f.NewEndpoint("a")

	// A frame from a socket the fabric never registered must be
	// swallowed and counted, not forwarded.
	var proxyAddr *net.UDPAddr
	f.mu.Lock()
	for _, n := range f.nodes {
		proxyAddr = n.proxy.LocalAddr().(*net.UDPAddr)
	}
	f.mu.Unlock()

	stranger, err := net.DialUDP("udp", nil, proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()
	if _, err := stranger.Write([]byte("who dis")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return f.Stats().Unknown >= 1 })
	if got := f.Stats().Forwarded; got != 0 {
		t.Fatalf("stranger frame forwarded %d times", got)
	}
}

func TestProxyEnforcesCrashAndPartition(t *testing.T) {
	f := New(Config{Seed: 2})
	defer f.Close()
	epA := f.NewEndpoint("a")
	epB := f.NewEndpoint("b")
	a, b := epA.ID(), epB.ID()

	var na, nb *node
	f.mu.Lock()
	na, nb = f.nodes[a], f.nodes[b]
	f.mu.Unlock()

	// Drive the checks through route() directly: source-address
	// identification is covered by the cluster smoke in fabric_test.go;
	// here we pin the rule table itself.
	frame := []byte{0, 0, 'x'}
	f.route(nb, na.real.String(), frame)
	waitFor(t, func() bool { return f.Stats().Forwarded == 1 })

	f.Partition([]core.EndpointID{a}, []core.EndpointID{b})
	f.route(nb, na.real.String(), frame)
	waitFor(t, func() bool { return f.Stats().Blocked == 1 })

	f.Heal()
	f.route(nb, na.real.String(), frame)
	waitFor(t, func() bool { return f.Stats().Forwarded == 2 })

	f.Crash(a)
	f.route(nb, na.real.String(), frame)
	waitFor(t, func() bool { return f.Stats().Blocked == 2 })
}

func TestProxyAppliesLossAndDirectedLinks(t *testing.T) {
	f := New(Config{Seed: 3})
	defer f.Close()
	epA := f.NewEndpoint("a")
	epB := f.NewEndpoint("b")
	a, b := epA.ID(), epB.ID()

	var na, nb *node
	f.mu.Lock()
	na, nb = f.nodes[a], f.nodes[b]
	f.mu.Unlock()

	// Full loss a->b drops everything; the reverse direction is clean.
	f.SetLinkDirected(a, b, netsim.Link{LossRate: 1})
	frame := []byte{0, 0, 'x'}
	for i := 0; i < 10; i++ {
		f.route(nb, na.real.String(), frame) // a -> b: lossy
	}
	waitFor(t, func() bool { return f.Stats().Dropped == 10 })
	f.route(na, nb.real.String(), frame) // b -> a: default link
	waitFor(t, func() bool { return f.Stats().Forwarded == 1 })

	// ClearLink restores the default in both directions.
	f.ClearLink(a, b)
	f.route(nb, na.real.String(), frame)
	waitFor(t, func() bool { return f.Stats().Forwarded == 2 })
}

// TestProxyReorderHoldAndRelease: a frame held by the reorder rule is
// overtaken by exactly ReorderDepth later departures; the ledger
// records the hold.
func TestProxyReorderHoldAndRelease(t *testing.T) {
	f := New(Config{Seed: 5})
	defer f.Close()
	epA := f.NewEndpoint("a")
	epB := f.NewEndpoint("b")
	a, b := epA.ID(), epB.ID()

	var na, nb *node
	f.mu.Lock()
	na, nb = f.nodes[a], f.nodes[b]
	f.mu.Unlock()

	// Hold the first frame, then disarm the rule so the followers
	// depart normally and count against its depth.
	f.SetLinkDirected(a, b, netsim.Link{ReorderRate: 1, ReorderDepth: 2})
	f.route(nb, na.real.String(), []byte{0, 0, 'x'})
	waitFor(t, func() bool { return f.Stats().Reordered == 1 })
	if got := f.Stats().Forwarded; got != 0 {
		t.Fatalf("held frame forwarded %d times before release", got)
	}
	f.ClearLink(a, b)
	f.route(nb, na.real.String(), []byte{0, 0, 'y'})
	f.route(nb, na.real.String(), []byte{0, 0, 'z'})
	// Two departures exhaust the depth: all three frames arrive.
	waitFor(t, func() bool { return f.Stats().Forwarded == 3 })
}

// TestProxyReorderBackstopReleasesQuietLink: with no follow-up traffic
// the hold timer releases the frame — the rule delays, never loses.
func TestProxyReorderBackstopReleasesQuietLink(t *testing.T) {
	f := New(Config{Seed: 6})
	defer f.Close()
	epA := f.NewEndpoint("a")
	epB := f.NewEndpoint("b")
	a, b := epA.ID(), epB.ID()

	var na, nb *node
	f.mu.Lock()
	na, nb = f.nodes[a], f.nodes[b]
	f.mu.Unlock()

	f.SetLinkDirected(a, b, netsim.Link{
		ReorderRate: 1, ReorderDepth: 5, ReorderHold: 30 * time.Millisecond,
	})
	f.route(nb, na.real.String(), []byte{0, 0, 'q'})
	waitFor(t, func() bool { return f.Stats().Forwarded == 1 })
	if got := f.Stats().Reordered; got != 1 {
		t.Fatalf("Reordered = %d, want 1", got)
	}
}

// TestProxyBandwidthSerializes: a burst over a capped link queues, the
// ledger counts every frame that waited, and all of them still arrive.
func TestProxyBandwidthSerializes(t *testing.T) {
	f := New(Config{Seed: 7})
	defer f.Close()
	epA := f.NewEndpoint("a")
	epB := f.NewEndpoint("b")
	a, b := epA.ID(), epB.ID()

	var na, nb *node
	f.mu.Lock()
	na, nb = f.nodes[a], f.nodes[b]
	f.mu.Unlock()

	// 3-byte frames at 1000 B/s: 3ms of link each; a burst of 5 makes
	// every frame after the first queue behind the backlog.
	f.SetLinkDirected(a, b, netsim.Link{Bandwidth: 1000})
	start := time.Now()
	for i := 0; i < 5; i++ {
		f.route(nb, na.real.String(), []byte{0, 0, byte('0' + i)})
	}
	waitFor(t, func() bool { return f.Stats().Forwarded == 5 })
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("burst drained in %v, want >= 12ms of serialization", elapsed)
	}
	if got := f.Stats().Throttled; got != 4 {
		t.Fatalf("Throttled = %d, want 4 (burst of 5, first finds the link idle)", got)
	}
}

// TestGarbleLedgerMatchesDecodeErrors: every frame the proxy corrupts
// is a frame udpnet refuses to decode — the proxy's garble ledger and
// the transport's Malformed counter must agree exactly. The frames are
// bare 2-byte headers (empty group, empty payload), so any single-byte
// flip turns the length prefix into a promise the datagram cannot
// keep.
func TestGarbleLedgerMatchesDecodeErrors(t *testing.T) {
	f := New(Config{Seed: 8})
	defer f.Close()
	epA := f.NewEndpoint("a")
	epB := f.NewEndpoint("b")
	a, b := epA.ID(), epB.ID()

	var na, nb *node
	f.mu.Lock()
	na, nb = f.nodes[a], f.nodes[b]
	f.mu.Unlock()

	f.SetLinkDirected(a, b, netsim.Link{GarbleRate: 1})
	const frames = 25
	for i := 0; i < frames; i++ {
		f.route(nb, na.real.String(), []byte{0, 0})
	}
	waitFor(t, func() bool {
		return f.Stats().Forwarded == frames && f.TransportStats().Malformed == frames
	})
	if got := f.Stats().Garbled; got != frames {
		t.Fatalf("Garbled = %d, want %d", got, frames)
	}
	if got := f.TransportStats().Malformed; got != uint64(frames) {
		t.Fatalf("Malformed = %d, want %d (every garbled frame must fail decode)", got, frames)
	}
}
