package chaosnet

import (
	"net"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/netsim"
)

// waitFor polls cond for up to 2s — wall-clock tests cannot assert on
// exact timing, only eventual counters.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}

func TestProxyCountsUnknownSources(t *testing.T) {
	f := New(Config{Seed: 1})
	defer f.Close()
	f.NewEndpoint("a")

	// A frame from a socket the fabric never registered must be
	// swallowed and counted, not forwarded.
	var proxyAddr *net.UDPAddr
	f.mu.Lock()
	for _, n := range f.nodes {
		proxyAddr = n.proxy.LocalAddr().(*net.UDPAddr)
	}
	f.mu.Unlock()

	stranger, err := net.DialUDP("udp", nil, proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()
	if _, err := stranger.Write([]byte("who dis")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return f.Stats().Unknown >= 1 })
	if got := f.Stats().Forwarded; got != 0 {
		t.Fatalf("stranger frame forwarded %d times", got)
	}
}

func TestProxyEnforcesCrashAndPartition(t *testing.T) {
	f := New(Config{Seed: 2})
	defer f.Close()
	epA := f.NewEndpoint("a")
	epB := f.NewEndpoint("b")
	a, b := epA.ID(), epB.ID()

	var na, nb *node
	f.mu.Lock()
	na, nb = f.nodes[a], f.nodes[b]
	f.mu.Unlock()

	// Drive the checks through route() directly: source-address
	// identification is covered by the cluster smoke in fabric_test.go;
	// here we pin the rule table itself.
	frame := []byte{0, 0, 'x'}
	f.route(nb, na.real.String(), frame)
	waitFor(t, func() bool { return f.Stats().Forwarded == 1 })

	f.Partition([]core.EndpointID{a}, []core.EndpointID{b})
	f.route(nb, na.real.String(), frame)
	waitFor(t, func() bool { return f.Stats().Blocked == 1 })

	f.Heal()
	f.route(nb, na.real.String(), frame)
	waitFor(t, func() bool { return f.Stats().Forwarded == 2 })

	f.Crash(a)
	f.route(nb, na.real.String(), frame)
	waitFor(t, func() bool { return f.Stats().Blocked == 2 })
}

func TestProxyAppliesLossAndDirectedLinks(t *testing.T) {
	f := New(Config{Seed: 3})
	defer f.Close()
	epA := f.NewEndpoint("a")
	epB := f.NewEndpoint("b")
	a, b := epA.ID(), epB.ID()

	var na, nb *node
	f.mu.Lock()
	na, nb = f.nodes[a], f.nodes[b]
	f.mu.Unlock()

	// Full loss a->b drops everything; the reverse direction is clean.
	f.SetLinkDirected(a, b, netsim.Link{LossRate: 1})
	frame := []byte{0, 0, 'x'}
	for i := 0; i < 10; i++ {
		f.route(nb, na.real.String(), frame) // a -> b: lossy
	}
	waitFor(t, func() bool { return f.Stats().Dropped == 10 })
	f.route(na, nb.real.String(), frame) // b -> a: default link
	waitFor(t, func() bool { return f.Stats().Forwarded == 1 })

	// ClearLink restores the default in both directions.
	f.ClearLink(a, b)
	f.route(nb, na.real.String(), frame)
	waitFor(t, func() bool { return f.Stats().Forwarded == 2 })
}
