package chaosnet_test

import (
	"testing"
	"time"

	"horus/internal/chaos"
	"horus/internal/chaosnet"
	"horus/internal/netsim"
)

// The UDP fabric must satisfy the chaos transport abstraction without
// chaosnet importing chaos — structural typing keeps the dependency
// arrow pointing one way.
var _ chaos.Fabric = (*chaosnet.Fabric)(nil)

// TestClusterOverUDPSmoke is the real-socket end-to-end: a cluster
// forms over loopback UDP through the lossy proxies, survives a crash
// and recovery, re-converges, and keeps every virtual-synchrony
// invariant. Wall-clock deadlines are generous — CI machines stall.
func TestClusterOverUDPSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock UDP smoke")
	}
	link := netsim.Link{Delay: time.Millisecond, Jitter: 2 * time.Millisecond, LossRate: 0.02}
	c := chaos.NewCluster(chaos.Config{
		Seed: 1, Members: 3, Link: link,
		Fabric: chaosnet.New(chaosnet.Config{Seed: 1, DefaultLink: link}),
	})
	if err := c.Form(15 * time.Second); err != nil {
		c.Close()
		t.Fatal(err)
	}
	c.Apply(chaos.Schedule{
		{At: 100 * time.Millisecond, Kind: chaos.KindCrash, A: 2},
		{At: 900 * time.Millisecond, Kind: chaos.KindRecover, A: 2},
	})
	c.Run(1200 * time.Millisecond)
	err := c.Settle(15 * time.Second)
	c.Close() // quiesce before reading histories
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range c.Check() {
		t.Error(e)
	}
	if len(c.Histories) != 4 {
		t.Fatalf("expected 4 incarnations (3 boots + 1 recover), got %d", len(c.Histories))
	}
	f := c.Fabric().(*chaosnet.Fabric)
	if f.Stats().Forwarded == 0 {
		t.Fatal("proxy forwarded nothing — the cluster cannot have formed through it")
	}
}
