package chaosnet

import (
	"testing"

	"horus/internal/netsim"
)

// twoNodes boots a fabric with members a and b and returns their
// attachment records for route()-driven rule-table tests.
func twoNodes(t *testing.T, seed int64) (f *Fabric, na, nb *node) {
	t.Helper()
	f = New(Config{Seed: seed})
	t.Cleanup(f.Close)
	epA := f.NewEndpoint("a")
	epB := f.NewEndpoint("b")
	f.mu.Lock()
	na, nb = f.nodes[epA.ID()], f.nodes[epB.ID()]
	f.mu.Unlock()
	return f, na, nb
}

// TestProxyEgressCongestedCounter: frames that queue behind earlier
// traffic in the sender's shared egress bucket land in the Congested
// ledger — the same decision netsim makes, via the same shared math —
// and all of them are eventually forwarded.
func TestProxyEgressCongestedCounter(t *testing.T) {
	f, na, nb := twoNodes(t, 11)
	// 3-byte frames against 10 KB/s: each occupies ~0.3ms of budget,
	// so a tight burst queues but drains in well under waitFor's 2s.
	f.SetHost(na.id, netsim.Host{EgressBudget: 10 * 1024})

	frame := []byte{0, 0, 'x'}
	for i := 0; i < 5; i++ {
		f.route(nb, na.real.String(), frame)
	}
	waitFor(t, func() bool { return f.Stats().Forwarded == 5 })
	st := f.Stats()
	if st.Congested == 0 {
		t.Fatalf("burst of 5 never queued in the egress bucket: %+v", st)
	}
	if st.CollapseDropped != 0 {
		t.Fatalf("default queue dropped frames: %+v", st)
	}
}

// TestProxyEgressBudgetSmallerThanFrame: a budget and queue smaller
// than a single frame produce delay, never a blackhole — the frame
// that finds the backlog empty is always admitted.
func TestProxyEgressBudgetSmallerThanFrame(t *testing.T) {
	f, na, nb := twoNodes(t, 12)
	// A 3-byte frame is larger than the whole queue bound; the budget
	// serializes it in ~30ms. Admission must still happen.
	f.SetHost(na.id, netsim.Host{EgressBudget: 100, EgressQueue: 1})

	f.route(nb, na.real.String(), []byte{0, 0, 'x'})
	waitFor(t, func() bool { return f.Stats().Forwarded == 1 })
	if st := f.Stats(); st.CollapseDropped != 0 {
		t.Fatalf("lone frame dropped by an empty queue: %+v", st)
	}
}

// TestProxyEgressQueueOverflowDrops: sustained overload past the
// bounded egress queue becomes CollapseDropped loss, and ClearHost
// lifts the budget again.
func TestProxyEgressQueueOverflowDrops(t *testing.T) {
	f, na, nb := twoNodes(t, 13)
	// 3-byte frames at 100 B/s occupy 30ms of budget each; a queue of
	// 6 bytes holds two frames, so a burst of 20 must overflow.
	f.SetHost(na.id, netsim.Host{EgressBudget: 100, EgressQueue: 6})

	frame := []byte{0, 0, 'x'}
	for i := 0; i < 20; i++ {
		f.route(nb, na.real.String(), frame)
	}
	waitFor(t, func() bool {
		st := f.Stats()
		return st.CollapseDropped > 0 && st.Forwarded+st.CollapseDropped == 20
	})
	st := f.Stats()
	if st.Forwarded == 0 {
		t.Fatalf("bounded queue blackholed the host: %+v", st)
	}

	// ClearHost drops the budget and the accumulated horizon: the next
	// frame forwards promptly without touching the collapse ledger.
	f.ClearHost(na.id)
	before := f.Stats().CollapseDropped
	f.route(nb, na.real.String(), frame)
	waitFor(t, func() bool { return f.Stats().Forwarded == st.Forwarded+1 })
	if after := f.Stats().CollapseDropped; after != before {
		t.Fatalf("ClearHost did not lift the budget: drops grew %d -> %d", before, after)
	}
}

// TestProxySetHostResetsHorizon: re-issuing SetHost (as a schedule
// might when two squeezes overlap) resets the busy-until horizon, so
// a stale backlog from the old budget cannot drop fresh traffic.
func TestProxySetHostResetsHorizon(t *testing.T) {
	f, na, nb := twoNodes(t, 14)
	f.SetHost(na.id, netsim.Host{EgressBudget: 10, EgressQueue: 4})
	frame := []byte{0, 0, 'x'}
	// One admitted frame parks ~300ms of backlog at 10 B/s.
	f.route(nb, na.real.String(), frame)

	// A generous replacement budget starts from a clean bucket: the
	// next frame must be admitted, not dropped against old backlog.
	f.SetHost(na.id, netsim.Host{EgressBudget: 1 << 20})
	f.route(nb, na.real.String(), frame)
	waitFor(t, func() bool { return f.Stats().Forwarded == 2 })
	if st := f.Stats(); st.CollapseDropped != 0 {
		t.Fatalf("stale horizon survived SetHost: %+v", st)
	}
}

// TestProxyEgressSharedAcrossLinks: one member's egress bucket is
// shared across destinations — a fan-out burst congests even though
// each directed link is idle. This is exactly the shape the per-link
// Bandwidth rule cannot express.
func TestProxyEgressSharedAcrossLinks(t *testing.T) {
	f := New(Config{Seed: 15})
	t.Cleanup(f.Close)
	epA := f.NewEndpoint("a")
	epB := f.NewEndpoint("b")
	epC := f.NewEndpoint("c")
	f.mu.Lock()
	na, nb, nc := f.nodes[epA.ID()], f.nodes[epB.ID()], f.nodes[epC.ID()]
	f.mu.Unlock()

	f.SetHost(na.id, netsim.Host{EgressBudget: 10 * 1024})
	frame := []byte{0, 0, 'x'}
	for i := 0; i < 3; i++ {
		f.route(nb, na.real.String(), frame)
		f.route(nc, na.real.String(), frame)
	}
	waitFor(t, func() bool { return f.Stats().Forwarded == 6 })
	if st := f.Stats(); st.Congested == 0 {
		t.Fatalf("fan-out burst never congested the shared bucket: %+v", st)
	}
	if st := f.Stats(); st.Throttled != 0 {
		t.Fatalf("no link has a bandwidth cap, yet Throttled = %d", st.Throttled)
	}
}
