// Package socket hides a Horus process group behind a UNIX-socket
// style interface (paper §2 and §11: "a UNIX sendto operation will be
// mapped to a multicast, and a recvfrom will receive the next incoming
// message"). It is the example of the paper's "top-most module" that
// converts the Horus protocol abstraction into one matching the
// expectations of a user.
package socket

import (
	"fmt"
	"sync"

	"horus/internal/core"
	"horus/internal/message"
)

// Datagram is one received message.
type Datagram struct {
	From core.EndpointID
	Data []byte
}

// Socket presents a joined group as a datagram socket.
type Socket struct {
	group *core.Group

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []Datagram
	limit   int
	dropped int
	closed  bool
	view    *core.View
}

// Open joins the group with the given stack and returns the socket
// facade. The inbox buffers up to limit datagrams (0 means 1024);
// overflow drops the oldest, like a real datagram socket.
func Open(ep *core.Endpoint, addr core.GroupAddr, spec core.StackSpec, limit int) (*Socket, error) {
	if limit <= 0 {
		limit = 1024
	}
	s := &Socket{limit: limit}
	s.cond = sync.NewCond(&s.mu)
	g, err := ep.Join(addr, spec, s.handle)
	if err != nil {
		return nil, fmt.Errorf("socket: %w", err)
	}
	s.group = g
	return s, nil
}

// handle is the socket's upcall handler.
func (s *Socket) handle(ev *core.Event) {
	switch ev.Type {
	case core.UCast, core.USend:
		s.mu.Lock()
		if len(s.inbox) >= s.limit {
			s.inbox = s.inbox[1:]
			s.dropped++
		}
		s.inbox = append(s.inbox, Datagram{
			From: ev.Source,
			Data: append([]byte(nil), ev.Msg.Body()...),
		})
		s.mu.Unlock()
		s.cond.Broadcast()
	case core.UView:
		s.mu.Lock()
		s.view = ev.View
		s.mu.Unlock()
		s.cond.Broadcast()
	case core.UExit:
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.cond.Broadcast()
	}
}

// Sendto multicasts data to the group (the sendto mapping).
func (s *Socket) Sendto(data []byte) {
	s.group.Cast(message.New(append([]byte(nil), data...)))
}

// SendtoMember sends data to a single member.
func (s *Socket) SendtoMember(dst core.EndpointID, data []byte) {
	s.group.Send([]core.EndpointID{dst}, message.New(append([]byte(nil), data...)))
}

// Recvfrom blocks until a datagram arrives or the socket closes (the
// recvfrom mapping). Use TryRecvfrom in single-threaded simulations.
func (s *Socket) Recvfrom() (Datagram, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.inbox) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.inbox) == 0 {
		return Datagram{}, false
	}
	d := s.inbox[0]
	s.inbox = s.inbox[1:]
	return d, true
}

// TryRecvfrom returns the next datagram without blocking.
func (s *Socket) TryRecvfrom() (Datagram, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.inbox) == 0 {
		return Datagram{}, false
	}
	d := s.inbox[0]
	s.inbox = s.inbox[1:]
	return d, true
}

// View returns the group view as last installed, or nil.
func (s *Socket) View() *core.View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view
}

// Merge asks the stack to merge with the view reachable at contact
// (how a socket-level process joins an existing conversation).
func (s *Socket) Merge(contact core.EndpointID) { s.group.Merge(contact) }

// Dropped reports datagrams discarded to inbox overflow.
func (s *Socket) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Group exposes the underlying group handle.
func (s *Socket) Group() *core.Group { return s.group }

// Close leaves the group.
func (s *Socket) Close() {
	s.group.Leave()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}
