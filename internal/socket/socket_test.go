package socket_test

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/netsim"
	"horus/internal/socket"
)

func stack() core.StackSpec {
	return core.StackSpec{
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

func pair(t *testing.T) (*netsim.Network, *socket.Socket, *socket.Socket) {
	t.Helper()
	net := netsim.New(netsim.Config{Seed: 5, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	sa, err := socket.Open(net.NewEndpoint("a"), "chat", stack(), 8)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := socket.Open(net.NewEndpoint("b"), "chat", stack(), 8)
	if err != nil {
		t.Fatal(err)
	}
	aID := sa.Group().Endpoint().ID()
	var try func()
	try = func() {
		if v := sb.View(); v != nil && v.Size() == 2 {
			return
		}
		sb.Merge(aID)
		net.At(net.Now()+150*time.Millisecond, try)
	}
	net.At(20*time.Millisecond, try)
	net.RunFor(2 * time.Second)
	if v := sb.View(); v == nil || v.Size() != 2 {
		t.Fatal("socket pair formation failed")
	}
	return net, sa, sb
}

func TestSendtoRecvfromMapping(t *testing.T) {
	net, sa, sb := pair(t)
	net.At(net.Now(), func() { sa.Sendto([]byte("dgram")) })
	net.RunFor(500 * time.Millisecond)
	d, ok := sb.TryRecvfrom()
	if !ok || string(d.Data) != "dgram" {
		t.Fatalf("recvfrom = %v %v", d, ok)
	}
	if d.From != sa.Group().Endpoint().ID() {
		t.Errorf("datagram source = %v", d.From)
	}
	// Empty inbox reports no datagram.
	if _, ok := sb.TryRecvfrom(); ok {
		t.Error("TryRecvfrom on empty inbox returned a datagram")
	}
}

func TestInboxOverflowDropsOldest(t *testing.T) {
	net, sa, sb := pair(t)
	base := net.Now()
	for i := 0; i < 12; i++ { // limit is 8
		i := i
		net.At(base+time.Duration(i)*2*time.Millisecond, func() {
			sa.Sendto([]byte(fmt.Sprintf("m%02d", i)))
		})
	}
	net.RunFor(time.Second)
	if sb.Dropped() != 4 {
		t.Fatalf("Dropped = %d, want 4", sb.Dropped())
	}
	// The survivors are the newest 8, still in order.
	for i := 4; i < 12; i++ {
		d, ok := sb.TryRecvfrom()
		if !ok || string(d.Data) != fmt.Sprintf("m%02d", i) {
			t.Fatalf("position %d: %v %v", i, d, ok)
		}
	}
}

func TestRecvfromUnblocksOnClose(t *testing.T) {
	_, sa, _ := pair(t)
	done := make(chan bool, 1)
	go func() {
		_, ok := sa.Recvfrom()
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	sa.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Recvfrom returned a datagram after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recvfrom did not unblock on close")
	}
}

func TestViewExposed(t *testing.T) {
	_, sa, sb := pair(t)
	va, vb := sa.View(), sb.View()
	if va == nil || vb == nil || va.ID != vb.ID {
		t.Fatalf("socket views disagree: %v vs %v", va, vb)
	}
}
