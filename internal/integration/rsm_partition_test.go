package integration

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/frag"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/merge"
	"horus/internal/layers/nak"
	"horus/internal/layers/total"
	"horus/internal/netsim"
	"horus/internal/tools"
)

// primaryRSMStack: total order + primary-partition membership + MERGE
// healing — the configuration a replicated state machine should run on
// (split-brain-free).
func primaryRSMStack(totalMembers int) core.StackSpec {
	return core.StackSpec{
		total.NewWith(total.WithRequestRetry(50 * time.Millisecond)),
		merge.NewWith(merge.WithBeaconPeriod(100 * time.Millisecond)),
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
			mbrship.WithPrimaryPartition(totalMembers),
		),
		frag.NewWithSize(1024),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

type rsmNode struct {
	name string
	log  []string
	rsm  *tools.RSM
	g    *core.Group
	view *core.View
}

func newRSMNode(t *testing.T, net *netsim.Network, name string, totalMembers int, creator bool) *rsmNode {
	t.Helper()
	n := &rsmNode{name: name}
	apply := func(cmd []byte) { n.log = append(n.log, string(cmd)) }
	snapshot := func() []byte { return []byte(strings.Join(n.log, "\n")) }
	restore := func(state []byte) {
		n.log = nil
		for _, c := range strings.Split(string(state), "\n") {
			if c != "" {
				n.log = append(n.log, c)
			}
		}
	}
	n.rsm = tools.NewRSM(apply, snapshot, restore)
	ep := net.NewEndpoint(name)
	inner := n.rsm.Handler()
	g, err := ep.Join("rsm", primaryRSMStack(totalMembers), func(ev *core.Event) {
		if ev.Type == core.UView {
			n.view = ev.View
		}
		inner(ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	n.g = g
	n.rsm.Bind(g)
	if creator {
		n.rsm.Bootstrap()
	}
	return n
}

// TestRSMSurvivesPartitionWithoutSplitBrain is the full §9 story: a
// 5-replica state machine partitions 3|2; the primary side commits,
// the minority blocks (its submissions defer); the heal resynchronizes
// the minority by state transfer and replays its deferred submissions.
// Every replica ends with the identical log and no command is lost.
func TestRSMSurvivesPartitionWithoutSplitBrain(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 401, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	const n = 5
	nodes := make([]*rsmNode, n)
	for i := 0; i < n; i++ {
		nodes[i] = newRSMNode(t, net, fmt.Sprintf("r%d", i), n, i == 0)
	}
	// MERGE forms the group automatically.
	net.RunFor(6 * time.Second)
	for _, nd := range nodes {
		if nd.view == nil || nd.view.Size() != n {
			t.Fatalf("%s: formation failed: %v", nd.name, nd.view)
		}
	}

	// Pre-partition traffic.
	base := net.Now()
	for i := 0; i < 5; i++ {
		i := i
		net.At(base+time.Duration(i)*10*time.Millisecond, func() {
			nodes[i%n].rsm.Propose([]byte(fmt.Sprintf("pre-%d", i)))
		})
	}
	net.RunFor(time.Second)

	// Partition 3 | 2.
	net.Partition(
		[]core.EndpointID{nodes[0].g.Endpoint().ID(), nodes[1].g.Endpoint().ID(), nodes[2].g.Endpoint().ID()},
		[]core.EndpointID{nodes[3].g.Endpoint().ID(), nodes[4].g.Endpoint().ID()},
	)
	net.RunFor(3 * time.Second)

	// Majority commits; minority submits (deferred, not lost).
	net.At(net.Now(), func() {
		nodes[1].rsm.Propose([]byte("majority-commit"))
		nodes[4].rsm.Propose([]byte("minority-wish"))
	})
	net.RunFor(time.Second)

	majLen := len(nodes[0].log)
	if majLen != 6 { // 5 pre + 1 majority-commit
		t.Fatalf("majority log length %d, want 6: %v", majLen, nodes[0].log)
	}
	for _, nd := range nodes[3:] {
		for _, c := range nd.log {
			if c == "minority-wish" {
				t.Fatalf("%s: minority committed during the partition (split brain)", nd.name)
			}
		}
	}

	// Heal: MERGE re-forms the group; the minority resyncs by state
	// transfer and its deferred proposal finally commits.
	net.Heal()
	net.RunFor(10 * time.Second)

	for _, nd := range nodes {
		if nd.view == nil || nd.view.Size() != n {
			t.Fatalf("%s: heal failed: %v", nd.name, nd.view)
		}
		if !nd.rsm.Synced() {
			t.Fatalf("%s: not synced after heal", nd.name)
		}
	}
	ref := strings.Join(nodes[0].log, ";")
	for _, nd := range nodes[1:] {
		if got := strings.Join(nd.log, ";"); got != ref {
			t.Fatalf("logs diverge:\n%s: %s\n%s: %s", nodes[0].name, ref, nd.name, got)
		}
	}
	if !strings.Contains(ref, "majority-commit") || !strings.Contains(ref, "minority-wish") {
		t.Fatalf("history incomplete: %s", ref)
	}
	// The majority's partition-era commit precedes the minority's
	// replayed wish.
	if strings.Index(ref, "majority-commit") > strings.Index(ref, "minority-wish") {
		t.Fatalf("replayed minority proposal jumped ahead of committed history: %s", ref)
	}
}
