// Package integration exercises composed stacks end to end over the
// simulated network. Tests here correspond to the paper's Figure 1
// claim — layers stack at run time in many combinations — and to the
// behaviour of the §7 example stack.
package integration

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/chksum"
	"horus/internal/layers/com"
	"horus/internal/layers/frag"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

// collector gathers upcalls for assertions.
type collector struct {
	casts  []string
	sends  []string
	lost   int
	errors []string
	views  []*core.View
}

func (c *collector) handler() core.Handler {
	return func(ev *core.Event) {
		switch ev.Type {
		case core.UCast:
			c.casts = append(c.casts, string(ev.Msg.Body()))
		case core.USend:
			c.sends = append(c.sends, string(ev.Msg.Body()))
		case core.ULostMessage:
			c.lost++
		case core.USystemError:
			c.errors = append(c.errors, ev.Reason)
		case core.UView:
			c.views = append(c.views, ev.View)
		}
	}
}

// staticPair builds two endpoints with the given stack spec and a
// static two-member view installed on both.
func staticPair(t *testing.T, net *netsim.Network, spec core.StackSpec) (ga, gb *core.Group, ca, cb *collector) {
	t.Helper()
	epA := net.NewEndpoint("a")
	epB := net.NewEndpoint("b")
	ca, cb = &collector{}, &collector{}
	var err error
	ga, err = epA.Join("grp", spec, ca.handler())
	if err != nil {
		t.Fatal(err)
	}
	gb, err = epB.Join("grp", spec, cb.handler())
	if err != nil {
		t.Fatal(err)
	}
	view := core.NewView(core.ViewID{Seq: 1, Coord: epA.ID()}, "grp",
		[]core.EndpointID{epA.ID(), epB.ID()})
	ga.InstallView(view)
	gb.InstallView(view)
	return ga, gb, ca, cb
}

func assertNoErrors(t *testing.T, name string, c *collector) {
	t.Helper()
	for _, e := range c.errors {
		t.Errorf("%s: SYSTEM_ERROR: %s", name, e)
	}
}

func TestPerfectNetworkCastDelivery(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 1})
	spec := core.StackSpec{nak.New, com.New}
	ga, _, ca, cb := staticPair(t, net, spec)

	for i := 0; i < 10; i++ {
		i := i
		net.At(time.Duration(i)*time.Millisecond, func() {
			ga.Cast(message.New([]byte(fmt.Sprintf("m%d", i))))
		})
	}
	net.RunUntil(time.Second)

	want := []string{"m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7", "m8", "m9"}
	for name, c := range map[string]*collector{"a": ca, "b": cb} {
		assertNoErrors(t, name, c)
		if len(c.casts) != len(want) {
			t.Fatalf("%s: delivered %d casts, want %d: %v", name, len(c.casts), len(want), c.casts)
		}
		for i, w := range want {
			if c.casts[i] != w {
				t.Errorf("%s: cast[%d] = %q, want %q", name, i, c.casts[i], w)
			}
		}
	}
}

func TestLossyNetworkFIFORecovery(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 42, DefaultLink: netsim.Link{
		Delay:    time.Millisecond,
		Jitter:   2 * time.Millisecond,
		LossRate: 0.2,
		DupRate:  0.05,
	}})
	spec := core.StackSpec{nak.New, com.New}
	ga, _, _, cb := staticPair(t, net, spec)

	const n = 200
	for i := 0; i < n; i++ {
		i := i
		net.At(time.Duration(i)*time.Millisecond, func() {
			ga.Cast(message.New([]byte(fmt.Sprintf("m%04d", i))))
		})
	}
	net.RunUntil(5 * time.Second)

	assertNoErrors(t, "b", cb)
	if len(cb.casts) != n {
		t.Fatalf("b delivered %d casts, want %d (lost=%d)", len(cb.casts), n, cb.lost)
	}
	for i := range cb.casts {
		if want := fmt.Sprintf("m%04d", i); cb.casts[i] != want {
			t.Fatalf("b: cast[%d] = %q, want %q (FIFO violated)", i, cb.casts[i], want)
		}
	}
	if stats := net.Stats(); stats.Lost == 0 {
		t.Error("network dropped nothing; loss path untested")
	}
}

func TestGarblingDetectedByChecksum(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 7, DefaultLink: netsim.Link{
		Delay:      time.Millisecond,
		GarbleRate: 0.3,
	}})
	// CHKSUM protects the NAK header and payload; the filtering COM
	// drops packets whose source address was garbled below the
	// checksum ("filters out spurious messages from endpoints not in
	// its view", §7).
	spec := core.StackSpec{nak.New, chksum.New, com.NewFiltering}
	ga, gb, _, cb := staticPair(t, net, spec)

	const n = 100
	for i := 0; i < n; i++ {
		i := i
		net.At(time.Duration(i)*time.Millisecond, func() {
			ga.Cast(message.New([]byte(fmt.Sprintf("m%04d", i))))
		})
	}
	net.RunUntil(5 * time.Second)

	// Garbled copies must be dropped by CHKSUM and repaired by NAK:
	// full FIFO delivery with zero malformed-packet errors.
	assertNoErrors(t, "b", cb)
	if len(cb.casts) != n {
		t.Fatalf("b delivered %d casts, want %d", len(cb.casts), n)
	}
	for i := range cb.casts {
		if want := fmt.Sprintf("m%04d", i); cb.casts[i] != want {
			t.Fatalf("b: cast[%d] = %q, want %q", i, cb.casts[i], want)
		}
	}
	if stats := net.Stats(); stats.Garbled == 0 {
		t.Error("network garbled nothing; checksum path untested")
	}
	k := gb.Focus("CHKSUM").(*chksum.Chksum)
	if k.Stats().Dropped == 0 {
		t.Error("checksum layer dropped nothing despite garbling")
	}
	_ = ga
}

func TestFragmentationLargeMessages(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 3, DefaultLink: netsim.Link{
		Delay:    time.Millisecond,
		LossRate: 0.1,
	}})
	spec := core.StackSpec{frag.NewWithSize(128), nak.New, com.New}
	ga, gb, _, cb := staticPair(t, net, spec)

	// A large message spanning many fragments, with distinctive bytes.
	big := make([]byte, 10_000)
	for i := range big {
		big[i] = byte(i * 7)
	}
	net.At(0, func() { ga.Cast(message.New(big)) })
	net.At(time.Millisecond, func() { ga.Cast(message.New([]byte("small"))) })
	net.RunUntil(5 * time.Second)

	assertNoErrors(t, "b", cb)
	if len(cb.casts) != 2 {
		t.Fatalf("b delivered %d casts, want 2", len(cb.casts))
	}
	if cb.casts[0] != string(big) {
		t.Errorf("large message corrupted in reassembly (len %d vs %d)", len(cb.casts[0]), len(big))
	}
	if cb.casts[1] != "small" {
		t.Errorf("small message after large = %q", cb.casts[1])
	}
	f := gb.Focus("FRAG").(*frag.Frag)
	if f.Stats().Fragmented != 0 {
		// Receiving side fragments nothing; check the sender.
		t.Errorf("receiver fragmented %d messages", f.Stats().Fragmented)
	}
	fs := ga.Focus("FRAG").(*frag.Frag)
	if fs.Stats().Fragmented != 1 || fs.Stats().Fragments < 80 {
		t.Errorf("sender frag stats = %+v, want 1 fragmented message in ~88 fragments", fs.Stats())
	}
}

func TestSubsetSendFIFO(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 9, DefaultLink: netsim.Link{
		Delay:    time.Millisecond,
		Jitter:   3 * time.Millisecond,
		LossRate: 0.15,
	}})
	spec := core.StackSpec{nak.New, com.New}

	epA := net.NewEndpoint("a")
	epB := net.NewEndpoint("b")
	epC := net.NewEndpoint("c")
	ca, cb, cc := &collector{}, &collector{}, &collector{}
	ga, err := epA.Join("grp", spec, ca.handler())
	if err != nil {
		t.Fatal(err)
	}
	if _, err = epB.Join("grp", spec, cb.handler()); err != nil {
		t.Fatal(err)
	}
	if _, err = epC.Join("grp", spec, cc.handler()); err != nil {
		t.Fatal(err)
	}
	view := core.NewView(core.ViewID{Seq: 1, Coord: epA.ID()}, "grp",
		[]core.EndpointID{epA.ID(), epB.ID(), epC.ID()})
	for _, ep := range []*core.Endpoint{epA, epB, epC} {
		ep.Group("grp").InstallView(view)
	}

	const n = 50
	for i := 0; i < n; i++ {
		i := i
		net.At(time.Duration(i)*time.Millisecond, func() {
			ga.Send([]core.EndpointID{epB.ID()}, message.New([]byte(fmt.Sprintf("s%03d", i))))
		})
	}
	net.RunUntil(5 * time.Second)

	assertNoErrors(t, "b", cb)
	if len(cb.sends) != n {
		t.Fatalf("b received %d sends, want %d", len(cb.sends), n)
	}
	for i := range cb.sends {
		if want := fmt.Sprintf("s%03d", i); cb.sends[i] != want {
			t.Fatalf("b: send[%d] = %q, want %q (unicast FIFO violated)", i, cb.sends[i], want)
		}
	}
	if len(cc.sends) != 0 {
		t.Errorf("c received %d subset sends not addressed to it", len(cc.sends))
	}
	if len(cc.casts) != 0 {
		t.Errorf("c received %d casts, want 0", len(cc.casts))
	}
}

func TestPlaceholderOnTrimmedBuffer(t *testing.T) {
	// Force the retransmission buffer to 4 messages and cut B off for
	// a while: by the time it asks for old messages they are gone, so
	// NAK must answer with place holders surfacing as LOST_MESSAGE.
	net := netsim.New(netsim.Config{Seed: 5, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	spec := core.StackSpec{
		nak.NewWith(nak.WithRetain(4), nak.WithSuspectAfter(0)),
		com.New,
	}
	ga, _, _, cb := staticPair(t, net, spec)

	epB := cb // alias for clarity below
	_ = epB

	// Drop everything toward B while A casts 20 messages.
	ids := netIDs(net, "a", "b")
	net.SetLink(ids[0], ids[1], netsim.Link{Delay: time.Millisecond, LossRate: 1.0})
	for i := 0; i < 20; i++ {
		i := i
		net.At(time.Duration(i)*time.Millisecond, func() {
			ga.Cast(message.New([]byte(fmt.Sprintf("m%02d", i))))
		})
	}
	net.RunUntil(100 * time.Millisecond)
	// Heal the link and cast one more; B sees the gap and NAKs.
	net.SetLink(ids[0], ids[1], netsim.Link{Delay: time.Millisecond})
	net.At(net.Now(), func() { ga.Cast(message.New([]byte("m20"))) })
	net.RunUntil(3 * time.Second)

	if cb.lost == 0 {
		t.Fatalf("no LOST_MESSAGE upcalls; delivered=%v", cb.casts)
	}
	// Messages still buffered at the sender (the retain window, plus
	// the sweep hysteresis) arrive in order after the place-held
	// range; the tail must end with the fresh m20 and be contiguous.
	n := len(cb.casts)
	if n < 4 || n > 6 {
		t.Fatalf("delivered %v, want the ~4-message retained tail", cb.casts)
	}
	for i, got := range cb.casts {
		want := fmt.Sprintf("m%02d", 21-n+i)
		if got != want {
			t.Fatalf("delivered %v: position %d is %q, want %q (tail not contiguous)", cb.casts, i, got, want)
		}
	}
	if cb.casts[n-1] != "m20" {
		t.Fatalf("final cast %q, want m20", cb.casts[n-1])
	}
}

// netIDs finds endpoint IDs by site name via a fresh dummy — netsim
// assigns Birth in attach order, so sites "a" and "b" are 1 and 2.
func netIDs(_ *netsim.Network, sites ...string) []core.EndpointID {
	out := make([]core.EndpointID, len(sites))
	for i, s := range sites {
		out[i] = core.EndpointID{Site: s, Birth: uint64(i + 1)}
	}
	return out
}
