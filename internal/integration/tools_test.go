package integration

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/merge"
	"horus/internal/message"
	"horus/internal/netsim"
	"horus/internal/property"
	"horus/internal/socket"
	"horus/internal/stackreg"
	"horus/internal/tools"
)

// kvStore is a tiny deterministic state machine for RSM tests:
// commands are "key=value" assignments.
type kvStore struct {
	data map[string]string
	log  []string
}

func newKV() *kvStore { return &kvStore{data: map[string]string{}} }

func (k *kvStore) apply(cmd []byte) {
	k.log = append(k.log, string(cmd))
	s := string(cmd)
	for i := 0; i < len(s); i++ {
		if s[i] == '=' {
			k.data[s[:i]] = s[i+1:]
			return
		}
	}
}

func (k *kvStore) snapshot() []byte {
	// Replay log as the snapshot: simple and deterministic.
	var out []byte
	for _, c := range k.log {
		out = append(out, byte(len(c)))
		out = append(out, c...)
	}
	return out
}

func (k *kvStore) restore(state []byte) {
	for len(state) > 0 {
		n := int(state[0])
		k.apply(state[1 : 1+n])
		state = state[1+n:]
	}
}

// rsmMember bundles one RSM participant.
type rsmMember struct {
	ep  *core.Endpoint
	g   *core.Group
	kv  *kvStore
	rsm *tools.RSM
}

func newRSMMember(t *testing.T, net *netsim.Network, site string, creator bool) *rsmMember {
	t.Helper()
	m := &rsmMember{ep: net.NewEndpoint(site), kv: newKV()}
	m.rsm = tools.NewRSM(m.kv.apply, m.kv.snapshot, m.kv.restore)
	g, err := m.ep.Join("rsm", totalStack(), m.rsm.Handler())
	if err != nil {
		t.Fatal(err)
	}
	m.g = g
	m.rsm.Bind(g)
	if creator {
		m.rsm.Bootstrap()
	}
	return m
}

func TestRSMConvergesWithStateTransfer(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 101, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	a := newRSMMember(t, net, "a", true)
	b := newRSMMember(t, net, "b", false)
	net.At(50*time.Millisecond, func() { b.g.Merge(a.ep.ID()) })
	net.RunFor(time.Second)

	// a and b work; some commands land.
	base := net.Now()
	for i := 0; i < 10; i++ {
		i := i
		net.At(base+time.Duration(i)*5*time.Millisecond, func() {
			m := a
			if i%2 == 1 {
				m = b
			}
			m.rsm.Propose([]byte(fmt.Sprintf("k%d=v%d", i, i)))
		})
	}
	net.RunFor(time.Second)

	// A latecomer joins and must catch up via state transfer.
	c := newRSMMember(t, net, "c", false)
	net.At(net.Now()+20*time.Millisecond, func() { c.g.Merge(a.ep.ID()) })
	net.RunFor(2 * time.Second)

	// More commands after the join.
	base = net.Now()
	for i := 10; i < 16; i++ {
		i := i
		net.At(base+time.Duration(i)*5*time.Millisecond, func() {
			c.rsm.Propose([]byte(fmt.Sprintf("k%d=v%d", i, i)))
		})
	}
	net.RunFor(2 * time.Second)

	if !c.rsm.Synced() {
		t.Fatal("latecomer never synced")
	}
	for _, m := range []*rsmMember{a, b, c} {
		if len(m.kv.data) != 16 {
			t.Errorf("%s: %d keys, want 16 (%v)", m.ep.ID(), len(m.kv.data), m.kv.data)
		}
	}
	// Identical logs — the replicated-state-machine property.
	for i, cmd := range a.kv.log {
		if i < len(b.kv.log) && b.kv.log[i] != cmd {
			t.Fatalf("log divergence at %d: a=%q b=%q", i, cmd, b.kv.log[i])
		}
		if i < len(c.kv.log) && c.kv.log[i] != cmd {
			t.Fatalf("log divergence at %d: a=%q c=%q", i, cmd, c.kv.log[i])
		}
	}
}

func TestLockManagerMutualExclusionAndFailover(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 103, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	type member struct {
		ep *core.Endpoint
		g  *core.Group
		lm *tools.LockManager
	}
	mk := func(site string) *member {
		m := &member{ep: net.NewEndpoint(site), lm: tools.NewLockManager()}
		g, err := m.ep.Join("locks", totalStack(), m.lm.Handler())
		if err != nil {
			t.Fatal(err)
		}
		m.g = g
		m.lm.Bind(g)
		return m
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	net.At(50*time.Millisecond, func() { b.g.Merge(a.ep.ID()) })
	net.At(250*time.Millisecond, func() { c.g.Merge(a.ep.ID()) })
	net.RunFor(time.Second)

	// All three request the same lock; the total order arbitrates.
	base := net.Now()
	net.At(base, func() { a.lm.Request("L") })
	net.At(base+time.Millisecond, func() { b.lm.Request("L") })
	net.At(base+2*time.Millisecond, func() { c.lm.Request("L") })
	net.RunFor(500 * time.Millisecond)

	holders := 0
	var holder *member
	for _, m := range []*member{a, b, c} {
		if m.lm.HeldByMe("L") {
			holders++
			holder = m
		}
	}
	if holders != 1 {
		t.Fatalf("%d simultaneous holders, want 1", holders)
	}
	// Everyone agrees who holds it.
	for _, m := range []*member{a, b, c} {
		h, ok := m.lm.Holder("L")
		if !ok || h != holder.ep.ID() {
			t.Errorf("%s sees holder %v/%v, want %v", m.ep.ID(), h, ok, holder.ep.ID())
		}
	}

	// The holder crashes: the lock must fail over via the view change.
	net.At(net.Now(), func() { net.Crash(holder.ep.ID()) })
	net.RunFor(3 * time.Second)

	survivors := []*member{}
	for _, m := range []*member{a, b, c} {
		if m != holder {
			survivors = append(survivors, m)
		}
	}
	holders = 0
	for _, m := range survivors {
		if m.lm.HeldByMe("L") {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("after failover, %d holders among survivors, want 1", holders)
	}
	h0, ok0 := survivors[0].lm.Holder("L")
	h1, ok1 := survivors[1].lm.Holder("L")
	if !ok0 || !ok1 || h0 != h1 {
		t.Errorf("survivors disagree on holder: %v/%v vs %v/%v", h0, ok0, h1, ok1)
	}
}

func TestPrimaryBackupFailover(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 107, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	type member struct {
		ep      *core.Endpoint
		g       *core.Group
		pb      *tools.PrimaryBackup
		applied []string
	}
	mk := func(site string) *member {
		m := &member{ep: net.NewEndpoint(site)}
		m.pb = tools.NewPrimaryBackup(func(u []byte) { m.applied = append(m.applied, string(u)) })
		g, err := m.ep.Join("pb", vsStack(), m.pb.Handler())
		if err != nil {
			t.Fatal(err)
		}
		m.g = g
		m.pb.Bind(g)
		return m
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	net.At(50*time.Millisecond, func() { b.g.Merge(a.ep.ID()) })
	net.At(250*time.Millisecond, func() { c.g.Merge(a.ep.ID()) })
	net.RunFor(time.Second)

	if !a.pb.IsPrimary() {
		t.Fatal("oldest member is not primary")
	}
	base := net.Now()
	for i := 0; i < 6; i++ {
		i := i
		net.At(base+time.Duration(i)*10*time.Millisecond, func() {
			// Submit from backups too: they forward to the primary.
			[]*member{a, b, c}[i%3].pb.Submit([]byte(fmt.Sprintf("u%d", i)))
		})
	}
	net.RunFor(time.Second)

	// Primary crashes; the next member must take over and accept new
	// requests.
	net.At(net.Now(), func() { net.Crash(a.ep.ID()) })
	net.RunFor(3 * time.Second)
	if !b.pb.IsPrimary() {
		t.Fatal("backup did not take over after primary crash")
	}
	net.At(net.Now(), func() { c.pb.Submit([]byte("after")) })
	net.RunFor(time.Second)

	for _, m := range []*member{b, c} {
		if len(m.applied) == 0 || m.applied[len(m.applied)-1] != "after" {
			t.Errorf("%s: updates %v, want trailing %q", m.ep.ID(), m.applied, "after")
		}
	}
	if fmt.Sprint(b.applied) != fmt.Sprint(c.applied) {
		t.Errorf("survivor update streams differ:\n b: %v\n c: %v", b.applied, c.applied)
	}
}

// vsStack for primary-backup: virtual synchrony without TOTAL.
// (Defined in mbrship_test.go; reused here.)

func TestSocketFacade(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 109, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	epA := net.NewEndpoint("a")
	epB := net.NewEndpoint("b")
	sa, err := socket.Open(epA, "chat", vsStack(), 16)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := socket.Open(epB, "chat", vsStack(), 16)
	if err != nil {
		t.Fatal(err)
	}
	net.At(50*time.Millisecond, func() { sb.Merge(epA.ID()) })
	net.RunFor(time.Second)

	if v := sa.View(); v == nil || v.Size() != 2 {
		t.Fatalf("socket a view %v", sa.View())
	}
	net.At(net.Now(), func() { sa.Sendto([]byte("hello sockets")) })
	net.RunFor(500 * time.Millisecond)

	d, ok := sb.TryRecvfrom()
	if !ok || string(d.Data) != "hello sockets" || d.From != epA.ID() {
		t.Fatalf("recvfrom = %+v %v", d, ok)
	}
	// Self-delivery surfaces at the sender's socket too.
	d, ok = sa.TryRecvfrom()
	if !ok || string(d.Data) != "hello sockets" {
		t.Fatalf("sender recvfrom = %+v %v", d, ok)
	}
	// Unicast path.
	net.At(net.Now(), func() { sb.SendtoMember(epA.ID(), []byte("direct")) })
	net.RunFor(500 * time.Millisecond)
	d, ok = sa.TryRecvfrom()
	if !ok || string(d.Data) != "direct" {
		t.Fatalf("unicast recvfrom = %+v %v", d, ok)
	}
	if _, ok := sb.TryRecvfrom(); ok {
		t.Error("unicast leaked to a non-destination socket")
	}
}

// TestMergeLayerHealsPartition uses the MERGE layer for automatic
// discovery: after a partition heals, beacons find the concurrent
// views and collapse them with no application involvement (property
// P16).
func TestMergeLayerHealsPartition(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 113, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	mk := func() core.StackSpec {
		spec := core.StackSpec{merge.NewWith(merge.WithBeaconPeriod(100 * time.Millisecond))}
		return append(spec, vsStack()...)
	}
	eps := make([]*core.Endpoint, 4)
	cols := make([]*vsCollector, 4)
	groups := make([]*core.Group, 4)
	for i := range eps {
		site := fmt.Sprintf("%c", 'a'+i)
		eps[i] = net.NewEndpoint(site)
		cols[i] = newVSCollector(site)
		g, err := eps[i].Join("grp", mk(), cols[i].handler())
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}
	// With MERGE running, even initial group formation is automatic:
	// four singletons discover each other through beacons.
	net.RunFor(5 * time.Second)
	for _, c := range cols {
		v := c.lastView()
		if v == nil || v.Size() != 4 {
			t.Fatalf("%s: automatic formation failed: %v", c.name, v)
		}
	}

	// Partition, diverge, heal, re-merge automatically.
	net.Partition(
		[]core.EndpointID{eps[0].ID(), eps[1].ID()},
		[]core.EndpointID{eps[2].ID(), eps[3].ID()},
	)
	net.RunFor(3 * time.Second)
	for _, c := range cols {
		if v := c.lastView(); v == nil || v.Size() != 2 {
			t.Fatalf("%s: no 2-member view under partition: %v", c.name, v)
		}
	}
	net.Heal()
	net.RunFor(6 * time.Second)
	for _, c := range cols {
		v := c.lastView()
		if v == nil || v.Size() != 4 {
			t.Fatalf("%s: automatic healing failed: %v", c.name, v)
		}
	}
	// Group communication works again end to end.
	net.At(net.Now(), func() { groups[2].Cast(message.New([]byte("healed"))) })
	net.RunFor(time.Second)
	for _, c := range cols {
		got := c.casts[c.lastView().ID.Seq]
		if len(got) != 1 || got[0] != "healed" {
			t.Errorf("%s: post-heal delivery %v", c.name, got)
		}
	}
}

// TestStackRegistryEndToEnd drives a registry-built stack to make sure
// textual composition produces a working system.
func TestStackRegistryEndToEnd(t *testing.T) {
	spec, err := stackreg.Build("MBRSHIP:FRAG:NAK:CHKSUM:COM", property.P1)
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(netsim.Config{Seed: 127, DefaultLink: netsim.Link{
		Delay: time.Millisecond, LossRate: 0.05, GarbleRate: 0.05,
	}})
	epA := net.NewEndpoint("a")
	epB := net.NewEndpoint("b")
	ca, cb := newVSCollector("a"), newVSCollector("b")
	ga, err := epA.Join("grp", spec, ca.handler())
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := stackreg.Build("MBRSHIP:FRAG:NAK:CHKSUM:COM", property.P1)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := epB.Join("grp", spec2, cb.handler())
	if err != nil {
		t.Fatal(err)
	}
	net.At(50*time.Millisecond, func() { gb.Merge(epA.ID()) })
	net.RunFor(2 * time.Second)
	net.At(net.Now(), func() { ga.Cast(message.New([]byte("via registry"))) })
	net.RunFor(2 * time.Second)
	if v := cb.lastView(); v == nil || v.Size() != 2 {
		t.Fatalf("registry stack formation failed: %v", cb.lastView())
	}
	got := cb.casts[cb.lastView().ID.Seq]
	if len(got) != 1 || got[0] != "via registry" {
		t.Fatalf("delivery through registry stack: %v", got)
	}
}
