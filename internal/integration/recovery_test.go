package integration

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/mlog"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

// TestTotalCrashRecoveryViaLog is the Figure 1 "logging: tolerance of
// total crash failures" scenario: every member logs deliveries through
// MLOG; the whole group crashes; a new incarnation replays a
// survivor's log and resumes with the full application state.
func TestTotalCrashRecoveryViaLog(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 163, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	stores := []*mlog.MemStore{mlog.NewMemStore(), mlog.NewMemStore()}
	mk := func(store *mlog.MemStore) core.StackSpec {
		return core.StackSpec{
			mlog.New(store),
			mbrship.NewWith(
				mbrship.WithGossipPeriod(40*time.Millisecond),
				mbrship.WithFlushTimeout(500*time.Millisecond),
			),
			nak.NewWith(nak.WithStatusPeriod(20*time.Millisecond), nak.WithSuspectAfter(6)),
			com.New,
		}
	}
	epA := net.NewEndpoint("a")
	epB := net.NewEndpoint("b")
	ca, cb := newVSCollector("a"), newVSCollector("b")
	ga, err := epA.Join("grp", mk(stores[0]), ca.handler())
	if err != nil {
		t.Fatal(err)
	}
	gb, err := epB.Join("grp", mk(stores[1]), cb.handler())
	if err != nil {
		t.Fatal(err)
	}
	net.At(50*time.Millisecond, func() { gb.Merge(epA.ID()) })
	net.RunFor(time.Second)

	base := net.Now()
	for i := 0; i < 8; i++ {
		i := i
		net.At(base+time.Duration(i)*5*time.Millisecond, func() {
			ga.Cast(message.New([]byte(fmt.Sprintf("cmd%d", i))))
		})
	}
	net.RunFor(time.Second)

	// Total crash: both members die.
	net.Crash(epA.ID())
	net.Crash(epB.ID())
	net.RunFor(100 * time.Millisecond)

	// Recovery: replay b's durable log into a fresh state machine.
	var replayed []string
	mlog.Replay(stores[1], func(ev *core.Event) {
		if ev.Type == core.UCast {
			replayed = append(replayed, string(ev.Msg.Body()))
		}
	})
	if len(replayed) != 8 {
		t.Fatalf("replayed %d commands, want 8: %v", len(replayed), replayed)
	}
	for i, c := range replayed {
		if c != fmt.Sprintf("cmd%d", i) {
			t.Fatalf("replay order broken at %d: %v", i, replayed)
		}
	}
}

// TestRealTimeTransportSmoke runs a small group over the wall-clock
// goroutine transport — the mode example binaries use. Being real
// time, it only asserts eventual behaviour.
func TestRealTimeTransportSmoke(t *testing.T) {
	rt := netsim.NewRealTime(1, netsim.Link{Delay: time.Millisecond})
	mkStack := func() core.StackSpec {
		return core.StackSpec{
			mbrship.NewWith(
				mbrship.WithGossipPeriod(20*time.Millisecond),
				mbrship.WithFlushTimeout(300*time.Millisecond),
			),
			nak.NewWith(nak.WithStatusPeriod(10*time.Millisecond), nak.WithSuspectAfter(8)),
			com.New,
		}
	}
	type member struct {
		mu    sync.Mutex
		casts []string
		view  *core.View
	}
	join := func(site string) (*core.Group, *member) {
		m := &member{}
		ep := rt.NewEndpoint(site)
		g, err := ep.Join("grp", mkStack(), func(ev *core.Event) {
			m.mu.Lock()
			defer m.mu.Unlock()
			switch ev.Type {
			case core.UCast:
				m.casts = append(m.casts, string(ev.Msg.Body()))
			case core.UView:
				m.view = ev.View
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return g, m
	}
	ga, ma := join("a")
	gb, mb := join("b")

	deadline := time.Now().Add(5 * time.Second)
	for {
		mb.mu.Lock()
		v := mb.view
		mb.mu.Unlock()
		if v != nil && v.Size() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("real-time group formation timed out")
		}
		gb.Merge(ga.Endpoint().ID())
		time.Sleep(50 * time.Millisecond)
	}

	ga.Cast(message.New([]byte("wall clock")))
	for {
		mb.mu.Lock()
		n := len(mb.casts)
		mb.mu.Unlock()
		ma.mu.Lock()
		na := len(ma.casts)
		ma.mu.Unlock()
		if n >= 1 && na >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("real-time delivery timed out")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
