package integration

// Differential conformance: the same typed chaos schedule — same seed,
// same generator config, hence byte-identical rule tables — runs over
// both fabrics, the deterministic netsim simulation and the chaosnet
// UDP proxy, and both runs must be invariant-clean and converge. A seed
// that only one fabric survives is the interesting failure mode this
// suite exists to flag: it means the two implementations of the fault
// vocabulary (loss, garble, duplication, bandwidth serialization, the
// explicit reorder rule, partitions, crashes) have drifted apart, or
// the stack depends on a timing accident one substrate happens to
// provide.
//
// Two sweeps run: the polite generator, and the harsh one (multi-way
// partitions, crash-during-partition, flap storms, over the
// primary-partition stack). Both honor HORUS_DIFF_SEEDS, which the
// nightly CI sweep sets to widen the search far beyond the per-commit
// dozen.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"horus/internal/chaos"
	"horus/internal/chaosnet"
	"horus/internal/netsim"
)

// differentialLink is the healthy-link rule shared by both fabrics: it
// is passed to the sim fabric and to the chaosnet proxy as the default
// link, so the rule tables start identical before the schedule touches
// them.
var differentialLink = netsim.Link{
	Delay: time.Millisecond, Jitter: 2 * time.Millisecond, LossRate: 0.02,
}

// differentialConfig keeps the horizon short (the UDP side runs at
// wall-clock speed) and the deadlines generous (kernel scheduling under
// -race needs slack the simulator never does).
func differentialConfig() chaos.SoakConfig {
	return chaos.SoakConfig{
		Members:   3,
		Horizon:   2500 * time.Millisecond,
		Incidents: 6,
		Link:      differentialLink,
		FormBy:    15 * time.Second,
		SettleBy:  20 * time.Second,
	}
}

// diffSeeds resolves the sweep width: the HORUS_DIFF_SEEDS environment
// variable (the nightly workflow sets 100) overrides the per-commit
// default.
func diffSeeds(t *testing.T, def int) int {
	v := os.Getenv("HORUS_DIFF_SEEDS")
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("bad HORUS_DIFF_SEEDS %q: %v", v, err)
	}
	return n
}

// simStatsFabric adapts *netsim.Network to chaos.Fabric while keeping
// the Network reachable so the test can read its fault ledger.
type simStatsFabric struct{ *netsim.Network }

func (simStatsFabric) Close() {}

// runDifferentialSeed executes one seed over one fabric and folds
// convergence failure and invariant violations into a single error, so
// the caller can compare survival across fabrics.
func runDifferentialSeed(seed int64, cfg chaos.SoakConfig) error {
	c, err := chaos.RunSeed(seed, cfg)
	if err != nil {
		return fmt.Errorf("convergence: %w", err)
	}
	if errs := c.Check(); len(errs) != 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return fmt.Errorf("invariants: %s", strings.Join(msgs, "; "))
	}
	return nil
}

// runDifferentialSweep sweeps seeds over both fabrics and demands that
// each seed is invariant-clean on both. Beyond survival parity it pins
// ledger parity per sweep: every flow rule the sweep's schedules
// exercised must show nonzero firings on BOTH substrates. Exact counts
// legitimately differ (kernel timing vs virtual time), but a rule that
// fires on one fabric and never on the other means the two
// implementations have drifted apart. Which rules are demanded depends
// on the sweep: with requireCoverage the polite generator must
// exercise reorder, bandwidth throttling, and egress congestion; a
// harsh sweep's composite degradation incidents squeeze hard enough
// that queue overflow — the CollapseDropped ledger — must additionally
// fire on both substrates. (Polite squeezes deliberately don't carry
// that last demand: their parameters make overflow rare enough that
// whether a particular sweep crosses the bound is a timing accident on
// the UDP side.)
func runDifferentialSweep(t *testing.T, seeds int, cfg chaos.SoakConfig, requireCoverage bool) {
	var sawBandwidth, sawReorder, sawEgress, sawDegrade bool
	var sim netsim.Stats
	var udp chaosnet.Stats
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			sched := chaos.Generate(seed, chaos.GenConfig{
				Members: cfg.Members, Horizon: cfg.Horizon, Incidents: cfg.Incidents,
				Harsh: cfg.Harsh,
			})
			for _, a := range sched {
				if a.Link.Bandwidth > 0 {
					sawBandwidth = true
				}
				if a.Link.ReorderRate > 0 {
					sawReorder = true
				}
				if a.Kind == chaos.KindSetHost && a.Host.EgressBudget > 0 {
					sawEgress = true
				}
				if a.Note == "degrade squeeze" {
					sawDegrade = true
				}
			}

			simCfg := cfg
			var simNet *netsim.Network
			simCfg.NewFabric = func(seed int64) chaos.Fabric {
				simNet = netsim.New(netsim.Config{Seed: seed, DefaultLink: differentialLink})
				return simStatsFabric{simNet}
			}
			simErr := runDifferentialSeed(seed, simCfg)
			s := simNet.Stats()
			sim.Reordered += s.Reordered
			sim.Throttled += s.Throttled
			sim.Congested += s.Congested
			sim.CollapseDropped += s.CollapseDropped

			udpCfg := cfg
			var udpFab *chaosnet.Fabric
			udpCfg.NewFabric = func(seed int64) chaos.Fabric {
				udpFab = chaosnet.New(chaosnet.Config{Seed: seed, DefaultLink: differentialLink})
				return udpFab
			}
			udpErr := runDifferentialSeed(seed, udpCfg)
			u := udpFab.Stats()
			udp.Reordered += u.Reordered
			udp.Throttled += u.Throttled
			udp.Congested += u.Congested
			udp.CollapseDropped += u.CollapseDropped

			switch {
			case simErr == nil && udpErr != nil:
				t.Errorf("only the sim fabric survived seed %d — udp: %v", seed, udpErr)
			case simErr != nil && udpErr == nil:
				t.Errorf("only the UDP fabric survived seed %d — sim: %v", seed, simErr)
			case simErr != nil && udpErr != nil:
				t.Errorf("seed %d failed on both fabrics — sim: %v; udp: %v", seed, simErr, udpErr)
			}
		})
	}

	if cfg.Harsh {
		// The harsh vocabulary's own coverage + parity demands: the
		// composite degradation incident must appear in the sweep, and
		// its squeeze is tight enough (half to one KB of queue against a
		// 4-8 KB/s budget) that both the congestion ledger and the
		// overflow-drop ledger must fire on both substrates.
		if !sawDegrade {
			t.Error("no harsh schedule included a composite degradation incident")
		}
		if sim.Congested == 0 || udp.Congested == 0 {
			t.Errorf("harsh squeezes never congested (sim=%d udp=%d queued packets)", sim.Congested, udp.Congested)
		}
		if sim.CollapseDropped == 0 || udp.CollapseDropped == 0 {
			t.Errorf("harsh squeezes never overflowed the egress queue (sim=%d udp=%d dropped frames)",
				sim.CollapseDropped, udp.CollapseDropped)
		}
	}
	if !requireCoverage {
		return
	}
	// Coverage over the sweep, not per seed: the generator places
	// incidents randomly, so individual seeds may miss a class, but a
	// 12-seed sweep that never squeezed bandwidth or reordered frames
	// is not exercising the vocabulary this suite exists to compare.
	if !sawBandwidth {
		t.Error("no generated schedule included a bandwidth cap")
	}
	if !sawReorder {
		t.Error("no generated schedule included an explicit reorder burst")
	}
	if !sawEgress {
		t.Error("no generated schedule included an egress squeeze")
	}
	// Ledger parity: a rule the sweep exercised must have fired on both
	// substrates. Counts differ — presence must not.
	if sim.Reordered == 0 || udp.Reordered == 0 {
		t.Errorf("reorder rule never fired (sim=%d udp=%d held frames)", sim.Reordered, udp.Reordered)
	}
	if sim.Throttled == 0 || udp.Throttled == 0 {
		t.Errorf("bandwidth rule never fired (sim=%d udp=%d throttled frames)", sim.Throttled, udp.Throttled)
	}
	if sim.Congested == 0 || udp.Congested == 0 {
		t.Errorf("egress budget never congested (sim=%d udp=%d queued packets)", sim.Congested, udp.Congested)
	}
}

// TestDifferentialConformance is the polite-generator sweep, with the
// vocabulary coverage checks.
func TestDifferentialConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite runs the UDP side at wall-clock speed")
	}
	runDifferentialSweep(t, diffSeeds(t, 12), differentialConfig(), true)
}

// TestDifferentialConformanceHarsh sweeps hostile schedules —
// multi-way partitions, crashes landing mid-partition, composite
// degradation squeezes — over the primary-partition stack on both
// fabrics. The polite vocabulary's coverage checks are left to the
// polite sweep (the harsh generator spends most of its incident budget
// on partitions and crashes), but the harsh sweep carries its own
// parity demand: the degradation squeezes must drive both the
// congestion and the overflow-drop ledgers on both substrates.
func TestDifferentialConformanceHarsh(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite runs the UDP side at wall-clock speed")
	}
	cfg := differentialConfig()
	cfg.Harsh = true
	runDifferentialSweep(t, diffSeeds(t, 8), cfg, false)
}
