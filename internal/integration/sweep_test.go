package integration

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"horus/internal/message"
	"horus/internal/netsim"
)

// TestVirtualSynchronySeedSweep hammers the §5 guarantee across many
// randomized fault schedules: for each seed, a 4-member group casts
// concurrently under loss/jitter while one random member crashes at a
// random moment. Survivors must (a) converge on the same 3-member
// view, (b) deliver identical message sets in every shared view,
// (c) never deliver duplicates, and (d) preserve per-sender FIFO.
func TestVirtualSynchronySeedSweep(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 7919))
			// Form the group on a clean network (formation under loss
			// is covered elsewhere), then degrade the links for the
			// crash phase.
			net := netsim.New(netsim.Config{Seed: seed, DefaultLink: netsim.Link{
				Delay: time.Millisecond,
			}})
			eps, groups, cols := buildGroup(t, net, 4)
			net.SetDefaultLink(netsim.Link{
				Delay:    time.Millisecond,
				Jitter:   time.Duration(rng.Intn(4)) * time.Millisecond,
				LossRate: float64(rng.Intn(12)) / 100,
			})

			victim := rng.Intn(4)
			crashAt := time.Duration(20+rng.Intn(120)) * time.Millisecond
			base := net.Now()
			for i := 0; i < 32; i++ {
				i := i
				// Monotone per-sender cast times keep the FIFO oracle
				// simple; the crash instant and link faults stay random.
				at := base + time.Duration(i)*5*time.Millisecond
				net.At(at, func() {
					if i%4 == victim {
						return // the victim stays quiet for determinism of expectations
					}
					groups[i%4].Cast(message.New([]byte(fmt.Sprintf("m%d-%d", i%4, i))))
				})
			}
			net.At(base+crashAt, func() { net.Crash(eps[victim].ID()) })
			net.RunFor(8 * time.Second)

			survivors := make([]*vsCollector, 0, 3)
			for i, c := range cols {
				if i != victim {
					survivors = append(survivors, c)
				}
			}
			// (a) converge.
			ref := survivors[0].lastView()
			for _, c := range survivors {
				v := c.lastView()
				if v == nil || v.Size() != 3 || v.ID != ref.ID {
					t.Fatalf("%s: final view %v, ref %v", c.name, v, ref)
				}
			}
			// (b,c,d) per-view sets identical, no dups, FIFO.
			viewSeqs := map[uint64]bool{}
			for _, c := range survivors {
				for seq := range c.casts {
					viewSeqs[seq] = true
				}
			}
			for seq := range viewSeqs {
				var refSet map[string]bool
				var refName string
				for _, c := range survivors {
					in := false
					for _, v := range c.views {
						if v.ID.Seq == seq {
							in = true
						}
					}
					if !in {
						continue
					}
					set := map[string]bool{}
					lastPerSender := map[int]int{}
					for _, p := range c.casts[seq] {
						if set[p] {
							t.Fatalf("%s: duplicate %q in view %d", c.name, p, seq)
						}
						set[p] = true
						var sender, n int
						fmt.Sscanf(p, "m%d-%d", &sender, &n)
						if prev, ok := lastPerSender[sender]; ok && n <= prev {
							t.Fatalf("%s: FIFO violation in view %d: %v", c.name, seq, c.casts[seq])
						}
						lastPerSender[sender] = n
					}
					if refSet == nil {
						refSet, refName = set, c.name
						continue
					}
					if len(set) != len(refSet) {
						t.Fatalf("view %d: %s delivered %d, %s delivered %d",
							seq, c.name, len(set), refName, len(refSet))
					}
					for p := range refSet {
						if !set[p] {
							t.Fatalf("view %d: %s missing %q", seq, c.name, p)
						}
					}
				}
			}
			// Completeness: messages from survivors must all arrive
			// eventually (24 casts from 3 non-victims).
			total := 0
			for _, msgs := range survivors[0].casts {
				total += len(msgs)
			}
			if total != 24 {
				t.Fatalf("%s delivered %d messages overall, want 24", survivors[0].name, total)
			}
		})
	}
}
