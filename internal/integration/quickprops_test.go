package integration

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/compress"
	"horus/internal/layers/crypt"
	"horus/internal/layers/frag"
	"horus/internal/layers/nak"
	"horus/internal/layers/nfrag"
	"horus/internal/layers/sign"
	"horus/internal/message"
	"horus/internal/netsim"
)

// Property-based end-to-end round trips: for arbitrary payloads (and
// where applicable arbitrary fragment sizes), what one endpoint casts
// is exactly what the other delivers, through transform-heavy stacks.

// roundTrip builds a fresh 2-member static stack, casts body, and
// returns b's single delivery (nil if none).
func roundTrip(t *testing.T, spec func() core.StackSpec, body []byte) []byte {
	t.Helper()
	net := netsim.New(netsim.Config{Seed: 313})
	epA := net.NewEndpoint("a")
	epB := net.NewEndpoint("b")
	var got []byte
	ga, err := epA.Join("grp", spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := epB.Join("grp", spec(), func(ev *core.Event) {
		if ev.Type == core.UCast {
			got = append([]byte(nil), ev.Msg.Body()...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	view := core.NewView(core.ViewID{Seq: 1, Coord: epA.ID()}, "grp",
		[]core.EndpointID{epA.ID(), epB.ID()})
	ga.InstallView(view)
	gb.InstallView(view)
	net.At(0, func() { ga.Cast(message.New(body)) })
	net.RunFor(time.Second)
	return got
}

func TestQuickFragRoundTripArbitraryBodies(t *testing.T) {
	f := func(body []byte, sizeSeed uint8) bool {
		size := 32 + int(sizeSeed)%480
		spec := func() core.StackSpec {
			return core.StackSpec{
				frag.NewWithSize(size),
				nak.NewWith(nak.WithSuspectAfter(0)),
				com.New,
			}
		}
		return bytes.Equal(roundTrip(t, spec, body), body) || len(body) == 0 && roundTrip(t, spec, body) == nil
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickNfragRoundTripArbitraryBodies(t *testing.T) {
	f := func(body []byte, sizeSeed uint8) bool {
		size := 32 + int(sizeSeed)%480
		spec := func() core.StackSpec {
			return core.StackSpec{
				nfrag.NewWith(nfrag.WithMaxFragment(size)),
				com.New,
			}
		}
		return bytes.Equal(roundTrip(t, spec, body), body) || len(body) == 0 && roundTrip(t, spec, body) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickSecurityPipelineRoundTrip(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	f := func(body []byte) bool {
		spec := func() core.StackSpec {
			return core.StackSpec{
				nak.NewWith(nak.WithSuspectAfter(0)),
				sign.New(key),
				crypt.New(key[:16]),
				compress.New,
				com.New,
			}
		}
		got := roundTrip(t, spec, body)
		if len(body) == 0 {
			return got == nil || len(got) == 0
		}
		return bytes.Equal(got, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
