package integration

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/merge"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

// TestSixteenMemberAutoFormation scales the MERGE-driven formation: 16
// endpoints start as singletons and must collapse into one view with
// nothing but beacons, then communicate.
func TestSixteenMemberAutoFormation(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 251, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	const n = 16
	mk := func() core.StackSpec {
		return core.StackSpec{
			merge.NewWith(merge.WithBeaconPeriod(80 * time.Millisecond)),
			mbrship.NewWith(
				mbrship.WithGossipPeriod(40*time.Millisecond),
				mbrship.WithFlushTimeout(600*time.Millisecond),
			),
			nak.NewWith(
				nak.WithStatusPeriod(25*time.Millisecond),
				nak.WithNakResend(15*time.Millisecond),
				nak.WithSuspectAfter(8),
			),
			com.New,
		}
	}
	cols := make([]*vsCollector, n)
	groups := make([]*core.Group, n)
	for i := 0; i < n; i++ {
		site := fmt.Sprintf("n%02d", i)
		cols[i] = newVSCollector(site)
		ep := net.NewEndpoint(site)
		g, err := ep.Join("grp", mk(), cols[i].handler())
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}
	net.RunFor(30 * time.Second)

	ref := cols[0].lastView()
	if ref == nil || ref.Size() != n {
		t.Fatalf("formation incomplete: %v", ref)
	}
	for _, c := range cols[1:] {
		if v := c.lastView(); v == nil || v.ID != ref.ID {
			t.Fatalf("%s: view %v differs from %v", c.name, v, ref)
		}
	}

	// A multicast reaches all 16.
	seq := ref.ID.Seq
	net.At(net.Now(), func() { groups[5].Cast(message.New([]byte("sweet sixteen"))) })
	net.RunFor(2 * time.Second)
	for _, c := range cols {
		got := c.casts[seq]
		if len(got) != 1 || got[0] != "sweet sixteen" {
			t.Fatalf("%s: deliveries %v", c.name, got)
		}
	}
}
