package integration

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

// vsCollector records deliveries tagged with the view they arrived in,
// for virtual-synchrony assertions.
type vsCollector struct {
	name    string
	views   []*core.View
	casts   map[uint64][]string // view seq -> payloads delivered in that view
	flushes int
	curView uint64
}

func newVSCollector(name string) *vsCollector {
	return &vsCollector{name: name, casts: make(map[uint64][]string)}
}

func (c *vsCollector) handler() core.Handler {
	return func(ev *core.Event) {
		switch ev.Type {
		case core.UView:
			c.views = append(c.views, ev.View)
			c.curView = ev.View.ID.Seq
		case core.UCast:
			c.casts[c.curView] = append(c.casts[c.curView], string(ev.Msg.Body()))
		case core.UFlush:
			c.flushes++
		}
	}
}

func (c *vsCollector) lastView() *core.View {
	if len(c.views) == 0 {
		return nil
	}
	return c.views[len(c.views)-1]
}

// vsStack is the membership stack used throughout: MBRSHIP over NAK
// over COM, with timers shortened for simulation.
func vsStack() core.StackSpec {
	return core.StackSpec{
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

// buildGroup creates n members that join one group by successive
// merges, returning endpoints, groups, and collectors. Virtual time
// advances enough for the full view to form.
func buildGroup(t *testing.T, net *netsim.Network, n int) ([]*core.Endpoint, []*core.Group, []*vsCollector) {
	t.Helper()
	eps := make([]*core.Endpoint, n)
	groups := make([]*core.Group, n)
	cols := make([]*vsCollector, n)
	for i := 0; i < n; i++ {
		site := fmt.Sprintf("%c", 'a'+i)
		eps[i] = net.NewEndpoint(site)
		cols[i] = newVSCollector(site)
		g, err := eps[i].Join("grp", vsStack(), cols[i].handler())
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}
	// Merge everyone into the first member's view. Requests denied or
	// lost (the coordinator handles one merge at a time) are retried
	// until the member sees the full view.
	for i := 1; i < n; i++ {
		i := i
		var tryMerge func()
		tryMerge = func() {
			v := cols[i].lastView()
			if v != nil && v.Size() >= n {
				return
			}
			groups[i].Merge(eps[0].ID())
			net.At(net.Now()+150*time.Millisecond, tryMerge)
		}
		net.At(net.Now()+time.Duration(i)*50*time.Millisecond, tryMerge)
	}
	net.RunFor(time.Duration(n)*300*time.Millisecond + 2*time.Second)
	for i, c := range cols {
		v := c.lastView()
		if v == nil || v.Size() != n {
			t.Fatalf("member %d: view %v after group formation, want %d members", i, v, n)
		}
	}
	return eps, groups, cols
}

func TestJoinByMergeFormsGroup(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 11, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	_, _, cols := buildGroup(t, net, 4)

	// Every member ends in the identical view.
	ref := cols[0].lastView()
	for i, c := range cols {
		v := c.lastView()
		if v.ID != ref.ID || v.Size() != ref.Size() {
			t.Errorf("member %d: view %v differs from %v", i, v, ref)
		}
		for j := range v.Members {
			if v.Members[j] != ref.Members[j] {
				t.Errorf("member %d: member list %v differs from %v", i, v.Members, ref.Members)
			}
		}
	}
}

func TestCastDeliveryInGroup(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 12, DefaultLink: netsim.Link{Delay: time.Millisecond, LossRate: 0.05}})
	_, groups, cols := buildGroup(t, net, 3)

	base := net.Now()
	for i := 0; i < 30; i++ {
		i := i
		net.At(base+time.Duration(i)*5*time.Millisecond, func() {
			groups[i%3].Cast(message.New([]byte(fmt.Sprintf("m%d-%d", i%3, i))))
		})
	}
	net.RunFor(2 * time.Second)

	// All members deliver all 30 messages (sender self-delivery
	// included), in the current view.
	cur := cols[0].lastView().ID.Seq
	for i, c := range cols {
		got := c.casts[cur]
		if len(got) != 30 {
			t.Errorf("member %d delivered %d casts in view %d, want 30: %v", i, len(got), cur, got)
		}
		// Per-sender FIFO must hold.
		last := map[string]int{}
		for _, p := range got {
			var sender, seq int
			if _, err := fmt.Sscanf(p, "m%d-%d", &sender, &seq); err != nil {
				t.Fatalf("member %d: bad payload %q", i, p)
			}
			if seq <= last[fmt.Sprint(sender)] && last[fmt.Sprint(sender)] != 0 {
				t.Errorf("member %d: FIFO violation for sender %d: %v", i, sender, got)
			}
			last[fmt.Sprint(sender)] = seq
		}
	}
}

// TestFigure2Scenario reproduces the paper's Figure 2: four processes
// A, B, C, D. D crashes right after sending a message M, and only C
// receives a copy. After the crash is detected, A (the oldest member)
// starts the flush; C returns the unstable M, which reaches A and is
// forwarded to B; after all FLUSH_OK replies, A installs the view
// {A, B, C}. Virtual synchrony: all three survivors deliver M, in the
// old view, exactly once.
func TestFigure2Scenario(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 13, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	eps, groups, cols := buildGroup(t, net, 4)
	a, b, d := eps[0], eps[1], eps[3] // C keeps a clean link to D

	oldView := cols[3].lastView().ID.Seq

	// D's copies toward A and B (and itself) are lost; only C hears M.
	net.SetLink(d.ID(), a.ID(), netsim.Link{Delay: time.Millisecond, LossRate: 1})
	net.SetLink(d.ID(), b.ID(), netsim.Link{Delay: time.Millisecond, LossRate: 1})
	net.SetLink(d.ID(), d.ID(), netsim.Link{Delay: time.Millisecond, LossRate: 1})

	base := net.Now()
	net.At(base, func() { groups[3].Cast(message.New([]byte("M"))) })
	// Crash D right after C's copy is on the wire, before any NAK
	// recovery can involve D.
	net.At(base+2*time.Millisecond, func() { net.Crash(d.ID()) })
	net.RunFor(3 * time.Second)

	for i, col := range cols[:3] {
		v := col.lastView()
		if v == nil || v.Size() != 3 {
			t.Fatalf("%s: final view %v, want 3 survivors", col.name, v)
		}
		if v.Contains(d.ID()) {
			t.Errorf("%s: crashed member still in view %v", col.name, v)
		}
		got := col.casts[oldView]
		mCount := 0
		for _, p := range got {
			if p == "M" {
				mCount++
			}
		}
		if mCount != 1 {
			t.Errorf("%s: delivered M %d times in view %d, want exactly once (got %v)",
				col.name, mCount, oldView, got)
		}
		if col.flushes == 0 {
			t.Errorf("%s: no FLUSH upcall observed", col.name)
		}
		_ = i
	}

	// All survivors end in the same view.
	ref := cols[0].lastView()
	for _, col := range cols[1:3] {
		if col.lastView().ID != ref.ID {
			t.Errorf("%s: view %v != %v", col.name, col.lastView(), ref)
		}
	}
}

// TestVirtualSynchronyUnderCrash asserts the core guarantee: messages
// delivered in a view are delivered to all surviving members of that
// view — survivors' per-view delivery sets are identical, even when a
// sender crashes mid-stream under loss.
func TestVirtualSynchronyUnderCrash(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 17, DefaultLink: netsim.Link{
		Delay:    time.Millisecond,
		Jitter:   2 * time.Millisecond,
		LossRate: 0.1,
	}})
	eps, groups, cols := buildGroup(t, net, 4)

	base := net.Now()
	// Everyone casts continuously; D crashes in the middle.
	for i := 0; i < 40; i++ {
		i := i
		net.At(base+time.Duration(i)*4*time.Millisecond, func() {
			groups[i%4].Cast(message.New([]byte(fmt.Sprintf("m%d-%d", i%4, i))))
		})
	}
	net.At(base+80*time.Millisecond, func() { net.Crash(eps[3].ID()) })
	net.RunFor(5 * time.Second)

	// Survivors converge on a 3-member view.
	for _, col := range cols[:3] {
		v := col.lastView()
		if v == nil || v.Size() != 3 {
			t.Fatalf("%s: final view %v, want 3 members", col.name, v)
		}
	}
	// Per-view delivery sets are identical across survivors for every
	// view at least two survivors passed through.
	viewSeqs := map[uint64]bool{}
	for _, col := range cols[:3] {
		for seq := range col.casts {
			viewSeqs[seq] = true
		}
	}
	for seq := range viewSeqs {
		var ref map[string]bool
		var refName string
		for _, col := range cols[:3] {
			inView := false
			for _, v := range col.views {
				if v.ID.Seq == seq {
					inView = true
					break
				}
			}
			if !inView {
				continue
			}
			set := map[string]bool{}
			for _, p := range col.casts[seq] {
				if set[p] {
					t.Errorf("%s: duplicate delivery of %q in view %d", col.name, p, seq)
				}
				set[p] = true
			}
			if ref == nil {
				ref, refName = set, col.name
				continue
			}
			if len(set) != len(ref) {
				t.Errorf("view %d: %s delivered %d msgs, %s delivered %d (virtual synchrony violated)",
					seq, col.name, len(set), refName, len(ref))
				continue
			}
			for p := range ref {
				if !set[p] {
					t.Errorf("view %d: %s missing %q that %s delivered", seq, col.name, p, refName)
				}
			}
		}
	}
}

func TestLeaveInstallsSmallerView(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 19, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	eps, groups, cols := buildGroup(t, net, 3)

	net.At(net.Now(), func() { groups[2].Leave() })
	net.RunFor(3 * time.Second)

	for _, col := range cols[:2] {
		v := col.lastView()
		if v == nil || v.Size() != 2 {
			t.Fatalf("%s: view %v after leave, want 2 members", col.name, v)
		}
		if v.Contains(eps[2].ID()) {
			t.Errorf("%s: departed member still in view %v", col.name, v)
		}
	}
}

func TestPartitionFormsIndependentViews(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 23, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	eps, groups, cols := buildGroup(t, net, 4)

	net.Partition(
		[]core.EndpointID{eps[0].ID(), eps[1].ID()},
		[]core.EndpointID{eps[2].ID(), eps[3].ID()},
	)
	net.RunFor(3 * time.Second)

	// Each side converges on a two-member view of itself.
	for i, col := range cols {
		v := col.lastView()
		if v == nil || v.Size() != 2 {
			t.Fatalf("%s: view %v under partition, want 2 members", col.name, v)
		}
		other := eps[(i/2)*2+(1-(i%2))].ID()
		if !v.Contains(other) {
			t.Errorf("%s: partition peer %v missing from view %v", col.name, other, v)
		}
	}

	// Heal and merge the sides back together manually (the MERGE
	// layer automates this; tested separately).
	net.Heal()
	net.At(net.Now()+50*time.Millisecond, func() {
		groups[2].Merge(eps[0].ID())
	})
	net.RunFor(3 * time.Second)

	for _, col := range cols {
		v := col.lastView()
		if v == nil || v.Size() != 4 {
			t.Fatalf("%s: view %v after heal+merge, want 4 members", col.name, v)
		}
	}
}

// TestCastsDuringFlushAreDeferred checks that messages cast while a
// view change is in progress appear in the next view, not the old one.
func TestCastsDuringFlushAreDeferred(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 29, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	eps, groups, cols := buildGroup(t, net, 3)

	oldSeq := cols[0].lastView().ID.Seq
	base := net.Now()
	net.At(base, func() { net.Crash(eps[2].ID()) })
	// Cast from A while the crash is being detected and flushed.
	net.At(base+150*time.Millisecond, func() {
		groups[0].Cast(message.New([]byte("during")))
	})
	net.RunFor(3 * time.Second)

	for _, col := range cols[:2] {
		v := col.lastView()
		if v == nil || v.Size() != 2 {
			t.Fatalf("%s: final view %v", col.name, v)
		}
		total := 0
		for _, msgs := range col.casts {
			for _, p := range msgs {
				if p == "during" {
					total++
				}
			}
		}
		if total != 1 {
			t.Errorf("%s: %q delivered %d times, want once", col.name, "during", total)
		}
	}
	_ = oldSeq
}

// TestExternalFlushDowncall drives membership from the application:
// the flush downcall with an explicit failed list removes a member
// without waiting for failure detection.
func TestExternalFlushDowncall(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 31, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	eps, groups, cols := buildGroup(t, net, 3)

	net.At(net.Now(), func() {
		net.Crash(eps[2].ID())
		groups[0].Flush([]core.EndpointID{eps[2].ID()})
	})
	// The explicit flush should settle well before NAK-based suspicion
	// (6 periods x 20ms = 120ms) would fire.
	net.RunFor(100 * time.Millisecond)

	for _, col := range cols[:2] {
		v := col.lastView()
		if v == nil || v.Size() != 2 {
			t.Fatalf("%s: view %v shortly after explicit flush, want 2 members", col.name, v)
		}
	}
}
