package integration

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/merge"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

// TestCascadingCrashes kills two of five members in quick succession
// under heavy concurrent casting: the flush machinery must ride out a
// failure arriving in the middle of handling the previous one.
func TestCascadingCrashes(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 431, DefaultLink: netsim.Link{
		Delay: time.Millisecond, LossRate: 0.05,
	}})
	eps, groups, cols := buildGroup(t, net, 5)

	base := net.Now()
	for i := 0; i < 50; i++ {
		i := i
		net.At(base+time.Duration(i)*4*time.Millisecond, func() {
			if i%5 >= 3 {
				return // the doomed members stay quiet
			}
			groups[i%5].Cast(message.New([]byte(fmt.Sprintf("m%d-%d", i%5, i))))
		})
	}
	// e dies at 60ms; d dies at 180ms — likely mid-flush for e.
	net.At(base+60*time.Millisecond, func() { net.Crash(eps[4].ID()) })
	net.At(base+180*time.Millisecond, func() { net.Crash(eps[3].ID()) })
	net.RunFor(8 * time.Second)

	for _, c := range cols[:3] {
		v := c.lastView()
		if v == nil || v.Size() != 3 {
			t.Fatalf("%s: final view %v, want 3 survivors", c.name, v)
		}
		total := 0
		for _, msgs := range c.casts {
			total += len(msgs)
		}
		if total != 30 {
			t.Errorf("%s: delivered %d of 30", c.name, total)
		}
	}
	assertIdenticalDeliveriesVS(t, cols[0], cols[1])
	assertIdenticalDeliveriesVS(t, cols[1], cols[2])
	assertIdenticalDeliveriesVS(t, cols[0], cols[2])
}

// TestFlappingPartition opens and heals the same partition three times
// in a row; each heal must reconverge to one view, and the epoch
// hygiene (stale-suspicion tags, future-epoch buffering, per-pair
// stream persistence) must survive the churn.
func TestFlappingPartition(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 433, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	mk := func() core.StackSpec {
		return core.StackSpec{
			merge.NewWith(merge.WithBeaconPeriod(100 * time.Millisecond)),
			mbrship.NewWith(
				mbrship.WithGossipPeriod(40*time.Millisecond),
				mbrship.WithFlushTimeout(500*time.Millisecond),
			),
			nak.NewWith(
				nak.WithStatusPeriod(20*time.Millisecond),
				nak.WithNakResend(15*time.Millisecond),
				nak.WithSuspectAfter(6),
			),
			com.New,
		}
	}
	const n = 4
	eps := make([]*core.Endpoint, n)
	groups := make([]*core.Group, n)
	cols := make([]*vsCollector, n)
	for i := 0; i < n; i++ {
		site := fmt.Sprintf("%c", 'a'+i)
		cols[i] = newVSCollector(site)
		eps[i] = net.NewEndpoint(site)
		g, err := eps[i].Join("grp", mk(), cols[i].handler())
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}
	net.RunFor(5 * time.Second)
	for _, c := range cols {
		if v := c.lastView(); v == nil || v.Size() != n {
			t.Fatalf("%s: formation failed: %v", c.name, v)
		}
	}

	for cycle := 0; cycle < 3; cycle++ {
		net.Partition(
			[]core.EndpointID{eps[0].ID(), eps[1].ID()},
			[]core.EndpointID{eps[2].ID(), eps[3].ID()},
		)
		net.RunFor(2500 * time.Millisecond)
		for _, c := range cols {
			if v := c.lastView(); v == nil || v.Size() != 2 {
				t.Fatalf("cycle %d: %s did not split: %v", cycle, c.name, v)
			}
		}
		net.Heal()
		net.RunFor(8 * time.Second)
		for _, c := range cols {
			if v := c.lastView(); v == nil || v.Size() != n {
				t.Fatalf("cycle %d: %s did not re-merge: %v", cycle, c.name, v)
			}
		}
		// Communication is intact after every cycle.
		marker := fmt.Sprintf("alive-%d", cycle)
		net.At(net.Now(), func() {
			groups[cycle%n].Cast(message.New([]byte(marker)))
		})
		net.RunFor(time.Second)
		for _, c := range cols {
			got := c.casts[c.lastView().ID.Seq]
			found := false
			for _, p := range got {
				if p == marker {
					found = true
				}
			}
			if !found {
				t.Fatalf("cycle %d: %s missed %q: %v", cycle, c.name, marker, got)
			}
		}
	}
}
