package integration

// Pinned-seed reorder conformance: the explicit reorder rule holds
// frames on the wire until later departures overtake them — inversions
// that jitter alone cannot produce reliably. Above that hostile
// channel, NAK must restore per-sender FIFO and FRAG must reassemble
// multi-fragment casts whose fragments arrived permuted. The seed is
// pinned so the exact inversion pattern replays forever.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/frag"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

func TestReorderedLinkFIFOAndReassembly(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 77, DefaultLink: netsim.Link{
		Delay:        time.Millisecond,
		Jitter:       2 * time.Millisecond,
		ReorderRate:  0.35,
		ReorderDepth: 3,
	}})
	// 500-byte casts over 128-byte fragments: every cast crosses the
	// reordering link as several frames, so a single held fragment
	// scrambles both the fragment stream and the cast stream.
	spec := core.StackSpec{frag.NewWithSize(128), nak.New, com.New}
	ga, _, ca, cb := staticPair(t, net, spec)

	const n = 60
	payload := func(i int) string {
		head := fmt.Sprintf("big%03d|", i)
		return head + strings.Repeat("x", 500-len(head))
	}
	for i := 0; i < n; i++ {
		i := i
		net.At(time.Duration(i)*2*time.Millisecond, func() {
			ga.Cast(message.New([]byte(payload(i))))
		})
	}
	net.RunUntil(3 * time.Second)

	if net.Stats().Reordered == 0 {
		t.Fatal("reorder rule never fired — the test exercised nothing")
	}
	for name, c := range map[string]*collector{"a": ca, "b": cb} {
		assertNoErrors(t, name, c)
		if len(c.casts) != n {
			t.Fatalf("%s: delivered %d casts, want %d", name, len(c.casts), n)
		}
		for i, got := range c.casts {
			if want := payload(i); got != want {
				t.Errorf("%s: cast[%d] = %.16q... want %.16q... (FIFO or reassembly broken)",
					name, i, got, want)
			}
		}
	}
}
