package integration

// Differential equivalence suite for the §10 cast fast path: the
// compiled send plan must be *the same protocol, only faster*. For
// randomized stacks and seeded cast schedules the suite runs the same
// scenario twice — once with the compiled plan engaged, once pinned to
// the per-layer reference path — and demands byte-identical wire
// output and identical delivery order at every member, plus
// bit-identical replay of the fast path against itself. The
// deterministic netsim sweep compares the complete transmit stream
// (data, NAK status gossip, membership traffic — everything that
// leaves any endpoint); the chaosnet UDP variant re-runs the
// comparison over real sockets, filtered to the sequenced data frames
// because wall-clock timers make control chatter legitimately
// timing-dependent. PlanStats assertions keep every scenario
// non-vacuous: a run that silently never engaged (or never skipped)
// the compiled plan is a test bug, not a pass.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"horus/internal/chaos"
	"horus/internal/chaosnet"
	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/frag"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
	"horus/internal/property"
	"horus/internal/stackreg"
)

// fastPathStacks is the randomized pool: every compilable shape
// (static headers, CRC fill, sequence assignment, rewrap, the
// membership Ready gate) plus a reference-only control whose TOTAL
// layer has no compiled form — proving a non-compilable stack behaves
// identically whichever way the toggle points.
var fastPathStacks = []string{
	"COM",
	"CHKSUM:COM",
	"HBEAT:CHKSUM:COM",
	"NAK:COM",
	"NAK:CHKSUM:COM",
	"FRAG:NAK:COM",
	"FRAG:NAK:CHKSUM:COM",
	"MBRSHIP:FRAG:NAK:COM",
	"TOTAL:MBRSHIP:FRAG:NAK:COM",
}

// fpRun is everything one scenario run observed, keyed by member site.
type fpRun struct {
	mu       sync.Mutex
	wires    map[string][][]byte // per-sender transmit stream, in order
	delivs   map[string][]string // per-member "<source-site>:<body>" in order
	stats    core.PlanStats
	hasPlan  bool
	schedule int // casts issued
}

func newFPRun() *fpRun {
	return &fpRun{wires: map[string][][]byte{}, delivs: map[string][]string{}}
}

func (r *fpRun) tap(site string) func([]core.EndpointID, []byte) {
	return func(dests []core.EndpointID, wire []byte) {
		r.mu.Lock()
		r.wires[site] = append(r.wires[site], append([]byte(nil), wire...))
		r.mu.Unlock()
	}
}

func (r *fpRun) recorder(site string) core.Handler {
	return func(ev *core.Event) {
		if ev.Type == core.UCast {
			r.mu.Lock()
			r.delivs[site] = append(r.delivs[site], ev.Source.Site+":"+string(ev.Msg.Body()))
			r.mu.Unlock()
		}
	}
}

func (r *fpRun) delivered(site string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.delivs[site])
}

// requireSameRuns compares two runs' transmit streams and delivery
// orders byte for byte.
func requireSameRuns(t *testing.T, what string, a, b *fpRun) {
	t.Helper()
	for _, site := range []string{"a", "b"} {
		wa, wb := a.wires[site], b.wires[site]
		if len(wa) != len(wb) {
			t.Fatalf("%s: member %s transmitted %d frames vs %d", what, site, len(wa), len(wb))
		}
		for i := range wa {
			if string(wa[i]) != string(wb[i]) {
				t.Fatalf("%s: member %s frame %d differs:\n  %x\nvs\n  %x", what, site, i, wa[i], wb[i])
			}
		}
		da, db := a.delivs[site], b.delivs[site]
		if len(da) != len(db) {
			t.Fatalf("%s: member %s delivered %d vs %d", what, site, len(da), len(db))
		}
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("%s: member %s delivery %d differs: %q vs %q", what, site, i, da[i], db[i])
			}
		}
	}
}

// fpBody derives a deterministic payload. Sizes mix the compiled sweet
// spot with oversize bodies that force FRAG (when present) to decline
// the plan and split on the reference path.
func fpBody(rng *rand.Rand, i int) []byte {
	var size int
	switch rng.Intn(4) {
	case 0:
		size = 1 + rng.Intn(48)
	case 1, 2:
		size = 100 + rng.Intn(400)
	default:
		size = 1200 + rng.Intn(1800) // beyond FRAG's default 1024 max
	}
	b := make([]byte, size)
	rng.Read(b)
	copy(b, []byte(fmt.Sprintf("m%03d|", i)))
	return b
}

// runSimScenario executes one (stack, seed) cast schedule on the
// deterministic fabric with the fast path toggled as given.
func runSimScenario(t *testing.T, desc string, seed int64, fast bool) *fpRun {
	t.Helper()
	r := newFPRun()
	net := netsim.New(netsim.Config{Seed: seed, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	spec, err := stackreg.Build(desc, property.P1)
	if err != nil {
		t.Fatal(err)
	}
	build := func() core.StackSpec { return spec }
	epA, epB := net.NewEndpoint("a"), net.NewEndpoint("b")
	epA.SetFastPath(fast)
	epB.SetFastPath(fast)
	epA.SetWireTap(r.tap("a"))
	epB.SetWireTap(r.tap("b"))
	var viewB *core.View
	ga, err := epA.Join("grp", build(), r.recorder("a"))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := epB.Join("grp", build(), func(ev *core.Event) {
		if ev.Type == core.UView {
			viewB = ev.View
		}
		r.recorder("b")(ev)
	})
	if err != nil {
		t.Fatal(err)
	}

	hasMembership := false
	for _, n := range property.ParseStack(desc) {
		if n == "MBRSHIP" {
			hasMembership = true
		}
	}
	if hasMembership {
		var tryMerge func()
		tryMerge = func() {
			if viewB != nil && viewB.Size() >= 2 {
				return
			}
			gb.Merge(epA.ID())
			net.At(net.Now()+150*time.Millisecond, tryMerge)
		}
		net.At(20*time.Millisecond, tryMerge)
		net.RunFor(3 * time.Second)
		if viewB == nil || viewB.Size() != 2 {
			t.Fatalf("membership formation failed for %s", desc)
		}
	} else {
		view := core.NewView(core.ViewID{Seq: 1, Coord: epA.ID()}, "grp",
			[]core.EndpointID{epA.ID(), epB.ID()})
		ga.InstallView(view)
		gb.InstallView(view)
	}

	rng := rand.New(rand.NewSource(seed * 7919))
	n := 8 + rng.Intn(12)
	r.schedule = n
	base := net.Now()
	for i := 0; i < n; i++ {
		i := i
		g := ga
		if rng.Intn(3) == 0 {
			g = gb
		}
		body := fpBody(rng, i)
		net.At(base+time.Duration(i)*7*time.Millisecond, func() {
			g.Cast(message.New(body))
		})
	}
	net.RunFor(3 * time.Second)

	sa, sb := ga.Stack().PlanStats(), gb.Stack().PlanStats()
	r.stats = core.PlanStats{Fast: sa.Fast + sb.Fast, Fallback: sa.Fallback + sb.Fallback}
	r.hasPlan = ga.Stack().HasCastPlan()
	return r
}

// TestFastPathDifferentialSim is the randomized netsim sweep:
// fast-vs-reference equality over the complete transmit stream, plus
// bit-identical replay of the fast path.
func TestFastPathDifferentialSim(t *testing.T) {
	for si, desc := range fastPathStacks {
		desc := desc
		seed := int64(101 + si)
		t.Run(desc, func(t *testing.T) {
			fastRun := runSimScenario(t, desc, seed, true)
			refRun := runSimScenario(t, desc, seed, false)
			requireSameRuns(t, "fast vs reference", fastRun, refRun)
			replay := runSimScenario(t, desc, seed, true)
			requireSameRuns(t, "fast replay", fastRun, replay)

			names := property.ParseStack(desc)
			if compilable := property.FastCastable(names); compilable != fastRun.hasPlan {
				t.Fatalf("FastCastable(%v)=%v but stack plan=%v", names, compilable, fastRun.hasPlan)
			}
			if fastRun.hasPlan {
				if fastRun.stats.Fast == 0 {
					t.Fatalf("compiled plan never ran (schedule of %d casts)", fastRun.schedule)
				}
				hasFrag := false
				for _, n := range names {
					if n == "FRAG" {
						hasFrag = true
					}
				}
				if hasFrag && fastRun.stats.Fallback == 0 {
					t.Fatal("oversize casts never fell back through FRAG's size gate")
				}
			} else if fastRun.stats.Fast != 0 || fastRun.stats.Fallback != 0 {
				t.Fatalf("non-compilable stack reported plan stats %+v", fastRun.stats)
			}
			if refRun.stats.Fast != 0 {
				t.Fatalf("reference run leaked %d casts onto the fast path", refRun.stats.Fast)
			}
		})
	}
}

// nakDataFrame reports whether a captured wire image is a sequenced
// NAK data frame for a stack whose NAK layer sits directly above COM:
// [u32 hdrlen][birth u64][sitelen u32][site][kindCast=1][kindData=1]….
// The UDP comparison filters on this because NAK's timer-driven
// control traffic (status gossip, re-NAKs) is legitimately
// wall-clock-dependent, while the sequenced data stream is a pure
// function of the cast schedule.
func nakDataFrame(w []byte) bool {
	off := 4 + 8
	if len(w) < off+4 {
		return false
	}
	site := int(binary.BigEndian.Uint32(w[off:]))
	off += 4 + site
	if len(w) < off+2 {
		return false
	}
	return w[off] == 1 && w[off+1] == 1
}

func filterNakData(frames [][]byte) [][]byte {
	var out [][]byte
	for _, f := range frames {
		if nakDataFrame(f) {
			out = append(out, f)
		}
	}
	return out
}

// runUDPScenario executes a paced single-sender cast schedule over the
// chaosnet UDP proxy. The NAK status gossip is pushed out beyond the
// test horizon so the sequenced data stream is the only deterministic
// traffic — which is exactly what the comparison filters down to.
func runUDPScenario(t *testing.T, withFrag bool, seed int64, fast bool) *fpRun {
	t.Helper()
	r := newFPRun()
	fab := chaosnet.New(chaosnet.Config{Seed: seed, DefaultLink: netsim.Link{Delay: 200 * time.Microsecond}})
	defer fab.Close()
	quietNak := nak.NewWith(nak.WithStatusPeriod(time.Hour), nak.WithSuspectAfter(0))
	mk := func() core.StackSpec {
		if withFrag {
			return core.StackSpec{frag.New, quietNak, com.New}
		}
		return core.StackSpec{quietNak, com.New}
	}
	epA, epB := fab.NewEndpoint("a"), fab.NewEndpoint("b")
	epA.SetFastPath(fast)
	epB.SetFastPath(fast)
	epA.SetWireTap(r.tap("a"))
	ga, err := epA.Join("grp", mk(), r.recorder("a"))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := epB.Join("grp", mk(), r.recorder("b"))
	if err != nil {
		t.Fatal(err)
	}
	view := core.NewView(core.ViewID{Seq: 1, Coord: epA.ID()}, "grp",
		[]core.EndpointID{epA.ID(), epB.ID()})
	ga.InstallView(view)
	gb.InstallView(view)

	rng := rand.New(rand.NewSource(seed * 1297))
	const casts = 30
	r.schedule = casts
	for i := 0; i < casts; i++ {
		body := make([]byte, 16+rng.Intn(380))
		rng.Read(body)
		copy(body, []byte(fmt.Sprintf("u%03d|", i)))
		ga.Cast(message.New(body))
		time.Sleep(time.Millisecond) // pace below any socket-buffer horizon
	}
	deadline := time.Now().Add(10 * time.Second)
	for r.delivered("b") < casts && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := r.delivered("b"); got < casts {
		t.Fatalf("b delivered %d of %d casts over UDP", got, casts)
	}
	r.stats = ga.Stack().PlanStats()
	r.hasPlan = ga.Stack().HasCastPlan()
	r.mu.Lock()
	r.wires["a"] = filterNakData(r.wires["a"])
	r.wires["b"] = nil // b only receives; its control chatter is not compared
	r.mu.Unlock()
	return r
}

// TestFastPathDifferentialUDP re-proves the equivalence over real
// sockets: the sequenced data frames and the delivery order must be
// byte-identical between fast and reference runs, and the fast path
// must replay bit-identically against itself.
func TestFastPathDifferentialUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("UDP differential runs at wall-clock speed")
	}
	for _, withFrag := range []bool{false, true} {
		withFrag := withFrag
		name := "NAK:COM"
		if withFrag {
			name = "FRAG:NAK:COM"
		}
		t.Run(name, func(t *testing.T) {
			seed := int64(31)
			fastRun := runUDPScenario(t, withFrag, seed, true)
			refRun := runUDPScenario(t, withFrag, seed, false)
			requireSameRuns(t, "fast vs reference (udp)", fastRun, refRun)
			replay := runUDPScenario(t, withFrag, seed, true)
			requireSameRuns(t, "fast replay (udp)", fastRun, replay)

			if !fastRun.hasPlan {
				t.Fatal("stack did not compile a plan")
			}
			if fastRun.stats.Fast != uint64(fastRun.schedule) {
				t.Fatalf("compiled plan ran %d of %d casts", fastRun.stats.Fast, fastRun.schedule)
			}
			if refRun.stats.Fast != 0 {
				t.Fatalf("reference run leaked %d casts onto the fast path", refRun.stats.Fast)
			}
		})
	}
}

// TestFastPathSwitchStorm pins that segment-plan invalidation across
// SWITCH epochs never races a concurrent cast: a chaosnet cluster
// (real goroutines, real sockets — the configuration `go test -race`
// can actually catch something in) runs a switch storm under the
// continuous cast workload, every segment swap discarding one compiled
// plan and deriving the next mid-traffic. The virtual-synchrony
// invariants must hold and at least one switch must commit, so the
// epoch fence demonstrably moved while casts were in flight.
func TestFastPathSwitchStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("switch storm runs the UDP fabric at wall-clock speed")
	}
	link := netsim.Link{Delay: time.Millisecond, Jitter: 2 * time.Millisecond, LossRate: 0.02}
	c := chaos.NewCluster(chaos.Config{
		Seed:    641,
		Members: 3,
		Link:    link,
		Fabric:  chaosnet.New(chaosnet.Config{Seed: 641, DefaultLink: link}),
		Stack:   chaos.SwitchStack,
	})
	defer c.Close()
	if err := c.Form(15 * time.Second); err != nil {
		t.Fatalf("formation: %v", err)
	}
	sched := chaos.SwitchStorm(200*time.Millisecond, 400*time.Millisecond, 6, 3,
		[]string{"TOTAL", "", "COMPRESS:TOTAL"})
	c.Apply(sched)
	c.Run(sched.End() + 500*time.Millisecond)
	if err := c.Settle(20 * time.Second); err != nil {
		t.Fatalf("settle: %v", err)
	}
	if errs := c.Check(); len(errs) != 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
	committed := 0
	for _, h := range c.Histories {
		for _, s := range h.Switches {
			if s.Committed {
				committed++
			}
		}
	}
	if committed == 0 {
		t.Fatal("switch storm never committed a reconfiguration — the race window was never opened")
	}
}
