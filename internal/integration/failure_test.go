package integration

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/chaos"
	"horus/internal/core"
	"horus/internal/failure"
	"horus/internal/layers/com"
	"horus/internal/layers/hbeat"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/netsim"
)

// externalFDStack ignores NAK's layer-level suspicions; membership
// acts only on the external service's verdicts (paper §5).
func externalFDStack() core.StackSpec {
	return core.StackSpec{
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
			mbrship.WithExternalSuspicions(),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

// TestExternalFailureDetectorDrivesMembership builds a group whose
// MBRSHIP layers only act on verdicts from a shared failure.Service —
// "the output of this service can be fed to all instances of the
// MBRSHIP layer, so that the corresponding groups have the same
// (consistent) view of the environment" (§5).
func TestExternalFailureDetectorDrivesMembership(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 131, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	svc := failure.NewService(2) // two observers must agree

	const n = 3
	eps := make([]*core.Endpoint, n)
	groups := make([]*core.Group, n)
	cols := make([]*vsCollector, n)
	for i := 0; i < n; i++ {
		site := fmt.Sprintf("%c", 'a'+i)
		eps[i] = net.NewEndpoint(site)
		cols[i] = newVSCollector(site)
		handler := svc.WrapHandler(&groups[i], cols[i].handler())
		g, err := eps[i].Join("grp", externalFDStack(), handler)
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}
	for i := 1; i < n; i++ {
		i := i
		var tryMerge func()
		tryMerge = func() {
			if v := cols[i].lastView(); v != nil && v.Size() >= n {
				return
			}
			groups[i].Merge(eps[0].ID())
			net.At(net.Now()+150*time.Millisecond, tryMerge)
		}
		net.At(net.Now()+time.Duration(i)*50*time.Millisecond, tryMerge)
	}
	net.RunFor(2 * time.Second)
	for _, c := range cols {
		if v := c.lastView(); v == nil || v.Size() != n {
			t.Fatalf("%s: formation failed: %v", c.name, v)
		}
	}

	// c crashes. NAK raises PROBLEM at a and b; the wrapped handlers
	// report to the service; once both agree, verdicts trigger
	// flush downcalls everywhere.
	net.At(net.Now(), func() { net.Crash(eps[2].ID()) })
	net.RunFor(3 * time.Second)

	for _, c := range cols[:2] {
		v := c.lastView()
		if v == nil || v.Size() != 2 {
			t.Fatalf("%s: view %v after external-FD verdict, want 2 members", c.name, v)
		}
	}
	if got := svc.Faulty(); len(got) != 1 || got[0] != eps[2].ID() {
		t.Errorf("service verdicts = %v", got)
	}
}

// TestExternalFDRequiresQuorum shows the flip side: a single
// observer's suspicion does not move the group.
func TestExternalFDRequiresQuorum(t *testing.T) {
	svc := failure.NewService(2)
	var g *core.Group
	h := svc.WrapHandler(&g, nil)
	// One observer reports a problem; no verdict must fire (WrapHandler
	// would Flush through g, which is nil — a panic would fail the
	// test).
	h(&core.Event{Type: core.UProblem, Source: core.EndpointID{Site: "x", Birth: 9}})
	if got := svc.Faulty(); len(got) != 0 {
		t.Fatalf("verdict from a single observer: %v", got)
	}
}

// TestPhiSourceBackedByHbeat wires a group's HBEAT layer into
// failure.Service as a PhiSource and shows a consumer reading
// *continuous* suspicion through the service: after a peer goes
// silent, Phi rises smoothly with the silence — graded evidence
// available long before (and independent of) the binary PROBLEM /
// verdict machinery ever fires.
func TestPhiSourceBackedByHbeat(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 151, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	svc := failure.NewService(2)

	epA, epB := net.NewEndpoint("a"), net.NewEndpoint("b")
	ca, cb := newVSCollector("a"), newVSCollector("b")
	ga, err := epA.Join("grp", chaos.DefaultStack(), ca.handler())
	if err != nil {
		t.Fatal(err)
	}
	gb, err := epB.Join("grp", chaos.DefaultStack(), cb.handler())
	if err != nil {
		t.Fatal(err)
	}
	net.At(50*time.Millisecond, func() { gb.Merge(epA.ID()) })
	net.RunFor(1 * time.Second)
	if v := ca.lastView(); v == nil || v.Size() != 2 {
		t.Fatalf("formation failed: %v", v)
	}

	// The service reads a's HBEAT through Endpoint.Do: the layer
	// belongs to the stack goroutine, the service to anyone.
	var hb *hbeat.Hbeat
	epA.Do(func() { hb = ga.Focus("HBEAT").(*hbeat.Hbeat) })
	svc.AddPhiSource(func(e core.EndpointID) float64 {
		var phi float64
		epA.Do(func() { phi = hb.Phi(e) })
		return phi
	})

	healthy := svc.Phi(epB.ID())
	net.At(net.Now(), func() { net.Crash(epB.ID()) })
	// Sample inside the window before the stack's own machinery evicts
	// b (suspicion fires after ~90ms of silence here): that window is
	// exactly where the graded signal is valuable — the binary detector
	// still says nothing.
	var samples []float64
	for i := 0; i < 3; i++ {
		net.RunFor(25 * time.Millisecond)
		samples = append(samples, svc.Phi(epB.ID()))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Fatalf("suspicion not monotone under silence: %v", samples)
		}
	}
	last := samples[len(samples)-1]
	if last <= healthy || last < 1 {
		t.Errorf("phi after 75ms silence = %v (healthy %v), want a clearly risen level", last, healthy)
	}
	// The graded signal needed no binary verdict: nobody Reported, so
	// the service's faulty set is untouched.
	if got := svc.Faulty(); len(got) != 0 {
		t.Errorf("faulty set = %v, want empty — Phi must not depend on verdicts", got)
	}
}

// TestManualMergeGrant exercises the MERGE_REQUEST upcall /
// merge_granted downcall path: the application arbitrates merges.
func TestManualMergeGrant(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 137, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	mkStack := func() core.StackSpec {
		return core.StackSpec{
			mbrship.NewWith(
				mbrship.WithGossipPeriod(40*time.Millisecond),
				mbrship.WithFlushTimeout(500*time.Millisecond),
				mbrship.WithManualMergeGrant(),
			),
			nak.NewWith(
				nak.WithStatusPeriod(20*time.Millisecond),
				nak.WithSuspectAfter(6),
			),
			com.New,
		}
	}
	epA := net.NewEndpoint("a")
	epB := net.NewEndpoint("b")
	var requests []core.EndpointID
	var ga *core.Group
	ca := newVSCollector("a")
	handlerA := func(ev *core.Event) {
		if ev.Type == core.UMergeRequest {
			requests = append(requests, ev.Contact)
			if string(ev.Contact.Site) == "b" {
				ga.MergeGranted(ev.Contact)
			} else {
				ga.MergeDenied(ev.Contact, "not on the list")
			}
			return
		}
		ca.handler()(ev)
	}
	var err error
	ga, err = epA.Join("grp", mkStack(), handlerA)
	if err != nil {
		t.Fatal(err)
	}
	cb := newVSCollector("b")
	gb, err := epB.Join("grp", mkStack(), cb.handler())
	if err != nil {
		t.Fatal(err)
	}
	net.At(50*time.Millisecond, func() { gb.Merge(epA.ID()) })
	net.RunFor(2 * time.Second)

	if len(requests) == 0 {
		t.Fatal("no MERGE_REQUEST upcall reached the application")
	}
	if v := cb.lastView(); v == nil || v.Size() != 2 {
		t.Fatalf("granted merge did not complete: %v", cb.lastView())
	}
}
