package integration

import (
	"testing"
	"time"

	"horus/internal/chaos"
	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/hbeat"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/netsim"
)

// hbStack is the heartbeat-detected membership stack: NAK's own
// silence suspicion is off (suspectAfter 0), so the only failure
// detector in the stack is HBEAT.
func hbStack() core.StackSpec {
	return core.StackSpec{
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(400*time.Millisecond),
		),
		hbeat.NewWith(
			hbeat.WithPeriod(30*time.Millisecond),
			hbeat.WithMinTimeout(90*time.Millisecond),
			hbeat.WithMaxTimeout(250*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(0),
		),
		com.New,
	}
}

// TestHeartbeatDetectsCrashWithinBound: with HBEAT as the only
// detector, a crashed member is suspected and flushed out within a
// bounded virtual-time interval — here maxTimeout (250ms) + one sweep
// period + flush round-trips, asserted at 1.5s with margin.
func TestHeartbeatDetectsCrashWithinBound(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 41, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	eps := make([]*core.Endpoint, 3)
	groups := make([]*core.Group, 3)
	cols := make([]*vsCollector, 3)
	for i, site := range []string{"a", "b", "c"} {
		eps[i] = net.NewEndpoint(site)
		cols[i] = newVSCollector(site)
		g, err := eps[i].Join("grp", hbStack(), cols[i].handler())
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}
	for i := 1; i < 3; i++ {
		i := i
		var tryMerge func()
		tryMerge = func() {
			if v := cols[i].lastView(); v != nil && v.Size() >= 3 {
				return
			}
			groups[i].Merge(eps[0].ID())
			net.At(net.Now()+150*time.Millisecond, tryMerge)
		}
		net.At(net.Now()+time.Duration(i)*50*time.Millisecond, tryMerge)
	}
	net.RunFor(2 * time.Second)
	for i, c := range cols {
		if v := c.lastView(); v == nil || v.Size() != 3 {
			t.Fatalf("member %d: view %v, want 3 members", i, v)
		}
	}

	// Crash c. Nothing reports a PROBLEM except HBEAT's own silence
	// detection; the survivors must install {a, b} within the bound.
	crashAt := net.Now()
	net.Crash(eps[2].ID())
	const bound = 1500 * time.Millisecond
	net.RunFor(bound)
	for _, c := range cols[:2] {
		v := c.lastView()
		if v == nil || v.Size() != 2 || v.Contains(eps[2].ID()) {
			t.Fatalf("%s: view %v at %v after crash, want {a,b} within %v",
				c.name, v, net.Now()-crashAt, bound)
		}
	}
}

// TestChaosSoak runs randomized fault schedules across many seeds:
// loss ramps, asymmetric loss, flapping links, crash/recover cycles,
// and rolling partitions, with a continuous cast workload. After the
// schedule's safety tail the cluster must re-converge to one full
// view, and every virtual-synchrony invariant must hold over the whole
// run. A failure names the seed; rerun with that seed for an exact
// replay (go test -run TestChaosSoak, or cmd/horus-chaos -seed N -v).
func TestChaosSoak(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(soakName(seed), func(t *testing.T) {
			hists, err := runChaosSeed(seed)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if errs := chaos.CheckAll(hists); len(errs) != 0 {
				for _, e := range errs {
					t.Errorf("seed %d: %v", seed, e)
				}
			}
		})
	}
}

func soakName(seed int64) string {
	return "seed" + string(rune('0'+seed/10)) + string(rune('0'+seed%10))
}

// runChaosSeed is the one deterministic recipe shared by the soak, the
// replay test, and cmd/horus-chaos — chaos.RunSeed with its defaults.
func runChaosSeed(seed int64) ([]*chaos.History, error) {
	c, err := chaos.RunSeed(seed, chaos.SoakConfig{})
	if c == nil {
		return nil, err
	}
	return c.Histories, err
}

// TestChaosDeterministicReplay: the whole pipeline — simulation,
// schedule generation, workload, membership — is a pure function of
// the seed, so a failing seed's replay sees the identical execution.
func TestChaosDeterministicReplay(t *testing.T) {
	run := func() string {
		c := chaos.NewCluster(chaos.Config{
			Seed: 3, Members: 4,
			Link: netsim.Link{Delay: time.Millisecond, Jitter: 2 * time.Millisecond, LossRate: 0.02},
		})
		if err := c.Form(6 * time.Second); err != nil {
			t.Fatal(err)
		}
		sched := chaos.Generate(3, chaos.GenConfig{Members: 4, Horizon: 3 * time.Second, Incidents: 5})
		c.Apply(sched)
		c.Run(sched.End() + 2*time.Second)
		return c.Digest()
	}
	d1, d2 := run(), run()
	if d1 != d2 {
		t.Fatalf("same seed diverged:\n--- run 1\n%s\n--- run 2\n%s", d1, d2)
	}
}

// TestChaosHarshSoak runs the hostile schedule repertoire — multi-way
// partitions, anchor crashes, majority loss — over the
// primary-partition stack. Short mode trims the sweep; CI runs the
// full 20 under -race.
func TestChaosHarshSoak(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(soakName(seed), func(t *testing.T) {
			c, err := chaos.RunSeed(seed, chaos.SoakConfig{Harsh: true})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, e := range c.Check() {
				t.Errorf("seed %d: %v", seed, e)
			}
		})
	}
}

// TestChaosHarshReplayStable re-runs harsh seed 9 — the seed that once
// wedged a member on perpetual "not coordinator" merge denials after
// an anchor crash — and requires both that it now converges cleanly
// and that two runs of it are byte-identical, so any future
// re-appearance of the bug replays exactly.
func TestChaosHarshReplayStable(t *testing.T) {
	run := func() string {
		c, err := chaos.RunSeed(9, chaos.SoakConfig{Harsh: true})
		if err != nil {
			t.Fatalf("harsh seed 9: %v", err)
		}
		for _, e := range c.Check() {
			t.Errorf("harsh seed 9: %v", e)
		}
		return c.Digest()
	}
	d1, d2 := run(), run()
	if d1 != d2 {
		t.Fatalf("harsh seed 9 diverged across runs:\n--- run 1\n%s\n--- run 2\n%s", d1, d2)
	}
}

// TestChaosSeed5Regression pins the exact recipe that exposed the
// view-agreement violation fixed in the merge-pool rework: seed 5, 6
// members, 80 incidents over a 4s horizon. It must settle and keep
// every virtual-synchrony invariant.
func TestChaosSeed5Regression(t *testing.T) {
	c, err := chaos.RunSeed(5, chaos.SoakConfig{
		Members: 6, Horizon: 4 * time.Second, Incidents: 80,
	})
	if err != nil {
		t.Fatalf("seed 5 recipe: %v", err)
	}
	for _, e := range c.Check() {
		t.Errorf("seed 5 recipe: %v", e)
	}
}
