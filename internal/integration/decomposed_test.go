package integration

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/bms"
	"horus/internal/layers/com"
	"horus/internal/layers/flush"
	"horus/internal/layers/nak"
	"horus/internal/layers/stable"
	"horus/internal/layers/vss"
	"horus/internal/message"
	"horus/internal/netsim"
)

// decomposedStack is FLUSH:STABLE:BMS:NAK:COM — the modular
// replacement for the monolithic MBRSHIP (paper §11: Horus separates
// group communication from membership agreement).
func decomposedStack() core.StackSpec {
	return core.StackSpec{
		flush.New,
		stable.NewWith(stable.WithAckPeriod(30 * time.Millisecond)),
		bms.NewWith(bms.DefaultTimers()...),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

// vssStack is VSS:STABLE:BMS:NAK:COM — the sender-driven alternative.
func vssStack() core.StackSpec {
	return core.StackSpec{
		vss.New,
		stable.NewWith(stable.WithAckPeriod(30 * time.Millisecond)),
		bms.NewWith(bms.DefaultTimers()...),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

// runCrashWorkload drives the shared scenario: 4 members, concurrent
// casting, one member crashes mid-stream. Returns the collectors.
func runCrashWorkload(t *testing.T, mk func() core.StackSpec, seed int64) []*ackCollector {
	t.Helper()
	net := netsim.New(netsim.Config{Seed: seed, DefaultLink: netsim.Link{
		Delay:    time.Millisecond,
		Jitter:   2 * time.Millisecond,
		LossRate: 0.05,
	}})
	eps, groups, cols := buildStackGroup(t, net, 4, mk, true)

	base := net.Now()
	for i := 0; i < 32; i++ {
		i := i
		net.At(base+time.Duration(i)*4*time.Millisecond, func() {
			if i%4 == 3 {
				return // the member that will crash stays quiet
			}
			groups[i%4].Cast(message.New([]byte(fmt.Sprintf("m%d-%d", i%4, i))))
		})
	}
	net.At(base+60*time.Millisecond, func() { net.Crash(eps[3].ID()) })
	net.RunFor(6 * time.Second)

	for _, c := range cols[:3] {
		if len(c.views) == 0 || c.views[len(c.views)-1].Size() != 3 {
			t.Fatalf("%s: survivors did not converge to a 3-member view", c.name)
		}
	}
	return cols
}

// assertIdenticalDeliveries checks that survivors delivered the same
// message sets with no duplicates — virtual synchrony as observed by
// the application.
func assertIdenticalDeliveries(t *testing.T, cols []*ackCollector) {
	t.Helper()
	var ref map[string]bool
	var refName string
	for _, c := range cols[:3] {
		set := map[string]bool{}
		for _, p := range c.casts {
			if set[p] {
				t.Errorf("%s: duplicate delivery %q", c.name, p)
			}
			set[p] = true
		}
		if ref == nil {
			ref, refName = set, c.name
			continue
		}
		for p := range ref {
			if !set[p] {
				t.Errorf("%s missing %q that %s delivered", c.name, p, refName)
			}
		}
		for p := range set {
			if !ref[p] {
				t.Errorf("%s delivered %q that %s did not", c.name, p, refName)
			}
		}
	}
}

// TestDecomposedEqualsMonolithic runs the crash workload over
// BMS+FLUSH and asserts the same virtual-synchrony outcome the
// monolithic MBRSHIP tests assert: identical survivor delivery sets.
func TestDecomposedEqualsMonolithic(t *testing.T) {
	cols := runCrashWorkload(t, decomposedStack, 83)
	assertIdenticalDeliveries(t, cols)
	total := 0
	for _, c := range cols[:3] {
		if len(c.casts) > total {
			total = len(c.casts)
		}
	}
	if total == 0 {
		t.Fatal("no deliveries at all")
	}
}

// TestVSSRecoversSurvivorMessages runs the same workload over VSS.
// Since only surviving members cast, sender-driven recovery must also
// yield identical survivor delivery sets.
func TestVSSRecoversSurvivorMessages(t *testing.T) {
	cols := runCrashWorkload(t, vssStack, 89)
	assertIdenticalDeliveries(t, cols)
}

// TestBMSAloneIsOnlySemiSynchronous demonstrates what BMS does *not*
// give: with auto-consent BMS (no FLUSH above), a message in flight at
// the crash may reach some survivors and not others. We do not assert
// divergence (it is probabilistic); we assert the stack still
// converges on views and delivers FIFO per sender — the P8 contract.
func TestBMSAloneIsOnlySemiSynchronous(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 97, DefaultLink: netsim.Link{
		Delay: time.Millisecond, LossRate: 0.05,
	}})
	mk := func() core.StackSpec {
		return core.StackSpec{
			bms.NewAutoConsent(bms.DefaultTimers()...),
			nak.NewWith(
				nak.WithStatusPeriod(20*time.Millisecond),
				nak.WithNakResend(15*time.Millisecond),
				nak.WithSuspectAfter(6),
			),
			com.New,
		}
	}
	eps, groups, cols := buildStackGroup(t, net, 3, mk, false)
	base := net.Now()
	for i := 0; i < 20; i++ {
		i := i
		net.At(base+time.Duration(i)*4*time.Millisecond, func() {
			groups[i%2].Cast(message.New([]byte(fmt.Sprintf("m%d-%d", i%2, i))))
		})
	}
	net.At(base+40*time.Millisecond, func() { net.Crash(eps[2].ID()) })
	net.RunFor(5 * time.Second)

	for _, c := range cols[:2] {
		if len(c.views) == 0 || c.views[len(c.views)-1].Size() != 2 {
			t.Fatalf("%s: no 2-member view after crash", c.name)
		}
		last := map[byte]int{}
		for _, p := range c.casts {
			var sender, seq int
			if _, err := fmt.Sscanf(p, "m%d-%d", &sender, &seq); err != nil {
				t.Fatalf("%s: bad payload %q", c.name, p)
			}
			if prev, ok := last[byte(sender)]; ok && seq <= prev {
				t.Errorf("%s: per-sender FIFO violated: %v", c.name, c.casts)
			}
			last[byte(sender)] = seq
		}
	}
}
