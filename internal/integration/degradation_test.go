package integration

// Graceful-degradation conformance: the pinned chaos.Degradation
// scenario — an egress squeeze held for the whole window plus a
// transient partition that drives the failure detector's φ through its
// bands — run over the canonical moderate/heavy load pair, on both
// arms. The control arm (no ADAPT) must still exhibit the
// congestion-collapse inversion the squeeze is designed to produce:
// offering more delivers less, and what is delivered goes stale. The
// ADAPT arm must degrade gracefully instead: no inversion, bounded
// per-cast latency, and counter evidence that the detector→ADAPT loop
// (throttle on φ and backlog, shed on overload, multiplicative
// decrease on collapse drops) actually closed. The sim arm is fully
// deterministic and is additionally replayed in-process to prove it.

import (
	"testing"
	"time"

	"horus/internal/chaos"
	"horus/internal/chaosnet"
	"horus/internal/netsim"
)

// Latency bounds for everything the ADAPT arm delivers. The sim bound
// has ~1.5s of headroom over the observed curve; the UDP bound is
// looser because chaosnet runs on the real clock.
const (
	degradeSimLatencyBound = 4 * time.Second
	degradeUDPLatencyBound = 6 * time.Second
)

func TestGracefulDegradationSim(t *testing.T) {
	const seed = 11
	run := func(cfg chaos.DegradeConfig) chaos.DegradeResult {
		return chaos.RunDegradation(cfg)
	}

	// Control arm: same squeeze, same loads, no ADAPT layer. The
	// collapse inversion must be there — if it is not, the scenario has
	// stopped exercising anything and a pass on the ADAPT arm below
	// would be vacuous.
	ctlModCfg, ctlHvyCfg := chaos.DegradePair(false, seed)
	ctlMod, ctlHvy := run(ctlModCfg), run(ctlHvyCfg)
	if !chaos.GoodputInverted(ctlMod, ctlHvy) {
		t.Errorf("control arm did not collapse: moderate %v, heavy %v", ctlMod, ctlHvy)
	}
	if ctlHvy.MaxLatency <= degradeSimLatencyBound {
		t.Errorf("control heavy arm stayed fresh (%v <= %v): squeeze too weak to prove anything",
			ctlHvy.MaxLatency, degradeSimLatencyBound)
	}

	// ADAPT arm: the same scenario must degrade gracefully.
	adModCfg, adHvyCfg := chaos.DegradePair(true, seed)
	adMod, adHvy := run(adModCfg), run(adHvyCfg)
	for _, err := range chaos.CheckGracefulDegradation(adMod, adHvy, degradeSimLatencyBound) {
		t.Errorf("adapt arm: %v", err)
	}
	if adHvy.Shed == 0 {
		t.Errorf("adapt heavy arm never shed under a 6s overload: %v", adHvy)
	}

	// The whole pair is simulated; an identical rerun must reproduce
	// the heavy ADAPT curve bit for bit, counters included.
	if again := run(adHvyCfg); again != adHvy {
		t.Errorf("degradation run diverged across replays:\n%v\n%v", adHvy, again)
	}
}

func TestGracefulDegradationUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("UDP degradation pair runs on the real clock (~20s)")
	}
	// Only the ADAPT invariants are asserted on UDP: the control arm's
	// exact collapse point is timing-dependent on a real transport, and
	// it is already pinned by the deterministic sim arm above.
	link := netsim.Link{Delay: time.Millisecond}
	modCfg, hvyCfg := chaos.DegradePair(true, 11)
	modCfg.Fabric = chaosnet.New(chaosnet.Config{Seed: 11, DefaultLink: link})
	mod := chaos.RunDegradation(modCfg)
	hvyCfg.Fabric = chaosnet.New(chaosnet.Config{Seed: 11, DefaultLink: link})
	hvy := chaos.RunDegradation(hvyCfg)
	for _, err := range chaos.CheckGracefulDegradation(mod, hvy, degradeUDPLatencyBound) {
		t.Errorf("adapt arm over UDP: %v", err)
	}
}
