package integration

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/merge"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

// primaryStack runs MBRSHIP with the Isis-style primary-partition
// restriction over a 5-member group (paper §9).
func primaryStack(total int) func() core.StackSpec {
	return func() core.StackSpec {
		return core.StackSpec{
			merge.NewWith(merge.WithBeaconPeriod(100 * time.Millisecond)),
			mbrship.NewWith(
				mbrship.WithGossipPeriod(40*time.Millisecond),
				mbrship.WithFlushTimeout(500*time.Millisecond),
				mbrship.WithPrimaryPartition(total),
			),
			nak.NewWith(
				nak.WithStatusPeriod(20*time.Millisecond),
				nak.WithNakResend(15*time.Millisecond),
				nak.WithSuspectAfter(6),
			),
			com.New,
		}
	}
}

// primCollector also tracks the Primary flag of views.
type primCollector struct {
	*vsCollector
	primary map[uint64]bool
}

func TestPrimaryPartitionRestrictsProgress(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 171, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	const n = 5
	eps := make([]*core.Endpoint, n)
	groups := make([]*core.Group, n)
	cols := make([]*primCollector, n)
	for i := 0; i < n; i++ {
		site := fmt.Sprintf("%c", 'a'+i)
		cols[i] = &primCollector{vsCollector: newVSCollector(site), primary: map[uint64]bool{}}
		eps[i] = net.NewEndpoint(site)
		inner := cols[i].handler()
		g, err := eps[i].Join("grp", primaryStack(n)(), func(ev *core.Event) {
			if ev.Type == core.UView {
				cols[i].primary[ev.View.ID.Seq] = ev.Primary
			}
			inner(ev)
		})
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}
	// MERGE forms the full group automatically.
	net.RunFor(5 * time.Second)
	for _, c := range cols {
		v := c.lastView()
		if v == nil || v.Size() != n {
			t.Fatalf("%s: formation failed: %v", c.name, v)
		}
		if !c.primary[v.ID.Seq] {
			t.Fatalf("%s: full view not marked primary", c.name)
		}
	}

	// Partition 3 | 2: the majority side keeps working, the minority
	// side installs non-primary views and defers its casts.
	net.Partition(
		[]core.EndpointID{eps[0].ID(), eps[1].ID(), eps[2].ID()},
		[]core.EndpointID{eps[3].ID(), eps[4].ID()},
	)
	net.RunFor(3 * time.Second)

	for i, c := range cols {
		v := c.lastView()
		wantSize := 3
		wantPrimary := true
		if i >= 3 {
			wantSize = 2
			wantPrimary = false
		}
		if v == nil || v.Size() != wantSize {
			t.Fatalf("%s: view %v under partition, want %d members", c.name, v, wantSize)
		}
		if c.primary[v.ID.Seq] != wantPrimary {
			t.Errorf("%s: Primary=%v, want %v", c.name, c.primary[v.ID.Seq], wantPrimary)
		}
	}

	// Majority progresses; minority's cast stays deferred.
	majSeq := cols[0].lastView().ID.Seq
	net.At(net.Now(), func() {
		groups[0].Cast(message.New([]byte("majority-update")))
		groups[3].Cast(message.New([]byte("minority-update")))
	})
	net.RunFor(time.Second)
	for _, c := range cols[:3] {
		got := c.casts[majSeq]
		if len(got) != 1 || got[0] != "majority-update" {
			t.Errorf("%s: majority deliveries %v", c.name, got)
		}
	}
	for _, c := range cols[3:] {
		for seq, msgs := range c.casts {
			for _, p := range msgs {
				if p == "minority-update" {
					t.Errorf("%s: minority made progress (view %d): %v", c.name, seq, msgs)
				}
			}
		}
	}

	// Healing restores a primary view everywhere, and the deferred
	// minority cast finally goes out.
	net.Heal()
	net.RunFor(8 * time.Second)
	for _, c := range cols {
		v := c.lastView()
		if v == nil || v.Size() != n {
			t.Fatalf("%s: heal failed: %v", c.name, v)
		}
		if !c.primary[v.ID.Seq] {
			t.Errorf("%s: healed view not primary", c.name)
		}
	}
	finalSeq := cols[0].lastView().ID.Seq
	for _, c := range cols {
		got := c.casts[finalSeq]
		found := false
		for _, p := range got {
			if p == "minority-update" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: deferred minority cast never delivered after heal: %v", c.name, got)
		}
	}
}
