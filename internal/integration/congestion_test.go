package integration

// Congestion-collapse conformance, sim-only and fully deterministic:
// the per-host egress budget (netsim.Host) must produce true collapse
// — goodput falling as offered load rises, not merely delay — and the
// full chaos stack must survive a squeeze that starves its own
// retransmission traffic.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"horus/internal/chaos"
	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

// TestChaosCongestionRegression pins the recipe that exercises the
// egress-budget machinery against the full MBRSHIP:HBEAT:NAK:COM
// stack: one member's total outgoing budget is squeezed far below the
// aggregate demand of its workload casts, heartbeats, and NAK
// retransmissions, with a queue bound tight enough that the overflow
// drops. The cluster must still reach view agreement after the squeeze
// lifts, with every virtual-synchrony invariant intact — congestion
// collapse at one host is load, not Byzantine behaviour. The whole run
// is simulated, so it must replay identically (-count=2 in CI).
func TestChaosCongestionRegression(t *testing.T) {
	run := func() (netsim.Stats, []error) {
		link := netsim.Link{Delay: time.Millisecond, Jitter: 2 * time.Millisecond, LossRate: 0.02}
		net := netsim.New(netsim.Config{Seed: 17, DefaultLink: link})
		c := chaos.NewCluster(chaos.Config{
			Seed: 17, Members: 4, Link: link, Fabric: simStatsFabric{net},
		})
		defer c.Close()
		if err := c.Form(6 * time.Second); err != nil {
			t.Fatalf("formation: %v", err)
		}
		// 400 B/s shared across three peers is well under one member's
		// demand (each cast alone fans out ~3 wire copies every 70ms);
		// a 100-byte queue bound turns the excess into collapse drops.
		sched := chaos.EgressSqueeze(500*time.Millisecond, 1200*time.Millisecond, 1, 400, 100)
		c.Apply(sched)
		c.Run(sched.End() + 500*time.Millisecond)
		if err := c.Settle(10 * time.Second); err != nil {
			t.Fatalf("settle after egress squeeze: %v", err)
		}
		return net.Stats(), c.Check()
	}

	st, errs := run()
	for _, e := range errs {
		t.Errorf("invariant: %v", e)
	}
	if st.Congested == 0 {
		t.Error("squeeze never congested the host bucket")
	}
	if st.CollapseDropped == 0 {
		t.Error("squeeze never overflowed the bounded egress queue")
	}

	st2, errs2 := run()
	if st != st2 || len(errs) != len(errs2) {
		t.Errorf("congestion regression diverged across runs:\n%+v\n%+v", st, st2)
	}
}

// TestEgressGoodputCollapse demonstrates the collapse curve itself:
// over a reliable-FIFO stack (NAK:COM) whose sender is capped by a
// tight egress budget, pushing the offered load past the budget makes
// goodput — casts delivered in order within a fixed window — go DOWN,
// not up. The bounded queue drops frames, every hole stalls FIFO
// delivery until a retransmission fills it, and the retransmissions
// compete with fresh casts for the same budget; past saturation the
// extra offered load only buys more drops. Delay alone (an unbounded
// queue) could never produce this inversion.
func TestEgressGoodputCollapse(t *testing.T) {
	// goodput offers `n` 120-byte casts at one per `gap`, then reports
	// how many the receiver delivered within the fixed 8s window.
	goodput := func(n int, gap time.Duration) (delivered int, st netsim.Stats) {
		net := netsim.New(netsim.Config{Seed: 23, DefaultLink: netsim.Link{
			Delay: time.Millisecond,
		}})
		spec := core.StackSpec{nak.New, com.New}
		ga, _, _, cb := staticPair(t, net, spec)
		sender := ga.Endpoint().ID()
		// 6 KB/s against 120-byte casts plus protocol framing: a 50ms
		// send gap undershoots the budget, a 10ms gap swamps it.
		net.SetHost(sender, netsim.Host{EgressBudget: 6000, EgressQueue: 600})
		for i := 0; i < n; i++ {
			i := i
			net.At(time.Duration(i)*gap, func() {
				ga.Cast(message.New([]byte(payload120(i))))
			})
		}
		net.RunUntil(8 * time.Second)
		// Goodput is the in-order prefix: casts past the first hole are
		// buffered by NAK, not delivered, so they don't count.
		for i, got := range cb.casts {
			if got != payload120(i) {
				break
			}
			delivered++
		}
		return delivered, net.Stats()
	}

	// Moderate load: 20 casts/s for 7 of the 8 seconds stays inside
	// the budget — everything offered is delivered, nothing drops.
	moderate, mst := goodput(140, 50*time.Millisecond)
	// Heavy load: 100 casts/s swamps the same budget. MORE casts are
	// offered than at moderate load, in less time, yet FEWER must come
	// out the far end in order — the collapse inversion.
	heavy, hst := goodput(300, 10*time.Millisecond)

	if mst.CollapseDropped != 0 {
		t.Errorf("moderate load inside the budget dropped %d frames", mst.CollapseDropped)
	}
	if moderate != 140 {
		t.Errorf("moderate load delivered %d/140 casts in the window", moderate)
	}
	if hst.CollapseDropped == 0 {
		t.Error("heavy load never overflowed the egress queue — no collapse exercised")
	}
	if heavy >= moderate {
		t.Errorf("no collapse: offering 5x the load delivered %d casts vs %d at moderate load",
			heavy, moderate)
	}
}

// payload120 is a 120-byte tagged cast body, big enough that a handful
// of casts saturates the test budget.
func payload120(i int) string {
	head := fmt.Sprintf("cast%03d|", i)
	return head + strings.Repeat("x", 120-len(head))
}
