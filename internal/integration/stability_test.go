package integration

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/causal"
	"horus/internal/layers/com"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/layers/pinwheel"
	"horus/internal/layers/safe"
	"horus/internal/layers/stable"
	"horus/internal/layers/tstamp"
	"horus/internal/message"
	"horus/internal/netsim"
)

// ackCollector acknowledges every delivery immediately and tracks
// stability reports.
type ackCollector struct {
	name       string
	group      *core.Group
	casts      []string
	stables    int
	lastMatrix *core.StabilityMatrix
	views      []*core.View
	autoAck    bool
}

func (c *ackCollector) handler() core.Handler {
	return func(ev *core.Event) {
		switch ev.Type {
		case core.UCast:
			c.casts = append(c.casts, string(ev.Msg.Body()))
			if c.autoAck && !ev.ID.Origin.IsZero() {
				c.group.Ack(ev.ID)
			}
		case core.UStable:
			c.stables++
			c.lastMatrix = ev.Stability
		case core.UView:
			c.views = append(c.views, ev.View)
		}
	}
}

// buildStackGroup forms an n-member group over an arbitrary stack.
func buildStackGroup(t *testing.T, net *netsim.Network, n int, mk func() core.StackSpec, auto bool) ([]*core.Endpoint, []*core.Group, []*ackCollector) {
	t.Helper()
	eps := make([]*core.Endpoint, n)
	groups := make([]*core.Group, n)
	cols := make([]*ackCollector, n)
	for i := 0; i < n; i++ {
		site := fmt.Sprintf("%c", 'a'+i)
		eps[i] = net.NewEndpoint(site)
		cols[i] = &ackCollector{name: site, autoAck: auto}
		g, err := eps[i].Join("grp", mk(), cols[i].handler())
		if err != nil {
			t.Fatal(err)
		}
		cols[i].group = g
		groups[i] = g
	}
	for i := 1; i < n; i++ {
		i := i
		var tryMerge func()
		tryMerge = func() {
			if len(cols[i].views) > 0 && cols[i].views[len(cols[i].views)-1].Size() >= n {
				return
			}
			groups[i].Merge(eps[0].ID())
			net.At(net.Now()+150*time.Millisecond, tryMerge)
		}
		net.At(net.Now()+time.Duration(i)*50*time.Millisecond, tryMerge)
	}
	net.RunFor(time.Duration(n)*300*time.Millisecond + 2*time.Second)
	for i, c := range cols {
		if len(c.views) == 0 || c.views[len(c.views)-1].Size() != n {
			t.Fatalf("member %d: group formation failed", i)
		}
	}
	return eps, groups, cols
}

func stableStack() core.StackSpec {
	return core.StackSpec{
		stable.NewWith(stable.WithAckPeriod(30 * time.Millisecond)),
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

func pinwheelStack() core.StackSpec {
	return core.StackSpec{
		pinwheel.NewWith(pinwheel.WithHold(20 * time.Millisecond)),
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

// testStabilityConvergence drives either stability provider and
// asserts the matrix converges to full stability after acks.
func testStabilityConvergence(t *testing.T, mk func() core.StackSpec) {
	t.Helper()
	net := netsim.New(netsim.Config{Seed: 61, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	eps, groups, cols := buildStackGroup(t, net, 3, mk, true)

	base := net.Now()
	const n = 12
	for i := 0; i < n; i++ {
		i := i
		net.At(base+time.Duration(i)*5*time.Millisecond, func() {
			groups[i%3].Cast(message.New([]byte(fmt.Sprintf("m%d", i))))
		})
	}
	net.RunFor(3 * time.Second)

	for i, c := range cols {
		if len(c.casts) != n {
			t.Errorf("%s: delivered %d, want %d", c.name, len(c.casts), n)
		}
		if c.stables == 0 {
			t.Fatalf("%s: no STABLE upcalls", c.name)
		}
		m := c.lastMatrix
		if m == nil {
			t.Fatalf("%s: no stability matrix", c.name)
		}
		// Every member cast n/3 messages; with universal acking each
		// origin's messages must be fully stable everywhere.
		for _, ep := range eps {
			if got := m.MinStable(ep.ID()); got != uint64(n/3) {
				t.Errorf("%s: MinStable(%v) = %d, want %d (matrix %v)",
					c.name, ep.ID(), got, n/3, m)
			}
		}
		_ = i
	}
}

func TestStableMatrixConverges(t *testing.T)   { testStabilityConvergence(t, stableStack) }
func TestPinwheelMatrixConverges(t *testing.T) { testStabilityConvergence(t, pinwheelStack) }

// TestStabilityIsEndToEnd shows the paper's §9 point: stability tracks
// the application's acks, not receipt. A member that never acks keeps
// everyone's messages unstable.
func TestStabilityIsEndToEnd(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 67, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	eps, groups, cols := buildStackGroup(t, net, 3, stableStack, true)
	cols[2].autoAck = false // c receives but never processes

	base := net.Now()
	for i := 0; i < 6; i++ {
		i := i
		net.At(base+time.Duration(i)*5*time.Millisecond, func() {
			groups[0].Cast(message.New([]byte(fmt.Sprintf("m%d", i))))
		})
	}
	net.RunFor(2 * time.Second)

	m := cols[0].lastMatrix
	if m == nil {
		t.Fatal("a: no stability matrix")
	}
	if got := m.MinStable(eps[0].ID()); got != 0 {
		t.Errorf("MinStable = %d with a non-acking member, want 0", got)
	}
	// The two acking members have registered their processing.
	if got := m.Get(eps[0].ID(), eps[1].ID()); got != 6 {
		t.Errorf("acks from b = %d, want 6", got)
	}
	if got := m.Get(eps[0].ID(), eps[2].ID()); got != 0 {
		t.Errorf("acks from silent c = %d, want 0", got)
	}
}

func safeStack() core.StackSpec {
	spec := core.StackSpec{safe.New}
	return append(spec, stableStack()...)
}

// TestSafeDeliveryWaitsForAllMembers cuts one member off and checks
// that SAFE withholds delivery until the partition heals (safe
// delivery = everyone has the message).
func TestSafeDeliveryWaitsForAllMembers(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 71, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	eps, groups, cols := buildStackGroup(t, net, 3, safeStack, false)

	// Delay all traffic to/from c (slow, but under the failure
	// suspicion window of 6 x 20ms, so no view change fires).
	slow := netsim.Link{Delay: 80 * time.Millisecond}
	net.SetLink(eps[0].ID(), eps[2].ID(), slow)
	net.SetLink(eps[1].ID(), eps[2].ID(), slow)

	base := net.Now()
	net.At(base, func() { groups[0].Cast(message.New([]byte("S"))) })

	// Shortly after the cast, a and b have the message but c does not:
	// nobody may deliver yet.
	net.RunFor(50 * time.Millisecond)
	for _, c := range cols[:2] {
		if len(c.casts) != 0 {
			t.Errorf("%s: delivered %v before the message was everywhere (safe delivery violated)", c.name, c.casts)
		}
	}

	// Once c's slow copy lands and its ack propagates, everyone
	// delivers.
	net.RunFor(2 * time.Second)
	for _, c := range cols {
		if len(c.casts) != 1 || c.casts[0] != "S" {
			t.Errorf("%s: final deliveries %v, want [S]", c.name, c.casts)
		}
	}
}

func causalStack() core.StackSpec {
	return core.StackSpec{
		causal.New,
		tstamp.New,
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

// TestCausalOrderAcrossMembers creates a causal chain a→b→c with the
// network arranged so the direct copy of the first message reaches c
// AFTER the reply it caused. CAUSAL must hold the reply until its
// cause arrives.
func TestCausalOrderAcrossMembers(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 73, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	eps, groups, cols := buildStackGroup(t, net, 3, causalStack, false)

	// a's messages crawl to c; b's sprint.
	net.SetLink(eps[0].ID(), eps[2].ID(), netsim.Link{Delay: 100 * time.Millisecond})

	// b replies to a's message as soon as it sees it (a fast poll
	// stands in for a reactive handler).
	var replied bool
	base := net.Now()
	net.At(base, func() { groups[0].Cast(message.New([]byte("cause"))) })
	var poll func()
	poll = func() {
		if !replied {
			for _, p := range cols[1].casts {
				if p == "cause" {
					replied = true
					groups[1].Cast(message.New([]byte("effect")))
					return
				}
			}
			net.At(net.Now()+time.Millisecond, poll)
		}
	}
	net.At(base+time.Millisecond, poll)
	net.RunFor(3 * time.Second)

	for _, c := range cols {
		var gotCause, gotEffect = -1, -1
		for i, p := range c.casts {
			switch p {
			case "cause":
				gotCause = i
			case "effect":
				gotEffect = i
			}
		}
		if gotCause == -1 || gotEffect == -1 {
			t.Fatalf("%s: missing deliveries: %v", c.name, c.casts)
		}
		if gotEffect < gotCause {
			t.Errorf("%s: effect delivered before cause: %v (causal order violated)", c.name, c.casts)
		}
	}
	// Sanity: the slow link really would have reordered without CAUSAL
	// (the direct copy of "cause" takes 100ms to c; "effect" ~2ms).
	cl := groups[2].Focus("CAUSAL").(*causal.Causal)
	if cl.Stats().Buffered == 0 {
		t.Error("c never buffered a message; the causal path was not exercised")
	}
}
