package integration

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/message"
	"horus/internal/netsim"
)

// TestLeaveDuringFlush has a member leave politely while a crash flush
// is in progress: the machinery must fold the departure into the view
// change(s) and converge.
func TestLeaveDuringFlush(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 443, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	eps, groups, cols := buildGroup(t, net, 4)

	base := net.Now()
	net.At(base, func() { net.Crash(eps[3].ID()) })
	// While d's crash is being detected/flushed, c leaves voluntarily.
	net.At(base+140*time.Millisecond, func() { groups[2].Leave() })
	net.RunFor(8 * time.Second)

	for _, c := range cols[:2] {
		v := c.lastView()
		if v == nil || v.Size() != 2 {
			t.Fatalf("%s: final view %v, want {a,b}", c.name, v)
		}
		if v.Contains(eps[2].ID()) || v.Contains(eps[3].ID()) {
			t.Fatalf("%s: departed/crashed member still present: %v", c.name, v)
		}
	}
	if cols[0].lastView().ID != cols[1].lastView().ID {
		t.Fatalf("survivors disagree: %v vs %v", cols[0].lastView(), cols[1].lastView())
	}
	// Group still works.
	net.At(net.Now(), func() { groups[0].Cast(message.New([]byte("onward"))) })
	net.RunFor(time.Second)
	for _, c := range cols[:2] {
		got := c.casts[c.lastView().ID.Seq]
		if len(got) != 1 || got[0] != "onward" {
			t.Errorf("%s: post-change deliveries %v", c.name, got)
		}
	}
}

// TestDestroyDuringTraffic tears an endpoint down in mid-stream; the
// others must treat it as a crash and move on, and the destroyed
// endpoint's handler must see DESTROY then EXIT.
func TestDestroyDuringTraffic(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 449, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	eps, groups, cols := buildGroup(t, net, 3)

	base := net.Now()
	for i := 0; i < 10; i++ {
		i := i
		net.At(base+time.Duration(i)*5*time.Millisecond, func() {
			groups[i%3].Cast(message.New([]byte(fmt.Sprintf("m%d", i))))
		})
	}
	net.At(base+25*time.Millisecond, func() { eps[2].Destroy() })
	net.RunFor(8 * time.Second)

	for _, c := range cols[:2] {
		v := c.lastView()
		if v == nil || v.Size() != 2 {
			t.Fatalf("%s: final view %v after destroy, want 2", c.name, v)
		}
	}
	// The destroyed member's handler sees DESTROY and EXIT (checked in
	// core's unit tests); here we require that survivors converge.
}
