package integration

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/frag"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/layers/total"
	"horus/internal/message"
	"horus/internal/netsim"
)

// totalStack is the paper's §7 example stack:
// TOTAL:MBRSHIP:FRAG:NAK:COM (ATM is played by netsim).
func totalStack() core.StackSpec {
	return core.StackSpec{
		total.NewWith(total.WithRequestRetry(50 * time.Millisecond)),
		mbrship.NewWith(
			mbrship.WithGossipPeriod(40*time.Millisecond),
			mbrship.WithFlushTimeout(500*time.Millisecond),
		),
		frag.NewWithSize(512),
		nak.NewWith(
			nak.WithStatusPeriod(20*time.Millisecond),
			nak.WithNakResend(15*time.Millisecond),
			nak.WithSuspectAfter(6),
		),
		com.New,
	}
}

// buildTotalGroup forms an n-member group over the §7 stack.
func buildTotalGroup(t *testing.T, net *netsim.Network, n int) ([]*core.Endpoint, []*core.Group, []*vsCollector) {
	t.Helper()
	eps := make([]*core.Endpoint, n)
	groups := make([]*core.Group, n)
	cols := make([]*vsCollector, n)
	for i := 0; i < n; i++ {
		site := fmt.Sprintf("%c", 'a'+i)
		eps[i] = net.NewEndpoint(site)
		cols[i] = newVSCollector(site)
		g, err := eps[i].Join("grp", totalStack(), cols[i].handler())
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}
	for i := 1; i < n; i++ {
		i := i
		var tryMerge func()
		tryMerge = func() {
			v := cols[i].lastView()
			if v != nil && v.Size() >= n {
				return
			}
			groups[i].Merge(eps[0].ID())
			net.At(net.Now()+150*time.Millisecond, tryMerge)
		}
		net.At(net.Now()+time.Duration(i)*50*time.Millisecond, tryMerge)
	}
	net.RunFor(time.Duration(n)*300*time.Millisecond + 2*time.Second)
	for i, c := range cols {
		v := c.lastView()
		if v == nil || v.Size() != n {
			t.Fatalf("member %d: view %v after formation, want %d members", i, v, n)
		}
	}
	return eps, groups, cols
}

// allCasts flattens a collector's deliveries across views in arrival
// order.
func allCasts(c *vsCollector) []string {
	var out []string
	for _, v := range c.views {
		out = append(out, c.casts[v.ID.Seq]...)
	}
	return out
}

func TestTotalOrderConcurrentSenders(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 41, DefaultLink: netsim.Link{
		Delay:    time.Millisecond,
		Jitter:   4 * time.Millisecond,
		LossRate: 0.05,
	}})
	_, groups, cols := buildTotalGroup(t, net, 3)

	base := net.Now()
	const n = 45
	for i := 0; i < n; i++ {
		i := i
		net.At(base+time.Duration(i)*3*time.Millisecond, func() {
			groups[i%3].Cast(message.New([]byte(fmt.Sprintf("m%d-%d", i%3, i))))
		})
	}
	net.RunFor(5 * time.Second)

	ref := allCasts(cols[0])
	if len(ref) != n {
		t.Fatalf("member 0 delivered %d messages, want %d: %v", len(ref), n, ref)
	}
	for _, c := range cols[1:] {
		got := allCasts(c)
		if len(got) != len(ref) {
			t.Fatalf("%s delivered %d messages, member a delivered %d", c.name, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: position %d = %q, member a has %q (total order violated)\n a: %v\n %s: %v",
					c.name, i, got[i], ref[i], ref, c.name, got)
			}
		}
	}
}

// TestTotalOrderAcrossViewChange crashes the initial token holder
// (the lowest-ranked member) mid-stream. Liveness must come back via
// the view change, and the survivors' delivery sequences must stay
// identical — the paper's argument for why TOTAL needs no failure
// detector of its own.
func TestTotalOrderAcrossViewChange(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 43, DefaultLink: netsim.Link{
		Delay:  time.Millisecond,
		Jitter: 2 * time.Millisecond,
	}})
	eps, groups, cols := buildTotalGroup(t, net, 4)

	holderID := cols[0].lastView().Members[0]
	holderIdx := -1
	for i, ep := range eps {
		if ep.ID() == holderID {
			holderIdx = i
		}
	}
	if holderIdx == -1 {
		t.Fatal("initial holder not found")
	}

	base := net.Now()
	const n = 40
	for i := 0; i < n; i++ {
		i := i
		net.At(base+time.Duration(i)*4*time.Millisecond, func() {
			if i%4 == holderIdx {
				return // the crashed member does not cast
			}
			groups[i%4].Cast(message.New([]byte(fmt.Sprintf("m%d-%d", i%4, i))))
		})
	}
	net.At(base+60*time.Millisecond, func() { net.Crash(holderID) })
	net.RunFor(6 * time.Second)

	var ref []string
	var refName string
	for i, c := range cols {
		if i == holderIdx {
			continue
		}
		v := c.lastView()
		if v == nil || v.Size() != 3 {
			t.Fatalf("%s: final view %v, want 3 survivors", c.name, v)
		}
		got := allCasts(c)
		// Every survivor's casts must arrive: 30 messages total.
		if len(got) != 30 {
			t.Errorf("%s: delivered %d messages, want 30: %v", c.name, len(got), got)
		}
		seen := map[string]bool{}
		for _, p := range got {
			if seen[p] {
				t.Errorf("%s: duplicate delivery %q", c.name, p)
			}
			seen[p] = true
		}
		if ref == nil {
			ref, refName = got, c.name
			continue
		}
		for j := 0; j < len(ref) && j < len(got); j++ {
			if got[j] != ref[j] {
				t.Fatalf("%s: position %d = %q, %s has %q (total order violated across view change)",
					c.name, j, got[j], refName, ref[j])
			}
		}
	}
}

// TestTokenParksWithSoleSender checks the oracle's happy case: with a
// single active sender the token stays put and no per-message token
// traffic is needed (the paper's "comes close in many cases").
func TestTokenParksWithSoleSender(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 47, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	_, groups, cols := buildTotalGroup(t, net, 3)

	// Sender = the current token holder's group.
	holderID := cols[0].lastView().Members[0]
	var hg *core.Group
	for i, g := range groups {
		if g.Endpoint().ID() == holderID {
			hg = groups[i]
		}
	}
	if hg == nil {
		t.Fatal("holder group not found")
	}
	base := net.Now()
	for i := 0; i < 20; i++ {
		i := i
		net.At(base+time.Duration(i)*2*time.Millisecond, func() {
			hg.Cast(message.New([]byte(fmt.Sprintf("m%d", i))))
		})
	}
	net.RunFor(2 * time.Second)

	tl := hg.Focus("TOTAL").(*total.Total)
	if !tl.Holder() {
		t.Error("sole sender lost the token")
	}
	if ops := tl.Stats().TokenOps; ops != 0 {
		t.Errorf("sole sender passed the token %d times, want 0", ops)
	}
	for _, c := range cols {
		if got := len(allCasts(c)); got != 20 {
			t.Errorf("%s delivered %d messages, want 20", c.name, got)
		}
	}
}
