package integration

import (
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/netsim"
)

// TestCoordinatorCrashDuringFlush kills the flush coordinator (the
// oldest member) at the same instant as another member, so the flush
// it starts can never finish: the flush-timeout watchdog must promote
// the next-oldest survivor, which restarts the round and installs the
// view (paper §5: "if processes fail during the process, a new round
// of the flush protocol may start up immediately").
func TestCoordinatorCrashDuringFlush(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 211, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	eps, groups, cols := buildGroup(t, net, 4)

	// Some traffic so there is unstable state to flush.
	base := net.Now()
	for i := 0; i < 8; i++ {
		i := i
		net.At(base+time.Duration(i)*4*time.Millisecond, func() {
			groups[i%4].Cast(message.New([]byte{byte('x'), byte(i)}))
		})
	}
	// d crashes; then, just as the coordinator (a, the oldest) has
	// started flushing, a crashes too.
	net.At(base+50*time.Millisecond, func() { net.Crash(eps[3].ID()) })
	net.At(base+200*time.Millisecond, func() { net.Crash(eps[0].ID()) })
	net.RunFor(8 * time.Second)

	for _, c := range []*vsCollector{cols[1], cols[2]} {
		v := c.lastView()
		if v == nil || v.Size() != 2 {
			t.Fatalf("%s: final view %v, want the 2 survivors", c.name, v)
		}
		if v.Contains(eps[0].ID()) || v.Contains(eps[3].ID()) {
			t.Fatalf("%s: dead member still in view %v", c.name, v)
		}
	}
	if cols[1].lastView().ID != cols[2].lastView().ID {
		t.Fatalf("survivors disagree: %v vs %v", cols[1].lastView(), cols[2].lastView())
	}
	// The promoted coordinator is the next-oldest survivor, b.
	if coord := cols[1].lastView().ID.Coord; coord != eps[1].ID() {
		t.Errorf("new view coordinated by %v, want b", coord)
	}
	assertIdenticalDeliveriesVS(t, cols[1], cols[2])
}

// assertIdenticalDeliveriesVS compares two collectors' per-view sets.
func assertIdenticalDeliveriesVS(t *testing.T, a, b *vsCollector) {
	t.Helper()
	for seq, msgs := range a.casts {
		inB := false
		for _, v := range b.views {
			if v.ID.Seq == seq {
				inB = true
			}
		}
		if !inB {
			continue
		}
		set := map[string]bool{}
		for _, p := range b.casts[seq] {
			set[p] = true
		}
		for _, p := range msgs {
			if !set[p] {
				t.Errorf("view %d: %s delivered %q, %s did not", seq, a.name, p, b.name)
			}
		}
	}
}

// TestMergeTargetDies covers the requester's give-up path: B keeps
// retrying a merge toward a dead contact, exhausts its attempts, and
// reports MERGE_DENIED ("merge target unresponsive") — after which it
// is still fully functional and can merge elsewhere.
func TestMergeTargetDies(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 223, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	epA := net.NewEndpoint("a")
	epB := net.NewEndpoint("b")
	epC := net.NewEndpoint("c")
	ca, cb, cc := newVSCollector("a"), newVSCollector("b"), newVSCollector("c")
	var denied []string
	_, err := epA.Join("grp", vsStack(), ca.handler())
	if err != nil {
		t.Fatal(err)
	}
	gb, err := epB.Join("grp", vsStack(), func(ev *core.Event) {
		if ev.Type == core.UMergeDenied {
			denied = append(denied, ev.Reason)
		}
		cb.handler()(ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	gc, err := epC.Join("grp", vsStack(), cc.handler())
	if err != nil {
		t.Fatal(err)
	}

	// a dies before b's merge can complete.
	net.At(10*time.Millisecond, func() { net.Crash(epA.ID()) })
	net.At(20*time.Millisecond, func() { gb.Merge(epA.ID()) })
	net.RunFor(6 * time.Second)

	if len(denied) == 0 {
		t.Fatal("no MERGE_DENIED after the target died")
	}
	// b is alive and can still merge with c.
	net.At(net.Now(), func() { gc.Merge(epB.ID()) })
	net.RunFor(2 * time.Second)
	if v := cb.lastView(); v == nil || v.Size() != 2 || !v.Contains(epC.ID()) {
		t.Fatalf("b could not merge after the failed attempt: %v", cb.lastView())
	}
}

// TestSymmetricSimultaneousMerge drives the exact tiebreak: two
// singleton coordinators request merges into each other in the same
// instant. The older must absorb the younger.
func TestSymmetricSimultaneousMerge(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 227, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	epA := net.NewEndpoint("a")
	epB := net.NewEndpoint("b")
	ca, cb := newVSCollector("a"), newVSCollector("b")
	ga, err := epA.Join("grp", vsStack(), ca.handler())
	if err != nil {
		t.Fatal(err)
	}
	gb, err := epB.Join("grp", vsStack(), cb.handler())
	if err != nil {
		t.Fatal(err)
	}
	net.At(10*time.Millisecond, func() {
		ga.Merge(epB.ID())
		gb.Merge(epA.ID())
	})
	net.RunFor(4 * time.Second)

	va, vb := ca.lastView(), cb.lastView()
	if va == nil || vb == nil || va.Size() != 2 || vb.Size() != 2 || va.ID != vb.ID {
		t.Fatalf("symmetric merge failed: a=%v b=%v", va, vb)
	}
	if va.ID.Coord != epA.ID() {
		t.Errorf("merged view coordinated by %v, want the older endpoint a", va.ID.Coord)
	}
}
