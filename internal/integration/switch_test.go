package integration

// Pinned SWITCH reconfiguration scenarios, asserted on both fabrics.
//
// Two stories anchor the tentpole guarantees:
//
//   - A clean FIFO→TOTAL upgrade: one KindSwitch action on a calm
//     cluster must commit epoch 1 at every member, and every cast
//     delivered after RESUME must be totally ordered (the checker is
//     only satisfiable if ordering actually tightened).
//
//   - A switch aborted by a mid-quiesce partition: the partition lands
//     before the proposal, so quiesce confirmations from the far side
//     can never arrive; the attempt must abort, roll back to the old
//     segment with zero lost or duplicated casts, and the old stack
//     must keep delivering — and passing every virtual-synchrony
//     invariant — afterwards.
//
// On the simulated fabric both scenarios additionally pin determinism:
// two runs of the same seed must produce byte-identical digests, so a
// future regression replays exactly. The UDP twins run the same typed
// schedules at wall-clock speed (no digest equality there — kernel
// timing is not seeded) and are skipped under -short.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"horus/internal/chaos"
	"horus/internal/chaosnet"
	"horus/internal/netsim"
)

// switchCalmLink is lossless: the abort scenario asserts *zero* lost
// casts, which is only a fair demand when the only faults in the run
// are the scheduled partition and the switch itself.
var switchCalmLink = netsim.Link{Delay: time.Millisecond, Jitter: 2 * time.Millisecond}

// upgradeSchedule is the pinned FIFO→TOTAL story: one switch request,
// issued from slot 0 half a second in.
func upgradeSchedule() chaos.Schedule {
	return chaos.Schedule{
		{At: 500 * time.Millisecond, Kind: chaos.KindSwitch, A: 0, Target: "TOTAL",
			Note: "pinned upgrade"},
	}
}

// abortSchedule partitions the cluster 2|2 just before slot 0 asks for
// the upgrade: the PROPOSE reaches only slot 0's side, the quiesce can
// never gather confirmations from slots 2 and 3, and the membership
// view change (or the quiesce deadline, whichever fires first) must
// abort the attempt. The heal arrives after the abort is forced.
func abortSchedule() chaos.Schedule {
	return chaos.Schedule{
		{At: 500 * time.Millisecond, Kind: chaos.KindPartition,
			Sides: [][]int{{0, 1}, {2, 3}}, Note: "cut mid-quiesce"},
		{At: 510 * time.Millisecond, Kind: chaos.KindSwitch, A: 0, Target: "TOTAL",
			Note: "doomed upgrade"},
		{At: 1500 * time.Millisecond, Kind: chaos.KindHeal, Note: "heal"},
	}
}

// runSwitchScenario forms a 4-member cluster on the SWITCH stack over
// the given fabric (nil = simulated), applies the schedule, lets the
// run settle back to one full view, and returns the quiescent cluster.
func runSwitchScenario(t *testing.T, seed int64, fab chaos.Fabric, sched chaos.Schedule,
	formBy, settleBy time.Duration) *chaos.Cluster {
	t.Helper()
	c := chaos.NewCluster(chaos.Config{
		Seed: seed, Members: 4, Link: switchCalmLink,
		Stack: chaos.SwitchStack, Fabric: fab,
	})
	if err := c.Form(formBy); err != nil {
		c.Close()
		t.Fatalf("formation: %v", err)
	}
	c.Apply(sched)
	c.Run(sched.End() + 500*time.Millisecond)
	if err := c.Settle(settleBy); err != nil {
		c.Close()
		t.Fatal(err)
	}
	// Settle returns the moment the final view installs; run a few more
	// workload periods so that view demonstrably carries traffic.
	c.Run(500 * time.Millisecond)
	c.Close()
	return c
}

// assertUpgradeCommitted checks the FIFO→TOTAL payoff on a finished
// run: every incarnation committed epoch 1 with a TOTAL segment,
// delivered casts stamped with the new epoch afterwards, and the whole
// history set is invariant-clean (which includes the per-epoch total
// order check — non-vacuous exactly because epoch-1 deliveries exist).
func assertUpgradeCommitted(t *testing.T, c *chaos.Cluster) {
	t.Helper()
	for _, e := range c.Check() {
		t.Errorf("invariant: %v", e)
	}
	for _, h := range c.Histories {
		committed := false
		for _, s := range h.Switches {
			if s.Committed && s.Epoch == 1 {
				committed = true
				if want := "TOTAL"; s.Detail != want {
					t.Errorf("s%d.%d: committed epoch 1 to %q, want %q", h.Slot, h.Inc, s.Detail, want)
				}
			}
		}
		if !committed {
			t.Errorf("s%d.%d: never committed epoch 1", h.Slot, h.Inc)
			continue
		}
		epoch1 := 0
		for _, d := range h.Deliveries {
			if !d.Lost && d.Epoch == 1 {
				epoch1++
			}
		}
		if epoch1 == 0 {
			t.Errorf("s%d.%d: no casts delivered in epoch 1 — RESUME never produced traffic", h.Slot, h.Inc)
		}
	}
}

// assertAbortedCleanly checks the rollback story: someone recorded an
// abort, nobody ever committed, the rollback lost and duplicated
// nothing, and the old (epoch-0) stack kept delivering after
// re-convergence.
//
// "Zero lost/duplicated casts" has two halves. Across members it is
// the virtual-synchrony contract — view agreement, no duplicates,
// FIFO with every gap reported — which c.Check() proves over the whole
// run (the partition itself may drop cross-cut frames, but only as
// *reported* gaps). The sharper, switch-specific half is self
// delivery: a member's own casts never touch the network, and they are
// exactly what the SWITCH gate parks during the aborted attempt, so
// each member must deliver its own payload sequence 1..N contiguously
// — a hole means the abort's gate dump swallowed a cast, a repeat
// means it dumped one twice.
func assertAbortedCleanly(t *testing.T, c *chaos.Cluster) {
	t.Helper()
	for _, e := range c.Check() {
		t.Errorf("invariant: %v", e)
	}
	aborts := 0
	for _, h := range c.Histories {
		for _, s := range h.Switches {
			if s.Committed {
				t.Errorf("s%d.%d: committed epoch %d %q — the partition should have aborted the switch",
					h.Slot, h.Inc, s.Epoch, s.Detail)
			} else {
				aborts++
			}
		}
		self := fmt.Sprintf("s%d.%d-", h.Slot, h.Inc)
		want := 1
		for _, d := range h.Deliveries {
			if d.Epoch != 0 {
				t.Errorf("s%d.%d: cast %q stamped epoch %d after an aborted switch", h.Slot, h.Inc, d.Payload, d.Epoch)
			}
			if d.Lost || !strings.HasPrefix(d.Payload, self) {
				continue
			}
			var seq int
			if _, err := fmt.Sscanf(d.Payload[len(self):], "%d", &seq); err != nil {
				t.Fatalf("s%d.%d: unparseable own payload %q", h.Slot, h.Inc, d.Payload)
			}
			if seq != want {
				t.Errorf("s%d.%d: own cast stream delivered seq %d after %d — gate dump lost or duplicated casts",
					h.Slot, h.Inc, seq, want-1)
			}
			want = seq + 1
		}
		if want == 1 {
			t.Errorf("s%d.%d: delivered none of its own casts", h.Slot, h.Inc)
		}
	}
	if aborts == 0 {
		t.Error("no incarnation recorded an aborted switch")
	}
	// Old stack liveness: the final (post-heal) view must carry casts
	// at every member — rollback is only a rollback if traffic resumed
	// on the original segment.
	for _, h := range c.Histories {
		last := h.Last()
		if last == nil {
			t.Errorf("s%d.%d: no view at all", h.Slot, h.Inc)
			continue
		}
		inFinal := 0
		for _, d := range h.Deliveries {
			if !d.Lost && d.View == last.ID {
				inFinal++
			}
		}
		if inFinal == 0 {
			t.Errorf("s%d.%d: no casts delivered in the final view %v — old stack not live after rollback",
				h.Slot, h.Inc, last.ID)
		}
	}
}

// TestSwitchUpgradeFIFOTotal: the clean upgrade on the simulated
// fabric, run twice — identical digests pin bit-exact replay.
func TestSwitchUpgradeFIFOTotal(t *testing.T) {
	run := func() (*chaos.Cluster, string) {
		c := runSwitchScenario(t, 11, nil, upgradeSchedule(), 6*time.Second, 10*time.Second)
		return c, c.Digest()
	}
	c1, d1 := run()
	assertUpgradeCommitted(t, c1)
	_, d2 := run()
	if d1 != d2 {
		t.Fatalf("upgrade run diverged across replays:\n--- run 1\n%s\n--- run 2\n%s", d1, d2)
	}
}

// TestSwitchAbortMidQuiescePartition: the doomed upgrade on the
// simulated fabric, also replay-stable.
func TestSwitchAbortMidQuiescePartition(t *testing.T) {
	run := func() (*chaos.Cluster, string) {
		c := runSwitchScenario(t, 17, nil, abortSchedule(), 6*time.Second, 10*time.Second)
		return c, c.Digest()
	}
	c1, d1 := run()
	assertAbortedCleanly(t, c1)
	_, d2 := run()
	if d1 != d2 {
		t.Fatalf("abort run diverged across replays:\n--- run 1\n%s\n--- run 2\n%s", d1, d2)
	}
}

// TestSwitchUpgradeFIFOTotalUDP runs the same pinned upgrade over real
// UDP sockets at wall-clock speed.
func TestSwitchUpgradeFIFOTotalUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("UDP fabric runs at wall-clock speed")
	}
	fab := chaosnet.New(chaosnet.Config{Seed: 11, DefaultLink: switchCalmLink})
	c := runSwitchScenario(t, 11, fab, upgradeSchedule(), 15*time.Second, 20*time.Second)
	assertUpgradeCommitted(t, c)
}

// TestSwitchAbortMidQuiescePartitionUDP runs the doomed upgrade over
// real UDP sockets: the partition and the abort edge must behave
// identically on kernel timing.
func TestSwitchAbortMidQuiescePartitionUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("UDP fabric runs at wall-clock speed")
	}
	fab := chaosnet.New(chaosnet.Config{Seed: 17, DefaultLink: switchCalmLink})
	c := runSwitchScenario(t, 17, fab, abortSchedule(), 15*time.Second, 20*time.Second)
	assertAbortedCleanly(t, c)
}

// TestSwitchStormSoak sweeps the switch-storm generator: random
// upgrades, downgrades, and reshapes interleaved with the polite fault
// vocabulary. Every seed must converge and stay invariant-clean.
func TestSwitchStormSoak(t *testing.T) {
	seeds := 15
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(soakName(seed), func(t *testing.T) {
			c, err := chaos.RunSeed(seed, chaos.SoakConfig{Switch: true})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, e := range c.Check() {
				t.Errorf("seed %d: %v", seed, e)
			}
		})
	}
}

// TestSwitchStormSoakHarsh crosses switch storms with the hostile
// schedule repertoire over the primary-partition SWITCH stack:
// reconfigurations racing multi-way partitions, anchor crashes, and
// composite degradation squeezes.
func TestSwitchStormSoakHarsh(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(soakName(seed), func(t *testing.T) {
			c, err := chaos.RunSeed(seed, chaos.SoakConfig{Switch: true, Harsh: true})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, e := range c.Check() {
				t.Errorf("seed %d: %v", seed, e)
			}
		})
	}
}
