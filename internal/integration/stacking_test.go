package integration

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/netsim"
	"horus/internal/property"
	"horus/internal/stackreg"
)

// TestStackingCombinations is the Figure 1 claim made executable:
// every well-formed composition of registered layers builds at run
// time and moves messages end to end. The list deliberately mixes
// orderings and optional layers.
func TestStackingCombinations(t *testing.T) {
	stacks := []string{
		"NAK:COM",
		"NAK:CHKSUM:COM",
		"NAK:SIGN:COM",
		"NAK:CRYPT:COM",
		"NAK:SIGN:CRYPT:COM",
		"NAK:COMPRESS:COM",
		"FRAG:NAK:COM",
		"FC:NAK:COM",
		"FRAG:FC:NAK:CHKSUM:COM",
		"TRACE:NAK:COM",
		"ACCOUNT:NAK:COM",
		"MLOG:NAK:COM",
		"TRACE:ACCOUNT:MLOG:FRAG:NAK:SIGN:CRYPT:COMPRESS:CHKSUM:COM",
		"MBRSHIP:FRAG:NAK:COM",
		"TOTAL:MBRSHIP:FRAG:NAK:COM",
		"STABLE:MBRSHIP:FRAG:NAK:COM",
		"SAFE:STABLE:MBRSHIP:FRAG:NAK:COM",
		"CAUSAL:TSTAMP:MBRSHIP:FRAG:NAK:COM",
		"MERGE:MBRSHIP:FRAG:NAK:COM",
		"PINWHEEL:MBRSHIP:FRAG:NAK:COM",
		"FLUSH:STABLE:BMS:FRAG:NAK:COM",
		"VSS:STABLE:BMS:FRAG:NAK:COM",
		"TRACE:TOTAL:MBRSHIP:FRAG:FC:NAK:SIGN:CHKSUM:COM",
		"GKEY:MBRSHIP:FRAG:NAK:COM",
		"TOTAL:GKEY:MBRSHIP:FRAG:NAK:COM",
	}
	for _, desc := range stacks {
		desc := desc
		t.Run(desc, func(t *testing.T) {
			names := property.ParseStack(desc)
			if _, err := property.Derive(property.P1, names); err != nil {
				t.Fatalf("stack not well-formed: %v", err)
			}
			net := netsim.New(netsim.Config{Seed: 151, DefaultLink: netsim.Link{Delay: time.Millisecond}})
			hasMembership := false
			for _, n := range names {
				if n == "MBRSHIP" || n == "BMS" {
					hasMembership = true
				}
			}

			build := func() core.StackSpec {
				spec, err := stackreg.Build(desc, property.P1)
				if err != nil {
					t.Fatal(err)
				}
				return spec
			}
			epA := net.NewEndpoint("a")
			epB := net.NewEndpoint("b")
			ca, cb := newVSCollector("a"), newVSCollector("b")
			ga, err := epA.Join("grp", build(), ca.handler())
			if err != nil {
				t.Fatal(err)
			}
			gb, err := epB.Join("grp", build(), cb.handler())
			if err != nil {
				t.Fatal(err)
			}
			if hasMembership {
				var tryMerge func()
				tryMerge = func() {
					if v := cb.lastView(); v != nil && v.Size() >= 2 {
						return
					}
					gb.Merge(epA.ID())
					net.At(net.Now()+150*time.Millisecond, tryMerge)
				}
				net.At(20*time.Millisecond, tryMerge)
				net.RunFor(3 * time.Second)
				if v := cb.lastView(); v == nil || v.Size() != 2 {
					t.Fatalf("membership formation failed: %v", cb.lastView())
				}
			} else {
				view := core.NewView(core.ViewID{Seq: 1, Coord: epA.ID()}, "grp",
					[]core.EndpointID{epA.ID(), epB.ID()})
				ga.InstallView(view)
				gb.InstallView(view)
				ca.curView, cb.curView = 1, 1
			}

			base := net.Now()
			for i := 0; i < 5; i++ {
				i := i
				net.At(base+time.Duration(i)*10*time.Millisecond, func() {
					ga.Cast(message.New([]byte(fmt.Sprintf("m%d", i))))
				})
			}
			net.RunFor(3 * time.Second)

			var all []string
			for _, msgs := range cb.casts {
				all = append(all, msgs...)
			}
			if len(all) != 5 {
				t.Fatalf("b delivered %d of 5 casts through %s: %v", len(all), desc, all)
			}
		})
	}
}
