package udpnet_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/frag"
	"horus/internal/layers/hbeat"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/sched"
	"horus/internal/udpnet"
)

func stack() core.StackSpec {
	return core.StackSpec{
		mbrship.NewWith(
			mbrship.WithGossipPeriod(20*time.Millisecond),
			mbrship.WithFlushTimeout(300*time.Millisecond),
		),
		frag.NewWithSize(1024),
		nak.NewWith(
			nak.WithStatusPeriod(10*time.Millisecond),
			nak.WithSuspectAfter(10),
		),
		com.New,
	}
}

type member struct {
	mu    sync.Mutex
	casts []string
	view  *core.View
}

func (m *member) handler() core.Handler {
	return func(ev *core.Event) {
		m.mu.Lock()
		defer m.mu.Unlock()
		switch ev.Type {
		case core.UCast:
			m.casts = append(m.casts, string(ev.Msg.Body()))
		case core.UView:
			m.view = ev.View
		}
	}
}

func (m *member) viewSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.view == nil {
		return 0
	}
	return m.view.Size()
}

func (m *member) castCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.casts)
}

// TestRealUDPGroup runs the full membership stack over genuine UDP
// loopback sockets: the same layers, real packets, the kernel as P1.
func TestRealUDPGroup(t *testing.T) {
	ids := []core.EndpointID{
		{Site: "a", Birth: 1},
		{Site: "b", Birth: 2},
		{Site: "c", Birth: 3},
	}
	transports := make([]*udpnet.Transport, len(ids))
	for i, id := range ids {
		tr, err := udpnet.Listen("127.0.0.1:0", id)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		transports[i] = tr
	}
	// Full static peer mesh, including self (loopback self-delivery).
	for _, ti := range transports {
		for j, tj := range transports {
			ti.AddPeer(ids[j], tj.Addr())
		}
	}

	members := make([]*member, len(ids))
	groups := make([]*core.Group, len(ids))
	for i, tr := range transports {
		members[i] = &member{}
		ep := tr.NewEndpoint()
		g, err := ep.Join("udp-grp", stack(), members[i].handler())
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}

	// Merge everyone into a's view, retrying until formed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		formed := true
		for i := 1; i < len(groups); i++ {
			if members[i].viewSize() < len(ids) {
				formed = false
				groups[i].Merge(ids[0])
			}
		}
		if formed && members[0].viewSize() == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("UDP group formation timed out: sizes %d/%d/%d",
				members[0].viewSize(), members[1].viewSize(), members[2].viewSize())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Multicast over the wire; everyone (sender included) delivers.
	for i, g := range groups {
		g.Cast(message.New([]byte(fmt.Sprintf("udp-%d", i))))
	}
	for {
		done := true
		for _, m := range members {
			if m.castCount() < len(ids) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("UDP deliveries timed out: %d/%d/%d",
				members[0].castCount(), members[1].castCount(), members[2].castCount())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// FIFO per sender still holds over the real network.
	for i, m := range members {
		m.mu.Lock()
		seen := map[string]bool{}
		for _, p := range m.casts {
			if seen[p] {
				t.Errorf("member %d: duplicate %q", i, p)
			}
			seen[p] = true
		}
		m.mu.Unlock()
	}
}

// TestUDPLargeMessage pushes a message bigger than a datagram through
// FRAG over UDP.
func TestUDPLargeMessage(t *testing.T) {
	ids := []core.EndpointID{{Site: "a", Birth: 1}, {Site: "b", Birth: 2}}
	ta, err := udpnet.Listen("127.0.0.1:0", ids[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := udpnet.Listen("127.0.0.1:0", ids[1])
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	for _, tr := range []*udpnet.Transport{ta, tb} {
		tr.AddPeer(ids[0], ta.Addr())
		tr.AddPeer(ids[1], tb.Addr())
	}
	ma, mb := &member{}, &member{}
	ga, err := ta.NewEndpoint().Join("big", stack(), ma.handler())
	if err != nil {
		t.Fatal(err)
	}
	gb, err := tb.NewEndpoint().Join("big", stack(), mb.handler())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for mb.viewSize() < 2 {
		gb.Merge(ids[0])
		if time.Now().After(deadline) {
			t.Fatal("formation timeout")
		}
		time.Sleep(50 * time.Millisecond)
	}

	big := make([]byte, 200_000) // ~200 fragments
	for i := range big {
		big[i] = byte(i * 131)
	}
	ga.Cast(message.New(big))
	for mb.castCount() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("large message timeout")
		}
		time.Sleep(20 * time.Millisecond)
	}
	mb.mu.Lock()
	got := mb.casts[0]
	mb.mu.Unlock()
	if len(got) != len(big) || got != string(big) {
		t.Fatalf("large message corrupted: len %d vs %d", len(got), len(big))
	}
}

// hbeatStack puts HBEAT below MBRSHIP with NAK's own silence suspicion
// disabled, so the heartbeat layer is the only failure detector.
func hbeatStack() core.StackSpec {
	return core.StackSpec{
		mbrship.NewWith(
			mbrship.WithGossipPeriod(20*time.Millisecond),
			mbrship.WithFlushTimeout(300*time.Millisecond),
		),
		hbeat.NewWith(
			hbeat.WithPeriod(25*time.Millisecond),
			hbeat.WithMinTimeout(100*time.Millisecond),
			hbeat.WithMaxTimeout(400*time.Millisecond),
		),
		nak.NewWith(
			nak.WithStatusPeriod(10*time.Millisecond),
			nak.WithSuspectAfter(0),
		),
		com.New,
	}
}

// TestHeartbeatDetectsCrashOverUDP is the real-socket twin of the
// netsim detection-bound test: HBEAT alone (no manual PROBLEM
// injection, NAK suspicion off) must notice a crashed peer over
// genuine UDP and drive MBRSHIP to flush it out, within a wall-clock
// bound asserted via sched.EventCounter.AwaitTimeout.
func TestHeartbeatDetectsCrashOverUDP(t *testing.T) {
	ids := []core.EndpointID{
		{Site: "a", Birth: 1},
		{Site: "b", Birth: 2},
		{Site: "c", Birth: 3},
	}
	transports := make([]*udpnet.Transport, len(ids))
	for i, id := range ids {
		tr, err := udpnet.Listen("127.0.0.1:0", id)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		transports[i] = tr
	}
	for _, ti := range transports {
		for j, tj := range transports {
			ti.AddPeer(ids[j], tj.Addr())
		}
	}

	// Survivors advance this counter whenever they install the
	// post-crash view {a, b}.
	shrunk := sched.NewEventCounter()
	members := make([]*member, len(ids))
	groups := make([]*core.Group, len(ids))
	for i, tr := range transports {
		i := i
		members[i] = &member{}
		inner := members[i].handler()
		handler := func(ev *core.Event) {
			inner(ev)
			if i < 2 && ev.Type == core.UView &&
				ev.View.Size() == 2 && !ev.View.Contains(ids[2]) {
				shrunk.Advance()
			}
		}
		g, err := tr.NewEndpoint().Join("hb-grp", hbeatStack(), handler)
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = g
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		formed := true
		for i := 1; i < len(groups); i++ {
			if members[i].viewSize() < len(ids) {
				formed = false
				groups[i].Merge(ids[0])
			}
		}
		if formed && members[0].viewSize() == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("formation timed out: sizes %d/%d/%d",
				members[0].viewSize(), members[1].viewSize(), members[2].viewSize())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Crash c: close its socket. Nothing announces the failure; only
	// heartbeat silence can reveal it.
	transports[2].Close()

	// maxTimeout (400ms) + sweep period + flush rounds, with generous
	// slack for loaded CI machines.
	const bound = 8 * time.Second
	if !shrunk.AwaitTimeout(2, bound) {
		t.Fatalf("survivors did not install {a,b} within %v: sizes %d/%d",
			bound, members[0].viewSize(), members[1].viewSize())
	}
}

// TestMalformedAndTruncatedCounted feeds the reader hostile datagrams:
// garbage headers are counted as malformed, and nothing reaches the
// endpoint or crashes the reader.
func TestMalformedAndTruncatedCounted(t *testing.T) {
	id := core.EndpointID{Site: "x", Birth: 1}
	tr, err := udpnet.Listen("127.0.0.1:0", id)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.NewEndpoint()

	src, err := net.DialUDP("udp", nil, tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for _, pkt := range [][]byte{
		{0xFF},             // shorter than the length prefix
		{0xFF, 0xFF},       // header promises 65535 group bytes
		{0x00, 0x09, 'g'},  // promises 9, carries 1
		{0x10, 0x00, 0, 0}, // group length beyond the sanity cap
	} {
		if _, err := src.Write(pkt); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.Stats().Malformed < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("malformed datagrams counted = %d, want 4", tr.Stats().Malformed)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSendErrorsSurfaced: the fire-and-forget Send interface reports
// failures through the hook and counters instead of swallowing them.
func TestSendErrorsSurfaced(t *testing.T) {
	id := core.EndpointID{Site: "x", Birth: 1}
	tr, err := udpnet.Listen("127.0.0.1:0", id)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	var mu sync.Mutex
	var hookDests []core.EndpointID
	var hookErrs []error
	tr.SetSendErrorHook(func(dest core.EndpointID, err error) {
		mu.Lock()
		defer mu.Unlock()
		hookDests = append(hookDests, dest)
		hookErrs = append(hookErrs, err)
	})

	// Oversized payload: dropped, counted, reported.
	big := make([]byte, 70*1024)
	tr.Send(id, "grp", nil, big)
	if got := tr.Stats().Oversized; got != 1 {
		t.Fatalf("Oversized = %d, want 1", got)
	}

	// Socket-level write error: port 0 is unroutable.
	bad := core.EndpointID{Site: "bad", Birth: 9}
	tr.AddPeer(bad, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	tr.Send(id, "grp", []core.EndpointID{bad}, []byte("hi"))
	if got := tr.Stats().SendErrors; got != 1 {
		t.Fatalf("SendErrors = %d, want 1", got)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(hookErrs) != 2 {
		t.Fatalf("hook calls = %d, want 2 (%v)", len(hookErrs), hookErrs)
	}
	if hookErrs[0] != udpnet.ErrOversized {
		t.Errorf("first hook error = %v, want ErrOversized", hookErrs[0])
	}
	if hookDests[1] != bad {
		t.Errorf("second hook dest = %v, want %v", hookDests[1], bad)
	}
}
