// Package udpnet is a real-network transport: endpoints exchange UDP
// datagrams (loopback or LAN), demonstrating that the protocol stacks
// are transport-agnostic — the same layers that run over the simulator
// run over genuine sockets, with the kernel as the "best effort
// delivery" (P1) provider. UDP gives exactly the paper's bottom-layer
// model: messages may be delayed, lost, duplicated, or reordered, and
// everything above repairs it.
//
// Peers are configured statically: every endpoint knows the UDP
// address of every other (the paper's "resource location" concern is
// handled out of band here). The wire format is
//
//	[group length][group][sender site length][site][birth][payload]
//
// and delivery runs on one reader goroutine per endpoint, feeding the
// endpoint's event queue.
package udpnet

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"horus/internal/core"
)

// maxDatagram bounds received packets; stacks should fragment (FRAG)
// below this.
const maxDatagram = 64 * 1024

// Transport is one endpoint's UDP attachment. It implements
// core.Transport.
type Transport struct {
	mu     sync.Mutex
	conn   *net.UDPConn
	self   core.EndpointID
	peers  map[core.EndpointID]*net.UDPAddr
	ep     *core.Endpoint
	closed bool
	start  time.Time
}

// Listen opens a UDP socket for an endpoint with the given identity.
// Use addr ":0" for an ephemeral port; Addr reports the bound address.
func Listen(addr string, self core.EndpointID) (*Transport, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: %w", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: %w", err)
	}
	t := &Transport{
		conn:  conn,
		self:  self,
		peers: make(map[core.EndpointID]*net.UDPAddr),
		start: time.Now(),
	}
	return t, nil
}

// Addr returns the bound UDP address.
func (t *Transport) Addr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// AddPeer registers another endpoint's address (including our own, if
// self-delivery over the network is desired).
func (t *Transport) AddPeer(id core.EndpointID, addr *net.UDPAddr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

// NewEndpoint creates the core endpoint on this transport and starts
// the reader goroutine. Call exactly once per transport.
func (t *Transport) NewEndpoint() *core.Endpoint {
	ep := core.NewEndpoint(t.self, t)
	t.mu.Lock()
	t.ep = ep
	t.mu.Unlock()
	go t.readLoop(ep)
	return ep
}

// readLoop dispatches inbound datagrams to the endpoint.
func (t *Transport) readLoop(ep *core.Endpoint) {
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		group, payload, ok := decode(buf[:n])
		if !ok {
			continue
		}
		ep.Deliver(group, payload)
	}
}

// Send implements core.Transport: one datagram per destination. Empty
// dests broadcasts to every known peer.
func (t *Transport) Send(from core.EndpointID, group core.GroupAddr, dests []core.EndpointID, wire []byte) {
	pkt := encode(group, wire)
	if len(pkt) > maxDatagram {
		// Oversized: dropped like any best-effort network would; FRAG
		// exists for this.
		return
	}
	t.mu.Lock()
	var addrs []*net.UDPAddr
	if len(dests) == 0 {
		for _, a := range t.peers {
			addrs = append(addrs, a)
		}
	} else {
		for _, d := range dests {
			if a, ok := t.peers[d]; ok {
				addrs = append(addrs, a)
			}
		}
	}
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return
	}
	for _, a := range addrs {
		// Best effort: errors are loss.
		_, _ = t.conn.WriteToUDP(pkt, a)
	}
}

// SetTimer implements core.Transport with wall-clock timers.
func (t *Transport) SetTimer(d time.Duration, fn func()) (cancel func()) {
	timer := time.AfterFunc(d, fn)
	return func() { timer.Stop() }
}

// Now implements core.Transport.
func (t *Transport) Now() time.Duration { return time.Since(t.start) }

// Close shuts the socket; the reader goroutine exits.
func (t *Transport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return t.conn.Close()
}

// encode frames a packet: group-length, group, payload.
func encode(group core.GroupAddr, wire []byte) []byte {
	g := []byte(group)
	out := make([]byte, 2+len(g)+len(wire))
	binary.BigEndian.PutUint16(out, uint16(len(g)))
	copy(out[2:], g)
	copy(out[2+len(g):], wire)
	return out
}

// decode parses a framed packet.
func decode(pkt []byte) (core.GroupAddr, []byte, bool) {
	if len(pkt) < 2 {
		return "", nil, false
	}
	gl := int(binary.BigEndian.Uint16(pkt))
	if 2+gl > len(pkt) {
		return "", nil, false
	}
	group := core.GroupAddr(pkt[2 : 2+gl])
	payload := make([]byte, len(pkt)-2-gl)
	copy(payload, pkt[2+gl:])
	return group, payload, true
}
