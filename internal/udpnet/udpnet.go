//horus:wallclock — real-network transport: kernel sockets, reader
// goroutines, and retransmit timers necessarily run on the wall clock.

// Package udpnet is a real-network transport: endpoints exchange UDP
// datagrams (loopback or LAN), demonstrating that the protocol stacks
// are transport-agnostic — the same layers that run over the simulator
// run over genuine sockets, with the kernel as the "best effort
// delivery" (P1) provider. UDP gives exactly the paper's bottom-layer
// model: messages may be delayed, lost, duplicated, or reordered, and
// everything above repairs it.
//
// Peers are configured statically: every endpoint knows the UDP
// address of every other (the paper's "resource location" concern is
// handled out of band here). The wire format is
//
//	[group length][group][sender site length][site][birth][payload]
//
// and delivery runs on one reader goroutine per endpoint, feeding the
// endpoint's event queue.
package udpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"horus/internal/core"
)

// maxDatagram bounds received packets; stacks should fragment (FRAG)
// below this.
const maxDatagram = 64 * 1024

// maxGroupAddr bounds the group-address header field. The length
// prefix is a uint16, so a corrupted or hostile datagram can claim a
// 64 KiB "group name"; no real group address is anywhere near that,
// and rejecting early keeps garbage out of the endpoint's demux map.
const maxGroupAddr = 256

// ErrOversized reports a send dropped because the framed packet would
// not fit in one datagram. Stacks that need bigger messages put FRAG
// below the sender.
var ErrOversized = errors.New("udpnet: packet exceeds max datagram size")

// ErrBadGroup reports a send dropped because the group address is too
// long for the wire header.
var ErrBadGroup = errors.New("udpnet: group address exceeds header limit")

// Stats counts transport events that the fire-and-forget
// core.Transport.Send interface cannot report inline.
type Stats struct {
	SendErrors uint64 // WriteToUDP failures
	Oversized  uint64 // sends dropped: packet or group address too big
	Malformed  uint64 // inbound datagrams that failed header parsing
	Truncated  uint64 // inbound datagrams cut off at the buffer size
}

// Transport is one endpoint's UDP attachment. It implements
// core.Transport.
type Transport struct {
	mu        sync.Mutex
	conn      *net.UDPConn
	self      core.EndpointID
	peers     map[core.EndpointID]*net.UDPAddr
	ep        *core.Endpoint
	closed    bool
	start     time.Time
	stats     Stats
	onSendErr func(dest core.EndpointID, err error)
	feedback  func() core.EgressFeedback
}

// Listen opens a UDP socket for an endpoint with the given identity.
// Use addr ":0" for an ephemeral port; Addr reports the bound address.
func Listen(addr string, self core.EndpointID) (*Transport, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: %w", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: %w", err)
	}
	t := &Transport{
		conn:  conn,
		self:  self,
		peers: make(map[core.EndpointID]*net.UDPAddr),
		start: time.Now(),
	}
	return t, nil
}

// Addr returns the bound UDP address.
func (t *Transport) Addr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// AddPeer registers another endpoint's address (including our own, if
// self-delivery over the network is desired).
func (t *Transport) AddPeer(id core.EndpointID, addr *net.UDPAddr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

// NewEndpoint creates the core endpoint on this transport and starts
// the reader goroutine. Call exactly once per transport.
func (t *Transport) NewEndpoint() *core.Endpoint {
	ep := core.NewEndpoint(t.self, t)
	t.mu.Lock()
	t.ep = ep
	t.mu.Unlock()
	go t.readLoop(ep)
	return ep
}

// SetSendErrorHook registers a callback invoked whenever a send is
// dropped or fails at the socket. core.Transport.Send has no error
// return — the network model is best-effort, so errors ARE loss — but
// operators still want to see them; the hook (and Stats) surface what
// the interface swallows. The callback runs on the sending goroutine;
// keep it fast. A zero dest means the failure was not per-destination
// (e.g. an oversized broadcast rejected before addressing).
func (t *Transport) SetSendErrorHook(fn func(dest core.EndpointID, err error)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onSendErr = fn
}

// SetEgressFeedback registers the source for this endpoint's egress
// congestion ledger, making the transport a core.CongestionReporter.
// The kernel gives a bare UDP socket no backpressure ledger of its
// own, so a metering proxy (chaosnet) installs a closure over its
// per-host counters here — the same feedback vocabulary the simulator
// serves natively. The closure must be safe to call from the
// endpoint's event loop.
func (t *Transport) SetEgressFeedback(fn func() core.EgressFeedback) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.feedback = fn
}

// EgressFeedback implements core.CongestionReporter. A transport
// serves exactly one endpoint, so the id is ignored. Without an
// installed feedback source it reports a zero ledger (callers reach
// this only through the installed hook; Context.EgressFeedback sees
// the interface as implemented either way).
func (t *Transport) EgressFeedback(core.EndpointID) core.EgressFeedback {
	t.mu.Lock()
	fn := t.feedback
	t.mu.Unlock()
	if fn == nil {
		return core.EgressFeedback{}
	}
	return fn()
}

// Stats returns a snapshot of the transport's error counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

func (t *Transport) sendError(dest core.EndpointID, err error) {
	t.mu.Lock()
	t.stats.SendErrors++
	fn := t.onSendErr
	t.mu.Unlock()
	if fn != nil {
		fn(dest, err)
	}
}

// readLoop dispatches inbound datagrams to the endpoint. The buffer
// is one byte larger than the biggest legal datagram so truncation by
// the kernel is detectable instead of silently corrupting the tail.
func (t *Transport) readLoop(ep *core.Endpoint) {
	buf := make([]byte, maxDatagram+1)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		if n > maxDatagram {
			t.mu.Lock()
			t.stats.Truncated++
			t.mu.Unlock()
			continue
		}
		group, payload, ok := decode(buf[:n])
		if !ok {
			t.mu.Lock()
			t.stats.Malformed++
			t.mu.Unlock()
			continue
		}
		ep.Deliver(group, payload)
	}
}

// Send implements core.Transport: one datagram per destination. Empty
// dests broadcasts to every known peer. Errors cannot be returned
// through this interface; they are counted in Stats and reported via
// SetSendErrorHook.
func (t *Transport) Send(from core.EndpointID, group core.GroupAddr, dests []core.EndpointID, wire []byte) {
	if len(group) > maxGroupAddr {
		t.mu.Lock()
		t.stats.Oversized++
		fn := t.onSendErr
		t.mu.Unlock()
		if fn != nil {
			fn(core.EndpointID{}, ErrBadGroup)
		}
		return
	}
	pkt := encode(group, wire)
	if len(pkt) > maxDatagram {
		// Oversized: dropped like any best-effort network would; FRAG
		// exists for this.
		t.mu.Lock()
		t.stats.Oversized++
		fn := t.onSendErr
		t.mu.Unlock()
		if fn != nil {
			fn(core.EndpointID{}, ErrOversized)
		}
		return
	}
	type target struct {
		id   core.EndpointID
		addr *net.UDPAddr
	}
	t.mu.Lock()
	var targets []target
	if len(dests) == 0 {
		for id, a := range t.peers {
			targets = append(targets, target{id, a})
		}
	} else {
		for _, d := range dests {
			if a, ok := t.peers[d]; ok {
				targets = append(targets, target{d, a})
			}
		}
	}
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return
	}
	for _, tgt := range targets {
		// Best effort: an error is loss, but a counted, reportable one.
		if _, err := t.conn.WriteToUDP(pkt, tgt.addr); err != nil {
			t.sendError(tgt.id, err)
		}
	}
}

// SetTimer implements core.Transport with wall-clock timers.
func (t *Transport) SetTimer(d time.Duration, fn func()) (cancel func()) {
	timer := time.AfterFunc(d, fn)
	return func() { timer.Stop() }
}

// Now implements core.Transport.
func (t *Transport) Now() time.Duration { return time.Since(t.start) }

// Close shuts the socket; the reader goroutine exits.
func (t *Transport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return t.conn.Close()
}

// encode frames a packet: group-length, group, payload.
func encode(group core.GroupAddr, wire []byte) []byte {
	g := []byte(group)
	out := make([]byte, 2+len(g)+len(wire))
	binary.BigEndian.PutUint16(out, uint16(len(g)))
	copy(out[2:], g)
	copy(out[2+len(g):], wire)
	return out
}

// decode parses a framed packet, rejecting truncated headers (length
// prefix promising more bytes than the datagram holds) and oversized
// ones (group-address field beyond maxGroupAddr).
func decode(pkt []byte) (core.GroupAddr, []byte, bool) {
	if len(pkt) < 2 {
		return "", nil, false
	}
	gl := int(binary.BigEndian.Uint16(pkt))
	if gl > maxGroupAddr || 2+gl > len(pkt) {
		return "", nil, false
	}
	group := core.GroupAddr(pkt[2 : 2+gl])
	payload := make([]byte, len(pkt)-2-gl)
	copy(payload, pkt[2+gl:])
	return group, payload, true
}
