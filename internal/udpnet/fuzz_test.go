package udpnet

import (
	"bytes"
	"testing"

	"horus/internal/core"
)

// FuzzDecode hardens the datagram framing against arbitrary input.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encode("grp", []byte("payload")))
	f.Add([]byte{0xFF, 0xFF})                   // truncated: header promises 65535 group bytes
	f.Add([]byte{0x00})                         // shorter than the length prefix itself
	f.Add([]byte{0x00, 0x03, 'a', 'b'})         // truncated: promises 3, carries 2
	f.Add(append([]byte{0x01, 0x01, 'g'}, 0x7)) // minimal valid frame + 1 payload byte
	f.Add(func() []byte { // oversized header: length prefix beyond maxGroupAddr
		pkt := make([]byte, 2+maxGroupAddr+1)
		pkt[0] = byte((maxGroupAddr + 1) >> 8)
		pkt[1] = byte((maxGroupAddr + 1) & 0xFF)
		return pkt
	}())
	f.Fuzz(func(t *testing.T, pkt []byte) {
		group, payload, ok := decode(pkt)
		if !ok {
			return
		}
		if len(group) > maxGroupAddr {
			t.Fatalf("decode accepted %d-byte group address (limit %d)", len(group), maxGroupAddr)
		}
		// Re-encoding a successful parse reproduces a packet that
		// decodes identically.
		again := encode(group, payload)
		g2, p2, ok2 := decode(again)
		if !ok2 || g2 != group || !bytes.Equal(p2, payload) {
			t.Fatalf("re-encode mismatch: %q/%q vs %q/%q", group, payload, g2, p2)
		}
	})
}

func TestDecodeRejectsOversizedHeader(t *testing.T) {
	// A datagram big enough to satisfy its own length prefix, but with
	// a group-address field beyond the sanity cap, must be rejected.
	pkt := make([]byte, 2+maxGroupAddr+1)
	pkt[0] = byte((maxGroupAddr + 1) >> 8)
	pkt[1] = byte((maxGroupAddr + 1) & 0xFF)
	if _, _, ok := decode(pkt); ok {
		t.Fatal("decode accepted an oversized group-address header")
	}
	// At exactly the cap it still parses.
	okPkt := make([]byte, 2+maxGroupAddr)
	okPkt[0] = byte(maxGroupAddr >> 8)
	okPkt[1] = byte(maxGroupAddr & 0xFF)
	if _, _, ok := decode(okPkt); !ok {
		t.Fatal("decode rejected a group address at the limit")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		group   string
		payload string
	}{
		{"g", "hello"},
		{"", ""},
		{"a-long-group-address-with-dots.and.more", "x"},
	} {
		g, p, ok := decode(encode(core.GroupAddr("grp-"+tc.group), []byte(tc.payload)))
		if !ok || string(g) != "grp-"+tc.group || string(p) != tc.payload {
			t.Fatalf("round trip failed for %+v: %q %q %v", tc, g, p, ok)
		}
	}
}
