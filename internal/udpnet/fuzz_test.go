package udpnet

import (
	"bytes"
	"testing"

	"horus/internal/core"
)

// FuzzDecode hardens the datagram framing against arbitrary input.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encode("grp", []byte("payload")))
	f.Add([]byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, pkt []byte) {
		group, payload, ok := decode(pkt)
		if !ok {
			return
		}
		// Re-encoding a successful parse reproduces a packet that
		// decodes identically.
		again := encode(group, payload)
		g2, p2, ok2 := decode(again)
		if !ok2 || g2 != group || !bytes.Equal(p2, payload) {
			t.Fatalf("re-encode mismatch: %q/%q vs %q/%q", group, payload, g2, p2)
		}
	})
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		group   string
		payload string
	}{
		{"g", "hello"},
		{"", ""},
		{"a-long-group-address-with-dots.and.more", "x"},
	} {
		g, p, ok := decode(encode(core.GroupAddr("grp-"+tc.group), []byte(tc.payload)))
		if !ok || string(g) != "grp-"+tc.group || string(p) != tc.payload {
			t.Fatalf("round trip failed for %+v: %q %q %v", tc, g, p, ok)
		}
	}
}
