package failure

import (
	"math"
	"sync"
	"testing"

	"horus/internal/core"
)

func id(site string, birth uint64) core.EndpointID {
	return core.EndpointID{Site: site, Birth: birth}
}

func TestThresholdGatesVerdict(t *testing.T) {
	s := NewService(2)
	var verdicts [][]core.EndpointID
	s.Subscribe(func(f []core.EndpointID) { verdicts = append(verdicts, f) })

	s.Report(id("a", 1), id("x", 9))
	if len(verdicts) != 0 {
		t.Fatal("verdict after a single report with threshold 2")
	}
	s.Report(id("a", 1), id("x", 9)) // duplicate observer does not count twice
	if len(verdicts) != 0 {
		t.Fatal("duplicate observer crossed the threshold")
	}
	s.Report(id("b", 2), id("x", 9))
	if len(verdicts) != 1 || len(verdicts[0]) != 1 || verdicts[0][0] != id("x", 9) {
		t.Fatalf("verdicts = %v", verdicts)
	}
}

func TestVerdictIsCumulativeAndSorted(t *testing.T) {
	s := NewService(1)
	var last []core.EndpointID
	s.Subscribe(func(f []core.EndpointID) { last = f })
	s.Report(id("a", 1), id("y", 5))
	s.Report(id("a", 1), id("x", 3))
	if len(last) != 2 || last[0] != id("x", 3) || last[1] != id("y", 5) {
		t.Fatalf("faulty set = %v, want [x#3 y#5] (age sorted)", last)
	}
	if got := s.Faulty(); len(got) != 2 {
		t.Fatalf("Faulty = %v", got)
	}
}

func TestReportsAfterVerdictAreIgnored(t *testing.T) {
	s := NewService(1)
	count := 0
	s.Subscribe(func([]core.EndpointID) { count++ })
	s.Report(id("a", 1), id("x", 9))
	s.Report(id("b", 2), id("x", 9))
	if count != 1 {
		t.Errorf("subscribers called %d times for one faulty endpoint", count)
	}
}

func TestClearForgets(t *testing.T) {
	s := NewService(1)
	s.Report(id("a", 1), id("x", 9))
	s.Clear(id("x", 9))
	if got := s.Faulty(); len(got) != 0 {
		t.Errorf("Faulty after Clear = %v", got)
	}
}

// TestPhiPassthrough: the service exposes the maximum continuous
// suspicion across its registered sources, so a consumer reads one
// graded signal no matter how many groups (HBEAT layers) feed the
// detector. An endpoint with no evidence scores zero; one already
// declared faulty scores +Inf regardless of what the sources say.
func TestPhiPassthrough(t *testing.T) {
	s := NewService(1)
	x, y := id("x", 9), id("y", 5)
	s.AddPhiSource(func(e core.EndpointID) float64 {
		if e == x {
			return 1.5
		}
		return 0
	})
	s.AddPhiSource(func(e core.EndpointID) float64 {
		if e == x {
			return 0.7 // a less suspicious observer must not mask the max
		}
		return 0
	})
	if got := s.Phi(x); got != 1.5 {
		t.Errorf("Phi(x) = %v, want the max across sources (1.5)", got)
	}
	if got := s.Phi(y); got != 0 {
		t.Errorf("Phi(y) = %v, want 0 for an unsuspected endpoint", got)
	}
	s.Report(id("a", 1), y)
	if got := s.Phi(y); !math.IsInf(got, 1) {
		t.Errorf("Phi(y) after verdict = %v, want +Inf", got)
	}
	s.Clear(y)
	if got := s.Phi(y); got != 0 {
		t.Errorf("Phi(y) after Clear = %v, want 0", got)
	}
}

// TestClearRejoinPath covers the rejoin scenario Clear exists for: an
// endpoint declared faulty comes back (new incarnation at the same
// identity, or an operator overrides the verdict), Clear is called, and
// the detector must treat it as a first-class member again — fully
// re-suspectable, with the threshold counted from zero and subscribers
// hearing the fresh verdict when it is crossed again.
func TestClearRejoinPath(t *testing.T) {
	s := NewService(2)
	var verdicts [][]core.EndpointID
	s.Subscribe(func(f []core.EndpointID) { verdicts = append(verdicts, f) })

	x := id("x", 9)
	s.Report(id("a", 1), x)
	s.Report(id("b", 2), x)
	if len(verdicts) != 1 {
		t.Fatalf("verdicts before Clear = %v, want exactly one", verdicts)
	}

	// While faulty, further reports are swallowed; after Clear they
	// must count again.
	s.Report(id("c", 3), x)
	s.Clear(x)
	if got := s.Faulty(); len(got) != 0 {
		t.Fatalf("Faulty after Clear = %v, want empty", got)
	}

	// Clear must also have dropped partial evidence: one pre-Clear
	// observer plus one post-Clear observer is NOT two fresh reports.
	s.Report(id("a", 1), x)
	if len(verdicts) != 1 {
		t.Fatalf("single post-Clear report re-declared faulty: %v", verdicts)
	}
	s.Report(id("b", 2), x)
	if len(verdicts) != 2 {
		t.Fatalf("threshold crossed again but no fresh verdict: %v", verdicts)
	}
	if len(verdicts[1]) != 1 || verdicts[1][0] != x {
		t.Fatalf("fresh verdict = %v, want [%v]", verdicts[1], x)
	}
	if got := s.Faulty(); len(got) != 1 || got[0] != x {
		t.Fatalf("Faulty after re-suspicion = %v", got)
	}
}

func TestPhiIgnoresNaNAndNegativeSources(t *testing.T) {
	s := NewService(1)
	s.AddPhiSource(func(core.EndpointID) float64 { return math.NaN() })
	s.AddPhiSource(func(core.EndpointID) float64 { return -3 })
	s.AddPhiSource(func(core.EndpointID) float64 { return 2.5 })
	if got := s.Phi(id("a", 1)); got != 2.5 {
		t.Fatalf("Phi = %v, want 2.5 (NaN and negative sources must not poison the max)", got)
	}
	// All-broken sources: no evidence, not garbage.
	s2 := NewService(1)
	s2.AddPhiSource(func(core.EndpointID) float64 { return math.NaN() })
	s2.AddPhiSource(func(core.EndpointID) float64 { return -1 })
	if got := s2.Phi(id("a", 1)); got != 0 {
		t.Fatalf("Phi = %v with only broken sources, want 0", got)
	}
}

func TestSuspectSubscriptionAndPhiMax(t *testing.T) {
	s := NewService(2)
	a := id("a", 1)
	var heard []float64
	s.SubscribeSuspect(func(subject core.EndpointID, phi float64) {
		if subject == a {
			heard = append(heard, phi)
		}
	})
	s.ReportSuspect(a, 3)
	s.ReportSuspect(a, 5)
	s.ReportSuspect(a, 1) // retraction
	if len(heard) != 3 || heard[0] != 3 || heard[1] != 5 || heard[2] != 1 {
		t.Fatalf("subscriber heard %v, want [3 5 1]", heard)
	}
	// The latest pushed level feeds Phi's max...
	if got := s.Phi(a); got != 1 {
		t.Fatalf("Phi = %v after retraction to 1, want 1", got)
	}
	// ...competing with pulled sources...
	s.AddPhiSource(func(core.EndpointID) float64 { return 4 })
	if got := s.Phi(a); got != 4 {
		t.Fatalf("Phi = %v with a stronger pulled source, want 4", got)
	}
	// ...and NaN/negative pushes are recorded as zero, not poison.
	s.ReportSuspect(a, math.NaN())
	if got := s.Phi(a); got != 4 {
		t.Fatalf("Phi = %v after NaN push, want 4", got)
	}
	// The binary verdict dominates everything.
	s.Report(id("o1", 1), a)
	s.Report(id("o2", 2), a)
	if got := s.Phi(a); !math.IsInf(got, 1) {
		t.Fatalf("Phi = %v after verdict, want +Inf", got)
	}
	// Clear forgets the pushed suspicion along with the verdict.
	s.Clear(a)
	if got := s.Phi(a); got != 4 {
		t.Fatalf("Phi = %v after Clear, want 4 (pulled source only)", got)
	}
}

func TestConcurrentSourcesPhiAndClear(t *testing.T) {
	s := NewService(1)
	subjects := []core.EndpointID{id("a", 1), id("b", 2), id("c", 3)}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(4)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.AddPhiSource(func(core.EndpointID) float64 { return float64(i % 7) })
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, e := range subjects {
					if phi := s.Phi(e); math.IsNaN(phi) {
						t.Error("Phi returned NaN")
						return
					}
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.ReportSuspect(subjects[i%len(subjects)], float64(i%11))
				s.Report(id("obs", uint64(i)), subjects[i%len(subjects)])
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Clear(subjects[i%len(subjects)])
			}
		}()
	}
	wg.Wait()
}
