// Package failure implements the external failure-detection service of
// paper §5: "an external service picks up communication
// problem-reports and other failure information, and decides whether a
// process is to be considered faulty or not. The output of this
// service can be fed to all instances of the MBRSHIP layer, so that
// the corresponding groups have the same (consistent) view of the
// environment."
//
// The Service collects PROBLEM reports from many observers and
// declares an endpoint faulty once a configurable number of distinct
// observers agree. Verdicts go to every subscriber, so all groups act
// on the same failure information. Use it with
// mbrship.WithExternalSuspicions(), which makes MBRSHIP ignore its own
// layer-level suspicions, and WrapHandler, which routes a group's
// PROBLEM upcalls into the service and its verdicts into flush
// downcalls.
package failure

import (
	"math"
	"sort"
	"sync"

	"horus/internal/core"
)

// Service is a process-local failure detector aggregating suspicion
// reports. It is safe for concurrent use.
type Service struct {
	mu        sync.Mutex
	threshold int
	reports   map[core.EndpointID]map[core.EndpointID]bool // suspect -> observers
	faulty    map[core.EndpointID]bool
	subs      []func(faulty []core.EndpointID)
	phiSrcs   []PhiSource
	suspectFn []func(subject core.EndpointID, phi float64)
	suspected map[core.EndpointID]float64 // latest pushed φ per subject
}

// PhiSource reports a continuous suspicion level (φ-accrual scale) for
// an endpoint; zero means "no evidence against it". A group's HBEAT
// layer is the canonical source: register a closure over hbeat.Phi,
// routed through Endpoint.Do so the layer is read on its own stack
// goroutine.
type PhiSource func(core.EndpointID) float64

// NewService returns a service that declares an endpoint faulty after
// reports from threshold distinct observers (minimum 1).
func NewService(threshold int) *Service {
	if threshold < 1 {
		threshold = 1
	}
	return &Service{
		threshold: threshold,
		reports:   make(map[core.EndpointID]map[core.EndpointID]bool),
		faulty:    make(map[core.EndpointID]bool),
		suspected: make(map[core.EndpointID]float64),
	}
}

// Subscribe registers fn to receive the full faulty set whenever it
// grows. Subscribers are called without internal locks held.
func (s *Service) Subscribe(fn func(faulty []core.EndpointID)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = append(s.subs, fn)
}

// AddPhiSource registers a continuous suspicion source. Sources are
// called without internal locks held, so a source may itself take
// locks (e.g. Endpoint.Do).
func (s *Service) AddPhiSource(src PhiSource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.phiSrcs = append(s.phiSrcs, src)
}

// Phi returns the service's continuous suspicion of e: the maximum
// level any registered source reports, or +Inf once e has been
// declared faulty (the binary verdict dominates whatever the sources
// currently see — a faulty endpoint does not become trustworthy by
// going quiet). Consumers get the graded signal the paper's binary
// PROBLEM reports flatten away: a load balancer can shed traffic at
// φ=1 long before the membership layer excludes the member at its
// configured threshold.
func (s *Service) Phi(e core.EndpointID) float64 {
	s.mu.Lock()
	if s.faulty[e] {
		s.mu.Unlock()
		return math.Inf(1)
	}
	srcs := make([]PhiSource, len(s.phiSrcs))
	copy(srcs, s.phiSrcs)
	pushed := s.suspected[e]
	s.mu.Unlock()
	// Max over pulled sources and the latest pushed SUSPECT level. A
	// source returning NaN or a negative φ contributes nothing: NaN
	// compares false against everything and would otherwise poison the
	// max, and φ is non-negative by construction (-log10 of a
	// probability), so a negative report is a source bug, not evidence
	// of health.
	max := 0.0
	if !math.IsNaN(pushed) && pushed > 0 {
		max = pushed
	}
	for _, src := range srcs {
		if phi := src(e); !math.IsNaN(phi) && phi > max {
			max = phi
		}
	}
	return max
}

// SubscribeSuspect registers fn to receive every graded suspicion the
// service hears (via ReportSuspect, typically fed by SUSPECT upcalls):
// the subject and its current φ, retractions included. Subscribers run
// without internal locks held, on the reporting goroutine — keep them
// fast. This is the push complement of the pull-only Phi: applications
// see suspicion rise and fall without polling.
func (s *Service) SubscribeSuspect(fn func(subject core.EndpointID, phi float64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.suspectFn = append(s.suspectFn, fn)
}

// ReportSuspect records a graded suspicion level for subject and fans
// it out to SubscribeSuspect subscribers. The latest level also feeds
// Phi's max until it is superseded, cleared, or the subject turns
// faulty. NaN and negative levels are recorded as zero (see Phi).
func (s *Service) ReportSuspect(subject core.EndpointID, phi float64) {
	if math.IsNaN(phi) || phi < 0 {
		phi = 0
	}
	s.mu.Lock()
	s.suspected[subject] = phi
	fns := make([]func(core.EndpointID, float64), len(s.suspectFn))
	copy(fns, s.suspectFn)
	s.mu.Unlock()
	for _, fn := range fns {
		fn(subject, phi)
	}
}

// Report records that observer suspects suspect. If the threshold is
// crossed, every subscriber hears the (consistent) verdict.
func (s *Service) Report(observer, suspect core.EndpointID) {
	s.mu.Lock()
	if s.faulty[suspect] {
		s.mu.Unlock()
		return
	}
	obs := s.reports[suspect]
	if obs == nil {
		obs = make(map[core.EndpointID]bool)
		s.reports[suspect] = obs
	}
	obs[observer] = true
	if len(obs) < s.threshold {
		s.mu.Unlock()
		return
	}
	s.faulty[suspect] = true
	verdict := s.faultyLocked()
	subs := make([]func([]core.EndpointID), len(s.subs))
	copy(subs, s.subs)
	s.mu.Unlock()
	for _, fn := range subs {
		fn(verdict)
	}
}

// Clear forgets everything recorded about an endpoint (e.g. after it
// rejoins under a new incarnation).
func (s *Service) Clear(e core.EndpointID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.faulty, e)
	delete(s.reports, e)
	delete(s.suspected, e)
}

// Faulty returns the current verdict set.
func (s *Service) Faulty() []core.EndpointID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faultyLocked()
}

func (s *Service) faultyLocked() []core.EndpointID {
	out := make([]core.EndpointID, 0, len(s.faulty))
	for e := range s.faulty {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Older(out[j]) })
	return out
}

// WrapHandler interposes the service between a group and its
// application handler: PROBLEM upcalls become reports, and service
// verdicts become flush downcalls on the group. The inner handler
// still sees every event. Call it when joining:
//
//	g, _ := ep.Join(addr, spec, nil)
//	...Join does not allow late handlers, so instead:
//	h := svc.WrapHandler(&g, inner)  — pass h to Join and assign g after.
//
// Because Join needs the handler before the group exists, WrapHandler
// takes a pointer to the group variable the caller will fill in.
func (s *Service) WrapHandler(g **core.Group, inner core.Handler) core.Handler {
	s.Subscribe(func(faulty []core.EndpointID) {
		if grp := *g; grp != nil {
			grp.Flush(faulty)
		}
	})
	return func(ev *core.Event) {
		switch ev.Type {
		case core.UProblem:
			if grp := *g; grp != nil {
				s.Report(grp.Endpoint().ID(), ev.Source)
			}
		case core.USuspect:
			s.ReportSuspect(ev.Source, ev.Phi)
		}
		if inner != nil {
			inner(ev)
		}
	}
}
