package core

import "encoding/binary"

// This file implements the §10 cast fast path: a per-stack compiled
// send plan that renders the entire downward traversal of a cast into
// one contiguous wire image, written front to back into a reused
// scratch buffer, instead of per-layer push/pop through the Message
// object. It is the compacted-header idea of message/compact.go scaled
// from one layer's fields to the whole stack: at composition time every
// layer declares the exact shape of its cast header (CompileCast), the
// plan derives offsets for the concatenation, and at cast time a single
// pass fills the slots and hands the finished wire to the transport.
//
// The per-layer path is retained unchanged as the always-available
// reference implementation: a plan only exists when every layer of a
// stack compiles, and a compiled plan declines any individual cast it
// cannot express (a gate closed, a size bound exceeded) BEFORE any
// side effect, so execution falls back to the reference path with
// nothing to undo. The differential suite in internal/integration
// pins byte-identical wire output between the two paths.
//
// Lifetime: a plan is derived once per stack (newStack) or segment
// (NewSubStack) and never mutated; SWITCH reconfiguration replaces the
// whole segment, so the epoch fence invalidates the old plan by
// construction — the retired SubStack is detached and its plan goes
// with it. All execution happens on the endpoint's event queue, so the
// scratch buffer and per-cast bookkeeping need no locking.

// CastCompiler is the optional layer interface behind the compiled
// send plan. A layer that implements it describes its cast-downcall
// behaviour declaratively; ok=false means "this instance cannot be
// compiled" (e.g. configured in a mode the plan cannot express) and
// disables the plan for the whole stack.
//
// Compiling is a promise: for any cast the plan accepts, the compiled
// form must write exactly the bytes the layer's Down would have pushed
// and perform exactly the side effects it would have performed, in the
// same order relative to transmission. CompileCast is called once,
// after Init.
type CastCompiler interface {
	CompileCast() (CompiledCast, bool)
}

// CastFrame is the view a compiled layer gets of one cast: its own
// header slot plus the message exactly as the layer would have received
// it on the reference path — Hdr holds the headers pushed by the layers
// above (ending with the application's own pushed bytes) and Body the
// payload. All three slices alias the plan's scratch buffer; they are
// valid only for the duration of the Fill call.
type CastFrame struct {
	Ev   *Event
	Own  []byte // this layer's header slot, front first
	Hdr  []byte // headers above this layer, as received
	Body []byte // payload, as received
}

// CompiledCast is one layer's compiled cast-send behaviour.
type CompiledCast struct {
	// Width is the fixed byte width of the layer's cast header. For a
	// Rewrap layer it is the width of the header the layer leaves on
	// the re-framed message (FRAG: the 1-byte more flag); the 4-byte
	// inner length prefix is written by the engine.
	Width int

	// WidthFn overrides Width per cast for variable-width headers
	// (MBRSHIP's view tag carries a site name). It must be pure: it
	// runs during the eligibility pass, before any side effect.
	WidthFn func(ev *Event) int

	// Static, when non-nil, is the header verbatim — precomputed at
	// compile time for layers whose cast header does not depend on the
	// cast (COM's source address, HBEAT's kind byte). Fill is not
	// called for static layers.
	Static []byte

	// Ready gates the fast path per cast; it must be pure. Returning
	// false (MBRSHIP mid-flush, a minority partition) declines the
	// cast and the reference path runs instead.
	Ready func(ev *Event) bool

	// Fits gates on the message size the layer would observe (header
	// and body lengths as received); it must be pure. FRAG declines
	// casts that need splitting.
	Fits func(hdrLen, bodyLen int) bool

	// Fill writes the layer's header into f.Own and performs the
	// layer's per-cast bookkeeping (counters, sequence assignment,
	// retained copies). It must not fail: everything fallible was
	// checked by Ready/Fits.
	Fill func(f *CastFrame)

	// Rewrap marks a layer that re-frames the message (FRAG): on the
	// reference path it marshals what it received into the body of a
	// fresh message and pushes Width bytes of its own. The engine
	// writes the 4-byte inner header-length prefix; Own covers only
	// the Width header bytes in front of it.
	Rewrap bool

	// Post runs after the wire has left the stack, mirroring work the
	// reference path does after its Down call returns (MBRSHIP's local
	// self-delivery upcall).
	Post func(ev *Event)

	// Transmit hands the finished wire image to the transport. Exactly
	// the bottom layer of an outer stack provides it (COM); the wire
	// slice aliases the plan's scratch buffer and must not be retained
	// after the call returns — the same contract Transport.Send
	// documents.
	Transmit func(ev *Event, wire []byte)
}

// PlanStats counts fast-path outcomes for one stack or segment, so
// tests can prove the compiled path actually ran (or deliberately
// didn't).
type PlanStats struct {
	// Fast counts casts fully handled by the compiled plan.
	Fast uint64
	// Fallback counts casts the plan declined (gate closed, size
	// bound, non-cast shape) that took the reference path instead.
	Fallback uint64
}

// castStep is one compiled layer in plan order (top first).
type castStep struct {
	cc    CompiledCast
	fixed bool // width known at compile time
}

// castPlan is the compiled send plan of one stack or segment.
type castPlan struct {
	steps    []castStep
	posts    []func(*Event) // in step order
	terminal func(*Event, []byte)
	static   int // summed width of the fixed-width, non-rewrap steps

	// Per-cast working state. Plans execute only on the endpoint's
	// event queue, so reuse is safe and keeps the hot path at zero
	// allocations.
	widths  []int
	scratch []byte
	frame   CastFrame
	stats   PlanStats
}

// compileCastPlan derives the send plan for layers (top first). The
// terminal receives the finished wire when no layer transmits — a
// segment's wire is re-materialized for the host below the fence;
// outer stacks instead end at the bottom layer's Transmit (COM). It
// returns nil when any layer does not compile, when a transmitting
// layer is not at the bottom, or when nothing would consume the wire:
// those stacks use the reference path exclusively.
func compileCastPlan(layers []Layer, terminal func(*Event, []byte)) *castPlan {
	p := &castPlan{terminal: terminal, widths: make([]int, len(layers))}
	for i, l := range layers {
		comp, ok := l.(CastCompiler)
		if !ok {
			return nil
		}
		cc, ok := comp.CompileCast()
		if !ok {
			return nil
		}
		if cc.Static != nil {
			cc.Width = len(cc.Static)
		}
		if cc.Transmit != nil {
			if i != len(layers)-1 || terminal != nil {
				return nil // only the true bottom may transmit
			}
		}
		if cc.Rewrap && cc.Width != 1 {
			return nil // the engine only knows the 1-byte re-frame shape
		}
		p.steps = append(p.steps, castStep{cc: cc, fixed: cc.WidthFn == nil})
		if cc.Post != nil {
			p.posts = append(p.posts, cc.Post)
		}
	}
	if len(p.steps) == 0 {
		return nil
	}
	last := p.steps[len(p.steps)-1].cc
	if last.Transmit == nil && terminal == nil {
		return nil // no consumer for the wire image
	}
	return p
}

// execute attempts one cast through the compiled plan. It returns
// false — with no side effect whatsoever — when the cast must take the
// reference path. The two-pass structure is what makes that sound:
// pass 1 only evaluates pure gates and widths; writes and bookkeeping
// begin only after the whole cast is known expressible.
func (p *castPlan) execute(ev *Event) bool {
	if ev.Type != DCast || ev.Msg == nil {
		p.stats.Fallback++
		return false
	}

	// Pass 1 — eligibility and layout. Walk top to bottom tracking the
	// header/body lengths each layer would observe on the reference
	// path; rewrap layers fold the accumulated header into the body.
	hdrLen, bodyLen := ev.Msg.HeaderLen(), len(ev.Msg.Body())
	for i := range p.steps {
		cc := &p.steps[i].cc
		if cc.Ready != nil && !cc.Ready(ev) {
			p.stats.Fallback++
			return false
		}
		if cc.Fits != nil && !cc.Fits(hdrLen, bodyLen) {
			p.stats.Fallback++
			return false
		}
		w := cc.Width
		if cc.WidthFn != nil {
			w = cc.WidthFn(ev)
		}
		p.widths[i] = w
		if cc.Rewrap {
			bodyLen = 4 + hdrLen + bodyLen
			hdrLen = w
		} else {
			hdrLen += w
		}
	}

	// Pass 2 — fill the flat wire image back to front. The scratch
	// buffer is laid out as [u32 hdrlen][headers][body]; positions
	// follow from the pass-1 walk, so every layer's slot is written
	// exactly once and lower layers (written later) see the finished
	// bytes of everything above them, just as the reference path's
	// push order guarantees.
	total := 4 + hdrLen + bodyLen
	if cap(p.scratch) < total {
		p.scratch = make([]byte, total+total/2)
	}
	scratch := p.scratch[:total]
	appHdr, appBody := ev.Msg.Header(), ev.Msg.Body()
	bodyStart := total - len(appBody)
	copy(scratch[bodyStart:], appBody)
	hdrStart := bodyStart - len(appHdr)
	copy(scratch[hdrStart:], appHdr)

	for i := range p.steps {
		cc := &p.steps[i].cc
		recvHdr := scratch[hdrStart:bodyStart]
		recvBody := scratch[bodyStart:total]
		w := p.widths[i]
		if cc.Rewrap {
			binary.BigEndian.PutUint32(scratch[hdrStart-4:], uint32(len(recvHdr)))
			bodyStart = hdrStart - 4
			hdrStart -= 4 + w
		} else {
			hdrStart -= w
		}
		own := scratch[hdrStart : hdrStart+w]
		if cc.Static != nil {
			copy(own, cc.Static)
			continue
		}
		p.frame = CastFrame{Ev: ev, Own: own, Hdr: recvHdr, Body: recvBody}
		cc.Fill(&p.frame)
	}
	binary.BigEndian.PutUint32(scratch[0:4], uint32(bodyStart-4))

	last := &p.steps[len(p.steps)-1].cc
	if last.Transmit != nil {
		last.Transmit(ev, scratch)
	} else {
		p.terminal(ev, scratch)
	}
	for _, post := range p.posts {
		post(ev)
	}
	p.stats.Fast++

	// Ownership hand-off: the cast consumed the message — its bytes
	// are in the wire image and every retaining layer kept its own
	// copy — so a pooled buffer goes straight back to the pool.
	if ev.Msg.Pooled() {
		ev.Msg.Release()
	}
	return true
}
