package core

// Skipper is the optional interface behind the paper's §10 item 1
// optimization: "we will avoid unnecessary invocations of a layer,
// skipping layers that take no action on the way down or up." A layer
// that implements Skipper declares, per event kind and direction,
// whether it merely passes the event through verbatim; the stack
// precomputes jump tables at composition time and routes such events
// straight past the layer, eliminating the indirect call entirely.
//
// Declaring transparency is a promise: for a (kind, direction) the
// layer reports transparent, its Down/Up must be observationally
// identical to Ctx.Down/Ctx.Up — no header pushes, no state changes,
// no counters. Layers that meter traffic (TRACE, ACCOUNT) must not
// declare data events transparent.
type Skipper interface {
	// Transparent reports whether events of kind t in the given
	// direction pass through this layer verbatim.
	Transparent(t EventType, down bool) bool
}

// skipTables holds, for every event kind, the next non-transparent
// layer index at or below/above each position. Built once per stack
// and stored densely — the lookup sits on the data path of every
// layer crossing, so it must cost no more than an array index.
type skipTables struct {
	// down[idx(t)][i] = smallest j >= i with layer j not transparent
	// for (t, down); len(layers) if none.
	down [eventSlots][]int16
	// up[idx(t)][i+1] = largest j <= i with layer j not transparent
	// for (t, up); -1 if none.
	up [eventSlots][]int16
}

// eventSlots covers the dense event-kind index space.
const eventSlots = int(DLocate) + int(USwitch-UPacket) + 2

// eventIndex maps the HCPI vocabulary onto 0..eventSlots-1; unknown
// kinds map to slot 0 (DCast's slot is never transparent-only in
// practice, and unknown kinds do not occur on stacks).
func eventIndex(t EventType) int {
	if t >= DCast && t <= DLocate {
		return int(t - DCast)
	}
	if t >= UPacket && t <= USwitch {
		return int(DLocate) + int(t-UPacket) + 1
	}
	return 0
}

// buildSkipTables precomputes routing past transparent layers.
func buildSkipTables(layers []Layer) *skipTables {
	n := len(layers)
	st := &skipTables{}
	transparent := func(i int, t EventType, down bool) bool {
		s, ok := layers[i].(Skipper)
		return ok && s.Transparent(t, down)
	}
	fill := func(t EventType) {
		slot := eventIndex(t)
		d := make([]int16, n+1)
		d[n] = int16(n)
		for i := n - 1; i >= 0; i-- {
			if transparent(i, t, true) {
				d[i] = d[i+1]
			} else {
				d[i] = int16(i)
			}
		}
		st.down[slot] = d

		u := make([]int16, n+1) // u[i+1] corresponds to position i
		u[0] = -1
		for i := 0; i < n; i++ {
			if transparent(i, t, false) {
				u[i+1] = u[i]
			} else {
				u[i+1] = int16(i)
			}
		}
		st.up[slot] = u
	}
	for t := DCast; t <= DLocate; t++ {
		fill(t)
	}
	for t := UPacket; t <= USwitch; t++ {
		fill(t)
	}
	return st
}

// nextDown returns the first non-transparent layer index >= from for
// event kind t, or len(layers) when the event should fall off the
// bottom.
func (s *skipTables) nextDown(t EventType, from, n int) int {
	d := s.down[eventIndex(t)]
	if d != nil && from >= 0 && from <= n {
		return int(d[from])
	}
	return from
}

// nextUp returns the first non-transparent layer index <= from, or -1
// when the event should emerge at the top.
func (s *skipTables) nextUp(t EventType, from int) int {
	u := s.up[eventIndex(t)]
	if u != nil && from >= -1 && from < len(u)-1 {
		return int(u[from+1])
	}
	return from
}
