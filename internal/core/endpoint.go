package core

import (
	"fmt"
	"sync"

	"horus/internal/message"
)

// Endpoint models the communicating entity (paper §3): it has an
// address, can send and receive messages, and carries one protocol
// stack per joined group. A process may own multiple endpoints, each
// with its own stacks.
//
// All protocol execution for an endpoint happens on its event queue
// (see executor), giving the run-to-completion semantics of the
// paper's event-queue model: layers never see concurrent invocations.
type Endpoint struct {
	id        EndpointID
	transport Transport
	exec      executor

	mu        sync.Mutex // guards groups, destroyed and malformed
	groups    map[GroupAddr]*Group
	destroyed bool
	malformed int

	trace func(format string, args ...interface{})

	// slowPath pins every stack of this endpoint to the per-layer
	// reference path (zero value: compiled cast plans are used where
	// they exist). Read on the event queue per cast; set it before
	// traffic flows, or from within Do.
	slowPath bool

	// wireTap observes every transmission (both the compiled and the
	// reference send path) before it reaches the transport. The wire
	// slice may alias a reused buffer: taps that retain bytes must
	// copy. Same setting discipline as slowPath.
	wireTap func(dests []EndpointID, wire []byte)
}

// NewEndpoint creates an endpoint with the given identity on top of a
// transport. This is the endpoint downcall of Table 1.
func NewEndpoint(id EndpointID, t Transport) *Endpoint {
	return &Endpoint{
		id:        id,
		transport: t,
		groups:    make(map[GroupAddr]*Group),
	}
}

// ID returns the endpoint's address.
func (e *Endpoint) ID() EndpointID { return e.id }

// SetTrace installs a trace hook receiving layer diagnostics. Pass nil
// to disable.
func (e *Endpoint) SetTrace(fn func(format string, args ...interface{})) { e.trace = fn }

// SetFastPath selects between the compiled cast plan (true, the
// default) and the per-layer reference path (false) for every stack of
// this endpoint. The differential suite runs identical schedules both
// ways and demands byte-identical wire output; applications never need
// to call this.
func (e *Endpoint) SetFastPath(enabled bool) { e.slowPath = !enabled }

// SetWireTap installs a hook observing every outgoing wire image with
// its destination set, regardless of which send path produced it. The
// wire slice may alias a reused buffer — copy to retain. Pass nil to
// disable.
func (e *Endpoint) SetWireTap(fn func(dests []EndpointID, wire []byte)) { e.wireTap = fn }

func (e *Endpoint) tracef(format string, args ...interface{}) {
	if e.trace != nil {
		e.trace(format, args...)
	}
}

// Join composes the given protocol stack for a group address and
// returns the group handle; this is the join downcall of Table 1.
// Upcalls emerging from the stack are passed to h. Layers begin work
// (e.g. a membership layer installs its initial singleton view and
// starts discovery) via zero-delay timers they arm during Init, so the
// first upcalls arrive only after Join returns control to the event
// queue.
func (e *Endpoint) Join(addr GroupAddr, spec StackSpec, h Handler) (*Group, error) {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return nil, fmt.Errorf("endpoint %s: join %q: endpoint destroyed", e.id, addr)
	}
	if _, dup := e.groups[addr]; dup {
		e.mu.Unlock()
		return nil, fmt.Errorf("endpoint %s: already joined group %q", e.id, addr)
	}
	e.mu.Unlock()

	g := &Group{addr: addr, ep: e, handler: h}
	// Stack construction runs on the endpoint's event queue: layers
	// arm timers during Init, and on wall-clock transports a zero-delay
	// timer callback could otherwise run concurrently with the rest of
	// the initialization.
	var initErr error
	e.exec.Do(func() {
		var stack *Stack
		stack, initErr = newStack(g, spec)
		g.stack = stack // assigned on the queue: visible to queued work
	})
	if initErr != nil {
		return nil, fmt.Errorf("endpoint %s: join %q: %w", e.id, addr, initErr)
	}

	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return nil, fmt.Errorf("endpoint %s: join %q: endpoint destroyed", e.id, addr)
	}
	if _, dup := e.groups[addr]; dup {
		e.mu.Unlock()
		return nil, fmt.Errorf("endpoint %s: already joined group %q", e.id, addr)
	}
	e.groups[addr] = g
	e.mu.Unlock()
	if reg, ok := e.transport.(GroupRegistrar); ok {
		reg.JoinGroup(e.id, addr)
	}
	return g, nil
}

// Deliver is called by the transport when wire bytes arrive for this
// endpoint. Packets for groups this endpoint has not joined are
// dropped, which lets transports broadcast on a shared medium.
func (e *Endpoint) Deliver(group GroupAddr, wire []byte) {
	e.mu.Lock()
	g := e.groups[group]
	e.mu.Unlock()
	if g == nil {
		return
	}
	msg, err := message.Unmarshal(wire)
	if err != nil {
		// A garbled length prefix: indistinguishable from line noise,
		// dropped exactly like a checksum failure would be.
		return
	}
	e.exec.Do(func() {
		defer func() {
			// A garbled packet can corrupt a length prefix deep in a
			// header, making a layer pop past the end of the message.
			// That is line damage, not a program bug: drop the packet
			// like any other loss (NAK repairs it) and count it. A
			// CHKSUM layer placed low in the stack makes this path
			// statistically unreachable, which is exactly the paper's
			// §2 argument for that layer.
			if r := recover(); r != nil {
				e.mu.Lock()
				e.malformed++
				e.mu.Unlock()
				e.tracef("endpoint %s: malformed packet dropped: %v", e.id, r)
			}
		}()
		g.stack.Up(&Event{Type: UPacket, Msg: msg})
	})
}

// Malformed returns how many inbound packets were dropped because a
// layer could not parse them (garbled in flight).
func (e *Endpoint) Malformed() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.malformed
}

// Group returns the handle for a joined group, or nil.
func (e *Endpoint) Group(addr GroupAddr) *Group {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.groups[addr]
}

// Destroy tears down every group stack and marks the endpoint dead;
// this is the destroy downcall of Table 1. Each stack receives a
// destroy downcall (so layers can cancel timers and say goodbye), then
// its handler receives DESTROY and EXIT upcalls.
func (e *Endpoint) Destroy() {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return
	}
	e.destroyed = true
	gs := make([]*Group, 0, len(e.groups))
	for _, g := range e.groups {
		gs = append(gs, g)
	}
	e.mu.Unlock()

	for _, g := range gs {
		g.close(true)
	}
}

// Do runs fn on the endpoint's event queue. Tests and tools use this
// to interact with stacks with run-to-completion semantics.
func (e *Endpoint) Do(fn func()) { e.exec.Do(fn) }
