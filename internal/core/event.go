package core

import (
	"fmt"

	"horus/internal/message"
)

// EventType enumerates the HCPI vocabulary. Downcalls (paper Table 1)
// travel from the application toward the network; upcalls (paper
// Table 2) travel from the network toward the application.
type EventType int

// Downcall event kinds (paper Table 1). The table's remaining rows —
// endpoint, join, destroy, focus — are constructors/accessors on the
// Endpoint and Group objects rather than events that travel through a
// stack; see Endpoint.Join, Endpoint.Destroy and Group.Focus.
const (
	// DCast multicasts Msg to the current view.
	DCast EventType = iota + 1
	// DSend sends Msg to the Dests subset of the view.
	DSend
	// DAck acknowledges that the application has processed message ID
	// (end-to-end stability, paper §9).
	DAck
	// DStable informs layers that message ID is stable and may be
	// garbage-collected.
	DStable
	// DView installs View, e.g. fed by an external membership service
	// (paper §5).
	DView
	// DLeave leaves the group.
	DLeave
	// DFlush starts a flush that removes the Failed members.
	DFlush
	// DFlushOK consents to an in-progress flush.
	DFlushOK
	// DMerge requests a merge with the view reachable at Contact.
	DMerge
	// DMergeGranted grants the merge request in Contact/Msg.
	DMergeGranted
	// DMergeDenied denies the merge request, with Reason.
	DMergeDenied
	// DDestroy tears the stack down.
	DDestroy
	// DDump asks every layer to append diagnostics to Dump.
	DDump
	// DLocate broadcasts a discovery beacon beyond the current view.
	// Not in Table 1: it is the hook for the paper's "resource
	// location" protocol type (Figure 1), used by the MERGE layer to
	// find concurrent views of the same group. Only the COM layer acts
	// on it; every other layer passes it through.
	DLocate
)

// Upcall event kinds (paper Table 2).
const (
	// UPacket is a raw network arrival entering the bottom of a stack;
	// the COM layer converts it to UCast/USend with a Source.
	UPacket EventType = iota + 101
	// UCast delivers a received multicast message.
	UCast
	// USend delivers a received subset message.
	USend
	// UView reports a view installation.
	UView
	// UFlush reports that a view flush has started (Failed lists the
	// members being removed).
	UFlush
	// UFlushOK reports that the flush completed.
	UFlushOK
	// ULeave reports that member Source left voluntarily.
	ULeave
	// UDestroy reports that the endpoint was destroyed.
	UDestroy
	// ULostMessage reports an unrecoverable message loss (the NAK
	// layer's place holder, paper §7).
	ULostMessage
	// UStable carries a stability matrix update (paper §9).
	UStable
	// UProblem reports a communication problem with member Source
	// (failure suspicion input to membership, paper §5).
	UProblem
	// USystemError reports a system error, with Reason.
	USystemError
	// UExit is the close-down event.
	UExit
	// UMergeRequest reports that the view at Contact asks to merge.
	UMergeRequest
	// UMergeDenied reports that our merge request was denied, with
	// Reason.
	UMergeDenied
	// ULocate reports a discovery beacon from another view (companion
	// to DLocate; consumed by the MERGE layer).
	ULocate
	// USuspect reports graded suspicion of member Source: the φ-accrual
	// suspicion level (Phi) crossed a detector band, or fell back below
	// one (a retraction). Not in Table 2: it extends the vocabulary with
	// the continuous signal between "healthy" and the binary PROBLEM
	// verdict, so adaptive layers (ADAPT) and applications can react to
	// degradation before exclusion. Emitted by HBEAT under the contract
	// documented in DESIGN.md: banded thresholds with hysteresis, at most
	// one upcall per band transition, monotone within a band.
	USuspect
	// USwitch reports the outcome of a run-time stack reconfiguration
	// (the SWITCH layer's epoch fence). Not in Table 2: the paper
	// promises LEGO-style restacking at run time but gives no event for
	// it. Epoch carries the reconfiguration epoch; Reason begins with
	// "committed" (the new segment is live) or "aborted" (the old
	// segment was rolled back, with the cause appended). Delivered
	// CAST/SEND events emerging from a switchable stack also carry the
	// epoch they were sent under in Epoch.
	USwitch
)

// IsDowncall reports whether t travels from application to network.
func (t EventType) IsDowncall() bool { return t >= DCast && t <= DLocate }

// IsUpcall reports whether t travels from network to application.
func (t EventType) IsUpcall() bool { return t >= UPacket && t <= USwitch }

var eventNames = map[EventType]string{
	DCast: "cast", DSend: "send", DAck: "ack", DStable: "stable",
	DView: "view", DLeave: "leave", DFlush: "flush", DFlushOK: "flush_ok",
	DMerge: "merge", DMergeGranted: "merge_granted", DMergeDenied: "merge_denied",
	DDestroy: "destroy", DDump: "dump", DLocate: "locate",
	UPacket: "PACKET", UCast: "CAST", USend: "SEND", UView: "VIEW",
	UFlush: "FLUSH", UFlushOK: "FLUSH_OK", ULeave: "LEAVE", UDestroy: "DESTROY",
	ULostMessage: "LOST_MESSAGE", UStable: "STABLE", UProblem: "PROBLEM",
	USystemError: "SYSTEM_ERROR", UExit: "EXIT",
	UMergeRequest: "MERGE_REQUEST", UMergeDenied: "MERGE_DENIED",
	ULocate: "LOCATE", USuspect: "SUSPECT", USwitch: "SWITCH",
}

// String returns the paper's name for the event type: lower case for
// downcalls, upper case for upcalls.
func (t EventType) String() string {
	if s, ok := eventNames[t]; ok {
		return s
	}
	return fmt.Sprintf("EventType(%d)", int(t))
}

// Event is the single invocation record that flows through a protocol
// stack. One structure serves every HCPI call; unused fields are zero.
// Events are passed by pointer and owned by the layer currently
// processing them; a layer that buffers an event must not let an alias
// escape into a later invocation.
type Event struct {
	Type EventType

	// Msg is the message payload for cast/send/CAST/SEND and for
	// protocol-internal control messages.
	Msg *message.Message

	// Source is the originating endpoint of an upcall (CAST/SEND
	// sender, PROBLEM subject, LEAVE subject).
	Source EndpointID

	// Dests is the destination subset for a send downcall.
	Dests []EndpointID

	// View is the view being installed (view/VIEW).
	View *View

	// Failed lists failed members (flush/FLUSH).
	Failed []EndpointID

	// Contact identifies the remote view in merge traffic.
	Contact EndpointID

	// ID identifies a message for ack/stable and is set on delivered
	// CAST/SEND events by a stability layer so the application can ack.
	ID MsgID

	// Stability is the matrix carried by a STABLE upcall.
	Stability *StabilityMatrix

	// Reason explains SYSTEM_ERROR, MERGE_DENIED and LOST_MESSAGE.
	Reason string

	// Timestamp is the causal (vector) timestamp attached by a TSTAMP
	// layer on delivery — property P13, consumed by ORDER(causal).
	// Indexed by the sender's view ranks at send time.
	Timestamp []uint64

	// Priority orders competing transmissions in a prioritized-effort
	// layer (NNAK, property P2). Higher is more urgent; 0 is normal.
	// The ADAPT layer sheds lowest-priority casts first under overload.
	Priority int

	// Phi is the φ-accrual suspicion level carried by a SUSPECT upcall.
	// Higher means longer-than-expected silence from Source; a
	// retraction carries the (lower) level φ fell back to.
	Phi float64

	// Epoch is the reconfiguration epoch of a SWITCH upcall, and the
	// sending epoch stamped on CAST/SEND deliveries emerging from a
	// stack with a SWITCH fence. Zero means the initial (never
	// reconfigured) configuration.
	Epoch uint64

	// Primary marks a VIEW upcall as belonging to the primary
	// partition when the membership layer runs with the Isis-style
	// primary-partition progress restriction (paper §9). Without that
	// option every view reports Primary.
	Primary bool

	// Dump accumulates per-layer diagnostics for the dump downcall.
	Dump []string
}

// NewCast builds a cast downcall for msg.
func NewCast(msg *message.Message) *Event { return &Event{Type: DCast, Msg: msg} }

// NewSend builds a send downcall for msg to dests.
func NewSend(msg *message.Message, dests []EndpointID) *Event {
	return &Event{Type: DSend, Msg: msg, Dests: dests}
}

// String renders a short diagnostic form.
func (ev *Event) String() string {
	s := ev.Type.String()
	if ev.Msg != nil {
		s += " " + ev.Msg.String()
	}
	if !ev.Source.IsZero() {
		s += " from=" + ev.Source.String()
	}
	if ev.View != nil {
		s += " view=" + ev.View.String()
	}
	return s
}
