package core

import (
	"time"

	"horus/internal/message"
)

// Layer is the abstract data type at the heart of the paper: a
// protocol module with standardized top and bottom interfaces, so that
// layers "can be stacked on top of each other like LEGO blocks" at run
// time (paper §1, Figure 1).
//
// A layer instance is private to one (endpoint, group) pair — "although
// a single layer may be used concurrently by many groups and many
// endpoints in the same process, each instance has its own state"
// (paper §3). Instances are created by a Factory each time a stack is
// composed.
//
// Down receives events travelling from the application toward the
// network; Up receives events travelling from the network toward the
// application. A layer reacts to the event kinds it implements and
// passes everything else through via its Context. All invocations on
// one stack are serialized by the endpoint's event queue, so layer
// code needs no internal locking.
type Layer interface {
	// Name returns the layer's protocol name, e.g. "NAK".
	Name() string
	// Init is called once, after the stack is assembled and before any
	// event is delivered. The layer keeps c for passing events on.
	Init(c *Context) error
	// Down handles an event moving toward the network.
	Down(ev *Event)
	// Up handles an event moving toward the application.
	Up(ev *Event)
}

// Factory creates a fresh layer instance for one (endpoint, group).
type Factory func() Layer

// StackSpec lists the layer factories of a stack, top first. The §7
// example stack TOTAL:MBRSHIP:FRAG:NAK:COM is written
//
//	StackSpec{total.New, mbrship.New, frag.New, nak.New, com.New}
type StackSpec []Factory

// Handler receives the upcalls that emerge from the top of a stack.
// It is the "top-most module that converts the Horus protocol
// abstraction into one matching the needs of a user" (paper §2).
// Handlers run on the endpoint's event queue; they may issue downcalls
// (Cast, Ack, ...) freely — those are enqueued, not recursive.
type Handler func(ev *Event)

// Context is a layer's window onto its position in a stack. It carries
// events to the adjacent layers, provides timers and identity, and —
// for the bottom layer only — access to the raw transport.
type Context struct {
	stack *Stack
	index int
	// sub is non-nil for a layer living inside a host-managed segment
	// (see SubStack): Down/Up route within the segment and timers stop
	// firing once the segment is detached. Everything else — identity,
	// transport, timers, tracing — is shared with the outer stack.
	sub *SubStack
}

// Down passes ev to the next layer below that acts on it (transparent
// layers are skipped via the precomputed tables, §10 item 1), or
// absorbs it at the bottom of the stack. A message-bearing downcall
// falling off the bottom means the stack lacks a COM layer; it is
// reported as a SYSTEM_ERROR upcall rather than silently dropped.
func (c *Context) Down(ev *Event) {
	if c.sub != nil {
		c.sub.down(c.index+1, ev)
		return
	}
	n := len(c.stack.layers)
	j := c.stack.skipNextDown(ev.Type, c.index+1, n)
	if j < n {
		c.stack.layers[j].Down(ev)
		return
	}
	switch ev.Type {
	case DCast, DSend:
		c.stack.deliverUp(&Event{
			Type:   USystemError,
			Reason: "message downcall fell off the bottom of the stack (no COM layer?)",
		})
	default:
		// Control downcalls are absorbed below the bottom layer.
	}
}

// Up passes ev to the next layer above that acts on it, or delivers it
// to the application handler at the top of the stack.
func (c *Context) Up(ev *Event) {
	if c.sub != nil {
		c.sub.up(c.index-1, ev)
		return
	}
	j := c.stack.skipNextUp(ev.Type, c.index-1)
	if j >= 0 {
		c.stack.layers[j].Up(ev)
		return
	}
	c.stack.deliverUp(ev)
}

// Transmit hands wire bytes for msg to the transport, addressed to
// dests. Only the bottom (COM) layer calls this.
func (c *Context) Transmit(dests []EndpointID, msg *message.Message) {
	c.TransmitWire(dests, msg.Marshal())
}

// TransmitWire hands an already-rendered wire image to the transport.
// The compiled cast plan calls this with its scratch buffer; per the
// Transport.Send contract the transport must not retain wire after the
// call returns. The endpoint's wire tap, if any, observes every
// transmission here — both paths, both fabrics.
func (c *Context) TransmitWire(dests []EndpointID, wire []byte) {
	ep := c.stack.group.ep
	if ep.wireTap != nil {
		ep.wireTap(dests, wire)
	}
	ep.transport.Send(ep.id, c.stack.group.addr, dests, wire)
}

// SetTimer schedules fn to run after d on the endpoint's event queue.
// The returned function cancels the timer; cancelling an expired timer
// is a no-op. Timers are silently inert after the stack is destroyed.
func (c *Context) SetTimer(d time.Duration, fn func()) (cancel func()) {
	ep := c.stack.group.ep
	stack := c.stack
	sub := c.sub
	return ep.transport.SetTimer(d, func() {
		ep.exec.Do(func() {
			if stack.destroyed || (sub != nil && sub.detached) {
				return
			}
			fn()
		})
	})
}

// Now returns the transport's current (possibly virtual) time.
func (c *Context) Now() time.Duration { return c.stack.group.ep.transport.Now() }

// EgressFeedback snapshots the local host's egress-congestion ledger
// when the transport meters egress (implements CongestionReporter).
// ok is false on transports without an egress model; adaptive layers
// must degrade to φ-only operation in that case.
func (c *Context) EgressFeedback() (EgressFeedback, bool) {
	ep := c.stack.group.ep
	if r, ok := ep.transport.(CongestionReporter); ok {
		return r.EgressFeedback(ep.id), true
	}
	return EgressFeedback{}, false
}

// Self returns the local endpoint's identifier.
func (c *Context) Self() EndpointID { return c.stack.group.ep.id }

// GroupAddr returns the address of the group this stack serves.
func (c *Context) GroupAddr() GroupAddr { return c.stack.group.addr }

// Tracef emits a trace record through the endpoint's trace hook, if
// one is installed. The TRACE layer and tests use this.
func (c *Context) Tracef(format string, args ...interface{}) {
	c.stack.group.ep.tracef(format, args...)
}

// Base provides pass-through Down/Up and Context bookkeeping for
// layers to embed. A layer embedding Base overrides only the methods
// it cares about and forwards the rest with b.Ctx.Down / b.Ctx.Up.
type Base struct {
	Ctx *Context
}

// Init stores the context. Layers that embed Base and need their own
// Init must call b.Base.Init themselves.
func (b *Base) Init(c *Context) error {
	b.Ctx = c
	return nil
}

// Down passes ev through unchanged.
func (b *Base) Down(ev *Event) { b.Ctx.Down(ev) }

// Up passes ev through unchanged.
func (b *Base) Up(ev *Event) { b.Ctx.Up(ev) }
