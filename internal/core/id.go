// Package core implements the Horus object model (paper §3) and the
// Horus Common Protocol Interface, HCPI (paper §4).
//
// It provides the four object classes of the paper — endpoints, groups,
// messages (in package message), and the event-queue execution model
// that replaced threads (paper §3 end, §10 item 2) — plus the Layer
// abstraction that lets protocol modules be stacked at run time.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// EndpointID identifies a communication endpoint. The paper's endpoint
// address is used "for membership purposes"; coordinator election in
// the MBRSHIP layer picks "the oldest surviving member of the oldest
// view", so endpoint identifiers carry a logical birth stamp providing
// a total age order across a network.
type EndpointID struct {
	// Site names the process/host owning the endpoint.
	Site string
	// Birth is a logical creation stamp, unique per network; smaller
	// is older.
	Birth uint64
}

// IsZero reports whether the ID is the zero (invalid) endpoint.
func (e EndpointID) IsZero() bool { return e.Site == "" && e.Birth == 0 }

// Older reports whether e was created before other, with Site as a
// deterministic tie-break.
func (e EndpointID) Older(other EndpointID) bool {
	if e.Birth != other.Birth {
		return e.Birth < other.Birth
	}
	return e.Site < other.Site
}

// String renders "site#birth".
func (e EndpointID) String() string { return fmt.Sprintf("%s#%d", e.Site, e.Birth) }

// GroupAddr is the address messages are sent to; endpoints join groups
// rather than addressing each other directly (paper §3: "messages are
// not addressed to endpoints, but to groups").
type GroupAddr string

// ViewID identifies a view installation: a sequence number plus the
// coordinator that installed it. Views with larger Seq are younger;
// Coord breaks ties between concurrent partitioned views.
type ViewID struct {
	Seq   uint64
	Coord EndpointID
}

// Older reports whether v was installed before other.
func (v ViewID) Older(other ViewID) bool {
	if v.Seq != other.Seq {
		return v.Seq < other.Seq
	}
	return v.Coord.Older(other.Coord)
}

// String renders "seq@coord".
func (v ViewID) String() string { return fmt.Sprintf("v%d@%s", v.Seq, v.Coord) }

// View is an ordered list of the endpoints a member can communicate
// with. Each member holds its own local copy; with a membership layer
// in the stack, every member of the view is guaranteed to have been
// sent the same view (paper §4).
type View struct {
	ID      ViewID
	Group   GroupAddr
	Members []EndpointID // rank order: Members[0] has rank 0
}

// NewView builds a view with members sorted by age (oldest first),
// which makes rank deterministic across members.
func NewView(id ViewID, group GroupAddr, members []EndpointID) *View {
	ms := make([]EndpointID, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Older(ms[j]) })
	return &View{ID: id, Group: group, Members: ms}
}

// Rank returns the position of e in the view, or -1 if absent.
func (v *View) Rank(e EndpointID) int {
	for i, m := range v.Members {
		if m == e {
			return i
		}
	}
	return -1
}

// Contains reports whether e is a member of the view.
func (v *View) Contains(e EndpointID) bool { return v.Rank(e) >= 0 }

// Size returns the number of members.
func (v *View) Size() int { return len(v.Members) }

// Clone returns an independent deep copy of the view.
func (v *View) Clone() *View {
	ms := make([]EndpointID, len(v.Members))
	copy(ms, v.Members)
	return &View{ID: v.ID, Group: v.Group, Members: ms}
}

// Without returns a copy of the view's members with the given
// endpoints removed.
func (v *View) Without(failed []EndpointID) []EndpointID {
	out := make([]EndpointID, 0, len(v.Members))
	for _, m := range v.Members {
		excluded := false
		for _, f := range failed {
			if m == f {
				excluded = true
				break
			}
		}
		if !excluded {
			out = append(out, m)
		}
	}
	return out
}

// Oldest returns the oldest member of the view (rank 0 after age
// sorting) — the member the MBRSHIP layer elects as flush coordinator
// without exchanging messages (paper §5 footnote 1).
func (v *View) Oldest() EndpointID {
	if len(v.Members) == 0 {
		return EndpointID{}
	}
	oldest := v.Members[0]
	for _, m := range v.Members[1:] {
		if m.Older(oldest) {
			oldest = m
		}
	}
	return oldest
}

// String renders "v3@a#1{a#1,b#2}".
func (v *View) String() string {
	names := make([]string, len(v.Members))
	for i, m := range v.Members {
		names[i] = m.String()
	}
	return fmt.Sprintf("%s{%s}", v.ID, strings.Join(names, ","))
}

// MsgID identifies a delivered message for end-to-end stability
// tracking (paper §9): the application passes it back via the ack
// downcall once the message "has been processed".
type MsgID struct {
	Origin EndpointID
	Seq    uint64
}

// String renders "origin/seq".
func (id MsgID) String() string { return fmt.Sprintf("%s/%d", id.Origin, id.Seq) }
