package core

import (
	"fmt"
	"strings"

	"horus/internal/message"
)

// SubStack is a privately owned run of layers living inside a single
// host layer of an ordinary Stack. It is the mechanism behind run-time
// reconfiguration (the SWITCH layer): the outer stack never mutates —
// its skip tables, contexts and indices stay frozen — while the host
// builds, swaps and retires whole segments at will.
//
// Events injected at the segment's top (Down) or bottom (Up) traverse
// the segment layer by layer exactly as in an outer stack; whatever
// falls off either end is handed to the host's top/bottom hooks. The
// segment shares the host's endpoint, group, timers and transport: a
// segment layer's Context answers Self/Now/SetTimer identically to an
// outer context, so any Layer composes into a segment unchanged.
//
// Segments are deliberately simple: no skip tables (they are short,
// and rebuilt wholesale on every reconfiguration) and no independent
// destroy lifecycle — the host drives DDestroy through a retiring
// segment and then Detach()es it, after which the segment is inert:
// events stop traversing and pending timers of its layers fire into
// the void. That detach fence is what makes a swap atomic from the
// outer stack's point of view.
type SubStack struct {
	host     *Context
	layers   []Layer
	top      func(*Event)
	bottom   func(*Event)
	plan     *castPlan
	detached bool
}

// Quiescer is the optional interface a layer implements to report
// whether it holds in-flight work. The SWITCH layer polls it during
// the quiesce phase of a reconfiguration: a segment may only be
// swapped at a communication-closed cut, i.e. when no layer is still
// holding traffic in either direction.
//
// down=true asks about the sending side (unsent or unacknowledged
// output the layer still intends to push down); down=false asks about
// the delivery side (received data buffered awaiting delivery upward,
// e.g. an ordering layer's reorder buffer). A layer that buffers
// nothing need not implement Quiescer and is assumed quiescent.
type Quiescer interface {
	Quiescent(down bool) bool
}

// SegmentHolder is implemented by layers that privately manage a
// SubStack (the SWITCH layer). Stack.Focus and Stack.Names descend
// into held segments, so g.Focus("TOTAL") finds an ordering layer
// even when it lives inside a managed segment.
type SegmentHolder interface {
	Segment() *SubStack
}

// NewSubStack composes a segment owned by the calling layer. Events
// falling off the segment's top are passed to top; events falling off
// its bottom are passed to bottom — typically the host forwards them
// into its own Context (Up/Down), tagging or filtering as it goes.
// Layers are instantiated and Init'd top first, like newStack.
func (c *Context) NewSubStack(spec StackSpec, top, bottom func(*Event)) (*SubStack, error) {
	ss := &SubStack{host: c, top: top, bottom: bottom}
	for _, f := range spec {
		ss.layers = append(ss.layers, f())
	}
	for i, l := range ss.layers {
		if err := l.Init(&Context{stack: c.stack, index: i, sub: ss}); err != nil {
			return nil, fmt.Errorf("init segment layer %d (%s): %w", i, l.Name(), err)
		}
	}
	// Segments get their own compiled cast plan (plan.go): the flat
	// image of the segment's headers is materialized back into a
	// Message at the fence, because the host's bottom hook — and the
	// outer layers under it — speak the per-layer interface. A swap
	// builds a fresh SubStack, so the plan is re-derived for the new
	// segment and the retired plan dies behind the detach fence: epoch
	// change IS plan invalidation.
	ss.plan = compileCastPlan(ss.layers, func(ev *Event, wire []byte) {
		m, err := message.Unmarshal(wire)
		if err != nil {
			// Unreachable: the plan built the wire image itself.
			panic(fmt.Sprintf("substack: compiled wire image unparseable: %v", err))
		}
		ev.Msg = m
		ss.bottom(ev)
	})
	return ss, nil
}

// Down injects ev at the top of the segment, through the compiled plan
// when one exists and accepts the cast.
func (ss *SubStack) Down(ev *Event) {
	if ss.detached {
		return
	}
	if ev.Type == DCast && ss.plan != nil && !ss.host.stack.group.ep.slowPath {
		if ss.plan.execute(ev) {
			return
		}
	}
	ss.down(0, ev)
}

// HasCastPlan reports whether the segment compiled into a cast plan.
func (ss *SubStack) HasCastPlan() bool { return ss.plan != nil }

// PlanStats snapshots the segment's fast-path counters.
func (ss *SubStack) PlanStats() PlanStats {
	if ss.plan == nil {
		return PlanStats{}
	}
	return ss.plan.stats
}

// Up injects ev at the bottom of the segment.
func (ss *SubStack) Up(ev *Event) { ss.up(len(ss.layers) - 1, ev) }

func (ss *SubStack) down(from int, ev *Event) {
	if ss.detached {
		return
	}
	if from < len(ss.layers) {
		ss.layers[from].Down(ev)
		return
	}
	ss.bottom(ev)
}

func (ss *SubStack) up(from int, ev *Event) {
	if ss.detached {
		return
	}
	if from >= 0 {
		ss.layers[from].Up(ev)
		return
	}
	ss.top(ev)
}

// Detach makes the segment inert: further traversals stop dead and
// timers armed by its layers no longer fire. The host calls this after
// driving DDestroy through a retiring segment, so a zombie timer or a
// buffered continuation inside an old segment cannot leak events into
// the stack after the swap.
func (ss *SubStack) Detach() { ss.detached = true }

// Quiescent reports whether every segment layer that implements
// Quiescer is quiescent in the given direction. An empty segment is
// trivially quiescent.
func (ss *SubStack) Quiescent(down bool) bool {
	for _, l := range ss.layers {
		if q, ok := l.(Quiescer); ok && !q.Quiescent(down) {
			return false
		}
	}
	return true
}

// Focus returns the segment layer with the given name, or nil.
func (ss *SubStack) Focus(name string) Layer {
	for _, l := range ss.layers {
		if l.Name() == name {
			return l
		}
	}
	return nil
}

// Names returns the segment's layer names top first, ":"-joined.
func (ss *SubStack) Names() string {
	names := make([]string, len(ss.layers))
	for i, l := range ss.layers {
		names[i] = l.Name()
	}
	return strings.Join(names, ":")
}

// Len returns the number of segment layers.
func (ss *SubStack) Len() int { return len(ss.layers) }

// BelowNames returns the protocol names of every layer strictly below
// the calling layer, top first — for a segment layer that includes the
// rest of its segment, then the host layer and everything under it.
// The SWITCH layer feeds this to the property calculus to re-derive
// Table 3 well-formedness of a proposed segment over what is actually
// beneath it.
func (c *Context) BelowNames() []string {
	var names []string
	if c.sub != nil {
		for _, l := range c.sub.layers[c.index+1:] {
			names = append(names, l.Name())
		}
		h := c.sub.host
		for _, l := range h.stack.layers[h.index:] {
			names = append(names, l.Name())
		}
		return names
	}
	for _, l := range c.stack.layers[c.index+1:] {
		names = append(names, l.Name())
	}
	return names
}
