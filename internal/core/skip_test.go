package core_test

import (
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/message"
)

// skippable counts invocations and declares transparency for all
// control events; only casts reach it.
type skippable struct {
	core.Base
	downs, ups int
}

func (s *skippable) Name() string { return "SKIP" }
func (s *skippable) Down(ev *core.Event) {
	s.downs++
	s.Ctx.Down(ev)
}
func (s *skippable) Up(ev *core.Event) {
	s.ups++
	s.Ctx.Up(ev)
}
func (s *skippable) Transparent(t core.EventType, down bool) bool {
	if down {
		return t != core.DCast
	}
	return t != core.UCast
}

// opaque counts invocations and declares nothing: it sees everything.
// With absorb set (the bottom position) it swallows message downcalls
// like a COM without a network, so nothing falls off the stack.
type opaque struct {
	core.Base
	absorb     bool
	downs, ups int
}

func (o *opaque) Name() string { return "OPAQUE" }
func (o *opaque) Down(ev *core.Event) {
	o.downs++
	if o.absorb && (ev.Type == core.DCast || ev.Type == core.DSend) {
		return
	}
	o.Ctx.Down(ev)
}
func (o *opaque) Up(ev *core.Event) {
	o.ups++
	o.Ctx.Up(ev)
}

func TestSkippingRoutesPastTransparentLayers(t *testing.T) {
	sk := &skippable{}
	op := &opaque{}
	bot := &opaque{absorb: true}
	ep := core.NewEndpoint(core.EndpointID{Site: "a", Birth: 1}, nullTransportSkip{})
	var ups []core.EventType
	g, err := ep.Join("g", core.StackSpec{
		func() core.Layer { return op },
		func() core.Layer { return sk },
		func() core.Layer { return bot },
	}, func(ev *core.Event) { ups = append(ups, ev.Type) })
	if err != nil {
		t.Fatal(err)
	}

	// A cast traverses every layer.
	g.Cast(message.New([]byte("x")))
	if sk.downs != 1 || op.downs != 1 || bot.downs != 1 {
		t.Fatalf("cast invocations: op=%d sk=%d bot=%d, want 1/1/1", op.downs, sk.downs, bot.downs)
	}

	// A control downcall skips the transparent layer entirely.
	g.Ack(core.MsgID{Origin: ep.ID(), Seq: 1})
	if sk.downs != 1 {
		t.Fatalf("transparent layer invoked for ack (downs=%d)", sk.downs)
	}
	if op.downs != 2 || bot.downs != 2 {
		t.Fatalf("opaque layers missed the ack: op=%d bot=%d", op.downs, bot.downs)
	}

	// Upward: a PROBLEM from the bottom skips the transparent layer
	// but reaches the opaque one and the handler.
	ep.Do(func() {
		bot.Ctx.Up(&core.Event{Type: core.UProblem, Source: ep.ID()})
	})
	if sk.ups != 0 {
		t.Fatalf("transparent layer invoked for PROBLEM (ups=%d)", sk.ups)
	}
	if op.ups != 1 {
		t.Fatalf("opaque layer missed the PROBLEM (ups=%d)", op.ups)
	}
	if len(ups) != 1 || ups[0] != core.UProblem {
		t.Fatalf("handler events = %v", ups)
	}

	// Upward cast goes through everyone.
	ep.Do(func() {
		bot.Ctx.Up(&core.Event{Type: core.UCast, Msg: message.New([]byte("y")), Source: ep.ID()})
	})
	if sk.ups != 1 || op.ups != 2 {
		t.Fatalf("cast up invocations: sk=%d op=%d", sk.ups, op.ups)
	}
}

func TestFullyTransparentStackDeliversToHandler(t *testing.T) {
	// Every layer transparent for PROBLEM: the event must emerge at
	// the handler without touching any layer.
	l1, l2 := &skippable{}, &skippable{}
	ep := core.NewEndpoint(core.EndpointID{Site: "a", Birth: 1}, nullTransportSkip{})
	var got int
	g, err := ep.Join("g", core.StackSpec{
		func() core.Layer { return l1 },
		func() core.Layer { return l2 },
	}, func(ev *core.Event) {
		if ev.Type == core.UProblem {
			got++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ep.Do(func() {
		g.Stack().Up(&core.Event{Type: core.UProblem})
	})
	if got != 1 || l1.ups != 0 || l2.ups != 0 {
		t.Fatalf("got=%d l1=%d l2=%d", got, l1.ups, l2.ups)
	}
	// And a control downcall falls straight to absorption.
	g.Ack(core.MsgID{})
	if l1.downs != 0 || l2.downs != 0 {
		t.Fatal("transparent layers saw the ack")
	}
}

type nullTransportSkip struct{}

func (nullTransportSkip) Send(core.EndpointID, core.GroupAddr, []core.EndpointID, []byte) {}
func (nullTransportSkip) SetTimer(d time.Duration, fn func()) func()                      { return func() {} }
func (nullTransportSkip) Now() time.Duration                                              { return 0 }
