package core

import (
	"fmt"
	"strings"
)

// Stack is one composed protocol stack serving a single (endpoint,
// group) pair. Layers are ordered top first; events enter at the top
// (downcalls) or the bottom (network packets) and traverse layer by
// layer as synchronous calls — the per-layer cost the §10 benchmarks
// measure.
type Stack struct {
	group     *Group
	layers    []Layer
	skip      *skipTables
	plan      *castPlan
	destroyed bool
}

// newStack instantiates every factory in spec, wires contexts, runs
// Init top-down, precomputes the layer-skipping jump tables (§10
// item 1), and — when every layer compiles — derives the compacted
// cast send plan (§10 item 3; see plan.go).
func newStack(g *Group, spec StackSpec) (*Stack, error) {
	s := &Stack{group: g, layers: make([]Layer, 0, len(spec))}
	for _, f := range spec {
		s.layers = append(s.layers, f())
	}
	for i, l := range s.layers {
		if err := l.Init(&Context{stack: s, index: i}); err != nil {
			return nil, fmt.Errorf("init layer %d (%s): %w", i, l.Name(), err)
		}
	}
	s.skip = buildSkipTables(s.layers)
	s.plan = compileCastPlan(s.layers, nil)
	return s, nil
}

// Down injects a downcall at the top of the stack. Callers outside the
// endpoint's event queue must go through Group's methods instead. A
// cast on a stack with a compiled plan takes the fast path unless the
// plan declines it (or the endpoint pins the reference path).
func (s *Stack) Down(ev *Event) {
	if s.destroyed {
		return
	}
	if ev.Type == DCast && s.plan != nil && !s.group.ep.slowPath {
		if s.plan.execute(ev) {
			return
		}
	}
	(&Context{stack: s, index: -1}).Down(ev)
}

// HasCastPlan reports whether every layer compiled into a cast send
// plan when the stack was composed.
func (s *Stack) HasCastPlan() bool { return s.plan != nil }

// PlanStats snapshots the stack's fast-path counters. Zero values on a
// stack without a plan.
func (s *Stack) PlanStats() PlanStats {
	if s.plan == nil {
		return PlanStats{}
	}
	return s.plan.stats
}

// Up injects an upcall at the bottom of the stack (a network arrival).
func (s *Stack) Up(ev *Event) {
	if s.destroyed {
		return
	}
	(&Context{stack: s, index: len(s.layers)}).Up(ev)
}

// deliverUp hands an event that emerged from the top of the stack to
// the group, which updates its cached state and invokes the
// application handler.
func (s *Stack) deliverUp(ev *Event) {
	if s.destroyed && ev.Type != UDestroy && ev.Type != UExit {
		return
	}
	s.group.deliver(ev)
}

// skipNextDown resolves the next acting layer at or below from. The
// tables are nil only during Init (layers may arm zero-delay timers
// whose callbacks run after composition, but direct calls during Init
// fall back to no skipping).
func (s *Stack) skipNextDown(t EventType, from, n int) int {
	if s.skip == nil {
		if from > n {
			return n
		}
		return from
	}
	return s.skip.nextDown(t, from, n)
}

// skipNextUp resolves the next acting layer at or above from.
func (s *Stack) skipNextUp(t EventType, from int) int {
	if s.skip == nil {
		return from
	}
	return s.skip.nextUp(t, from)
}

// Focus returns the layer instance with the given name, or nil. This
// is the focus downcall of Table 1: a handle into a specific layer for
// out-of-band inspection or configuration.
func (s *Stack) Focus(name string) Layer {
	for _, l := range s.layers {
		if l.Name() == name {
			return l
		}
		if h, ok := l.(SegmentHolder); ok {
			if seg := h.Segment(); seg != nil {
				if f := seg.Focus(name); f != nil {
					return f
				}
			}
		}
	}
	return nil
}

// Names returns the stack's layer names top first, e.g.
// "TOTAL:MBRSHIP:FRAG:NAK:COM".
func (s *Stack) Names() string {
	names := make([]string, len(s.layers))
	for i, l := range s.layers {
		names[i] = l.Name()
		if h, ok := l.(SegmentHolder); ok {
			if seg := h.Segment(); seg != nil {
				names[i] += "[" + seg.Names() + "]"
			}
		}
	}
	return strings.Join(names, ":")
}

// Len returns the number of layers.
func (s *Stack) Len() int { return len(s.layers) }
