package core_test

import (
	"fmt"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/mbrship"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

// Compose a virtually synchronous stack at run time, form a two-member
// group by merging (join *is* view merge), and multicast.
func Example() {
	net := netsim.New(netsim.Config{Seed: 1, DefaultLink: netsim.Link{Delay: time.Millisecond}})
	stack := func() core.StackSpec {
		return core.StackSpec{
			mbrship.NewWith(
				mbrship.WithGossipPeriod(40*time.Millisecond),
				mbrship.WithFlushTimeout(500*time.Millisecond),
			),
			nak.NewWith(nak.WithStatusPeriod(20*time.Millisecond), nak.WithSuspectAfter(6)),
			com.New,
		}
	}

	alice := net.NewEndpoint("alice")
	ga, _ := alice.Join("demo", stack(), func(ev *core.Event) {
		if ev.Type == core.UCast {
			fmt.Printf("alice got %q from %s\n", ev.Msg.Body(), ev.Source.Site)
		}
	})
	bob := net.NewEndpoint("bob")
	gb, _ := bob.Join("demo", stack(), func(ev *core.Event) {
		switch ev.Type {
		case core.UView:
			if ev.View.Size() == 2 {
				fmt.Println("bob joined:", ev.View.Size(), "members")
			}
		case core.UCast:
			fmt.Printf("bob   got %q from %s\n", ev.Msg.Body(), ev.Source.Site)
		}
	})

	net.At(10*time.Millisecond, func() { gb.Merge(alice.ID()) })
	net.At(100*time.Millisecond, func() { ga.Cast(message.New([]byte("hello, group"))) })
	net.RunFor(time.Second)

	// Output:
	// bob joined: 2 members
	// alice got "hello, group" from alice
	// bob   got "hello, group" from alice
}
