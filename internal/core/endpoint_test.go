package core_test

import (
	"errors"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/message"
)

// fakeTransport is a minimal in-process transport for endpoint tests.
type fakeTransport struct {
	sent   []fakeSend
	timers []func()
}

type fakeSend struct {
	from  core.EndpointID
	group core.GroupAddr
	dests []core.EndpointID
	wire  []byte
}

func (f *fakeTransport) Send(from core.EndpointID, group core.GroupAddr, dests []core.EndpointID, wire []byte) {
	f.sent = append(f.sent, fakeSend{from, group, dests, wire})
}

func (f *fakeTransport) SetTimer(d time.Duration, fn func()) func() {
	f.timers = append(f.timers, fn)
	return func() {}
}

func (f *fakeTransport) Now() time.Duration { return 0 }

// passLayer forwards everything; echoes message downcalls to the
// transport via Transmit like a trivial COM.
type passLayer struct {
	core.Base
	initErr error
}

func (p *passLayer) Name() string { return "PASS" }

func (p *passLayer) Init(c *core.Context) error {
	if p.initErr != nil {
		return p.initErr
	}
	return p.Base.Init(c)
}

func (p *passLayer) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast:
		p.Ctx.Transmit(nil, ev.Msg)
	case core.DDump:
		ev.Dump = append(ev.Dump, "PASS: ok")
		p.Ctx.Down(ev)
	default:
		p.Ctx.Down(ev)
	}
}

func TestJoinDuplicateGroupRejected(t *testing.T) {
	ep := core.NewEndpoint(core.EndpointID{Site: "a", Birth: 1}, &fakeTransport{})
	if _, err := ep.Join("g", core.StackSpec{func() core.Layer { return &passLayer{} }}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Join("g", core.StackSpec{func() core.Layer { return &passLayer{} }}, nil); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestJoinInitErrorPropagates(t *testing.T) {
	ep := core.NewEndpoint(core.EndpointID{Site: "a", Birth: 1}, &fakeTransport{})
	boom := errors.New("boom")
	_, err := ep.Join("g", core.StackSpec{func() core.Layer { return &passLayer{initErr: boom} }}, nil)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestDestroyDeliversDestroyAndExit(t *testing.T) {
	ep := core.NewEndpoint(core.EndpointID{Site: "a", Birth: 1}, &fakeTransport{})
	var got []core.EventType
	_, err := ep.Join("g", core.StackSpec{func() core.Layer { return &passLayer{} }},
		func(ev *core.Event) { got = append(got, ev.Type) })
	if err != nil {
		t.Fatal(err)
	}
	ep.Destroy()
	if len(got) != 2 || got[0] != core.UDestroy || got[1] != core.UExit {
		t.Fatalf("events = %v, want [DESTROY EXIT]", got)
	}
	if ep.Group("g") != nil {
		t.Error("group still registered after destroy")
	}
	if _, err := ep.Join("h", core.StackSpec{func() core.Layer { return &passLayer{} }}, nil); err == nil {
		t.Error("join after destroy accepted")
	}
	ep.Destroy() // second destroy is a no-op
}

func TestCastReachesTransport(t *testing.T) {
	tr := &fakeTransport{}
	ep := core.NewEndpoint(core.EndpointID{Site: "a", Birth: 1}, tr)
	g, err := ep.Join("g", core.StackSpec{func() core.Layer { return &passLayer{} }}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Cast(message.New([]byte("w")))
	if len(tr.sent) != 1 || tr.sent[0].group != "g" {
		t.Fatalf("transport saw %v", tr.sent)
	}
}

func TestDeliverUnknownGroupDropped(t *testing.T) {
	ep := core.NewEndpoint(core.EndpointID{Site: "a", Birth: 1}, &fakeTransport{})
	ep.Deliver("nope", message.New([]byte("x")).Marshal()) // must not panic
}

func TestDeliverMalformedWireCounted(t *testing.T) {
	ep := core.NewEndpoint(core.EndpointID{Site: "a", Birth: 1}, &fakeTransport{})
	if _, err := ep.Join("g", core.StackSpec{func() core.Layer { return &passLayer{} }}, nil); err != nil {
		t.Fatal(err)
	}
	ep.Deliver("g", []byte{0, 0}) // too short for the length prefix
}

func TestEmptyStackErrorsOnCast(t *testing.T) {
	ep := core.NewEndpoint(core.EndpointID{Site: "a", Birth: 1}, &fakeTransport{})
	var errs []string
	g, err := ep.Join("g", core.StackSpec{}, func(ev *core.Event) {
		if ev.Type == core.USystemError {
			errs = append(errs, ev.Reason)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Cast(message.New([]byte("x")))
	if len(errs) != 1 {
		t.Fatalf("SYSTEM_ERRORs = %v, want one (cast fell off the stack)", errs)
	}
}

func TestDumpAndFocus(t *testing.T) {
	ep := core.NewEndpoint(core.EndpointID{Site: "a", Birth: 1}, &fakeTransport{})
	g, err := ep.Join("g", core.StackSpec{func() core.Layer { return &passLayer{} }}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := g.Dump(); d != "PASS: ok" {
		t.Errorf("dump = %q", d)
	}
	if g.Focus("PASS") == nil {
		t.Error("focus failed to find the layer")
	}
	if g.Focus("NOPE") != nil {
		t.Error("focus found a nonexistent layer")
	}
	if got := g.Stack().Names(); got != "PASS" {
		t.Errorf("stack names = %q", got)
	}
}

func TestGroupAccessorsAndControlDowncalls(t *testing.T) {
	tr := &fakeTransport{}
	ep := core.NewEndpoint(core.EndpointID{Site: "a", Birth: 1}, tr)
	ep.SetTrace(func(string, ...interface{}) {})
	g, err := ep.Join("g", core.StackSpec{func() core.Layer { return &passLayer{} }}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Addr() != "g" || g.Endpoint() != ep {
		t.Error("accessors broken")
	}
	if g.View() != nil {
		t.Error("view before any installation")
	}
	if g.Stack().Len() != 1 {
		t.Errorf("stack len = %d", g.Stack().Len())
	}
	// Control downcalls traverse without effect on a pass-through
	// stack; they must not panic or mutate anything observable.
	g.Stable(core.MsgID{Origin: ep.ID(), Seq: 1})
	g.FlushOK()
	g.MergeDenied(core.EndpointID{Site: "x", Birth: 9}, "no")
	g.MergeGranted(core.EndpointID{Site: "x", Birth: 9})
	if ep.Malformed() != 0 {
		t.Error("spurious malformed count")
	}
}
