package core

import (
	"strings"

	"horus/internal/message"
)

// Group is the purely local group object of paper §3: it holds the
// per-endpoint state for one joined group — the group address, the
// current view as this member sees it, and the protocol stack. The
// "group" (the distributed set of members) exists only as the
// collection of such objects agreeing through the stacked protocols.
type Group struct {
	addr    GroupAddr
	ep      *Endpoint
	stack   *Stack
	handler Handler

	view   *View // last VIEW upcall seen at the top of the stack
	closed bool
}

// Addr returns the group address.
func (g *Group) Addr() GroupAddr { return g.addr }

// Endpoint returns the owning endpoint.
func (g *Group) Endpoint() *Endpoint { return g.ep }

// View returns the current view as last reported by a VIEW upcall, or
// nil before the first view installs. The returned view must be
// treated as immutable.
func (g *Group) View() *View { return g.view }

// Cast multicasts msg to the current view (Table 1 cast downcall).
func (g *Group) Cast(msg *message.Message) {
	g.down(NewCast(msg))
}

// Send sends msg to a subset of the view (Table 1 send downcall).
func (g *Group) Send(dests []EndpointID, msg *message.Message) {
	g.down(NewSend(msg, dests))
}

// Ack informs the stack that the application has processed the message
// identified by id (Table 1 ack downcall; end-to-end stability, §9).
func (g *Group) Ack(id MsgID) {
	g.down(&Event{Type: DAck, ID: id})
}

// Stable informs the stack that the message identified by id is stable
// and may be garbage-collected (Table 1 stable downcall).
func (g *Group) Stable(id MsgID) {
	g.down(&Event{Type: DStable, ID: id})
}

// Flush asks the membership machinery to remove the given failed
// members and flush the view (Table 1 flush downcall).
func (g *Group) Flush(failed []EndpointID) {
	g.down(&Event{Type: DFlush, Failed: failed})
}

// FlushOK consents to an in-progress flush (Table 1 flush_ok
// downcall). Membership layers that auto-consent make this optional.
func (g *Group) FlushOK() {
	g.down(&Event{Type: DFlushOK})
}

// Merge asks the stack to merge this member's view with the view
// reachable at contact (Table 1 merge downcall).
func (g *Group) Merge(contact EndpointID) {
	g.down(&Event{Type: DMerge, Contact: contact})
}

// MergeGranted grants a previously reported MERGE_REQUEST from contact.
func (g *Group) MergeGranted(contact EndpointID) {
	g.down(&Event{Type: DMergeGranted, Contact: contact})
}

// MergeDenied denies a previously reported MERGE_REQUEST from contact.
func (g *Group) MergeDenied(contact EndpointID, reason string) {
	g.down(&Event{Type: DMergeDenied, Contact: contact, Reason: reason})
}

// InstallView feeds an externally decided view down the stack (Table 1
// view downcall), e.g. from an external membership service (§5).
func (g *Group) InstallView(v *View) {
	g.down(&Event{Type: DView, View: v})
}

// Leave announces departure to the group and closes the stack (Table 1
// leave downcall).
func (g *Group) Leave() {
	g.ep.exec.Do(func() {
		if g.closed {
			return
		}
		g.stack.Down(&Event{Type: DLeave})
	})
	g.close(false)
}

// Dump collects one diagnostic line per layer (Table 1 dump downcall).
func (g *Group) Dump() string {
	var out string
	g.ep.exec.Do(func() {
		ev := &Event{Type: DDump}
		g.stack.Down(ev)
		out = strings.Join(ev.Dump, "\n")
	})
	return out
}

// Focus returns a handle on the named layer instance in this group's
// stack, or nil (Table 1 focus downcall).
func (g *Group) Focus(layerName string) Layer { return g.stack.Focus(layerName) }

// Stack exposes the composed stack (read-only uses: Names, Len).
func (g *Group) Stack() *Stack { return g.stack }

// down enqueues a downcall on the endpoint's event queue.
func (g *Group) down(ev *Event) {
	g.ep.exec.Do(func() {
		if g.closed {
			return
		}
		g.stack.Down(ev)
	})
}

// deliver receives events emerging from the top of the stack, updates
// the group object's cached state, and invokes the application handler.
func (g *Group) deliver(ev *Event) {
	if ev.Type == UView && ev.View != nil {
		g.view = ev.View
	}
	if g.handler != nil {
		g.handler(ev)
	}
}

// close tears down the stack. If destroy is true the stack first
// receives a destroy downcall; the handler then sees DESTROY and EXIT.
func (g *Group) close(destroy bool) {
	g.ep.exec.Do(func() {
		if g.closed {
			return
		}
		g.closed = true
		if destroy {
			g.stack.Down(&Event{Type: DDestroy})
		}
		g.stack.destroyed = true
		g.deliver(&Event{Type: UDestroy})
		g.deliver(&Event{Type: UExit})
	})
	g.ep.mu.Lock()
	delete(g.ep.groups, g.addr)
	g.ep.mu.Unlock()
	if reg, ok := g.ep.transport.(GroupRegistrar); ok {
		reg.LeaveGroup(g.ep.id, g.addr)
	}
}
