package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEndpointIDOlder(t *testing.T) {
	a := EndpointID{Site: "a", Birth: 1}
	b := EndpointID{Site: "b", Birth: 2}
	b1 := EndpointID{Site: "b", Birth: 1}
	if !a.Older(b) || b.Older(a) {
		t.Error("birth order broken")
	}
	if !a.Older(b1) || b1.Older(a) {
		t.Error("site tie-break broken")
	}
	if a.Older(a) {
		t.Error("id older than itself")
	}
	if !(EndpointID{}).IsZero() || a.IsZero() {
		t.Error("IsZero broken")
	}
}

func TestViewRankSortedByAge(t *testing.T) {
	old := EndpointID{Site: "z", Birth: 1}
	young := EndpointID{Site: "a", Birth: 9}
	v := NewView(ViewID{Seq: 1, Coord: old}, "g", []EndpointID{young, old})
	if v.Rank(old) != 0 || v.Rank(young) != 1 {
		t.Fatalf("ranks: old=%d young=%d, want 0/1 (age order)", v.Rank(old), v.Rank(young))
	}
	if v.Rank(EndpointID{Site: "x", Birth: 5}) != -1 {
		t.Error("rank of non-member != -1")
	}
	if v.Oldest() != old {
		t.Errorf("Oldest = %v", v.Oldest())
	}
}

func TestViewWithout(t *testing.T) {
	a := EndpointID{Site: "a", Birth: 1}
	b := EndpointID{Site: "b", Birth: 2}
	c := EndpointID{Site: "c", Birth: 3}
	v := NewView(ViewID{Seq: 1, Coord: a}, "g", []EndpointID{a, b, c})
	got := v.Without([]EndpointID{b})
	if len(got) != 2 || got[0] != a || got[1] != c {
		t.Fatalf("Without = %v", got)
	}
	if v.Size() != 3 {
		t.Error("Without mutated the view")
	}
}

func TestViewIDOlder(t *testing.T) {
	a := EndpointID{Site: "a", Birth: 1}
	b := EndpointID{Site: "b", Birth: 2}
	if !(ViewID{Seq: 1, Coord: b}).Older(ViewID{Seq: 2, Coord: a}) {
		t.Error("seq order broken")
	}
	if !(ViewID{Seq: 2, Coord: a}).Older(ViewID{Seq: 2, Coord: b}) {
		t.Error("coordinator tie-break broken")
	}
}

func TestViewCloneIndependent(t *testing.T) {
	a := EndpointID{Site: "a", Birth: 1}
	v := NewView(ViewID{Seq: 1, Coord: a}, "g", []EndpointID{a})
	c := v.Clone()
	c.Members[0] = EndpointID{Site: "x", Birth: 9}
	if v.Members[0] != a {
		t.Error("clone shares member storage")
	}
}

// TestHCPIDowncallsComplete pins the Table 1 vocabulary: each downcall
// of the paper has either an event kind or an explicit API method.
func TestHCPIDowncallsComplete(t *testing.T) {
	events := map[string]EventType{
		"cast": DCast, "send": DSend, "ack": DAck, "stable": DStable,
		"view": DView, "leave": DLeave, "flush": DFlush, "flush_ok": DFlushOK,
		"merge": DMerge, "merge_granted": DMergeGranted, "merge_denied": DMergeDenied,
		"destroy": DDestroy, "dump": DDump,
	}
	for name, et := range events {
		if !et.IsDowncall() {
			t.Errorf("%s is not classified as a downcall", name)
		}
		if et.String() != name {
			t.Errorf("downcall %v renders as %q, want %q", int(et), et.String(), name)
		}
	}
	// Table 1's endpoint / join / focus rows are constructors and
	// accessors: NewEndpoint, Endpoint.Join, Group.Focus — their
	// existence is checked by compilation in endpoint_test.go.
}

// TestHCPIUpcallsComplete pins the Table 2 vocabulary.
func TestHCPIUpcallsComplete(t *testing.T) {
	events := map[string]EventType{
		"MERGE_REQUEST": UMergeRequest, "MERGE_DENIED": UMergeDenied,
		"FLUSH": UFlush, "FLUSH_OK": UFlushOK, "VIEW": UView,
		"CAST": UCast, "SEND": USend, "LEAVE": ULeave, "DESTROY": UDestroy,
		"LOST_MESSAGE": ULostMessage, "STABLE": UStable, "PROBLEM": UProblem,
		"SYSTEM_ERROR": USystemError, "EXIT": UExit,
	}
	if len(events) != 14 {
		t.Fatalf("Table 2 has 14 upcalls, map has %d", len(events))
	}
	// Framework extension beyond the paper's Table 2: the φ-graded
	// SUSPECT upcall the failure detector feeds to adaptive layers.
	events["SUSPECT"] = USuspect
	for name, et := range events {
		if !et.IsUpcall() {
			t.Errorf("%s is not classified as an upcall", name)
		}
		if et.String() != name {
			t.Errorf("upcall %v renders as %q, want %q", int(et), et.String(), name)
		}
	}
}

func TestEventTypeStringUnknown(t *testing.T) {
	if s := EventType(999).String(); !strings.Contains(s, "999") {
		t.Errorf("unknown event type renders %q", s)
	}
}

func TestStabilityMatrixMinStable(t *testing.T) {
	a := EndpointID{Site: "a", Birth: 1}
	b := EndpointID{Site: "b", Birth: 2}
	m := NewStabilityMatrix([]EndpointID{a, b})
	m.Set(a, a, 5)
	m.Set(a, b, 3)
	if got := m.MinStable(a); got != 3 {
		t.Errorf("MinStable = %d, want 3", got)
	}
	if got := m.MinStable(b); got != 0 {
		t.Errorf("MinStable(b) = %d, want 0", got)
	}
	// Monotonicity: lowering is ignored.
	m.Set(a, b, 1)
	if got := m.Get(a, b); got != 3 {
		t.Errorf("Set lowered a count: %d", got)
	}
	// Unknown members are ignored.
	m.Set(EndpointID{Site: "x", Birth: 9}, a, 7)
	if got := m.Get(EndpointID{Site: "x", Birth: 9}, a); got != 0 {
		t.Errorf("unknown member accepted: %d", got)
	}
}

func TestStabilityMatrixMergeFrom(t *testing.T) {
	a := EndpointID{Site: "a", Birth: 1}
	b := EndpointID{Site: "b", Birth: 2}
	m1 := NewStabilityMatrix([]EndpointID{a, b})
	m2 := NewStabilityMatrix([]EndpointID{a, b})
	m1.Set(a, b, 2)
	m2.Set(a, b, 5)
	m2.Set(b, a, 1)
	m1.MergeFrom(m2)
	if m1.Get(a, b) != 5 || m1.Get(b, a) != 1 {
		t.Errorf("merge result: %v", m1)
	}
}

// Property: MergeFrom is monotone — no cell decreases.
func TestQuickMatrixMergeMonotone(t *testing.T) {
	a := EndpointID{Site: "a", Birth: 1}
	b := EndpointID{Site: "b", Birth: 2}
	members := []EndpointID{a, b}
	f := func(cells [4]uint8, other [4]uint8) bool {
		m := NewStabilityMatrix(members)
		o := NewStabilityMatrix(members)
		idx := 0
		for _, origin := range members {
			for _, member := range members {
				m.Set(origin, member, uint64(cells[idx]))
				o.Set(origin, member, uint64(other[idx]))
				idx++
			}
		}
		before := m.Clone()
		m.MergeFrom(o)
		for _, origin := range members {
			for _, member := range members {
				if m.Get(origin, member) < before.Get(origin, member) {
					return false
				}
				want := before.Get(origin, member)
				if o.Get(origin, member) > want {
					want = o.Get(origin, member)
				}
				if m.Get(origin, member) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExecutorNestedRunToCompletion(t *testing.T) {
	var x executor
	var order []int
	x.Do(func() {
		order = append(order, 1)
		x.Do(func() { order = append(order, 3) })
		order = append(order, 2)
	})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}
