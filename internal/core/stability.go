package core

import (
	"fmt"
	"strings"
)

// StabilityMatrix is the structure carried by STABLE upcalls (paper
// §9). Entry (i, j) records how many messages multicast by member i
// have been acknowledged as processed by member j. A message is stable
// once every surviving destination has processed it; what "processed"
// means is entirely application-defined — the matrix only reflects the
// ack downcalls the application issued (the paper's end-to-end point).
type StabilityMatrix struct {
	Members []EndpointID
	// Acked[i][j] = count of i's messages processed by j.
	Acked [][]uint64
}

// NewStabilityMatrix returns a zeroed matrix over members.
func NewStabilityMatrix(members []EndpointID) *StabilityMatrix {
	acked := make([][]uint64, len(members))
	for i := range acked {
		acked[i] = make([]uint64, len(members))
	}
	ms := make([]EndpointID, len(members))
	copy(ms, members)
	return &StabilityMatrix{Members: ms, Acked: acked}
}

// Index returns the row/column of member e, or -1.
func (s *StabilityMatrix) Index(e EndpointID) int {
	for i, m := range s.Members {
		if m == e {
			return i
		}
	}
	return -1
}

// Set records that acks messages from origin have been processed by
// member. Counts are monotone: a lower value than already recorded is
// ignored, since acknowledgement information can only grow.
func (s *StabilityMatrix) Set(origin, member EndpointID, acks uint64) {
	i, j := s.Index(origin), s.Index(member)
	if i < 0 || j < 0 {
		return
	}
	if acks > s.Acked[i][j] {
		s.Acked[i][j] = acks
	}
}

// Get returns how many of origin's messages member has processed.
func (s *StabilityMatrix) Get(origin, member EndpointID) uint64 {
	i, j := s.Index(origin), s.Index(member)
	if i < 0 || j < 0 {
		return 0
	}
	return s.Acked[i][j]
}

// MinStable returns the number of origin's messages processed by every
// member — i.e. the stable prefix of origin's message stream.
func (s *StabilityMatrix) MinStable(origin EndpointID) uint64 {
	i := s.Index(origin)
	if i < 0 || len(s.Members) == 0 {
		return 0
	}
	low := s.Acked[i][0]
	for _, v := range s.Acked[i][1:] {
		if v < low {
			low = v
		}
	}
	return low
}

// MergeFrom folds another matrix's knowledge into s (cell-wise max
// over the shared members). Gossip-style stability layers exchange
// matrices and merge them.
func (s *StabilityMatrix) MergeFrom(other *StabilityMatrix) {
	for i, origin := range other.Members {
		for j, member := range other.Members {
			s.Set(origin, member, other.Acked[i][j])
		}
	}
}

// Clone returns an independent deep copy.
func (s *StabilityMatrix) Clone() *StabilityMatrix {
	c := NewStabilityMatrix(s.Members)
	for i := range s.Acked {
		copy(c.Acked[i], s.Acked[i])
	}
	return c
}

// String renders the matrix one row per origin.
func (s *StabilityMatrix) String() string {
	var b strings.Builder
	for i, m := range s.Members {
		fmt.Fprintf(&b, "%s:%v ", m, s.Acked[i])
	}
	return strings.TrimSpace(b.String())
}
