package core

import "sync"

// executor is the event-queue execution model the paper reports moving
// to (§3 end, §10 item 2): rather than locking layers against
// concurrent threads, every invocation of a stack is placed on a queue
// and executed to completion by a single logical scheduling thread per
// endpoint. Besides eliminating intra-stack locking, this makes
// downcalls issued from within upcall handlers non-recursive: they are
// enqueued and run next, so application handlers may freely Cast.
type executor struct {
	mu      sync.Mutex
	queue   []func()
	head    int // next entry to run; queue[:head] is already done
	running bool
}

// Do runs fn on the endpoint's event queue. If no drain is in
// progress, the calling goroutine becomes the drainer and fn (plus any
// work fn enqueues) executes synchronously before Do returns; if a
// drain is already active — including the case where fn is enqueued
// from inside a running event — fn is queued for that drainer and Do
// returns immediately.
func (x *executor) Do(fn func()) {
	x.mu.Lock()
	x.queue = append(x.queue, fn)
	if x.running {
		x.mu.Unlock()
		return
	}
	x.running = true
	// Drain by head index rather than re-slicing the front: queue[1:]
	// would strand the backing array's capacity behind the head, making
	// nearly every enqueue reallocate. With an index the array is
	// reused across drains — the queue's steady-state allocation rate
	// is zero, which matters at cluster scale where every delivered
	// packet passes through here.
	for x.head < len(x.queue) {
		next := x.queue[x.head]
		x.queue[x.head] = nil // release the closure for GC
		x.head++
		x.mu.Unlock()
		next()
		x.mu.Lock()
	}
	x.queue = x.queue[:0]
	x.head = 0
	x.running = false
	x.mu.Unlock()
}
