package core

import "sync"

// executor is the event-queue execution model the paper reports moving
// to (§3 end, §10 item 2): rather than locking layers against
// concurrent threads, every invocation of a stack is placed on a queue
// and executed to completion by a single logical scheduling thread per
// endpoint. Besides eliminating intra-stack locking, this makes
// downcalls issued from within upcall handlers non-recursive: they are
// enqueued and run next, so application handlers may freely Cast.
type executor struct {
	mu      sync.Mutex
	queue   []func()
	running bool
}

// Do runs fn on the endpoint's event queue. If no drain is in
// progress, the calling goroutine becomes the drainer and fn (plus any
// work fn enqueues) executes synchronously before Do returns; if a
// drain is already active — including the case where fn is enqueued
// from inside a running event — fn is queued for that drainer and Do
// returns immediately.
func (x *executor) Do(fn func()) {
	x.mu.Lock()
	x.queue = append(x.queue, fn)
	if x.running {
		x.mu.Unlock()
		return
	}
	x.running = true
	for len(x.queue) > 0 {
		next := x.queue[0]
		x.queue = x.queue[1:]
		x.mu.Unlock()
		next()
		x.mu.Lock()
	}
	x.running = false
	x.mu.Unlock()
}
