package core

import "time"

// Transport is the environment underneath the bottom layer of every
// stack: a best-effort (property P1) message carrier plus a timer
// service. The network simulator implements it for deterministic
// discrete-event runs; a goroutine-based implementation provides
// wall-clock behaviour. Messages handed to Send may be delayed, lost,
// duplicated, reordered, or garbled — recovering from all of that is
// exactly the job of the layers above.
type Transport interface {
	// Send transmits wire bytes from the given endpoint to each
	// destination, best effort. An empty dests slice means "all
	// endpoints attached to the group address" (used before any view
	// is known, e.g. by merge discovery).
	Send(from EndpointID, group GroupAddr, dests []EndpointID, wire []byte)

	// SetTimer schedules fn after d. The returned function cancels the
	// timer if it has not fired.
	SetTimer(d time.Duration, fn func()) (cancel func())

	// Now returns the current transport time. For simulated transports
	// this is virtual time.
	Now() time.Duration
}
