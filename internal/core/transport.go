package core

import "time"

// Transport is the environment underneath the bottom layer of every
// stack: a best-effort (property P1) message carrier plus a timer
// service. The network simulator implements it for deterministic
// discrete-event runs; a goroutine-based implementation provides
// wall-clock behaviour. Messages handed to Send may be delayed, lost,
// duplicated, reordered, or garbled — recovering from all of that is
// exactly the job of the layers above.
type Transport interface {
	// Send transmits wire bytes from the given endpoint to each
	// destination, best effort. An empty dests slice means "all
	// endpoints attached to the group address" (used before any view
	// is known, e.g. by merge discovery). The transport must not
	// retain wire after Send returns: the compiled cast fast path
	// passes a per-stack scratch buffer that is overwritten by the
	// next cast. Both fabrics honour this — netsim copies per
	// delivery, udpnet encodes into a fresh datagram.
	Send(from EndpointID, group GroupAddr, dests []EndpointID, wire []byte)

	// SetTimer schedules fn after d. The returned function cancels the
	// timer if it has not fired.
	SetTimer(d time.Duration, fn func()) (cancel func())

	// Now returns the current transport time. For simulated transports
	// this is virtual time.
	Now() time.Duration
}

// GroupRegistrar is the optional transport interface behind
// group-scoped broadcast. A transport that implements it is told which
// endpoints have a stack composed for which group address, so an
// empty-dests Send can fan out to exactly the endpoints that could
// accept the packet instead of every endpoint attached to the medium —
// the difference between O(group) and O(cluster) work per discovery
// broadcast once thousands of endpoints share one fabric. Transports
// without it (real sockets, RealTime) keep the shared-medium model;
// receivers still drop packets for groups they have not joined, so the
// optimization is behaviour-preserving.
type GroupRegistrar interface {
	// JoinGroup records that id has composed a stack for group g.
	// Called once per successful Join, in join order.
	JoinGroup(id EndpointID, g GroupAddr)
	// LeaveGroup removes the registration (leave, destroy, crash).
	LeaveGroup(id EndpointID, g GroupAddr)
}

// EgressFeedback is a snapshot of the local egress ledger for one
// sending host: how much the host's token bucket is backed up and how
// many frames the fabric has delayed or dropped on its account. It is
// the congestion vocabulary surfaced *into* the layer interface — an
// adaptive layer polls it through Context.EgressFeedback and closes
// the loop between fabric backpressure and the send path, instead of
// discovering overload only through end-to-end loss.
type EgressFeedback struct {
	// BacklogBytes is the current depth of the host's egress queue:
	// bytes admitted by the token bucket but not yet clear of the
	// serialization horizon. Zero when the bucket is idle.
	BacklogBytes int

	// Congested counts frames from this host that were queued behind
	// the egress budget (delivered late) since the fabric started.
	Congested uint64

	// CollapseDropped counts frames from this host dropped because the
	// egress queue overflowed — the congestion-collapse signal.
	CollapseDropped uint64
}

// CongestionReporter is the optional transport interface behind the
// egress feedback hook. Fabrics that meter per-host egress (netsim,
// chaosnet via udpnet) implement it; transports without an egress
// model simply don't, and Context.EgressFeedback reports ok=false.
type CongestionReporter interface {
	// EgressFeedback snapshots the egress ledger for the given sending
	// endpoint. Must be safe to call from the endpoint's event loop.
	EgressFeedback(id EndpointID) EgressFeedback
}
