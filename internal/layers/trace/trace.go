// Package trace implements the tracing layer (Figure 1: "debugging,
// statistics"). It is transparent on the wire — no header, no
// behaviour change — and records every event crossing it in both
// directions, with per-type counters and an optional bounded event
// log, all inspectable through the focus downcall.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"horus/internal/core"
)

// Record is one logged event crossing.
type Record struct {
	Down bool // direction
	Type core.EventType
	Size int // wire size of the message, if any
	At   string
}

// Trace is one tracing layer instance.
type Trace struct {
	core.Base
	downCount map[core.EventType]int
	upCount   map[core.EventType]int
	log       []Record
	keep      int
}

// New returns a tracing layer keeping the last 128 events.
func New() core.Layer { return &Trace{keep: 128} }

// NewWithLog returns a factory keeping the last n events (0 disables
// the log, counters remain).
func NewWithLog(n int) core.Factory {
	return func() core.Layer { return &Trace{keep: n} }
}

// Name implements core.Layer.
func (t *Trace) Name() string { return "TRACE" }

// Counts returns per-type counters for one direction.
func (t *Trace) Counts(down bool) map[core.EventType]int {
	src := t.upCount
	if down {
		src = t.downCount
	}
	out := make(map[core.EventType]int, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// Log returns the retained event records, oldest first.
func (t *Trace) Log() []Record { return append([]Record(nil), t.log...) }

// Init implements core.Layer.
func (t *Trace) Init(c *core.Context) error {
	if err := t.Base.Init(c); err != nil {
		return err
	}
	t.downCount = make(map[core.EventType]int)
	t.upCount = make(map[core.EventType]int)
	return nil
}

// Down implements core.Layer.
func (t *Trace) Down(ev *core.Event) {
	t.record(true, ev)
	if ev.Type == core.DDump {
		ev.Dump = append(ev.Dump, "TRACE: "+t.summary())
	}
	t.Ctx.Down(ev)
}

// Up implements core.Layer.
func (t *Trace) Up(ev *core.Event) {
	t.record(false, ev)
	t.Ctx.Up(ev)
}

func (t *Trace) record(down bool, ev *core.Event) {
	if down {
		t.downCount[ev.Type]++
	} else {
		t.upCount[ev.Type]++
	}
	if t.keep <= 0 {
		return
	}
	size := 0
	if ev.Msg != nil {
		size = ev.Msg.Len()
	}
	r := Record{Down: down, Type: ev.Type, Size: size, At: t.Ctx.Now().String()}
	t.log = append(t.log, r)
	if len(t.log) > t.keep {
		t.log = t.log[len(t.log)-t.keep:]
	}
	t.Ctx.Tracef("trace %s: %s %v", t.Ctx.Self(), dir(down), ev)
}

func dir(down bool) string {
	if down {
		return "v"
	}
	return "^"
}

func (t *Trace) summary() string {
	var parts []string
	for _, m := range []map[core.EventType]int{t.downCount, t.upCount} {
		keys := make([]core.EventType, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%v=%d", k, m[k]))
		}
	}
	return strings.Join(parts, " ")
}
