package trace_test

import (
	"testing"

	"horus/internal/core"
	"horus/internal/layers/trace"
	"horus/internal/layertest"
	"horus/internal/message"
)

func TestCountsBothDirections(t *testing.T) {
	h := layertest.New(t, trace.New)
	h.InjectDown(core.NewCast(message.New([]byte("a"))))
	h.InjectDown(core.NewCast(message.New([]byte("b"))))
	h.InjectUp(&core.Event{Type: core.UCast, Msg: message.New([]byte("c")), Source: layertest.ID("p", 2)})

	tr := h.G.Focus("TRACE").(*trace.Trace)
	if got := tr.Counts(true)[core.DCast]; got != 2 {
		t.Errorf("down casts = %d, want 2", got)
	}
	if got := tr.Counts(false)[core.UCast]; got != 1 {
		t.Errorf("up casts = %d, want 1", got)
	}
}

func TestTransparent(t *testing.T) {
	h := layertest.New(t, trace.New)
	m := message.New([]byte("payload"))
	h.InjectDown(core.NewCast(m))
	sent := h.LastDown()
	if sent.Msg.HeaderLen() != 0 {
		t.Errorf("TRACE pushed %d header bytes, want 0", sent.Msg.HeaderLen())
	}
	if string(sent.Msg.Body()) != "payload" {
		t.Error("TRACE altered the payload")
	}
}

func TestLogBounded(t *testing.T) {
	h := layertest.New(t, trace.NewWithLog(4))
	for i := 0; i < 10; i++ {
		h.InjectDown(core.NewCast(message.New([]byte{byte(i)})))
	}
	tr := h.G.Focus("TRACE").(*trace.Trace)
	log := tr.Log()
	if len(log) != 4 {
		t.Fatalf("log kept %d records, want 4", len(log))
	}
	for _, r := range log {
		if !r.Down || r.Type != core.DCast {
			t.Errorf("unexpected record %+v", r)
		}
	}
}

func TestDumpIncludesSummary(t *testing.T) {
	h := layertest.New(t, trace.New)
	h.InjectDown(core.NewCast(message.New(nil)))
	dump := h.G.Dump()
	if dump == "" {
		t.Fatal("empty dump")
	}
}
