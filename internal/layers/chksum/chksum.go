// Package chksum implements the checksumming layer of the paper's §2
// example: "a simple protocol that adds a (large enough) checksum to
// each message could be used to reduce the garbling problem to a
// statistically insignificant rate." The layer has functionality on
// both sides: the sender pushes a CRC-32 over the message's wire form,
// and the receiver drops the message if the checksum does not match.
//
// Properties: requires P1; provides protection that upgrades the
// network's garbling behaviour to clean loss (which NAK then repairs).
package chksum

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"horus/internal/core"
)

// Chksum is one checksum layer instance.
type Chksum struct {
	core.Base
	stats Stats
	pfx   [4]byte // compiled path's synthesized length prefix; the CRC
	// routines defeat escape analysis, so a stack-local would allocate
	// per cast
}

// Stats counts checksum activity.
type Stats struct {
	Protected int // messages checksummed on the way down
	Verified  int // messages that passed verification
	Dropped   int // messages dropped for checksum mismatch
}

// New returns a checksum layer.
func New() core.Layer { return &Chksum{} }

// Name implements core.Layer.
func (k *Chksum) Name() string { return "CHKSUM" }

// Stats returns a snapshot of the layer's counters.
func (k *Chksum) Stats() Stats { return k.stats }

// Down implements core.Layer.
func (k *Chksum) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast, core.DSend, core.DLocate:
		sum := crc32.ChecksumIEEE(ev.Msg.Marshal())
		ev.Msg.PushUint32(sum)
		k.stats.Protected++
		k.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("CHKSUM: protected=%d verified=%d dropped=%d",
			k.stats.Protected, k.stats.Verified, k.stats.Dropped))
		k.Ctx.Down(ev)
	default:
		k.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (k *Chksum) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast, core.USend, core.ULocate:
		want := ev.Msg.PopUint32()
		got := crc32.ChecksumIEEE(ev.Msg.Marshal())
		if got != want {
			k.stats.Dropped++
			return
		}
		k.stats.Verified++
		k.Ctx.Up(ev)
	default:
		k.Ctx.Up(ev)
	}
}

// CompileCast implements core.CastCompiler: a fixed 4-byte CRC slot,
// computed incrementally over the frame instead of marshalling — the
// wire form the reference path checksums is [u32 hdrlen][hdr][body],
// which the flat image provides contiguously except for the length
// prefix, synthesized on the stack.
func (k *Chksum) CompileCast() (core.CompiledCast, bool) {
	return core.CompiledCast{
		Width: 4,
		Fill: func(f *core.CastFrame) {
			binary.BigEndian.PutUint32(k.pfx[:], uint32(len(f.Hdr)))
			sum := crc32.ChecksumIEEE(k.pfx[:])
			sum = crc32.Update(sum, crc32.IEEETable, f.Hdr)
			sum = crc32.Update(sum, crc32.IEEETable, f.Body)
			binary.BigEndian.PutUint32(f.Own, sum)
			k.stats.Protected++
		},
	}, true
}

// Transparent implements core.Skipper: the checksum layer acts only on
// message-bearing events; everything else passes verbatim and the
// stack may skip this layer entirely (§10 item 1).
func (k *Chksum) Transparent(t core.EventType, down bool) bool {
	if down {
		switch t {
		case core.DCast, core.DSend, core.DLocate, core.DDump:
			return false
		}
		return true
	}
	switch t {
	case core.UCast, core.USend, core.ULocate:
		return false
	}
	return true
}
