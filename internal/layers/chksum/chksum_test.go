package chksum_test

import (
	"testing"

	"horus/internal/core"
	"horus/internal/layers/chksum"
	"horus/internal/layertest"
	"horus/internal/message"
)

func TestChecksumRoundTrip(t *testing.T) {
	h := layertest.New(t, chksum.New)
	h.InjectDown(core.NewCast(message.New([]byte("payload"))))

	sent := h.LastDown()
	if sent == nil || sent.Type != core.DCast {
		t.Fatalf("nothing sent: %v", sent)
	}
	if sent.Msg.HeaderLen() != 4 {
		t.Fatalf("checksum header = %d bytes, want 4", sent.Msg.HeaderLen())
	}

	// Echo the wire content back up: it must verify and deliver.
	h.InjectUp(&core.Event{Type: core.UCast, Msg: sent.Msg.Clone(), Source: layertest.ID("peer", 2)})
	got := h.LastUp()
	if got == nil || string(got.Msg.Body()) != "payload" {
		t.Fatalf("clean message not delivered: %v", got)
	}
}

func TestChecksumDropsGarbledBody(t *testing.T) {
	h := layertest.New(t, chksum.New)
	h.InjectDown(core.NewCast(message.New([]byte("payload"))))
	sent := h.LastDown().Msg.Clone()
	sent.Body()[0] ^= 0xFF

	h.InjectUp(&core.Event{Type: core.UCast, Msg: sent, Source: layertest.ID("peer", 2)})
	if got := h.UpOfType(core.UCast); len(got) != 0 {
		t.Fatalf("garbled message delivered: %v", got)
	}
	k := h.G.Focus("CHKSUM").(*chksum.Chksum)
	if k.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", k.Stats().Dropped)
	}
}

func TestChecksumDropsGarbledUpperHeader(t *testing.T) {
	h := layertest.New(t, chksum.New)
	m := message.New([]byte("payload"))
	m.PushUint32(42) // a header pushed by some layer above
	h.InjectDown(core.NewCast(m))
	sent := h.LastDown().Msg.Clone()
	sent.Pop(4)         // strip checksum
	sent.PushUint32(43) // corrupt the inner header...
	sentBad := sent.Clone()

	// Recompute nothing: re-push a stale checksum scenario by
	// reusing the original checksum over modified content.
	orig := h.LastDown().Msg.Clone()
	chk := orig.PopUint32()
	sentBad.PushUint32(chk)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: sentBad, Source: layertest.ID("peer", 2)})
	if got := h.UpOfType(core.UCast); len(got) != 0 {
		t.Fatalf("message with corrupted inner header delivered: %v", got)
	}
}

func TestChecksumPassesControlEvents(t *testing.T) {
	h := layertest.New(t, chksum.New)
	h.InjectUp(&core.Event{Type: core.UProblem, Source: layertest.ID("peer", 2)})
	if got := h.UpOfType(core.UProblem); len(got) != 1 {
		t.Fatalf("PROBLEM not passed through: %v", got)
	}
	h.InjectDown(&core.Event{Type: core.DLeave})
	if got := h.DownOfType(core.DLeave); len(got) != 1 {
		t.Fatalf("leave not passed through: %v", got)
	}
}
