// Package nnak implements the NNAK layer: prioritized-effort delivery,
// property P2 of Table 3.
//
// Where NAK upgrades best effort to reliable FIFO, NNAK stays at best
// effort but orders competing transmissions by priority: outgoing
// messages enter per-priority queues and a pacing timer releases them
// highest-priority first. Real-time-ish traffic (Figure 1's "real-time"
// protocol type asks for guaranteed bounds; NNAK is the best-effort
// approximation) jumps the queue of bulk traffic.
//
// Properties: requires P1, P10, P11; provides P2.
package nnak

import (
	"fmt"
	"sort"
	"time"

	"horus/internal/core"
)

// defaultPace is the default release interval between queued messages.
const defaultPace = time.Millisecond

// Option configures the layer.
type Option func(*Nnak)

// WithPace sets the release interval. Zero sends immediately (the
// queue then only orders same-instant bursts).
func WithPace(d time.Duration) Option { return func(n *Nnak) { n.pace = d } }

// New returns an NNAK layer with default pacing.
func New() core.Layer { return newNnak() }

// NewWith returns a factory with options applied.
func NewWith(opts ...Option) core.Factory {
	return func() core.Layer {
		n := newNnak()
		for _, o := range opts {
			o(n)
		}
		return n
	}
}

func newNnak() *Nnak {
	return &Nnak{pace: defaultPace}
}

// Nnak is one NNAK layer instance.
type Nnak struct {
	core.Base
	pace      time.Duration
	queues    map[int][]*core.Event // priority -> FIFO queue
	prios     []int                 // sorted descending
	pacing    bool
	stop      func()
	destroyed bool
	stats     Stats
}

// Stats counts NNAK activity.
type Stats struct {
	Sent     int
	MaxQueue int
}

// Name implements core.Layer.
func (n *Nnak) Name() string { return "NNAK" }

// Stats returns a snapshot of the layer's counters.
func (n *Nnak) Stats() Stats { return n.stats }

// Init implements core.Layer.
func (n *Nnak) Init(c *core.Context) error {
	if err := n.Base.Init(c); err != nil {
		return err
	}
	n.queues = make(map[int][]*core.Event)
	return nil
}

// Down implements core.Layer.
func (n *Nnak) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast, core.DSend:
		n.enqueue(ev)
		n.release()
	case core.DDestroy:
		n.destroyed = true
		if n.stop != nil {
			n.stop()
		}
		n.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("NNAK: sent=%d queued=%d maxqueue=%d",
			n.stats.Sent, n.queueLen(), n.stats.MaxQueue))
		n.Ctx.Down(ev)
	default:
		n.Ctx.Down(ev)
	}
}

// Up implements core.Layer: NNAK adds no header, so arrivals pass
// through untouched.
func (n *Nnak) Up(ev *core.Event) { n.Ctx.Up(ev) }

func (n *Nnak) enqueue(ev *core.Event) {
	p := ev.Priority
	if _, ok := n.queues[p]; !ok {
		n.prios = append(n.prios, p)
		sort.Sort(sort.Reverse(sort.IntSlice(n.prios)))
	}
	n.queues[p] = append(n.queues[p], ev)
	if l := n.queueLen(); l > n.stats.MaxQueue {
		n.stats.MaxQueue = l
	}
}

// release sends the highest-priority queued message, then paces: no
// further send happens until the pacing interval elapses, even if it
// was queued later at higher priority.
func (n *Nnak) release() {
	if n.pacing {
		return
	}
	for _, p := range n.prios {
		q := n.queues[p]
		if len(q) == 0 {
			continue
		}
		ev := q[0]
		n.queues[p] = q[1:]
		n.stats.Sent++
		n.Ctx.Down(ev)
		if n.pace > 0 {
			n.pacing = true
			n.stop = n.Ctx.SetTimer(n.pace, func() {
				n.pacing = false
				if !n.destroyed {
					n.release()
				}
			})
		}
		return
	}
}

func (n *Nnak) queueLen() int {
	total := 0
	for _, q := range n.queues {
		total += len(q)
	}
	return total
}

// Transparent implements core.Skipper: NNAK never touches upward
// traffic at all, and acts downward only on transmissions and
// lifecycle events (§10 item 1).
func (n *Nnak) Transparent(t core.EventType, down bool) bool {
	if !down {
		return true
	}
	switch t {
	case core.DCast, core.DSend, core.DDestroy, core.DDump:
		return false
	}
	return true
}
