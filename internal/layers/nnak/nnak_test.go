package nnak_test

import (
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/nnak"
	"horus/internal/layertest"
	"horus/internal/message"
)

func TestHighPriorityJumpsQueue(t *testing.T) {
	h := layertest.New(t, nnak.NewWith(nnak.WithPace(10*time.Millisecond)))
	h.InjectDown(&core.Event{Type: core.DCast, Msg: message.New([]byte("bulk1")), Priority: 0})
	h.InjectDown(&core.Event{Type: core.DCast, Msg: message.New([]byte("bulk2")), Priority: 0})
	h.InjectDown(&core.Event{Type: core.DCast, Msg: message.New([]byte("urgent")), Priority: 9})
	h.Run(100 * time.Millisecond)

	sent := h.DownOfType(core.DCast)
	if len(sent) != 3 {
		t.Fatalf("sent %d, want 3", len(sent))
	}
	// bulk1 left immediately (queue was empty); urgent overtakes bulk2.
	order := []string{string(sent[0].Msg.Body()), string(sent[1].Msg.Body()), string(sent[2].Msg.Body())}
	if order[0] != "bulk1" || order[1] != "urgent" || order[2] != "bulk2" {
		t.Fatalf("send order %v, want [bulk1 urgent bulk2]", order)
	}
}

func TestPacingSpacing(t *testing.T) {
	h := layertest.New(t, nnak.NewWith(nnak.WithPace(10*time.Millisecond)))
	for i := 0; i < 5; i++ {
		h.InjectDown(core.NewCast(message.New([]byte{byte(i)})))
	}
	h.Run(5 * time.Millisecond)
	if got := len(h.DownOfType(core.DCast)); got != 1 {
		t.Fatalf("%d sent before pace interval, want 1", got)
	}
	h.Run(100 * time.Millisecond)
	if got := len(h.DownOfType(core.DCast)); got != 5 {
		t.Fatalf("%d sent after draining, want 5", got)
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	h := layertest.New(t, nnak.NewWith(nnak.WithPace(time.Millisecond)))
	for i := 0; i < 4; i++ {
		h.InjectDown(&core.Event{Type: core.DCast, Msg: message.New([]byte{byte('a' + i)}), Priority: 5})
	}
	h.Run(50 * time.Millisecond)
	sent := h.DownOfType(core.DCast)
	for i := range sent {
		if sent[i].Msg.Body()[0] != byte('a'+i) {
			t.Fatalf("priority-5 queue not FIFO: %v", sent)
		}
	}
}

func TestArrivalsPassThroughUnchanged(t *testing.T) {
	h := layertest.New(t, nnak.New)
	m := message.New([]byte("up"))
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: layertest.ID("p", 2)})
	got := h.LastUp()
	if got == nil || string(got.Msg.Body()) != "up" {
		t.Fatal("NNAK altered an arrival (it pushes no header)")
	}
}
