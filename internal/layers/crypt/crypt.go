// Package crypt implements the encryption layer (Figure 1: "private
// communication"; §11 mentions the Horus security architecture that
// combines encryption with fault tolerance).
//
// The layer encrypts the entire message content — upper-layer headers
// and body — under AES-CTR with a per-message random nonce, so layers
// below see only ciphertext. Like SIGN, it assumes a pre-shared group
// key; Figure 1's "key distribution" protocol type is out of scope.
// CRYPT provides confidentiality only; stack SIGN above it for
// integrity.
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"fmt"

	"horus/internal/core"
	"horus/internal/message"
)

// Crypt is one encryption layer instance.
type Crypt struct {
	core.Base
	keyBytes []byte
	block    cipher.Block
	stats    Stats
}

// Stats counts encryption activity.
type Stats struct {
	Encrypted int
	Decrypted int
	Rejected  int // undecodable arrivals dropped
}

// New returns a factory for encryption layers sharing key (16, 24 or
// 32 bytes for AES-128/192/256).
func New(key []byte) core.Factory {
	k := append([]byte(nil), key...)
	return func() core.Layer { return &Crypt{keyBytes: k} }
}

// Name implements core.Layer.
func (c *Crypt) Name() string { return "CRYPT" }

// Stats returns a snapshot of the layer's counters.
func (c *Crypt) Stats() Stats { return c.stats }

// Init implements core.Layer.
func (c *Crypt) Init(ctx *core.Context) error {
	if err := c.Base.Init(ctx); err != nil {
		return err
	}
	block, err := aes.NewCipher(c.keyBytes)
	if err != nil {
		return fmt.Errorf("crypt: %w", err)
	}
	c.block = block
	return nil
}

// Down implements core.Layer.
func (c *Crypt) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast, core.DSend, core.DLocate:
		plain := ev.Msg.Marshal()
		nonce := make([]byte, aes.BlockSize)
		if _, err := rand.Read(nonce); err != nil {
			c.Ctx.Up(&core.Event{Type: core.USystemError, Reason: "crypt: nonce: " + err.Error()})
			return
		}
		out := make([]byte, len(plain))
		cipher.NewCTR(c.block, nonce).XORKeyStream(out, plain)
		m := message.New(out)
		m.Push(nonce)
		ev.Msg = m
		c.stats.Encrypted++
		c.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("CRYPT: enc=%d dec=%d rej=%d",
			c.stats.Encrypted, c.stats.Decrypted, c.stats.Rejected))
		c.Ctx.Down(ev)
	default:
		c.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (c *Crypt) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast, core.USend, core.ULocate:
		if ev.Msg.HeaderLen() < aes.BlockSize {
			c.stats.Rejected++
			return
		}
		nonce := append([]byte(nil), ev.Msg.Pop(aes.BlockSize)...)
		body := ev.Msg.Body()
		plain := make([]byte, len(body))
		cipher.NewCTR(c.block, nonce).XORKeyStream(plain, body)
		inner, err := message.Unmarshal(plain)
		if err != nil {
			c.stats.Rejected++
			return
		}
		ev.Msg = inner
		c.stats.Decrypted++
		c.Ctx.Up(ev)
	default:
		c.Ctx.Up(ev)
	}
}

// Transparent implements core.Skipper: CRYPT acts only on
// message-bearing events (§10 item 1 layer skipping).
func (c *Crypt) Transparent(t core.EventType, down bool) bool {
	if down {
		switch t {
		case core.DCast, core.DSend, core.DLocate, core.DDump:
			return false
		}
		return true
	}
	switch t {
	case core.UCast, core.USend, core.ULocate:
		return false
	}
	return true
}
