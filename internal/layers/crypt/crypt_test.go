package crypt_test

import (
	"bytes"
	"testing"

	"horus/internal/core"
	"horus/internal/layers/crypt"
	"horus/internal/layertest"
	"horus/internal/message"
)

var key = []byte("0123456789abcdef") // AES-128

func TestEncryptDecryptRoundTrip(t *testing.T) {
	h := layertest.New(t, crypt.New(key))
	m := message.New([]byte("attack at dawn"))
	m.PushUint32(7) // an upper header must survive too
	h.InjectDown(core.NewCast(m))
	sent := h.LastDown()
	h.InjectUp(&core.Event{Type: core.UCast, Msg: sent.Msg.Clone(), Source: layertest.ID("peer", 2)})
	got := h.LastUp()
	if got == nil || string(got.Msg.Body()) != "attack at dawn" {
		t.Fatalf("decryption failed: %v", got)
	}
	if v := got.Msg.PopUint32(); v != 7 {
		t.Errorf("upper header = %d, want 7", v)
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	h := layertest.New(t, crypt.New(key))
	plain := []byte("attack at dawn, again and again and again")
	h.InjectDown(core.NewCast(message.New(plain)))
	wire := h.LastDown().Msg.Marshal()
	if bytes.Contains(wire, plain) || bytes.Contains(wire, plain[:14]) {
		t.Fatal("plaintext visible on the wire")
	}
}

func TestFreshNoncePerMessage(t *testing.T) {
	h := layertest.New(t, crypt.New(key))
	h.InjectDown(core.NewCast(message.New([]byte("same"))))
	w1 := h.LastDown().Msg.Marshal()
	h.InjectDown(core.NewCast(message.New([]byte("same"))))
	w2 := h.LastDown().Msg.Marshal()
	if bytes.Equal(w1, w2) {
		t.Fatal("identical ciphertexts for identical plaintexts (nonce reuse)")
	}
}

func TestWrongKeyRejects(t *testing.T) {
	a := layertest.New(t, crypt.New(key))
	a.InjectDown(core.NewCast(message.New([]byte("for the right key"))))
	ct := a.LastDown().Msg.Clone()

	b := layertest.New(t, crypt.New([]byte("fedcba9876543210")))
	b.InjectUp(&core.Event{Type: core.UCast, Msg: ct, Source: layertest.ID("peer", 2)})
	if got := b.UpOfType(core.UCast); len(got) != 0 {
		t.Fatal("wrong-key decryption delivered something")
	}
}

func TestBadKeySizeFailsInit(t *testing.T) {
	net := layertest.New(t, crypt.New(key)).Net
	ep := net.NewEndpoint("x")
	if _, err := ep.Join("g", core.StackSpec{crypt.New([]byte("short"))}, nil); err == nil {
		t.Fatal("bad key size accepted")
	}
}
