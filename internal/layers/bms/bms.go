// Package bms implements the BMS layer of Table 3: a basic membership
// service. It agrees on views (property P15) using the same flush
// coordination as MBRSHIP but does not log or redistribute unstable
// messages, so delivery across a view change is only *virtually
// semi-synchronous* (P8): all survivors install the same views, but a
// message in flight at the change may reach some survivors and not
// others.
//
// BMS exists for applications that want cheap consistent membership
// without paying for message flushing — and as the lower half of the
// decomposition BMS+FLUSH ≈ MBRSHIP, which
// TestDecomposedEqualsMonolithic verifies. BMS waits for a flush_ok
// downcall before consenting to a flush, giving the FLUSH layer above
// (or the application) the window it needs.
//
// Properties: requires P3, P4, P10, P11, P12; provides P8, P15.
package bms

import (
	"time"

	"horus/internal/core"
	"horus/internal/layers/mbrship"
)

// Option re-exports the MBRSHIP option type: BMS accepts the same
// tuning knobs.
type Option = mbrship.Option

// WithGossipPeriod sets the stability-gossip interval (unused for
// flushing in BMS, still used for failure-free liveness checks).
var WithGossipPeriod = mbrship.WithGossipPeriod

// WithFlushTimeout sets the coordinator watchdog interval.
var WithFlushTimeout = mbrship.WithFlushTimeout

// WithMergeRetry sets the merge retry interval.
var WithMergeRetry = mbrship.WithMergeRetry

// New returns a BMS layer with default configuration.
func New() core.Layer { return NewWith()() }

// NewWith returns a factory with options applied.
func NewWith(opts ...Option) core.Factory {
	base := []Option{
		mbrship.WithoutFlush(),
		mbrship.WithAppFlushOK(),
		mbrship.WithName("BMS"),
	}
	return mbrship.NewWith(append(base, opts...)...)
}

// NewAutoConsent returns a factory for BMS used *without* a FLUSH
// layer above: the layer consents to flushes by itself, so view
// changes complete with no cooperation from above (and no message
// redistribution at all).
func NewAutoConsent(opts ...Option) core.Factory {
	base := []Option{
		mbrship.WithoutFlush(),
		mbrship.WithName("BMS"),
	}
	return mbrship.NewWith(append(base, opts...)...)
}

// DefaultTimers bundles the simulation-friendly timer settings used in
// tests and examples.
func DefaultTimers() []Option {
	return []Option{
		WithGossipPeriod(40 * time.Millisecond),
		WithFlushTimeout(500 * time.Millisecond),
	}
}
