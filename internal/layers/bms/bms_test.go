package bms_test

import (
	"strings"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/bms"
	"horus/internal/layers/mbrship"
	"horus/internal/layertest"
	"horus/internal/message"
)

func TestBMSIsRenamedMembership(t *testing.T) {
	l := bms.New()
	if l.Name() != "BMS" {
		t.Fatalf("Name = %q", l.Name())
	}
	if _, ok := l.(*mbrship.Mbrship); !ok {
		t.Fatal("BMS is not the MBRSHIP machinery")
	}
}

func TestBMSKeepsNoLog(t *testing.T) {
	h := layertest.New(t, bms.NewAutoConsent(bms.DefaultTimers()...))
	h.Run(time.Millisecond) // initial singleton view
	// Cast a few messages; the BMS variant must not retain them for
	// flushing (that is FLUSH's job in the decomposition).
	for i := 0; i < 3; i++ {
		h.InjectDown(core.NewCast(message.New([]byte{byte(i)})))
	}
	dump := h.G.Dump()
	if dump == "" {
		t.Fatal("no dump")
	}
	// The MBRSHIP dump line reports logged=N; BMS must report 0.
	if want := "logged=0"; !strings.Contains(dump, want) {
		t.Fatalf("dump %q does not contain %q", dump, want)
	}
}

func TestBMSWithFlushAboveWaitsForConsent(t *testing.T) {
	// The non-auto-consent variant must not reply to a flush by
	// itself; it waits for the flush_ok downcall. We observe this as
	// the singleton case: a merge flush only completes after consent.
	h := layertest.New(t, bms.NewWith(bms.DefaultTimers()...))
	h.Run(time.Millisecond)
	views := h.UpOfType(core.UView)
	if len(views) != 1 {
		t.Fatalf("initial views = %d", len(views))
	}
}
