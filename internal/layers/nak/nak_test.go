package nak_test

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/layers/nak"
	"horus/internal/message"
	"horus/internal/netsim"
)

// netPair builds two NAK:COM endpoints with a two-member view over a
// configurable network.
func netPair(t *testing.T, link netsim.Link, opts ...nak.Option) (*netsim.Network, *core.Group, *core.Group, *[]*core.Event, *[]*core.Event) {
	t.Helper()
	net := netsim.New(netsim.Config{Seed: 7, DefaultLink: link})
	mk := func(name string, sink *[]*core.Event) *core.Group {
		ep := net.NewEndpoint(name)
		g, err := ep.Join("g", core.StackSpec{nak.NewWith(opts...), com.New},
			func(ev *core.Event) { *sink = append(*sink, ev) })
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	var evA, evB []*core.Event
	ga := mk("a", &evA)
	gb := mk("b", &evB)
	view := core.NewView(core.ViewID{Seq: 1, Coord: ga.Endpoint().ID()}, "g",
		[]core.EndpointID{ga.Endpoint().ID(), gb.Endpoint().ID()})
	ga.InstallView(view)
	gb.InstallView(view)
	return net, ga, gb, &evA, &evB
}

func bodies(evs []*core.Event, t core.EventType) []string {
	var out []string
	for _, ev := range evs {
		if ev.Type == t {
			out = append(out, string(ev.Msg.Body()))
		}
	}
	return out
}

func TestReorderedDeliveryIsFIFO(t *testing.T) {
	// Heavy jitter reorders nearly everything; NAK must straighten it.
	net, ga, _, _, evB := netPair(t, netsim.Link{Delay: time.Millisecond, Jitter: 10 * time.Millisecond},
		nak.WithSuspectAfter(0))
	for i := 0; i < 50; i++ {
		i := i
		net.At(time.Duration(i)*time.Millisecond, func() {
			ga.Cast(message.New([]byte(fmt.Sprintf("%03d", i))))
		})
	}
	net.RunFor(3 * time.Second)
	got := bodies(*evB, core.UCast)
	if len(got) != 50 {
		t.Fatalf("delivered %d, want 50", len(got))
	}
	for i, b := range got {
		if b != fmt.Sprintf("%03d", i) {
			t.Fatalf("position %d = %q (FIFO violated): %v", i, b, got)
		}
	}
}

func TestDuplicatesSuppressed(t *testing.T) {
	net, ga, gb, _, evB := netPair(t, netsim.Link{Delay: time.Millisecond, DupRate: 0.5},
		nak.WithSuspectAfter(0))
	for i := 0; i < 30; i++ {
		i := i
		net.At(time.Duration(i)*time.Millisecond, func() {
			ga.Cast(message.New([]byte(fmt.Sprintf("%d", i))))
		})
	}
	net.RunFor(time.Second)
	if got := len(bodies(*evB, core.UCast)); got != 30 {
		t.Fatalf("delivered %d under duplication, want 30", got)
	}
	l := gb.Focus("NAK").(*nak.Nak)
	if l.Stats().Duplicates == 0 {
		t.Error("no duplicates recorded despite DupRate 0.5")
	}
}

func TestSuspicionAfterSilence(t *testing.T) {
	net, ga, _, evA, _ := netPair(t, netsim.Link{Delay: time.Millisecond},
		nak.WithStatusPeriod(10*time.Millisecond), nak.WithSuspectAfter(4))
	other := core.EndpointID{Site: "b", Birth: 2}
	net.RunFor(20 * time.Millisecond) // let both sides exchange status
	net.Crash(other)
	net.RunFor(time.Second)
	var problems []*core.Event
	for _, ev := range *evA {
		if ev.Type == core.UProblem {
			problems = append(problems, ev)
		}
	}
	if len(problems) != 1 {
		t.Fatalf("a raised %d PROBLEMs, want 1", len(problems))
	}
	if problems[0].Source != other {
		t.Errorf("PROBLEM about %v, want %v", problems[0].Source, other)
	}
	_ = ga
}

func TestNoSuspicionWhileTalking(t *testing.T) {
	net, ga, _, evA, _ := netPair(t, netsim.Link{Delay: time.Millisecond},
		nak.WithStatusPeriod(10*time.Millisecond), nak.WithSuspectAfter(4))
	net.RunFor(2 * time.Second)
	for _, ev := range *evA {
		if ev.Type == core.UProblem {
			t.Fatalf("spurious PROBLEM: %v", ev)
		}
	}
	_ = ga
}

func TestTailLossRecoveredByStatus(t *testing.T) {
	// Lose a burst including the final messages: only the status
	// exchange can reveal the missing tail.
	net, ga, _, _, evB := netPair(t, netsim.Link{Delay: time.Millisecond},
		nak.WithStatusPeriod(10*time.Millisecond), nak.WithSuspectAfter(0))
	ids := []core.EndpointID{ga.Endpoint().ID(), {Site: "b", Birth: 2}}
	net.At(0, func() { ga.Cast(message.New([]byte("first"))) })
	net.At(5*time.Millisecond, func() {
		net.SetLink(ids[0], ids[1], netsim.Link{Delay: time.Millisecond, LossRate: 1})
		ga.Cast(message.New([]byte("last")))
	})
	net.At(20*time.Millisecond, func() {
		net.SetLink(ids[0], ids[1], netsim.Link{Delay: time.Millisecond})
	})
	net.RunFor(2 * time.Second)
	got := bodies(*evB, core.UCast)
	if len(got) != 2 || got[1] != "last" {
		t.Fatalf("delivered %v, want [first last]", got)
	}
}

func TestUnicastStreamsIndependentFromCast(t *testing.T) {
	net, ga, _, _, evB := netPair(t, netsim.Link{Delay: time.Millisecond}, nak.WithSuspectAfter(0))
	bID := core.EndpointID{Site: "b", Birth: 2}
	net.At(0, func() {
		ga.Cast(message.New([]byte("m-cast")))
		ga.Send([]core.EndpointID{bID}, message.New([]byte("m-send")))
		ga.Cast(message.New([]byte("m-cast-2")))
	})
	net.RunFor(time.Second)
	if got := bodies(*evB, core.UCast); len(got) != 2 {
		t.Fatalf("casts = %v", got)
	}
	if got := bodies(*evB, core.USend); len(got) != 1 || got[0] != "m-send" {
		t.Fatalf("sends = %v", got)
	}
}
