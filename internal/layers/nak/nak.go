// Package nak implements the NAK layer: reliable FIFO delivery over a
// best-effort network using sequence numbers and negative
// acknowledgements (paper §7).
//
// On each outgoing message the layer pushes a sequence number that the
// receiver checks. A receiver detecting loss sends back a negative
// acknowledgement; the sender retransmits from its buffer, or — if the
// message is no longer buffered — sends a place holder that surfaces
// as a LOST_MESSAGE upcall. Each endpoint occasionally multicasts its
// protocol status so buffered messages can be flushed and failures
// detected (a missing status update raises a PROBLEM upcall, which is
// the failure-suspicion input the MBRSHIP layer converts into clean
// view changes).
//
// Two sequence spaces are maintained: one multicast stream per sender
// (property P4, FIFO multicast) and one unicast stream per
// (sender, destination) pair (property P3, FIFO unicast). Locate
// beacons and other non-addressed traffic pass through unsequenced.
//
// Properties: requires P1, P10, P11; provides P3, P4.
package nak

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/wire"
)

// Wire kinds.
const (
	kindData        = 1 // sequenced cast
	kindUniData     = 2 // sequenced unicast (subset send, one copy per dest)
	kindNak         = 3 // negative acknowledgement {stream, from, to}
	kindStatus      = 4 // periodic status multicast
	kindPlaceholder = 5 // retransmission no longer possible
	kindRaw         = 6 // unsequenced pass-through (non-addressed sends)
)

// Stream tags inside NAK control messages.
const (
	streamCast = 1
	streamUni  = 2
)

// Defaults; override with the Option functions.
const (
	defaultStatusPeriod  = 50 * time.Millisecond
	defaultResendNak     = 40 * time.Millisecond
	defaultSuspectAfter  = 8 // status periods of silence before PROBLEM
	defaultRetainBufferN = 1024
)

// Option configures a Nak layer at construction.
type Option func(*Nak)

// WithStatusPeriod sets the status-gossip interval.
func WithStatusPeriod(d time.Duration) Option { return func(n *Nak) { n.statusPeriod = d } }

// WithSuspectAfter sets how many silent status periods trigger a
// PROBLEM upcall for a member. Zero disables failure suspicion.
func WithSuspectAfter(k int) Option { return func(n *Nak) { n.suspectAfter = k } }

// WithNakResend sets the re-NAK interval while a gap persists.
func WithNakResend(d time.Duration) Option { return func(n *Nak) { n.resendNak = d } }

// WithRetain bounds the retransmission buffer to k messages per
// stream; older messages are answered with place holders.
func WithRetain(k int) Option {
	return func(n *Nak) {
		n.castOut.retain = k
		n.retain = k
	}
}

// New returns a NAK layer with default configuration.
func New() core.Layer { return newNak() }

// NewWith returns a factory with options applied.
func NewWith(opts ...Option) core.Factory {
	return func() core.Layer {
		n := newNak()
		for _, o := range opts {
			o(n)
		}
		return n
	}
}

func newNak() *Nak {
	return &Nak{
		castOut:      outStream{buf: make(map[uint64]*message.Message)},
		uniOut:       make(map[core.EndpointID]*outStream),
		castIn:       make(map[core.EndpointID]*inStream),
		uniIn:        make(map[core.EndpointID]*inStream),
		lastHeard:    make(map[core.EndpointID]time.Duration),
		statusPeriod: defaultStatusPeriod,
		resendNak:    defaultResendNak,
		suspectAfter: defaultSuspectAfter,
	}
}

// outStream is the sending side of one FIFO stream.
type outStream struct {
	next   uint64 // next sequence number to assign (first message is 1)
	buf    map[uint64]*message.Message
	acks   map[core.EndpointID]uint64 // per-member delivered counts (from status)
	retain int                        // max buffered messages; 0 = default
}

// inStream is the receiving side of one FIFO stream from one source.
type inStream struct {
	delivered uint64                 // highest contiguously delivered seq
	pending   map[uint64]*core.Event // out-of-order buffer
	nakTimer  func()                 // cancels the outstanding re-NAK timer
}

// Nak is one NAK layer instance.
type Nak struct {
	core.Base
	members []core.EndpointID

	castOut outStream
	uniOut  map[core.EndpointID]*outStream
	castIn  map[core.EndpointID]*inStream
	uniIn   map[core.EndpointID]*inStream

	lastHeard map[core.EndpointID]time.Duration
	suspected map[core.EndpointID]bool

	statusPeriod time.Duration
	resendNak    time.Duration
	suspectAfter int
	retain       int

	statusCancel func()
	stats        Stats
	destroyed    bool
}

// Stats counts NAK activity.
type Stats struct {
	DataSent       int
	Retransmits    int
	NaksSent       int
	Placeholders   int
	StatusSent     int
	Duplicates     int // sequenced messages dropped as duplicates
	OutOfOrder     int // messages buffered waiting for a gap to fill
	LostReported   int // LOST_MESSAGE upcalls emitted
	ProblemsRaised int
}

// Name implements core.Layer.
func (n *Nak) Name() string { return "NAK" }

// Stats returns a snapshot of the layer's counters.
func (n *Nak) Stats() Stats { return n.stats }

// Init implements core.Layer and arms the periodic status multicast.
func (n *Nak) Init(c *core.Context) error {
	if err := n.Base.Init(c); err != nil {
		return err
	}
	n.suspected = make(map[core.EndpointID]bool)
	if n.statusPeriod > 0 {
		n.statusCancel = c.SetTimer(n.statusPeriod, n.statusTick)
	}
	return nil
}

// Down implements core.Layer.
func (n *Nak) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast:
		seq := n.castOut.assign(ev.Msg)
		ev.Msg.PushUint64(seq)
		ev.Msg.PushUint8(kindData)
		n.stats.DataSent++
		n.Ctx.Down(ev)
	case core.DSend:
		if len(ev.Dests) == 0 {
			// Non-addressed send: pass through unsequenced.
			ev.Msg.PushUint8(kindRaw)
			n.Ctx.Down(ev)
			return
		}
		// One sequenced copy per destination pair.
		for _, dst := range ev.Dests {
			out := n.uniOutFor(dst)
			m := ev.Msg.Clone()
			seq := out.assign(m)
			m.PushUint64(seq)
			m.PushUint8(kindUniData)
			n.stats.DataSent++
			n.Ctx.Down(&core.Event{Type: core.DSend, Msg: m, Dests: []core.EndpointID{dst}})
		}
	case core.DView:
		n.applyView(ev)
		n.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, "NAK: "+n.dumpLine())
		n.Ctx.Down(ev)
	case core.DDestroy:
		n.shutdown()
		n.Ctx.Down(ev)
	default:
		n.Ctx.Down(ev)
	}
}

func (n *Nak) uniOutFor(dst core.EndpointID) *outStream {
	out := n.uniOut[dst]
	if out == nil {
		out = &outStream{buf: make(map[uint64]*message.Message), retain: n.retain}
		n.uniOut[dst] = out
	}
	return out
}

// assign stamps the next sequence number and retains a retransmission
// copy. The clone is taken before lower layers push their headers, so
// a retransmission re-enters the lower stack cleanly. The buffer is
// bounded: once it exceeds the retention limit the oldest entries are
// dropped, after which a NAK for them is answered with a place holder
// ("will retransmit if the message is still buffered. If not, it will
// send a place holder", §7).
func (o *outStream) assign(m *message.Message) uint64 {
	return o.assignOwned(m.Clone())
}

// assignOwned is assign for a copy the caller already owns outright —
// the compiled cast path builds the retained copy straight from its
// flat frame instead of cloning a Message it never materialized.
func (o *outStream) assignOwned(m *message.Message) uint64 {
	o.next++
	o.buf[o.next] = m
	retain := o.retain
	if retain <= 0 {
		retain = defaultRetainBufferN
	}
	// Sweep with hysteresis: scanning the whole buffer on every send
	// once it is full would make each send O(retain).
	if len(o.buf) > retain+retain/4 {
		for seq := range o.buf {
			if seq+uint64(retain) <= o.next {
				delete(o.buf, seq)
			}
		}
	}
	return o.next
}

// CompileCast implements core.CastCompiler. The cast header is a fixed
// 9 bytes — [kindData][seq u64] — and the only side effect is the
// retransmission buffer: the Fill hook retains a Message rebuilt from
// the frame's header/body split, exactly what the reference path's
// Clone would have captured at this position in the stack.
func (n *Nak) CompileCast() (core.CompiledCast, bool) {
	return core.CompiledCast{
		Width: 9,
		Fill: func(f *core.CastFrame) {
			seq := n.castOut.assignOwned(message.FromParts(f.Hdr, f.Body))
			f.Own[0] = kindData
			binary.BigEndian.PutUint64(f.Own[1:], seq)
			n.stats.DataSent++
		},
	}, true
}

// Up implements core.Layer.
func (n *Nak) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast, core.USend:
		n.heard(ev.Source)
		kind := ev.Msg.PopUint8()
		switch kind {
		case kindData:
			// Retransmissions travel as subset sends; restore the
			// multicast event type so upper layers and the application
			// cannot tell a retransmitted cast from an original.
			ev.Type = core.UCast
			n.receiveData(ev, n.castInFor(ev.Source), streamCast)
		case kindUniData:
			ev.Type = core.USend
			n.receiveData(ev, n.uniInFor(ev.Source), streamUni)
		case kindNak:
			n.receiveNak(ev)
		case kindStatus:
			n.receiveStatus(ev)
		case kindRaw:
			n.Ctx.Up(ev)
		case kindPlaceholder:
			n.receivePlaceholder(ev)
		default:
			// Unknown kind byte: garbled in flight, drop.
		}
	case core.UView:
		n.Ctx.Up(ev)
	default:
		n.Ctx.Up(ev)
	}
}

func (n *Nak) castInFor(src core.EndpointID) *inStream {
	in := n.castIn[src]
	if in == nil {
		in = &inStream{pending: make(map[uint64]*core.Event)}
		n.castIn[src] = in
	}
	return in
}

func (n *Nak) uniInFor(src core.EndpointID) *inStream {
	in := n.uniIn[src]
	if in == nil {
		in = &inStream{pending: make(map[uint64]*core.Event)}
		n.uniIn[src] = in
	}
	return in
}

// receiveData handles a sequenced arrival on stream in from ev.Source.
func (n *Nak) receiveData(ev *core.Event, in *inStream, stream uint8) {
	seq := ev.Msg.PopUint64()
	switch {
	case seq == in.delivered+1:
		in.delivered = seq
		n.Ctx.Up(ev)
		n.drain(in)
	case seq <= in.delivered:
		n.stats.Duplicates++
	default:
		if _, dup := in.pending[seq]; dup {
			n.stats.Duplicates++
			return
		}
		n.stats.OutOfOrder++
		in.pending[seq] = ev
		n.sendNak(ev.Source, in, stream)
	}
}

// silentLoss marks pending entries standing in for place-held ranges
// whose LOST_MESSAGE was already reported.
const silentLoss = "~reported~"

// drain delivers any buffered messages that have become contiguous,
// and cancels or re-arms the gap timer.
func (n *Nak) drain(in *inStream) {
	for {
		next, ok := in.pending[in.delivered+1]
		if !ok {
			break
		}
		delete(in.pending, in.delivered+1)
		in.delivered++
		if next.Type == core.ULostMessage {
			if next.Reason == silentLoss {
				continue
			}
			n.stats.LostReported++
		}
		n.Ctx.Up(next)
	}
	if len(in.pending) == 0 && in.nakTimer != nil {
		in.nakTimer()
		in.nakTimer = nil
	}
}

// sendNak reports the current gap [delivered+1, minPending-1] to the
// source and arms a re-NAK timer.
func (n *Nak) sendNak(src core.EndpointID, in *inStream, stream uint8) {
	lo := in.delivered + 1
	hi := uint64(0)
	for s := range in.pending {
		if hi == 0 || s < hi {
			hi = s
		}
	}
	if hi == 0 || hi <= lo {
		return
	}
	n.sendNakRange(src, in, stream, lo, hi-1)
}

// sendNakRange requests retransmission of [lo, hi] and arms a re-NAK
// timer that persists while the receive stream has a gap.
func (n *Nak) sendNakRange(src core.EndpointID, in *inStream, stream uint8, lo, hi uint64) {
	m := message.New(nil)
	m.PushUint64(hi)
	m.PushUint64(lo)
	m.PushUint8(stream)
	m.PushUint8(kindNak)
	n.stats.NaksSent++
	n.Ctx.Down(&core.Event{Type: core.DSend, Msg: m, Dests: []core.EndpointID{src}})
	if in.nakTimer != nil {
		in.nakTimer()
	}
	if n.resendNak > 0 {
		in.nakTimer = n.Ctx.SetTimer(n.resendNak, func() {
			in.nakTimer = nil
			if len(in.pending) > 0 {
				n.sendNak(src, in, stream)
			}
		})
	}
}

// receiveNak retransmits the requested range, or place holders for
// messages no longer buffered. NAK control messages are emitted below
// this layer (straight to the layer underneath), so they are never
// themselves sequenced and cannot recurse.
func (n *Nak) receiveNak(ev *core.Event) {
	stream := ev.Msg.PopUint8()
	lo := ev.Msg.PopUint64()
	hi := ev.Msg.PopUint64()
	var out *outStream
	var kind uint8
	switch stream {
	case streamCast:
		out, kind = &n.castOut, kindData
	case streamUni:
		out, kind = n.uniOutFor(ev.Source), kindUniData
	default:
		return
	}
	// Retransmit what is buffered; collapse runs of trimmed sequence
	// numbers into single range place holders (a member that joined
	// after a long history would otherwise receive one placeholder per
	// pre-join message).
	phLo := uint64(0)
	flushPh := func(phHi uint64) {
		if phLo == 0 {
			return
		}
		m := message.New(nil)
		m.PushUint64(phHi)
		m.PushUint64(phLo)
		m.PushUint8(stream)
		m.PushUint8(kindPlaceholder)
		n.stats.Placeholders++
		n.Ctx.Down(&core.Event{Type: core.DSend, Msg: m, Dests: []core.EndpointID{ev.Source}})
		phLo = 0
	}
	for seq := lo; seq <= hi; seq++ {
		if buf, ok := out.buf[seq]; ok {
			flushPh(seq - 1)
			m := buf.Clone()
			m.PushUint64(seq)
			m.PushUint8(kind)
			n.stats.Retransmits++
			n.Ctx.Down(&core.Event{Type: core.DSend, Msg: m, Dests: []core.EndpointID{ev.Source}})
		} else if phLo == 0 {
			phLo = seq
		}
	}
	flushPh(hi)
}

// receivePlaceholder fills a gap with a LOST_MESSAGE event (paper §7:
// "it will send a place holder that will result in a LOST_MESSAGE
// event when received"). Place holders cover a range; a single
// LOST_MESSAGE upcall reports the whole range, and silent markers fill
// the receive stream so later messages stay FIFO.
func (n *Nak) receivePlaceholder(ev *core.Event) {
	stream := ev.Msg.PopUint8()
	lo := ev.Msg.PopUint64()
	hi := ev.Msg.PopUint64()
	var in *inStream
	switch stream {
	case streamCast:
		in = n.castInFor(ev.Source)
	case streamUni:
		in = n.uniInFor(ev.Source)
	default:
		return
	}
	if hi <= in.delivered || hi < lo {
		return
	}
	n.stats.LostReported++
	n.Ctx.Up(&core.Event{Type: core.ULostMessage, Source: ev.Source,
		Reason: fmt.Sprintf("seqs %d-%d no longer buffered by sender", lo, hi)})
	for seq := lo; seq <= hi; seq++ {
		switch {
		case seq <= in.delivered:
		case seq == in.delivered+1:
			in.delivered = seq
			n.drain(in)
		default:
			if _, dup := in.pending[seq]; !dup {
				in.pending[seq] = &core.Event{Type: core.ULostMessage, Reason: silentLoss}
			}
		}
	}
}

// statusTick multicasts this endpoint's receive status and checks for
// silent members.
func (n *Nak) statusTick() {
	if n.destroyed {
		return
	}
	n.statusCancel = n.Ctx.SetTimer(n.statusPeriod, n.statusTick)
	if len(n.members) > 1 {
		n.sendStatus()
		n.checkSilence()
	}
}

// sendStatus sends each member {per-source cast delivered counts, our
// cast send count, and the positions of our unicast streams with that
// member}. Receivers use the send counts to detect tail loss on both
// the multicast stream and the per-pair unicast stream (a lost unicast
// on a stream that then goes quiet has no later message to expose the
// gap), and the delivered counts to trim retransmission buffers.
func (n *Nak) sendStatus() {
	srcs := make([]core.EndpointID, 0, len(n.castIn))
	for src := range n.castIn {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].Older(srcs[j]) })
	counts := make([]uint64, len(srcs))
	for i, src := range srcs {
		counts[i] = n.castIn[src].delivered
	}
	for _, dst := range n.others() {
		m := message.New(nil)
		var uniSent, uniDelivered uint64
		if out := n.uniOut[dst]; out != nil {
			uniSent = out.next
		}
		if in := n.uniIn[dst]; in != nil {
			uniDelivered = in.delivered
		}
		m.PushUint64(uniDelivered)
		m.PushUint64(uniSent)
		m.PushUint64(n.castOut.next)
		wire.PushCounts(m, counts)
		wire.PushIDList(m, srcs)
		m.PushUint8(kindStatus)
		n.stats.StatusSent++
		n.Ctx.Down(&core.Event{Type: core.DSend, Msg: m, Dests: []core.EndpointID{dst}})
	}
}

// receiveStatus trims the multicast retransmission buffer up to the
// minimum delivered count acknowledged by all current members, and
// detects tail loss: the status carries the peer's own send count, so
// a receiver that is behind with no out-of-order evidence (the
// negative-acknowledgement blind spot) can still ask for the missing
// suffix.
func (n *Nak) receiveStatus(ev *core.Event) {
	srcs := wire.PopIDList(ev.Msg)
	counts := wire.PopCounts(ev.Msg)
	peerCastSent := ev.Msg.PopUint64()
	peerUniSent := ev.Msg.PopUint64()      // peer -> us unicast stream
	peerUniDelivered := ev.Msg.PopUint64() // us -> peer unicast stream
	if len(counts) != len(srcs) {
		return
	}
	for i, src := range srcs {
		if src == n.Ctx.Self() {
			n.ackedBy(ev.Source, counts[i])
		}
	}
	n.nakTail(ev.Source, n.castInFor(ev.Source), streamCast, peerCastSent)
	n.nakTail(ev.Source, n.uniInFor(ev.Source), streamUni, peerUniSent)
	// Trim the unicast retransmission buffer to what the peer has.
	if out := n.uniOut[ev.Source]; out != nil {
		for seq := range out.buf {
			if seq <= peerUniDelivered {
				delete(out.buf, seq)
			}
		}
	}
}

// nakTail requests the missing suffix of a stream whose sender claims
// to have sent more than we have seen.
func (n *Nak) nakTail(src core.EndpointID, in *inStream, stream uint8, peerSent uint64) {
	maxPending := uint64(0)
	for s := range in.pending {
		if s > maxPending {
			maxPending = s
		}
	}
	if peerSent > in.delivered && peerSent > maxPending {
		n.sendNakRange(src, in, stream, in.delivered+1, peerSent)
	}
}

// peerAcks tracks, per member, how much of our cast stream they have.
// Stored lazily on the out stream.
func (n *Nak) ackedBy(member core.EndpointID, count uint64) {
	if n.castOut.acks == nil {
		n.castOut.acks = make(map[core.EndpointID]uint64)
	}
	if count > n.castOut.acks[member] {
		n.castOut.acks[member] = count
	}
	n.trimCastBuffer()
}

// trimCastBuffer drops buffered casts acknowledged by every member.
func (n *Nak) trimCastBuffer() {
	if len(n.members) == 0 {
		return
	}
	min := n.castOut.next
	for _, m := range n.members {
		if m == n.Ctx.Self() {
			continue
		}
		min = minU64(min, n.castOut.acks[m])
	}
	for seq := range n.castOut.buf {
		if seq <= min {
			delete(n.castOut.buf, seq)
		}
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// heard records liveness evidence for a member.
func (n *Nak) heard(src core.EndpointID) {
	n.lastHeard[src] = n.Ctx.Now()
	if n.suspected[src] {
		delete(n.suspected, src)
	}
}

// checkSilence raises PROBLEM upcalls for members silent for
// suspectAfter status periods.
func (n *Nak) checkSilence() {
	if n.suspectAfter <= 0 {
		return
	}
	now := n.Ctx.Now()
	limit := time.Duration(n.suspectAfter) * n.statusPeriod
	for _, m := range n.members {
		if m == n.Ctx.Self() || n.suspected[m] {
			continue
		}
		last, ok := n.lastHeard[m]
		if !ok {
			// Never heard from: start the clock at view installation.
			n.lastHeard[m] = now
			continue
		}
		if now-last > limit {
			n.suspected[m] = true
			n.stats.ProblemsRaised++
			n.Ctx.Up(&core.Event{Type: core.UProblem, Source: m,
				Reason: fmt.Sprintf("no traffic for %v", now-last)})
		}
	}
}

// applyView adapts to the new membership. Sequence-number state is
// deliberately kept for endpoints outside the view: membership and
// merge control traffic crosses view boundaries on the same per-pair
// FIFO streams, so resetting a stream on one side while the other
// remembers its counters would make every later message look like a
// duplicate. Only the parts that would leak or misfire are cleaned:
// retransmission-request timers and out-of-order buffers of removed
// (likely dead) members, suspicion state, and ack bookkeeping.
func (n *Nak) applyView(ev *core.Event) {
	if ev.View == nil {
		return
	}
	n.members = append([]core.EndpointID(nil), ev.View.Members...)
	inView := make(map[core.EndpointID]bool, len(n.members))
	for _, m := range n.members {
		inView[m] = true
	}
	stopGaps := func(streams map[core.EndpointID]*inStream) {
		for src, in := range streams {
			if inView[src] {
				continue
			}
			if in.nakTimer != nil {
				in.nakTimer()
				in.nakTimer = nil
			}
			// Gap fillers will never come from a dead sender; the
			// buffered out-of-order messages can never be delivered
			// FIFO and are dropped (virtual synchrony layers recover
			// what matters during the flush).
			in.pending = make(map[uint64]*core.Event)
		}
	}
	stopGaps(n.castIn)
	stopGaps(n.uniIn)
	for m := range n.suspected {
		if !inView[m] {
			delete(n.suspected, m)
		}
	}
	for m := range n.castOut.acks {
		if !inView[m] {
			delete(n.castOut.acks, m)
		}
	}
	// Restart the silence clock for everyone in the new view.
	now := n.Ctx.Now()
	for _, m := range n.members {
		n.lastHeard[m] = now
	}
	n.trimCastBuffer()
}

// others returns the view members except self.
func (n *Nak) others() []core.EndpointID {
	out := make([]core.EndpointID, 0, len(n.members))
	for _, m := range n.members {
		if m != n.Ctx.Self() {
			out = append(out, m)
		}
	}
	return out
}

func (n *Nak) shutdown() {
	n.destroyed = true
	if n.statusCancel != nil {
		n.statusCancel()
	}
	for _, in := range n.castIn {
		if in.nakTimer != nil {
			in.nakTimer()
		}
	}
	for _, in := range n.uniIn {
		if in.nakTimer != nil {
			in.nakTimer()
		}
	}
}

func (n *Nak) dumpLine() string {
	return fmt.Sprintf("castSeq=%d buffered=%d retransmits=%d naks=%d status=%d suspected=%d",
		n.castOut.next, len(n.castOut.buf), n.stats.Retransmits, n.stats.NaksSent, n.stats.StatusSent, len(n.suspected))
}
