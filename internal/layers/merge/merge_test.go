package merge_test

import (
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/merge"
	"horus/internal/layertest"
	"horus/internal/message"
	"horus/internal/wire"
)

func setup(t *testing.T) *layertest.Harness {
	t.Helper()
	return layertest.New(t, merge.NewWith(merge.WithBeaconPeriod(50*time.Millisecond)))
}

// beacon builds a locate beacon as a peer MERGE layer would.
func beacon(coord core.EndpointID, viewSeq uint64) *core.Event {
	m := message.New(nil)
	wire.PushViewID(m, core.ViewID{Seq: viewSeq, Coord: coord})
	wire.PushEndpointID(m, coord)
	return &core.Event{Type: core.ULocate, Msg: m, Source: coord}
}

func TestCoordinatorBeacons(t *testing.T) {
	h := setup(t)
	h.InstallView(h.Self()) // we coordinate our singleton view
	h.Run(200 * time.Millisecond)
	if got := len(h.DownOfType(core.DLocate)); got < 3 {
		t.Fatalf("beacons sent = %d, want several", got)
	}
}

func TestNonCoordinatorStaysQuiet(t *testing.T) {
	h := setup(t)
	older := layertest.ID("0older", 0)
	h.InstallView(h.Self(), older) // the peer coordinates
	h.Run(300 * time.Millisecond)
	if got := len(h.DownOfType(core.DLocate)); got != 0 {
		t.Fatalf("non-coordinator sent %d beacons", got)
	}
}

func TestMergesTowardOlderCoordinator(t *testing.T) {
	h := setup(t)
	h.InstallView(h.Self())
	older := layertest.ID("0older", 0)
	h.InjectUp(beacon(older, 4))
	merges := h.DownOfType(core.DMerge)
	if len(merges) != 1 || merges[0].Contact != older {
		t.Fatalf("merge downcalls = %v", merges)
	}
}

func TestIgnoresYoungerCoordinator(t *testing.T) {
	h := setup(t)
	h.InstallView(h.Self())
	younger := layertest.ID("younger", 99)
	h.InjectUp(beacon(younger, 4))
	if got := h.DownOfType(core.DMerge); len(got) != 0 {
		t.Fatalf("merged toward a younger coordinator: %v", got)
	}
}

func TestIgnoresOwnViewMembers(t *testing.T) {
	h := setup(t)
	older := layertest.ID("0older", 0)
	h.InstallView(h.Self(), older)
	h.InjectUp(beacon(older, 4))
	if got := h.DownOfType(core.DMerge); len(got) != 0 {
		t.Fatalf("merged toward a member of our own view: %v", got)
	}
}

func TestOneAttemptAtATime(t *testing.T) {
	h := setup(t)
	h.InstallView(h.Self())
	o1 := layertest.ID("0older", 0)
	o2 := layertest.ID("00oldest", 0) // distinct, also older than us
	h.InjectUp(beacon(o1, 4))
	h.InjectUp(beacon(o2, 9))
	if got := h.DownOfType(core.DMerge); len(got) != 1 {
		t.Fatalf("merge attempts = %d, want 1 (one at a time)", len(got))
	}
	// A denial clears the attempt; the next beacon may retry.
	h.InjectUp(&core.Event{Type: core.UMergeDenied, Contact: o1, Reason: "busy"})
	h.InjectUp(beacon(o1, 4))
	if got := h.DownOfType(core.DMerge); len(got) != 2 {
		t.Fatalf("no retry after denial: %d", len(got))
	}
}

func TestViewChangeResetsAttempt(t *testing.T) {
	h := setup(t)
	h.InstallView(h.Self())
	older := layertest.ID("0older", 0)
	h.InjectUp(beacon(older, 4))
	// The merge completes: a new view containing both installs.
	v := core.NewView(core.ViewID{Seq: 5, Coord: older}, "test",
		[]core.EndpointID{older, h.Self()})
	h.InjectUp(&core.Event{Type: core.UView, View: v})
	// Another beacon from the (now in-view) coordinator does nothing.
	h.InjectUp(beacon(older, 5))
	if got := h.DownOfType(core.DMerge); len(got) != 1 {
		t.Fatalf("merge attempts = %d after joining, want 1", len(got))
	}
}

func TestMergeDumpAndDestroy(t *testing.T) {
	h := setup(t)
	h.InstallView(h.Self())
	if d := h.G.Dump(); d == "" {
		t.Fatal("empty dump")
	}
	// Destroy cancels the beacon timer; no beacons after.
	h.InjectDown(&core.Event{Type: core.DDestroy})
	h.Reset()
	h.Run(300 * time.Millisecond)
	if got := len(h.DownOfType(core.DLocate)); got != 0 {
		t.Fatalf("%d beacons after destroy", got)
	}
}
