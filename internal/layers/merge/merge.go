// Package merge implements the MERGE layer: automatic view merging,
// property P16 of Table 3.
//
// MBRSHIP below it can merge views when told to (the merge downcall),
// but after a partition heals somebody must notice that two views of
// the same group coexist. MERGE does the noticing: each view's
// coordinator periodically broadcasts a locate beacon beyond its view
// (Figure 1's "resource location" protocol type); a coordinator that
// hears a beacon from an *older* coordinator requests a merge into it,
// so concurrent views collapse deterministically toward the oldest
// surviving coordinator — the same age rule MBRSHIP's flush election
// uses. Denied or lost requests retry on the next beacon.
//
// Properties: requires P1, P3, P4, P8, P9, P10, P11, P12, P15;
// provides P16.
package merge

import (
	"fmt"
	"time"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/wire"
)

const defaultBeaconPeriod = 250 * time.Millisecond

// Option configures the layer.
type Option func(*Merge)

// WithBeaconPeriod sets the beacon interval.
func WithBeaconPeriod(d time.Duration) Option { return func(m *Merge) { m.period = d } }

// New returns a MERGE layer with default configuration.
func New() core.Layer { return newMerge() }

// NewWith returns a factory with options applied.
func NewWith(opts ...Option) core.Factory {
	return func() core.Layer {
		m := newMerge()
		for _, o := range opts {
			o(m)
		}
		return m
	}
}

func newMerge() *Merge {
	return &Merge{period: defaultBeaconPeriod}
}

// Merge is one MERGE layer instance.
type Merge struct {
	core.Base
	view      *core.View
	period    time.Duration
	stop      func()
	attempted core.EndpointID // last merge target, to avoid hammering
	destroyed bool
	stats     Stats
}

// Stats counts MERGE activity.
type Stats struct {
	BeaconsSent  int
	BeaconsHeard int
	MergesAsked  int
}

// Name implements core.Layer.
func (m *Merge) Name() string { return "MERGE" }

// Stats returns a snapshot of the layer's counters.
func (m *Merge) Stats() Stats { return m.stats }

// Init implements core.Layer.
func (m *Merge) Init(c *core.Context) error {
	if err := m.Base.Init(c); err != nil {
		return err
	}
	if m.period > 0 {
		m.stop = c.SetTimer(m.period, m.beaconTick)
	}
	return nil
}

// Down implements core.Layer.
func (m *Merge) Down(ev *core.Event) {
	switch ev.Type {
	case core.DDestroy:
		m.destroyed = true
		if m.stop != nil {
			m.stop()
		}
		m.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("MERGE: beacons=%d heard=%d asked=%d",
			m.stats.BeaconsSent, m.stats.BeaconsHeard, m.stats.MergesAsked))
		m.Ctx.Down(ev)
	default:
		m.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (m *Merge) Up(ev *core.Event) {
	switch ev.Type {
	case core.UView:
		m.view = ev.View
		m.attempted = core.EndpointID{}
		m.Ctx.Up(ev)
	case core.ULocate:
		m.hearBeacon(ev)
	case core.UMergeDenied:
		// Busy peer; the next beacon retries. Still reported upward.
		m.attempted = core.EndpointID{}
		m.Ctx.Up(ev)
	default:
		m.Ctx.Up(ev)
	}
}

// beaconTick broadcasts this view's identity if we coordinate it.
func (m *Merge) beaconTick() {
	if m.destroyed {
		return
	}
	m.stop = m.Ctx.SetTimer(m.period, m.beaconTick)
	if m.view == nil || m.view.Oldest() != m.Ctx.Self() {
		return
	}
	msg := message.New(nil)
	wire.PushViewID(msg, m.view.ID)
	wire.PushEndpointID(msg, m.Ctx.Self())
	m.stats.BeaconsSent++
	m.Ctx.Down(&core.Event{Type: core.DLocate, Msg: msg})
}

// hearBeacon reacts to another view's beacon.
func (m *Merge) hearBeacon(ev *core.Event) {
	coord := wire.PopEndpointID(ev.Msg)
	viewID := wire.PopViewID(ev.Msg)
	m.stats.BeaconsHeard++
	if m.view == nil || m.view.Contains(coord) || coord == m.Ctx.Self() {
		return
	}
	if m.view.Oldest() != m.Ctx.Self() {
		return // only our coordinator merges
	}
	// Deterministic direction: the younger coordinator requests a
	// merge into the older one, so the oldest coordinator absorbs all.
	if !coord.Older(m.Ctx.Self()) {
		return
	}
	if !m.attempted.IsZero() {
		return // one merge attempt at a time; retry next beacon
	}
	m.attempted = coord
	m.stats.MergesAsked++
	m.Ctx.Tracef("merge %s: view %v requesting merge into %v", m.Ctx.Self(), m.view.ID, viewID)
	m.Ctx.Down(&core.Event{Type: core.DMerge, Contact: coord})
}
