package causal_test

import (
	"testing"

	"horus/internal/core"
	"horus/internal/layers/causal"
	"horus/internal/layertest"
	"horus/internal/message"
)

// stamped builds an upcall the way TSTAMP would deliver it.
func stamped(body string, src core.EndpointID, vt []uint64) *core.Event {
	return &core.Event{Type: core.UCast, Msg: message.New([]byte(body)),
		Source: src, Timestamp: vt}
}

func setup(t *testing.T) (*layertest.Harness, core.EndpointID, core.EndpointID) {
	t.Helper()
	h := layertest.New(t, causal.New)
	p1 := layertest.ID("p1", 2)
	p2 := layertest.ID("p2", 3)
	h.InstallView(h.Self(), p1, p2) // ranks: self=0, p1=1, p2=2
	h.Reset()
	return h, p1, p2
}

func delivered(h *layertest.Harness) []string {
	var out []string
	for _, ev := range h.UpOfType(core.UCast) {
		out = append(out, string(ev.Msg.Body()))
	}
	return out
}

func TestInOrderDeliversImmediately(t *testing.T) {
	h, p1, _ := setup(t)
	h.InjectUp(stamped("m1", p1, []uint64{0, 1, 0}))
	h.InjectUp(stamped("m2", p1, []uint64{0, 2, 0}))
	got := delivered(h)
	if len(got) != 2 || got[0] != "m1" || got[1] != "m2" {
		t.Fatalf("delivered %v", got)
	}
}

func TestEffectWaitsForCause(t *testing.T) {
	h, p1, p2 := setup(t)
	// p2's message depends on p1's first (vector entry 1 = 1), but the
	// cause has not arrived yet.
	h.InjectUp(stamped("effect", p2, []uint64{0, 1, 1}))
	if got := delivered(h); len(got) != 0 {
		t.Fatalf("effect delivered before cause: %v", got)
	}
	h.InjectUp(stamped("cause", p1, []uint64{0, 1, 0}))
	got := delivered(h)
	if len(got) != 2 || got[0] != "cause" || got[1] != "effect" {
		t.Fatalf("delivered %v, want [cause effect]", got)
	}
}

func TestSenderFIFOGapBlocks(t *testing.T) {
	h, p1, _ := setup(t)
	h.InjectUp(stamped("third", p1, []uint64{0, 3, 0}))
	h.InjectUp(stamped("first", p1, []uint64{0, 1, 0}))
	if got := delivered(h); len(got) != 1 || got[0] != "first" {
		t.Fatalf("delivered %v, want [first] (second still missing)", got)
	}
	h.InjectUp(stamped("second", p1, []uint64{0, 2, 0}))
	got := delivered(h)
	if len(got) != 3 || got[2] != "third" {
		t.Fatalf("delivered %v, want first second third", got)
	}
}

func TestConcurrentMessagesDeliverEitherOrder(t *testing.T) {
	h, p1, p2 := setup(t)
	// Two causally concurrent messages: both deliverable regardless of
	// arrival order.
	h.InjectUp(stamped("x", p2, []uint64{0, 0, 1}))
	h.InjectUp(stamped("y", p1, []uint64{0, 1, 0}))
	if got := delivered(h); len(got) != 2 {
		t.Fatalf("delivered %v", got)
	}
}

func TestViewChangeReleasesWaiting(t *testing.T) {
	h, _, p2 := setup(t)
	h.InjectUp(stamped("orphan", p2, []uint64{0, 5, 1}))
	if got := delivered(h); len(got) != 0 {
		t.Fatal("orphan delivered early")
	}
	v := core.NewView(core.ViewID{Seq: 2, Coord: h.Self()}, "test",
		[]core.EndpointID{h.Self(), p2})
	h.InjectUp(&core.Event{Type: core.UView, View: v})
	if got := delivered(h); len(got) != 1 || got[0] != "orphan" {
		t.Fatalf("view change did not flush the buffer: %v", got)
	}
}

func TestUnstampedCastErrors(t *testing.T) {
	h, p1, _ := setup(t)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: message.New([]byte("raw")), Source: p1})
	if got := h.UpOfType(core.USystemError); len(got) != 1 {
		t.Fatalf("no SYSTEM_ERROR for unstamped cast: %v", got)
	}
}
