// Package causal implements ORDER(causal): causally ordered multicast
// delivery (property P5).
//
// The layer consumes the vector timestamps attached by a TSTAMP layer
// below it (property P13). A message from rank r with vector V is
// deliverable once V[r] == delivered[r]+1 and V[q] <= delivered[q] for
// every other rank q: everything that causally preceded it has been
// delivered. Messages arriving early wait in a buffer.
//
// Because TSTAMP advances its vector when a message is *received*
// rather than when this layer releases it, the enforced order is at
// least causal (possibly stronger), which preserves correctness.
//
// Properties: requires P3, P8, P9, P13, P15; provides P5.
package causal

import (
	"fmt"

	"horus/internal/core"
)

// Causal is one ORDER(causal) layer instance.
type Causal struct {
	core.Base
	view      *core.View
	delivered []uint64 // per-rank count of causally delivered messages
	waiting   []*core.Event
	stats     Stats
}

// Stats counts CAUSAL activity.
type Stats struct {
	Delivered int
	Buffered  int // arrivals that had to wait
}

// New returns a CAUSAL layer.
func New() core.Layer { return &Causal{} }

// Name implements core.Layer.
func (c *Causal) Name() string { return "CAUSAL" }

// Stats returns a snapshot of the layer's counters.
func (c *Causal) Stats() Stats { return c.stats }

// Up implements core.Layer.
func (c *Causal) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast:
		if ev.Timestamp == nil {
			c.Ctx.Up(&core.Event{Type: core.USystemError,
				Reason: "causal: CAST without vector timestamp (no TSTAMP layer below?)"})
			return
		}
		if c.deliverable(ev) {
			c.deliver(ev)
			c.drain()
			return
		}
		c.stats.Buffered++
		c.waiting = append(c.waiting, ev)
	case core.UView:
		c.view = ev.View
		// Virtual synchrony below guarantees the causal cut: release
		// anything still waiting (consistent across survivors), then
		// reset vectors for the new view.
		for _, w := range c.waiting {
			c.deliverRaw(w)
		}
		c.waiting = nil
		c.delivered = make([]uint64, ev.View.Size())
		c.Ctx.Up(ev)
	default:
		c.Ctx.Up(ev)
	}
}

// deliverable applies the vector-clock delivery condition.
func (c *Causal) deliverable(ev *core.Event) bool {
	if c.view == nil {
		return false
	}
	r := c.view.Rank(ev.Source)
	if r < 0 || r >= len(c.delivered) {
		return false
	}
	v := ev.Timestamp
	for q := range c.delivered {
		var vq uint64
		if q < len(v) {
			vq = v[q]
		}
		if q == r {
			if vq != c.delivered[q]+1 {
				return false
			}
			continue
		}
		if vq > c.delivered[q] {
			return false
		}
	}
	return true
}

func (c *Causal) deliver(ev *core.Event) {
	r := c.view.Rank(ev.Source)
	if r >= 0 && r < len(c.delivered) {
		c.delivered[r]++
	}
	c.deliverRaw(ev)
}

func (c *Causal) deliverRaw(ev *core.Event) {
	c.stats.Delivered++
	c.Ctx.Up(ev)
}

// drain releases newly deliverable buffered messages until a fixpoint.
func (c *Causal) drain() {
	for {
		progress := false
		for i := 0; i < len(c.waiting); i++ {
			if c.deliverable(c.waiting[i]) {
				ev := c.waiting[i]
				c.waiting = append(c.waiting[:i], c.waiting[i+1:]...)
				c.deliver(ev)
				progress = true
				i--
			}
		}
		if !progress {
			return
		}
	}
}

// Down implements core.Layer.
func (c *Causal) Down(ev *core.Event) {
	if ev.Type == core.DDump {
		ev.Dump = append(ev.Dump, fmt.Sprintf("CAUSAL: delivered=%d waiting=%d",
			c.stats.Delivered, len(c.waiting)))
	}
	c.Ctx.Down(ev)
}
